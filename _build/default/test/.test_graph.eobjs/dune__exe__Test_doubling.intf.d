test/test_doubling.mli:
