test/test_aspt.mli:
