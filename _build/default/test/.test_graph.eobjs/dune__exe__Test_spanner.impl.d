test/test_spanner.ml: Alcotest Array Hashtbl Int List Ln_congest Ln_graph Ln_mst Ln_spanner Ln_traversal QCheck2 QCheck_alcotest Queue Random String
