test/test_slt.mli:
