test/test_nets.ml: Alcotest Array Float Fun List Ln_congest Ln_graph Ln_nets Ln_prim QCheck2 QCheck_alcotest Random
