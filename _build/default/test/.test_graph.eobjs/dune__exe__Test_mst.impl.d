test/test_mst.ml: Alcotest Array Float Int List Ln_congest Ln_graph Ln_mst Printf QCheck2 QCheck_alcotest Random
