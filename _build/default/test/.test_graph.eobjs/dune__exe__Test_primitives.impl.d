test/test_primitives.ml: Alcotest Array Float Fun Hashtbl List Ln_congest Ln_graph Ln_mst Ln_prim Ln_spanner Ln_traversal Option QCheck2 QCheck_alcotest Random
