test/test_congest.ml: Alcotest Array Float Fun Int List Ln_congest Ln_graph Ln_prim Printf QCheck2 QCheck_alcotest Random String
