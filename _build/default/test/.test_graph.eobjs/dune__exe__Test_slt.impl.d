test/test_slt.ml: Alcotest Array Int List Ln_congest Ln_graph Ln_slt QCheck2 QCheck_alcotest Random String
