test/test_aspt.ml: Alcotest Array Float Fun Hashtbl List Ln_aspt Ln_congest Ln_graph Ln_prim QCheck2 QCheck_alcotest Random
