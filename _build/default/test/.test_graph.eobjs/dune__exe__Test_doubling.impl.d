test/test_doubling.ml: Alcotest Float List Ln_congest Ln_doubling Ln_estimate Ln_graph Ln_prim QCheck2 QCheck_alcotest Random
