test/test_traversal.ml: Alcotest Array Float List Ln_congest Ln_graph Ln_mst Ln_traversal QCheck2 QCheck_alcotest Random
