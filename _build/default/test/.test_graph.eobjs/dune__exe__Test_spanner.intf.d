test/test_spanner.mli:
