test/test_graph.ml: Alcotest Array Filename Float Fun Int List Ln_graph Printf QCheck2 QCheck_alcotest Random Sys
