(* Experiment harness: regenerates the paper's results table (Table 1)
   and structural claims (Lemma 2, Figure 1, Section 8) empirically.

     dune exec bench/main.exe            # all experiments E1..E8
     dune exec bench/main.exe -- E2 E5   # a subset
     dune exec bench/main.exe -- time    # Bechamel wall-clock suite

   For every experiment we print the paper's bound next to measured
   quantities, with normalised columns (measured / bound-shape) whose
   stability across the sweep is the reproduction criterion — absolute
   constants are not expected to match a theory paper. EXPERIMENTS.md
   records a snapshot of this output. *)

open Lightnet

let pf = Format.printf

let header title paper =
  pf "@.== %s ==@." title;
  pf "paper: %s@." paper

let sqrtf n = Float.sqrt (float_of_int n)

(* Graph menu -------------------------------------------------------- *)

let er ~seed n = Gen.erdos_renyi (Random.State.make [| seed; 1 |]) ~n ~p:(8.0 /. float_of_int n) ()
let geo ~seed n =
  fst
    (Gen.random_geometric
       (Random.State.make [| seed; 2 |])
       ~n
       ~radius:(2.2 /. sqrtf n)
       ())
let heavy ~seed n = Gen.heavy_tailed (Random.State.make [| seed; 3 |]) ~n ~p:(8.0 /. float_of_int n) ~range:1e5 ()
let grid ~seed n =
  let side = int_of_float (sqrtf n) in
  Gen.grid (Random.State.make [| seed; 4 |]) ~rows:side ~cols:side ()

(* ------------------------------------------------------------------ *)
(* E1 — Table 1 row 1: the light spanner.                              *)

let e1 () =
  header "E1: light spanner (Theorem 2 / Table 1 row 1)"
    "stretch (2k-1)(1+eps); size O(k n^{1+1/k}); lightness O(k n^{1/k}); rounds \
     ~ n^{1/2+1/(4k+2)} + D";
  pf
    "%-6s %4s %2s | %7s %7s | %6s %9s | %7s %9s | %7s %7s %8s | %6s %6s@."
    "model" "n" "k" "stretch" "bound" "size" "sz/kn^1+" "light" "lt/kn^1/k" "native"
    "charged" "rnd/shape" "greedy" "g-lt";
  let run name g n k =
    let rng = Random.State.make [| n; k; 5 |] in
    let epsilon = 0.25 in
    let sp = Light_spanner.build ~rng g ~k ~epsilon in
    let stretch = Stats.max_edge_stretch g sp.Light_spanner.edges in
    let light = Stats.lightness g sp.Light_spanner.edges in
    let size = List.length sp.Light_spanner.edges in
    let fk = float_of_int k and fn = float_of_int n in
    let size_norm = float_of_int size /. (fk *. (fn ** (1.0 +. (1.0 /. fk)))) in
    let light_norm = light /. (fk *. (fn ** (1.0 /. fk))) in
    let d = Graph.hop_diameter g in
    let shape = (fn ** (0.5 +. (1.0 /. float_of_int ((4 * k) + 2)))) +. float_of_int d in
    let native = Ledger.native_total sp.Light_spanner.ledger in
    let charged = Ledger.charged_total sp.Light_spanner.ledger in
    let greedy = Greedy.build g ~stretch:(float_of_int ((2 * k) - 1)) in
    pf
      "%-6s %4d %2d | %7.3f %7.2f | %6d %9.3f | %7.2f %9.3f | %7d %7d %8.2f | %6d %6.2f@."
      name n k stretch sp.Light_spanner.stretch_bound size size_norm light light_norm
      native charged
      (float_of_int (native + charged) /. shape)
      (List.length greedy)
      (Stats.lightness g greedy)
  in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          run "er" (er ~seed:1 n) n k;
          if k = 2 then run "geo" (geo ~seed:1 n) n k)
        [ 2; 3 ])
    [ 100; 200; 400 ];
  run "heavy" (heavy ~seed:1 200) 200 2

(* ------------------------------------------------------------------ *)
(* E2 — Table 1 row 2: shallow-light trees.                            *)

let e2 () =
  header "E2: shallow-light tree (Theorem 1 / Table 1 row 2)"
    "stretch 1+O(eps) with lightness 1+O(1/eps) (and the inverse regime via \
     BFN16); rounds ~ sqrt(n) + D";
  pf "%-9s %4s %8s | %7s %7s | %7s %7s | %7s %7s %9s | %8s %8s@."
    "regime" "n" "param" "stretch" "bound" "light" "bound" "native" "charged"
    "rnd/shape" "kry-str" "kry-lt";
  let shape g n = sqrtf n +. float_of_int (Graph.hop_diameter g) in
  let run g n regime param =
    let rng = Random.State.make [| n; 8 |] in
    let t =
      match regime with
      | `Eps -> Slt.build ~rng g ~rt:0 ~epsilon:param
      | `Gamma -> Slt.build_light ~rng g ~rt:0 ~gamma:param
    in
    let stretch = Stats.tree_root_stretch g t.Slt.tree ~root:0 in
    let light = Stats.lightness g t.Slt.edges in
    let kry = Kry95.build g ~rt:0 ~epsilon:(match regime with `Eps -> param | `Gamma -> 1.0) in
    pf "%-9s %4d %8.2f | %7.3f %7.1f | %7.3f %7.2f | %7d %7d %9.2f | %8.3f %8.2f@."
      (match regime with `Eps -> "eps" | `Gamma -> "gamma(BFN)")
      n param stretch t.Slt.stretch_bound light t.Slt.lightness_bound
      (Ledger.native_total t.Slt.ledger)
      (Ledger.charged_total t.Slt.ledger)
      (float_of_int (Ledger.total t.Slt.ledger) /. shape g n)
      (Stats.tree_root_stretch g kry.Kry95.tree ~root:0)
      (Stats.lightness g kry.Kry95.edges)
  in
  List.iter
    (fun n ->
      let g = er ~seed:2 n in
      List.iter (fun e -> run g n `Eps e) [ 1.0; 0.5; 0.25 ];
      List.iter (fun gm -> run g n `Gamma gm) [ 0.5; 0.25 ])
    [ 150; 300 ];
  let g = Gen.cycle ~w:2.0 301 in
  run g 301 `Eps 0.5

(* ------------------------------------------------------------------ *)
(* E3 — Table 1 row 3: nets.                                           *)

let e3 () =
  header "E3: (alpha,beta)-nets (Theorem 3 / Table 1 row 3)"
    "((1+d)Delta, Delta/(1+d))-net; O(log n) iterations; rounds ~ (sqrt n + D) x \
     subpolynomial (LE lists charged)";
  pf "%-6s %4s %8s | %5s %5s | %5s %8s | %7s %7s %9s | %6s@."
    "model" "n" "Delta" "|N|" "ok?" "iters" "it/log n" "native" "charged" "rnd/shape"
    "greedy";
  let run ?(frac = 6.0) name g n =
    let rng = Random.State.make [| n; 13 |] in
    let bfs, _ = Bfs.tree g ~root:0 in
    (* Mid-scale radius: a fraction of the weighted eccentricity. *)
    let ecc =
      Array.fold_left Float.max 0.0 (Paths.dijkstra g 0).Paths.dist
    in
    let radius = ecc /. frac in
    let net = Net.build ~rng g ~bfs ~radius ~delta:0.5 in
    let ok =
      Net.is_net g ~covering:net.Net.covering_bound
        ~separation:net.Net.separation_bound net.Net.points
    in
    let d = Graph.hop_diameter g in
    let shape = sqrtf n +. float_of_int d in
    let greedy = Greedy_net.build g ~radius in
    pf "%-6s %4d %8.1f | %5d %5b | %5d %8.2f | %7d %7d %9.2f | %6d@." name n radius
      (List.length net.Net.points)
      ok net.Net.iterations
      (float_of_int net.Net.iterations /. (Float.log (float_of_int n) /. Float.log 2.0))
      (Ledger.native_total net.Net.ledger)
      (Ledger.charged_total net.Net.ledger)
      (float_of_int (Ledger.total net.Net.ledger) /. shape)
      (List.length greedy)
  in
  List.iter (fun n -> run "er" (er ~seed:3 n) n) [ 100; 200; 400; 800 ];
  List.iter (fun n -> run ~frac:20.0 "er" (er ~seed:3 n) n) [ 200; 400 ];
  run "geo" (geo ~seed:3 200) 200;
  run ~frac:20.0 "geo" (geo ~seed:3 200) 200;
  run "grid" (grid ~seed:3 225) 225

(* ------------------------------------------------------------------ *)
(* E4 — Table 1 row 4: doubling spanner.                               *)

let e4 () =
  header "E4: doubling-graph light spanner (Theorem 5 / Table 1 row 4)"
    "stretch 1+eps; lightness eps^{-O(ddim)} log n; size n eps^{-O(ddim)} log n; \
     per-vertex work bounded by packing (max table)";
  pf "%-4s %4s %5s %5s | %7s %7s | %7s %9s | %6s %8s | %6s %9s@."
    "n" "m" "eps" "ddim" "stretch" "bound" "light" "lt/env" "size" "maxtable"
    "scales" "rounds";
  let run n epsilon =
    let g = geo ~seed:4 n in
    let rng = Random.State.make [| n; 21 |] in
    let ddim = Metric.estimate_ddim rng g in
    let sp = Doubling_spanner.build ~rng g ~epsilon in
    let stretch = Stats.max_edge_stretch g sp.Doubling_spanner.edges in
    let light = Stats.lightness g sp.Doubling_spanner.edges in
    let envelope = ((1.0 /. epsilon) ** 4.0) *. Float.log (float_of_int n) in
    pf "%-4d %4d %5.2f %5.2f | %7.3f %7.2f | %7.2f %9.3f | %6d %8d | %6d %9d@." n
      (Graph.m g) epsilon ddim stretch sp.Doubling_spanner.stretch_bound light
      (light /. envelope)
      (List.length sp.Doubling_spanner.edges)
      sp.Doubling_spanner.max_table sp.Doubling_spanner.scales
      (Ledger.total sp.Doubling_spanner.ledger)
  in
  List.iter (fun (n, e) -> run n e) [ (80, 0.5); (80, 0.3); (150, 0.5); (150, 0.3) ]

(* ------------------------------------------------------------------ *)
(* E5 — Lemma 2: the Euler tour round count.                           *)

let e5 () =
  header "E5: distributed Euler tour (Lemma 2)"
    "every vertex learns all its visit times in ~ sqrt(n) + D rounds";
  pf "%-6s %5s %5s %6s | %7s %7s | %9s@." "model" "n" "D" "sqrt n" "native" "charged"
    "rnd/shape";
  let run name g n =
    let dist = Dist_mst.run g in
    let before_native = Ledger.native_total dist.Dist_mst.ledger in
    let before_charged = Ledger.charged_total dist.Dist_mst.ledger in
    let _ = Euler_dist.run dist ~rt:0 in
    let native = Ledger.native_total dist.Dist_mst.ledger - before_native in
    let charged = Ledger.charged_total dist.Dist_mst.ledger - before_charged in
    let d = Graph.hop_diameter g in
    let shape = sqrtf n +. float_of_int d in
    pf "%-6s %5d %5d %6.1f | %7d %7d | %9.2f@." name n d (sqrtf n) native charged
      (float_of_int (native + charged) /. shape)
  in
  List.iter (fun n -> run "er" (er ~seed:5 n) n) [ 100; 400; 900; 1600; 2500 ];
  run "grid" (grid ~seed:5 900) 900;
  run "grid" (grid ~seed:5 1600) 1600;
  run "path" (Gen.path 900) 900

(* ------------------------------------------------------------------ *)
(* E6 — Figure 1 / §3.1: the base-fragment decomposition.              *)

let e6 () =
  header "E6: base fragments (Figure 1, KP98 phase 1)"
    "O(sqrt n) fragments, each of hop-diameter O(sqrt n)";
  pf "%-6s %5s %6s | %6s %9s | %7s %10s@." "model" "n" "sqrt n" "#frags" "frags/sqrt"
    "maxdiam" "diam/sqrt";
  let run name g n =
    let r = Dist_mst.run g in
    let base = r.Dist_mst.base in
    let maxd = Fragments.max_hop_diameter base in
    pf "%-6s %5d %6.1f | %6d %9.2f | %7d %10.2f@." name n (sqrtf n)
      base.Fragments.count
      (float_of_int base.Fragments.count /. sqrtf n)
      maxd
      (float_of_int maxd /. sqrtf n)
  in
  List.iter (fun n -> run "er" (er ~seed:6 n) n) [ 100; 400; 900; 1600; 2500 ];
  run "grid" (grid ~seed:6 900) 900;
  run "path" (Gen.path 1000) 1000;
  run "geo" (geo ~seed:6 400) 400

(* ------------------------------------------------------------------ *)
(* E7 — Section 8: the net-based MST-weight estimator.                 *)

let e7 () =
  header "E7: MST-weight estimation from nets (Theorem 7, run forward)"
    "L <= Psi <= O(alpha log n) L — the reduction powering the lower bound";
  pf "%-7s %5s %6s | %9s %9s %7s %9s | %6s@." "model" "n" "alpha" "L" "Psi" "Psi/L"
    "bound" "levels";
  let run name g n alpha =
    let rng = Random.State.make [| n; 34 |] in
    let bfs, _ = Bfs.tree g ~root:0 in
    let est = Mst_weight.estimate ~rng g ~bfs ~alpha in
    let l = Mst_seq.weight g in
    pf "%-7s %5d %6.1f | %9.1f %9.1f %7.2f %9.1f | %6d@." name n alpha l
      est.Mst_weight.psi
      (est.Mst_weight.psi /. l)
      est.Mst_weight.upper_factor
      (List.length est.Mst_weight.levels)
  in
  List.iter
    (fun n ->
      run "er" (er ~seed:7 n) n 2.0;
      run "heavy" (heavy ~seed:7 n) n 2.0)
    [ 100; 200; 400 ];
  run "er" (er ~seed:7 200) 200 1.5;
  run "er" (er ~seed:7 200) 200 4.0

(* ------------------------------------------------------------------ *)
(* E8 — Section 5 internals (the analysis subsection).                 *)

let e8 () =
  header "E8: light-spanner internals (Section 5.1 accounting)"
    "per-bucket contributions: E' handled by Baswana-Sen; bucket i edges weigh \
     <= w_i each; case split at i < log_{1+eps}(eps n^{k/(2k+1)})";
  let n = 300 in
  let g = heavy ~seed:8 n in
  let k = 2 and epsilon = 0.25 in
  let rng = Random.State.make [| 8; 8 |] in
  let sp = Light_spanner.build ~rng g ~k ~epsilon in
  let l_total = 2.0 *. Mst_seq.weight g in
  pf "n=%d m=%d k=%d eps=%.2f L=%.1f@." n (Graph.m g) k epsilon l_total;
  pf "buckets: %d in case 1 (global), %d in case 2 (intervals)@."
    sp.Light_spanner.buckets_case1 sp.Light_spanner.buckets_case2;
  pf "E' (Baswana-Sen) edges: %d; bucket edges: %d; total (with MST): %d@."
    sp.Light_spanner.light_bucket_edges sp.Light_spanner.bucket_edges
    (List.length sp.Light_spanner.edges);
  (* Weight-per-bucket accounting: every spanner edge's bucket weight
     cap, summed, reproduces the geometric-series argument of §5.1. *)
  let classify = Buckets.classify ~l_total ~epsilon ~n in
  let per_bucket = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key =
        match classify (Graph.weight g e) with
        | `Light -> -1
        | `Heavy -> -2
        | `Bucket i -> i
      in
      let c, w = Option.value ~default:(0, 0.0) (Hashtbl.find_opt per_bucket key) in
      Hashtbl.replace per_bucket key (c + 1, w +. Graph.weight g e))
    sp.Light_spanner.edges;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) per_bucket [] |> List.sort Int.compare in
  pf "%6s %6s %10s %10s@." "bucket" "edges" "weight" "cap w_i";
  List.iter
    (fun key ->
      let c, w = Hashtbl.find per_bucket key in
      let cap =
        match key with
        | -1 -> l_total /. float_of_int n
        | -2 -> infinity
        | i -> Buckets.bucket_width ~l_total ~epsilon i
      in
      let name = match key with -1 -> "E'" | -2 -> "heavy" | i -> string_of_int i in
      pf "%6s %6d %10.1f %10.2f@." name c w cap)
    keys;
  let lightness = Stats.lightness g sp.Light_spanner.edges in
  (* The full Section-5.1 bound carries an eps^{-(2+1/k)} factor that
     the O(k n^{1/k}) headline treats as constant. *)
  let envelope =
    float_of_int k
    *. (float_of_int n ** (1.0 /. float_of_int k))
    /. (epsilon ** (2.0 +. (1.0 /. float_of_int k)))
  in
  pf "lightness %.2f (analysis envelope k n^{1/k} eps^{-(2+1/k)} = %.1f); max stretch %.3f (bound %.2f)@."
    lightness envelope
    (Stats.max_edge_stretch g sp.Light_spanner.edges)
    sp.Light_spanner.stretch_bound

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

(* A1: what the central BP2 sparsification of §4.1 buys. *)
let a1 () =
  header "A1: SLT break points with vs without BP2 sparsification"
    "the lightness proof (Cor. 3) needs the filtered set; unfiltered anchors \
     inflate the break-point count (and, on adversarial instances, w(H))";
  pf "%-9s %5s %9s | %5s %8s %8s %7s@." "model" "n" "variant" "#BP" "H-light"
    "slt-lt" "stretch";
  let run name g n epsilon =
    List.iter
      (fun sparsify ->
        let rng = Random.State.make [| n; 61 |] in
        let t = Slt.build ~sparsify_anchors:sparsify ~rng g ~rt:0 ~epsilon in
        pf "%-9s %5d %9s | %5d %8.3f %8.3f %7.3f@." name n
          (if sparsify then "two-phase" else "all-BP'")
          (List.length t.Slt.break_positions)
          (Stats.lightness g t.Slt.h_edges)
          (Stats.lightness g t.Slt.edges)
          (Stats.tree_root_stretch g t.Slt.tree ~root:0))
      [ true; false ]
  in
  run "er" (er ~seed:11 300) 300 0.25;
  run "cycle" (Gen.cycle ~w:3.0 401) 401 1.0;
  run "cater"
    (Gen.caterpillar (Random.State.make [| 11 |]) ~spine:150 ~legs:150 ())
    300 1.0

(* A2: why phase 1's diameter cap exists (controlled vs plain Boruvka). *)
let a2 () =
  header "A2: Boruvka chain-cutting (fragment diameter cap)"
    "plain Boruvka contracts whole proposal chains: on a unit path one \
     fragment of diameter n-1; the cap keeps it at O(sqrt n)";
  pf "%-6s %5s %10s | %6s %8s@." "model" "n" "cap" "#frags" "maxdiam";
  let run name g n cap capname =
    let target = int_of_float (Float.ceil (sqrtf n)) in
    let frags, _ = Boruvka.base_fragments g ~target ~diam_cap:cap in
    pf "%-6s %5d %10s | %6d %8d@." name n capname frags.Fragments.count
      (Fragments.max_hop_diameter frags)
  in
  List.iter
    (fun (name, g, n) ->
      let sq = (2 * int_of_float (Float.ceil (sqrtf n))) + 2 in
      run name g n sq (string_of_int sq);
      run name g n max_int "none")
    [
      ("path", Gen.path 1024, 1024);
      ("grid", grid ~seed:12 900, 900);
      ("er", er ~seed:12 900, 900);
    ]

(* A3: hub density of the BKKL17-substitute SSSP. *)
let a3 () =
  header "A3: hub-SSSP hub density sweep"
    "more hubs shorten the repair tail but lengthen the overlay broadcasts; \
     exactness holds at every setting (the repair sweep guarantees it)";
  pf "%-6s %5s %8s | %5s %7s %7s@." "model" "n" "factor" "hubs" "native" "exact?";
  let run name g n factor =
    let rng = Random.State.make [| n; 71 |] in
    let bfs, _ = Bfs.tree g ~root:0 in
    let r = Hub_sssp.run ~hub_factor:factor ~rng g ~bfs ~src:0 in
    let exact = Paths.dijkstra g 0 in
    let ok =
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-7 *. (1.0 +. a))
        r.Hub_sssp.dist exact.Paths.dist
    in
    pf "%-6s %5d %8.2f | %5d %7d %7b@." name n factor
      (List.length r.Hub_sssp.hubs)
      (Ledger.native_total r.Hub_sssp.ledger)
      ok
  in
  List.iter
    (fun factor ->
      run "grid" (grid ~seed:13 400) 400 factor;
      run "er" (er ~seed:13 400) 400 factor)
    [ 0.25; 1.0; 4.0 ]

(* A4: the paper's core motivation — previous distributed spanners have
   no lightness bound. *)
let a4 () =
  header "A4: lightness of Baswana-Sen alone vs the Section-5 construction"
    "BS bounds only the number of edges; its lightness grows with the weight \
     scale, while bucketing + MST keeps it at O(k n^{1/k})";
  pf "%-9s %5s %10s | %8s %8s | %8s %8s@." "model" "n" "aspect" "bs-edges"
    "bs-light" "s5-edges" "s5-light";
  let run name g n =
    let rng = Random.State.make [| n; 81 |] in
    let bs = Baswana_sen.build ~rng ~k:2 g in
    let sp = Light_spanner.build ~rng g ~k:2 ~epsilon:0.25 in
    pf "%-9s %5d %10.1e | %8d %8.2f | %8d %8.2f@." name n
      (Graph.weight_aspect_ratio g)
      (List.length bs.Baswana_sen.edges)
      (Stats.lightness g bs.Baswana_sen.edges)
      (List.length sp.Light_spanner.edges)
      (Stats.lightness g sp.Light_spanner.edges)
  in
  run "er" (er ~seed:14 300) 300;
  run "heavy" (heavy ~seed:14 300) 300;
  run "clustered"
    (Gen.clustered (Random.State.make [| 14 |]) ~clusters:12 ~size:25 ~p_in:0.3
       ~p_out:0.01 ())
    300

(* ------------------------------------------------------------------ *)
(* Bechamel timing suite                                               *)

let time_suite () =
  let open Bechamel in
  let g = er ~seed:9 120 in
  let geo_g = geo ~seed:9 100 in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "dist-mst(n=120)" (fun () -> ignore (Dist_mst.run g));
      mk "euler-tour(n=120)" (fun () ->
          let d = Dist_mst.run g in
          ignore (Euler_dist.run d ~rt:0));
      mk "hub-sssp(n=120)" (fun () ->
          let rng = Random.State.make [| 1 |] in
          let bfs, _ = Bfs.tree g ~root:0 in
          ignore (Hub_sssp.run ~rng g ~bfs ~src:0));
      mk "slt(n=120)" (fun () ->
          let rng = Random.State.make [| 2 |] in
          ignore (Slt.build ~rng g ~rt:0 ~epsilon:0.5));
      mk "light-spanner(n=120,k=2)" (fun () ->
          let rng = Random.State.make [| 3 |] in
          ignore (Light_spanner.build ~rng g ~k:2 ~epsilon:0.25));
      mk "net(n=120)" (fun () ->
          let rng = Random.State.make [| 4 |] in
          let bfs, _ = Bfs.tree g ~root:0 in
          ignore (Net.build ~rng g ~bfs ~radius:50.0 ~delta:0.5));
      mk "doubling-spanner(n=100)" (fun () ->
          let rng = Random.State.make [| 5 |] in
          ignore (Doubling_spanner.build ~rng geo_g ~epsilon:0.5));
      mk "greedy-spanner(n=120)" (fun () -> ignore (Greedy.build g ~stretch:3.0));
      mk "kry95-slt(n=120)" (fun () -> ignore (Kry95.build g ~rt:0 ~epsilon:0.5));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  pf "@.== Bechamel wall-clock (one full construction per run) ==@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> pf "%-28s %12.3f ms/run@." name (est /. 1e6)
          | _ -> pf "%-28s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let all =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) all
  | [ "time" ] -> time_suite ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all with
        | Some f -> f ()
        | None when name = "time" -> time_suite ()
        | None -> pf "unknown experiment %s (E1..E8, time)@." name)
      names
