examples/routing_overlay.ml: Array Format Fun Gen Graph Greedy Light_spanner Lightnet List Mst_seq Paths Quick Random Stats
