examples/sensor_network.ml: Array Doubling_spanner Format Gen Graph Greedy Lightnet List Metric Paths Quick Random Stats
