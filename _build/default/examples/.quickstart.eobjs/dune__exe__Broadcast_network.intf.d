examples/broadcast_network.mli:
