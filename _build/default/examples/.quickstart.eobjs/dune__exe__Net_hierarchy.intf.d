examples/net_hierarchy.mli:
