examples/net_hierarchy.ml: Bfs Format Gen Graph Greedy_net Ledger Lightnet List Mst_seq Mst_weight Net Random String
