examples/broadcast_network.ml: Array Float Format Fun Gen Graph Lightnet List Mst_seq Paths Random Slt Stats Tree
