examples/quickstart.ml: Format Gen Graph Greedy Kry95 Lightnet List Mst_seq Net Quick Random Stats
