examples/quickstart.mli:
