examples/routing_overlay.mli:
