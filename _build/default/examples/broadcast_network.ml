(* The paper's motivating application (ABP90/ABP92): cost-sensitive
   broadcast. A root repeatedly broadcasts messages to the whole
   network over a fixed spanning tree. Broadcasting over the MST
   minimises the energy (total edge weight) but can have terrible
   delay (root-to-leaf distance); over the SPT it is the opposite. The
   SLT of Section 4 gets within (1+eps) of the SPT's delay at 1+O(1/eps)
   times the MST's energy, and the BFN16 regime gets within 1+gamma of
   the MST's energy.

   Run with:  dune exec examples/broadcast_network.exe *)

open Lightnet

let describe g ~rt name edges =
  let tree = Tree.of_edges g ~root:rt edges in
  let energy = Graph.weight_of_edges g edges in
  let delay =
    (* worst-case time until the last vertex hears the message *)
    List.fold_left
      (fun acc v -> Float.max acc (Tree.dist_to_root tree v))
      0.0
      (List.init (Graph.n g) Fun.id)
  in
  let stretch = Stats.tree_root_stretch g tree ~root:rt in
  Format.printf "  %-24s energy %8.1f   worst delay %8.1f   root-stretch %6.3f@."
    name energy delay stretch

let () =
  let rng = Random.State.make [| 7 |] in
  (* A clustered network: dense cheap LANs joined by expensive WAN
     links — the regime where MST and SPT broadcast differ sharply. *)
  let g = Gen.clustered rng ~clusters:6 ~size:20 ~p_in:0.3 ~p_out:0.02 () in
  let rt = 0 in
  Format.printf "broadcast network: %a, root %d@.@." Graph.pp g rt;

  let mst = Mst_seq.kruskal g in
  describe g ~rt "MST" mst;

  let spt = Paths.dijkstra g rt in
  let spt_edges =
    Array.to_list spt.Paths.parent_edge |> List.filter (fun e -> e >= 0)
  in
  describe g ~rt "SPT" spt_edges;

  Format.printf "@.shallow-light trees (Section 4):@.";
  List.iter
    (fun epsilon ->
      let slt = Slt.build ~rng g ~rt ~epsilon in
      describe g ~rt (Format.asprintf "SLT eps=%.2f" epsilon) slt.Slt.edges)
    [ 1.0; 0.5; 0.25 ];

  Format.printf "@.lightness-first regime (BFN16 reduction):@.";
  List.iter
    (fun gamma ->
      let slt = Slt.build_light ~rng g ~rt ~gamma in
      describe g ~rt (Format.asprintf "SLT gamma=%.2f" gamma) slt.Slt.edges)
    [ 0.5; 0.25 ];

  Format.printf
    "@.The SLT rows should interpolate: energy close to the MST's,@.delay close to the SPT's — that is Theorem 1.@."
