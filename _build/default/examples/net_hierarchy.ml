(* Hierarchical nets and the Section-8 MST-weight estimator.

   Builds (alpha*2^i, 2^i)-nets at every scale, shows how they thin
   out, and turns their cardinalities into the estimate Psi with
   L <= Psi <= O(alpha log n) * L — the reduction behind the paper's
   lower bound, run forward.

   Run with:  dune exec examples/net_hierarchy.exe *)

open Lightnet

let () =
  let rng = Random.State.make [| 4242 |] in
  let g = Gen.heavy_tailed rng ~n:150 ~p:0.06 ~range:1e4 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  Format.printf "network: %a@." Graph.pp g;
  let l = Mst_seq.weight g in
  Format.printf "true MST weight L = %.1f@.@." l;

  let alpha = 2.0 in
  let est = Mst_weight.estimate ~rng g ~bfs ~alpha in
  Format.printf "net hierarchy (alpha = %.1f):@." alpha;
  List.iter
    (fun (scale, ni) ->
      let bar = String.make (min 60 ni) '#' in
      Format.printf "  scale %10.1f : %4d net points %s@." scale ni bar)
    est.Mst_weight.levels;
  Format.printf "@.Psi = %.1f   Psi/L = %.2f  (guaranteed within [1, %.1f])@."
    est.Mst_weight.psi (est.Mst_weight.psi /. l) est.Mst_weight.upper_factor;

  (* Compare a mid-scale distributed net with the greedy baseline. *)
  let radius =
    match est.Mst_weight.levels with
    | _ :: _ ->
      let scales = List.map fst est.Mst_weight.levels in
      List.nth scales (List.length scales / 2)
    | [] -> 1.0
  in
  let net = Net.build ~rng g ~bfs ~radius ~delta:0.5 in
  let greedy = Greedy_net.build g ~radius in
  Format.printf
    "@.at radius %.1f: distributed net %d points (%d iterations), greedy net %d points@."
    radius (List.length net.Net.points) net.Net.iterations (List.length greedy);
  Format.printf "round ledger of the distributed net:@.%a@." Ledger.pp net.Net.ledger
