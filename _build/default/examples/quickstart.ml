(* Quickstart: build each of the paper's four objects on one random
   network and print their quality numbers.

   Run with:  dune exec examples/quickstart.exe *)

open Lightnet

let () =
  let rng = Random.State.make [| 2020 |] in
  (* A 150-vertex random weighted network. *)
  let g = Gen.erdos_renyi rng ~n:150 ~p:0.08 () in
  Format.printf "network: %a, hop-diameter %d@." Graph.pp g (Graph.hop_diameter g);
  Format.printf "MST weight: %.1f@.@." (Mst_seq.weight g);

  (* Table 1 row 1: a light (2k-1)(1+eps)-spanner. *)
  let k = 2 in
  let _, q = Quick.light_spanner g ~k ~epsilon:0.25 in
  Format.printf "light spanner (k=%d):   %a@." k Quick.pp_quality q;

  (* Table 1 row 2: a shallow-light tree rooted at vertex 0. *)
  let _, q = Quick.slt g ~rt:0 ~epsilon:0.5 in
  Format.printf "SLT (eps=0.5):         %a@." Quick.pp_quality q;

  (* Table 1 row 3: an (alpha, beta)-net at radius 100. *)
  let net = Quick.net g ~radius:100.0 ~delta:0.5 in
  Format.printf "net (radius 100):      %d points, covering<=%.0f separation>%.0f (%d iterations)@."
    (List.length net.Net.points) net.Net.covering_bound net.Net.separation_bound
    net.Net.iterations;

  (* Sequential baselines for comparison. *)
  let greedy = Greedy.build g ~stretch:3.0 in
  Format.printf "@.greedy 3-spanner (sequential baseline): %d edges, lightness %.2f@."
    (List.length greedy) (Stats.lightness g greedy);
  let kry = Kry95.build g ~rt:0 ~epsilon:0.5 in
  Format.printf "KRY95 SLT (sequential baseline): lightness %.2f, root-stretch %.3f@."
    (Stats.lightness g kry.Kry95.edges)
    (Stats.tree_root_stretch g kry.Kry95.tree ~root:0)
