(* Light spanners as routing overlays (the [WCT02] motivation cited in
   the paper's introduction: "light graphs with small routing cost").

   A network operator wants to pin down a sparse overlay: every node
   keeps only its overlay links, yet any-to-any routes must stay close
   to shortest. The overlay's total weight is the cost of provisioning
   (fiber, leases), so lightness is money. We compare:

     - the full mesh (perfect routes, maximal cost),
     - the MST (minimal cost, terrible routes),
     - Section-5 light spanners for k = 2, 3,
     - the greedy baseline.

   Run with:  dune exec examples/routing_overlay.exe *)

open Lightnet

let route_quality rng g edges ~pairs =
  let mask = Array.make (Graph.m g) false in
  List.iter (fun e -> mask.(e) <- true) edges;
  let edge_ok e = mask.(e) in
  let n = Graph.n g in
  let worst = ref 1.0 and total_ratio = ref 0.0 and counted = ref 0 in
  while !counted < pairs do
    let u = Random.State.int rng n in
    let v = Random.State.int rng n in
    if u <> v then begin
      let exact = (Paths.dijkstra g u).Paths.dist.(v) in
      let over = (Paths.dijkstra ~edge_ok g u).Paths.dist.(v) in
      let r = over /. exact in
      if r > !worst then worst := r;
      total_ratio := !total_ratio +. r;
      incr counted
    end
  done;
  (!worst, !total_ratio /. float_of_int pairs)

let describe rng g name edges =
  let worst, avg = route_quality rng g edges ~pairs:200 in
  Format.printf "  %-18s links %5d   cost %9.1f   lightness %6.2f   route stretch avg %.3f worst %.3f@."
    name (List.length edges)
    (Graph.weight_of_edges g edges)
    (Stats.lightness g edges)
    avg worst

let () =
  let rng = Random.State.make [| 1234 |] in
  let g = Gen.erdos_renyi rng ~n:180 ~p:0.09 ~w_lo:1.0 ~w_hi:50.0 () in
  Format.printf "network: %a@.@." Graph.pp g;
  let all = List.init (Graph.m g) Fun.id in
  describe rng g "full mesh" all;
  describe rng g "MST" (Mst_seq.kruskal g);
  List.iter
    (fun k ->
      let sp, _ = Quick.light_spanner ~epsilon:0.25 g ~k in
      describe rng g
        (Format.asprintf "spanner k=%d" k)
        sp.Light_spanner.edges)
    [ 2; 3 ];
  describe rng g "greedy 3-spanner" (Greedy.build g ~stretch:3.0);
  Format.printf
    "@.The MST is cheapest but its routes blow up; the greedy spanner (the@.existential optimum, but inherently sequential) routes near-shortest at@.~2x the MST cost. The distributed spanners certify the same asymptotic@.trade-off in O(n^{1/2+1/(4k+2)}+D) CONGEST rounds - at this small n their@.O(k n^{1+1/k}) size budget exceeds m, so they keep most links; the@.lightness bound is what they guarantee (see bench E1).@."
