(* A sensor network (random geometric graph — constant doubling
   dimension) and the Section-7 spanner: keep a (1+eps)-approximation
   of all distances while storing a near-linear number of links whose
   total length is within polylog of the MST.

   As a downstream application we run a nearest-neighbour TSP tour
   (the Klein/Gottlieb motivation for light spanners: a light subgraph
   supports approximation schemes) on the spanner metric and compare
   it with the tour on the full graph metric.

   Run with:  dune exec examples/sensor_network.exe *)

open Lightnet

let tour_weight g ~edge_ok =
  (* Nearest-neighbour heuristic over the (sub)graph metric. *)
  let n = Graph.n g in
  let visited = Array.make n false in
  let cur = ref 0 in
  visited.(0) <- true;
  let total = ref 0.0 in
  for _ = 2 to n do
    let sp = Paths.dijkstra ~edge_ok g !cur in
    let best = ref (-1) and bestd = ref infinity in
    for v = 0 to n - 1 do
      if (not visited.(v)) && sp.Paths.dist.(v) < !bestd then begin
        best := v;
        bestd := sp.Paths.dist.(v)
      end
    done;
    total := !total +. !bestd;
    visited.(!best) <- true;
    cur := !best
  done;
  !total

let () =
  let rng = Random.State.make [| 99 |] in
  let g, _points = Gen.random_geometric rng ~n:120 ~radius:0.22 () in
  Format.printf "sensor network: %a, hop-diameter %d@." Graph.pp g
    (Graph.hop_diameter g);
  Format.printf "estimated doubling dimension: %.2f@.@."
    (Metric.estimate_ddim rng g);

  List.iter
    (fun epsilon ->
      let sp, q = Quick.doubling_spanner ~epsilon g in
      Format.printf "doubling spanner eps=%.2f: %a (%d scales)@." epsilon
        Quick.pp_quality q sp.Doubling_spanner.scales)
    [ 0.5; 0.3 ];

  (* Baseline: the greedy (1+eps)-spanner on the same graph. *)
  let greedy = Greedy.build g ~stretch:1.3 in
  Format.printf "greedy 1.3-spanner (sequential): %d edges, lightness %.2f@."
    (List.length greedy) (Stats.lightness g greedy);

  (* TSP-style application. *)
  let full = tour_weight g ~edge_ok:(fun _ -> true) in
  let sp, _ = Quick.doubling_spanner ~epsilon:0.3 g in
  let mask = Array.make (Graph.m g) false in
  List.iter (fun e -> mask.(e) <- true) sp.Doubling_spanner.edges;
  let on_spanner = tour_weight g ~edge_ok:(fun e -> mask.(e)) in
  Format.printf
    "@.nearest-neighbour tour:  full graph %.2f   spanner %.2f   ratio %.3f@."
    full on_spanner (on_spanner /. full);
  Format.printf
    "(the ratio stays within 1+O(eps): the spanner preserves the metric)@."
