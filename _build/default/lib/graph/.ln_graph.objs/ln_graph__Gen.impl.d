lib/graph/gen.ml: Array Float Graph List Random
