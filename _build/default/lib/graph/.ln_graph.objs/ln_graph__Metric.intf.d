lib/graph/metric.mli: Graph Random
