lib/graph/stats.mli: Format Graph Random Tree
