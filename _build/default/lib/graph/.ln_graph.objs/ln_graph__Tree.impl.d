lib/graph/tree.ml: Array Graph Hashtbl Int List Queue Stack
