lib/graph/euler.mli: Tree
