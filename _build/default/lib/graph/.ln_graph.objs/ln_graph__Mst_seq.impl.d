lib/graph/mst_seq.ml: Array Graph Int List Pqueue Union_find
