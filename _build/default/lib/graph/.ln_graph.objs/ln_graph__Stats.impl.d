lib/graph/stats.ml: Array Format Graph Hashtbl List Mst_seq Option Paths Random Tree
