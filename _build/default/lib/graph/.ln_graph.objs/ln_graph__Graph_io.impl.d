lib/graph/graph_io.ml: Fun Graph List Printf Scanf String
