lib/graph/pqueue.mli:
