lib/graph/graph.ml: Array Float Format Hashtbl Int List Queue Stack
