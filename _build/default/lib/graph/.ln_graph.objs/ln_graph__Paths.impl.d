lib/graph/paths.ml: Array Graph List Pqueue Queue
