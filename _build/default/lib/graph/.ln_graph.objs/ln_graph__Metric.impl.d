lib/graph/metric.ml: Array Float Graph List Paths Random
