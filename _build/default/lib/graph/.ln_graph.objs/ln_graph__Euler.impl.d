lib/graph/euler.ml: Array Float Format Graph List Stack Tree
