(** Sequential shortest-path computations.

    These serve as the ground truth for verifying the distributed
    algorithms (exact stretch checks) and as building blocks for
    sequential baselines (greedy spanner, KRY95 SLT, LE lists). *)

(** Result of a single-source computation: [dist.(v)] is the shortest
    distance from the source ([infinity] if unreachable), and
    [parent_edge.(v)] is the edge id towards the source on a shortest
    path ([-1] for the source itself and unreachable vertices). *)
type sssp = { dist : float array; parent_edge : int array }

(** [dijkstra g src] is the exact single-source shortest paths from
    [src].
    @param bound  stop expanding beyond this distance; entries past the
                  bound are [infinity]. Default: unbounded.
    @param edge_ok  consider only edges for which this predicate holds
                    (used to restrict to a subgraph). Default: all. *)
val dijkstra : ?bound:float -> ?edge_ok:(int -> bool) -> Graph.t -> int -> sssp

(** [dijkstra_multi g srcs] runs Dijkstra from a virtual super-source
    connected with weight 0 to each of [srcs]: [dist.(v)] is the
    distance to the nearest source and [source.(v)] that source's id
    ([-1] when unreachable). *)
val dijkstra_multi :
  ?bound:float ->
  ?edge_ok:(int -> bool) ->
  Graph.t ->
  int list ->
  sssp * int array

(** [distance g u v] is the exact [d_G(u, v)]. *)
val distance : ?edge_ok:(int -> bool) -> Graph.t -> int -> int -> float

(** [path_to sssp g v] reconstructs the vertex path from the source to
    [v] (inclusive) from parent pointers; [None] if unreachable. *)
val path_to : sssp -> Graph.t -> int -> int list option

(** [bfs_hops g src] is the hop distance (unweighted) from [src];
    [-1] for unreachable vertices. *)
val bfs_hops : Graph.t -> int -> int array

(** [eccentricity_hops g v] is the maximum hop distance from [v]. *)
val eccentricity_hops : Graph.t -> int -> int

(** [all_pairs g] runs Dijkstra from every vertex; [O(n m log n)].
    Intended for test-scale graphs only. *)
val all_pairs : ?edge_ok:(int -> bool) -> Graph.t -> float array array
