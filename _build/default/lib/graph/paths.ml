type sssp = { dist : float array; parent_edge : int array }

let dijkstra_core ?(bound = infinity) ?(edge_ok = fun _ -> true) g seeds =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let source = Array.make n (-1) in
  let settled = Array.make n false in
  let q = Pqueue.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0.0;
      source.(s) <- s;
      Pqueue.push q 0.0 s)
    seeds;
  let rec loop () =
    if not (Pqueue.is_empty q) then begin
      let d, v = Pqueue.pop_min q in
      if not settled.(v) then begin
        settled.(v) <- true;
        if d <= bound then
          Array.iter
            (fun (id, u) ->
              if edge_ok id && not settled.(u) then begin
                let nd = d +. Graph.weight g id in
                if nd < dist.(u) && nd <= bound then begin
                  dist.(u) <- nd;
                  parent_edge.(u) <- id;
                  source.(u) <- source.(v);
                  Pqueue.push q nd u
                end
              end)
            (Graph.neighbors g v)
      end;
      loop ()
    end
  in
  loop ();
  ({ dist; parent_edge }, source)

let dijkstra ?bound ?edge_ok g src = fst (dijkstra_core ?bound ?edge_ok g [ src ])

let dijkstra_multi ?bound ?edge_ok g srcs = dijkstra_core ?bound ?edge_ok g srcs

let distance ?edge_ok g u v =
  let r = dijkstra ?edge_ok g u in
  r.dist.(v)

let path_to r g v =
  if r.dist.(v) = infinity then None
  else begin
    let rec walk v acc =
      let id = r.parent_edge.(v) in
      if id < 0 then v :: acc else walk (Graph.other_end g id v) (v :: acc)
    in
    Some (walk v [])
  end

let bfs_hops g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (_, u) ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u q
        end)
      (Graph.neighbors g v)
  done;
  dist

let eccentricity_hops g v =
  Array.fold_left (fun acc d -> max acc d) 0 (bfs_hops g v)

let all_pairs ?edge_ok g =
  Array.init (Graph.n g) (fun v -> (dijkstra ?edge_ok g v).dist)
