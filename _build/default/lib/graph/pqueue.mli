(** Binary min-heap priority queue with [float] priorities and arbitrary
    payloads. Supports lazy deletion via [pop_min] returning items in
    nondecreasing priority order; decrease-key is done by re-insertion
    (standard for Dijkstra with a settled-set check). *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [is_empty q] is [true] iff [q] holds no items. *)
val is_empty : 'a t -> bool

(** [length q] is the number of items currently in [q]. *)
val length : 'a t -> int

(** [push q prio x] inserts [x] with priority [prio]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_min q] removes and returns [(prio, x)] with minimal [prio].
    @raise Not_found if [q] is empty. *)
val pop_min : 'a t -> float * 'a

(** [peek_min q] is the minimal element without removing it.
    @raise Not_found if [q] is empty. *)
val peek_min : 'a t -> float * 'a
