type t = {
  g : Graph.t;
  root : int;
  parent : int array; (* -1 at root / outside *)
  parent_edge : int array;
  children : int list array;
  depth : int array; (* -1 outside *)
  droot : float array;
  edges : int list;
  size : int;
}

let of_edges g ~root ids =
  let n = Graph.n g in
  let adj = Array.make n [] in
  let seen = Hashtbl.create (List.length ids) in
  List.iter
    (fun id ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        let u, v = Graph.endpoints g id in
        adj.(u) <- (id, v) :: adj.(u);
        adj.(v) <- (id, u) :: adj.(v)
      end)
    ids;
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let droot = Array.make n infinity in
  let children = Array.make n [] in
  let q = Queue.create () in
  depth.(root) <- 0;
  droot.(root) <- 0.0;
  Queue.push root q;
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    incr count;
    List.iter
      (fun (id, u) ->
        if u <> parent.(v) || id <> parent_edge.(v) then begin
          if depth.(u) >= 0 then invalid_arg "Tree.of_edges: cycle in edge set";
          parent.(u) <- v;
          parent_edge.(u) <- id;
          depth.(u) <- depth.(v) + 1;
          droot.(u) <- droot.(v) +. Graph.weight g id;
          children.(v) <- u :: children.(v);
          Queue.push u q
        end)
      adj.(v)
  done;
  Array.iteri (fun v cs -> children.(v) <- List.sort Int.compare cs) children;
  let edges = Hashtbl.fold (fun id () acc -> id :: acc) seen [] in
  {
    g;
    root;
    parent;
    parent_edge;
    children;
    depth;
    droot;
    edges = List.sort Int.compare edges;
    size = !count;
  }

let host t = t.g
let root t = t.root

let parent t v =
  if v = t.root || t.depth.(v) < 0 || t.parent.(v) < 0 then None
  else Some (t.parent.(v), t.parent_edge.(v))

let children t v = t.children.(v)
let in_tree t v = t.depth.(v) >= 0
let covers_all t = t.size = Graph.n t.g
let depth_hops t v = t.depth.(v)
let dist_to_root t v = t.droot.(v)

let dist t u v =
  (* Walk the deeper endpoint up until the two meet. *)
  if t.depth.(u) < 0 || t.depth.(v) < 0 then infinity
  else begin
    let a = ref u and b = ref v in
    while t.depth.(!a) > t.depth.(!b) do
      a := t.parent.(!a)
    done;
    while t.depth.(!b) > t.depth.(!a) do
      b := t.parent.(!b)
    done;
    while !a <> !b do
      a := t.parent.(!a);
      b := t.parent.(!b)
    done;
    t.droot.(u) +. t.droot.(v) -. (2.0 *. t.droot.(!a))
  end

let edges t = t.edges
let weight t = Graph.weight_of_edges t.g t.edges

let height_hops t = Array.fold_left max 0 t.depth
let size t = t.size

let preorder t =
  let acc = ref [] in
  let stack = Stack.create () in
  if t.depth.(t.root) >= 0 then Stack.push t.root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    acc := v :: !acc;
    (* push children in reverse so the smallest id pops first *)
    List.iter (fun c -> Stack.push c stack) (List.rev t.children.(v))
  done;
  List.rev !acc

let path_to_root t v =
  let rec walk v acc =
    if t.parent.(v) < 0 then List.rev (v :: acc) else walk t.parent.(v) (v :: acc)
  in
  if t.depth.(v) < 0 then [] else walk v []

let path_edges_to_root t v =
  let rec walk v acc =
    if t.parent.(v) < 0 then List.rev acc
    else walk t.parent.(v) (t.parent_edge.(v) :: acc)
  in
  if t.depth.(v) < 0 then [] else walk v []
