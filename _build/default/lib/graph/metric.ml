let ball g ~center ~radius =
  let r = Paths.dijkstra ~bound:radius g center in
  let acc = ref [] in
  Array.iteri (fun v d -> if d <= radius then acc := v :: !acc) r.dist;
  List.rev !acc

let estimate_ddim ?(samples = 16) rng g =
  let n = Graph.n g in
  if n <= 1 then 0.0
  else begin
    let best = ref 0.0 in
    for _ = 1 to samples do
      let v = Random.State.int rng n in
      let sp = Paths.dijkstra g v in
      let finite = Array.to_list sp.dist |> List.filter (fun d -> d < infinity) in
      let dmax = List.fold_left Float.max 0.0 finite in
      if dmax > 0.0 then begin
        let r = Random.State.float rng (dmax /. 2.0) in
        let r = Float.max r (dmax /. 64.0) in
        let count b = List.length (List.filter (fun d -> d <= b) finite) in
        let big = count (2.0 *. r) and small = count r in
        if small > 0 && big > small then begin
          let est = Float.log (float_of_int big /. float_of_int small) /. Float.log 2.0 in
          if est > !best then best := est
        end
      end
    done;
    !best
  end

let separation g pts =
  match pts with
  | [] | [ _ ] -> infinity
  | _ ->
    let arr = Array.of_list pts in
    let best = ref infinity in
    Array.iter
      (fun p ->
        let sp = Paths.dijkstra g p in
        Array.iter
          (fun q -> if q <> p && sp.dist.(q) < !best then best := sp.dist.(q))
          arr)
      arr;
    !best

let covering_radius g pts =
  match pts with
  | [] -> if Graph.n g = 0 then 0.0 else infinity
  | _ ->
    let sp, _ = Paths.dijkstra_multi g pts in
    Array.fold_left Float.max 0.0 sp.dist
