(** Reading and writing weighted graphs (and edge subsets) in the
    DIMACS-like text format:

    {v
    c comment lines
    p edge <n> <m>
    e <u> <v> <w>        (1-based vertex ids, float weights)
    v}

    Subgraph certificates (spanners, trees) are exchanged as edge-id
    lists, one per line, against a named graph file — so CLI runs can
    be checked and re-used by external tooling. *)

(** [write_graph oc g] emits [g]. *)
val write_graph : out_channel -> Graph.t -> unit

(** [read_graph ic] parses a graph.
    @raise Failure on malformed input. *)
val read_graph : in_channel -> Graph.t

(** [save_graph path g] / [load_graph path] — file convenience. *)
val save_graph : string -> Graph.t -> unit

val load_graph : string -> Graph.t

(** [write_edge_set oc ids] / [read_edge_set ic] — one edge id per
    line, '#' comments allowed. *)
val write_edge_set : out_channel -> int list -> unit

val read_edge_set : in_channel -> int list

val save_edge_set : string -> int list -> unit
val load_edge_set : string -> int list
