(** Rooted spanning trees (and rooted subtrees) of a host graph.

    A tree is described by a set of edge ids of the host graph plus a
    root; orientation, children lists (sorted by vertex id, the order
    the paper fixes for DFS traversals), depths and distances are
    precomputed. *)

type t

(** [of_edges g ~root ids] roots the forest edge set [ids] at [root].
    Only the component containing [root] is retained in depth/children
    data; use {!covers_all} to check spanning-ness.
    @raise Invalid_argument if [ids] contains a cycle. *)
val of_edges : Graph.t -> root:int -> int list -> t

val host : t -> Graph.t
val root : t -> int

(** [parent t v] is [Some (parent_vertex, edge_id)], [None] at the root
    and for vertices outside the root's component. *)
val parent : t -> int -> (int * int) option

(** Children of [v], sorted by vertex id. *)
val children : t -> int -> int list

(** [in_tree t v] is [true] iff [v] is in the root's component. *)
val in_tree : t -> int -> bool

val covers_all : t -> bool

(** Hop depth of [v] (0 at root). [-1] outside the tree. *)
val depth_hops : t -> int -> int

(** Weighted distance from the root to [v] along tree edges. *)
val dist_to_root : t -> int -> float

(** Weighted tree distance between two vertices (via their LCA). *)
val dist : t -> int -> int -> float

(** Tree edge ids (in the host graph's id space). *)
val edges : t -> int list

(** Total weight of the tree. *)
val weight : t -> float

(** Maximum hop depth (the tree's height). *)
val height_hops : t -> int

(** Number of vertices in the root's component. *)
val size : t -> int

(** Vertices of the root's component in preorder (children by id). *)
val preorder : t -> int list

(** [path_to_root t v] is the vertex list [v; ...; root]. *)
val path_to_root : t -> int -> int list

(** [path_edges_to_root t v] is the list of tree edge ids from [v] up
    to the root. *)
val path_edges_to_root : t -> int -> int list
