(** Sequential Eulerian (DFS preorder) tour of a rooted tree — the
    reference implementation for Section 3 of the paper.

    The tour [L = {x_0, ..., x_{2n-2}}] visits each tree edge exactly
    twice; position [i] holds a vertex appearance with visiting time
    [R_{x_i}] (the weighted distance travelled along [L] from the root
    to that appearance). Children are visited in increasing vertex-id
    order, matching the distributed construction so the two can be
    compared entry-for-entry. *)

type t = {
  seq : int array;  (** vertex at each tour position; length [2n - 1] *)
  time : float array;  (** [R_x] of each position (weighted) *)
  positions : int list array;
      (** [positions.(v)]: tour positions where [v] appears, increasing *)
  total : float;  (** total tour length = [2 w(T)] *)
}

(** [of_tree tree] is the Euler tour of [tree] (must span its host
    graph). *)
val of_tree : Tree.t -> t

(** [length t] is the number of tour positions ([2n - 1]). *)
val length : t -> int

(** [first_position t v] is [v]'s first (preorder) appearance. *)
val first_position : t -> int -> int

(** [interval t v] is [(t_in, t_out)]: the DFS interval of [v] —
    the visiting times of its first and last appearances. *)
val interval : t -> int -> float * float

(** [dist_along t i j] is the tour distance [|R_{x_i} - R_{x_j}|]. *)
val dist_along : t -> int -> int -> float

(** Structural invariant check (adjacent tour entries are tree
    neighbours, times increase by edge weights, each vertex appears
    [deg_T] times, root one extra). Used by the test-suite. *)
val check : Tree.t -> t -> (unit, string) result
