let write_graph oc g =
  Printf.fprintf oc "c lightnet graph\np edge %d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges g (fun _ e ->
      Printf.fprintf oc "e %d %d %.17g\n" (e.Graph.u + 1) (e.Graph.v + 1) e.Graph.w)

let read_graph ic =
  let n = ref (-1) in
  let edges = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line = String.trim line in
       if line = "" then ()
       else begin
         match line.[0] with
         | 'c' -> ()
         | 'p' ->
           Scanf.sscanf line "p edge %d %d" (fun nv _ -> n := nv)
         | 'e' ->
           Scanf.sscanf line "e %d %d %f" (fun u v w ->
               edges := { Graph.u = u - 1; v = v - 1; w } :: !edges)
         | _ -> failwith ("Graph_io.read_graph: unexpected line " ^ line)
       end
     done
   with End_of_file -> ());
  if !n < 0 then failwith "Graph_io.read_graph: missing problem line";
  Graph.create !n !edges

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_graph path g = with_out path (fun oc -> write_graph oc g)
let load_graph path = with_in path read_graph

let write_edge_set oc ids =
  Printf.fprintf oc "# lightnet edge set (%d edges)\n" (List.length ids);
  List.iter (fun id -> Printf.fprintf oc "%d\n" id) ids

let read_edge_set ic =
  let ids = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then ids := int_of_string line :: !ids
     done
   with End_of_file -> ());
  List.rev !ids

let save_edge_set path ids = with_out path (fun oc -> write_edge_set oc ids)
let load_edge_set path = with_in path read_edge_set
