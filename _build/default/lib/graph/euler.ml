type t = {
  seq : int array;
  time : float array;
  positions : int list array;
  total : float;
}

type action = Enter of int * float | Return of int * float

let of_tree tree =
  if not (Tree.covers_all tree) then invalid_arg "Euler.of_tree: tree must span the graph";
  let g = Tree.host tree in
  let n = Graph.n g in
  let len = (2 * n) - 1 in
  let seq = Array.make (max len 1) (-1) in
  let time = Array.make (max len 1) 0.0 in
  let pos = ref 0 in
  let clock = ref 0.0 in
  let emit v =
    seq.(!pos) <- v;
    time.(!pos) <- !clock;
    incr pos
  in
  let edge_w c =
    match Tree.parent tree c with
    | Some (_, id) -> Graph.weight g id
    | None -> assert false
  in
  let actions = Stack.create () in
  Stack.push (Enter (Tree.root tree, 0.0)) actions;
  while not (Stack.is_empty actions) do
    match Stack.pop actions with
    | Enter (v, w) ->
      clock := !clock +. w;
      emit v;
      (* Children in increasing id order; push in reverse so the
         smallest id is processed first, each followed by the return
         step back into [v]. *)
      List.iter
        (fun c ->
          let wc = edge_w c in
          Stack.push (Return (v, wc)) actions;
          Stack.push (Enter (c, wc)) actions)
        (List.rev (Tree.children tree v))
    | Return (v, w) ->
      clock := !clock +. w;
      emit v
  done;
  assert (!pos = len);
  let positions = Array.make n [] in
  for i = len - 1 downto 0 do
    positions.(seq.(i)) <- i :: positions.(seq.(i))
  done;
  { seq; time; positions; total = (if len > 0 then time.(len - 1) else 0.0) }

let length t = Array.length t.seq

let first_position t v =
  match t.positions.(v) with
  | p :: _ -> p
  | [] -> invalid_arg "Euler.first_position: vertex has no appearance"

let interval t v =
  match t.positions.(v) with
  | [] -> invalid_arg "Euler.interval: vertex has no appearance"
  | p :: _ as all ->
    let rec last = function [ q ] -> q | _ :: tl -> last tl | [] -> assert false in
    (t.time.(p), t.time.(last all))

let dist_along t i j = Float.abs (t.time.(i) -. t.time.(j))

let check tree t =
  let g = Tree.host tree in
  let n = Graph.n g in
  let len = Array.length t.seq in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if len <> (2 * n) - 1 then fail "tour length %d <> 2n-1 = %d" len ((2 * n) - 1)
  else begin
    let rec scan i =
      if i >= len - 1 then Ok ()
      else begin
        let a = t.seq.(i) and b = t.seq.(i + 1) in
        let ok_edge =
          match Tree.parent tree a, Tree.parent tree b with
          | Some (p, id), _ when p = b -> Some id
          | _, Some (p, id) when p = a -> Some id
          | _ -> None
        in
        match ok_edge with
        | None -> fail "positions %d,%d not tree-adjacent" i (i + 1)
        | Some id ->
          let w = Graph.weight g id in
          if Float.abs (t.time.(i + 1) -. t.time.(i) -. w) > 1e-9 *. (1.0 +. w) then
            fail "time step at %d is %g, expected %g" i (t.time.(i + 1) -. t.time.(i)) w
          else scan (i + 1)
      end
    in
    match scan 0 with
    | Error _ as e -> e
    | Ok () ->
      let deg = Array.make n 0 in
      List.iter
        (fun id ->
          let u, v = Graph.endpoints g id in
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1)
        (Tree.edges tree);
      let rec check_counts v =
        if v >= n then Ok ()
        else begin
          let expected = if v = Tree.root tree then deg.(v) + 1 else deg.(v) in
          let got = List.length t.positions.(v) in
          if got <> expected then fail "vertex %d appears %d times, expected %d" v got expected
          else check_counts (v + 1)
        end
      in
      check_counts 0
  end
