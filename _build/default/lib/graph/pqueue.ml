type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable len : int;
}

let create () = { prio = Array.make 16 infinity; data = Array.make 16 None; len = 0 }

let is_empty q = q.len = 0
let length q = q.len

let grow q =
  let cap = Array.length q.prio in
  let prio = Array.make (2 * cap) infinity in
  let data = Array.make (2 * cap) None in
  Array.blit q.prio 0 prio 0 q.len;
  Array.blit q.data 0 data 0 q.len;
  q.prio <- prio;
  q.data <- data

let swap q i j =
  let p = q.prio.(i) and d = q.data.(i) in
  q.prio.(i) <- q.prio.(j);
  q.data.(i) <- q.data.(j);
  q.prio.(j) <- p;
  q.data.(j) <- d

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.prio.(i) < q.prio.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && q.prio.(l) < q.prio.(!smallest) then smallest := l;
  if r < q.len && q.prio.(r) < q.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q prio x =
  if q.len = Array.length q.prio then grow q;
  q.prio.(q.len) <- prio;
  q.data.(q.len) <- Some x;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop_min q =
  if q.len = 0 then raise Not_found;
  let p = q.prio.(0) in
  let x = match q.data.(0) with Some x -> x | None -> assert false in
  q.len <- q.len - 1;
  q.prio.(0) <- q.prio.(q.len);
  q.data.(0) <- q.data.(q.len);
  q.data.(q.len) <- None;
  if q.len > 0 then sift_down q 0;
  (p, x)

let peek_min q =
  if q.len = 0 then raise Not_found;
  match q.data.(0) with Some x -> (q.prio.(0), x) | None -> assert false
