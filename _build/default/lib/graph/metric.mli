(** Metric-space helpers: the shortest-path metric of a graph, balls,
    and an empirical doubling-dimension estimate (Section 7 works with
    graphs of bounded doubling dimension). *)

(** [ball g ~center ~radius] is the set of vertices within shortest-
    path distance [radius] of [center]. *)
val ball : Graph.t -> center:int -> radius:float -> int list

(** [estimate_ddim ?samples rng g] estimates the doubling dimension of
    [g]'s shortest-path metric as the maximum over sampled (center,
    radius) pairs of [log2 |B(v, 2r)| - log2 |B(v, r)|] — the standard
    KR-dimension proxy. An upper-bound flavour estimate; exact cover
    computation is NP-hard. *)
val estimate_ddim : ?samples:int -> Random.State.t -> Graph.t -> float

(** [separation g pts] is the minimum pairwise shortest-path distance
    among [pts] ([infinity] for fewer than two points). *)
val separation : Graph.t -> int list -> float

(** [covering_radius g pts] is the maximum over vertices of the
    distance to the nearest point of [pts] ([infinity] if [pts] is
    empty and the graph nonempty). *)
val covering_radius : Graph.t -> int list -> float
