(** Disjoint-set forest with union by rank and path compression.

    Used by Kruskal's algorithm and by the Borůvka phases of the
    distributed MST (for its sequential reference implementation). *)

type t

(** [create n] is a union-find structure over elements [0 .. n-1],
    each initially in its own singleton set. *)
val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]. Returns [true] if the
    sets were distinct (a merge happened), [false] otherwise. *)
val union : t -> int -> int -> bool

(** [same t x y] is [true] iff [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int

(** [size t x] is the cardinality of [x]'s set. *)
val size : t -> int -> int
