type edge = { u : int; v : int; w : float }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int) array array; (* vertex -> [(edge_id, neighbor)] *)
}

let normalize_edge n e =
  if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
    invalid_arg "Graph.create: endpoint out of range";
  if e.w <= 0.0 || Float.is_nan e.w then
    invalid_arg "Graph.create: weight must be positive and finite";
  if e.u <= e.v then e else { u = e.v; v = e.u; w = e.w }

let create n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  (* Drop self-loops, collapse parallel edges keeping the lightest. *)
  let tbl = Hashtbl.create (max 16 (List.length edge_list)) in
  List.iter
    (fun e ->
      let e = normalize_edge n e in
      if e.u <> e.v then begin
        let key = (e.u, e.v) in
        match Hashtbl.find_opt tbl key with
        | Some w0 when w0 <= e.w -> ()
        | _ -> Hashtbl.replace tbl key e.w
      end)
    edge_list;
  let edges =
    Hashtbl.fold (fun (u, v) w acc -> { u; v; w } :: acc) tbl []
    |> List.sort (fun a b -> compare (a.u, a.v) (b.u, b.v))
    |> Array.of_list
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (-1, -1)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id e ->
      adj.(e.u).(fill.(e.u)) <- (id, e.v);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (id, e.u);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  { n; edges; adj }

let n g = g.n
let m g = Array.length g.edges
let edge g id = g.edges.(id)
let weight g id = g.edges.(id).w

let endpoints g id =
  let e = g.edges.(id) in
  (e.u, e.v)

let other_end g id x =
  let e = g.edges.(id) in
  if e.u = x then e.v
  else if e.v = x then e.u
  else invalid_arg "Graph.other_end: vertex not an endpoint"

let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let iter_edges g f = Array.iteri f g.edges

let fold_edges g f acc =
  let acc = ref acc in
  Array.iteri (fun id e -> acc := f id e !acc) g.edges;
  !acc

let find_edge g u v =
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  let nbrs = g.adj.(u) in
  let rec scan i =
    if i >= Array.length nbrs then None
    else
      let id, w = nbrs.(i) in
      if w = v then Some id else scan (i + 1)
  in
  scan 0

let total_weight g = Array.fold_left (fun acc e -> acc +. e.w) 0.0 g.edges

let weight_of_edges g ids = List.fold_left (fun acc id -> acc +. weight g id) 0.0 ids

let subgraph g ids =
  let ids = Array.of_list ids in
  let sub = create g.n (Array.to_list (Array.map (fun id -> g.edges.(id)) ids)) in
  (* [create] sorts and dedups; rebuild the id mapping by lookup. *)
  let map = Hashtbl.create (Array.length ids) in
  Array.iter
    (fun id ->
      let e = g.edges.(id) in
      Hashtbl.replace map (e.u, e.v) id)
    ids;
  let original_id sub_id =
    let e = sub.edges.(sub_id) in
    Hashtbl.find map (e.u, e.v)
  in
  (sub, original_id)

let components g =
  let comp = Array.make g.n (-1) in
  let c = ref 0 in
  let stack = Stack.create () in
  for s = 0 to g.n - 1 do
    if comp.(s) < 0 then begin
      Stack.push s stack;
      comp.(s) <- !c;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        Array.iter
          (fun (_, u) ->
            if comp.(u) < 0 then begin
              comp.(u) <- !c;
              Stack.push u stack
            end)
          g.adj.(v)
      done;
      incr c
    end
  done;
  (!c, comp)

let is_connected g =
  if g.n <= 1 then true
  else
    let c, _ = components g in
    c = 1

let bfs_hops g src =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (_, u) ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u q
        end)
      g.adj.(v)
  done;
  dist

let hop_diameter g =
  if not (is_connected g) then invalid_arg "Graph.hop_diameter: disconnected";
  (* Exact: BFS from every vertex. Fine at simulation scale. *)
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let dist = bfs_hops g v in
    Array.iter (fun d -> if d > !best then best := d) dist
  done;
  !best

let weight_aspect_ratio g =
  if m g = 0 then 1.0
  else begin
    let lo = ref infinity and hi = ref 0.0 in
    Array.iter
      (fun e ->
        if e.w < !lo then lo := e.w;
        if e.w > !hi then hi := e.w)
      g.edges;
    !hi /. !lo
  end

let compare_edges g a b =
  let c = Float.compare g.edges.(a).w g.edges.(b).w in
  if c <> 0 then c else Int.compare a b

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, aspect=%.3g)" g.n (m g) (weight_aspect_ratio g)
