let lightness g ids =
  let w_mst = Mst_seq.weight g in
  Graph.weight_of_edges g ids /. w_mst

let in_set g ids =
  let mask = Array.make (Graph.m g) false in
  List.iter (fun id -> mask.(id) <- true) ids;
  fun id -> mask.(id)

let max_edge_stretch g ids =
  let edge_ok = in_set g ids in
  let worst = ref 1.0 in
  (* Dijkstra in H from each vertex once; check its incident edges. *)
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > 0 then begin
      let sp = Paths.dijkstra ~edge_ok g v in
      Array.iter
        (fun (id, u) ->
          if u > v then begin
            let s = sp.dist.(u) /. Graph.weight g id in
            if s > !worst then worst := s
          end)
        (Graph.neighbors g v)
    end
  done;
  !worst

let sampled_edge_stretch rng g ids ~samples =
  let m = Graph.m g in
  if m = 0 then 1.0
  else begin
    let edge_ok = in_set g ids in
    let worst = ref 1.0 in
    (* Group sampled edges by endpoint to reuse Dijkstra runs. *)
    let chosen = Array.init samples (fun _ -> Random.State.int rng m) in
    let by_src = Hashtbl.create samples in
    Array.iter
      (fun id ->
        let u, _ = Graph.endpoints g id in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_src u) in
        Hashtbl.replace by_src u (id :: cur))
      chosen;
    Hashtbl.iter
      (fun u ids_here ->
        let sp = Paths.dijkstra ~edge_ok g u in
        List.iter
          (fun id ->
            let v = Graph.other_end g id u in
            let s = sp.dist.(v) /. Graph.weight g id in
            if s > !worst then worst := s)
          ids_here)
      by_src;
    !worst
  end

let root_stretch g ids ~root =
  let edge_ok = in_set g ids in
  let exact = Paths.dijkstra g root in
  let approx = Paths.dijkstra ~edge_ok g root in
  let worst = ref 1.0 in
  for v = 0 to Graph.n g - 1 do
    if v <> root && exact.dist.(v) > 0.0 then begin
      let s = approx.dist.(v) /. exact.dist.(v) in
      if s > !worst then worst := s
    end
  done;
  !worst

let tree_root_stretch g tree ~root =
  let exact = Paths.dijkstra g root in
  let worst = ref 1.0 in
  for v = 0 to Graph.n g - 1 do
    if v <> root && exact.dist.(v) > 0.0 then begin
      let s = Tree.dist_to_root tree v /. exact.dist.(v) in
      if s > !worst then worst := s
    end
  done;
  !worst

type report = {
  edges : int;
  weight : float;
  lightness : float;
  stretch : float;
  sampled : bool;
}

let report ?sample rng g ids =
  let stretch, sampled =
    match sample with
    | Some samples -> (sampled_edge_stretch rng g ids ~samples, true)
    | None -> (max_edge_stretch g ids, false)
  in
  {
    edges = List.length ids;
    weight = Graph.weight_of_edges g ids;
    lightness = lightness g ids;
    stretch;
    sampled;
  }

let pp_report ppf r =
  Format.fprintf ppf "edges=%d weight=%.1f lightness=%.3f stretch=%.4f%s" r.edges
    r.weight r.lightness r.stretch
    (if r.sampled then " (sampled)" else "")
