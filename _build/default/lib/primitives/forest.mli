(** Communication over a forest of rooted fragment trees.

    The KP98-style MST construction leaves every vertex knowing which
    of its incident edges belong to its fragment's internal tree; all
    fragment-local computation in the paper (tour lengths, DFS
    intervals, ABP marking, ...) is an up- or down-pass over this
    forest, run in parallel in all fragments, costing (max fragment
    hop-diameter) rounds. These helpers run such passes natively on the
    engine. *)

(** [orient g ~tree_edges ~is_root] floods from every root through the
    forest edges; each vertex adopts the first sender as parent (ties
    by smaller sender id). Returns [parent_edge] ([-1] at roots) and
    stats. [tree_edges.(v)] lists [v]'s incident forest edge ids.
    Vertices not reached from any root keep [-2]. *)
val orient :
  Ln_graph.Graph.t ->
  tree_edges:int list array ->
  is_root:(int -> bool) ->
  int array * Ln_congest.Engine.stats

(** [up g ~parent_edge ~tree_edges ~compute] — bottom-up pass: once a
    vertex has received values from all its forest children it computes
    [compute v (children_values)] (pairs of child vertex and value) and
    forwards the result to its parent. Every vertex's computed value is
    returned, along with the per-vertex children values (each vertex
    legitimately knows what its children sent it — needed by the DFS
    interval assignment of Section 3.3). Rounds = forest height. *)
val up :
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  parent_edge:int array ->
  tree_edges:int list array ->
  compute:(int -> (int * 'a) list -> 'a) ->
  'a array * (int * 'a) list array * Ln_congest.Engine.stats

(** [down g ~parent_edge ~tree_edges ~seed ~emit] — top-down pass:
    every root [r] starts with value [seed r]; a vertex holding value
    [x] sends [emit v x child] to each forest child [child] (distinct
    messages per child are fine — distinct edges). Returns each
    vertex's received value ([None] if unreached). *)
val down :
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  parent_edge:int array ->
  tree_edges:int list array ->
  seed:(int -> 'a option) ->
  emit:(int -> 'a -> int -> 'a) ->
  'a option array * Ln_congest.Engine.stats
