(** One-round neighbourhood exchange: every vertex sends one O(1)-word
    value over each incident edge and collects what its neighbours
    sent. The workhorse for "each vertex learns the cluster/fragment id
    of its neighbours" steps of Sections 5 and the MST construction. *)

(** [ints g values] delivers [values.(v)] from [v] over each incident
    edge; returns for every vertex the list of [(edge_id, received)]
    pairs, and stats (always 1 round). *)
val ints :
  Ln_graph.Graph.t -> int array -> (int * int) list array * Ln_congest.Engine.stats

(** [floats g values] — same with float payloads (e.g. distance
    estimates for parent selection). *)
val floats :
  Ln_graph.Graph.t -> float array -> (int * float) list array * Ln_congest.Engine.stats

(** [payloads ~words g values] — generic variant with a per-payload
    word size and an optional edge filter (messages are sent only over
    edges satisfying [edge_ok]). *)
val payloads :
  ?edge_ok:(int -> bool) ->
  ?word_cap:int ->
  words:('a -> int) ->
  Ln_graph.Graph.t ->
  'a array ->
  (int * 'a) list array * Ln_congest.Engine.stats
