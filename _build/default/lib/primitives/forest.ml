module Graph = Ln_graph.Graph
module Engine = Ln_congest.Engine

let orient g ~tree_edges ~is_root =
  let open Engine in
  let program : (int, int) Engine.program =
    {
      name = "forest-orient";
      words = (fun _ -> 1);
      init =
        (fun ctx ->
          if is_root ctx.me then
            (-1, List.map (fun e -> { via = e; msg = ctx.me }) tree_edges.(ctx.me))
          else ((-2), []));
      step =
        (fun ctx ~round:_ s inbox ->
          if s <> -2 then (s, [], false)
          else begin
            match
              List.sort
                (fun (a : int received) b -> Int.compare a.from b.from)
                inbox
            with
            | [] -> (s, [], false)
            | first :: _ ->
              let outs =
                tree_edges.(ctx.me)
                |> List.filter (fun e -> e <> first.edge)
                |> List.map (fun e -> { via = e; msg = ctx.me })
              in
              (first.edge, outs, false)
          end);
    }
  in
  Engine.run g program

type 'a up_state = {
  waiting : int;
  collected : (int * 'a) list;
  value : 'a option;
}

let up ?(words = fun _ -> 2) g ~parent_edge ~tree_edges ~compute =
  let open Engine in
  let n = Graph.n g in
  (* A vertex's forest children are its incident forest edges minus the
     parent edge. *)
  let child_count =
    Array.init n (fun v ->
        List.length (List.filter (fun e -> e <> parent_edge.(v)) tree_edges.(v)))
  in
  let finish ctx s =
    let value = compute ctx.me s.collected in
    let outs =
      if parent_edge.(ctx.me) >= 0 then
        [ { via = parent_edge.(ctx.me); msg = value } ]
      else []
    in
    ({ s with value = Some value }, outs, false)
  in
  let program : ('a up_state, 'a) Engine.program =
    {
      name = "forest-up";
      words;
      init = (fun ctx -> ({ waiting = child_count.(ctx.me); collected = []; value = None }, []));
      step =
        (fun ctx ~round:_ s inbox ->
          if s.value <> None then (s, [], false)
          else begin
            let s =
              List.fold_left
                (fun s (r : 'a received) ->
                  { s with waiting = s.waiting - 1; collected = (r.from, r.payload) :: s.collected })
                s inbox
            in
            if s.waiting = 0 then finish ctx s else (s, [], false)
          end);
    }
  in
  let states, stats = Engine.run g program in
  let values =
    Array.map
      (function
        | { value = Some v; _ } -> v
        | { value = None; _ } -> failwith "Forest.up: vertex never completed (bad forest?)")
      states
  in
  let children_values = Array.map (fun s -> s.collected) states in
  (values, children_values, stats)

let down ?(words = fun _ -> 3) g ~parent_edge ~tree_edges ~seed ~emit =
  let open Engine in
  let sends_of ctx v =
    tree_edges.(ctx.Engine.me)
    |> List.filter (fun e -> e <> parent_edge.(ctx.Engine.me))
    |> List.map (fun e ->
           let child = Graph.other_end g e ctx.Engine.me in
           { via = e; msg = emit ctx.Engine.me v child })
  in
  let program : ('a option, 'a) Engine.program =
    {
      name = "forest-down";
      words;
      init =
        (fun ctx ->
          if parent_edge.(ctx.me) < 0 then begin
            match seed ctx.me with
            | Some v -> (Some v, sends_of ctx v)
            | None -> (None, [])
          end
          else (None, []));
      step =
        (fun ctx ~round:_ s inbox ->
          match s, inbox with
          | Some _, _ | None, [] -> (s, [], false)
          | None, { payload; _ } :: _ -> (Some payload, sends_of ctx payload, false));
    }
  in
  Engine.run g program
