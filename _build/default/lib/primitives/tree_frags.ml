module Graph = Ln_graph.Graph

type t = {
  count : int;
  frag_of : int array;
  root_of : int array;
  parent_frag : int array;
  frag_parent_edge : int array;
  internal_parent : int array;
  tree_edges : int list array;
  ext_children : (int * int) list array;
}

let decompose g ~parent_edge ~root ~target_size =
  let n = Graph.n g in
  let children = Array.make n [] in
  for v = 0 to n - 1 do
    if parent_edge.(v) >= 0 then begin
      let p = Graph.other_end g parent_edge.(v) v in
      children.(p) <- v :: children.(p)
    end
  done;
  (* Post-order accumulation: cut when the pending component size
     reaches the target. [cut.(v)] marks v as a fragment root. *)
  let cut = Array.make n false in
  cut.(root) <- true;
  let pending = Array.make n 0 in
  (* iterative post-order *)
  let order = Array.make n 0 in
  let idx = ref 0 in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    order.(!idx) <- v;
    incr idx;
    List.iter (fun c -> Stack.push c stack) children.(v)
  done;
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let size =
      List.fold_left (fun acc c -> if cut.(c) then acc else acc + pending.(c)) 1 children.(v)
    in
    if size >= target_size && v <> root then begin
      cut.(v) <- true;
      pending.(v) <- size
    end
    else pending.(v) <- size
  done;
  (* Fragment of v = nearest cut ancestor (inclusive). Assign along the
     preorder. *)
  let frag_of = Array.make n (-1) in
  let root_list = ref [] in
  let count = ref 0 in
  let frag_index = Array.make n (-1) in
  (* frag_index: root vertex -> fragment id *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    if cut.(v) then begin
      frag_index.(v) <- !count;
      root_list := v :: !root_list;
      frag_of.(v) <- !count;
      incr count
    end
    else begin
      let p = Graph.other_end g parent_edge.(v) v in
      frag_of.(v) <- frag_of.(p)
    end
  done;
  let root_of = Array.make !count (-1) in
  List.iter (fun r -> root_of.(frag_index.(r)) <- r) !root_list;
  let parent_frag = Array.make !count (-1) in
  let frag_parent_edge = Array.make !count (-1) in
  for f = 0 to !count - 1 do
    let r = root_of.(f) in
    if r <> root then begin
      let e = parent_edge.(r) in
      let p = Graph.other_end g e r in
      parent_frag.(f) <- frag_of.(p);
      frag_parent_edge.(f) <- e
    end
  done;
  let internal_parent =
    Array.init n (fun v ->
        if parent_edge.(v) < 0 then -1
        else begin
          let p = Graph.other_end g parent_edge.(v) v in
          if frag_of.(p) = frag_of.(v) then parent_edge.(v) else -1
        end)
  in
  let tree_edges = Array.make n [] in
  for v = 0 to n - 1 do
    if internal_parent.(v) >= 0 then begin
      let p = Graph.other_end g internal_parent.(v) v in
      tree_edges.(v) <- internal_parent.(v) :: tree_edges.(v);
      tree_edges.(p) <- internal_parent.(v) :: tree_edges.(p)
    end
  done;
  let ext_children = Array.make n [] in
  for f = 0 to !count - 1 do
    let e = frag_parent_edge.(f) in
    if e >= 0 then begin
      let z = root_of.(f) in
      let p = Graph.other_end g e z in
      ext_children.(p) <- (z, e) :: ext_children.(p)
    end
  done;
  {
    count = !count;
    frag_of;
    root_of;
    parent_frag;
    frag_parent_edge;
    internal_parent;
    tree_edges;
    ext_children;
  }
