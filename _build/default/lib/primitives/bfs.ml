module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine

type state = { dist : int; parent_edge : int }

type msg = Join of int (* sender's BFS distance *)

let program root : (state, msg) Engine.program =
  let open Engine in
  {
    name = "bfs-tree";
    words = (fun (Join _) -> 1);
    init =
      (fun ctx ->
        if ctx.me = root then
          ( { dist = 0; parent_edge = -1 },
            Array.to_list ctx.neighbors
            |> List.map (fun (edge, _) -> { via = edge; msg = Join 0 }) )
        else ({ dist = -1; parent_edge = -1 }, []));
    step =
      (fun ctx ~round:_ s inbox ->
        if s.dist >= 0 then (s, [], false)
        else begin
          (* Adopt the smallest-id sender among this round's offers. *)
          let best =
            List.fold_left
              (fun acc (r : msg received) ->
                match acc with
                | Some (b : msg received) when b.from <= r.from -> acc
                | _ -> Some r)
              None inbox
          in
          match best with
          | None -> (s, [], false)
          | Some r ->
            let (Join d) = r.payload in
            let s = { dist = d + 1; parent_edge = r.edge } in
            let outs =
              Array.to_list ctx.neighbors
              |> List.filter (fun (edge, _) -> edge <> r.edge)
              |> List.map (fun (edge, _) -> { via = edge; msg = Join s.dist })
            in
            (s, outs, false)
        end);
  }

let tree g ~root =
  let states, stats = Engine.run g (program root) in
  let edges = ref [] in
  Array.iter (fun s -> if s.parent_edge >= 0 then edges := s.parent_edge :: !edges) states;
  (Tree.of_edges g ~root !edges, stats)
