(** Keyed global aggregation with pipelining.

    Every vertex holds candidate [(key, value)] pairs over a key space
    of size [nkeys] (in Section 5 the keys are clusters and the values
    are the [(m, s)] messages of the EN17b simulation). All vertices
    must learn, for every key, the globally best value. Candidates are
    upcast over the BFS tree with en-route combining — each tree edge
    carries at most one O(1)-word pair per round, so the upcast takes
    O(nkeys + D) rounds as in the paper's convergecast phase — and the
    root's final table is then downcast with {!Broadcast.downcast}.

    Protocol termination is detected by engine quiescence; an explicit
    in-band termination detector would add O(D) rounds (noted in
    DESIGN.md). *)

(** [global_best g ~tree ~nkeys ~local ~better] returns the per-key
    global best (or [None] for keys no vertex proposed) and combined
    engine stats. [better a b] must be a strict order: [true] iff [a]
    improves on [b]. *)
val global_best :
  ?value_words:int ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  nkeys:int ->
  local:(int -> (int * 'v) list) ->
  better:('v -> 'v -> bool) ->
  'v option array * Ln_congest.Engine.stats
