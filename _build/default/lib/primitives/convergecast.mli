(** Tree aggregation (convergecast): every vertex holds a value of a
    commutative semigroup; the root learns the combination of all of
    them in [height(tree)] rounds, one O(1)-word message per tree edge.

    Used for global sums/max (e.g. computing the MST weight [L] of
    Section 5, termination checks, and fragment-internal aggregation
    when run on a fragment's subtree). *)

(** [aggregate g ~tree ~value ~combine] combines all [value v] bottom-up
    and returns the root's total and engine stats. [words] bounds the
    encoded size of a partial aggregate (default 2). *)
val aggregate :
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  value:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a * Ln_congest.Engine.stats

(** [aggregate_all g ~tree ...] additionally floods the root's total
    back down so every vertex knows it; rounds ≈ 2·height. *)
val aggregate_all :
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  value:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a * Ln_congest.Engine.stats
