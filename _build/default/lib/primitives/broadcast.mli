(** Pipelined all-to-all broadcast over a rooted tree — Lemma 1 of the
    paper: if every vertex [v] holds [m_v] messages of O(1) words with
    [M = Σ m_v] total, all vertices receive all messages within
    [O(M + D)] rounds.

    Implemented natively on the engine as an upcast of every item to
    the root (one item per tree edge per round, with per-subtree
    completion detection) followed by a pipelined downcast. *)

(** [all_to_all g ~tree ~items] returns per-vertex the list of all
    items in the network (in unspecified order) and engine stats.
    Items must fit in [words] machine words each (default 2, i.e. a
    constant number of O(log n)-bit words; the engine's default cap
    accommodates the one-word protocol overhead). *)
val all_to_all :
  ?word_cap:int ->
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  items:'a list array ->
  'a list array * Ln_congest.Engine.stats

(** [gather g ~tree ~items] — only the upcast: the root ends up with
    all items; other vertices get []. Cheaper when only the root needs
    the data (e.g. break-point filtering in Section 4). *)
val gather :
  ?word_cap:int ->
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  items:'a list array ->
  'a list array * Ln_congest.Engine.stats

(** [downcast g ~tree ~items] — only the downcast: the root's items are
    delivered to every vertex. *)
val downcast :
  ?word_cap:int ->
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  items:'a list ->
  'a list array * Ln_congest.Engine.stats
