(** Distributed BFS-tree construction (the tree [τ] every global
    communication pattern in the paper is pipelined over).

    A flood from the root; each node adopts the first sender as parent
    (ties broken towards the smaller vertex id, deterministically).
    Completes in [D + O(1)] rounds. *)

(** [tree g ~root] runs the flood on the engine and returns the rooted
    BFS tree together with engine statistics. *)
val tree :
  Ln_graph.Graph.t -> root:int -> Ln_graph.Tree.t * Ln_congest.Engine.stats
