lib/primitives/bfs.mli: Ln_congest Ln_graph
