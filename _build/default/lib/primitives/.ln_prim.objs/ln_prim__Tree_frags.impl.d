lib/primitives/tree_frags.ml: Array List Ln_graph Stack
