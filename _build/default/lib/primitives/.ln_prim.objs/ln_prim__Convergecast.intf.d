lib/primitives/convergecast.mli: Ln_congest Ln_graph
