lib/primitives/exchange.ml: Array List Ln_congest
