lib/primitives/exchange.mli: Ln_congest Ln_graph
