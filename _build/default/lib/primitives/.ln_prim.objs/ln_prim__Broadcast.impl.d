lib/primitives/broadcast.ml: Array List Ln_congest Ln_graph
