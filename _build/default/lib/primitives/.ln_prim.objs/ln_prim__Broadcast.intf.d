lib/primitives/broadcast.mli: Ln_congest Ln_graph
