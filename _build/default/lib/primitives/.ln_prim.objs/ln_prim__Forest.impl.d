lib/primitives/forest.ml: Array Int List Ln_congest Ln_graph
