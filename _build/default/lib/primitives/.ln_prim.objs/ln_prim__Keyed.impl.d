lib/primitives/keyed.ml: Array Broadcast Hashtbl List Ln_congest Ln_graph Queue
