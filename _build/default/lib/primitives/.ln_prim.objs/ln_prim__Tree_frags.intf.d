lib/primitives/tree_frags.mli: Ln_graph
