lib/primitives/keyed.mli: Ln_congest Ln_graph
