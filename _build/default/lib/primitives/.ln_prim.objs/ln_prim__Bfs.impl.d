lib/primitives/bfs.ml: Array List Ln_congest Ln_graph
