lib/primitives/forest.mli: Ln_congest Ln_graph
