lib/primitives/convergecast.ml: Array List Ln_congest Ln_graph
