module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine

type 'a msg = Partial of 'a | Total of 'a

type 'a state = {
  acc : 'a;
  waiting : int; (* children yet to report *)
  sent_up : bool;
  total : 'a option;
}

let program ~name ~words ~flood_down shape ~value ~combine :
    ('a state, 'a msg) Engine.program =
  let open Engine in
  let is_root v = fst shape.(v) = -1 in
  {
    name;
    words = (function Partial x | Total x -> words x);
    init =
      (fun ctx ->
        let parent_edge, child_edges = shape.(ctx.me) in
        let s =
          { acc = value ctx.me; waiting = List.length child_edges; sent_up = false; total = None }
        in
        if s.waiting = 0 && not (is_root ctx.me) then
          (* Leaves fire immediately. *)
          ({ s with sent_up = true }, [ { via = parent_edge; msg = Partial s.acc } ])
        else if s.waiting = 0 && is_root ctx.me then
          let s = { s with total = Some s.acc } in
          ( s,
            if flood_down then
              List.map (fun e -> { via = e; msg = Total s.acc }) child_edges
            else [] )
        else (s, []));
    step =
      (fun ctx ~round:_ s inbox ->
        let parent_edge, child_edges = shape.(ctx.me) in
        let s =
          List.fold_left
            (fun s (r : 'a msg received) ->
              match r.payload with
              | Partial x -> { s with acc = combine s.acc x; waiting = s.waiting - 1 }
              | Total x -> { s with total = Some x })
            s inbox
        in
        if s.waiting = 0 && (not s.sent_up) && not (is_root ctx.me) then
          ({ s with sent_up = true }, [ { via = parent_edge; msg = Partial s.acc } ], false)
        else if s.waiting = 0 && is_root ctx.me && s.total = None then begin
          let s = { s with total = Some s.acc } in
          ( s,
            (if flood_down then List.map (fun e -> { via = e; msg = Total s.acc }) child_edges
             else []),
            false )
        end
        else if flood_down && s.total <> None && not (is_root ctx.me) then begin
          (* Forward the total once. *)
          match s.total with
          | Some t when child_edges <> [] ->
            (* Only forward on the round we learned it: inbox contained
               the Total message. *)
            let just_learned =
              List.exists
                (fun (r : 'a msg received) ->
                  match r.payload with Total _ -> true | Partial _ -> false)
                inbox
            in
            if just_learned then
              (s, List.map (fun e -> { via = e; msg = Total t }) child_edges, false)
            else (s, [], false)
          | _ -> (s, [], false)
        end
        else (s, [], false));
  }

let node_shapes g tree =
  Array.init (Graph.n g) (fun v ->
      let parent_edge = match Tree.parent tree v with Some (_, e) -> e | None -> -1 in
      let child_edges =
        List.filter_map
          (fun c -> match Tree.parent tree c with Some (_, e) -> Some e | None -> None)
          (Tree.children tree v)
      in
      (parent_edge, child_edges))

let run ~flood_down ?(words = fun _ -> 2) g ~tree ~value ~combine =
  let shape = node_shapes g tree in
  let states, stats =
    Engine.run g (program ~name:"convergecast" ~words ~flood_down shape ~value ~combine)
  in
  let root = Tree.root tree in
  match states.(root).total with
  | Some t -> (t, stats)
  | None -> failwith "Convergecast: root never completed (tree not spanning?)"

let aggregate ?words g ~tree ~value ~combine =
  run ~flood_down:false ?words g ~tree ~value ~combine

let aggregate_all ?words g ~tree ~value ~combine =
  run ~flood_down:true ?words g ~tree ~value ~combine
