(** Fragment decomposition of an arbitrary rooted spanning tree into
    O(√n) subtrees of O(√n) size — the structure Section 4.2 obtains by
    "applying the first phase of the MST algorithm of [KP98]" to the
    approximate shortest-path tree T_rt.

    The decomposition itself is computed centrally and stands in for
    that black-box invocation (charge O(√n) rounds — see DESIGN.md);
    everything downstream (fragment-local up/down passes) runs natively
    via {!Forest}. *)

type t = {
  count : int;
  frag_of : int array;  (** vertex -> fragment *)
  root_of : int array;  (** fragment -> its root vertex *)
  parent_frag : int array;  (** fragment -> parent fragment (-1 at top) *)
  frag_parent_edge : int array;
      (** fragment -> tree edge from its root to the parent fragment *)
  internal_parent : int array;
      (** vertex -> parent edge if inside the same fragment, -1 at
          fragment roots *)
  tree_edges : int list array;
      (** vertex -> incident intra-fragment tree edges *)
  ext_children : (int * int) list array;
      (** vertex -> (child fragment root, connecting edge) for child
          fragments attached below this vertex *)
}

(** [decompose g ~parent_edge ~root ~target_size] cuts the rooted tree
    given by [parent_edge] ([-1] at [root]) into fragments of size
    ~[target_size] (subtree-accumulation cutting; size can exceed the
    target by a degree factor, reported by callers' stats). *)
val decompose :
  Ln_graph.Graph.t -> parent_edge:int array -> root:int -> target_size:int -> t
