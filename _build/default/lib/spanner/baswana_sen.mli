(** The Baswana–Sen (2k−1)-spanner [BS07], distributed — used by
    Section 5 for the light bucket E′ = {e : w(e) ≤ L/n} (its weight is
    negligible there, so only the O(k·n^{1+1/k}) edge bound matters).

    Clusters are grown over k−1 sampling phases (probability n^{-1/k});
    in each phase the sampling bit is flooded down the cluster trees
    (native {!Ln_prim.Forest.down}, ≤ i rounds in phase i), cluster ids
    and bits are exchanged with neighbours (1 round), and every vertex
    decides locally which edges to keep, which sampled cluster to join
    and which incident edges die. Stretch 2k−1 is deterministic; the
    expected size is O(k·n^{1+1/k}).

    [edge_ok] restricts the algorithm to a subgraph (the bucket). *)

type t = {
  edges : int list;  (** spanner edge ids, sorted *)
  rounds : int;  (** native rounds consumed *)
}

val build :
  ?edge_ok:(int -> bool) ->
  rng:Random.State.t ->
  k:int ->
  Ln_graph.Graph.t ->
  t
