module Graph = Ln_graph.Graph
module Tour_table = Ln_traversal.Tour_table

type assignment =
  | Global of { nclusters : int; cluster_of : int array }
  | Interval of {
      centers : bool array;
      cluster_of : int array;
      chosen_pos : int array;
      max_interval : int;
    }

let classify ~l_total ~epsilon ~n w =
  if w > l_total then `Heavy
  else if w <= l_total /. float_of_int n then `Light
  else begin
    (* Largest i with w <= L/(1+eps)^i, i.e. i = floor(log_{1+eps} (L/w)). *)
    let i = int_of_float (Float.log (l_total /. w) /. Float.log (1.0 +. epsilon)) in
    let cap = int_of_float (Float.ceil (Float.log (float_of_int n) /. Float.log (1.0 +. epsilon))) in
    `Bucket (min i cap)
  end

let bucket_count ~epsilon ~n =
  1 + int_of_float (Float.ceil (Float.log (float_of_int n) /. Float.log (1.0 +. epsilon)))

let bucket_width ~l_total ~epsilon i = l_total /. ((1.0 +. epsilon) ** float_of_int i)

let case1_threshold ~epsilon ~k ~n =
  (* i < log_{1+eps} (eps * n^{k/(2k+1)}) *)
  let expn = float_of_int k /. float_of_int ((2 * k) + 1) in
  Float.log (epsilon *. (float_of_int n ** expn)) /. Float.log (1.0 +. epsilon)

let assign g ~tt ~l_total ~epsilon ~k ~i =
  let n = Graph.n g in
  let wi = bucket_width ~l_total ~epsilon i in
  let cell = epsilon *. wi in
  if float_of_int i < case1_threshold ~epsilon ~k ~n then begin
    let nclusters = int_of_float (Float.ceil (l_total /. cell)) + 2 in
    let cluster_of =
      Array.init n (fun v ->
          match tt.Tour_table.positions_of.(v) with
          | j :: _ -> int_of_float (Float.ceil (tt.Tour_table.time_of.(j) /. cell))
          | [] -> 0)
    in
    Global { nclusters; cluster_of }
  end
  else begin
    let len = tt.Tour_table.len in
    let q =
      max 1
        (int_of_float
           (Float.ceil (epsilon *. float_of_int n /. ((1.0 +. epsilon) ** float_of_int i))))
    in
    let centers = Array.make len false in
    if len > 0 then centers.(0) <- true;
    for j = 1 to len - 1 do
      let r_prev = tt.Tour_table.time_of.(j - 1) and r = tt.Tour_table.time_of.(j) in
      (* condition 1: R crosses a multiple of cell *)
      let crosses = Float.floor (r /. cell) > Float.floor ((r_prev +. 1e-12) /. cell)
                    || Float.rem r cell = 0.0 in
      (* condition 2: index multiple of q *)
      if crosses || j mod q = 0 then centers.(j) <- true
    done;
    (* Nearest center at or left of each position. *)
    let center_left = Array.make len 0 in
    let cur = ref 0 in
    for j = 0 to len - 1 do
      if centers.(j) then cur := j;
      center_left.(j) <- !cur
    done;
    let chosen_pos =
      Array.init n (fun v ->
          match tt.Tour_table.positions_of.(v) with j :: _ -> j | [] -> 0)
    in
    let cluster_of = Array.map (fun j -> center_left.(j)) chosen_pos in
    let max_interval = ref 1 in
    let run = ref 0 in
    for j = 0 to len - 1 do
      if centers.(j) then run := 1 else incr run;
      if !run > !max_interval then max_interval := !run
    done;
    Interval { centers; cluster_of; chosen_pos; max_interval = !max_interval }
  end
