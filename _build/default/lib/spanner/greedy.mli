(** The sequential greedy spanner [ADD+93] — the baseline the paper's
    Table-1 spanner is compared against (and, by [FS16], an
    existentially optimal construction: O(n^{1+1/k}) edges and
    O(n^{1/k}) lightness for stretch 2k-1).

    Edges are scanned in nondecreasing weight order (ties by id); an
    edge is kept iff the spanner built so far does not already provide
    a path of length ≤ t·w(e). *)

(** [build g ~stretch] returns the greedy [stretch]-spanner's edge ids
    (sorted). The MST is always a subset of the result.
    @raise Invalid_argument if [stretch < 1]. *)
val build : Ln_graph.Graph.t -> stretch:float -> int list
