(** Distributed simulation of the [EN17b] unweighted spanner on the
    cluster graphs G_i of Section 5 — the paper's main technical step.

    Both cases run the same k max-propagation rounds as {!En17} (and,
    given the same exponential draws [r], produce the same cluster-
    graph spanner — the test-suite checks this against the reference):

    - {b case 1}: the per-cluster maxima are computed by keyed
      aggregation over the BFS tree and the resulting table broadcast,
      O(|C_i| + D) rounds per EN17b round; the final edge-selection
      convergecasts one candidate per (cluster, source) pair with
      en-route deduplication, O(|H_i| + D) rounds.

    - {b case 2}: all coordination happens inside the communication
      intervals of L ({!Intervals}), O(max interval) rounds per EN17b
      round, all intervals in parallel; edge selection is a pipelined
      interval gather with deduplication at the centers.

    Returned edges are concrete G-edge ids (the representative
    (a, b) ∈ A×B ∩ E_i chosen for each cluster-graph edge). *)

(** [case1 ~rng g ~bfs ~k ~nclusters ~cluster_of ~in_bucket ledger]
    simulates EN17b globally. [r] fixes the exponential draws (for
    cross-checking against the reference); fresh draws otherwise. *)
val case1 :
  ?r:float array ->
  rng:Random.State.t ->
  Ln_graph.Graph.t ->
  bfs:Ln_graph.Tree.t ->
  k:int ->
  nclusters:int ->
  cluster_of:int array ->
  in_bucket:(int -> bool) ->
  Ln_congest.Ledger.t ->
  int list

(** [case2 ~rng g ~tt ~k ~centers ~cluster_of ~chosen_pos ~in_bucket
    ledger] simulates EN17b inside the communication intervals.
    [r] optionally fixes the draw for each center position. *)
val case2 :
  ?r:(int, float) Hashtbl.t ->
  rng:Random.State.t ->
  Ln_graph.Graph.t ->
  tt:Ln_traversal.Tour_table.t ->
  k:int ->
  centers:bool array ->
  cluster_of:int array ->
  chosen_pos:int array ->
  in_bucket:(int -> bool) ->
  Ln_congest.Ledger.t ->
  int list
