(** Weight bucketing and tour-based clustering for Section 5.

    With L = 2·w(MST): the light bucket E′ holds edges of weight
    ≤ L/n (handled by Baswana–Sen); bucket i ∈ {0..⌈log_{1+ε} n⌉}
    holds weights in (L/(1+ε)^{i+1}, L/(1+ε)^i]; heavier edges are
    already 1-stretched by the MST. For bucket i the vertex set is
    partitioned into clusters of weak diameter ε·w_i using the Euler
    tour:

    - {b case 1} (few clusters, i < log_{1+ε}(ε·n^{k/(2k+1)})): the
      cluster of v is ⌈R_x/(ε·w_i)⌉ for an arbitrary appearance x of v
      — all coordination is global (BFS-tree aggregation);
    - {b case 2}: cluster centers are the tour positions where R
      crosses a multiple of ε·w_i or the index crosses a multiple of
      ⌈ε·n/(1+ε)^i⌉, giving communication intervals of bounded hop
      length; the cluster of v is the nearest center left of its
      chosen appearance. *)

type assignment =
  | Global of { nclusters : int; cluster_of : int array }
  | Interval of {
      centers : bool array;  (** per position *)
      cluster_of : int array;  (** vertex -> its center's position *)
      chosen_pos : int array;  (** vertex -> the appearance that chose *)
      max_interval : int;  (** longest communication interval *)
    }

(** Which bucket an edge weight falls into. *)
val classify : l_total:float -> epsilon:float -> n:int -> float ->
  [ `Light | `Bucket of int | `Heavy ]

(** Number of buckets: ⌈log_{1+ε} n⌉ + 1. *)
val bucket_count : epsilon:float -> n:int -> int

(** Upper edge-weight w_i of bucket [i]. *)
val bucket_width : l_total:float -> epsilon:float -> int -> float

(** [assign g ~tt ~l_total ~epsilon ~k ~i] — the clustering for bucket
    [i], choosing case 1 or case 2 by the paper's threshold. The weak
    diameter of every cluster is ≤ ε·w_i (checked by the test-suite). *)
val assign :
  Ln_graph.Graph.t ->
  tt:Ln_traversal.Tour_table.t ->
  l_total:float ->
  epsilon:float ->
  k:int ->
  i:int ->
  assignment
