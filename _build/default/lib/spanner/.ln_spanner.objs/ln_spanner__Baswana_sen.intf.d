lib/spanner/baswana_sen.mli: Ln_graph Random
