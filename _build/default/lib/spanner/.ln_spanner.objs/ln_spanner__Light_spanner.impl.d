lib/spanner/light_spanner.ml: Array Baswana_sen Buckets Cluster_sim Hashtbl Int List Ln_congest Ln_graph Ln_mst Ln_traversal
