lib/spanner/baswana_sen.ml: Array Float Fun Hashtbl Int List Ln_congest Ln_graph Ln_prim Random
