lib/spanner/en17.mli: Random
