lib/spanner/greedy.ml: Array Hashtbl Int List Ln_graph
