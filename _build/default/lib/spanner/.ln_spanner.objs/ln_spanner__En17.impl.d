lib/spanner/en17.ml: Array Float Fun Hashtbl Int List Random
