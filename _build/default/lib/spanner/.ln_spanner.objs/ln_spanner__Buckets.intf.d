lib/spanner/buckets.mli: Ln_graph Ln_traversal
