lib/spanner/intervals.ml: Array Hashtbl List Ln_congest Ln_graph Ln_traversal
