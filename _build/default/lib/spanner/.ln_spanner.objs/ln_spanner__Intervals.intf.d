lib/spanner/intervals.mli: Ln_congest Ln_graph Ln_traversal
