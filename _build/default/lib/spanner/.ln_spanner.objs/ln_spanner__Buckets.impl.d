lib/spanner/buckets.ml: Array Float Ln_graph Ln_traversal
