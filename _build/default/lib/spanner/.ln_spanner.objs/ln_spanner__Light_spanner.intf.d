lib/spanner/light_spanner.mli: Ln_congest Ln_graph Random
