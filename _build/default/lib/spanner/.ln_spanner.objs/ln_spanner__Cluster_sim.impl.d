lib/spanner/cluster_sim.ml: Array En17 Float Fun Hashtbl Int Intervals List Ln_congest Ln_graph Ln_prim Ln_traversal Random
