lib/spanner/cluster_sim.mli: Hashtbl Ln_congest Ln_graph Ln_traversal Random
