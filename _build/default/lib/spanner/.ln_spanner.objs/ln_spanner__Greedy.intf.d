lib/spanner/greedy.mli: Ln_graph
