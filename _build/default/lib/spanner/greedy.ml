module Graph = Ln_graph.Graph
module Pqueue = Ln_graph.Pqueue

(* Bounded Dijkstra over an adjacency structure we grow incrementally:
   returns true iff d(u, v) <= bound in the current spanner. *)
let reachable_within adj n u v bound =
  let dist = Hashtbl.create 32 in
  let q = Pqueue.create () in
  ignore n;
  Hashtbl.replace dist u 0.0;
  Pqueue.push q 0.0 u;
  let found = ref false in
  let continue = ref true in
  while !continue && not (Pqueue.is_empty q) do
    let d, x = Pqueue.pop_min q in
    if x = v then begin
      found := true;
      continue := false
    end
    else if d <= (match Hashtbl.find_opt dist x with Some dx -> dx | None -> infinity)
    then
      List.iter
        (fun (y, w) ->
          let nd = d +. w in
          if nd <= bound then begin
            match Hashtbl.find_opt dist y with
            | Some dy when dy <= nd -> ()
            | _ ->
              Hashtbl.replace dist y nd;
              Pqueue.push q nd y
          end)
        adj.(x)
  done;
  !found

let build g ~stretch =
  if stretch < 1.0 then invalid_arg "Greedy.build: stretch must be >= 1";
  let n = Graph.n g in
  let ids = Array.init (Graph.m g) (fun i -> i) in
  Array.sort (Graph.compare_edges g) ids;
  let adj = Array.make n [] in
  let chosen = ref [] in
  Array.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      let w = Graph.weight g id in
      if not (reachable_within adj n u v (stretch *. w)) then begin
        chosen := id :: !chosen;
        adj.(u) <- (v, w) :: adj.(u);
        adj.(v) <- (u, w) :: adj.(v)
      end)
    ids;
  List.sort Int.compare !chosen
