type graph = { nv : int; adj : (int * int) list array }

let draw_r ~rng ~k n =
  let beta = Float.log (float_of_int (max n 2)) /. float_of_int k in
  Array.init n (fun _ ->
      let u = Random.State.float rng 1.0 in
      let r = -.Float.log (1.0 -. u) /. beta in
      Float.min r (float_of_int k -. 1e-9))

type state = { m : float array; s : int array }

let init_state r = { m = Array.copy r; s = Array.init (Array.length r) Fun.id }

(* (m, s) ordering: larger m wins; ties towards the smaller source. *)
let better m1 s1 m2 s2 = m1 > m2 || (m1 = m2 && s1 < s2)

let step g st =
  let m' = Array.copy st.m in
  let s' = Array.copy st.s in
  for x = 0 to g.nv - 1 do
    List.iter
      (fun (v, _) ->
        let cand_m = st.m.(v) -. 1.0 and cand_s = st.s.(v) in
        if better cand_m cand_s m'.(x) s'.(x) then begin
          m'.(x) <- cand_m;
          s'.(x) <- cand_s
        end)
      g.adj.(x)
  done;
  { m = m'; s = s' }

(* Per-source representative choice: the qualifying neighbour with the
   LARGEST m (ties towards the smallest (neighbour, label) pair). The
   maximal-m choice is what makes cluster paths strictly ascend towards
   their source, giving the deterministic 2k-1 stretch; picking an
   arbitrary qualifier can cycle among equidistant vertices. *)
let rep_better (m1, v1, l1) (m2, v2, l2) =
  m1 > m2 || (m1 = m2 && (v1, l1) < (v2, l2))

let edges g ~state =
  let acc = ref [] in
  for x = 0 to g.nv - 1 do
    let per_source = Hashtbl.create 8 in
    List.iter
      (fun (v, lbl) ->
        if state.m.(v) >= state.m.(x) -. 1.0 then begin
          let y = state.s.(v) in
          let cand = (state.m.(v), v, lbl) in
          match Hashtbl.find_opt per_source y with
          | Some cur when not (rep_better cand cur) -> ()
          | _ -> Hashtbl.replace per_source y cand
        end)
      g.adj.(x);
    Hashtbl.iter (fun _ (_, v, lbl) -> acc := (x, v, lbl) :: !acc) per_source
  done;
  !acc

let spanner ~rng ~k g =
  let r = draw_r ~rng ~k g.nv in
  let st = ref (init_state r) in
  for _ = 1 to k do
    st := step g !st
  done;
  let chosen = edges g ~state:!st in
  List.sort_uniq Int.compare (List.map (fun (_, _, lbl) -> lbl) chosen)
