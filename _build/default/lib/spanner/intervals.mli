(** Communication along intervals of the Euler tour L — the case-2
    machinery of Section 5, where clusters are too numerous for global
    aggregation and all coordination happens inside bounded
    *communication intervals* of L, in parallel, over MST edges.

    Positions of L are partitioned into intervals by a set of centers
    (an interval runs from one center up to just before the next).
    Because every directed traversal of an MST edge occurs exactly once
    in L, sweeps towards lower positions and sweeps towards higher
    positions use disjoint directed edges, so all intervals operate
    concurrently without violating the one-message-per-edge-direction
    rule (the engine enforces this).

    Rounds: O(max interval hop length) for [aggregate]; O(interval
    length + items per interval) for [gather]. *)

(** [aggregate g ~tt ~is_center ~value ~combine] — every interval
    combines the [value]s of its positions (right-to-left sweep into
    the center, then a left-to-right sweep distributing the result).
    Returns, per position, the interval's combined value. *)
val aggregate :
  ?value_words:int ->
  Ln_graph.Graph.t ->
  tt:Ln_traversal.Tour_table.t ->
  is_center:(int -> bool) ->
  value:(int -> 'a option) ->
  combine:('a -> 'a -> 'a) ->
  'a option array * Ln_congest.Engine.stats

(** [gather g ~tt ~is_center ~items] — pipelined collection of each
    position's items at its interval's center. Returns, per *center
    position*, everything collected (own items included). *)
val gather :
  ?value_words:int ->
  Ln_graph.Graph.t ->
  tt:Ln_traversal.Tour_table.t ->
  is_center:(int -> bool) ->
  items:(int -> 'b list) ->
  'b list array * Ln_congest.Engine.stats
