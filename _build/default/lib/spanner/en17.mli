(** The Elkin–Neiman spanner for unweighted graphs [EN17b] — the
    engine behind every weight bucket of the Section-5 construction.

    Every vertex x draws r(x) ~ Exp(β) (clamped below k); the values
    m(x) = max_v (r(v) − d(v, x)) are computed by k rounds of
    max-propagation with unit decay; finally x keeps, for
    every distinct source y carried by a neighbour v with
    m(v) ≥ m(x) − 1, one edge towards such a neighbour. Stretch 2k−1 is
    deterministic given r < k; the expected size is O(n^{1+1/k}).

    This module gives the *reference implementation* on an abstract
    unweighted graph, exposed round-by-round so that the distributed
    cluster-graph simulations of Section 5 (cases 1 and 2) can be
    checked against it state-for-state: given the same exponential
    draws, all three produce the same spanner. Deterministic
    tie-breaks: larger (m, then smaller source id) wins propagation;
    the representative edge per (vertex, source) is the smallest
    (neighbour, edge) pair. *)

type graph = {
  nv : int;  (** number of vertices *)
  adj : (int * int) list array;
      (** adjacency: (neighbour, edge label); labels are echoed back in
          the output so cluster graphs can recover concrete G-edges *)
}

(** [draw_r ~rng ~k n] samples the exponential radii: r(x) ~ Exp(β)
    with β = ln n / k, clamped to k − 1e-9 (the paper conditions on
    r < k). *)
val draw_r : rng:Random.State.t -> k:int -> int -> float array

(** Propagation state after some number of rounds: [m] and [s] per
    vertex. *)
type state = { m : float array; s : int array }

val init_state : float array -> state

(** One synchronous round: every vertex takes the max of its own (m,s)
    and (m(v)−1, s(v)) over neighbours v. *)
val step : graph -> state -> state

(** [edges g ~state] — the final edge-selection rule: for every vertex
    x and distinct source y carried by a qualifying neighbour
    (m(v) ≥ m(x) − 1), one (x, neighbour, edge-label) triple. *)
val edges : graph -> state:state -> (int * int * int) list

(** [spanner ~rng ~k g] — the whole algorithm; returns chosen edge
    labels (deduplicated, sorted). *)
val spanner : rng:Random.State.t -> k:int -> graph -> int list
