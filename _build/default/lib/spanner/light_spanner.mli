(** The paper's headline result (Theorem 2): a (2k−1)(1+ε)-spanner
    with O(k·n^{1+1/k}) edges and O(k·n^{1/k}) lightness, built in
    Õ(n^{1/2 + 1/(4k+2)} + D) rounds of the CONGEST model.

    Pipeline: distributed MST + Euler tour (Section 3); Baswana–Sen on
    the light bucket E′; for every weight bucket E_i, a tour-based
    clustering of weak diameter ε·w_i and a distributed simulation of
    the EN17b spanner on the cluster graph G_i ({!Cluster_sim}, case 1
    or 2 chosen by the paper's threshold); the spanner is the union of
    the MST, the E′ spanner, and one representative G-edge per chosen
    cluster-graph edge. *)

type t = {
  edges : int list;  (** spanner edge ids (MST included), sorted *)
  k : int;
  epsilon : float;
  stretch_bound : float;  (** (2k−1)(1+c·ε) promised stretch *)
  light_bucket_edges : int;  (** edges contributed by Baswana–Sen *)
  bucket_edges : int;  (** edges contributed by the cluster graphs *)
  buckets_case1 : int;
  buckets_case2 : int;
  ledger : Ln_congest.Ledger.t;
}

(** [build ~rng g ~k ~epsilon] — the full Section-5 construction.
    @raise Invalid_argument unless [k >= 1] and [0 < epsilon < 1]. *)
val build :
  rng:Random.State.t -> Ln_graph.Graph.t -> k:int -> epsilon:float -> t
