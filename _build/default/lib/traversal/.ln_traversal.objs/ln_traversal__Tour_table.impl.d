lib/traversal/tour_table.ml: Array Euler_dist List Ln_graph Ln_mst
