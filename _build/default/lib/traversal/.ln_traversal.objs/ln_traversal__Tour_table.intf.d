lib/traversal/tour_table.mli: Euler_dist Ln_graph
