lib/traversal/euler_dist.ml: Array Float Int List Ln_congest Ln_graph Ln_mst Ln_prim
