lib/traversal/euler_dist.mli: Ln_mst
