module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree

type t = {
  len : int;
  vertex_of : int array;
  time_of : float array;
  next_edge : int array;
  positions_of : int list array;
}

let make g (tour : Euler_dist.t) =
  let n = Graph.n g in
  let len = (2 * n) - 1 in
  let vertex_of = Array.make len (-1) in
  let time_of = Array.make len 0.0 in
  for v = 0 to n - 1 do
    List.iter
      (fun (idx, time) ->
        vertex_of.(idx) <- v;
        time_of.(idx) <- time)
      tour.Euler_dist.appearances.(v)
  done;
  let tree = tour.Euler_dist.rooted.Ln_mst.Dist_mst.tree in
  let next_edge =
    Array.init len (fun j ->
        if j = len - 1 then -1
        else begin
          let a = vertex_of.(j) and b = vertex_of.(j + 1) in
          match Tree.parent tree a, Tree.parent tree b with
          | Some (p, e), _ when p = b -> e
          | _, Some (p, e) when p = a -> e
          | _ -> failwith "Tour_table: tour positions not tree-adjacent"
        end)
  in
  let positions_of = Array.make n [] in
  for j = len - 1 downto 0 do
    positions_of.(vertex_of.(j)) <- j :: positions_of.(vertex_of.(j))
  done;
  { len; vertex_of; time_of; next_edge; positions_of }
