(** Position-indexed view of the distributed Euler tour.

    [Euler_dist] leaves each vertex knowing its own appearances; this
    assembles the position-to-(vertex, time, forwarding edge) tables
    that the token-scan and interval protocols of Sections 4 and 5 use.
    Every entry is the local knowledge of the vertex holding that
    position (vertex [vertex_of.(j)] knows [time_of.(j)] and
    [next_edge.(j)]). *)

type t = {
  len : int;  (** 2n - 1 *)
  vertex_of : int array;  (** position -> vertex *)
  time_of : float array;  (** position -> weighted visiting time R *)
  next_edge : int array;  (** position j -> MST edge towards j+1; -1 at the end *)
  positions_of : int list array;  (** vertex -> its positions, increasing *)
}

val make : Ln_graph.Graph.t -> Euler_dist.t -> t
