(** Distributed Eulerian tour of the MST — Section 3 of the paper
    (Lemma 2): in Õ(√n + D) rounds every vertex learns all of its
    appearances in the DFS traversal L of the MST, both as weighted
    visiting times [R_x] and as integer tour indices.

    Pipeline (all phases native on the engine):
    {ol
    {- local tour lengths ℓ(v): up-pass inside every base fragment
       (§3.2);}
    {- the fragment roots' ℓ(r_i) are broadcast (Lemma 1) and every
       vertex locally derives the global lengths g(r_i) from T′;}
    {- global lengths g(v): a second fragment-local up-pass;}
    {- local DFS intervals: fragment-local down-pass (§3.3), plus one
       round across external edges delivering each fragment root its
       interval within the parent fragment;}
    {- interval shifts s_i: roots' offsets are gathered at rt, combined
       there, and the per-fragment shifts broadcast back.}}

    Children are visited in increasing vertex-id order, so the result
    coincides exactly with {!Ln_graph.Euler.of_tree} of the same rooted
    MST — the test-suite checks equality of every appearance. *)

type t = {
  rt : int;
  rooted : Ln_mst.Dist_mst.rooted;
  appearances : (int * float) list array;
      (** per vertex, ordered: (tour index, visiting time [R_x]) *)
  interval : (float * float) array;  (** global DFS interval of v *)
  g_value : float array;  (** g(v): tour length of v's subtree *)
  total : float;  (** tour length = 2 w(MST) *)
}

(** [run dist ~rt] computes the tour; all phase round-counts are
    appended to [dist.ledger]. *)
val run : Ln_mst.Dist_mst.t -> rt:int -> t
