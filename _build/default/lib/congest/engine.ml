module Graph = Ln_graph.Graph

exception Congest_violation of string

type ctx = {
  n : int;
  me : int;
  neighbors : (int * int) array;
  weight : int -> float;
}

type 'm received = { from : int; edge : int; payload : 'm }
type 'm send = { via : int; msg : 'm }

type ('s, 'm) program = {
  name : string;
  words : 'm -> int;
  init : ctx -> 's * 'm send list;
  step : ctx -> round:int -> 's -> 'm received list -> 's * 'm send list * bool;
}

type observer = round:int -> from:int -> dest:int -> words:int -> unit

type stats = {
  rounds : int;
  messages : int;
  total_words : int;
  max_edge_load : int;
}

let violation fmt = Format.kasprintf (fun s -> raise (Congest_violation s)) fmt

let run ?(word_cap = 4) ?(max_rounds = 10_000_000) ?observer g p =
  let n = Graph.n g in
  let ctx_of v =
    { n; me = v; neighbors = Graph.neighbors g v; weight = Graph.weight g }
  in
  let ctxs = Array.init n ctx_of in
  let active = Array.make n true in
  (* Messages in flight, to be delivered at the start of the next
     round: per destination vertex. *)
  let inbox : 'm received list array = Array.make n [] in
  let next_inbox : 'm received list array = Array.make n [] in
  let messages = ref 0 in
  let total_words = ref 0 in
  let max_edge_load = ref 0 in
  let in_flight = ref 0 in
  (* Tracks, per round, words sent per (edge, direction) for cap
     enforcement. Key: edge * 2 + dir. *)
  let sent_this_round = Hashtbl.create 64 in
  let current_round = ref 0 in
  let deliver ~sender outs =
    List.iter
      (fun { via; msg } ->
        let u, v = Graph.endpoints g via in
        let dest =
          if u = sender then v
          else if v = sender then u
          else violation "%s: node %d sent over non-incident edge %d" p.name sender via
        in
        let w = p.words msg in
        if w > word_cap then
          violation "%s: node %d sent %d-word message (cap %d)" p.name sender w word_cap;
        let key = (via * 2) + if sender < dest then 0 else 1 in
        (match Hashtbl.find_opt sent_this_round key with
        | Some _ ->
          violation "%s: node %d sent twice over edge %d in one round" p.name sender via
        | None -> Hashtbl.replace sent_this_round key w);
        if w > !max_edge_load then max_edge_load := w;
        (match observer with
        | Some f -> f ~round:!current_round ~from:sender ~dest ~words:w
        | None -> ());
        incr messages;
        total_words := !total_words + w;
        incr in_flight;
        next_inbox.(dest) <- { from = sender; edge = via; payload = msg } :: next_inbox.(dest))
      outs
  in
  (* Round 0: init. *)
  Hashtbl.reset sent_this_round;
  let inits = Array.init n (fun v -> p.init ctxs.(v)) in
  let states = Array.map fst inits in
  Array.iteri (fun v (_, outs) -> deliver ~sender:v outs) inits;
  let rounds = ref 0 in
  let continue = ref (!in_flight > 0 || Array.exists (fun b -> b) active) in
  while !continue && !rounds < max_rounds do
    incr rounds;
    current_round := !rounds;
    (* Flip message buffers. *)
    for v = 0 to n - 1 do
      inbox.(v) <- next_inbox.(v);
      next_inbox.(v) <- []
    done;
    in_flight := 0;
    Hashtbl.reset sent_this_round;
    let any_active = ref false in
    for v = 0 to n - 1 do
      let msgs = inbox.(v) in
      if active.(v) || msgs <> [] then begin
        let s, outs, still = p.step ctxs.(v) ~round:!rounds states.(v) msgs in
        states.(v) <- s;
        active.(v) <- still;
        if still then any_active := true;
        deliver ~sender:v outs
      end;
      inbox.(v) <- []
    done;
    continue := !in_flight > 0 || !any_active
  done;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      total_words = !total_words;
      max_edge_load = !max_edge_load;
    } )

let pp_stats ppf s =
  Format.fprintf ppf "rounds=%d msgs=%d words=%d max_edge_load=%d" s.rounds s.messages
    s.total_words s.max_edge_load
