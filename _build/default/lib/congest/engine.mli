(** Synchronous CONGEST-model simulator.

    A network is a weighted graph in which every vertex hosts a
    processor. Computation proceeds in synchronous rounds; in each
    round a vertex may send one message of at most [word_cap] machine
    words (a word models O(log n) bits) over each incident edge, and
    receives in the next round everything sent to it. The engine
    *enforces* the model: a program that sends two messages over one
    edge in a round, or an oversized message, crashes with
    [Congest_violation] — so passing the test-suite certifies model
    compliance.

    Programs are written as per-node state machines over a restricted
    local view ({!ctx}): a node knows [n], its own id, its incident
    edges and their weights, and nothing else. *)

exception Congest_violation of string

(** Local view available to a node's program. [neighbors] is the array
    of [(edge_id, neighbor)] pairs for this node. *)
type ctx = {
  n : int;  (** number of vertices in the network *)
  me : int;  (** this node's id *)
  neighbors : (int * int) array;
  weight : int -> float;  (** weight of an incident edge *)
}

(** A message received on [edge] from neighbour [from]. *)
type 'm received = { from : int; edge : int; payload : 'm }

(** A message to send over incident edge [via]. *)
type 'm send = { via : int; msg : 'm }

(** A per-node program.

    [init ctx] gives the initial state and round-0 sends. [step] is
    called on every round in which the node has incoming messages or
    declared itself active; it returns the new state, outgoing
    messages, and whether the node remains active (an inactive node is
    not stepped again until a message arrives — state is kept).

    [words m] is the size of message [m] in machine words, used for
    model enforcement and traffic statistics. *)
type ('s, 'm) program = {
  name : string;
  words : 'm -> int;
  init : ctx -> 's * 'm send list;
  step : ctx -> round:int -> 's -> 'm received list -> 's * 'm send list * bool;
}

(** Optional per-message observer, called at send time (delivery is
    the following round). Used for debugging protocols and for traffic
    analyses; see {!val:run}. *)
type observer = round:int -> from:int -> dest:int -> words:int -> unit

type stats = {
  rounds : int;  (** rounds until quiescence (or the cap) *)
  messages : int;  (** total messages delivered *)
  total_words : int;  (** total message volume in words *)
  max_edge_load : int;  (** max words on one edge-direction in a round *)
}

(** [run g p] executes [p] on network [g] until quiescence (no active
    node and no message in flight) or [max_rounds].

    @param word_cap maximum words per message (default 4 ≈ a constant
           number of O(log n)-bit words, as in the paper).
    @param observer called once per message sent.
    @raise Congest_violation on a model violation.
    @return final states (indexed by vertex) and statistics. *)
val run :
  ?word_cap:int ->
  ?max_rounds:int ->
  ?observer:observer ->
  Ln_graph.Graph.t ->
  ('s, 'm) program ->
  's array * stats

val pp_stats : Format.formatter -> stats -> unit
