lib/congest/trace.ml: Engine Format Hashtbl Int List Option
