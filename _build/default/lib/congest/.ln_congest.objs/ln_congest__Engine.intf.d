lib/congest/engine.mli: Format Ln_graph
