lib/congest/engine.ml: Array Format Hashtbl List Ln_graph
