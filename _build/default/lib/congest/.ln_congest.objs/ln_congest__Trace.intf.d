lib/congest/trace.mli: Engine Format
