lib/congest/ledger.mli: Format
