type kind = Native | Charged
type entry = { label : string; kind : kind; rounds : int }
type t = { mutable entries : entry list (* reverse order *) }

let create () = { entries = [] }

let add t kind label rounds =
  if rounds < 0 then invalid_arg "Ledger: negative round count";
  t.entries <- { label; kind; rounds } :: t.entries

let native t ~label rounds = add t Native label rounds
let charged t ~label rounds = add t Charged label rounds

let merge t ~prefix other =
  List.iter
    (fun e -> t.entries <- { e with label = prefix ^ "/" ^ e.label } :: t.entries)
    (List.rev other.entries)

let entries t = List.rev t.entries

let sum_kind t k =
  List.fold_left
    (fun acc e -> if e.kind = k then acc + e.rounds else acc)
    0 t.entries

let native_total t = sum_kind t Native
let charged_total t = sum_kind t Charged
let total t = native_total t + charged_total t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-40s %8d %s@," e.label e.rounds
        (match e.kind with Native -> "native" | Charged -> "charged"))
    (entries t);
  Format.fprintf ppf "%-40s %8d@,%-40s %8d (of which charged %d)@]" "-- native total"
    (native_total t) "-- grand total" (total t) (charged_total t)
