(** Hub (skeleton) based single-source shortest paths — the stand-in
    for the [BKKL17] approximate SPT the paper invokes (see DESIGN.md,
    "Substitutions").

    Scheme (the classical Ullman–Yannakakis decomposition, executed
    natively on the engine):
    {ol
    {- sample Θ(√n · log n) hub vertices (the source is always a hub);}
    {- hop-limited multi-source Bellman–Ford from all hubs (hop cap
       Θ(√n)) — every vertex learns distance estimates to nearby hubs;}
    {- overlay relaxation: the hubs' current source-distance estimates
       are repeatedly broadcast over the BFS tree (Lemma 1, O(#hubs+D)
       rounds per iteration) and relaxed against the local tables;}
    {- a repair sweep: plain Bellman–Ford seeded with the combined
       estimates, which converges to the *exact* distances (the hub
       estimates are realizable upper bounds, so the sweep is short —
       measured, not assumed).}}

    The result is therefore an exact SPT; the (1+ε) slack the paper
    allows is not needed (exactness only tightens downstream stretch
    bounds). Round counts are recorded per phase in the returned
    ledger. *)

type t = {
  src : int;
  dist : float array;  (** exact distances from [src] *)
  parent_edge : int array;  (** SPT parent edge; -1 at [src] *)
  tree : Ln_graph.Tree.t;  (** the SPT as a rooted tree *)
  hubs : int list;
  ledger : Ln_congest.Ledger.t;
}

(** [run ~rng g ~bfs ~src] computes the SPT. [edge_ok] restricts to a
    (connected, spanning) subgraph such as the graph H of Section 4.
    [hub_factor] scales the hub sampling probability (default 1.0). *)
val run :
  ?edge_ok:(int -> bool) ->
  ?hub_factor:float ->
  rng:Random.State.t ->
  Ln_graph.Graph.t ->
  bfs:Ln_graph.Tree.t ->
  src:int ->
  t
