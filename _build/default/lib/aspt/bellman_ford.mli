(** Distributed Bellman–Ford in the CONGEST model.

    [sssp] is the exact single-source baseline: every improvement is
    re-flooded; at quiescence every vertex holds its exact distance and
    a consistent parent pointer (rounds ≈ the graph's hop radius times
    the improvement-chain length — the quantity the paper's Õ(√n + D)
    algorithms beat, which is why it is the baseline).

    [multi_source] runs Bellman–Ford from a set of sources with a
    distance bound: every vertex ends with a table holding, for every
    source within distance [bound] of it, the *exact* distance and the
    first edge of a realizing path. Tables are pruned at [bound], so —
    exactly as in Section 7's packing argument — the per-vertex work is
    proportional to the number of sources whose balls reach it; each
    vertex forwards one (source, distance) update per round per edge.
    This is the stand-in for the [EN16] hopset-based Δ-bounded
    multi-source exploration (path-reporting included: parent edges).

    Both accept [edge_ok] to restrict to a subgraph (e.g. the graph H
    of Section 4). *)

type result = { dist : float array; parent_edge : int array }

(** Exact single-source shortest paths.
    @param init optional initial upper-bound estimates (must be
    realizable path lengths, [infinity] elsewhere); used by the hub
    scheme's repair phase. Default: 0 at [src], [infinity] elsewhere. *)
val sssp :
  ?edge_ok:(int -> bool) ->
  ?init:float array ->
  Ln_graph.Graph.t ->
  src:int ->
  result * Ln_congest.Engine.stats

(** Per-vertex table: source vertex -> (distance, parent edge toward
    the source; -1 at the source itself). *)
type tables = (int, float * int) Hashtbl.t array

(** Exact [bound]-limited multi-source shortest paths. *)
val multi_source :
  ?edge_ok:(int -> bool) ->
  ?bound:float ->
  Ln_graph.Graph.t ->
  srcs:int list ->
  tables * Ln_congest.Engine.stats

(** [path_to_source g tables v ~src] walks parent edges from [v] to
    [src]; [None] if [src] is not in [v]'s table. The returned list is
    the vertex path [v; ...; src]. *)
val path_to_source :
  Ln_graph.Graph.t -> tables -> int -> src:int -> int list option
