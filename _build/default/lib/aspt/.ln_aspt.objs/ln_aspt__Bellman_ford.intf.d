lib/aspt/bellman_ford.mli: Hashtbl Ln_congest Ln_graph
