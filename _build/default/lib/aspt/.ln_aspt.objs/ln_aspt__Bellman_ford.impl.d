lib/aspt/bellman_ford.ml: Array Hashtbl List Ln_congest Ln_graph Queue
