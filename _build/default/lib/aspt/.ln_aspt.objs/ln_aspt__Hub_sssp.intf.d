lib/aspt/hub_sssp.mli: Ln_congest Ln_graph Random
