lib/aspt/hub_sssp.ml: Array Bellman_ford Float Hashtbl List Ln_congest Ln_graph Ln_prim Queue Random
