(** MST-weight estimation from a net hierarchy — the constructive side
    of the paper's Section-8 lower bound (Theorem 7): any algorithm
    that builds (α·Δ, Δ)-nets can ε-approximate w(MST), hence needs
    Ω̃(√n + D) rounds. Run forward, it is also a useful primitive: a
    multiplicative O(α·log n) estimate of the MST weight from net
    cardinalities alone.

    For i = i₀, i₀+1, ... compute an (α·2^i, 2^i)-net N_i (starting
    low enough that N_{i₀} = V), stopping at the first singleton net;
    Ψ = Σ_i |N_i|·α·2^{i+1} satisfies L ≤ Ψ ≤ O(α·log n)·L. *)

type t = {
  psi : float;  (** the estimate Ψ *)
  alpha : float;
  levels : (float * int) list;  (** (scale 2^i, |N_i|) per level *)
  lower : float;  (** guaranteed lower bound on Ψ/L: 1 *)
  upper_factor : float;  (** guaranteed upper bound on Ψ/L: O(α·levels) *)
  ledger : Ln_congest.Ledger.t;
}

(** [estimate ~rng g ~bfs ~alpha] runs the hierarchy.
    @raise Invalid_argument unless [alpha >= 1]. *)
val estimate :
  rng:Random.State.t ->
  Ln_graph.Graph.t ->
  bfs:Ln_graph.Tree.t ->
  alpha:float ->
  t
