lib/estimate/mst_weight.ml: Float List Ln_congest Ln_graph Ln_nets
