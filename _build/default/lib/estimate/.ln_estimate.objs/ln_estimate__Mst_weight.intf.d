lib/estimate/mst_weight.mli: Ln_congest Ln_graph Random
