lib/mst/boruvka.ml: Array Fragments Hashtbl List Ln_graph Queue
