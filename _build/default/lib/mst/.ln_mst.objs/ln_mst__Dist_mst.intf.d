lib/mst/dist_mst.mli: Fragments Ln_congest Ln_graph
