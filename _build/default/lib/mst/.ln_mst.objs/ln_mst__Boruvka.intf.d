lib/mst/boruvka.mli: Fragments Ln_graph
