lib/mst/fragments.mli: Ln_graph
