lib/mst/fragments.ml: Array Hashtbl List Ln_graph Queue
