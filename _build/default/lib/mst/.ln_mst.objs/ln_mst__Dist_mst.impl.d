lib/mst/dist_mst.ml: Array Boruvka Float Fragments Hashtbl Int List Ln_congest Ln_graph Ln_prim Queue
