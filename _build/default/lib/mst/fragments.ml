module Graph = Ln_graph.Graph

type t = {
  count : int;
  frag_of : int array;
  tree_edges : int list array;
  members : int list array;
  internal_edges : int list array;
  hop_diameter : int array;
}

(* Hop diameter of a tree given by adjacency lists restricted to
   [vertices]: double BFS sweep (exact on trees). *)
let tree_hop_diameter adj start =
  let far src =
    let dist = Hashtbl.create 16 in
    Hashtbl.replace dist src 0;
    let q = Queue.create () in
    Queue.push src q;
    let last = ref (src, 0) in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      let d = Hashtbl.find dist v in
      if d > snd !last then last := (v, d);
      List.iter
        (fun u ->
          if not (Hashtbl.mem dist u) then begin
            Hashtbl.replace dist u (d + 1);
            Queue.push u q
          end)
        (adj v)
    done;
    !last
  in
  let a, _ = far start in
  let _, d = far a in
  d

let make g ~frag_of ~internal =
  let n = Graph.n g in
  let count = Array.length internal in
  let members = Array.make count [] in
  for v = n - 1 downto 0 do
    let f = frag_of.(v) in
    if f < 0 || f >= count then invalid_arg "Fragments.make: fragment index out of range";
    members.(f) <- v :: members.(f)
  done;
  let tree_edges = Array.make n [] in
  Array.iteri
    (fun f edges ->
      List.iter
        (fun id ->
          let u, v = Graph.endpoints g id in
          if frag_of.(u) <> f || frag_of.(v) <> f then
            invalid_arg "Fragments.make: internal edge leaves its fragment";
          tree_edges.(u) <- id :: tree_edges.(u);
          tree_edges.(v) <- id :: tree_edges.(v))
        edges)
    internal;
  let hop_diameter =
    Array.init count (fun f ->
        match members.(f) with
        | [] -> invalid_arg "Fragments.make: empty fragment"
        | start :: _ ->
          let adj v =
            List.map (fun id -> Graph.other_end g id v) tree_edges.(v)
          in
          (* Check spanning-tree-ness: edges = members - 1 and connected. *)
          let nm = List.length members.(f) in
          let ne = List.length internal.(f) in
          if ne <> nm - 1 then
            invalid_arg "Fragments.make: fragment edge count is not |members|-1";
          let d = tree_hop_diameter adj start in
          (* Connectivity check: BFS reach count. *)
          let seen = Hashtbl.create nm in
          let q = Queue.create () in
          Hashtbl.replace seen start ();
          Queue.push start q;
          while not (Queue.is_empty q) do
            let v = Queue.pop q in
            List.iter
              (fun u ->
                if not (Hashtbl.mem seen u) then begin
                  Hashtbl.replace seen u ();
                  Queue.push u q
                end)
              (adj v)
          done;
          if Hashtbl.length seen <> nm then
            invalid_arg "Fragments.make: fragment tree disconnected";
          d)
  in
  { count; frag_of; tree_edges; members; internal_edges = internal; hop_diameter }

let max_hop_diameter t = Array.fold_left max 0 t.hop_diameter

let check g t =
  try
    let rebuilt = make g ~frag_of:t.frag_of ~internal:t.internal_edges in
    if rebuilt.hop_diameter <> t.hop_diameter then Error "hop diameters inconsistent"
    else Ok ()
  with Invalid_argument m -> Error m
