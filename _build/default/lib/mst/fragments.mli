(** Base-fragment decomposition of an MST (Figure 1 of the paper).

    Phase 1 of the [KP98]-style MST construction partitions the
    eventual MST into O(√n) vertex-disjoint subtrees ("base
    fragments"), each of hop-diameter O(√n). Every fragment-local
    computation of Sections 3–5 is an up/down pass over these trees. *)

type t = {
  count : int;  (** number of fragments *)
  frag_of : int array;  (** vertex -> fragment index in [0..count-1] *)
  tree_edges : int list array;
      (** vertex -> incident internal (fragment-tree) edge ids; this is
          the local knowledge a vertex keeps from phase 1 *)
  members : int list array;  (** fragment -> member vertices *)
  internal_edges : int list array;  (** fragment -> its tree edge ids *)
  hop_diameter : int array;  (** fragment -> internal tree hop-diameter *)
}

(** [make g ~frag_of ~internal] builds the bundle from a vertex
    partition and the per-fragment internal tree edges (computing
    member lists, per-vertex incident edges and hop diameters).
    @raise Invalid_argument if some fragment's edge set is not a
    spanning tree of its member set. *)
val make : Ln_graph.Graph.t -> frag_of:int array -> internal:int list array -> t

(** Maximum fragment hop-diameter (the paper's O(√n) quantity). *)
val max_hop_diameter : t -> int

(** [check g t] re-validates all structural invariants; used in tests. *)
val check : Ln_graph.Graph.t -> t -> (unit, string) result
