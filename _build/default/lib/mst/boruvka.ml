module Graph = Ln_graph.Graph
module Union_find = Ln_graph.Union_find

type phase = {
  fragments_before : int;
  merges : int;
  max_live_diameter : int;
}

(* Hop diameter of the fragment containing [start], over the chosen
   forest adjacency. *)
let component_diameter adj start =
  let far src =
    let dist = Hashtbl.create 16 in
    Hashtbl.replace dist src 0;
    let q = Queue.create () in
    Queue.push src q;
    let last = ref (src, 0) in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      let d = Hashtbl.find dist v in
      if d > snd !last then last := (v, d);
      List.iter
        (fun u ->
          if not (Hashtbl.mem dist u) then begin
            Hashtbl.replace dist u (d + 1);
            Queue.push u q
          end)
        (adj v)
    done;
    !last
  in
  let a, _ = far start in
  let _, d = far a in
  d

let base_fragments g ~target ~diam_cap =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Boruvka.base_fragments: empty graph";
  let uf = Union_find.create n in
  let forest_adj = Array.make n [] in
  let chosen = ref [] in
  let adj v = List.map (fun id -> Graph.other_end g id v) forest_adj.(v) in
  (* Per-root cached diameter, recomputed after each phase. *)
  let diameter_of = Hashtbl.create 64 in
  let frag_diameter v =
    let r = Union_find.find uf v in
    match Hashtbl.find_opt diameter_of r with
    | Some d -> d
    | None ->
      let d = component_diameter adj r in
      Hashtbl.replace diameter_of r d;
      d
  in
  let phases = ref [] in
  let continue = ref (Union_find.count uf > target) in
  while !continue do
    let fragments_before = Union_find.count uf in
    (* Per-fragment MWOE among live (diameter <= cap) fragments. *)
    let proposal : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let max_live_diameter = ref 0 in
    let consider root id =
      match Hashtbl.find_opt proposal root with
      | Some best when Graph.compare_edges g best id <= 0 -> ()
      | _ -> Hashtbl.replace proposal root id
    in
    Graph.iter_edges g (fun id e ->
        let ru = Union_find.find uf e.u and rv = Union_find.find uf e.v in
        if ru <> rv then begin
          if frag_diameter e.u <= diam_cap then consider ru id;
          if frag_diameter e.v <= diam_cap then consider rv id
        end);
    Hashtbl.iter
      (fun root _ ->
        let d = frag_diameter root in
        if d > !max_live_diameter then max_live_diameter := d)
      proposal;
    (* Greedy diameter-capped acceptance, in (weight, id) order: a
       proposal is taken only if the merged fragment's hop-diameter
       upper bound (d1 + d2 + 1) stays within the cap. This is the
       chain-cutting of controlled-GHS: plain Borůvka contracts whole
       proposal chains and can create fragments of diameter Θ(n) (e.g.
       on a unit-weight path). *)
    let merges = ref 0 in
    let diam_bound = Hashtbl.create 64 in
    let bound_of v =
      let r = Union_find.find uf v in
      match Hashtbl.find_opt diam_bound r with
      | Some d -> d
      | None -> frag_diameter r
    in
    let sorted =
      Hashtbl.fold (fun _root id acc -> id :: acc) proposal []
      |> List.sort_uniq (Graph.compare_edges g)
    in
    List.iter
      (fun id ->
        let u, v = Graph.endpoints g id in
        if not (Union_find.same uf u v) then begin
          let d1 = bound_of u and d2 = bound_of v in
          if d1 + d2 + 1 <= diam_cap then begin
            ignore (Union_find.union uf u v);
            incr merges;
            chosen := id :: !chosen;
            forest_adj.(u) <- id :: forest_adj.(u);
            forest_adj.(v) <- id :: forest_adj.(v);
            Hashtbl.replace diam_bound (Union_find.find uf u) (d1 + d2 + 1)
          end
        end)
      sorted;
    phases :=
      { fragments_before; merges = !merges; max_live_diameter = !max_live_diameter }
      :: !phases;
    Hashtbl.reset diameter_of;
    continue := !merges > 0 && Union_find.count uf > target
  done;
  (* Normalize fragment indices 0..count-1 in order of first member. *)
  let index_of_root = Hashtbl.create 64 in
  let count = ref 0 in
  let frag_of =
    Array.init n (fun v ->
        let r = Union_find.find uf v in
        match Hashtbl.find_opt index_of_root r with
        | Some i -> i
        | None ->
          let i = !count in
          incr count;
          Hashtbl.replace index_of_root r i;
          i)
  in
  let internal = Array.make !count [] in
  List.iter
    (fun id ->
      let u, _ = Graph.endpoints g id in
      let f = frag_of.(u) in
      internal.(f) <- id :: internal.(f))
    !chosen;
  (Fragments.make g ~frag_of ~internal, List.rev !phases)
