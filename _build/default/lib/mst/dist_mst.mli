(** Distributed MST in the CONGEST model, in the two-phase style of
    [KP98]/[Elk17b] that the paper builds on (Section 3.1).

    Phase 1 produces O(√n) base fragments of bounded hop-diameter
    ({!Boruvka}; charged per phase from measured fragment diameters).
    Phase 2 finishes Borůvka globally: in each iteration every vertex
    learns its neighbours' fragment ids (1 native round), per-fragment
    minimum outgoing edges are aggregated and broadcast over the BFS
    tree ({!Ln_prim.Keyed}, O(#fragments + D) native rounds), and every
    vertex applies the same deterministic merge step locally. Because
    the per-iteration tables are broadcast, at the end *every vertex
    knows the entire inter-fragment tree T′* — exactly the global
    knowledge Section 3 assumes.

    Weight ties are broken by edge id, so the result coincides with
    {!Ln_graph.Mst_seq.kruskal} edge-for-edge. *)

type t = {
  graph : Ln_graph.Graph.t;
  bfs : Ln_graph.Tree.t;  (** the BFS tree τ used for aggregation *)
  mst_edges : int list;  (** all n-1 MST edge ids *)
  base : Fragments.t;  (** phase-1 base fragments *)
  external_edges : int list;  (** MST edges crossing base fragments *)
  ledger : Ln_congest.Ledger.t;
}

(** [run g] computes the MST. [root] is the BFS-tree root (default 0);
    [diam_cap] overrides phase 1's fragment hop-diameter cap (default
    2·⌈√n⌉+2 — pass [max_int] to reproduce the uncontrolled-Borůvka
    pathology, ablation A2).
    @raise Invalid_argument if [g] is disconnected. *)
val run : ?root:int -> ?diam_cap:int -> Ln_graph.Graph.t -> t

(** The MST rooted at a designated vertex, per Section 3.1: T′ is known
    globally, each fragment's root [r_i] is the endpoint of its
    external edge towards the parent fragment, and fragment-internal
    orientation is a native parallel flood from the [r_i]. *)
type rooted = {
  tree : Ln_graph.Tree.t;
  parent_edge : int array;  (** per-vertex MST parent edge; -1 at rt *)
  frag_root : int array;  (** fragment -> its root r_i *)
  frag_parent : int array;  (** fragment -> parent fragment (-1 at top) *)
  frag_parent_edge : int array;  (** fragment -> external edge e_F (-1) *)
}

(** [root_at t ~rt] orients the MST at [rt]; the native flood rounds are
    appended to [t.ledger]. *)
val root_at : t -> rt:int -> rooted
