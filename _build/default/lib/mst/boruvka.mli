(** Controlled Borůvka — the phase-1 fragment builder of the [KP98]
    MST algorithm (standing in for the full GHS-with-counters machinery;
    see DESIGN.md "Fidelity model").

    Runs Borůvka merge phases, with fragments whose internal tree
    hop-diameter exceeds [diam_cap] frozen (they stop proposing merge
    edges), until at most [target] fragments remain or no live fragment
    can merge. All edges chosen are MST edges (weight ties broken by
    edge id, so the result is a sub-forest of *the* MST).

    The round cost of each phase in the distributed execution this
    stands in for is O(live fragment diameter) — returned per phase so
    the caller can charge the ledger from measured quantities. *)

type phase = {
  fragments_before : int;
  merges : int;
  max_live_diameter : int;  (** max hop-diameter among proposing fragments *)
}

(** [base_fragments g ~target ~diam_cap] returns the fragment bundle
    and per-phase statistics. With [target >= 1] on a connected graph
    the result always has at least one fragment; with [target = 1] and
    no diameter cap it computes the full MST. *)
val base_fragments :
  Ln_graph.Graph.t -> target:int -> diam_cap:int -> Fragments.t * phase list
