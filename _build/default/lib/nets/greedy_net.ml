module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths

let build g ~radius =
  if radius <= 0.0 then invalid_arg "Greedy_net.build: radius must be positive";
  let n = Graph.n g in
  let covered = Array.make n false in
  let picked = ref [] in
  for v = 0 to n - 1 do
    if not covered.(v) then begin
      picked := v :: !picked;
      let sp = Paths.dijkstra ~bound:radius g v in
      Array.iteri (fun u d -> if d <= radius then covered.(u) <- true) sp.Paths.dist
    end
  done;
  List.rev !picked
