lib/nets/net.mli: Ln_congest Ln_graph Random
