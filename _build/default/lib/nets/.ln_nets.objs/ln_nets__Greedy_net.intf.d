lib/nets/greedy_net.mli: Ln_graph
