lib/nets/greedy_net.ml: Array List Ln_graph
