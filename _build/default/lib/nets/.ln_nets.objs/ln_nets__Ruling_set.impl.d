lib/nets/ruling_set.ml: Ln_graph Net
