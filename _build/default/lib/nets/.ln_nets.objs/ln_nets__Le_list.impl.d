lib/nets/le_list.ml: Array Float Format Hashtbl List Ln_graph
