lib/nets/ruling_set.mli: Ln_graph Random
