lib/nets/net.ml: Array Float Fun Hashtbl Int Le_list List Ln_aspt Ln_congest Ln_graph Random
