lib/nets/le_list.mli: Ln_graph
