(** Least-Element lists [Coh97] (Definition 1 of the paper).

    Given a permutation π over a vertex subset A, the LE list of v is
    { (u, d_G(u,v)) : u ∈ A, no w ∈ A has d_G(v,w) ≤ d_G(v,u) and
    π(w) < π(u) } — i.e. the per-distance prefix minima of π.

    Computed by Cohen's pruned-Dijkstra algorithm (process sources in π
    order; prune the search at vertices whose current best-π entry is
    already closer). This is the sequential stand-in for the [FL16]
    distributed computation — see DESIGN.md "Substitutions"; the net
    algorithm charges its round cost and consumes only the lists, whose
    contents satisfy Definition 1 exactly (i.e. with respect to an
    exact H, δ′ = 0). W.h.p. every list has O(log |A|) entries
    [KKM+12]. *)

(** [compute g ~order] — [order] lists the subset A in π order (first =
    π-minimal). Returns per-vertex LE lists as (u, d) pairs sorted by
    increasing distance (equivalently decreasing π rank). Every vertex
    of the graph gets a list (the definition quantifies u over A but v
    over V, which is what the net algorithm needs). *)
val compute : Ln_graph.Graph.t -> order:int list -> (int * float) list array

(** [check g ~order lists] re-verifies Definition 1 against brute-force
    Dijkstra; used by the test-suite. *)
val check :
  Ln_graph.Graph.t -> order:int list -> (int * float) list array -> (unit, string) result
