(** Distributed (α, β)-net construction — Section 6 (Theorem 3).

    A set N ⊆ V is α-covering (every vertex has a net point within α)
    and β-separated (net points are pairwise further than β apart).
    Theorem 3 builds a ((1+δ)·Δ, Δ/(1+δ))-net in
    (√n + D)·2^{Õ(√(log n·log(1/δ)))} rounds.

    Algorithm (O(log n) iterations w.h.p.): each iteration samples a
    uniform permutation over the active vertices, computes LE lists
    ({!Le_list}, standing in for [FL16] — *charged* per DESIGN.md),
    lets every vertex that is π-first in its Δ-ball join the net, and
    deactivates everything within (1+δ)Δ of the new net points via a
    native distance-bounded multi-source Bellman–Ford
    ({!Ln_aspt.Bellman_ford.multi_source}, the approximate-SPT step of
    the paper).

    Because our LE lists and deactivation distances are exact (δ′ = 0 ≤
    δ), the result is in fact a ((1+δ)·Δ, Δ)-net — within the theorem's
    guarantee with slack in the separation. *)

type t = {
  points : int list;  (** the net N *)
  radius : float;  (** Δ *)
  delta : float;  (** δ *)
  covering_bound : float;  (** (1+δ)·Δ *)
  separation_bound : float;  (** Δ *)
  iterations : int;
  ledger : Ln_congest.Ledger.t;
}

(** [build ~rng g ~bfs ~radius ~delta] runs the construction.
    @raise Invalid_argument unless [radius > 0] and [delta >= 0]. *)
val build :
  rng:Random.State.t ->
  Ln_graph.Graph.t ->
  bfs:Ln_graph.Tree.t ->
  radius:float ->
  delta:float ->
  t

(** [is_net g ~covering ~separation pts] checks both net properties
    exactly (Dijkstra); used by tests and the experiment harness. *)
val is_net :
  Ln_graph.Graph.t -> covering:float -> separation:float -> int list -> bool
