(** (α, β)-ruling sets on unweighted graphs — the special case of nets
    the prior distributed work ([AGLP89], [Lub86], [SEW13]) handles;
    the paper's Section 6 generalizes them to weighted graphs.

    A (k, k)-ruling set is also a maximal independent set of G^k. *)

type t = {
  points : int list;
  covering_hops : int;  (** every vertex is within this many hops *)
  separation_hops : int;  (** points are pairwise strictly further *)
  iterations : int;
}

(** [build ~rng g ~k] — a (k·(1+δ̂), k)-ruling set via the weighted net
    machinery on unit weights, with δ̂ rounded so both bounds are the
    integers reported in the result. *)
val build : rng:Random.State.t -> Ln_graph.Graph.t -> bfs:Ln_graph.Tree.t -> k:int -> t
