module Graph = Ln_graph.Graph

type t = {
  points : int list;
  covering_hops : int;
  separation_hops : int;
  iterations : int;
}

let build ~rng g ~bfs ~k =
  if k < 1 then invalid_arg "Ruling_set.build: k must be >= 1";
  (* Unit-weight view of the graph. *)
  let unit_g =
    Graph.create (Graph.n g)
      (Graph.fold_edges g (fun _ e acc -> { e with Graph.w = 1.0 } :: acc) [])
  in
  let net = Net.build ~rng unit_g ~bfs ~radius:(float_of_int k) ~delta:0.0 in
  {
    points = net.Net.points;
    covering_hops = k;
    separation_hops = k;
    iterations = net.Net.iterations;
  }
