(** Sequential greedy (Δ, Δ)-net — the classical baseline the paper's
    distributed construction is measured against (inherently
    sequential, which is the paper's motivation for Section 6).

    Scans vertices in id order and keeps every vertex further than Δ
    from all previously kept ones: the result is Δ-covering and
    Δ-separated. *)

val build : Ln_graph.Graph.t -> radius:float -> int list
