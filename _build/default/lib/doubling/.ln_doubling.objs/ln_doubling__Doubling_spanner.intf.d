lib/doubling/doubling_spanner.mli: Ln_congest Ln_graph Random
