lib/doubling/doubling_spanner.ml: Array Float Hashtbl Int List Ln_aspt Ln_congest Ln_graph Ln_nets Ln_prim Option
