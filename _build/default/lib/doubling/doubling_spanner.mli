(** Light (1+ε)-spanners for doubling graphs — Section 7 (Theorem 5):
    lightness ε^{-O(ddim)}·log n and n·ε^{-O(ddim)}·log n edges, in
    (√n + D)·ε^{-Õ(√log n + ddim)} rounds.

    For every distance scale Δ (powers of 1+ε between the minimum edge
    weight and the MST weight L):
    {ol
    {- an (εΔ/2, εΔ/3)-net via Section 6 ({!Ln_nets.Net}, δ = 1/2);}
    {- a 2Δ-bounded multi-source shortest-path exploration from the net
       points ({!Ln_aspt.Bellman_ford.multi_source} — the [EN16]
       path-reporting-hopset substitute), which leaves every vertex
       knowing, per nearby net point, its distance and parent edge;}
    {- native path reporting: each net point launches one token per
       discovered net point; tokens walk the parent chains, and every
       edge they cross joins the spanner. Congestion is bounded by the
       doubling packing property — and measured, not assumed.}}

    The per-vertex table sizes and token loads are reported so the
    packing argument of Lemma 6 can be checked empirically (bench E4). *)

type t = {
  edges : int list;  (** spanner edges (MST not implicitly included) *)
  epsilon : float;
  stretch_bound : float;  (** 1 + c·ε promised stretch *)
  scales : int;  (** number of distance scales processed *)
  max_table : int;  (** max net points any vertex discovered at a scale *)
  ledger : Ln_congest.Ledger.t;
}

(** [build ~rng g ~epsilon] — the full construction.
    @raise Invalid_argument unless [0 < epsilon <= 0.5]. *)
val build : rng:Random.State.t -> Ln_graph.Graph.t -> epsilon:float -> t
