lib/slt/kry95.ml: Array Hashtbl Int List Ln_graph
