lib/slt/slt.ml: Array Float Hashtbl Int List Ln_aspt Ln_congest Ln_graph Ln_mst Ln_prim Ln_traversal
