lib/slt/slt.mli: Ln_congest Ln_graph Random
