lib/slt/kry95.mli: Ln_graph
