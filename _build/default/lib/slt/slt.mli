(** Shallow-Light Trees in the CONGEST model — Section 4 (Theorem 1).

    An (α, β)-SLT rooted at rt is a spanning tree with
    [d_T(rt, v) ≤ α · d_G(rt, v)] for every v, and weight
    [≤ β · w(MST)].

    [build ~epsilon] implements the paper's construction for
    ε ∈ (0, 1]: a (1 + O(ε), 1 + O(1/ε))-SLT —
    {ol
    {- distributed MST + Euler tour L (Section 3);}
    {- an (approximate) SPT T_rt ({!Ln_aspt.Hub_sssp}; ours is exact,
       which only tightens the stretch);}
    {- two-phase break-point selection on L: a native token scan run in
       parallel in the √n-size intervals of L (set BP1), and a central
       sparsification of the interval anchors BP′ at rt (set BP2),
       anchors gathered/filtered/re-broadcast over the BFS tree;}
    {- H = MST ∪ (T_rt-paths to break points), via the ABP subtree
       marking of §4.2 over a fragment decomposition of T_rt;}
    {- the final SLT: a second SPT computation restricted to H.}}

    [build_light ~gamma] gives the inverse trade-off — lightness
    [1 + γ] with stretch O(1/γ) — via the [BFN16] reweighting
    reduction (Lemma 5): non-MST edges are scaled up by [1/δ] and the
    base construction re-run. *)

type t = {
  rt : int;
  tree : Ln_graph.Tree.t;  (** the SLT *)
  edges : int list;  (** its edge ids *)
  h_edges : int list;  (** the intermediate graph H *)
  break_positions : int list;  (** chosen break points, as L-positions *)
  stretch_bound : float;  (** the α this run promises *)
  lightness_bound : float;  (** the β this run promises *)
  ledger : Ln_congest.Ledger.t;
}

(** [build ~rng g ~rt ~epsilon] — the (1+O(ε), 1+O(1/ε)) regime.
    [sparsify_anchors:false] disables the central BP2 filtering of the
    interval anchors (every anchor becomes a break point) — the
    ablation showing why §4.1's second phase exists: stretch is kept
    but the lightness guarantee on H is lost.
    @raise Invalid_argument unless [0 < epsilon <= 1]. *)
val build :
  ?sparsify_anchors:bool ->
  rng:Random.State.t ->
  Ln_graph.Graph.t ->
  rt:int ->
  epsilon:float ->
  t

(** [build_light ~rng g ~rt ~gamma] — lightness [1 + γ], stretch
    O(1/γ), via the BFN16 reduction. @raise Invalid_argument unless
    [0 < gamma <= 1]. *)
val build_light : rng:Random.State.t -> Ln_graph.Graph.t -> rt:int -> gamma:float -> t
