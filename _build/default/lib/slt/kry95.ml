module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Paths = Ln_graph.Paths
module Mst_seq = Ln_graph.Mst_seq
module Euler = Ln_graph.Euler

type t = {
  rt : int;
  tree : Tree.t;
  edges : int list;
  h_edges : int list;
  break_vertices : int list;
}

let build g ~rt ~epsilon =
  if epsilon <= 0.0 then invalid_arg "Kry95.build: epsilon must be positive";
  let mst = Mst_seq.kruskal g in
  let tree = Tree.of_edges g ~root:rt mst in
  let tour = Euler.of_tree tree in
  let spt = Paths.dijkstra g rt in
  (* Greedy break-point selection along the tour. *)
  let breaks = ref [] in
  let last_r = ref 0.0 in
  let len = Euler.length tour in
  for j = 1 to len - 1 do
    let v = tour.Euler.seq.(j) in
    let r = tour.Euler.time.(j) in
    if r -. !last_r > epsilon *. spt.Paths.dist.(v) then begin
      breaks := v :: !breaks;
      last_r := r
    end
  done;
  let break_vertices = List.sort_uniq Int.compare !breaks in
  (* H = MST plus the exact shortest paths from rt to break points. *)
  let h_edge_set = Hashtbl.create (2 * Graph.n g) in
  List.iter (fun e -> Hashtbl.replace h_edge_set e ()) mst;
  List.iter
    (fun b ->
      let rec splice v =
        let e = spt.Paths.parent_edge.(v) in
        if e >= 0 then begin
          Hashtbl.replace h_edge_set e ();
          splice (Graph.other_end g e v)
        end
      in
      splice b)
    break_vertices;
  let h_edges = List.sort Int.compare (Hashtbl.fold (fun e () acc -> e :: acc) h_edge_set []) in
  let edge_ok e = Hashtbl.mem h_edge_set e in
  let final = Paths.dijkstra ~edge_ok g rt in
  let slt_edges =
    List.sort Int.compare
      (Array.to_list final.Paths.parent_edge |> List.filter (fun e -> e >= 0))
  in
  let slt_tree = Tree.of_edges g ~root:rt slt_edges in
  { rt; tree = slt_tree; edges = slt_edges; h_edges; break_vertices }
