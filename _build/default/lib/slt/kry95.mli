(** Sequential Shallow-Light Tree baseline — Khuller, Raghavachari &
    Young (Algorithmica '95), the algorithm whose trade-off the paper's
    distributed construction matches.

    Walks the Euler tour of the MST keeping a running tour-distance
    budget; whenever the budget since the last break point exceeds
    ε · d_G(rt, current), the exact shortest path from rt is spliced
    in. The SLT is the shortest-path tree of the resulting graph H.
    Guarantees: stretch 1 + O(ε) from rt, lightness 1 + O(1/ε). *)

type t = {
  rt : int;
  tree : Ln_graph.Tree.t;
  edges : int list;
  h_edges : int list;
  break_vertices : int list;
}

(** [build g ~rt ~epsilon] — sequential (exact-Dijkstra) construction.
    @raise Invalid_argument unless [epsilon > 0]. *)
val build : Ln_graph.Graph.t -> rt:int -> epsilon:float -> t
