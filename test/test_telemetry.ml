(* Telemetry layer tests: rate-guard contracts, deterministic link
   ordering, span/ledger equivalence, per-round sample consistency,
   export round-trips, and the headline differential property — the
   full telemetry event stream (spans, round samples, link totals)
   must be byte-identical between the fast and reference engine
   backends, with and without an ambient fault plan. *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Engine = Ln_congest.Engine
module Fault = Ln_congest.Fault
module Ledger = Ln_congest.Ledger
module Trace = Ln_congest.Trace
module Telemetry = Ln_congest.Telemetry
module Bfs = Ln_prim.Bfs
module Light_spanner = Ln_spanner.Light_spanner

(* ------------------------------------------------------------------ *)
(* Satellite: rate helpers never emit inf/nan.                         *)

let finite_nonneg name x =
  Alcotest.(check bool) (name ^ " finite") true (Float.is_finite x);
  Alcotest.(check bool) (name ^ " >= 0") true (x >= 0.0)

let test_rate_guards () =
  let p = Engine.create_perf () in
  (* All-zero perf: every denominator is zero. *)
  Alcotest.(check (float 0.0)) "rounds/s of empty" 0.0 (Engine.rounds_per_sec p);
  Alcotest.(check (float 0.0)) "msgs/s of empty" 0.0 (Engine.messages_per_sec p);
  Alcotest.(check (float 0.0)) "skip ratio of empty" 0.0 (Engine.skip_ratio p);
  (* Work recorded but the clock never advanced (sub-resolution smoke
     runs): still 0.0, never inf. *)
  p.Engine.rounds <- 1234;
  p.Engine.messages <- 99999;
  p.Engine.skipped <- 10;
  Alcotest.(check (float 0.0)) "rounds/s at wall=0" 0.0 (Engine.rounds_per_sec p);
  Alcotest.(check (float 0.0)) "msgs/s at wall=0" 0.0 (Engine.messages_per_sec p);
  finite_nonneg "skip ratio (steps=0, skipped>0)" (Engine.skip_ratio p);
  Alcotest.(check (float 1e-9)) "skip ratio all-skipped" 1.0 (Engine.skip_ratio p);
  (* Negative wall must not sneak through as a negative rate. *)
  p.Engine.wall <- -1.0;
  Alcotest.(check (float 0.0)) "rounds/s at wall<0" 0.0 (Engine.rounds_per_sec p);
  (* A real run produces finite, non-negative rates. *)
  let g = Gen.path 32 in
  let perf = Engine.create_perf () in
  let _ = Engine.run_fast ~perf g (Bfs.relaxing_program ~root:0) in
  finite_nonneg "rounds/s of real run" (Engine.rounds_per_sec perf);
  finite_nonneg "msgs/s of real run" (Engine.messages_per_sec perf);
  finite_nonneg "skip ratio of real run" (Engine.skip_ratio perf)

(* ------------------------------------------------------------------ *)
(* Satellite: link_load ordering is fully deterministic under ties.    *)

let test_link_load_ties () =
  let tr = Trace.create () in
  let obs = Trace.observer tr in
  (* 40 distinct links, every one carrying exactly one message, fed in
     a scrambled order: the sort sees nothing but ties. *)
  (* Built high-to-low so the insertion order is far from the sorted
     order the contract promises. *)
  let links = ref [] in
  for from = 0 to 7 do
    for dest = 0 to 4 do
      if from <> dest then links := (from, dest) :: !links
    done
  done;
  List.iter (fun (from, dest) -> obs ~round:1 ~from ~dest ~words:1) !links;
  let loads = Trace.link_load tr in
  let expected = List.sort compare (List.map (fun l -> (l, 1)) !links) in
  Alcotest.(check bool) "all-ties ordered by (from, dest)" true (loads = expected);
  (* Mixed loads: primary key stays the load, descending. *)
  obs ~round:2 ~from:3 ~dest:1 ~words:1;
  obs ~round:2 ~from:3 ~dest:1 ~words:1;
  obs ~round:2 ~from:0 ~dest:4 ~words:1;
  let loads = Trace.link_load tr in
  (match loads with
  | ((3, 1), 3) :: ((0, 4), 2) :: rest ->
    let expected_rest =
      List.sort compare
        (List.filter (fun l -> l <> (3, 1) && l <> (0, 4)) !links)
      |> List.map (fun l -> (l, 1))
    in
    Alcotest.(check bool) "tail still tie-sorted" true (rest = expected_rest)
  | _ -> Alcotest.fail "busiest links not first")

(* ------------------------------------------------------------------ *)
(* Spans: measurement matches the engine totals; ledger auto-entry.    *)

let test_span_ledger () =
  let g = Gen.path 24 in
  let ledger = Ledger.create () in
  let before = Engine.snapshot_totals () in
  let _ = Telemetry.span ~ledger "bfs" (fun () -> Bfs.tree g ~root:0) in
  let d = Engine.totals_since before in
  Alcotest.(check int) "ledger native total = measured rounds"
    d.Engine.rounds (Ledger.native_total ledger);
  Alcotest.(check bool) "a path BFS takes >= diameter rounds" true
    (d.Engine.rounds >= 23);
  (* A span whose body raises closes cleanly but records nothing. *)
  let l2 = Ledger.create () in
  (try Telemetry.span ~ledger:l2 "boom" (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "no ledger entry on exception" 0 (Ledger.native_total l2)

(* ------------------------------------------------------------------ *)
(* Round samples: deltas add back up to the run's stats.               *)

let test_round_samples () =
  let g = Gen.path 40 in
  let stats = ref None in
  let (), tr =
    Telemetry.record (fun () ->
        let _, st = Bfs.tree g ~root:0 in
        stats := Some st)
  in
  let st = Option.get !stats in
  let msg_sum = ref 0 and word_sum = ref 0 and step_sum = ref 0 in
  let executed = ref 0 and init_samples = ref 0 in
  List.iter
    (function
      | Telemetry.Round { round; messages; words; steps; active; drops; _ } ->
        msg_sum := !msg_sum + messages;
        word_sum := !word_sum + words;
        step_sum := !step_sum + steps;
        if round = 0 then begin
          incr init_samples;
          Alcotest.(check int) "init round has no steps" 0 steps;
          Alcotest.(check int) "init round activates all nodes" (Graph.n g) active
        end
        else incr executed;
        Alcotest.(check bool) "drops non-negative" true (drops >= 0)
      | _ -> ())
    tr.Telemetry.events;
  Alcotest.(check int) "one init sample per engine run" 1 !init_samples;
  Alcotest.(check int) "executed-round samples = stats.rounds"
    st.Engine.rounds !executed;
  Alcotest.(check int) "recording's round clock matches" st.Engine.rounds
    tr.Telemetry.rounds;
  Alcotest.(check int) "message deltas sum to stats.messages"
    st.Engine.messages !msg_sum;
  Alcotest.(check int) "word deltas sum to stats.total_words"
    st.Engine.total_words !word_sum

(* ------------------------------------------------------------------ *)
(* Export round-trips: both formats reload to the same deterministic
   stream. *)

let spanner_recording () =
  let rng = Random.State.make [| 31; 7 |] in
  let g =
    Gen.ensure_connected
      (Random.State.make [| 31; 8 |])
      (Gen.erdos_renyi (Random.State.make [| 31; 9 |]) ~n:48 ~p:0.15 ())
  in
  let _, tr =
    Telemetry.record (fun () -> Light_spanner.build ~rng g ~k:2 ~epsilon:0.3)
  in
  ignore (Graph.n g);
  tr

let test_export_roundtrip () =
  let tr = spanner_recording () in
  let lines = Telemetry.deterministic_lines tr in
  Alcotest.(check bool) "recording is non-trivial" true
    (List.length lines > 50);
  List.iter
    (fun path ->
      Telemetry.write_file tr path;
      let back = Telemetry.load_file path in
      Alcotest.(check (list string))
        (path ^ " round-trips")
        lines
        (Telemetry.deterministic_lines back);
      Alcotest.(check int) (path ^ " keeps the round clock") tr.Telemetry.rounds
        back.Telemetry.rounds;
      Sys.remove path)
    [ "roundtrip_test.jsonl"; "roundtrip_test.json" ]

let test_leaf_coverage () =
  let tr = spanner_recording () in
  let cov = Telemetry.leaf_round_coverage tr in
  Alcotest.(check bool) "leaf spans cover >= 95% of rounds" true (cov >= 0.95);
  Alcotest.(check bool) "coverage is a fraction" true (cov <= 1.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Differential property: the full telemetry stream — span tree, round
   samples, link totals — is byte-identical across backends, with and
   without a fault plan. Program/graph generators mirror
   test_engine_diff.ml. *)

let mix a b c d =
  let h = ref (a * 0x9E3779B1) in
  h := (!h lxor (b * 0x85EBCA6B)) * 0xC2B2AE35;
  h := (!h lxor (c * 0x27D4EB2F)) * 0x165667B1;
  h := !h lxor (d * 0x9E3779B1);
  h := !h lxor (!h lsr 15);
  abs !h

let flood_program ~seed ~ttl ~word_cap : (int, int) Engine.program =
  let open Engine in
  let payload_of ~me ~round ~edge = mix seed me round edge mod 1000 in
  let sends ctx ~round ~state =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc edge _ ->
           if mix seed (ctx.me + state) round edge mod 3 <> 0 then
             { via = edge; msg = payload_of ~me:ctx.me ~round ~edge } :: acc
           else acc)
         [])
  in
  {
    name = "rand-flood";
    words = (fun m -> 1 + (abs m mod word_cap));
    init = (fun ctx -> (ctx.me, sends ctx ~round:0 ~state:0));
    step =
      (fun ctx ~round s inbox ->
        let s =
          List.fold_left
            (fun acc (r : int received) ->
              (acc * 31) + (r.from * 7) + r.payload + r.edge)
            s inbox
        in
        let s = s land 0xFFFFFF in
        if round <= ttl then (s, sends ctx ~round ~state:s, round < ttl)
        else (s, [], false));
  }

let graph_of ~n ~seed =
  let rng = Random.State.make [| seed; 17 |] in
  let p = 0.05 +. (float_of_int (seed mod 7) /. 10.0) in
  Gen.erdos_renyi rng ~n ~p ()

let telemetry_lines ?plan backend g program =
  Engine.with_backend backend (fun () ->
      let capture () =
        let (), tr =
          Telemetry.record (fun () ->
              Telemetry.span "flood" (fun () ->
                  ignore (Engine.run ~on_round_limit:`Mark g program)))
        in
        tr
      in
      let tr =
        match plan with
        | None -> capture ()
        | Some plan ->
          Fault.reset plan;
          Engine.with_faults ~max_rounds:5_000 plan capture
      in
      Telemetry.deterministic_lines tr)

let prop_telemetry_differential =
  QCheck2.Test.make
    ~name:"telemetry stream identical on both backends (plain + faults)"
    ~count:60
    QCheck2.Gen.(triple (int_range 2 40) (int_range 0 100_000) (int_range 0 8))
    (fun (n, seed, ttl) ->
      let g = graph_of ~n ~seed in
      let program = flood_program ~seed ~ttl ~word_cap:4 in
      let plain_fast = telemetry_lines Engine.Fast g program in
      let plain_ref = telemetry_lines Engine.Reference g program in
      let plan = Fault.make ~drop_prob:0.1 ~seed:(seed land 0xFFFF) () in
      let fault_fast = telemetry_lines ~plan Engine.Fast g program in
      let fault_ref = telemetry_lines ~plan Engine.Reference g program in
      plain_fast = plain_ref && fault_fast = fault_ref
      (* Faults must actually perturb the stream for the second half of
         the property to mean anything — but only when something was
         droppable; tiny graphs can legitimately coincide, so no
         assertion on [plain <> fault] here. *))

(* ------------------------------------------------------------------ *)
(* Registry-to-ledger bridge: histogram series from a metrics
   snapshot become metrics/ notes; counters and gauges (already in
   the ledger's perf section) are not duplicated. *)

let test_note_metrics_bridge () =
  let module Metrics = Ln_obs.Metrics in
  let h = Metrics.histogram "test_tel_bridge_us" in
  let c = Metrics.counter "test_tel_bridge_total" in
  Metrics.reset ();
  Metrics.set_on true;
  Metrics.add c 5;
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 40.0 ];
  Metrics.set_on false;
  let lg = Ledger.create () in
  Telemetry.note_metrics lg (Metrics.snapshot ());
  let notes = Ledger.notes lg in
  let labelled l = List.exists (fun (k, _) -> k = l) notes in
  Alcotest.(check bool) "histogram noted" true
    (labelled "metrics/test_tel_bridge_us");
  Alcotest.(check bool) "counter not duplicated into notes" false
    (labelled "metrics/test_tel_bridge_total");
  (match List.assoc_opt "metrics/test_tel_bridge_us" notes with
  | Some body ->
    Alcotest.(check bool) "note carries the count" true
      (String.length body > 0
      && String.sub body 0 8 = "count=4 ")
  | None -> Alcotest.fail "note body missing");
  Metrics.reset ()

(* Fixed QCheck seed: dune runtest must be deterministic. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x7e1e |]) t

let () =
  Alcotest.run "ln_telemetry"
    [
      ( "guards",
        [
          Alcotest.test_case "engine rate helpers never inf/nan" `Quick
            test_rate_guards;
          Alcotest.test_case "link_load deterministic under ties" `Quick
            test_link_load_ties;
        ] );
      ( "spans",
        [
          Alcotest.test_case "span measures engine totals + ledger" `Quick
            test_span_ledger;
          Alcotest.test_case "round samples sum to run stats" `Quick
            test_round_samples;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl and chrome round-trip" `Quick
            test_export_roundtrip;
          Alcotest.test_case "leaf coverage on light spanner" `Quick
            test_leaf_coverage;
          Alcotest.test_case "metrics-to-ledger bridge" `Quick
            test_note_metrics_bridge;
        ] );
      ("differential", [ qcheck prop_telemetry_differential ]);
    ]
