(* Differential tests: the fast engine (arena mailboxes, active-set
   scheduler) must be observationally identical to the reference
   list-based engine — same final states, same stats, and the same
   observer call sequence — on randomized word-bounded flood programs
   over random graphs. The programs are deterministic functions of a
   seed (no hidden Random state), so running each engine once is a
   fair comparison; their step functions fold the inbox with a
   non-commutative operation so that any divergence in message
   ordering is caught, not just in message multisets. *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Engine = Ln_congest.Engine

(* A small deterministic mixer (splitmix-style). *)
let mix a b c d =
  let h = ref (a * 0x9E3779B1) in
  h := (!h lxor (b * 0x85EBCA6B)) * 0xC2B2AE35;
  h := (!h lxor (c * 0x27D4EB2F)) * 0x165667B1;
  h := !h lxor (d * 0x9E3779B1);
  h := !h lxor (!h lsr 15);
  abs !h

(* A word-bounded pseudorandom flood: every node stays active for
   [ttl] rounds, sending over a seed-dependent subset of its edges
   each round; payloads and word sizes are seed-dependent; state is an
   order-sensitive digest of everything received. *)
let flood_program ~seed ~ttl ~word_cap : (int, int) Engine.program =
  let open Engine in
  let payload_of ~me ~round ~edge = mix seed me round edge mod 1000 in
  let sends ctx ~round ~state =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc edge _ ->
           if mix seed (ctx.me + state) round edge mod 3 <> 0 then
             { via = edge; msg = payload_of ~me:ctx.me ~round ~edge } :: acc
           else acc)
         [])
  in
  {
    name = "rand-flood";
    words = (fun m -> 1 + (abs m mod word_cap));
    init = (fun ctx -> (ctx.me, sends ctx ~round:0 ~state:0));
    step =
      (fun ctx ~round s inbox ->
        let s =
          List.fold_left
            (fun acc (r : int received) ->
              (acc * 31) + (r.from * 7) + r.payload + r.edge)
            s inbox
        in
        let s = s land 0xFFFFFF in
        if round <= ttl then (s, sends ctx ~round ~state:s, round < ttl)
        else (s, [], false));
  }

type event = { round : int; from : int; dest : int; words : int }

let record_observer events ~round ~from ~dest ~words =
  events := { round; from; dest; words } :: !events

let run_both ?max_rounds g program =
  let ev_fast = ref [] and ev_ref = ref [] in
  let fast =
    Engine.run_fast ?max_rounds ~on_round_limit:`Mark
      ~observer:(record_observer ev_fast) g program
  in
  let reference =
    Engine.run_reference ?max_rounds ~on_round_limit:`Mark
      ~observer:(record_observer ev_ref) g program
  in
  (fast, reference, !ev_fast, !ev_ref)

let graph_of ~n ~seed =
  let rng = Random.State.make [| seed; 17 |] in
  let p = 0.05 +. (float_of_int (seed mod 7) /. 10.0) in
  Gen.erdos_renyi rng ~n ~p ()

let prop_states_and_stats_agree =
  QCheck2.Test.make ~name:"fast and reference engines agree (states, stats, observer)"
    ~count:150
    QCheck2.Gen.(
      triple (int_range 2 60) (int_range 0 100_000) (int_range 0 12))
    (fun (n, seed, ttl) ->
      let g = graph_of ~n ~seed in
      let word_cap = 4 in
      let program = flood_program ~seed ~ttl ~word_cap in
      let (s_fast, st_fast), (s_ref, st_ref), ev_fast, ev_ref =
        run_both g program
      in
      s_fast = s_ref && st_fast = st_ref && ev_fast = ev_ref)

(* The round-limit marker must also agree: truncate runs at a random
   cap and compare rounds, outcome and partial states. *)
let prop_round_limit_agrees =
  QCheck2.Test.make ~name:"fast and reference engines agree under max_rounds"
    ~count:80
    QCheck2.Gen.(
      triple (int_range 2 40) (int_range 0 100_000) (int_range 0 6))
    (fun (n, seed, cap) ->
      let g = graph_of ~n ~seed in
      let program = flood_program ~seed ~ttl:10 ~word_cap:4 in
      let (s_fast, st_fast), (s_ref, st_ref), ev_fast, ev_ref =
        run_both ~max_rounds:cap g program
      in
      s_fast = s_ref && st_fast = st_ref && ev_fast = ev_ref)

(* Sparse-phase workload aimed at the active-set scheduler: a token
   walks a path graph, so all but one node are quiescent each round. *)
let token_walk len : (int, unit) Engine.program =
  let open Engine in
  {
    name = "token-walk";
    words = (fun () -> 1);
    init =
      (fun ctx ->
        if ctx.me = 0 then (1, [ { via = ctx_edge ctx 0; msg = () } ])
        else (0, []));
    step =
      (fun ctx ~round:_ s inbox ->
        match inbox with
        | [] -> (s, [], false)
        | { edge; _ } :: _ ->
          let forward =
            List.rev
              (ctx_fold_neighbors ctx
                 (fun acc e _ ->
                   if e <> edge && ctx.me < len then { via = e; msg = () } :: acc
                   else acc)
                 [])
          in
          (s + 1, forward, false));
  }

let test_token_walk_agrees () =
  let g = Gen.path 64 in
  let program = token_walk 64 in
  let (s_fast, st_fast), (s_ref, st_ref), ev_fast, ev_ref =
    run_both g program
  in
  Alcotest.(check bool) "states" true (s_fast = s_ref);
  Alcotest.(check bool) "stats" true (st_fast = st_ref);
  Alcotest.(check bool) "events" true (ev_fast = ev_ref);
  (* The scheduler must actually skip the quiescent tail. *)
  let perf = Engine.create_perf () in
  let _ = Engine.run_fast ~perf g program in
  Alcotest.(check bool) "scheduler skips quiescent nodes" true
    (Engine.skip_ratio perf > 0.5)

let test_backend_dispatch () =
  let g = Gen.path 8 in
  let program = token_walk 8 in
  let _, st_default = Engine.run g program in
  let _, st_ref =
    Engine.with_backend Engine.Reference (fun () -> Engine.run g program)
  in
  Alcotest.(check bool) "dispatch restores backend" true
    (Engine.current_backend () = Engine.Fast);
  Alcotest.(check bool) "same stats through dispatch" true (st_default = st_ref);
  let _, st_par =
    Engine.with_backend (Engine.Par 2) (fun () -> Engine.run g program)
  in
  Alcotest.(check bool) "par dispatch agrees" true (st_default = st_par)

(* ------------------------------------------------------------------ *)
(* Parallel backend: run_par must be byte-identical to run_fast for
   every domain count — final states, stats, observer call sequence,
   and the canonical telemetry stream (round-probe samples and link
   totals; Telemetry.deterministic_lines already strips the wall-clock
   and domain-count fields, which are the only legitimate
   differences). Checked with and without a fault plan. *)

module Telemetry = Ln_congest.Telemetry
module Fault = Ln_congest.Fault

(* Run one backend under a fresh telemetry recording, capturing result,
   observer events and the canonical stream. [runner] receives the
   observer first (a concrete label dodges optional-argument
   inference). *)
let capture runner g program =
  let ev = ref [] in
  let res, tr =
    Telemetry.record (fun () -> runner (record_observer ev) g program)
  in
  (res, !ev, Telemetry.deterministic_lines tr)

let plan_of g ~seed =
  let n = Graph.n g and m = Graph.m g in
  let drop_prob = float_of_int (seed mod 4) /. 10.0 in
  let crashes =
    if seed mod 3 = 0 then [ (mix seed 1 2 3 mod n, mix seed 4 5 6 mod 8) ]
    else []
  in
  let link_failures =
    if m > 0 && seed mod 2 = 0 then
      [
        { Fault.edge = mix seed 7 8 9 mod m; from_round = 1; until_round = None };
        {
          Fault.edge = mix seed 10 11 12 mod m;
          from_round = 0;
          until_round = Some (1 + (seed mod 5));
        };
      ]
    else []
  in
  (* Crash-recovery windows land on a different seed class than the
     crash-stops, so the sample mixes permanent and healing crashes. *)
  let crash_windows =
    if seed mod 3 = 1 then
      let at = mix seed 13 14 15 mod 6 in
      [
        {
          Fault.node = mix seed 16 17 18 mod n;
          crash_round = at;
          recover_round = Some (at + 1 + (mix seed 19 20 21 mod 8));
        };
      ]
    else []
  in
  Fault.make ~drop_prob ~link_failures ~crashes ~crash_windows ~seed ()

let par_domains = [ 1; 2; 4 ]

let prop_par_matches_fast =
  QCheck2.Test.make
    ~name:"run_par = run_fast for domains in {1,2,4} (states, stats, telemetry)"
    ~count:40
    QCheck2.Gen.(
      triple (int_range 2 48) (int_range 0 100_000) (int_range 0 10))
    (fun (n, seed, ttl) ->
      let g = graph_of ~n ~seed in
      let program = flood_program ~seed ~ttl ~word_cap:4 in
      let base =
        capture
          (fun obs g p ->
            Engine.run_fast ~on_round_limit:`Mark ~observer:obs g p)
          g program
      in
      List.for_all
        (fun d ->
          capture
            (fun obs g p ->
              Engine.run_par ~on_round_limit:`Mark ~domains:d ~observer:obs g
                p)
            g program
          = base)
        par_domains)

let prop_par_matches_fast_under_faults =
  QCheck2.Test.make
    ~name:"run_par = run_fast under a fault plan (drops, crashes, windows)"
    ~count:30
    QCheck2.Gen.(pair (int_range 2 48) (int_range 0 100_000))
    (fun (n, seed) ->
      let g = graph_of ~n ~seed in
      let program = flood_program ~seed ~ttl:8 ~word_cap:4 in
      let plan = plan_of g ~seed in
      let side runner =
        Fault.reset plan;
        let r = capture runner g program in
        (r, Fault.counts plan)
      in
      let base =
        side (fun obs g p ->
            Engine.run_fast ~on_round_limit:`Mark ~faults:plan ~max_rounds:200
              ~observer:obs g p)
      in
      List.for_all
        (fun d ->
          side (fun obs g p ->
              Engine.run_par ~on_round_limit:`Mark ~faults:plan
                ~max_rounds:200 ~domains:d ~observer:obs g p)
          = base)
        par_domains)

(* ------------------------------------------------------------------ *)
(* Topology stress for the flat-ctx hot path. Power-law RMAT graphs
   exercise exactly what uniform Erdős–Rényi samples cannot: hub nodes
   whose inbox chains span a large fraction of the arena, so the
   stamp-guarded chain walk and the dense-round membership scan both
   see heavy skew. Seeds are pinned through the generator so every
   replay builds the same graph. *)

let graph_rmat ~scale ~seed =
  let rng = Random.State.make [| seed; 0x9a7 |] in
  Gen.ensure_connected rng (Gen.rmat rng ~scale ~edge_factor:8 ())

let prop_rmat_all_backends_agree =
  QCheck2.Test.make
    ~name:"RMAT topology: fast = reference = par@2 (states, stats, telemetry)"
    ~count:12
    QCheck2.Gen.(
      triple (int_range 4 7) (int_range 0 100_000) (int_range 0 8))
    (fun (scale, seed, ttl) ->
      let g = graph_rmat ~scale ~seed in
      let program = flood_program ~seed ~ttl ~word_cap:4 in
      let fast =
        capture
          (fun obs g p ->
            Engine.run_fast ~on_round_limit:`Mark ~observer:obs g p)
          g program
      in
      let reference =
        capture
          (fun obs g p ->
            Engine.run_reference ~on_round_limit:`Mark ~observer:obs g p)
          g program
      in
      let par =
        capture
          (fun obs g p ->
            Engine.run_par ~on_round_limit:`Mark ~domains:2 ~observer:obs g p)
          g program
      in
      fast = reference && fast = par)

(* A star graph concentrates every message of a round onto one hub, so
   the hub's arena inbox chain is as long as the graph is wide. The
   digest is order-sensitive: the chain must unwind to exactly the
   reference engine's prepend order or the fold diverges. *)
let star_inbox_chain () =
  let n = 4097 in
  let g = Gen.star n in
  let open Engine in
  let program : (int, int) Engine.program =
    {
      name = "star-chain";
      words = (fun _ -> 1);
      init =
        (fun ctx ->
          if ctx_degree ctx = 1 then
            (0, [ { via = ctx_edge ctx 0; msg = ctx.me } ])
          else (1, []));
      step =
        (fun _ctx ~round:_ s inbox ->
          let s =
            List.fold_left
              (fun acc (r : int received) -> (acc * 131) + r.payload + r.from)
              s inbox
          in
          (s land 0x3FFFFFFF, [], false));
    }
  in
  let fast =
    capture (fun obs g p -> Engine.run_fast ~observer:obs g p) g program
  in
  let reference =
    capture (fun obs g p -> Engine.run_reference ~observer:obs g p) g program
  in
  let par =
    capture
      (fun obs g p -> Engine.run_par ~domains:2 ~observer:obs g p)
      g program
  in
  Alcotest.(check bool) "fast = reference on star hub" true (fast = reference);
  Alcotest.(check bool) "par = fast on star hub" true (fast = par);
  let (states, _), _, _ = fast in
  (* The hub saw all n-1 leaves; a zero digest would mean an empty or
     truncated chain slipped through. *)
  Alcotest.(check bool) "hub digest nonzero" true (states.(0) <> 1)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed4 |]) t

let () =
  Alcotest.run "ln_congest_diff"
    [
      ( "differential",
        [
          qcheck prop_states_and_stats_agree;
          qcheck prop_round_limit_agrees;
          qcheck prop_rmat_all_backends_agree;
          Alcotest.test_case "token walk (sparse phases)" `Quick
            test_token_walk_agrees;
          Alcotest.test_case "star hub inbox chain" `Quick star_inbox_chain;
          Alcotest.test_case "backend dispatch" `Quick test_backend_dispatch;
        ] );
      ( "parallel",
        [
          qcheck prop_par_matches_fast;
          qcheck prop_par_matches_fast_under_faults;
        ] );
    ]
