(* Tests for the distributed MST: agreement with the sequential MST,
   base-fragment structure (Figure 1), and the Section-3.1 rooting. *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Gen = Ln_graph.Gen
module Mst_seq = Ln_graph.Mst_seq
module Ledger = Ln_congest.Ledger
module Fragments = Ln_mst.Fragments
module Boruvka = Ln_mst.Boruvka
module Dist_mst = Ln_mst.Dist_mst

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_dist_mst_small () =
  let rng = Random.State.make [| 11 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.1 () in
  let r = Dist_mst.run g in
  check "matches kruskal" true (r.Dist_mst.mst_edges = Mst_seq.kruskal g);
  check "ledger non-trivial" true (Ledger.total r.Dist_mst.ledger > 0)

let prop_dist_mst_equals_kruskal =
  QCheck2.Test.make ~name:"distributed MST = kruskal" ~count:25
    QCheck2.Gen.(pair (int_range 2 70) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 99 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.15 () in
      let r = Dist_mst.run ~root:(n / 3) g in
      r.Dist_mst.mst_edges = Mst_seq.kruskal g)

let prop_dist_mst_on_structured =
  QCheck2.Test.make ~name:"distributed MST on structured graphs" ~count:10
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed; 5 |] in
      let graphs =
        [
          Gen.path 30;
          Gen.cycle 25;
          Gen.star 20;
          Gen.grid rng ~rows:5 ~cols:6 ();
          Gen.clustered rng ~clusters:3 ~size:7 ~p_in:0.7 ~p_out:0.05 ();
        ]
      in
      List.for_all
        (fun g -> (Dist_mst.run g).Dist_mst.mst_edges = Mst_seq.kruskal g)
        graphs)

let test_base_fragments_structure () =
  let rng = Random.State.make [| 21 |] in
  let g = Gen.erdos_renyi rng ~n:100 ~p:0.08 () in
  let r = Dist_mst.run g in
  let base = r.Dist_mst.base in
  (match Fragments.check g base with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* external + internal = full MST *)
  let internal = Array.to_list base.Fragments.internal_edges |> List.concat in
  check_int "edge counts" 99 (List.length internal + List.length r.Dist_mst.external_edges);
  check_int "external = count - 1"
    (base.Fragments.count - 1)
    (List.length r.Dist_mst.external_edges)

let prop_fragment_count_and_diameter =
  QCheck2.Test.make ~name:"base fragments: O(sqrt n) count, bounded diameter" ~count:15
    QCheck2.Gen.(pair (int_range 20 150) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 31 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.2 () in
      let sqrt_n = int_of_float (Float.ceil (Float.sqrt (float_of_int n))) in
      let frags, _ = Boruvka.base_fragments g ~target:sqrt_n ~diam_cap:((2 * sqrt_n) + 2) in
      (* Freezing can leave slightly more than sqrt n fragments; the
         diameter of a fragment can exceed the cap by one merge's
         worth. Generous structural envelope: *)
      frags.Fragments.count <= (4 * sqrt_n) + 1
      && Fragments.max_hop_diameter frags <= (6 * sqrt_n) + 8)

let test_boruvka_full_mst () =
  let rng = Random.State.make [| 3 |] in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.2 () in
  let frags, _ = Boruvka.base_fragments g ~target:1 ~diam_cap:max_int in
  check_int "one fragment" 1 frags.Fragments.count;
  let edges = List.sort Int.compare frags.Fragments.internal_edges.(0) in
  check "is the MST" true (edges = Mst_seq.kruskal g)

let test_root_at () =
  let rng = Random.State.make [| 8 |] in
  let g = Gen.erdos_renyi rng ~n:80 ~p:0.07 () in
  let r = Dist_mst.run g in
  let rt = 17 in
  let rooted = Dist_mst.root_at r ~rt in
  check "tree spans" true (Tree.covers_all rooted.Dist_mst.tree);
  (* The distributed parent pointers must agree with the (unique)
     orientation of the MST at rt. *)
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let expected = match Tree.parent rooted.Dist_mst.tree v with Some (_, e) -> e | None -> -1 in
    if rooted.Dist_mst.parent_edge.(v) <> expected then ok := false
  done;
  check "parent edges agree with central orientation" true !ok;
  (* Fragment roots lie inside their fragments and the top fragment's
     root is rt. *)
  let base = r.Dist_mst.base in
  Array.iteri
    (fun f ri ->
      check (Printf.sprintf "root of frag %d inside" f) true
        (base.Fragments.frag_of.(ri) = f))
    rooted.Dist_mst.frag_root;
  check_int "top fragment root is rt" rt
    rooted.Dist_mst.frag_root.(base.Fragments.frag_of.(rt))

let test_root_at_path_graph () =
  (* Worst case: a path; fragments are intervals. *)
  let g = Gen.path 64 in
  let r = Dist_mst.run g in
  let rooted = Dist_mst.root_at r ~rt:63 in
  check "path rooted fine" true (Tree.covers_all rooted.Dist_mst.tree);
  check_int "depth of other end" 63 (Tree.depth_hops rooted.Dist_mst.tree 0)

let test_diam_cap_matters () =
  (* Without the cap, a unit path collapses into one huge fragment. *)
  let g = Gen.path 256 in
  let r_capped = Dist_mst.run g in
  let r_free = Dist_mst.run ~diam_cap:max_int g in
  check "capped diameter small" true
    (Fragments.max_hop_diameter r_capped.Dist_mst.base <= 40);
  check "uncapped collapses" true
    (r_free.Dist_mst.base.Fragments.count = 1
    && Fragments.max_hop_diameter r_free.Dist_mst.base = 255);
  (* Both still compute the same (correct) MST. *)
  check "same mst" true (r_capped.Dist_mst.mst_edges = r_free.Dist_mst.mst_edges)

let test_ledger_labels () =
  let rng = Random.State.make [| 44 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.1 () in
  let r = Dist_mst.run g in
  let labels =
    List.map (fun e -> e.Ln_congest.Ledger.label) (Ledger.entries r.Dist_mst.ledger)
  in
  check "bfs phase" true (List.mem "bfs-tree" labels);
  check "phase1 charged" true (List.mem "kp98-phase1" labels);
  check "phase2 native" true (List.mem "phase2/mwoe-aggregate" labels);
  (* Native rounds dominate: phase 2 runs natively. *)
  check "native > 0" true (Ledger.native_total r.Dist_mst.ledger > 0)

let test_root_at_star () =
  let g = Gen.star 30 in
  let r = Dist_mst.run g in
  let rooted = Dist_mst.root_at r ~rt:7 in
  check "leaf depth" true (Tree.depth_hops rooted.Dist_mst.tree 12 = 2);
  check "center depth 1" true (Tree.depth_hops rooted.Dist_mst.tree 0 = 1)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed7 |]) t

let () =
  Alcotest.run "ln_mst"
    [
      ( "dist-mst",
        [
          Alcotest.test_case "small" `Quick test_dist_mst_small;
          qcheck prop_dist_mst_equals_kruskal;
          qcheck prop_dist_mst_on_structured;
        ] );
      ( "fragments",
        [
          Alcotest.test_case "structure" `Quick test_base_fragments_structure;
          qcheck prop_fragment_count_and_diameter;
          Alcotest.test_case "full mst via boruvka" `Quick test_boruvka_full_mst;
        ] );
      ( "rooting",
        [
          Alcotest.test_case "root_at" `Quick test_root_at;
          Alcotest.test_case "path graph" `Quick test_root_at_path_graph;
          Alcotest.test_case "star" `Quick test_root_at_star;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "diameter cap" `Quick test_diam_cap_matters;
          Alcotest.test_case "ledger labels" `Quick test_ledger_labels;
        ] );
    ]
