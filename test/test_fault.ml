(* Chaos-layer tests.

   1. The differential guarantee extends to faulty executions: under a
      shared deterministic fault plan, both engine backends produce
      byte-identical states, stats, fault counters and observer call
      sequences on randomized programs/graphs/plans.
   2. The ARQ combinator actually restores correctness: a Reliable.lift'ed
      relaxing BFS under drop-prob <= 0.3 converges to the exact
      fault-free layers.
   3. Unit coverage for crash-stop semantics, link-failure windows,
      ambient plans, monitor verdicts, replayability and the
      no-spurious-retransmit guarantee. *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Paths = Ln_graph.Paths
module Engine = Ln_congest.Engine
module Fault = Ln_congest.Fault
module Reliable = Ln_congest.Reliable
module Monitor = Ln_congest.Monitor
module Ledger = Ln_congest.Ledger
module Bfs = Ln_prim.Bfs
module Broadcast = Ln_prim.Broadcast

(* Same deterministic mixer as test_engine_diff: programs must be pure
   functions of the seed for a two-backend comparison to be fair. *)
let mix a b c d =
  let h = ref (a * 0x9E3779B1) in
  h := (!h lxor (b * 0x85EBCA6B)) * 0xC2B2AE35;
  h := (!h lxor (c * 0x27D4EB2F)) * 0x165667B1;
  h := !h lxor (d * 0x9E3779B1);
  h := !h lxor (!h lsr 15);
  abs !h

let flood_program ~seed ~ttl ~word_cap : (int, int) Engine.program =
  let open Engine in
  let payload_of ~me ~round ~edge = mix seed me round edge mod 1000 in
  let sends ctx ~round ~state =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc edge _ ->
           if mix seed (ctx.me + state) round edge mod 3 <> 0 then
             { via = edge; msg = payload_of ~me:ctx.me ~round ~edge } :: acc
           else acc)
         [])
  in
  {
    name = "rand-flood";
    words = (fun m -> 1 + (abs m mod word_cap));
    init = (fun ctx -> (ctx.me, sends ctx ~round:0 ~state:0));
    step =
      (fun ctx ~round s inbox ->
        let s =
          List.fold_left
            (fun acc (r : int received) ->
              (acc * 31) + (r.from * 7) + r.payload + r.edge)
            s inbox
        in
        let s = s land 0xFFFFFF in
        if round <= ttl then (s, sends ctx ~round ~state:s, round < ttl)
        else (s, [], false));
  }

type event = { round : int; from : int; dest : int; words : int }

let record_observer events ~round ~from ~dest ~words =
  events := { round; from; dest; words } :: !events

let graph_of ~n ~seed =
  let rng = Random.State.make [| seed; 17 |] in
  let p = 0.05 +. (float_of_int (seed mod 7) /. 10.0) in
  Gen.erdos_renyi rng ~n ~p ()

(* A seed-derived chaos plan exercising all three fault kinds. *)
let plan_of g ~seed =
  let n = Graph.n g and m = Graph.m g in
  let drop_prob = float_of_int (seed mod 4) /. 10.0 in
  let crashes =
    if seed mod 3 = 0 then [ (mix seed 1 2 3 mod n, mix seed 4 5 6 mod 8) ]
    else []
  in
  let link_failures =
    if m > 0 && seed mod 2 = 0 then
      [
        { Fault.edge = mix seed 7 8 9 mod m; from_round = 1; until_round = None };
        {
          Fault.edge = mix seed 10 11 12 mod m;
          from_round = 0;
          until_round = Some (1 + (seed mod 5));
        };
      ]
    else []
  in
  (* Crash-recovery windows land on a different seed class than the
     crash-stops, so the sample mixes permanent and healing crashes. *)
  let crash_windows =
    if seed mod 3 = 1 then
      let at = mix seed 13 14 15 mod 6 in
      [
        {
          Fault.node = mix seed 16 17 18 mod n;
          crash_round = at;
          recover_round = Some (at + 1 + (mix seed 19 20 21 mod 8));
        };
      ]
    else []
  in
  Fault.make ~drop_prob ~link_failures ~crashes ~crash_windows ~seed ()

let prop_differential_under_faults =
  QCheck2.Test.make
    ~name:"fast and reference engines agree under fault plans" ~count:200
    QCheck2.Gen.(triple (int_range 2 50) (int_range 0 100_000) (int_range 0 10))
    (fun (n, seed, ttl) ->
      let g = graph_of ~n ~seed in
      let program = flood_program ~seed ~ttl ~word_cap:4 in
      let plan = plan_of g ~seed in
      let ev_fast = ref [] and ev_ref = ref [] in
      Fault.reset plan;
      let s_fast, st_fast =
        Engine.run_fast ~faults:plan ~observer:(record_observer ev_fast) g
          program
      in
      let c_fast = Fault.counts plan in
      Fault.reset plan;
      let s_ref, st_ref =
        Engine.run_reference ~faults:plan ~observer:(record_observer ev_ref) g
          program
      in
      let c_ref = Fault.counts plan in
      s_fast = s_ref && st_fast = st_ref && !ev_fast = !ev_ref
      && c_fast = c_ref
      && st_fast.dropped_messages = Fault.total c_fast)

let prop_reliable_bfs_exact_layers =
  QCheck2.Test.make
    ~name:"Reliable.lift'ed BFS converges to fault-free layers (drop <= 0.3)"
    ~count:60
    QCheck2.Gen.(
      triple (int_range 2 40) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, tenths) ->
      let rng = Random.State.make [| seed; 23 |] in
      let g =
        Gen.ensure_connected rng (Gen.erdos_renyi rng ~n ~p:0.1 ())
      in
      let root = seed mod n in
      let truth = Paths.bfs_hops g root in
      let plan =
        Fault.make ~drop_prob:(float_of_int tenths /. 10.0) ~seed ()
      in
      let dist, stats = Bfs.layers_reliable ~faults:plan g ~root in
      dist = truth && stats.outcome = Engine.Converged)

(* Fault-free, the ARQ must be invisible: same fixpoint, zero
   retransmissions (rto = 2 exactly covers the ack round-trip). *)
let test_reliable_fault_free_overhead () =
  let g = Gen.path 32 in
  let truth = Paths.bfs_hops g 0 in
  let dist, stats = Bfs.layers_reliable g ~root:0 in
  Alcotest.(check bool) "layers" true (dist = truth);
  Alcotest.(check int) "no spurious retransmissions" 0 stats.retransmissions;
  Alcotest.(check int) "nothing dropped" 0 stats.dropped_messages

let test_crash_stop () =
  (* Path 0-1-2-3; node 2 crashes before round 0: the flood reaches 0
     and 1 only, and the monitor calls that graceful degradation. *)
  let g = Gen.path 4 in
  let plan = Fault.make ~crashes:[ (2, 0) ] ~seed:1 () in
  let got, stats = Broadcast.flood ~faults:plan g ~root:0 ~value:42 in
  Alcotest.(check bool) "node 1 reached" true (got.(1) = Some 42);
  Alcotest.(check bool) "node 2 dark" true (got.(2) = None);
  Alcotest.(check bool) "node 3 dark" true (got.(3) = None);
  Alcotest.(check bool) "drops counted" true (stats.dropped_messages > 0);
  let r = Monitor.broadcast g plan ~root:0 ~value:42 ~got in
  Alcotest.(check bool) "degraded" true (r.verdict = Monitor.Degraded)

let test_permanent_link_failure () =
  let g = Gen.path 3 in
  (* Edge 1 joins vertices 1 and 2 on the path. *)
  let plan =
    Fault.make
      ~link_failures:[ { Fault.edge = 1; from_round = 0; until_round = None } ]
      ~seed:2 ()
  in
  let got, _ = Broadcast.flood ~faults:plan g ~root:0 ~value:7 in
  Alcotest.(check bool) "node 2 dark" true (got.(2) = None);
  let r = Monitor.broadcast g plan ~root:0 ~value:7 ~got in
  Alcotest.(check bool) "degraded" true (r.verdict = Monitor.Degraded)

let test_transient_link_failure_taxonomy () =
  let g = Gen.path 3 in
  let window =
    Fault.make
      ~link_failures:
        [ { Fault.edge = 1; from_round = 0; until_round = Some 50 } ]
      ~seed:3 ()
  in
  (* The raw forward-once flood sends over the edge exactly once,
     inside the failure window: node 2 stays dark. The window heals,
     so the surviving subgraph includes the edge — the monitor must
     say Wrong, not Degraded. *)
  let got, _ = Broadcast.flood ~faults:window g ~root:0 ~value:9 in
  Alcotest.(check bool) "raw flood loses node 2" true (got.(2) = None);
  let r = Monitor.broadcast g window ~root:0 ~value:9 ~got in
  Alcotest.(check bool) "raw flood is Wrong" true (r.verdict = Monitor.Wrong);
  (* The ARQ retransmits past the window and stays Correct. *)
  Fault.reset window;
  let got, stats =
    Broadcast.flood_reliable ~max_retries:100 ~faults:window g ~root:0 ~value:9
  in
  Alcotest.(check bool) "reliable flood reaches node 2" true
    (got.(2) = Some 9);
  Alcotest.(check bool) "retransmissions counted" true
    (stats.retransmissions > 0);
  let r = Monitor.broadcast g window ~root:0 ~value:9 ~got in
  Alcotest.(check bool) "reliable flood is Correct" true
    (r.verdict = Monitor.Correct)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The plan validator must reject malformed schedules eagerly, with
   pinned messages — a typo'd window that silently compiles to "no
   fault" would quietly weaken every scenario built on it. *)
let test_make_validation () =
  let g = Gen.path 4 in
  (* n = 4, m = 3 *)
  let rejects msg build =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (build ()))
  in
  rejects "Fault.make: link 1 failure window [5,5) is empty" (fun () ->
      Fault.make
        ~link_failures:[ { Fault.edge = 1; from_round = 5; until_round = Some 5 } ]
        ~seed:0 ());
  rejects "Fault.make: link failure on edge 1 at round -2 is negative"
    (fun () ->
      Fault.make
        ~link_failures:
          [ { Fault.edge = 1; from_round = -2; until_round = None } ]
        ~seed:0 ());
  rejects "Fault.make: link-failure edge 3 out of range (m=3)" (fun () ->
      Fault.make
        ~link_failures:[ { Fault.edge = 3; from_round = 0; until_round = None } ]
        ~graph:g ~seed:0 ());
  rejects "Fault.make: crash window [5,5) of node 1 is empty" (fun () ->
      Fault.make
        ~crash_windows:
          [ { Fault.node = 1; crash_round = 5; recover_round = Some 5 } ]
        ~seed:0 ());
  rejects "Fault.make: crash of node 1 at round -1 is negative" (fun () ->
      Fault.make ~crashes:[ (1, -1) ] ~seed:0 ());
  rejects "Fault.make: crash node 4 out of range (n=4)" (fun () ->
      Fault.make ~crashes:[ (4, 0) ] ~graph:g ~seed:0 ());
  rejects "Fault.make: duplicate crash of node 2" (fun () ->
      Fault.make ~crashes:[ (2, 0) ]
        ~crash_windows:
          [ { Fault.node = 2; crash_round = 3; recover_round = Some 9 } ]
        ~seed:0 ());
  (* A well-formed mixed schedule still builds. *)
  ignore
    (Fault.make ~crashes:[ (1, 2) ]
       ~crash_windows:
         [ { Fault.node = 2; crash_round = 0; recover_round = Some 4 } ]
       ~link_failures:[ { Fault.edge = 0; from_round = 1; until_round = Some 3 } ]
       ~graph:g ~seed:0 ())

(* Crash-recovery semantics on a path 0-1-2-3: node 2 is down for
   rounds [0,6). The raw forward-once flood offers the value exactly
   once, inside the window — nodes 2 and 3 stay dark, and because node
   2 *heals*, the certifier must call that Wrong (the surviving
   subgraph includes it). The ARQ keeps retransmitting, reaches node 2
   after recovery, and node 2's own sends then wake node 3: Correct. *)
let test_crash_recovery () =
  let g = Gen.path 4 in
  let plan =
    Fault.make
      ~crash_windows:
        [ { Fault.node = 2; crash_round = 0; recover_round = Some 6 } ]
      ~seed:4 ()
  in
  Alcotest.(check bool) "down at 0" true (Fault.crashed plan ~node:2 ~round:0);
  Alcotest.(check bool) "down at 5" true (Fault.crashed plan ~node:2 ~round:5);
  Alcotest.(check bool) "up at 6" false (Fault.crashed plan ~node:2 ~round:6);
  Alcotest.(check bool) "survives (window heals)" true
    (Fault.surviving_node plan 2);
  let s = Fault.describe plan in
  Alcotest.(check bool) "window printed" true (contains s "crash2@[0,6)");
  let got, _ = Broadcast.flood ~faults:plan g ~root:0 ~value:8 in
  Alcotest.(check bool) "raw flood loses 2 and 3" true
    (got.(2) = None && got.(3) = None);
  let r = Monitor.broadcast g plan ~root:0 ~value:8 ~got in
  Alcotest.(check bool) "raw flood is Wrong (node healed)" true
    (r.verdict = Monitor.Wrong);
  Fault.reset plan;
  let got, stats =
    Broadcast.flood_reliable ~max_retries:100 ~faults:plan g ~root:0 ~value:8
  in
  Alcotest.(check bool) "recovered node reached" true (got.(2) = Some 8);
  Alcotest.(check bool) "woken node forwards on" true (got.(3) = Some 8);
  Alcotest.(check bool) "retransmissions counted" true
    (stats.retransmissions > 0);
  let r = Monitor.broadcast g plan ~root:0 ~value:8 ~got in
  Alcotest.(check bool) "reliable flood is Correct" true
    (r.verdict = Monitor.Correct)

(* Retry exhaustion must surface, not hang: against a *permanent* link
   failure the ARQ burns its retry budget, declares the link dead
   (counted in Reliable.gave_up), converges, and the certifier says
   Degraded. The give-up accounting is part of the differential
   contract: all three backends agree on retransmissions and gave_up. *)
let test_retry_exhaustion () =
  let g = Gen.path 4 in
  let plan =
    Fault.make
      ~link_failures:[ { Fault.edge = 1; from_round = 0; until_round = None } ]
      ~seed:9 ()
  in
  let program = Reliable.lift ~max_retries:4 (Broadcast.flood_program ~root:0 ~value:3) in
  let side runner =
    Fault.reset plan;
    let states, stats = runner g program in
    let gave = Array.fold_left (fun a s -> a + Reliable.gave_up s) 0 states in
    let got = Array.map (fun s -> Reliable.project s) states in
    (got, stats, gave)
  in
  let got, stats, gave = side (fun g p -> Engine.run_fast ~faults:plan g p) in
  Alcotest.(check bool) "converged, not capped" true
    (stats.outcome = Engine.Converged);
  Alcotest.(check bool) "link declared dead" true (gave > 0);
  Alcotest.(check bool) "payload abandoned" true (got.(2) = None);
  Alcotest.(check int) "bounded retries" 4 stats.retransmissions;
  let r = Monitor.broadcast g plan ~root:0 ~value:3 ~got in
  Alcotest.(check bool) "degraded, not silently Correct" true
    (r.verdict = Monitor.Degraded);
  let reference = side (fun g p -> Engine.run_reference ~faults:plan g p) in
  let par = side (fun g p -> Engine.run_par ~domains:3 ~faults:plan g p) in
  Alcotest.(check bool) "reference agrees" true ((got, stats, gave) = reference);
  Alcotest.(check bool) "par agrees" true ((got, stats, gave) = par)

(* The three-backend differential on an ARQ'ed protocol under a
   crash-*recovery* plan, including the canonical telemetry stream —
   the exact combination the scenario suite leans on. *)
let test_recovery_differential_all_backends () =
  let rng = Random.State.make [| 31; 23 |] in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng ~n:24 ~p:0.12 ()) in
  let plan =
    Fault.make ~drop_prob:0.1 ~drop_until:30
      ~crash_windows:
        [
          { Fault.node = 3; crash_round = 1; recover_round = Some 9 };
          { Fault.node = 11; crash_round = 4; recover_round = Some 12 };
          { Fault.node = 17; crash_round = 0; recover_round = None };
        ]
      ~seed:31 ()
  in
  let program = Reliable.lift ~max_retries:64 (Broadcast.flood_program ~root:0 ~value:6) in
  let side runner =
    Fault.reset plan;
    let res, tr = Ln_congest.Telemetry.record (fun () -> runner g program) in
    (res, Ln_congest.Telemetry.deterministic_lines tr, Fault.counts plan)
  in
  let (states, stats), lines, counts =
    side (fun g p -> Engine.run_fast ~faults:plan g p)
  in
  Alcotest.(check bool) "crash drops recorded" true (counts.crash_drops > 0);
  Alcotest.(check bool) "recovered nodes reached" true
    (Reliable.project states.(3) = Some 6
    && Reliable.project states.(11) = Some 6);
  Alcotest.(check bool) "permanently crashed node dark" true
    (Reliable.project states.(17) = None);
  Alcotest.(check bool) "converged" true (stats.outcome = Engine.Converged);
  let base = ((states, stats), lines, counts) in
  Alcotest.(check bool) "reference backend byte-identical" true
    (side (fun g p -> Engine.run_reference ~faults:plan g p) = base);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "par(%d) byte-identical" d)
        true
        (side (fun g p -> Engine.run_par ~domains:d ~faults:plan g p) = base))
    [ 2; 3 ]

let test_plan_replayable () =
  let g = graph_of ~n:24 ~seed:5 in
  let program = flood_program ~seed:5 ~ttl:8 ~word_cap:4 in
  let plan = Fault.make ~drop_prob:0.2 ~seed:5 () in
  Fault.reset plan;
  let s1, st1 = Engine.run ~faults:plan g program in
  let c1 = Fault.counts plan in
  Fault.reset plan;
  let s2, st2 = Engine.run ~faults:plan g program in
  Alcotest.(check bool) "same states" true (s1 = s2);
  Alcotest.(check bool) "same stats" true (st1 = st2);
  Alcotest.(check bool) "same counters" true (c1 = Fault.counts plan);
  (* Without a reset the run counter advances and the schedule moves. *)
  let _, st3 = Engine.run ~faults:plan g program in
  Alcotest.(check bool) "later runs decorrelated" true
    (st3.dropped_messages <> st1.dropped_messages
    || st3.rounds <> st1.rounds || st1.dropped_messages > 0)

let test_ambient_faults () =
  let g = Gen.path 8 in
  let plan =
    Fault.make
      ~link_failures:[ { Fault.edge = 3; from_round = 0; until_round = None } ]
      ~seed:6 ()
  in
  let got, stats =
    Engine.with_faults plan (fun () -> Broadcast.flood g ~root:0 ~value:1)
  in
  Alcotest.(check bool) "ambient plan applied" true
    (stats.dropped_messages > 0 && got.(7) = None);
  (* Restored afterwards. *)
  let got, stats = Broadcast.flood g ~root:0 ~value:1 in
  Alcotest.(check bool) "ambient plan restored" true
    (stats.dropped_messages = 0 && got.(7) = Some 1)

let test_monitor_bfs_and_forest () =
  let rng = Random.State.make [| 7; 7 |] in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng ~n:20 ~p:0.15 ()) in
  let clean = Fault.make ~seed:0 () in
  let dist, _ = Bfs.layers g ~root:0 in
  let r = Monitor.bfs g clean ~root:0 ~dist in
  Alcotest.(check bool) "clean BFS correct" true (r.verdict = Monitor.Correct);
  dist.(Graph.n g - 1) <- dist.(Graph.n g - 1) + 1;
  let r = Monitor.bfs g clean ~root:0 ~dist in
  Alcotest.(check bool) "corrupted BFS wrong" true (r.verdict = Monitor.Wrong);
  let mst = Ln_graph.Mst_seq.kruskal g in
  let r = Monitor.spanning_forest g clean ~edges:mst in
  Alcotest.(check bool) "MST spans" true (r.verdict = Monitor.Correct);
  let r = Monitor.spanning_forest g clean ~edges:(List.tl mst) in
  Alcotest.(check bool) "broken forest wrong" true (r.verdict = Monitor.Wrong)

let test_pp_stats_outcome () =
  let g = Gen.path 4 in
  let _, stats = Broadcast.flood g ~root:0 ~value:1 in
  let s = Format.asprintf "%a" Engine.pp_stats stats in
  Alcotest.(check bool) "outcome printed" true (contains s "outcome=converged");
  let plan = Fault.make ~crashes:[ (3, 0) ] ~seed:1 () in
  let _, stats = Broadcast.flood ~faults:plan g ~root:0 ~value:1 in
  let s = Format.asprintf "%a" Engine.pp_stats stats in
  Alcotest.(check bool) "fault counters printed" true (contains s "dropped=")

let test_ledger_notes () =
  let l = Ledger.create () in
  Ledger.note l ~label:"seed" "42";
  let sub = Ledger.create () in
  Ledger.note sub ~label:"fault-plan" "seed=7 drop=0.2";
  Ledger.merge l ~prefix:"bfs" sub;
  Alcotest.(check bool) "notes propagate" true
    (Ledger.notes l = [ ("seed", "42"); ("bfs/fault-plan", "seed=7 drop=0.2") ])

let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xfa417 |]) t

let () =
  Alcotest.run "ln_fault"
    [
      ( "differential",
        [
          qcheck prop_differential_under_faults;
          qcheck prop_reliable_bfs_exact_layers;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "reliable: fault-free overhead" `Quick
            test_reliable_fault_free_overhead;
          Alcotest.test_case "crash-stop" `Quick test_crash_stop;
          Alcotest.test_case "permanent link failure" `Quick
            test_permanent_link_failure;
          Alcotest.test_case "transient window taxonomy" `Quick
            test_transient_link_failure_taxonomy;
          Alcotest.test_case "make: validation messages" `Quick
            test_make_validation;
          Alcotest.test_case "crash-recovery window" `Quick
            test_crash_recovery;
          Alcotest.test_case "retry exhaustion surfaces" `Quick
            test_retry_exhaustion;
          Alcotest.test_case "recovery differential (3 backends)" `Quick
            test_recovery_differential_all_backends;
          Alcotest.test_case "plans replay" `Quick test_plan_replayable;
          Alcotest.test_case "ambient with_faults" `Quick test_ambient_faults;
          Alcotest.test_case "monitor: bfs + forest" `Quick
            test_monitor_bfs_and_forest;
          Alcotest.test_case "pp_stats outcome" `Quick test_pp_stats_outcome;
          Alcotest.test_case "ledger notes" `Quick test_ledger_notes;
        ] );
    ]
