(* Tests for Section 7 (doubling spanners) and Section 8 (the MST
   weight estimator built on the net hierarchy). *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Stats = Ln_graph.Stats
module Metric = Ln_graph.Metric
module Mst_seq = Ln_graph.Mst_seq
module Ledger = Ln_congest.Ledger
module Bfs = Ln_prim.Bfs
module Doubling_spanner = Ln_doubling.Doubling_spanner
module Mst_weight = Ln_estimate.Mst_weight

let check = Alcotest.(check bool)

let geometric ~seed ~n ~radius =
  let rng = Random.State.make [| seed; 37 |] in
  fst (Gen.random_geometric rng ~n ~radius ())

let test_doubling_stretch () =
  let g = geometric ~seed:1 ~n:60 ~radius:0.25 in
  let rng = Random.State.make [| 9 |] in
  let sp = Doubling_spanner.build ~rng g ~epsilon:0.5 in
  check "stretch within bound" true
    (Stats.max_edge_stretch g sp.Doubling_spanner.edges
    <= sp.Doubling_spanner.stretch_bound +. 1e-9);
  check "spans" true
    (let sub, _ = Graph.subgraph g sp.Doubling_spanner.edges in
     Graph.is_connected sub)

let prop_doubling_stretch =
  QCheck2.Test.make ~name:"doubling spanner stretch 1+O(eps)" ~count:6
    QCheck2.Gen.(pair (int_range 20 50) (int_range 0 1000))
    (fun (n, seed) ->
      let g = geometric ~seed ~n ~radius:0.3 in
      let rng = Random.State.make [| seed; 77 |] in
      let sp = Doubling_spanner.build ~rng g ~epsilon:0.4 in
      Stats.max_edge_stretch g sp.Doubling_spanner.edges
      <= sp.Doubling_spanner.stretch_bound +. 1e-9)

let test_doubling_lightness_scaling () =
  (* Lightness should be far below the trivial bound (all edges) and
     within the eps^{-O(ddim)} log n envelope for ddim ~ 2. *)
  let g = geometric ~seed:3 ~n:80 ~radius:0.3 in
  let rng = Random.State.make [| 5 |] in
  let sp = Doubling_spanner.build ~rng g ~epsilon:0.5 in
  let lightness = Stats.lightness g sp.Doubling_spanner.edges in
  let eps = 0.5 in
  let envelope = ((1.0 /. eps) ** 4.0) *. Float.log 80.0 in
  check "lightness envelope" true (lightness <= envelope);
  check "packing: tables bounded" true (sp.Doubling_spanner.max_table <= 100)

let test_doubling_on_low_dim_vs_dense () =
  (* The generated geometric graph should have a small estimated
     doubling dimension, making the construction applicable. *)
  let g = geometric ~seed:11 ~n:70 ~radius:0.35 in
  let rng = Random.State.make [| 21 |] in
  let ddim = Metric.estimate_ddim rng g in
  check "geometric graph has low ddim" true (ddim <= 6.0)

(* ------------------------------------------------------------------ *)
(* Section 8 estimator                                                 *)

let prop_estimator_bounds =
  QCheck2.Test.make ~name:"psi within [L, O(alpha log) L]" ~count:8
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 51 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.25 () in
      let bfs, _ = Bfs.tree g ~root:0 in
      let est = Mst_weight.estimate ~rng g ~bfs ~alpha:2.0 in
      let l = Mst_seq.weight g in
      est.Mst_weight.psi >= l *. (1.0 -. 1e-9)
      && est.Mst_weight.psi <= est.Mst_weight.upper_factor *. l)

let test_estimator_levels () =
  let rng = Random.State.make [| 15 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.15 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  let est = Mst_weight.estimate ~rng g ~bfs ~alpha:1.5 in
  (* First level must be all of V, last a single point. *)
  (match est.Mst_weight.levels with
  | (_, first) :: _ -> check "first level = V" true (first = 60)
  | [] -> Alcotest.fail "no levels");
  let _, last = List.nth est.Mst_weight.levels (List.length est.Mst_weight.levels - 1) in
  check "last level singleton" true (last = 1);
  (* Net sizes decrease (weakly) up the hierarchy. *)
  let sizes = List.map snd est.Mst_weight.levels in
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b && mono rest
    | _ -> true
  in
  check "sizes weakly decrease" true (mono sizes)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed3 |]) t

let () =
  Alcotest.run "ln_doubling+estimate"
    [
      ( "doubling",
        [
          Alcotest.test_case "stretch" `Quick test_doubling_stretch;
          qcheck prop_doubling_stretch;
          Alcotest.test_case "lightness" `Quick test_doubling_lightness_scaling;
          Alcotest.test_case "low ddim input" `Quick test_doubling_on_low_dim_vs_dense;
        ] );
      ( "estimate",
        [
          qcheck prop_estimator_bounds;
          Alcotest.test_case "levels" `Quick test_estimator_levels;
        ] );
    ]
