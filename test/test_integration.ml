(* Integration tests across the whole public API: paper invariants
   that span modules, the Quick one-call layer, determinism, and the
   bucket-clustering invariants of Section 5. *)

open Lightnet

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Section 5 invariant: every cluster has weak diameter <= eps * w_i
   with respect to the MST metric.                                     *)

let prop_cluster_weak_diameter =
  QCheck2.Test.make ~name:"bucket clusters have weak diameter <= eps*w_i" ~count:10
    QCheck2.Gen.(pair (int_range 5 50) (int_range 0 3000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 91 |] in
      let g = Gen.heavy_tailed rng ~n ~p:0.25 ~range:1e4 () in
      let dist = Dist_mst.run g in
      let tour = Euler_dist.run dist ~rt:0 in
      let tt = Tour_table.make g tour in
      let l_total = tour.Euler_dist.total in
      let epsilon = 0.4 and k = 2 in
      let mst_tree = dist |> fun d -> Tree.of_edges g ~root:0 d.Dist_mst.mst_edges in
      let nbuckets = Buckets.bucket_count ~epsilon ~n in
      let ok = ref true in
      for i = 0 to min nbuckets 12 - 1 do
        let wi = Buckets.bucket_width ~l_total ~epsilon i in
        let cluster_of =
          match Buckets.assign g ~tt ~l_total ~epsilon ~k ~i with
          | Buckets.Global { cluster_of; _ } -> cluster_of
          | Buckets.Interval { cluster_of; _ } -> cluster_of
        in
        (* Sampled pairs within the same cluster. *)
        for v = 0 to n - 1 do
          let u = (v * 7) mod n in
          if u <> v && cluster_of.(u) = cluster_of.(v) then
            if Tree.dist mst_tree u v > (epsilon *. wi) +. 1e-6 then ok := false
        done
      done;
      !ok)

(* Every edge is classified into exactly one bucket consistent with its
   weight. *)
let prop_bucket_classification =
  QCheck2.Test.make ~name:"bucket classification partitions by weight" ~count:20
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 3000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 92 |] in
      let g = Gen.heavy_tailed rng ~n ~p:0.2 ~range:1e5 () in
      let l_total = 2.0 *. Mst_seq.weight g in
      let epsilon = 0.3 in
      Graph.fold_edges g
        (fun _ e acc ->
          acc
          &&
          match Buckets.classify ~l_total ~epsilon ~n e.Graph.w with
          | `Light -> e.Graph.w <= l_total /. float_of_int n
          | `Heavy -> e.Graph.w > l_total
          | `Bucket i ->
            i >= 0
            && e.Graph.w <= (l_total /. ((1.0 +. epsilon) ** float_of_int i)) +. 1e-9)
        true)

(* ------------------------------------------------------------------ *)
(* Quick API                                                           *)

let test_quick_api () =
  let rng = Random.State.make [| 17 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.15 () in
  let sp, q1 = Quick.light_spanner g ~k:2 in
  check "spanner stretch within bound" true
    (q1.Quick.stretch <= sp.Light_spanner.stretch_bound +. 1e-9);
  check "spanner rounds recorded" true (q1.Quick.rounds_native > 0);
  let t, q2 = Quick.slt g ~rt:5 in
  check "slt stretch within bound" true (q2.Quick.stretch <= t.Slt.stretch_bound +. 1e-9);
  check "slt lightness within bound" true
    (q2.Quick.lightness <= t.Slt.lightness_bound +. 1e-9);
  let net = Quick.net g ~radius:40.0 in
  check "net verifies" true
    (Net.is_net g ~covering:net.Net.covering_bound ~separation:net.Net.separation_bound
       net.Net.points)

let test_quick_pp () =
  let rng = Random.State.make [| 18 |] in
  let g = Gen.erdos_renyi rng ~n:30 ~p:0.3 () in
  let _, q = Quick.light_spanner g ~k:2 in
  let s = Format.asprintf "%a" Quick.pp_quality q in
  check "pp mentions stretch" true
    (String.length s > 0
    && String.split_on_char ' ' s |> List.exists (fun w -> String.length w >= 7 && String.sub w 0 7 = "stretch"))

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same results.                               *)

let test_determinism () =
  let g =
    Gen.erdos_renyi (Random.State.make [| 5; 5 |]) ~n:50 ~p:0.2 ()
  in
  let run () =
    let rng = Random.State.make [| 99 |] in
    let sp = Light_spanner.build ~rng g ~k:2 ~epsilon:0.3 in
    sp.Light_spanner.edges
  in
  check "same seed, same spanner" true (run () = run ());
  let run_slt () =
    let rng = Random.State.make [| 98 |] in
    (Slt.build ~rng g ~rt:0 ~epsilon:0.5).Slt.edges
  in
  check "same seed, same slt" true (run_slt () = run_slt ())

(* ------------------------------------------------------------------ *)
(* Cross-construction coherence on a single network.                   *)

let test_everything_on_one_graph () =
  let rng = Random.State.make [| 202 |] in
  let g, _ = Gen.random_geometric rng ~n:70 ~radius:0.3 () in
  (* MST agreement between every layer. *)
  let dist = Dist_mst.run g in
  check "distributed = sequential MST" true (dist.Dist_mst.mst_edges = Mst_seq.kruskal g);
  (* The SLT's H contains the MST. *)
  let slt = Slt.build ~rng g ~rt:3 ~epsilon:0.5 in
  let h = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace h e ()) slt.Slt.h_edges;
  check "H contains the MST" true (List.for_all (Hashtbl.mem h) dist.Dist_mst.mst_edges);
  check "SLT edges inside H" true (List.for_all (Hashtbl.mem h) slt.Slt.edges);
  (* The light spanner contains the MST (lightness accounting needs it). *)
  let sp = Light_spanner.build ~rng g ~k:2 ~epsilon:0.3 in
  let s = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace s e ()) sp.Light_spanner.edges;
  check "spanner contains the MST" true
    (List.for_all (Hashtbl.mem s) dist.Dist_mst.mst_edges);
  (* A doubling spanner on the same graph also respects its bound. *)
  let dsp = Doubling_spanner.build ~rng g ~epsilon:0.5 in
  check "doubling stretch" true
    (Stats.max_edge_stretch g dsp.Doubling_spanner.edges
    <= dsp.Doubling_spanner.stretch_bound +. 1e-9)

(* SLT and spanner survive extreme epsilon values. *)
let test_parameter_extremes () =
  let rng = Random.State.make [| 301 |] in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.3 () in
  let t = Slt.build ~rng g ~rt:0 ~epsilon:1.0 in
  check "slt eps=1 ok" true (Tree.covers_all t.Slt.tree);
  let t = Slt.build ~rng g ~rt:0 ~epsilon:0.01 in
  check "slt eps=0.01 ok (≈SPT)" true
    (Stats.tree_root_stretch g t.Slt.tree ~root:0 <= 1.52);
  check "rejects eps=0" true
    (try ignore (Slt.build ~rng g ~rt:0 ~epsilon:0.0); false
     with Invalid_argument _ -> true);
  check "rejects k=0" true
    (try ignore (Light_spanner.build ~rng g ~k:0 ~epsilon:0.5); false
     with Invalid_argument _ -> true);
  check "rejects eps>=1 spanner" true
    (try ignore (Light_spanner.build ~rng g ~k:2 ~epsilon:1.0); false
     with Invalid_argument _ -> true)

(* Tiny graphs through every construction. *)
let test_singleton_graph () =
  let g1 = Graph.create 1 [] in
  let rng = Random.State.make [| 6 |] in
  let d = Dist_mst.run g1 in
  check "n=1 mst empty" true (d.Dist_mst.mst_edges = []);
  let tour = Euler_dist.run d ~rt:0 in
  check "n=1 tour single appearance" true
    (tour.Euler_dist.appearances.(0) = [ (0, 0.0) ]);
  let t = Slt.build ~rng g1 ~rt:0 ~epsilon:0.5 in
  check "n=1 slt" true (t.Slt.edges = []);
  let bfs, _ = Bfs.tree g1 ~root:0 in
  let net = Net.build ~rng g1 ~bfs ~radius:1.0 ~delta:0.5 in
  check "n=1 net" true (net.Net.points = [ 0 ])

let test_tiny_graphs () =
  let g2 = Graph.create 2 [ { Graph.u = 0; v = 1; w = 3.0 } ] in
  let rng = Random.State.make [| 7 |] in
  let d = Dist_mst.run g2 in
  check "n=2 mst" true (d.Dist_mst.mst_edges = [ 0 ]);
  let t = Slt.build ~rng g2 ~rt:0 ~epsilon:0.5 in
  check "n=2 slt" true (Tree.covers_all t.Slt.tree);
  let sp = Light_spanner.build ~rng g2 ~k:2 ~epsilon:0.3 in
  check "n=2 spanner" true (List.length sp.Light_spanner.edges >= 1);
  let bfs, _ = Bfs.tree g2 ~root:0 in
  let net = Net.build ~rng g2 ~bfs ~radius:1.0 ~delta:0.0 in
  check "n=2 net all points" true (List.length net.Net.points = 2);
  let dd = Doubling_spanner.build ~rng g2 ~epsilon:0.5 in
  check "n=2 doubling" true (dd.Doubling_spanner.edges = [ 0 ])

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed6 |]) t

let () =
  Alcotest.run "integration"
    [
      ( "section5-invariants",
        [ qcheck prop_cluster_weak_diameter; qcheck prop_bucket_classification ] );
      ( "quick-api",
        [
          Alcotest.test_case "quick" `Quick test_quick_api;
          Alcotest.test_case "pp" `Quick test_quick_pp;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "one graph, all objects" `Quick test_everything_on_one_graph;
          Alcotest.test_case "parameter extremes" `Quick test_parameter_extremes;
          Alcotest.test_case "singleton graph" `Quick test_singleton_graph;
          Alcotest.test_case "tiny graphs" `Quick test_tiny_graphs;
        ] );
    ]
