(* Tests for the sequential graph substrate: structures, shortest
   paths, MSTs, trees and Euler tours. *)

module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Mst_seq = Ln_graph.Mst_seq
module Tree = Ln_graph.Tree
module Euler = Ln_graph.Euler
module Gen = Ln_graph.Gen
module Stats = Ln_graph.Stats
module Union_find = Ln_graph.Union_find
module Pqueue = Ln_graph.Pqueue
module Metric = Ln_graph.Metric
module Graph_io = Ln_graph.Graph_io

let rng () = Random.State.make [| 0x5ee0; 42 |]

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a)

let check_close msg a b =
  if not (close a b) then Alcotest.failf "%s: %.12g <> %.12g" msg a b

(* A small diamond graph used in several tests:
     0 --1-- 1
     |       |
     4       1
     |       |
     2 --1-- 3       plus a heavy shortcut 0--3 of weight 10. *)
let diamond () =
  Graph.create 4
    [
      { Graph.u = 0; v = 1; w = 1.0 };
      { Graph.u = 1; v = 3; w = 1.0 };
      { Graph.u = 0; v = 2; w = 4.0 };
      { Graph.u = 2; v = 3; w = 1.0 };
      { Graph.u = 0; v = 3; w = 10.0 };
    ]

(* ------------------------------------------------------------------ *)
(* Union-find and priority queue laws                                  *)

let test_union_find () =
  let uf = Union_find.create 10 in
  check_int "initial sets" 10 (Union_find.count uf);
  check "union works" true (Union_find.union uf 0 1);
  check "redundant union" false (Union_find.union uf 1 0);
  check "same" true (Union_find.same uf 0 1);
  check "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  check_int "sets after merges" 7 (Union_find.count uf);
  check_int "size of merged" 4 (Union_find.size uf 2)

let test_pqueue_sorts () =
  let rng = rng () in
  let q = Pqueue.create () in
  let xs = List.init 500 (fun _ -> Random.State.float rng 1000.0) in
  List.iter (fun x -> Pqueue.push q x ()) xs;
  check_int "length" 500 (Pqueue.length q);
  let popped = ref [] in
  while not (Pqueue.is_empty q) do
    popped := fst (Pqueue.pop_min q) :: !popped
  done;
  let sorted = List.sort Float.compare xs in
  check "pops in order" true (List.rev !popped = sorted)

(* ------------------------------------------------------------------ *)
(* Graph structure                                                     *)

let test_graph_basics () =
  let g = diamond () in
  check_int "n" 4 (Graph.n g);
  check_int "m" 5 (Graph.m g);
  check_int "degree 0" 3 (Graph.degree g 0);
  check "find edge" true (Graph.find_edge g 3 1 <> None);
  check "no self edge" true (Graph.find_edge g 2 2 = None);
  check "connected" true (Graph.is_connected g);
  check_close "total weight" 17.0 (Graph.total_weight g)

let test_graph_collapses_parallel () =
  let g =
    Graph.create 3
      [
        { Graph.u = 0; v = 1; w = 5.0 };
        { Graph.u = 1; v = 0; w = 2.0 };
        { Graph.u = 1; v = 2; w = 1.0 };
        { Graph.u = 2; v = 2; w = 9.0 };
      ]
  in
  check_int "parallel collapsed, loop dropped" 2 (Graph.m g);
  match Graph.find_edge g 0 1 with
  | Some id -> check_close "kept the lighter parallel edge" 2.0 (Graph.weight g id)
  | None -> Alcotest.fail "edge 0-1 missing"

let test_graph_rejects_bad_input () =
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Graph.create: endpoint out of range")
    (fun () -> ignore (Graph.create 2 [ { Graph.u = 0; v = 5; w = 1.0 } ]));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.create: weight must be positive and finite") (fun () ->
      ignore (Graph.create 2 [ { Graph.u = 0; v = 1; w = 0.0 } ]))

let test_components () =
  let g =
    Graph.create 5 [ { Graph.u = 0; v = 1; w = 1.0 }; { Graph.u = 2; v = 3; w = 1.0 } ]
  in
  let c, comp = Graph.components g in
  check_int "three components" 3 c;
  check "0 and 1 together" true (comp.(0) = comp.(1));
  check "0 and 2 apart" true (comp.(0) <> comp.(2));
  check "connected is false" true (not (Graph.is_connected g))

let test_hop_diameter () =
  check_int "path hop diameter" 9 (Graph.hop_diameter (Gen.path 10));
  check_int "star hop diameter" 2 (Graph.hop_diameter (Gen.star 10))

(* ------------------------------------------------------------------ *)
(* Shortest paths                                                      *)

let test_dijkstra_diamond () =
  let g = diamond () in
  let r = Paths.dijkstra g 0 in
  check_close "d(0,3)" 2.0 r.dist.(3);
  check_close "d(0,2)" 3.0 r.dist.(2);
  match Paths.path_to r g 2 with
  | Some p -> check "path 0-1-3-2" true (p = [ 0; 1; 3; 2 ])
  | None -> Alcotest.fail "no path"

let test_dijkstra_bound () =
  let g = diamond () in
  let r = Paths.dijkstra ~bound:1.5 g 0 in
  check_close "within bound" 1.0 r.dist.(1);
  check "beyond bound" true (r.dist.(2) = infinity)

let test_dijkstra_multi () =
  let g = Gen.path 5 in
  let r, src = Paths.dijkstra_multi g [ 0; 4 ] in
  check_close "middle" 2.0 r.dist.(2);
  check_int "near source of 1" 0 src.(1);
  check_int "near source of 3" 4 src.(3)

(* ------------------------------------------------------------------ *)
(* MST                                                                 *)

let test_mst_diamond () =
  let g = diamond () in
  let mst = Mst_seq.kruskal g in
  check "spanning" true (Mst_seq.is_spanning_tree g mst);
  check_close "weight" 3.0 (Graph.weight_of_edges g mst)

let prop_kruskal_equals_prim =
  QCheck2.Test.make ~name:"kruskal = prim on random graphs" ~count:40
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.3 () in
      Mst_seq.kruskal g = Mst_seq.prim g)

let prop_mst_weight_minimal =
  QCheck2.Test.make ~name:"mst weight <= any spanning tree (random trees)" ~count:30
    QCheck2.Gen.(pair (int_range 3 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 7 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.5 () in
      let w_mst = Mst_seq.weight g in
      (* Random spanning tree via randomized Kruskal on shuffled edges. *)
      let ids = Array.init (Graph.m g) (fun i -> i) in
      for i = Array.length ids - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = ids.(i) in
        ids.(i) <- ids.(j);
        ids.(j) <- t
      done;
      let uf = Union_find.create n in
      let w = ref 0.0 in
      Array.iter
        (fun id ->
          let u, v = Graph.endpoints g id in
          if Union_find.union uf u v then w := !w +. Graph.weight g id)
        ids;
      w_mst <= !w +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Trees and Euler tours                                               *)

let test_tree_structure () =
  let g = diamond () in
  let mst = Mst_seq.kruskal g in
  let t = Tree.of_edges g ~root:0 mst in
  check "covers all" true (Tree.covers_all t);
  check_int "root depth" 0 (Tree.depth_hops t 0);
  check_close "dist to 2 along tree" 3.0 (Tree.dist_to_root t 2);
  check_close "tree dist 2-1" 2.0 (Tree.dist t 2 1);
  check "preorder starts at root" true (List.hd (Tree.preorder t) = 0);
  check_int "preorder covers" 4 (List.length (Tree.preorder t))

let test_tree_rejects_cycle () =
  let g = Gen.cycle 4 in
  let all = List.init (Graph.m g) (fun i -> i) in
  Alcotest.check_raises "cycle" (Invalid_argument "Tree.of_edges: cycle in edge set")
    (fun () -> ignore (Tree.of_edges g ~root:0 all))

let test_euler_paper_figure () =
  (* The figure in Section 3: rt=a with children b (w=2) and c..., we
     reproduce a small version: star with two leaves, weights 2 and 3. *)
  let g =
    Graph.create 3 [ { Graph.u = 0; v = 1; w = 2.0 }; { Graph.u = 0; v = 2; w = 3.0 } ]
  in
  let t = Tree.of_edges g ~root:0 [ 0; 1 ] in
  let e = Euler.of_tree t in
  check_int "length 2n-1" 5 (Euler.length e);
  check "sequence" true (Array.to_list e.Euler.seq = [ 0; 1; 0; 2; 0 ]);
  check "times" true
    (List.for_all2 close
       (Array.to_list e.Euler.time)
       [ 0.0; 2.0; 4.0; 7.0; 10.0 ]);
  check_close "total = 2 w(T)" 10.0 e.Euler.total

let prop_euler_invariants =
  QCheck2.Test.make ~name:"euler tour invariants on random MSTs" ~count:40
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 13 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.2 () in
      let t = Tree.of_edges g ~root:0 (Mst_seq.kruskal g) in
      let e = Euler.of_tree t in
      match Euler.check t e with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Generators and stats                                                *)

let test_generators_connected () =
  let rng = rng () in
  let graphs =
    [
      Gen.erdos_renyi rng ~n:40 ~p:0.05 ();
      Gen.heavy_tailed rng ~n:30 ~p:0.1 ();
      fst (Gen.random_geometric rng ~n:50 ~radius:0.15 ());
      Gen.grid rng ~rows:5 ~cols:7 ();
      Gen.clustered rng ~clusters:4 ~size:8 ~p_in:0.6 ~p_out:0.02 ();
      Gen.caterpillar rng ~spine:10 ~legs:12 ();
      Gen.complete rng ~n:12 ();
    ]
  in
  List.iteri
    (fun i g ->
      check (Printf.sprintf "generator %d connected" i) true (Graph.is_connected g))
    graphs

let test_stats_identity () =
  let g = diamond () in
  let mst = Mst_seq.kruskal g in
  check_close "mst lightness is 1" 1.0 (Stats.lightness g mst);
  let all = List.init (Graph.m g) (fun i -> i) in
  check_close "full graph stretch 1" 1.0 (Stats.max_edge_stretch g all);
  (* MST-only spanner: edge 0-3 (w=10) is served by path of weight 2:
     stretch < 1 for that edge; worst stretch is edge 0-2 (w=4) served
     by 0-1-3-2 of weight 3 => 0.75; all <= 1 here except none. The
     max stretch over edges is achieved by an edge whose alternative is
     longer: all graph edges vs MST paths: 0-2: 3/4, 0-3: 2/10 -> max
     stretch is 1.0 for tree edges themselves. *)
  check_close "mst stretch on diamond" 1.0 (Stats.max_edge_stretch g mst)

(* Degenerate inputs must yield pinned, non-nan results: zero-weight
   spanning-forest baselines hit 0/0 in lightness, and vertices
   unreachable in the host itself hit inf/inf in root stretch. The
   contract: perfectly-light/perfectly-served cases give 1.0, honest
   failures give [infinity], and nan never escapes. *)
let test_stats_degenerate () =
  let no_nan msg x =
    if Float.is_nan x then Alcotest.failf "%s: got nan" msg
  in
  let check_inf msg x =
    if x <> infinity then Alcotest.failf "%s: %.12g <> inf" msg x
  in
  (* Edgeless graph: forest weight 0, no edges to stretch. Lightness
     used to raise (MST of a disconnected graph); now pinned at 1.0. *)
  let empty = Graph.create 3 [] in
  check_close "edgeless lightness" 1.0 (Stats.lightness empty []);
  check_close "edgeless stretch" 1.0 (Stats.max_edge_stretch empty []);
  check_close "edgeless sampled stretch" 1.0
    (Stats.sampled_edge_stretch (rng ()) empty [] ~samples:8);
  check_close "edgeless root stretch" 1.0 (Stats.root_stretch empty [] ~root:0);
  (* Single vertex: connected, MST weight 0 — lightness was 0/0. *)
  let one = Graph.create 1 [] in
  check_close "single-vertex lightness" 1.0 (Stats.lightness one []);
  (* Disconnected host: vertices 2 and 3 are unreachable from the root
     in [g] itself, so they carry no defined stretch and must be
     skipped rather than poisoning the max with inf/inf = nan; vertex 1
     is reachable and served exactly. *)
  let disc =
    Graph.create 4
      [ { Graph.u = 0; v = 1; w = 1.0 }; { Graph.u = 2; v = 3; w = 1.0 } ]
  in
  check_close "disconnected root stretch" 1.0
    (Stats.root_stretch disc [ 0 ] ~root:0);
  let t = Tree.of_edges disc ~root:0 [ 0 ] in
  check_close "disconnected tree root stretch" 1.0
    (Stats.tree_root_stretch disc t ~root:0);
  (* Forest baseline on the disconnected host: both edges, weight 2. *)
  check_close "forest lightness on disconnected host" 0.5
    (Stats.lightness disc [ 0 ]);
  (* An empty spanner still fails honestly: edge endpoints are
     disconnected in H, so stretch diverges rather than going nan. *)
  check_inf "empty spanner stretch diverges" (Stats.max_edge_stretch disc []);
  let r = Stats.report (rng ()) empty [] in
  no_nan "report lightness" r.Stats.lightness;
  no_nan "report stretch" r.Stats.stretch

let test_root_stretch () =
  let g = diamond () in
  let mst = Mst_seq.kruskal g in
  (* From root 2: d_G(2,0) = 3 via 2-3-1-0; in MST same path: stretch 1. *)
  check_close "root stretch of mst from 2" 1.0 (Stats.root_stretch g mst ~root:2)

let test_metric_net_props () =
  let g = Gen.path 10 in
  check_close "separation of endpoints" 9.0 (Metric.separation g [ 0; 9 ]);
  check_close "covering radius of {0}" 9.0 (Metric.covering_radius g [ 0 ]);
  check_int "ball size" 5 (List.length (Metric.ball g ~center:2 ~radius:2.0))

(* ------------------------------------------------------------------ *)
(* Additional structure & generator properties                          *)

let test_subgraph_mapping () =
  let g = diamond () in
  let mst = Mst_seq.kruskal g in
  let sub, original = Graph.subgraph g mst in
  check_int "subgraph edges" 3 (Graph.m sub);
  check "ids map back" true
    (List.init (Graph.m sub) original |> List.sort Int.compare = mst);
  check "weights preserved" true
    (List.init (Graph.m sub) (fun i -> Graph.weight sub i = Graph.weight g (original i))
    |> List.for_all Fun.id)

let test_aspect_ratio () =
  let g = diamond () in
  check_close "aspect" 10.0 (Graph.weight_aspect_ratio g);
  check_close "edgeless aspect" 1.0 (Graph.weight_aspect_ratio (Graph.create 3 []))

let prop_compare_edges_total_order =
  QCheck2.Test.make ~name:"compare_edges is a strict total order" ~count:20
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.erdos_renyi rng ~n:20 ~p:0.4 ~w_lo:1.0 ~w_hi:3.0 () in
      let m = Graph.m g in
      let ids = List.init m Fun.id in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let c1 = Graph.compare_edges g a b and c2 = Graph.compare_edges g b a in
              if a = b then c1 = 0 else c1 = -c2 && c1 <> 0)
            ids)
        ids)

let prop_path_to_realizes_distance =
  QCheck2.Test.make ~name:"dijkstra path realizes the distance" ~count:25
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 77 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.2 () in
      let src = seed mod n in
      let sp = Paths.dijkstra g src in
      List.for_all
        (fun v ->
          match Paths.path_to sp g v with
          | None -> false
          | Some path ->
            let rec len = function
              | a :: (b :: _ as rest) ->
                (match Graph.find_edge g a b with
                | Some e -> Graph.weight g e +. len rest
                | None -> infinity)
              | _ -> 0.0
            in
            Float.abs (len path -. sp.Paths.dist.(v)) <= 1e-9 *. (1.0 +. sp.Paths.dist.(v)))
        (List.init n Fun.id))

let prop_all_pairs_symmetric =
  QCheck2.Test.make ~name:"all-pairs distances symmetric & triangle" ~count:10
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed; 3 |] in
      let g = Gen.erdos_renyi rng ~n:15 ~p:0.4 () in
      let d = Paths.all_pairs g in
      let n = Graph.n g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (d.(i).(j) -. d.(j).(i)) > 1e-9 then ok := false;
          for l = 0 to n - 1 do
            if d.(i).(j) > d.(i).(l) +. d.(l).(j) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let test_euler_interval_api () =
  let g = diamond () in
  let t = Tree.of_edges g ~root:0 (Mst_seq.kruskal g) in
  let e = Euler.of_tree t in
  let lo, hi = Euler.interval e 0 in
  check_close "root interval start" 0.0 lo;
  check_close "root interval end = total" e.Euler.total hi;
  check_int "first position of root" 0 (Euler.first_position e 0);
  (* Subtree intervals nest. *)
  let lo1, hi1 = Euler.interval e 1 in
  check "child nests" true (lo <= lo1 && hi1 <= hi);
  check_close "dist along" (Float.abs (e.Euler.time.(2) -. e.Euler.time.(0)))
    (Euler.dist_along e 0 2)

let prop_heavy_tailed_weights_in_range =
  QCheck2.Test.make ~name:"heavy-tailed weights within [1, range]" ~count:10
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = Random.State.make [| seed; 9 |] in
      let g = Gen.heavy_tailed rng ~n:30 ~p:0.3 ~range:1e3 () in
      Graph.fold_edges g (fun _ e acc -> acc && e.Graph.w >= 0.99 && e.Graph.w <= 1001.0) true)

let prop_geometric_weights_are_distances =
  QCheck2.Test.make ~name:"geometric graph weights = euclidean distances" ~count:10
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = Random.State.make [| seed; 10 |] in
      let g, pts = Gen.random_geometric rng ~n:30 ~radius:0.4 () in
      Graph.fold_edges g
        (fun _ e acc ->
          let dx = pts.(e.Graph.u).(0) -. pts.(e.Graph.v).(0) in
          let dy = pts.(e.Graph.u).(1) -. pts.(e.Graph.v).(1) in
          acc && Float.abs (Float.sqrt ((dx *. dx) +. (dy *. dy)) -. e.Graph.w) <= 1e-9)
        true)

(* The Zipf sampler is pinned exactly on a fixed seed: the workload
   generators and benches rely on replayability, so a silent change to
   the CDF or the search would skew every committed number. *)
let test_zipf_pinned () =
  let rng = Random.State.make [| 0x21f; 9 |] in
  let sample = Gen.zipf_sampler rng ~s:1.2 ~n:8 in
  let counts = Array.make 8 0 in
  for _ = 1 to 4000 do
    let r = sample () in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check (array int))
    "pinned zipf histogram (seed 0x21f;9, s=1.2, n=8, 4000 draws)"
    [| 1742; 701; 491; 331; 259; 187; 161; 128 |]
    counts;
  (* And the shape holds: rank frequencies are non-increasing. *)
  for r = 0 to 6 do
    check (Printf.sprintf "count rank %d >= rank %d" r (r + 1)) true
      (counts.(r) >= counts.(r + 1))
  done

let test_zipf_degenerate () =
  (* s = 0 is uniform: every rank reachable, bounds respected. *)
  let rng = Random.State.make [| 3; 3 |] in
  let sample = Gen.zipf_sampler rng ~s:0.0 ~n:5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let r = sample () in
    check "rank in range" true (r >= 0 && r < 5);
    seen.(r) <- true
  done;
  check "uniform regime reaches every rank" true (Array.for_all Fun.id seen);
  check_int "n=1 always rank 0" 0 (Gen.zipf (Random.State.make [| 1 |]) ~s:2.0 ~n:1);
  check "rejects n=0" true
    (match Gen.zipf rng ~s:1.0 ~n:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_graph_io_roundtrip =
  QCheck2.Test.make ~name:"graph io roundtrip" ~count:15
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 100 |] in
      let g = Gen.heavy_tailed rng ~n ~p:0.25 ~range:1e4 () in
      let path = Filename.temp_file "lightnet" ".dimacs" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Graph_io.save_graph path g;
          let g2 = Graph_io.load_graph path in
          Graph.n g = Graph.n g2
          && Graph.m g = Graph.m g2
          && List.init (Graph.m g) (fun i ->
                 Graph.endpoints g i = Graph.endpoints g2 i
                 && Float.abs (Graph.weight g i -. Graph.weight g2 i)
                    <= 1e-12 *. Graph.weight g i)
             |> List.for_all Fun.id))

let test_edge_set_io () =
  let path = Filename.temp_file "lightnet" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save_edge_set path [ 4; 1; 9; 0 ];
      check "edge set roundtrip" true (Graph_io.load_edge_set path = [ 4; 1; 9; 0 ]))

(* ------------------------------------------------------------------ *)
(* CSR substrate: the flat representation must be observation-
   equivalent to the legacy tuple-array adjacency, and the streaming
   constructor equivalent to [create]. *)

(* Random raw edge stream with self-loops, parallel edges and
   duplicate weights — everything the builder has to normalize. *)
let raw_edges rng n k =
  List.init k (fun _ ->
      {
        Graph.u = Random.State.int rng n;
        v = Random.State.int rng n;
        w = float_of_int (1 + Random.State.int rng 20) /. 2.0;
      })

let prop_csr_matches_legacy =
  QCheck2.Test.make ~name:"csr adjacency = legacy tuple adjacency" ~count:60
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 0xc5a |] in
      let edges = raw_edges rng n (3 * n) in
      let g = Graph.create n edges in
      (* Independent model: lightest weight per normalized endpoint
         pair, self-loops dropped. *)
      let model = Hashtbl.create 64 in
      List.iter
        (fun e ->
          if e.Graph.u <> e.Graph.v then begin
            let k = (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v) in
            match Hashtbl.find_opt model k with
            | Some w when w <= e.Graph.w -> ()
            | _ -> Hashtbl.replace model k e.Graph.w
          end)
        edges;
      Graph.m g = Hashtbl.length model
      && List.for_all
           (fun v ->
             let legacy = Graph.neighbors g v in
             let via_fold =
               List.rev
                 (Graph.fold_neighbors g v (fun acc id u -> (id, u) :: acc) [])
             in
             let via_iter = ref [] in
             Graph.iter_neighbors g v (fun id u -> via_iter := (id, u) :: !via_iter);
             let vw = Graph.view g in
             let via_view =
               List.init
                 (vw.Graph.off.(v + 1) - vw.Graph.off.(v))
                 (fun i ->
                   let p = vw.Graph.off.(v) + i in
                   (vw.Graph.adj_eid.(p), vw.Graph.adj_dst.(p)))
             in
             Array.to_list legacy = via_fold
             && List.rev !via_iter = via_fold
             && via_view = via_fold
             && List.for_all
                  (fun (id, _) -> vw.Graph.ew.(id) = Graph.weight g id)
                  via_view
             && Graph.degree g v = Array.length legacy
             (* ascending edge ids, the documented iteration order *)
             && List.sort Int.compare (List.map fst via_fold) = List.map fst via_fold
             && List.for_all
                  (fun (id, u) ->
                    let a, b = Graph.endpoints g id in
                    a < b
                    && Graph.other_end g id v = u
                    && Graph.other_end g id u = v
                    && Hashtbl.find_opt model (min u v, max u v)
                       = Some (Graph.weight g id))
                  via_fold)
           (List.init n Fun.id))

let prop_of_edge_arrays_equals_create =
  QCheck2.Test.make ~name:"of_edge_arrays = create on the same stream" ~count:60
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 0x0ea |] in
      let edges = raw_edges rng n (4 * n) in
      let g1 = Graph.create n edges in
      let k = List.length edges in
      let us = Array.make k 0 and vs = Array.make k 0 and ws = Array.make k 0.0 in
      List.iteri
        (fun i e ->
          us.(i) <- e.Graph.u;
          vs.(i) <- e.Graph.v;
          ws.(i) <- e.Graph.w)
        edges;
      let g2 = Graph.of_edge_arrays ~n us vs ws in
      Graph.n g1 = Graph.n g2
      && Graph.m g1 = Graph.m g2
      && List.for_all
           (fun id ->
             Graph.endpoints g1 id = Graph.endpoints g2 id
             && Graph.weight g1 id = Graph.weight g2 id)
           (List.init (Graph.m g1) Fun.id))

let test_of_edge_arrays_validates () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.of_edge_arrays: endpoint out of range") (fun () ->
      ignore (Graph.of_edge_arrays ~n:2 [| 0 |] [| 5 |] [| 1.0 |]));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.of_edge_arrays: weight must be positive and finite")
    (fun () -> ignore (Graph.of_edge_arrays ~n:2 [| 0 |] [| 1 |] [| nan |]));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Graph.of_edge_arrays: negative n") (fun () ->
      ignore (Graph.of_edge_arrays ~n:(-1) [||] [||] [||]));
  (* len restricts to a prefix *)
  let g = Graph.of_edge_arrays ~n:3 ~len:1 [| 0; 1 |] [| 1; 2 |] [| 1.0; 1.0 |] in
  check_int "len prefix" 1 (Graph.m g)

(* ------------------------------------------------------------------ *)
(* RMAT generator: replayable across refactors. The exact edge set for
   a fixed seed is pinned — m, the max degree, and an FNV-1a digest of
   the first 64 edges — so any change to the recursion, the noise
   model or the builder's dedup shows up here, not as silent drift in
   committed BENCH numbers. *)

let fnv1a_64 ints =
  let prime = 0x100000001b3L in
  List.fold_left
    (fun h x -> Int64.mul (Int64.logxor h (Int64.of_int x)) prime)
    0xcbf29ce484222325L ints

let rmat_test_graph () =
  Gen.rmat (Random.State.make [| 0xf00d; 20 |]) ~scale:10 ~edge_factor:8 ()

let test_rmat_pinned () =
  let g = rmat_test_graph () in
  check_int "n" 1024 (Graph.n g);
  check_int "pinned m" 6058 (Graph.m g);
  let maxdeg = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > !maxdeg then maxdeg := Graph.degree g v
  done;
  check_int "pinned max degree" 354 !maxdeg;
  let first = ref [] in
  for id = min 63 (Graph.m g - 1) downto 0 do
    let u, v = Graph.endpoints g id in
    let wbits = Int64.to_int (Int64.bits_of_float (Graph.weight g id)) in
    first := u :: v :: wbits :: !first
  done;
  let digest = fnv1a_64 !first in
  Alcotest.(check string)
    "pinned fnv digest of first 64 edges" "13b4ed73c487f455"
    (Printf.sprintf "%016Lx" digest)

let test_rmat_structure () =
  let g = rmat_test_graph () in
  (* Simple-graph invariants survive the builder. *)
  Graph.iter_edges g (fun _ e ->
      check "no self loop" true (e.Graph.u <> e.Graph.v);
      check "normalized" true (e.Graph.u < e.Graph.v);
      check "weight in range" true (e.Graph.w >= 1.0 && e.Graph.w <= 100.0));
  (* Determinism: same seed, same graph. *)
  let g2 = rmat_test_graph () in
  check_int "replayed m" (Graph.m g) (Graph.m g2);
  check "replayed edges" true
    (List.init (Graph.m g) (fun id ->
         Graph.endpoints g id = Graph.endpoints g2 id
         && Graph.weight g id = Graph.weight g2 id)
    |> List.for_all Fun.id);
  check "rejects scale 0" true
    (match Gen.rmat_edges (rng ()) ~scale:0 ~edge_factor:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed5 |]) t

let () =
  Alcotest.run "ln_graph"
    [
      ( "structures",
        [
          Alcotest.test_case "union find" `Quick test_union_find;
          Alcotest.test_case "pqueue sorts" `Quick test_pqueue_sorts;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "parallel edges" `Quick test_graph_collapses_parallel;
          Alcotest.test_case "bad input" `Quick test_graph_rejects_bad_input;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "hop diameter" `Quick test_hop_diameter;
        ] );
      ( "paths",
        [
          Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
          Alcotest.test_case "dijkstra bound" `Quick test_dijkstra_bound;
          Alcotest.test_case "dijkstra multi" `Quick test_dijkstra_multi;
        ] );
      ( "mst",
        [
          Alcotest.test_case "diamond" `Quick test_mst_diamond;
          qcheck prop_kruskal_equals_prim;
          qcheck prop_mst_weight_minimal;
        ] );
      ( "tree+euler",
        [
          Alcotest.test_case "tree structure" `Quick test_tree_structure;
          Alcotest.test_case "tree rejects cycle" `Quick test_tree_rejects_cycle;
          Alcotest.test_case "paper figure" `Quick test_euler_paper_figure;
          qcheck prop_euler_invariants;
        ] );
      ( "gen+stats",
        [
          Alcotest.test_case "generators connected" `Quick test_generators_connected;
          Alcotest.test_case "stats identities" `Quick test_stats_identity;
          Alcotest.test_case "root stretch" `Quick test_root_stretch;
          Alcotest.test_case "degenerate stats stay finite or pinned" `Quick
            test_stats_degenerate;
          Alcotest.test_case "metric props" `Quick test_metric_net_props;
          Alcotest.test_case "zipf pinned histogram" `Quick test_zipf_pinned;
          Alcotest.test_case "zipf degenerate" `Quick test_zipf_degenerate;
          qcheck prop_heavy_tailed_weights_in_range;
          qcheck prop_geometric_weights_are_distances;
        ] );
      ( "structure-extra",
        [
          Alcotest.test_case "subgraph mapping" `Quick test_subgraph_mapping;
          Alcotest.test_case "aspect ratio" `Quick test_aspect_ratio;
          qcheck prop_compare_edges_total_order;
          qcheck prop_path_to_realizes_distance;
          qcheck prop_all_pairs_symmetric;
          Alcotest.test_case "euler interval api" `Quick test_euler_interval_api;
          qcheck prop_graph_io_roundtrip;
          Alcotest.test_case "edge set io" `Quick test_edge_set_io;
        ] );
      ( "csr+rmat",
        [
          qcheck prop_csr_matches_legacy;
          qcheck prop_of_edge_arrays_equals_create;
          Alcotest.test_case "of_edge_arrays validates" `Quick
            test_of_edge_arrays_validates;
          Alcotest.test_case "rmat pinned" `Quick test_rmat_pinned;
          Alcotest.test_case "rmat structure" `Quick test_rmat_structure;
        ] );
    ]
