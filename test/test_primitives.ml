(* Deep tests for the distributed primitives: forest passes, tree
   fragment decomposition, interval protocols, exchanges, and keyed
   aggregation corner cases. *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Gen = Ln_graph.Gen
module Mst_seq = Ln_graph.Mst_seq
module Engine = Ln_congest.Engine
module Bfs = Ln_prim.Bfs
module Forest = Ln_prim.Forest
module Tree_frags = Ln_prim.Tree_frags
module Exchange = Ln_prim.Exchange
module Keyed = Ln_prim.Keyed
module Dist_mst = Ln_mst.Dist_mst
module Euler_dist = Ln_traversal.Euler_dist
module Tour_table = Ln_traversal.Tour_table
module Intervals = Ln_spanner.Intervals

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_graph seed n =
  let rng = Random.State.make [| seed; 123 |] in
  Gen.erdos_renyi rng ~n ~p:0.15 ()

(* A random forest over the MST: cut each MST edge with probability
   1/3; roots are the minimum vertex of each component. *)
let random_forest seed g =
  let rng = Random.State.make [| seed; 7 |] in
  let mst = Mst_seq.kruskal g in
  let kept = List.filter (fun _ -> Random.State.int rng 3 > 0) mst in
  let n = Graph.n g in
  let uf = Ln_graph.Union_find.create n in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      ignore (Ln_graph.Union_find.union uf u v))
    kept;
  let min_of_comp = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let r = Ln_graph.Union_find.find uf v in
    match Hashtbl.find_opt min_of_comp r with
    | Some m when m <= v -> ()
    | _ -> Hashtbl.replace min_of_comp r v
  done;
  let is_root v = Hashtbl.find min_of_comp (Ln_graph.Union_find.find uf v) = v in
  let tree_edges = Array.make n [] in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      tree_edges.(u) <- e :: tree_edges.(u);
      tree_edges.(v) <- e :: tree_edges.(v))
    kept;
  (tree_edges, is_root)

(* ------------------------------------------------------------------ *)
(* Forest                                                              *)

let prop_forest_orient =
  QCheck2.Test.make ~name:"forest orient: every vertex reaches a root" ~count:20
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 5000))
    (fun (n, seed) ->
      let g = random_graph seed n in
      let tree_edges, is_root = random_forest seed g in
      let parent_edge, _ = Forest.orient g ~tree_edges ~is_root in
      (* Walking parents always terminates at a root. *)
      let ok = ref true in
      for v = 0 to n - 1 do
        let rec walk v steps =
          if steps > n then false
          else if parent_edge.(v) = -1 then is_root v
          else if parent_edge.(v) = -2 then false
          else walk (Graph.other_end g parent_edge.(v) v) (steps + 1)
        in
        if not (walk v 0) then ok := false
      done;
      !ok)

let prop_forest_up_subtree_sums =
  QCheck2.Test.make ~name:"forest up computes subtree sums" ~count:20
    QCheck2.Gen.(pair (int_range 2 50) (int_range 0 5000))
    (fun (n, seed) ->
      let g = random_graph seed n in
      let tree_edges, is_root = random_forest seed g in
      let parent_edge, _ = Forest.orient g ~tree_edges ~is_root in
      let sums, _, _ =
        Forest.up g ~parent_edge ~tree_edges
          ~compute:(fun v kids -> v + List.fold_left (fun a (_, x) -> a + x) 0 kids)
      in
      (* Every root's value equals the sum of its component's ids. *)
      let comp_sum = Hashtbl.create 8 in
      let root_of = Array.make n (-1) in
      for v = 0 to n - 1 do
        let rec find v = if parent_edge.(v) < 0 then v else find (Graph.other_end g parent_edge.(v) v) in
        let r = find v in
        root_of.(v) <- r;
        Hashtbl.replace comp_sum r (v + Option.value ~default:0 (Hashtbl.find_opt comp_sum r))
      done;
      Hashtbl.fold (fun r total acc -> acc && sums.(r) = total) comp_sum true)

let prop_forest_down_depths =
  QCheck2.Test.make ~name:"forest down distributes root depth" ~count:20
    QCheck2.Gen.(pair (int_range 2 50) (int_range 0 5000))
    (fun (n, seed) ->
      let g = random_graph seed n in
      let tree_edges, is_root = random_forest seed g in
      let parent_edge, _ = Forest.orient g ~tree_edges ~is_root in
      let depth, _ =
        Forest.down g ~parent_edge ~tree_edges
          ~seed:(fun v -> if parent_edge.(v) = -1 then Some 0 else None)
          ~emit:(fun _ d _ -> d + 1)
      in
      let ok = ref true in
      for v = 0 to n - 1 do
        let rec hops v = if parent_edge.(v) < 0 then 0 else 1 + hops (Graph.other_end g parent_edge.(v) v) in
        match depth.(v) with
        | Some d -> if d <> hops v then ok := false
        | None -> ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Tree fragments                                                      *)

let prop_tree_frags_invariants =
  QCheck2.Test.make ~name:"tree fragment decomposition invariants" ~count:25
    QCheck2.Gen.(pair (int_range 2 100) (int_range 0 5000))
    (fun (n, seed) ->
      let g = random_graph seed n in
      let mst = Mst_seq.kruskal g in
      let tree = Tree.of_edges g ~root:0 mst in
      let parent_edge =
        Array.init n (fun v -> match Tree.parent tree v with Some (_, e) -> e | None -> -1)
      in
      let target = max 2 (int_of_float (Float.sqrt (float_of_int n))) in
      let f = Tree_frags.decompose g ~parent_edge ~root:0 ~target_size:target in
      (* 1. frag_of covers all; roots are inside their fragments. *)
      Array.for_all (fun x -> x >= 0 && x < f.Tree_frags.count) f.Tree_frags.frag_of
      && Array.for_all
           (fun r -> f.Tree_frags.frag_of.(r) >= 0)
           f.Tree_frags.root_of
      (* 2. internal parents stay inside the fragment. *)
      && Array.for_all2
           (fun v_frag ip ->
             ip = -1 || ignore v_frag = ())
           f.Tree_frags.frag_of f.Tree_frags.internal_parent
      (* 3. fragment count is O(n / target) + O(n/target) extra. *)
      && f.Tree_frags.count <= (4 * (n / target)) + 4
      (* 4. parent_frag forms a forest rooted at rt's fragment. *)
      &&
      let top = f.Tree_frags.frag_of.(0) in
      let rec climb fr steps =
        if steps > f.Tree_frags.count then false
        else if fr = top then true
        else climb f.Tree_frags.parent_frag.(fr) (steps + 1)
      in
      List.for_all (fun fr -> climb fr 0) (List.init f.Tree_frags.count Fun.id))

let test_tree_frags_ext_children () =
  let g = random_graph 5 80 in
  let mst = Mst_seq.kruskal g in
  let tree = Tree.of_edges g ~root:0 mst in
  let parent_edge =
    Array.init 80 (fun v -> match Tree.parent tree v with Some (_, e) -> e | None -> -1)
  in
  let f = Tree_frags.decompose g ~parent_edge ~root:0 ~target_size:9 in
  (* Every non-top fragment appears exactly once as someone's external
     child. *)
  let seen = Array.make f.Tree_frags.count 0 in
  Array.iter
    (fun lst ->
      List.iter (fun (z, _) -> seen.(f.Tree_frags.frag_of.(z)) <- seen.(f.Tree_frags.frag_of.(z)) + 1) lst)
    f.Tree_frags.ext_children;
  let top = f.Tree_frags.frag_of.(0) in
  let ok = ref true in
  for fr = 0 to f.Tree_frags.count - 1 do
    let expected = if fr = top then 0 else 1 in
    if seen.(fr) <> expected then ok := false
  done;
  check "external children exactly once" true !ok

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)

let make_tour seed n =
  let g = random_graph seed n in
  let dist = Dist_mst.run g in
  let tour = Euler_dist.run dist ~rt:0 in
  (g, Tour_table.make g tour)

let prop_interval_aggregate =
  QCheck2.Test.make ~name:"interval aggregate = direct per-interval max" ~count:15
    QCheck2.Gen.(pair (int_range 3 50) (int_range 0 5000))
    (fun (n, seed) ->
      let g, tt = make_tour seed n in
      let len = tt.Tour_table.len in
      let rng = Random.State.make [| seed; 31 |] in
      (* Random centers (position 0 always). *)
      let centers = Array.init len (fun j -> j = 0 || Random.State.int rng 5 = 0) in
      let values = Array.init len (fun j -> if Random.State.bool rng then Some (float_of_int (j * 7 mod 23)) else None) in
      let agg, _ =
        Intervals.aggregate g ~tt
          ~is_center:(fun j -> centers.(j))
          ~value:(fun j -> values.(j))
          ~combine:Float.max
      in
      (* Direct computation. *)
      let direct = Array.make len None in
      let start = ref 0 in
      let flush stop =
        let v = ref None in
        for j = !start to stop do
          match values.(j), !v with
          | Some x, Some y -> v := Some (Float.max x y)
          | Some x, None -> v := Some x
          | None, _ -> ()
        done;
        for j = !start to stop do
          direct.(j) <- !v
        done
      in
      for j = 1 to len - 1 do
        if centers.(j) then begin
          flush (j - 1);
          start := j
        end
      done;
      flush (len - 1);
      agg = direct)

let prop_interval_gather =
  QCheck2.Test.make ~name:"interval gather collects every item at its center" ~count:15
    QCheck2.Gen.(pair (int_range 3 50) (int_range 0 5000))
    (fun (n, seed) ->
      let g, tt = make_tour seed n in
      let len = tt.Tour_table.len in
      let rng = Random.State.make [| seed; 41 |] in
      let centers = Array.init len (fun j -> j = 0 || Random.State.int rng 6 = 0) in
      let items = Array.init len (fun j -> List.init (Random.State.int rng 3) (fun i -> (j, i))) in
      let collected, _ =
        Intervals.gather g ~tt
          ~is_center:(fun j -> centers.(j))
          ~items:(fun j -> items.(j))
      in
      (* Direct: center of j = last center <= j. *)
      let expected = Array.make len [] in
      let cur = ref 0 in
      for j = 0 to len - 1 do
        if centers.(j) then cur := j;
        expected.(!cur) <- expected.(!cur) @ items.(j)
      done;
      let sort = List.sort compare in
      let ok = ref true in
      for j = 0 to len - 1 do
        if centers.(j) then begin
          if sort collected.(j) <> sort expected.(j) then ok := false
        end
        else if collected.(j) <> [] then ok := false
      done;
      !ok)

let test_interval_requires_center_zero () =
  let g, tt = make_tour 1 10 in
  check "raises without center 0" true
    (try
       ignore
         (Intervals.aggregate g ~tt ~is_center:(fun _ -> false) ~value:(fun _ -> None)
            ~combine:Float.max);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Exchange and keyed corner cases                                     *)

let test_exchange_floats () =
  let g = Gen.star 6 in
  let values = Array.init 6 (fun v -> float_of_int v *. 1.5) in
  let tables, stats = Exchange.floats g values in
  check_int "one round" 1 stats.Engine.rounds;
  check_int "center hears all" 5 (List.length tables.(0));
  check "leaf hears center" true
    (List.for_all (fun v -> List.map snd tables.(v) = [ 0.0 ]) [ 1; 2; 3; 4; 5 ])

let test_exchange_edge_filter () =
  let g = Gen.path 5 in
  (* Only even edges carry messages. *)
  let tables, _ =
    Exchange.payloads ~edge_ok:(fun e -> e mod 2 = 0) ~words:(fun _ -> 1) g
      (Array.init 5 Fun.id)
  in
  let total = Array.fold_left (fun a l -> a + List.length l) 0 tables in
  check_int "messages only on allowed edges" 4 total

let test_keyed_large_sparse_keyspace () =
  let rng = Random.State.make [| 3 |] in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.2 () in
  let tree, _ = Bfs.tree g ~root:0 in
  let nkeys = 1_000_000 in
  (* Sparse: only 5 distinct keys used. *)
  let local v = [ ((v mod 5) * 200_000, v) ] in
  let table, _ = Keyed.global_best g ~tree ~nkeys ~local ~better:(fun a b -> a > b) in
  let nonempty = Array.to_list table |> List.filter Option.is_some |> List.length in
  check_int "exactly five keys" 5 nonempty;
  check "max correct" true (table.(0) = Some 35)

let test_keyed_empty () =
  let g = Gen.path 8 in
  let tree, _ = Bfs.tree g ~root:0 in
  let table, stats =
    Keyed.global_best g ~tree ~nkeys:4 ~local:(fun _ -> []) ~better:(fun (_ : int) _ -> false)
  in
  check "all empty" true (Array.for_all Option.is_none table);
  check "terminates quickly" true (stats.Engine.rounds < 50)

(* ------------------------------------------------------------------ *)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed9 |]) t

let () =
  Alcotest.run "ln_prim_deep"
    [
      ( "forest",
        [
          qcheck prop_forest_orient;
          qcheck prop_forest_up_subtree_sums;
          qcheck prop_forest_down_depths;
        ] );
      ( "tree-frags",
        [
          qcheck prop_tree_frags_invariants;
          Alcotest.test_case "ext children" `Quick test_tree_frags_ext_children;
        ] );
      ( "intervals",
        [
          qcheck prop_interval_aggregate;
          qcheck prop_interval_gather;
          Alcotest.test_case "center zero required" `Quick test_interval_requires_center_zero;
        ] );
      ( "exchange+keyed",
        [
          Alcotest.test_case "floats" `Quick test_exchange_floats;
          Alcotest.test_case "edge filter" `Quick test_exchange_edge_filter;
          Alcotest.test_case "sparse keyspace" `Quick test_keyed_large_sparse_keyspace;
          Alcotest.test_case "empty" `Quick test_keyed_empty;
        ] );
    ]
