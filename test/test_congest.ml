(* Tests for the CONGEST engine and the distributed primitives
   (BFS tree, Lemma-1 broadcast, convergecast, keyed aggregation). *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Gen = Ln_graph.Gen
module Paths = Ln_graph.Paths
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Trace = Ln_congest.Trace
module Bfs = Ln_prim.Bfs
module Broadcast = Ln_prim.Broadcast
module Convergecast = Ln_prim.Convergecast
module Keyed = Ln_prim.Keyed

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rng () = Random.State.make [| 77 |]

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)

(* A two-node ping-pong: node 0 sends k pings, node 1 echoes. *)
let pingpong k : (int, string) Engine.program =
  let open Engine in
  {
    name = "pingpong";
    words = (fun _ -> 1);
    init =
      (fun ctx ->
        if ctx.me = 0 then (0, [ { via = ctx_edge ctx 0; msg = "ping" } ])
        else (0, []));
    step =
      (fun _ctx ~round:_ count inbox ->
        match inbox with
        | [] -> (count, [], false)
        | { payload = "ping"; edge; _ } :: _ ->
          (count + 1, [ { via = edge; msg = "pong" } ], false)
        | { payload = _; edge; _ } :: _ ->
          let count = count + 1 in
          if count < k then (count, [ { via = edge; msg = "ping" } ], false)
          else (count, [], false));
  }

let test_engine_pingpong () =
  let g = Gen.path 2 in
  let states, stats = Engine.run g (pingpong 5) in
  check_int "pings echoed" 5 states.(1);
  check_int "pongs received" 5 states.(0);
  check_int "rounds = 2k" 10 stats.Engine.rounds;
  check_int "messages" 10 stats.Engine.messages

let test_engine_detects_double_send () =
  let g = Gen.path 2 in
  let bad : (unit, int) Engine.program =
    let open Engine in
    {
      name = "bad";
      words = (fun _ -> 1);
      init =
        (fun ctx ->
          if ctx.me = 0 then
            let e = ctx_edge ctx 0 in
            ((), [ { via = e; msg = 1 }; { via = e; msg = 2 } ])
          else ((), []));
      step = (fun _ ~round:_ s _ -> (s, [], false));
    }
  in
  check "raises" true
    (try
       ignore (Engine.run g bad);
       false
     with Engine.Congest_violation _ -> true)

let test_engine_detects_oversize () =
  let g = Gen.path 2 in
  let bad : (unit, int) Engine.program =
    let open Engine in
    {
      name = "fat";
      words = (fun _ -> 99);
      init =
        (fun ctx ->
          if ctx.me = 0 then ((), [ { via = ctx_edge ctx 0; msg = 1 } ])
          else ((), []));
      step = (fun _ ~round:_ s _ -> (s, [], false));
    }
  in
  check "raises" true
    (try
       ignore (Engine.run g bad);
       false
     with Engine.Congest_violation _ -> true)

let test_engine_max_rounds () =
  let g = Gen.path 2 in
  (* A program that never terminates: each node stays active forever. *)
  let loop : (unit, unit) Engine.program =
    let open Engine in
    {
      name = "loop";
      words = (fun () -> 1);
      init = (fun _ -> ((), []));
      step = (fun _ ~round:_ s _ -> (s, [], true));
    }
  in
  (* With [`Mark], the cap is reported in stats. *)
  let _, stats = Engine.run ~max_rounds:17 ~on_round_limit:`Mark g loop in
  check_int "capped" 17 stats.Engine.rounds;
  check "outcome marked" true (stats.Engine.outcome = Engine.Round_limit);
  (* By default, hitting the cap raises: a capped run is never a
     silent result. *)
  check "default raises" true
    (try
       ignore (Engine.run ~max_rounds:17 g loop);
       false
     with Engine.Congest_violation _ -> true);
  (* A converged run says so. *)
  let _, stats = Engine.run ~max_rounds:17 g (pingpong 2) in
  check "converged" true (stats.Engine.outcome = Engine.Converged)

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)

let test_ledger () =
  let l = Ledger.create () in
  Ledger.native l ~label:"bfs" 10;
  Ledger.charged l ~label:"le-lists" 100;
  let sub = Ledger.create () in
  Ledger.native sub ~label:"inner" 5;
  Ledger.merge l ~prefix:"aspt" sub;
  check_int "native" 15 (Ledger.native_total l);
  check_int "charged" 100 (Ledger.charged_total l);
  check_int "total" 115 (Ledger.total l);
  check_int "entries" 3 (List.length (Ledger.entries l));
  check "merged label" true
    (List.exists (fun e -> e.Ledger.label = "aspt/inner") (Ledger.entries l))

(* ------------------------------------------------------------------ *)
(* BFS tree                                                            *)

let test_bfs_tree_depths () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.08 () in
  let tree, stats = Bfs.tree g ~root:0 in
  check "spanning" true (Tree.covers_all tree);
  let hops = Paths.bfs_hops g 0 in
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if Tree.depth_hops tree v <> hops.(v) then ok := false
  done;
  check "BFS depths exact" true !ok;
  check "rounds about D" true (stats.Engine.rounds <= Graph.hop_diameter g + 2)

let prop_bfs_tree_random =
  QCheck2.Test.make ~name:"bfs tree spans with exact hop depths" ~count:30
    QCheck2.Gen.(pair (int_range 2 80) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 3 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.1 () in
      let root = n / 2 in
      let tree, _ = Bfs.tree g ~root in
      let hops = Paths.bfs_hops g root in
      Tree.covers_all tree
      && Array.for_all
           (fun v -> Tree.depth_hops tree v = hops.(v))
           (Array.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Broadcast (Lemma 1)                                                 *)

let test_broadcast_all_to_all () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.1 () in
  let tree, _ = Bfs.tree g ~root:0 in
  (* Every vertex holds one item: its own id. *)
  let items = Array.init (Graph.n g) (fun v -> [ v ]) in
  let result, stats = Broadcast.all_to_all g ~tree ~items in
  let expected = List.init (Graph.n g) Fun.id in
  Array.iteri
    (fun v got ->
      check
        (Printf.sprintf "node %d got all items" v)
        true
        (List.sort Int.compare got = expected))
    result;
  (* Lemma 1: O(M + D) rounds. Generous constant: 4 (M + D) + 10. *)
  let m = Graph.n g and d = Graph.hop_diameter g in
  check "round bound" true (stats.Engine.rounds <= (4 * (m + d)) + 10)

let test_broadcast_uneven_items () =
  let rng = rng () in
  let g = Gen.grid rng ~rows:4 ~cols:5 () in
  let tree, _ = Bfs.tree g ~root:7 in
  let items =
    Array.init (Graph.n g) (fun v -> if v mod 3 = 0 then [ (v, "a"); (v, "b") ] else [])
  in
  let result, _ = Broadcast.all_to_all g ~tree ~items in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 items in
  Array.iteri
    (fun v got -> check_int (Printf.sprintf "node %d count" v) total (List.length got))
    result

let test_gather_only_root () =
  let g = Gen.path 6 in
  let tree, _ = Bfs.tree g ~root:2 in
  let items = Array.init 6 (fun v -> [ v * 10 ]) in
  let result, _ = Broadcast.gather g ~tree ~items in
  check_int "root has all" 6 (List.length result.(2));
  check_int "leaf has none" 0 (List.length result.(0))

let test_downcast () =
  let g = Gen.star 8 in
  let tree, _ = Bfs.tree g ~root:0 in
  let result, _ = Broadcast.downcast g ~tree ~items:[ "x"; "y"; "z" ] in
  Array.iteri
    (fun v got -> check_int (Printf.sprintf "node %d" v) 3 (List.length got))
    result

(* ------------------------------------------------------------------ *)
(* Convergecast                                                        *)

let test_convergecast_sum () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.1 () in
  let tree, _ = Bfs.tree g ~root:3 in
  let total, stats =
    Convergecast.aggregate g ~tree ~value:(fun v -> v) ~combine:( + )
  in
  check_int "sum of ids" (50 * 49 / 2) total;
  check "rounds <= height+2" true
    (stats.Engine.rounds <= Tree.height_hops tree + 2)

let test_convergecast_all () =
  let g = Gen.path 9 in
  let tree, _ = Bfs.tree g ~root:0 in
  let total, stats =
    Convergecast.aggregate_all g ~tree ~value:(fun v -> float_of_int v) ~combine:Float.max
  in
  check "max id" true (total = 8.0);
  check "rounds <= 2 height + 2" true (stats.Engine.rounds <= (2 * Tree.height_hops tree) + 2)

(* ------------------------------------------------------------------ *)
(* Keyed aggregation                                                   *)

let test_keyed_global_best () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:30 ~p:0.15 () in
  let tree, _ = Bfs.tree g ~root:0 in
  let nkeys = 7 in
  (* Every vertex proposes (v mod nkeys, v); global best per key k is
     the max v ≡ k (mod nkeys). *)
  let local v = [ (v mod nkeys, v) ] in
  let table, _ = Keyed.global_best g ~tree ~nkeys ~local ~better:(fun a b -> a > b) in
  for k = 0 to nkeys - 1 do
    let expect =
      List.fold_left
        (fun acc v -> if v mod nkeys = k then max acc v else acc)
        (-1)
        (List.init 30 Fun.id)
    in
    match table.(k) with
    | Some v -> check_int (Printf.sprintf "key %d" k) expect v
    | None -> Alcotest.failf "key %d missing" k
  done

let test_keyed_sparse_keys () =
  let g = Gen.path 10 in
  let tree, _ = Bfs.tree g ~root:0 in
  let local v = if v = 7 then [ (3, 42.0) ] else [] in
  let table, _ =
    Keyed.global_best g ~tree ~nkeys:5 ~local ~better:(fun a b -> a > b)
  in
  check "only key 3 present" true
    (Array.to_list table = [ None; None; None; Some 42.0; None ])

(* ------------------------------------------------------------------ *)
(* Engine delivery semantics                                           *)

(* Every message sent in round r is delivered exactly once, in round
   r+1, to the other endpoint: flood a counter and compare against a
   direct computation. *)
let prop_engine_delivery =
  QCheck2.Test.make ~name:"messages delivered exactly once, next round" ~count:20
    QCheck2.Gen.(pair (int_range 2 30) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 1 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.3 () in
      (* Each node sends its id once on every edge at init; counts what
         it receives. *)
      let program : (int * int, int) Engine.program =
        let open Engine in
        {
          name = "count";
          words = (fun _ -> 1);
          init =
            (fun ctx ->
              ( (0, 0),
                List.rev
                  (ctx_fold_neighbors ctx
                     (fun acc e _ -> { via = e; msg = ctx.me } :: acc)
                     []) ));
          step =
            (fun _ ~round (c, r) inbox ->
              ((c + List.length inbox, max r round), [], false));
        }
      in
      let states, stats = Engine.run g program in
      let ok = ref (stats.Engine.rounds = 1) in
      Array.iteri
        (fun v (c, r) ->
          if c <> Graph.degree g v then ok := false;
          if Graph.degree g v > 0 && r <> 1 then ok := false)
        states;
      !ok && stats.Engine.messages = 2 * Graph.m g)

let test_engine_empty_program () =
  let g = Gen.path 5 in
  let program : (unit, unit) Engine.program =
    let open Engine in
    {
      name = "noop";
      words = (fun () -> 1);
      init = (fun _ -> ((), []));
      step = (fun _ ~round:_ s _ -> (s, [], false));
    }
  in
  let _, stats = Engine.run g program in
  check_int "one idle round then quiescent" 1 stats.Engine.rounds;
  check_int "no messages" 0 stats.Engine.messages

let test_engine_single_node () =
  let g = Graph.create 1 [] in
  let program : (int, unit) Engine.program =
    let open Engine in
    {
      name = "solo";
      words = (fun () -> 1);
      init = (fun _ -> (41, []));
      step = (fun _ ~round:_ s _ -> (s + 1, [], false));
    }
  in
  let states, _ = Engine.run g program in
  check_int "stepped once" 42 states.(0)

let test_engine_word_accounting () =
  let g = Gen.path 2 in
  let program : (unit, string) Engine.program =
    let open Engine in
    {
      name = "words";
      words = String.length;
      init =
        (fun ctx ->
          if ctx.me = 0 then ((), [ { via = ctx_edge ctx 0; msg = "abc" } ])
          else ((), []));
      step = (fun _ ~round:_ s _ -> (s, [], false));
    }
  in
  let _, stats = Engine.run g program in
  check_int "total words" 3 stats.Engine.total_words;
  check_int "max edge load" 3 stats.Engine.max_edge_load

(* Broadcast composes with convergecast: compute a global max, then a
   global histogram via all-to-all; both agree with direct math. *)
let test_primitives_compose () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:35 ~p:0.15 () in
  let tree, _ = Bfs.tree g ~root:0 in
  let mx, _ =
    Convergecast.aggregate g ~tree ~value:(fun v -> (v * 13) mod 17) ~combine:max
  in
  let direct = List.fold_left (fun a v -> max a ((v * 13) mod 17)) 0 (List.init 35 Fun.id) in
  check_int "max agrees" direct mx;
  let items = Array.init 35 (fun v -> [ (v * 13) mod 17 ]) in
  let all, _ = Broadcast.all_to_all g ~tree ~items in
  check_int "histogram size" 35 (List.length all.(7))

let test_engine_observer () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:25 ~p:0.2 () in
  let seen = ref 0 and words = ref 0 and max_round = ref 0 in
  let observer ~round ~from ~dest ~words:w =
    ignore from;
    ignore dest;
    incr seen;
    words := !words + w;
    if round > !max_round then max_round := round
  in
  let tree_prog = (* reuse bfs via the primitive: run the flood manually *)
    ()
  in
  ignore tree_prog;
  (* Run a broadcast with the observer attached through a raw program:
     simplest is the exchange. *)
  let program : (unit, int) Engine.program =
    let open Engine in
    {
      name = "obs";
      words = (fun _ -> 2);
      init =
        (fun ctx ->
          ( (),
            List.rev
              (ctx_fold_neighbors ctx
                 (fun acc e _ -> { via = e; msg = ctx.me } :: acc)
                 []) ));
      step = (fun _ ~round:_ s _ -> (s, [], false));
    }
  in
  let _, stats = Engine.run ~observer g program in
  check_int "observer saw every message" stats.Engine.messages !seen;
  check_int "observer counted all words" stats.Engine.total_words !words

let test_trace_aggregation () =
  let rng = rng () in
  let g = Gen.erdos_renyi rng ~n:30 ~p:0.15 () in
  let tree, _ = Bfs.tree g ~root:0 in
  let trace = Trace.create () in
  let items = Array.init (Graph.n g) (fun v -> [ v ]) in
  (* Route the all-to-all through the engine with the trace attached:
     re-run the primitive by hand (the primitive API does not expose
     the observer, so attach it through a raw run of the same
     program is overkill — instead check consistency on a flood). *)
  ignore (tree, items);
  let program : (unit, int) Engine.program =
    let open Engine in
    {
      name = "trace-me";
      words = (fun _ -> 2);
      init =
        (fun ctx ->
          ( (),
            List.rev
              (ctx_fold_neighbors ctx
                 (fun acc e _ -> { via = e; msg = ctx.me } :: acc)
                 []) ));
      step =
        (fun ctx ~round s inbox ->
          (* One extra wave in round 1. *)
          if round = 1 && ctx.me = 0 then
            ( s,
              List.rev
                (ctx_fold_neighbors ctx
                   (fun acc e _ -> { via = e; msg = 99 } :: acc)
                   []),
              false )
          else begin
            ignore inbox;
            (s, [], false)
          end);
    }
  in
  let _, stats = Engine.run ~observer:(Trace.observer trace) g program in
  check_int "messages agree" stats.Engine.messages (Trace.messages trace);
  check_int "words agree" stats.Engine.total_words (Trace.words trace);
  check_int "two busy rounds" 2 (Trace.busy_rounds trace);
  let m0, w0 = Trace.round_load trace 0 in
  check_int "round-0 msgs = 2m" (2 * Graph.m g) m0;
  check_int "round-0 words" (4 * Graph.m g) w0;
  let m1, _ = Trace.round_load trace 1 in
  check_int "round-1 msgs = deg(0)" (Graph.degree g 0) m1;
  let pr, pm = Trace.peak_round trace in
  check_int "peak round is 0" 0 pr;
  check_int "peak msgs" (2 * Graph.m g) pm;
  check "peak link >= 1" true (Trace.peak_link trace >= 1);
  Trace.reset trace;
  check_int "reset clears" 0 (Trace.messages trace)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed2 |]) t

let () =
  Alcotest.run "ln_congest"
    [
      ( "engine",
        [
          Alcotest.test_case "pingpong" `Quick test_engine_pingpong;
          Alcotest.test_case "double send detected" `Quick test_engine_detects_double_send;
          Alcotest.test_case "oversize detected" `Quick test_engine_detects_oversize;
          Alcotest.test_case "max rounds" `Quick test_engine_max_rounds;
          Alcotest.test_case "ledger" `Quick test_ledger;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "depths" `Quick test_bfs_tree_depths;
          qcheck prop_bfs_tree_random;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "all to all" `Quick test_broadcast_all_to_all;
          Alcotest.test_case "uneven items" `Quick test_broadcast_uneven_items;
          Alcotest.test_case "gather" `Quick test_gather_only_root;
          Alcotest.test_case "downcast" `Quick test_downcast;
        ] );
      ( "convergecast",
        [
          Alcotest.test_case "sum" `Quick test_convergecast_sum;
          Alcotest.test_case "aggregate all" `Quick test_convergecast_all;
        ] );
      ( "keyed",
        [
          Alcotest.test_case "global best" `Quick test_keyed_global_best;
          Alcotest.test_case "sparse keys" `Quick test_keyed_sparse_keys;
        ] );
      ( "engine-semantics",
        [
          qcheck prop_engine_delivery;
          Alcotest.test_case "empty program" `Quick test_engine_empty_program;
          Alcotest.test_case "single node" `Quick test_engine_single_node;
          Alcotest.test_case "word accounting" `Quick test_engine_word_accounting;
          Alcotest.test_case "primitives compose" `Quick test_primitives_compose;
          Alcotest.test_case "observer" `Quick test_engine_observer;
          Alcotest.test_case "trace aggregation" `Quick test_trace_aggregation;
        ] );
    ]
