(* Scenario-layer tests: the declarative format round-trips through
   its canonical printer, parse errors are pinned and carry line
   numbers, and the runner executes + judges small scenarios
   deterministically (including the crash-recovery path and a
   deliberate SLO violation). *)

module Scenario = Ln_scenario.Scenario
module Runner = Ln_scenario.Runner
module Monitor = Ln_congest.Monitor

let parse_ok ?name text =
  match Scenario.parse ?name text with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err text =
  match Scenario.parse ~name:"t" text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_parse_defaults () =
  let s =
    parse_ok ~name:"d"
      "topology er n=64\nrun bfs\nrun serve\nassert verdict degraded\n"
  in
  Alcotest.(check int) "seed defaults to 0" 0 s.Scenario.seed;
  Alcotest.(check int) "max-rounds default" Scenario.default_max_rounds
    s.Scenario.max_rounds;
  (match s.Scenario.topology with
  | Scenario.Er { n = 64; p } ->
    Alcotest.(check (float 1e-9)) "er p defaults to 8/n" 0.125 p
  | _ -> Alcotest.fail "topology");
  (match s.Scenario.steps with
  | [ Scenario.Bfs { root = 0; reliable = false; retries = 32 };
      Scenario.Serve
        { tier = "cache"; workload = "zipf"; queries = 1000; cache = 64;
          stretch = None; store = None; capacity = 4; domains = 1;
          net_skew = 1.1 } ] ->
    ()
  | _ -> Alcotest.fail "step defaults");
  Alcotest.(check bool) "slo" true
    (s.Scenario.slos = [ Scenario.Verdict Scenario.Degraded_ok ])

let test_parse_full_and_roundtrip () =
  let text =
    "# comment\n\
     name churny\n\
     seed 11\n\
     max-rounds 5000\n\
     topology clustered clusters=3 size=8 p-in=0.4 p-out=0.05\n\
     run broadcast root=1 value=7 reliable retries=64\n\
     run mst\n\
     run serve tier=label workload=zipf:1.4 queries=500 cache=16 stretch=9\n\
     fault drop p=0.05 until=40   # trailing comment\n\
     fault link edge=3 from=2 until=9\n\
     fault crash node=5 at=2 recover=12\n\
     fault crash node=9 at=6\n\
     assert verdict correct\n\
     assert min-delivered 1.0\n\
     assert rounds 4000\n\
     assert max-stretch 9\n\
     assert p99-us 50000\n\
     assert max-retrans 500\n\
     assert min-hit-rate 0.25\n"
  in
  let s = parse_ok text in
  Alcotest.(check string) "name" "churny" s.Scenario.name;
  Alcotest.(check int) "seed" 11 s.Scenario.seed;
  Alcotest.(check int) "max-rounds" 5000 s.Scenario.max_rounds;
  Alcotest.(check int) "faults" 4 (List.length s.Scenario.faults);
  Alcotest.(check int) "slos" 7 (List.length s.Scenario.slos);
  Alcotest.(check bool) "crash window parsed" true
    (List.exists
       (function
         | Scenario.Crash_window { node = 5; at = 2; recover = Some 12 } ->
           true
         | _ -> false)
       s.Scenario.faults);
  (* The canonical printer re-parses to the same value (defaults are
     printed back concretely). *)
  Alcotest.(check bool) "to_text round-trips" true
    (Scenario.parse (Scenario.to_text s) = Ok s)

let test_parse_errors () =
  let check_msg what sub text =
    let e = parse_err text in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S mentions %S" what e sub)
      true (contains e sub)
  in
  check_msg "unknown keyword" "unknown keyword \"nope\"" "nope x\n";
  check_msg "line number" "t:3:"
    "topology er n=8\nrun bfs\nfault quake\n";
  check_msg "unknown arg" "unknown run bfs argument \"degree\""
    "topology er n=8\nrun bfs degree=3\n";
  check_msg "flag with value" "\"reliable\" is a flag"
    "topology er n=8\nrun bfs reliable=yes\n";
  check_msg "non-integer" "expects an integer" "topology er n=many\nrun bfs\n";
  check_msg "missing topology" "missing topology" "run bfs\n";
  check_msg "no steps" "no run steps" "topology er n=8\n";
  check_msg "two drops" "more than one fault drop"
    "topology er n=8\nrun bfs\nfault drop p=0.1\nfault drop p=0.2\n";
  check_msg "bad verdict" "expects correct|degraded"
    "topology er n=8\nrun bfs\nassert verdict maybe\n";
  check_msg "duplicate topology" "duplicate topology"
    "topology er n=8\ntopology path n=4\nrun bfs\n"

let test_load_names_from_basename () =
  let path = Filename.temp_file "scn_test" ".scn" in
  let oc = open_out path in
  output_string oc "topology path n=4\nrun broadcast\n";
  close_out oc;
  let s = Scenario.load path in
  Sys.remove path;
  Alcotest.(check bool) "name from basename" true
    (String.length s.Scenario.name >= 8
    && String.sub s.Scenario.name 0 8 = "scn_test");
  Alcotest.(check bool) "no extension" true
    (Filename.extension s.Scenario.name <> ".scn")

let run_text ?name text = Runner.run (parse_ok ?name text)

let test_runner_clean_pass () =
  let r =
    run_text ~name:"clean"
      "seed 7\ntopology er n=32 p=0.2\nrun bfs\nrun broadcast value=9\n\
       assert verdict correct\nassert min-delivered 1.0\nassert max-retrans 0\n\
       assert rounds 500\n"
  in
  Alcotest.(check bool) "ok" true r.Runner.ok;
  Alcotest.(check int) "implicit + 4 declared checks" 5
    (List.length r.Runner.checks);
  Alcotest.(check bool) "all steps Correct" true
    (List.for_all
       (fun (st : Runner.step_result) ->
         st.Runner.report.Monitor.verdict = Monitor.Correct)
       r.Runner.steps);
  Alcotest.(check int) "no retrans" 0 r.Runner.retrans;
  (* Deterministic: a second run judges identically. *)
  let r2 =
    run_text ~name:"clean"
      "seed 7\ntopology er n=32 p=0.2\nrun bfs\nrun broadcast value=9\n\
       assert verdict correct\nassert min-delivered 1.0\nassert max-retrans 0\n\
       assert rounds 500\n"
  in
  Alcotest.(check bool) "replay identical" true
    (r.Runner.checks = r2.Runner.checks && r.Runner.rounds = r2.Runner.rounds)

let test_runner_crash_recovery_pass () =
  let r =
    run_text ~name:"churn"
      "seed 3\ntopology er n=32 p=0.2\n\
       run broadcast value=5 reliable retries=64\n\
       fault drop p=0.05 until=30\nfault crash node=4 at=1 recover=9\n\
       assert verdict correct\nassert min-delivered 1.0\n"
  in
  Alcotest.(check bool) "ok under churn" true r.Runner.ok;
  Alcotest.(check bool) "plan mentions the window" true
    (let s = r.Runner.plan in
     let rec go i =
       i + 12 <= String.length s
       && (String.sub s i 12 = "crash4@[1,9)" || go (i + 1))
     in
     go 0)

let test_runner_violation_fails () =
  (* Raw flood on a path under heavy loss: Wrong verdict, low delivery
     — and the judge must report per-check margins. *)
  let r =
    run_text ~name:"bad"
      "seed 2\ntopology path n=16\nrun broadcast\nfault drop p=0.4\n\
       assert verdict correct\nassert min-delivered 1.0\n"
  in
  Alcotest.(check bool) "not ok" false r.Runner.ok;
  let delivered =
    List.find
      (fun (c : Runner.check) -> c.Runner.bound = Some 1.0)
      r.Runner.checks
  in
  Alcotest.(check bool) "margin below floor" true
    (match delivered.Runner.value with Some v -> v < 1.0 | None -> false);
  Alcotest.(check bool) "verdict check fails" true
    (List.exists
       (fun (c : Runner.check) -> (not c.Runner.pass) && c.Runner.value = None)
       r.Runner.checks)

let test_runner_unmeasurable_slo_fails () =
  (* min-hit-rate with no cache-tier step must fail loudly, not pass
     vacuously. *)
  let r =
    run_text ~name:"vacuous"
      "seed 1\ntopology er n=16 p=0.3\nrun bfs\nassert min-hit-rate 0.5\n"
  in
  Alcotest.(check bool) "not ok" false r.Runner.ok;
  Alcotest.(check bool) "explained" true
    (List.exists
       (fun (c : Runner.check) ->
         c.Runner.measured = "no cache-tier serve step" && not c.Runner.pass)
       r.Runner.checks)

let test_runner_round_budget () =
  (* max-rounds caps the engine run (`Mark, not raise): the implicit
     convergence check fails, and the runner still returns a table. *)
  let r =
    run_text ~name:"capped"
      "seed 5\nmax-rounds 2\ntopology path n=24\n\
       run broadcast reliable retries=8\nfault drop p=0.2\n\
       assert verdict correct\n"
  in
  Alcotest.(check bool) "not ok" false r.Runner.ok;
  let conv = List.hd r.Runner.checks in
  Alcotest.(check bool) "convergence row fails" true (not conv.Runner.pass)

let test_runner_validation () =
  Alcotest.check_raises "root out of range"
    (Failure "oops: step 1 (bfs): root 99 out of range (n=8)") (fun () ->
      ignore
        (run_text ~name:"oops" "topology er n=8 p=0.4\nrun bfs root=99\n"));
  (* Fault schedules are range-checked against the compiled graph. *)
  Alcotest.(check bool) "crash node range" true
    (try
       ignore
         (run_text ~name:"oops2"
            "topology path n=4\nrun bfs\nfault crash node=7 at=0\n");
       false
     with Invalid_argument m -> m = "Fault.make: crash node 7 out of range (n=4)")

let test_json_and_describe () =
  let r =
    run_text ~name:"j" "seed 1\ntopology path n=8\nrun broadcast\nassert rounds 100\n"
  in
  let j = Runner.json r in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "json has name" true (contains j "\"name\":\"j\"");
  Alcotest.(check bool) "json has margins" true
    (contains j "\"bound\":100" && contains j "\"pass\":true");
  Alcotest.(check bool) "describe_slo canonical" true
    (Scenario.describe_slo (Scenario.Min_delivered 0.9) = "min-delivered 0.9")

let () =
  Alcotest.run "ln_scenario"
    [
      ( "parse",
        [
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "full grammar + round-trip" `Quick
            test_parse_full_and_roundtrip;
          Alcotest.test_case "pinned errors" `Quick test_parse_errors;
          Alcotest.test_case "load names from basename" `Quick
            test_load_names_from_basename;
        ] );
      ( "run",
        [
          Alcotest.test_case "clean scenario passes" `Quick
            test_runner_clean_pass;
          Alcotest.test_case "crash-recovery scenario passes" `Quick
            test_runner_crash_recovery_pass;
          Alcotest.test_case "violations fail with margins" `Quick
            test_runner_violation_fails;
          Alcotest.test_case "unmeasurable SLO fails" `Quick
            test_runner_unmeasurable_slo_fails;
          Alcotest.test_case "round budget marks, judge fails" `Quick
            test_runner_round_budget;
          Alcotest.test_case "validation errors" `Quick test_runner_validation;
          Alcotest.test_case "json + describe" `Quick test_json_and_describe;
        ] );
    ]
