(* Tests for shallow-light trees (Section 4): stretch and lightness of
   both the distributed construction and the sequential KRY95
   baseline, and the BFN16 lightness-close-to-1 regime. *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Gen = Ln_graph.Gen
module Stats = Ln_graph.Stats
module Mst_seq = Ln_graph.Mst_seq
module Paths = Ln_graph.Paths
module Ledger = Ln_congest.Ledger
module Slt = Ln_slt.Slt
module Kry95 = Ln_slt.Kry95

let check = Alcotest.(check bool)

let tree_quality g ~rt tree =
  let stretch = Stats.tree_root_stretch g tree ~root:rt in
  let lightness = Graph.weight_of_edges g (Tree.edges tree) /. Mst_seq.weight g in
  (stretch, lightness)

let test_slt_basic () =
  let rng = Random.State.make [| 19 |] in
  let g = Gen.erdos_renyi rng ~n:80 ~p:0.1 () in
  let epsilon = 0.5 in
  let r = Slt.build ~rng g ~rt:0 ~epsilon in
  check "spanning" true (Tree.covers_all r.Slt.tree);
  let stretch, lightness = tree_quality g ~rt:0 r.Slt.tree in
  check "stretch within promised bound" true (stretch <= r.Slt.stretch_bound +. 1e-9);
  check "lightness within promised bound" true
    (lightness <= r.Slt.lightness_bound +. 1e-9);
  check "has break points" true (r.Slt.break_positions <> [])

let prop_slt_bounds =
  QCheck2.Test.make ~name:"SLT stretch & lightness bounds hold" ~count:12
    QCheck2.Gen.(triple (int_range 2 70) (int_range 0 5000) (int_range 0 2))
    (fun (n, seed, ei) ->
      let epsilon = [| 0.25; 0.5; 1.0 |].(ei) in
      let rng = Random.State.make [| seed; 61 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.15 () in
      let rt = seed mod n in
      let r = Slt.build ~rng g ~rt ~epsilon in
      let stretch, lightness = tree_quality g ~rt r.Slt.tree in
      Tree.covers_all r.Slt.tree
      && stretch <= r.Slt.stretch_bound +. 1e-9
      && lightness <= r.Slt.lightness_bound +. 1e-9)

let prop_slt_structured =
  QCheck2.Test.make ~name:"SLT on adversarial topologies" ~count:6
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = Random.State.make [| seed; 71 |] in
      let graphs =
        [
          (Gen.cycle ~w:3.0 40, 0);
          (Gen.star 30, 4);
          (Gen.clustered rng ~clusters:4 ~size:8 ~p_in:0.6 ~p_out:0.05 (), 1);
          (Gen.grid rng ~rows:6 ~cols:7 (), 20);
        ]
      in
      List.for_all
        (fun (g, rt) ->
          let r = Slt.build ~rng g ~rt ~epsilon:0.5 in
          let stretch, lightness = tree_quality g ~rt r.Slt.tree in
          stretch <= r.Slt.stretch_bound && lightness <= r.Slt.lightness_bound)
        graphs)

let test_slt_beats_extremes () =
  (* On a cycle, the MST alone has root-stretch ~ n while the SPT has
     lightness ~ 2x MST; the SLT must sit in between. *)
  let rng = Random.State.make [| 77 |] in
  let g = Gen.cycle ~w:1.0 101 in
  let rt = 0 in
  let mst_tree = Tree.of_edges g ~root:rt (Mst_seq.kruskal g) in
  let mst_stretch, _ = tree_quality g ~rt mst_tree in
  let r = Slt.build ~rng g ~rt ~epsilon:0.5 in
  let slt_stretch, slt_light = tree_quality g ~rt r.Slt.tree in
  check "mst root stretch is terrible" true (mst_stretch > 20.0);
  check "slt root stretch is small" true (slt_stretch <= r.Slt.stretch_bound);
  check "slt lightness bounded" true (slt_light <= r.Slt.lightness_bound)

let test_build_light_regime () =
  let rng = Random.State.make [| 41 |] in
  let g = Gen.erdos_renyi rng ~n:70 ~p:0.12 () in
  let gamma = 0.5 in
  let r = Slt.build_light ~rng g ~rt:0 ~gamma in
  let stretch, lightness = tree_quality g ~rt:0 r.Slt.tree in
  check "light regime: lightness <= 1 + gamma" true (lightness <= 1.0 +. gamma +. 1e-9);
  check "light regime: stretch <= bound" true (stretch <= r.Slt.stretch_bound +. 1e-9)

let prop_build_light =
  QCheck2.Test.make ~name:"BFN16 regime: lightness 1+gamma" ~count:8
    QCheck2.Gen.(pair (int_range 10 60) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 83 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.2 () in
      let gamma = 0.3 in
      let r = Slt.build_light ~rng g ~rt:(seed mod n) ~gamma in
      let _, lightness = tree_quality g ~rt:(seed mod n) r.Slt.tree in
      lightness <= 1.0 +. gamma +. 1e-9)

let test_kry95 () =
  let rng = Random.State.make [| 55 |] in
  let g = Gen.erdos_renyi rng ~n:90 ~p:0.1 () in
  let epsilon = 0.5 in
  let r = Kry95.build g ~rt:3 ~epsilon in
  check "spanning" true (Tree.covers_all r.Kry95.tree);
  let stretch, lightness = tree_quality g ~rt:3 r.Kry95.tree in
  (* Classical guarantees: 1 + 2/ (eps... ) we use the paper's form:
     stretch <= 1 + eps·(something small); for the tour-budget variant
     stretch <= 1 + 2·eps and lightness <= 1 + 2/eps. *)
  check "kry95 stretch" true (stretch <= 1.0 +. (2.0 *. epsilon) +. 1e-9);
  check "kry95 lightness" true (lightness <= 1.0 +. (2.0 /. epsilon) +. 1e-9)

let prop_kry95_bounds =
  QCheck2.Test.make ~name:"KRY95 bounds on random graphs" ~count:15
    QCheck2.Gen.(pair (int_range 2 80) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 91 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.15 () in
      let rt = seed mod n in
      let epsilon = 0.4 in
      let r = Kry95.build g ~rt ~epsilon in
      let stretch, lightness = tree_quality g ~rt r.Kry95.tree in
      stretch <= 1.0 +. (2.0 *. epsilon) +. 1e-9
      && lightness <= 1.0 +. (2.0 /. epsilon) +. 1e-9)

let test_ledger_phases () =
  let rng = Random.State.make [| 13 |] in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.15 () in
  let r = Slt.build ~rng g ~rt:0 ~epsilon:0.5 in
  let labels = List.map (fun e -> e.Ledger.label) (Ledger.entries r.Slt.ledger) in
  let has prefix = List.exists (fun l -> String.length l >= String.length prefix
      && String.sub l 0 (String.length prefix) = prefix) labels in
  check "has mst phases" true (has "mst+euler/");
  check "has spt phases" true (has "spt/");
  check "has bp1 scan" true (has "slt/bp1");
  check "has abp passes" true (has "slt/abp");
  check "charged component present" true (Ledger.charged_total r.Slt.ledger > 0);
  check "native dominates charge accounting" true (Ledger.native_total r.Slt.ledger > 0)

(* ------------------------------------------------------------------ *)
(* Break-point structure                                               *)

let test_break_positions_valid () =
  let rng = Random.State.make [| 71 |] in
  let g = Gen.erdos_renyi rng ~n:90 ~p:0.08 () in
  let r = Slt.build ~rng g ~rt:2 ~epsilon:0.5 in
  let len = (2 * Graph.n g) - 1 in
  check "positions in range" true
    (List.for_all (fun j -> j >= 0 && j < len) r.Slt.break_positions);
  check "sorted unique" true
    (r.Slt.break_positions = List.sort_uniq Int.compare r.Slt.break_positions);
  check "position 0 (rt) is a break point" true (List.mem 0 r.Slt.break_positions)

let test_smaller_epsilon_more_break_points () =
  let rng = Random.State.make [| 72 |] in
  let g = Gen.erdos_renyi rng ~n:100 ~p:0.08 () in
  let count eps =
    List.length (Slt.build ~rng g ~rt:0 ~epsilon:eps).Slt.break_positions
  in
  (* Monotone trend: eps=0.1 should give at least as many break points
     as eps=1.0 (randomized SPT, so compare loosely). *)
  check "more break points at smaller eps" true (count 0.1 >= count 1.0)

let test_slt_star_is_spt () =
  (* On a star all SPT paths are single edges: the SLT is the star. *)
  let g = Gen.star 20 in
  let rng = Random.State.make [| 73 |] in
  let r = Slt.build ~rng g ~rt:0 ~epsilon:0.5 in
  check "slt = star" true
    (Stats.tree_root_stretch g r.Slt.tree ~root:0 = 1.0)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eeda |]) t

let () =
  Alcotest.run "ln_slt"
    [
      ( "distributed",
        [
          Alcotest.test_case "basic" `Quick test_slt_basic;
          qcheck prop_slt_bounds;
          qcheck prop_slt_structured;
          Alcotest.test_case "beats extremes" `Quick test_slt_beats_extremes;
          Alcotest.test_case "ledger phases" `Quick test_ledger_phases;
        ] );
      ( "light-regime",
        [
          Alcotest.test_case "basic" `Quick test_build_light_regime;
          qcheck prop_build_light;
        ] );
      ( "kry95",
        [ Alcotest.test_case "basic" `Quick test_kry95; qcheck prop_kry95_bounds ] );
      ( "structure",
        [
          Alcotest.test_case "break positions" `Quick test_break_positions_valid;
          Alcotest.test_case "epsilon monotone" `Quick test_smaller_epsilon_more_break_points;
          Alcotest.test_case "star" `Quick test_slt_star_is_spt;
        ] );
    ]
