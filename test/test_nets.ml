(* Tests for Section 6: LE lists against brute force, the net
   algorithm's covering/separation/iteration guarantees, the greedy
   baseline, and ruling sets. *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Metric = Ln_graph.Metric
module Ledger = Ln_congest.Ledger
module Bfs = Ln_prim.Bfs
module Le_list = Ln_nets.Le_list
module Net = Ln_nets.Net
module Greedy_net = Ln_nets.Greedy_net
module Ruling_set = Ln_nets.Ruling_set

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop_le_lists =
  QCheck2.Test.make ~name:"LE lists satisfy Definition 1 (vs brute force)" ~count:20
    QCheck2.Gen.(pair (int_range 2 30) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 2 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.3 () in
      (* A random subset in a random order. *)
      let order =
        List.init n Fun.id
        |> List.filter (fun _ -> Random.State.bool rng)
        |> fun l -> if l = [] then [ 0 ] else l
      in
      let order =
        (* shuffle *)
        let a = Array.of_list order in
        for i = Array.length a - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        Array.to_list a
      in
      let lists = Le_list.compute g ~order in
      match Le_list.check g ~order lists with
      | Ok () -> true
      | Error m -> QCheck2.Test.fail_report m)

let test_le_list_sizes () =
  (* W.h.p. lists are O(log n). *)
  let rng = Random.State.make [| 8 |] in
  let g = Gen.erdos_renyi rng ~n:200 ~p:0.05 () in
  let order =
    let a = Array.init 200 Fun.id in
    for i = 199 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  let lists = Le_list.compute g ~order in
  let maxlen = Array.fold_left (fun acc l -> max acc (List.length l)) 0 lists in
  check "list sizes O(log n)" true (maxlen <= 4 * 8 (* 4 log2 200 *))

let prop_net_properties =
  QCheck2.Test.make ~name:"net covering & separation" ~count:15
    QCheck2.Gen.(triple (int_range 2 50) (int_range 0 5000) (int_range 0 2))
    (fun (n, seed, di) ->
      let delta = [| 0.0; 0.5; 1.0 |].(di) in
      let rng = Random.State.make [| seed; 19 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.2 () in
      let bfs, _ = Bfs.tree g ~root:0 in
      let radius = 30.0 in
      let net = Net.build ~rng g ~bfs ~radius ~delta in
      Net.is_net g ~covering:net.Net.covering_bound ~separation:net.Net.separation_bound
        net.Net.points)

let test_net_iterations_logarithmic () =
  let rng = Random.State.make [| 44 |] in
  let g = Gen.erdos_renyi rng ~n:300 ~p:0.03 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  let net = Net.build ~rng g ~bfs ~radius:50.0 ~delta:0.5 in
  (* O(log n) w.h.p.; generous envelope 6·log2 n. *)
  check "iterations O(log n)" true (net.Net.iterations <= 6 * 9);
  check "ledger mixes charged and native" true
    (Ledger.charged_total net.Net.ledger > 0 && Ledger.native_total net.Net.ledger > 0)

let test_net_small_radius_all_points () =
  (* Radius below the minimum distance: every vertex is a net point. *)
  let g = Gen.path ~w:5.0 12 in
  let rng = Random.State.make [| 1 |] in
  let bfs, _ = Bfs.tree g ~root:0 in
  let net = Net.build ~rng g ~bfs ~radius:1.0 ~delta:0.0 in
  check_int "all vertices" 12 (List.length net.Net.points)

let test_net_huge_radius_single_point () =
  let g = Gen.path ~w:1.0 20 in
  let rng = Random.State.make [| 2 |] in
  let bfs, _ = Bfs.tree g ~root:0 in
  let net = Net.build ~rng g ~bfs ~radius:100.0 ~delta:0.0 in
  check_int "single net point" 1 (List.length net.Net.points)

let prop_greedy_net =
  QCheck2.Test.make ~name:"greedy net is a (delta,delta)-net" ~count:15
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 29 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.25 () in
      let radius = 40.0 in
      let pts = Greedy_net.build g ~radius in
      Metric.covering_radius g pts <= radius +. 1e-9
      && Metric.separation g pts > radius -. 1e-9)

let test_ruling_set () =
  let rng = Random.State.make [| 66 |] in
  let g = Gen.erdos_renyi rng ~n:80 ~p:0.05 ~w_lo:3.0 ~w_hi:9.0 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  let k = 2 in
  let rs = Ruling_set.build ~rng g ~bfs ~k in
  (* Check hop-based covering/separation on the unweighted view. *)
  let unit_g =
    Graph.create (Graph.n g)
      (Graph.fold_edges g (fun _ e acc -> { e with Graph.w = 1.0 } :: acc) [])
  in
  check "ruling covering" true
    (Metric.covering_radius unit_g rs.Ruling_set.points <= float_of_int k +. 1e-9);
  check "ruling separation" true
    (Metric.separation unit_g rs.Ruling_set.points > float_of_int k -. 1e-9)

let test_net_on_path_exact () =
  (* Unit path, radius 2, delta 0: net points pairwise > 2 apart and
     everything within 2 of one; so between 1/5 and 1/2 of vertices. *)
  let g = Gen.path 50 in
  let rng = Random.State.make [| 9 |] in
  let bfs, _ = Bfs.tree g ~root:0 in
  let net = Net.build ~rng g ~bfs ~radius:2.0 ~delta:0.0 in
  let k = List.length net.Net.points in
  check "path net size range" true (k >= 10 && k <= 25);
  check "verified" true (Net.is_net g ~covering:2.0 ~separation:2.0 net.Net.points)

let test_delta_trades_covering () =
  (* Larger delta deactivates more aggressively: fewer net points. *)
  let rng = Random.State.make [| 10 |] in
  let g = Gen.erdos_renyi rng ~n:150 ~p:0.05 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  let size d =
    let rng = Random.State.make [| 10; 10 |] in
    List.length (Net.build ~rng g ~bfs ~radius:20.0 ~delta:d).Net.points
  in
  check "delta=2 no bigger than delta=0" true (size 2.0 <= size 0.0)

let test_le_list_singleton_order () =
  let g = Gen.path 6 in
  let lists = Le_list.compute g ~order:[ 3 ] in
  (* Single source: every vertex's list is [(3, d(3,v))]. *)
  let ok = ref true in
  for v = 0 to 5 do
    match lists.(v) with
    | [ (3, d) ] -> if Float.abs (d -. Float.abs (float_of_int (v - 3))) > 1e-9 then ok := false
    | _ -> ok := false
  done;
  check "singleton order" true !ok

let test_net_rejects_bad_params () =
  let g = Gen.path 4 in
  let rng = Random.State.make [| 1 |] in
  let bfs, _ = Bfs.tree g ~root:0 in
  check "radius 0 rejected" true
    (try ignore (Net.build ~rng g ~bfs ~radius:0.0 ~delta:0.5); false
     with Invalid_argument _ -> true);
  check "negative delta rejected" true
    (try ignore (Net.build ~rng g ~bfs ~radius:1.0 ~delta:(-0.1)); false
     with Invalid_argument _ -> true)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed8 |]) t

let () =
  Alcotest.run "ln_nets"
    [
      ( "le-lists",
        [ qcheck prop_le_lists; Alcotest.test_case "sizes" `Quick test_le_list_sizes ] );
      ( "net",
        [
          qcheck prop_net_properties;
          Alcotest.test_case "iterations" `Quick test_net_iterations_logarithmic;
          Alcotest.test_case "small radius" `Quick test_net_small_radius_all_points;
          Alcotest.test_case "huge radius" `Quick test_net_huge_radius_single_point;
        ] );
      ( "baselines",
        [
          qcheck prop_greedy_net;
          Alcotest.test_case "ruling set" `Quick test_ruling_set;
        ] );
      ( "net-extra",
        [
          Alcotest.test_case "path exact" `Quick test_net_on_path_exact;
          Alcotest.test_case "delta trade-off" `Quick test_delta_trades_covering;
          Alcotest.test_case "singleton LE order" `Quick test_le_list_singleton_order;
          Alcotest.test_case "bad params" `Quick test_net_rejects_bad_params;
        ] );
    ]
