(* Tests for the digest-keyed artifact store and the domain-sharded
   fleet driver: LRU residency/eviction order, quarantine semantics
   (corruption is contained, never fatal), and the fleet's
   byte-identical-checksums-at-every-domain-count guarantee. *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Mst_seq = Ln_graph.Mst_seq
module Artifact = Ln_route.Artifact
module Oracle = Ln_route.Oracle
module Workload = Ln_route.Workload
module Serve = Ln_route.Serve
module Store = Ln_store.Store
module Fleet = Ln_store.Fleet

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5704 |]) t

(* Same cheap-artifact recipe as test_route: MST plus every third edge
   stands in for the spanner. Different (n, seed) pairs give distinct
   graph digests. *)
let make_artifact ?(n = 40) ~seed () =
  let rng = Random.State.make [| seed; 0xa2 |] in
  let g = Gen.erdos_renyi rng ~n ~p:0.15 () in
  let mst = Mst_seq.kruskal g in
  let extra =
    List.filteri (fun i _ -> i mod 3 = 0) (List.init (Graph.m g) Fun.id)
  in
  Artifact.make ~graph:g ~slt_root:3 ~spanner_stretch:3.0
    ~spanner_edges:(mst @ extra) ~slt_edges:mst ~mst_edges:mst
    ~notes:[ ("seed", string_of_int seed) ]
    ()

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_tmp_dir f =
  let dir = Filename.temp_file "lightnet_store" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Populate [dir] with [count] distinct artifacts; returns their
   digests in the order added. *)
let populate ?n dir ~count =
  let st = Store.open_dir dir in
  List.init count (fun i ->
      let art = make_artifact ?n ~seed:(100 + i) () in
      let tmp = Filename.temp_file "lightnet_store_src" ".artifact" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Artifact.save tmp art;
          match Store.add st tmp with
          | Ok (digest, `Added) -> digest
          | Ok (_, `Duplicate) -> Alcotest.fail "fresh artifact was a duplicate"
          | Error why -> Alcotest.fail why))

(* ------------------------------------------------------------------ *)
(* Store semantics. *)

let test_add_and_ls () =
  with_tmp_dir @@ fun dir ->
  let digests = populate dir ~count:3 in
  let st = Store.open_dir dir in
  check_int "3 ready" 3 (List.length (Store.digests st));
  check "digests sorted" true
    (Store.digests st = List.sort String.compare digests);
  (* Adding the same content again is a duplicate, not a new entry. *)
  let art = make_artifact ~seed:100 () in
  let tmp = Filename.temp_file "lightnet_store_src" ".artifact" in
  Artifact.save tmp art;
  (match Store.add st tmp with
  | Ok (_, `Duplicate) -> ()
  | Ok (_, `Added) -> Alcotest.fail "re-add should be a duplicate"
  | Error why -> Alcotest.fail why);
  Sys.remove tmp;
  check_int "still 3 ready" 3 (List.length (Store.digests st));
  List.iter
    (fun (e : Store.entry) ->
      check "entry ready" true (e.Store.status = Store.Ready);
      check "entry has bytes" true (e.Store.bytes > 0);
      check "nothing loaded yet" false e.Store.loaded)
    (Store.ls st)

let test_lru_eviction_order () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:3 in
  let st = Store.open_dir ~capacity:2 dir in
  let a, b, c =
    match Store.digests st with
    | [ a; b; c ] -> (a, b, c)
    | _ -> Alcotest.fail "expected 3 digests"
  in
  let get d =
    match Store.oracle st d with
    | Ok o -> o
    | Error why -> Alcotest.fail why
  in
  let oa = get a in
  let ob = get b in
  (* Capacity 2 is full; touching b then loading c must evict a (the
     stalest), not b. *)
  let ob' = get b in
  check "hit returns the resident instance" true (ob == ob');
  let _ = get c in
  let s = Store.stats st in
  check_int "one eviction" 1 s.Store.evictions;
  check_int "one hit" 1 s.Store.hits;
  check_int "three loads" 3 s.Store.misses;
  check_int "two resident" 2 s.Store.loaded;
  check "a was evicted" false
    (List.exists
       (fun (e : Store.entry) -> e.Store.digest = a && e.Store.loaded)
       (Store.ls st));
  (* Reloading a gives a fresh oracle (the old one was dropped) and
     evicts c — b stays, still the most recently touched before c. *)
  let oa' = get a in
  check "evicted oracle is reloaded fresh" true (oa != oa');
  let s = Store.stats st in
  check_int "two evictions" 2 s.Store.evictions;
  check_int "four loads" 4 s.Store.misses

let test_capacity_pins_everything () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:3 in
  let st = Store.open_dir ~capacity:3 dir in
  let digests = Store.digests st in
  let touch () =
    List.iter
      (fun d ->
        match Store.oracle st d with
        | Ok _ -> ()
        | Error why -> Alcotest.fail why)
      digests
  in
  touch ();
  touch ();
  touch ();
  let s = Store.stats st in
  check_int "no evictions at capacity" 0 s.Store.evictions;
  check_int "one load per network" 3 s.Store.misses;
  check_int "every other touch hits" 6 s.Store.hits;
  check_int "all resident" 3 s.Store.loaded

let corrupt_file path =
  let bytes =
    In_channel.with_open_bin path (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  Bytes.set bytes 100 (Char.chr (Char.code (Bytes.get bytes 100) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes)

let test_corrupt_artifact_quarantined_not_fatal () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:3 in
  let st = Store.open_dir dir in
  let a, b, c =
    match Store.digests st with
    | [ a; b; c ] -> (a, b, c)
    | _ -> Alcotest.fail "expected 3 digests"
  in
  corrupt_file (Filename.concat dir (b ^ ".artifact"));
  (match Store.oracle st b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt artifact must not load");
  (* The other networks keep serving. *)
  check "a serves" true (Result.is_ok (Store.oracle st a));
  check "c serves" true (Result.is_ok (Store.oracle st c));
  let s = Store.stats st in
  check_int "one quarantined" 1 s.Store.quarantined;
  check_int "two ready" 2 s.Store.ready;
  check "husk renamed" true
    (Sys.file_exists (Filename.concat dir (b ^ ".artifact.quarantined")));
  check "original gone" false
    (Sys.file_exists (Filename.concat dir (b ^ ".artifact")));
  (* A second resolve of the quarantined digest fails fast (no load). *)
  let before = (Store.stats st).Store.misses in
  (match Store.oracle st b with Error _ -> () | Ok _ -> Alcotest.fail "still bad");
  check_int "no reload attempt" before (Store.stats st).Store.misses;
  (* gc deletes the husk and forgets the digest. *)
  check_int "gc collects one" 1 (Store.gc st);
  check_int "nothing quarantined after gc" 0 (Store.stats st).Store.quarantined;
  check "husk deleted" false
    (Sys.file_exists (Filename.concat dir (b ^ ".artifact.quarantined")))

let test_digest_mismatch_quarantined () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:2 in
  let st = Store.open_dir dir in
  let a, b =
    match Store.digests st with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected 2 digests"
  in
  (* A valid artifact parked under the wrong name: b's file now holds
     a's bytes. Artifact.load accepts it, the store must not. *)
  let bytes =
    In_channel.with_open_bin
      (Filename.concat dir (a ^ ".artifact"))
      In_channel.input_all
  in
  Out_channel.with_open_bin (Filename.concat dir (b ^ ".artifact")) (fun oc ->
      Out_channel.output_string oc bytes);
  (match Store.oracle st b with
  | Error why ->
    check "mismatch reason names both digests" true
      (let has s sub =
         let n = String.length sub in
         let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
         at 0
       in
       has why a && has why b)
  | Ok _ -> Alcotest.fail "impersonating artifact must not load");
  check "a still serves" true (Result.is_ok (Store.oracle st a));
  check_int "one quarantined" 1 (Store.stats st).Store.quarantined

let test_truncated_artifact_quarantined () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:2 in
  let st = Store.open_dir dir in
  let a, b =
    match Store.digests st with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected 2 digests"
  in
  let path = Filename.concat dir (b ^ ".artifact") in
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 100));
  (match Store.oracle st b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated artifact must not load");
  check "a still serves" true (Result.is_ok (Store.oracle st a));
  (* verify agrees and reports the stored reason. *)
  let results = Store.verify st in
  check_int "verify covers both" 2 (List.length results);
  check "a verifies" true (Result.is_ok (List.assoc a results));
  check "b fails verify" true (Result.is_error (List.assoc b results));
  (* Re-adding good copies revives the quarantined digest; the intact
     one is reported as a duplicate. Which seed produced which digest is
     an artifact-format detail, so re-add both and check per digest. *)
  List.iter
    (fun seed ->
      let art = make_artifact ~seed () in
      let tmp = Filename.temp_file "lightnet_store_src" ".artifact" in
      Artifact.save tmp art;
      (match Store.add st tmp with
      | Ok (d, `Added) -> check "revived digest is the truncated one" true (d = b)
      | Ok (d, `Duplicate) -> check "duplicate is the intact one" true (d = a)
      | Error why -> Alcotest.fail why);
      Sys.remove tmp)
    [ 100; 101 ];
  check_int "both ready after revival" 2 (List.length (Store.digests st));
  check "revived serves" true (Result.is_ok (Store.oracle st b))

let test_reopen_sees_quarantine () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:2 in
  let st = Store.open_dir dir in
  let b = List.nth (Store.digests st) 1 in
  corrupt_file (Filename.concat dir (b ^ ".artifact"));
  (match Store.oracle st b with Error _ -> () | Ok _ -> Alcotest.fail "bad");
  (* A fresh process scanning the directory sees the husk. *)
  let st2 = Store.open_dir dir in
  check_int "reopen: 1 ready" 1 (List.length (Store.digests st2));
  check_int "reopen: 1 quarantined" 1 (Store.stats st2).Store.quarantined

(* ------------------------------------------------------------------ *)
(* Fleet. *)

let test_workload_deterministic_and_skewed () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:3 in
  let st = Store.open_dir dir in
  let w1 = Fleet.workload ~seed:5 ~net_skew:1.4 st Workload.Uniform ~count:400 in
  let w2 = Fleet.workload ~seed:5 ~net_skew:1.4 st Workload.Uniform ~count:400 in
  check "same seed, same workload" true (w1 = w2);
  let w3 = Fleet.workload ~seed:6 ~net_skew:1.4 st Workload.Uniform ~count:400 in
  check "different seed, different workload" false (w1 = w3);
  (* Zipf over sorted digests: rank 0 must be the most requested. *)
  let first = List.hd (Store.digests st) in
  let count_net d =
    Array.fold_left
      (fun acc (r : Fleet.request) -> if r.Fleet.net = d then acc + 1 else acc)
      0 w1
  in
  List.iter
    (fun d -> check "rank 0 dominates" true (count_net first >= count_net d))
    (Store.digests st)

let run_fleet st ~domains ~tier requests =
  let o = Fleet.run ~domains st ~tier requests in
  (o, Fleet.checksum_lines o)

let test_fleet_matches_sequential_serve () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:3 in
  let st = Store.open_dir dir in
  let requests = Fleet.workload ~seed:3 st Workload.Uniform ~count:500 in
  let outcome, _ = run_fleet st ~domains:1 ~tier:Oracle.Label requests in
  check_int "nothing skipped" 0 outcome.Fleet.skipped;
  check_int "all answered" 500 outcome.Fleet.queries;
  check_int "three networks" 3 outcome.Fleet.networks;
  (* Each per-network checksum agrees with a straight Serve.run replay
     of that network's requests (same answers, possibly different
     float-addition order — hence the relative tolerance). *)
  List.iter
    (fun (n : Fleet.net_outcome) ->
      let oracle =
        match Store.oracle st n.Fleet.digest with
        | Ok o -> o
        | Error why -> Alcotest.fail why
      in
      let pairs =
        Array.to_list requests
        |> List.filter_map (fun (r : Fleet.request) ->
               if r.Fleet.net = n.Fleet.digest then Some (r.Fleet.u, r.Fleet.v)
               else None)
        |> Array.of_list
      in
      check_int "per-net query count" (Array.length pairs) n.Fleet.queries;
      let replay = Serve.run oracle ~tier:Oracle.Label pairs in
      check "per-net checksum matches sequential serve" true
        (Float.abs (replay.Serve.checksum -. n.Fleet.checksum)
        <= 1e-9 *. (1.0 +. Float.abs replay.Serve.checksum)))
    outcome.Fleet.nets

let checksum_equality_prop =
  QCheck.Test.make ~count:6 ~name:"fleet checksums byte-identical at 1/2/4 domains"
    QCheck.(
      pair (pair small_nat (int_range 1 3))
        (oneofl [ Oracle.Spanner; Oracle.Label; Oracle.Cache ]))
    (fun ((seed, nets), tier) ->
      with_tmp_dir @@ fun dir ->
      let _ = populate ~n:30 dir ~count:nets in
      let st = Store.open_dir ~capacity:2 dir in
      let requests =
        Fleet.workload ~seed ~net_skew:1.2 st (Workload.Zipf 1.1) ~count:300
      in
      let _, c1 = run_fleet st ~domains:1 ~tier requests in
      let _, c2 = run_fleet st ~domains:2 ~tier requests in
      let _, c4 = run_fleet st ~domains:4 ~tier requests in
      c1 = c2 && c2 = c4)

let test_fleet_skips_quarantined () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:3 in
  let st = Store.open_dir dir in
  let b = List.nth (Store.digests st) 1 in
  let requests = Fleet.workload ~seed:2 st Workload.Uniform ~count:300 in
  corrupt_file (Filename.concat dir (b ^ ".artifact"));
  (* Force the store to notice: drop any resident copy first. *)
  let st = Store.open_dir dir in
  let outcome, _ = run_fleet st ~domains:2 ~tier:Oracle.Label requests in
  check "some skipped" true (outcome.Fleet.skipped > 0);
  check_int "two networks still answered" 2 outcome.Fleet.networks;
  check_int "answered + skipped = total" 300
    (outcome.Fleet.queries + outcome.Fleet.skipped);
  check "b not in outcome" false
    (List.exists
       (fun (n : Fleet.net_outcome) -> n.Fleet.digest = b)
       outcome.Fleet.nets)

let test_fleet_cache_tier_counters () =
  with_tmp_dir @@ fun dir ->
  let _ = populate dir ~count:2 in
  let st = Store.open_dir dir in
  let requests = Fleet.workload ~seed:9 st (Workload.Zipf 1.3) ~count:400 in
  let outcome, _ = run_fleet st ~domains:2 ~tier:Oracle.Cache requests in
  (* Every answered query went through some domain's clone cache. *)
  check_int "cache traffic covers the batch" outcome.Fleet.queries
    (outcome.Fleet.cache.Oracle.hits + outcome.Fleet.cache.Oracle.misses);
  check "store hit rate accounted" true
    (Fleet.store_hit_rate outcome > 0.0);
  let s = outcome.Fleet.store in
  check_int "store resolution covers the batch" 400 (s.Store.hits + s.Store.misses)

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "add + ls" `Quick test_add_and_ls;
          Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "capacity pins everything" `Quick
            test_capacity_pins_everything;
          Alcotest.test_case "corrupt artifact quarantined, not fatal" `Quick
            test_corrupt_artifact_quarantined_not_fatal;
          Alcotest.test_case "digest mismatch quarantined" `Quick
            test_digest_mismatch_quarantined;
          Alcotest.test_case "truncated artifact quarantined + revival" `Quick
            test_truncated_artifact_quarantined;
          Alcotest.test_case "reopen sees quarantine husks" `Quick
            test_reopen_sees_quarantine;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "workload deterministic + skewed" `Quick
            test_workload_deterministic_and_skewed;
          Alcotest.test_case "fleet matches sequential serve" `Quick
            test_fleet_matches_sequential_serve;
          qcheck checksum_equality_prop;
          Alcotest.test_case "quarantined networks skipped" `Quick
            test_fleet_skips_quarantined;
          Alcotest.test_case "cache-tier per-domain counters" `Quick
            test_fleet_cache_tier_counters;
        ] );
    ]
