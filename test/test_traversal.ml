(* Tests for the distributed Euler tour (Section 3 / Lemma 2): exact
   agreement with the sequential tour, and the Õ(√n + D) round shape. *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Euler = Ln_graph.Euler
module Gen = Ln_graph.Gen
module Mst_seq = Ln_graph.Mst_seq
module Ledger = Ln_congest.Ledger
module Dist_mst = Ln_mst.Dist_mst
module Euler_dist = Ln_traversal.Euler_dist

let check = Alcotest.(check bool)

let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a)

(* Compare the distributed tour with the sequential one entry by
   entry: same appearance indices and same visiting times. *)
let tours_agree g ~rt (d : Euler_dist.t) =
  let tree = Tree.of_edges g ~root:rt (Mst_seq.kruskal g) in
  let seq = Euler.of_tree tree in
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let expected =
      List.map (fun pos -> (pos, seq.Euler.time.(pos))) seq.Euler.positions.(v)
    in
    let got = d.Euler_dist.appearances.(v) in
    if List.length expected <> List.length got then ok := false
    else
      List.iter2
        (fun (pi, ti) (pj, tj) -> if pi <> pj || not (close ti tj) then ok := false)
        expected got
  done;
  !ok && close d.Euler_dist.total seq.Euler.total

let run_tour ?(rt = 0) g =
  let dist = Dist_mst.run g in
  (dist, Euler_dist.run dist ~rt)

let test_euler_dist_small () =
  let rng = Random.State.make [| 4 |] in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.1 () in
  let _, d = run_tour g in
  check "tour agrees with sequential" true (tours_agree g ~rt:0 d)

let test_euler_dist_nontrivial_root () =
  let rng = Random.State.make [| 14 |] in
  let g = Gen.erdos_renyi rng ~n:64 ~p:0.08 () in
  let _, d = run_tour ~rt:33 g in
  check "tour agrees (rt=33)" true (tours_agree g ~rt:33 d)

let prop_euler_dist_random =
  QCheck2.Test.make ~name:"distributed tour = sequential tour" ~count:20
    QCheck2.Gen.(pair (int_range 2 80) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 17 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.12 () in
      let rt = seed mod n in
      let dist = Dist_mst.run g in
      let d = Euler_dist.run dist ~rt in
      tours_agree g ~rt d)

let prop_euler_dist_structured =
  QCheck2.Test.make ~name:"distributed tour on structured graphs" ~count:8
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = Random.State.make [| seed; 23 |] in
      List.for_all
        (fun (g, rt) ->
          let dist = Dist_mst.run g in
          tours_agree g ~rt (Euler_dist.run dist ~rt))
        [
          (Gen.path 40, 0);
          (Gen.path 41, 20);
          (Gen.star 30, 0);
          (Gen.star 30, 5);
          (Gen.caterpillar rng ~spine:15 ~legs:20 (), 3);
          (Gen.grid rng ~rows:6 ~cols:6 (), 8);
        ])

let test_intervals_nest () =
  (* DFS intervals of children are nested within the parent's. *)
  let rng = Random.State.make [| 6 |] in
  let g = Gen.erdos_renyi rng ~n:70 ~p:0.1 () in
  let dist = Dist_mst.run g in
  let d = Euler_dist.run dist ~rt:0 in
  let tree = d.Euler_dist.rooted.Dist_mst.tree in
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    match Tree.parent tree v with
    | None -> ()
    | Some (p, _) ->
      let lo, hi = d.Euler_dist.interval.(v) in
      let plo, phi = d.Euler_dist.interval.(p) in
      if not (plo <= lo +. 1e-9 && hi <= phi +. 1e-9) then ok := false
  done;
  check "intervals nest" true !ok

let test_rounds_shape () =
  (* Lemma 2: Õ(√n + D) rounds. Check the native round count against a
     generous multiple of (√n + D) on a mid-size graph. *)
  let rng = Random.State.make [| 9 |] in
  let g = Gen.erdos_renyi rng ~n:400 ~p:0.02 () in
  let dist = Dist_mst.run g in
  let before = Ledger.total dist.Dist_mst.ledger in
  let _ = Euler_dist.run dist ~rt:0 in
  let tour_rounds = Ledger.total dist.Dist_mst.ledger - before in
  let bound =
    let sqrt_n = Float.sqrt 400.0 in
    let d = Graph.hop_diameter g in
    int_of_float (40.0 *. (sqrt_n +. float_of_int d)) + 200
  in
  check "tour rounds within Õ(√n+D) envelope" true (tour_rounds <= bound)

let test_tour_totals_and_counts () =
  let rng = Random.State.make [| 12 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.1 () in
  let dist = Dist_mst.run g in
  let d = Euler_dist.run dist ~rt:5 in
  (* Total tour length = 2 w(MST). *)
  let w_mst = Graph.weight_of_edges g dist.Dist_mst.mst_edges in
  check "total = 2 w(T)" true (close d.Euler_dist.total (2.0 *. w_mst));
  (* Appearance counts equal MST degrees (+1 at the root). *)
  let deg = Array.make (Graph.n g) 0 in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    dist.Dist_mst.mst_edges;
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let expected = if v = 5 then deg.(v) + 1 else deg.(v) in
    if List.length d.Euler_dist.appearances.(v) <> expected then ok := false
  done;
  check "appearance counts" true !ok;
  (* g at the root equals the total. *)
  check "g(rt) = total" true (close d.Euler_dist.g_value.(5) d.Euler_dist.total)

let test_tour_table_assembly () =
  let rng = Random.State.make [| 13 |] in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.15 () in
  let dist = Dist_mst.run g in
  let d = Euler_dist.run dist ~rt:0 in
  let tt = Ln_traversal.Tour_table.make g d in
  let open Ln_traversal.Tour_table in
  check "covers all positions" true (Array.for_all (fun v -> v >= 0) tt.vertex_of);
  check "times nondecreasing steps are edge weights" true
    (let ok = ref true in
     for j = 0 to tt.len - 2 do
       let w = Graph.weight g tt.next_edge.(j) in
       if Float.abs (tt.time_of.(j + 1) -. tt.time_of.(j) -. w) > 1e-6 then ok := false
     done;
     !ok);
  check "positions_of inverse of vertex_of" true
    (let ok = ref true in
     Array.iteri
       (fun v ps -> List.iter (fun j -> if tt.vertex_of.(j) <> v then ok := false) ps)
       tt.positions_of;
     !ok)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eedc |]) t

let () =
  Alcotest.run "ln_traversal"
    [
      ( "euler-dist",
        [
          Alcotest.test_case "small" `Quick test_euler_dist_small;
          Alcotest.test_case "nontrivial root" `Quick test_euler_dist_nontrivial_root;
          qcheck prop_euler_dist_random;
          qcheck prop_euler_dist_structured;
          Alcotest.test_case "intervals nest" `Quick test_intervals_nest;
          Alcotest.test_case "rounds shape" `Slow test_rounds_shape;
          Alcotest.test_case "totals and counts" `Quick test_tour_totals_and_counts;
          Alcotest.test_case "tour table" `Quick test_tour_table_assembly;
        ] );
    ]
