(* Tests for Section 5: greedy baseline, EN17b reference, Baswana-Sen,
   the cluster-graph simulations (cross-checked against the
   reference), and the full light-spanner pipeline. *)

module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Stats = Ln_graph.Stats
module Mst_seq = Ln_graph.Mst_seq
module Ledger = Ln_congest.Ledger
module Dist_mst = Ln_mst.Dist_mst
module Euler_dist = Ln_traversal.Euler_dist
module Tour_table = Ln_traversal.Tour_table
module Greedy = Ln_spanner.Greedy
module En17 = Ln_spanner.En17
module Baswana_sen = Ln_spanner.Baswana_sen
module Buckets = Ln_spanner.Buckets
module Cluster_sim = Ln_spanner.Cluster_sim
module Light_spanner = Ln_spanner.Light_spanner

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Greedy                                                              *)

let prop_greedy_stretch =
  QCheck2.Test.make ~name:"greedy spanner stretch" ~count:20
    QCheck2.Gen.(triple (int_range 2 50) (int_range 0 5000) (int_range 1 3))
    (fun (n, seed, k) ->
      let rng = Random.State.make [| seed; 3 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.3 () in
      let t = float_of_int ((2 * k) - 1) in
      let sp = Greedy.build g ~stretch:t in
      Stats.max_edge_stretch g sp <= t +. 1e-9)

let test_greedy_size () =
  let rng = Random.State.make [| 10 |] in
  let g = Gen.erdos_renyi rng ~n:100 ~p:0.4 () in
  let sp = Greedy.build g ~stretch:3.0 in
  (* stretch-3 greedy has O(n^{1.5}) edges; generous envelope. *)
  check "greedy-3 size" true (List.length sp <= 3 * 1000);
  let sp5 = Greedy.build g ~stretch:5.0 in
  check "greedy-5 sparser than greedy-3" true (List.length sp5 <= List.length sp)

let test_greedy_contains_mst () =
  let rng = Random.State.make [| 30 |] in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.3 () in
  let sp = Greedy.build g ~stretch:3.0 in
  let mst = Mst_seq.kruskal g in
  let sp_set = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace sp_set e ()) sp;
  check "mst subset of greedy" true (List.for_all (Hashtbl.mem sp_set) mst)

(* ------------------------------------------------------------------ *)
(* EN17 reference                                                      *)

let abstract_of_graph g =
  {
    En17.nv = Graph.n g;
    adj =
      Array.init (Graph.n g) (fun v ->
          Array.to_list (Graph.neighbors g v) |> List.map (fun (e, u) -> (u, e)));
  }

let unweighted_stretch g sp k =
  (* hop-stretch of each edge in the subgraph *)
  let ok = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace ok e ()) sp;
  let edge_ok e = Hashtbl.mem ok e in
  let worst = ref 0 in
  for v = 0 to Graph.n g - 1 do
    (* BFS in subgraph *)
    let dist = Array.make (Graph.n g) (-1) in
    dist.(v) <- 0;
    let q = Queue.create () in
    Queue.push v q;
    while not (Queue.is_empty q) do
      let x = Queue.pop q in
      Array.iter
        (fun (e, u) ->
          if edge_ok e && dist.(u) < 0 then begin
            dist.(u) <- dist.(x) + 1;
            Queue.push u q
          end)
        (Graph.neighbors g x)
    done;
    Array.iter
      (fun (_, u) -> if u > v && dist.(u) > !worst then worst := dist.(u))
      (Graph.neighbors g v)
  done;
  ignore k;
  !worst

let prop_en17_stretch =
  QCheck2.Test.make ~name:"EN17 reference: stretch 2k-1 on unweighted graphs" ~count:15
    QCheck2.Gen.(triple (int_range 4 60) (int_range 0 5000) (int_range 2 4))
    (fun (n, seed, k) ->
      let rng = Random.State.make [| seed; 7 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.3 ~w_lo:1.0 ~w_hi:1.0 () in
      let sp = En17.spanner ~rng ~k (abstract_of_graph g) in
      unweighted_stretch g sp k <= (2 * k) - 1)

let test_en17_size () =
  let rng = Random.State.make [| 70 |] in
  let g = Gen.erdos_renyi rng ~n:150 ~p:0.5 ~w_lo:1.0 ~w_hi:1.0 () in
  let k = 3 in
  let sp = En17.spanner ~rng ~k (abstract_of_graph g) in
  (* expected O(n^{1+1/k}); envelope 8 * n^{1+1/k} + n *)
  let bound = int_of_float (8.0 *. (150.0 ** (1.0 +. (1.0 /. 3.0)))) + 150 in
  check "en17 size envelope" true (List.length sp <= bound)

(* ------------------------------------------------------------------ *)
(* Baswana-Sen                                                         *)

let prop_bs_stretch =
  QCheck2.Test.make ~name:"Baswana-Sen stretch 2k-1 (weighted)" ~count:15
    QCheck2.Gen.(triple (int_range 2 50) (int_range 0 5000) (int_range 1 4))
    (fun (n, seed, k) ->
      let rng = Random.State.make [| seed; 11 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.3 () in
      let r = Baswana_sen.build ~rng ~k g in
      Stats.max_edge_stretch g r.Baswana_sen.edges
      <= float_of_int ((2 * k) - 1) +. 1e-9)

let test_bs_size () =
  let rng = Random.State.make [| 90 |] in
  let g = Gen.erdos_renyi rng ~n:120 ~p:0.5 () in
  let k = 3 in
  let r = Baswana_sen.build ~rng ~k g in
  let bound = int_of_float (8.0 *. float_of_int k *. (120.0 ** (1.0 +. (1.0 /. float_of_int k)))) in
  check "bs size envelope" true (List.length r.Baswana_sen.edges <= bound)

let test_bs_subgraph_restriction () =
  let rng = Random.State.make [| 91 |] in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.4 () in
  (* Restrict to even edge ids only; spanner must use only those. *)
  let edge_ok e = e mod 2 = 0 in
  let r = Baswana_sen.build ~edge_ok ~rng ~k:2 g in
  check "respects restriction" true (List.for_all edge_ok r.Baswana_sen.edges)

(* ------------------------------------------------------------------ *)
(* Cluster simulations vs the EN17 reference                           *)

(* Build one bucket instance and compare case1 against the pure
   algorithm run on the explicit cluster graph with identical r. *)
let test_case1_matches_reference () =
  let rng = Random.State.make [| 123 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.15 () in
  let dist = Dist_mst.run g in
  let tour = Euler_dist.run dist ~rt:0 in
  let tt = Tour_table.make g tour in
  let l_total = tour.Euler_dist.total in
  let epsilon = 0.5 and k = 2 in
  (* Find a nonempty bucket that classifies as Global. *)
  let classify = Buckets.classify ~l_total ~epsilon ~n:(Graph.n g) in
  let found = ref None in
  for i = 0 to Buckets.bucket_count ~epsilon ~n:(Graph.n g) - 1 do
    if !found = None then begin
      let nonempty =
        Graph.fold_edges g (fun e _ acc -> acc || classify (Graph.weight g e) = `Bucket i) false
      in
      if nonempty then begin
        match Buckets.assign g ~tt ~l_total ~epsilon ~k ~i with
        | Buckets.Global { nclusters; cluster_of } -> found := Some (i, nclusters, cluster_of)
        | Buckets.Interval _ -> ()
      end
    end
  done;
  match !found with
  | None -> () (* no global bucket in this instance; nothing to check *)
  | Some (i, nclusters, cluster_of) ->
    let in_bucket e = classify (Graph.weight g e) = `Bucket i in
    let r = En17.draw_r ~rng:(Random.State.make [| 5 |]) ~k nclusters in
    let ledger = Ledger.create () in
    let bfs = dist.Dist_mst.bfs in
    let sim =
      Cluster_sim.case1 ~r ~rng g ~bfs ~k ~nclusters ~cluster_of ~in_bucket ledger
    in
    (* Reference: explicit cluster graph, same r. *)
    let adj = Array.make nclusters [] in
    Graph.iter_edges g (fun e ed ->
        if in_bucket e then begin
          let a = cluster_of.(ed.Graph.u) and b = cluster_of.(ed.Graph.v) in
          if a <> b then begin
            adj.(a) <- (b, e) :: adj.(a);
            adj.(b) <- (a, e) :: adj.(b)
          end
        end);
    let cg = { En17.nv = nclusters; adj } in
    let st = ref (En17.init_state r) in
    for _ = 1 to k do
      st := En17.step cg !st
    done;
    (* Occupied-cluster init differs: unoccupied clusters exist in the
       reference as isolated vertices — harmless since they have no
       edges. *)
    let reference =
      En17.edges cg ~state:!st
      |> List.map (fun (_, _, e) -> e)
      |> List.sort_uniq Int.compare
    in
    check "case1 = reference" true (sim = reference)

let test_case2_interval_machinery () =
  (* Drive case2 on a path graph (whose buckets all land in case 2 for
     small epsilon) and check the spanner covers all bucket edges with
     bounded stretch. *)
  let rng = Random.State.make [| 321 |] in
  let g = Gen.erdos_renyi rng ~n:80 ~p:0.08 () in
  let k = 2 and epsilon = 0.3 in
  let sp = Light_spanner.build ~rng g ~k ~epsilon in
  check "case2 buckets were exercised" true (sp.Light_spanner.buckets_case2 > 0);
  check "stretch bound" true
    (Stats.max_edge_stretch g sp.Light_spanner.edges
    <= sp.Light_spanner.stretch_bound +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Full pipeline                                                       *)

let prop_light_spanner_stretch =
  QCheck2.Test.make ~name:"light spanner stretch (2k-1)(1+O(eps))" ~count:10
    QCheck2.Gen.(triple (int_range 3 60) (int_range 0 5000) (int_range 1 3))
    (fun (n, seed, k) ->
      let rng = Random.State.make [| seed; 13 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.25 () in
      let sp = Light_spanner.build ~rng g ~k ~epsilon:0.25 in
      Stats.max_edge_stretch g sp.Light_spanner.edges
      <= sp.Light_spanner.stretch_bound +. 1e-9)

let test_light_spanner_heavy_tail () =
  (* Heavy-tailed weights exercise many buckets. *)
  let rng = Random.State.make [| 222 |] in
  let g = Gen.heavy_tailed rng ~n:70 ~p:0.2 ~range:1e5 () in
  let sp = Light_spanner.build ~rng g ~k:2 ~epsilon:0.4 in
  check "stretch" true
    (Stats.max_edge_stretch g sp.Light_spanner.edges <= sp.Light_spanner.stretch_bound);
  check "both cases exercised or graph too small" true
    (sp.Light_spanner.buckets_case1 + sp.Light_spanner.buckets_case2 > 0)

let test_light_spanner_lightness () =
  let rng = Random.State.make [| 77 |] in
  let g = Gen.erdos_renyi rng ~n:120 ~p:0.3 () in
  let k = 2 in
  let sp = Light_spanner.build ~rng g ~k ~epsilon:0.25 in
  let lightness = Stats.lightness g sp.Light_spanner.edges in
  (* O(k n^{1/k}) with a generous constant. *)
  let bound = 12.0 *. float_of_int k *. (120.0 ** (1.0 /. float_of_int k)) in
  check "lightness envelope" true (lightness <= bound);
  (* And the size envelope O(k n^{1+1/k}). *)
  let size_bound =
    int_of_float (12.0 *. float_of_int k *. (120.0 ** (1.0 +. (1.0 /. float_of_int k))))
  in
  check "size envelope" true (List.length sp.Light_spanner.edges <= size_bound)

let test_ledger_structure () =
  let rng = Random.State.make [| 3 |] in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.2 () in
  let sp = Light_spanner.build ~rng g ~k:2 ~epsilon:0.3 in
  let labels = List.map (fun e -> e.Ledger.label) (Ledger.entries sp.Light_spanner.ledger) in
  let has p = List.exists (fun l -> String.length l >= String.length p && String.sub l 0 (String.length p) = p) labels in
  check "mst" true (has "mst+euler/");
  check "baswana-sen" true (has "baswana-sen");
  check "bucket phases" true (has "case1/" || has "case2/")

let test_draw_r_clamped () =
  let rng = Random.State.make [| 99 |] in
  let r = En17.draw_r ~rng ~k:3 5000 in
  check "all r < k" true (Array.for_all (fun x -> x < 3.0) r);
  check "all r >= 0" true (Array.for_all (fun x -> x >= 0.0) r)

let test_bs_k1_keeps_bucket () =
  (* k=1: a 1-spanner of the bucket = all bucket edges. *)
  let rng = Random.State.make [| 98 |] in
  let g = Gen.erdos_renyi rng ~n:25 ~p:0.3 () in
  let r = Baswana_sen.build ~rng ~k:1 g in
  check "1-spanner = whole graph" true
    (List.length r.Baswana_sen.edges = Graph.m g)

let test_bucket_assign_case_split () =
  (* Low buckets (few clusters) must be Global, high buckets Interval. *)
  let rng = Random.State.make [| 97 |] in
  let g = Gen.heavy_tailed rng ~n:80 ~p:0.15 ~range:1e5 () in
  let dist = Dist_mst.run g in
  let tour = Euler_dist.run dist ~rt:0 in
  let tt = Tour_table.make g tour in
  let l_total = tour.Euler_dist.total in
  let epsilon = 0.25 and k = 2 in
  let kind i =
    match Buckets.assign g ~tt ~l_total ~epsilon ~k ~i with
    | Buckets.Global _ -> `G
    | Buckets.Interval _ -> `I
  in
  let nb = Buckets.bucket_count ~epsilon ~n:80 in
  check "bucket 0 global" true (kind 0 = `G);
  check "last bucket interval" true (kind (nb - 1) = `I);
  (* The split is monotone: once interval, always interval. *)
  let rec scan i seen_interval ok =
    if i >= nb then ok
    else begin
      match kind i with
      | `G -> scan (i + 1) seen_interval (ok && not seen_interval)
      | `I -> scan (i + 1) true ok
    end
  in
  check "monotone case split" true (scan 0 false true)

let test_interval_assignment_consistent () =
  let rng = Random.State.make [| 96 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.1 () in
  let dist = Dist_mst.run g in
  let tour = Euler_dist.run dist ~rt:0 in
  let tt = Tour_table.make g tour in
  let l_total = tour.Euler_dist.total in
  let nb = Buckets.bucket_count ~epsilon:0.3 ~n:60 in
  match Buckets.assign g ~tt ~l_total ~epsilon:0.3 ~k:2 ~i:(nb - 1) with
  | Buckets.Global _ -> Alcotest.fail "expected interval case"
  | Buckets.Interval { centers; cluster_of; chosen_pos; _ } ->
    check "centers include position 0" true centers.(0);
    (* cluster_of = nearest center at or left of chosen position. *)
    let ok = ref true in
    Array.iteri
      (fun v j ->
        let c = cluster_of.(v) in
        if not (centers.(c) && c <= j) then ok := false;
        for j2 = c + 1 to j do
          if centers.(j2) then ok := false
        done)
      chosen_pos;
    check "cluster is nearest center" true !ok

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eedb |]) t

let () =
  Alcotest.run "ln_spanner"
    [
      ( "greedy",
        [
          qcheck prop_greedy_stretch;
          Alcotest.test_case "size" `Quick test_greedy_size;
          Alcotest.test_case "contains mst" `Quick test_greedy_contains_mst;
        ] );
      ( "en17",
        [ qcheck prop_en17_stretch; Alcotest.test_case "size" `Quick test_en17_size ] );
      ( "baswana-sen",
        [
          qcheck prop_bs_stretch;
          Alcotest.test_case "size" `Quick test_bs_size;
          Alcotest.test_case "subgraph" `Quick test_bs_subgraph_restriction;
        ] );
      ( "cluster-sim",
        [
          Alcotest.test_case "case1 = reference" `Quick test_case1_matches_reference;
          Alcotest.test_case "case2 machinery" `Quick test_case2_interval_machinery;
        ] );
      ( "components",
        [
          Alcotest.test_case "draw_r clamp" `Quick test_draw_r_clamped;
          Alcotest.test_case "BS k=1" `Quick test_bs_k1_keeps_bucket;
          Alcotest.test_case "case split" `Quick test_bucket_assign_case_split;
          Alcotest.test_case "interval assignment" `Quick test_interval_assignment_consistent;
        ] );
      ( "pipeline",
        [
          qcheck prop_light_spanner_stretch;
          Alcotest.test_case "heavy tail" `Quick test_light_spanner_heavy_tail;
          Alcotest.test_case "lightness+size" `Quick test_light_spanner_lightness;
          Alcotest.test_case "ledger" `Quick test_ledger_structure;
        ] );
    ]
