(* Metrics-registry tests: streaming histogram quantiles against exact
   order statistics, merge associativity, domain-sharded counters
   against sequential totals, JSON round-trips, the Prometheus
   validator, and the stable/unstable export split. *)

module Metrics = Ln_obs.Metrics
module Hist = Ln_obs.Metrics.Hist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck t = QCheck_alcotest.to_alcotest t

(* Log-uniform values across the tracked range, so buckets at every
   scale get exercised (a uniform draw on [0.1, 1e7] would almost
   never produce a small value). *)
let gen_value =
  QCheck2.Gen.map (fun e -> Float.pow 10.0 e) (QCheck2.Gen.float_range (-1.0) 7.0)

let gen_values = QCheck2.Gen.(list_size (int_range 1 400) gen_value)

let hist_of l =
  let h = Hist.create () in
  List.iter (Hist.observe h) l;
  h

(* The estimator's definition of the q-th quantile: the value of rank
   ceil (q * n), clamped into [1, n]. *)
let exact_q sorted q =
  let n = Array.length sorted in
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  let r = max 1 (min n r) in
  sorted.(r - 1)

let prop_quantiles_within_error =
  QCheck2.Test.make ~name:"hist quantiles within relative-error bound"
    ~count:100 gen_values (fun l ->
      let h = hist_of l in
      let sorted = Array.of_list l in
      Array.sort compare sorted;
      (* 1.05x slack over the advertised bound absorbs float rounding
         at bucket boundaries. *)
      let tol = 1.05 *. Hist.error h in
      List.for_all
        (fun q ->
          let est = Hist.quantile h q and ex = exact_q sorted q in
          Float.abs (est -. ex) <= (tol *. ex) +. 1e-12)
        [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

let prop_merge_associative =
  QCheck2.Test.make ~name:"hist merge is associative (exact on counts)"
    ~count:60
    QCheck2.Gen.(triple gen_values gen_values gen_values)
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      let left = Hist.merge (Hist.merge ha hb) hc in
      let right = Hist.merge ha (Hist.merge hb hc) in
      Hist.count left = Hist.count right
      && Hist.min_value left = Hist.min_value right
      && Hist.max_value left = Hist.max_value right
      (* Bucket counts are integers, so every quantile is bit-equal
         regardless of merge order; only the float sum is merely
         close. *)
      && List.for_all
           (fun q -> Hist.quantile left q = Hist.quantile right q)
           [ 0.5; 0.9; 0.99 ]
      && Float.abs (Hist.sum left -. Hist.sum right)
         <= 1e-9 *. (1.0 +. Float.abs (Hist.sum left)))

let prop_merge_counts_add =
  QCheck2.Test.make ~name:"hist merge adds counts and keeps min/max"
    ~count:60
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (a, b) ->
      let m = Hist.merge (hist_of a) (hist_of b) in
      Hist.count m = List.length a + List.length b
      && Hist.min_value m = List.fold_left Float.min Float.infinity (a @ b)
      && Hist.max_value m = List.fold_left Float.max Float.neg_infinity (a @ b))

(* Domain sharding: hammer one counter and one histogram from several
   domains at once; the snapshot must see every update exactly once.
   (On a 1-core host the domains mostly serialize, but the shard
   creation and summing paths are identical.) *)
let test_domain_sharded_sum () =
  let c = Metrics.counter "test_obs_shard_total" in
  let h = Metrics.histogram "test_obs_shard_hist" in
  Metrics.reset ();
  Metrics.set_on true;
  let per_domain = 10_000 and domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (float_of_int i)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join ds;
  Metrics.set_on false;
  let snap = Metrics.snapshot () in
  let total = (domains + 1) * per_domain in
  (match Metrics.find snap "test_obs_shard_total" with
  | Some { Metrics.value = Metrics.Counter n; _ } ->
    check_int "sharded counter = sequential total" total n
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match Metrics.find snap "test_obs_shard_hist" with
  | Some { Metrics.value = Metrics.Histogram hs; _ } ->
    check_int "sharded histogram count" total hs.Metrics.h_count;
    check "sharded histogram max" true (hs.Metrics.h_max = float_of_int per_domain)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  Metrics.reset ()

let test_json_roundtrip () =
  let c = Metrics.counter ~help:"a counter" ~labels:[ ("k", "v") ]
      "test_obs_rt_total"
  in
  let g = Metrics.gauge "test_obs_rt_gauge" in
  let h = Metrics.histogram "test_obs_rt_hist" in
  Metrics.reset ();
  Metrics.set_on true;
  Metrics.add c 42;
  Metrics.set g 2.5;
  List.iter (Metrics.observe h) [ 0.004; 1.0; 17.25; 3.0e9 ];
  Metrics.set_on false;
  let snap = Metrics.snapshot () in
  let js = Metrics.to_json ~all:true snap in
  check "of_json . to_json is the identity on the wire" true
    (Metrics.to_json ~all:true (Metrics.of_json js) = js);
  (* And the parsed snapshot agrees on the estimator. *)
  let q j =
    match Metrics.find j "test_obs_rt_hist" with
    | Some { Metrics.value = Metrics.Histogram hs; _ } -> Metrics.quantile hs 0.5
    | _ -> Alcotest.fail "hist missing"
  in
  check "median survives the round-trip" true
    (q snap = q (Metrics.of_json js));
  Metrics.reset ()

let test_prometheus_validates () =
  let c = Metrics.counter "test_obs_prom_total" in
  let h = Metrics.histogram "test_obs_prom_hist" in
  Metrics.reset ();
  Metrics.set_on true;
  Metrics.add c 7;
  List.iter (Metrics.observe h) [ 1.0; 2.0; 300.0 ];
  Metrics.set_on false;
  let text = Metrics.to_prometheus (Metrics.snapshot ()) in
  (match Metrics.validate_prometheus text with
  | Ok n -> check "validator counted samples" true (n > 0)
  | Error e -> Alcotest.failf "to_prometheus failed its own validator: %s" e);
  (match Metrics.validate_prometheus (text ^ "bad line{\n") with
  | Ok _ -> Alcotest.fail "validator accepted a malformed line"
  | Error _ -> ());
  (match Metrics.validate_prometheus "untyped_total 3\n" with
  | Ok _ -> Alcotest.fail "validator accepted a sample without # TYPE"
  | Error _ -> ());
  Metrics.reset ()

let test_unstable_excluded () =
  let g = Metrics.gauge ~stable:false "test_obs_wall_seconds" in
  Metrics.reset ();
  Metrics.set_on true;
  Metrics.set g 123.0;
  Metrics.set_on false;
  let snap = Metrics.snapshot () in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check "unstable metric absent from deterministic JSON" false
    (contains (Metrics.to_json snap) "test_obs_wall_seconds");
  check "unstable metric present with ~all" true
    (contains (Metrics.to_json ~all:true snap) "test_obs_wall_seconds");
  check "unstable metric present in Prometheus text" true
    (contains (Metrics.to_prometheus snap) "test_obs_wall_seconds");
  Metrics.reset ()

let test_disabled_updates_dropped () =
  let c = Metrics.counter "test_obs_off_total" in
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 10;
  (match Metrics.find (Metrics.snapshot ()) "test_obs_off_total" with
  | Some { Metrics.value = Metrics.Counter n; _ } ->
    check_int "updates while disabled are dropped" 0 n
  | _ -> Alcotest.fail "counter missing");
  Metrics.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          qcheck prop_quantiles_within_error;
          qcheck prop_merge_associative;
          qcheck prop_merge_counts_add;
        ] );
      ( "registry",
        [
          Alcotest.test_case "domain-sharded sum" `Quick test_domain_sharded_sum;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "prometheus validator" `Quick
            test_prometheus_validates;
          Alcotest.test_case "unstable export split" `Quick
            test_unstable_excluded;
          Alcotest.test_case "disabled updates dropped" `Quick
            test_disabled_updates_dropped;
        ] );
    ]
