(* Tests for the shortest-path substrate: exact distributed
   Bellman-Ford, bounded multi-source exploration with path reporting,
   and the hub-based SPT (the BKKL17 substitute). *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Gen = Ln_graph.Gen
module Paths = Ln_graph.Paths
module Ledger = Ln_congest.Ledger
module Bfs = Ln_prim.Bfs
module Bellman_ford = Ln_aspt.Bellman_ford
module Hub_sssp = Ln_aspt.Hub_sssp

let check = Alcotest.(check bool)

let close a b =
  (a = infinity && b = infinity) || Float.abs (a -. b) <= 1e-7 *. (1.0 +. Float.abs a)

let dist_arrays_equal a b = Array.for_all2 (fun x y -> close x y) a b

let test_bf_sssp () =
  let rng = Random.State.make [| 2 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.1 () in
  let r, _ = Bellman_ford.sssp g ~src:7 in
  let exact = Paths.dijkstra g 7 in
  check "bf = dijkstra" true (dist_arrays_equal r.Bellman_ford.dist exact.Paths.dist)

let prop_bf_equals_dijkstra =
  QCheck2.Test.make ~name:"distributed BF = dijkstra" ~count:25
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 41 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.15 () in
      let src = seed mod n in
      let r, _ = Bellman_ford.sssp g ~src in
      dist_arrays_equal r.Bellman_ford.dist (Paths.dijkstra g src).Paths.dist)

let test_bf_subgraph () =
  (* Restrict to the MST: distances must match Dijkstra on the MST. *)
  let rng = Random.State.make [| 12 |] in
  let g = Gen.erdos_renyi rng ~n:40 ~p:0.2 () in
  let mst = Ln_graph.Mst_seq.kruskal g in
  let mask = Array.make (Graph.m g) false in
  List.iter (fun e -> mask.(e) <- true) mst;
  let edge_ok e = mask.(e) in
  let r, _ = Bellman_ford.sssp ~edge_ok g ~src:0 in
  let exact = Paths.dijkstra ~edge_ok g 0 in
  check "bf on subgraph" true (dist_arrays_equal r.Bellman_ford.dist exact.Paths.dist)

let test_multi_source_bounded () =
  let rng = Random.State.make [| 5 |] in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.12 () in
  let srcs = [ 3; 17; 42 ] in
  let bound = 60.0 in
  let tables, _ = Bellman_ford.multi_source ~bound g ~srcs in
  (* Every table entry is the exact distance; every exact distance
     within the bound appears. *)
  let ok = ref true in
  List.iter
    (fun s ->
      let exact = Paths.dijkstra g s in
      for v = 0 to Graph.n g - 1 do
        match Hashtbl.find_opt tables.(v) s with
        | Some (d, _) -> if not (close d exact.Paths.dist.(v)) then ok := false
        | None -> if exact.Paths.dist.(v) <= bound then ok := false
      done)
    srcs;
  check "bounded multi-source exact" true !ok

let test_multi_source_paths () =
  let rng = Random.State.make [| 25 |] in
  let g = Gen.erdos_renyi rng ~n:45 ~p:0.15 () in
  let srcs = [ 1; 30 ] in
  let tables, _ = Bellman_ford.multi_source g ~srcs in
  (* Parent pointers reconstruct a path whose length is the distance. *)
  let ok = ref true in
  List.iter
    (fun s ->
      for v = 0 to Graph.n g - 1 do
        match Bellman_ford.path_to_source g tables v ~src:s with
        | None -> ok := false
        | Some path ->
          let rec len = function
            | a :: (b :: _ as rest) ->
              (match Graph.find_edge g a b with
              | Some e -> Graph.weight g e +. len rest
              | None -> infinity)
            | _ -> 0.0
          in
          let d = match Hashtbl.find_opt tables.(v) s with Some (d, _) -> d | None -> nan in
          if not (close (len path) d) then ok := false
      done)
    srcs;
  check "paths realize distances" true !ok

let test_hub_sssp_exact () =
  let rng = Random.State.make [| 77 |] in
  let g = Gen.erdos_renyi rng ~n:120 ~p:0.05 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  let r = Hub_sssp.run ~rng g ~bfs ~src:11 in
  let exact = Paths.dijkstra g 11 in
  check "hub sssp exact" true (dist_arrays_equal r.Hub_sssp.dist exact.Paths.dist);
  check "tree spans" true (Tree.covers_all r.Hub_sssp.tree);
  (* The SPT realizes the distances. *)
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if not (close (Tree.dist_to_root r.Hub_sssp.tree v) exact.Paths.dist.(v)) then
      ok := false
  done;
  check "tree realizes distances" true !ok

let prop_hub_sssp_random =
  QCheck2.Test.make ~name:"hub sssp = dijkstra (incl. path graphs)" ~count:15
    QCheck2.Gen.(pair (int_range 2 100) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 53 |] in
      let g =
        if seed mod 3 = 0 then Gen.path n else Gen.erdos_renyi rng ~n ~p:0.1 ()
      in
      let src = seed mod n in
      let bfs, _ = Bfs.tree g ~root:0 in
      let r = Hub_sssp.run ~rng g ~bfs ~src in
      let exact = Paths.dijkstra g src in
      dist_arrays_equal r.Hub_sssp.dist exact.Paths.dist
      && Tree.covers_all r.Hub_sssp.tree)

let test_hub_rounds_shape () =
  (* On a path (D = n-1, worst case for plain BF) the hub scheme's
     native rounds must beat plain Bellman-Ford... at these scales we
     check it stays within a Õ(√n + D) envelope (D dominates here) and
     well below c·n only when D is small; on the path D = n, so simply
     sanity-check the ledger exists and phases ran. *)
  let rng = Random.State.make [| 31 |] in
  let g = Gen.grid rng ~rows:12 ~cols:12 () in
  let bfs, _ = Bfs.tree g ~root:0 in
  let r = Hub_sssp.run ~rng g ~bfs ~src:100 in
  let exact = Paths.dijkstra g 100 in
  check "grid exact" true (dist_arrays_equal r.Hub_sssp.dist exact.Paths.dist);
  check "ledger has phases" true (List.length (Ledger.entries r.Hub_sssp.ledger) >= 3)

(* ------------------------------------------------------------------ *)
(* Additional shortest-path cases                                      *)

let test_bf_init_seeding () =
  (* Seeding with realizable upper bounds converges to the exact
     distances (the repair-phase contract). *)
  let rng = Random.State.make [| 61 |] in
  let g = Gen.erdos_renyi rng ~n:50 ~p:0.1 () in
  let exact = Paths.dijkstra g 4 in
  (* Upper bounds: true distance along some tree + noise upward. *)
  let init =
    Array.mapi (fun v d -> if v = 4 then 0.0 else (d *. 1.7) +. 5.0) exact.Paths.dist
  in
  let r, _ = Bellman_ford.sssp ~init g ~src:4 in
  check "repair converges to exact" true
    (dist_arrays_equal r.Bellman_ford.dist exact.Paths.dist)

let test_multi_source_empty_sources () =
  let g = Gen.path 5 in
  let tables, stats = Bellman_ford.multi_source g ~srcs:[] in
  check "all tables empty" true (Array.for_all (fun t -> Hashtbl.length t = 0) tables);
  check "no rounds wasted" true (stats.Ln_congest.Engine.rounds <= 1)

let test_multi_source_all_sources () =
  let rng = Random.State.make [| 62 |] in
  let g = Gen.erdos_renyi rng ~n:25 ~p:0.25 () in
  let srcs = List.init 25 Fun.id in
  let tables, _ = Bellman_ford.multi_source ~bound:30.0 g ~srcs in
  (* Spot-check symmetry d(u->v) = d(v->u). *)
  let ok = ref true in
  for u = 0 to 24 do
    for v = 0 to 24 do
      match Hashtbl.find_opt tables.(u) v, Hashtbl.find_opt tables.(v) u with
      | Some (d1, _), Some (d2, _) -> if not (close d1 d2) then ok := false
      | None, None -> ()
      | _ -> ok := false
    done
  done;
  check "bounded multi-source symmetric" true !ok

let test_hub_sssp_on_subgraph () =
  (* Restricted to the MST, hub SSSP must equal Dijkstra on the MST. *)
  let rng = Random.State.make [| 63 |] in
  let g = Gen.erdos_renyi rng ~n:60 ~p:0.15 () in
  let mst = Ln_graph.Mst_seq.kruskal g in
  let mask = Array.make (Graph.m g) false in
  List.iter (fun e -> mask.(e) <- true) mst;
  let edge_ok e = mask.(e) in
  let bfs, _ = Bfs.tree g ~root:0 in
  let r = Hub_sssp.run ~edge_ok ~rng g ~bfs ~src:9 in
  let exact = Paths.dijkstra ~edge_ok g 9 in
  check "restricted hub sssp exact" true
    (dist_arrays_equal r.Hub_sssp.dist exact.Paths.dist);
  check "tree edges inside the restriction" true
    (List.for_all edge_ok (Tree.edges r.Hub_sssp.tree))

let prop_multi_source_prunes_at_bound =
  QCheck2.Test.make ~name:"bounded tables contain no entry beyond the bound" ~count:15
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 64 |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.2 () in
      let bound = 25.0 in
      let tables, _ = Bellman_ford.multi_source ~bound g ~srcs:[ 0; n - 1 ] in
      Array.for_all
        (fun t -> Hashtbl.fold (fun _ (d, _) acc -> acc && d <= bound +. 1e-9) t true)
        tables)

(* Fixed QCheck seed: dune runtest must be deterministic, and any
   failure replayable from the printed counterexample alone. *)
let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed1 |]) t

let () =
  Alcotest.run "ln_aspt"
    [
      ( "bellman-ford",
        [
          Alcotest.test_case "sssp" `Quick test_bf_sssp;
          qcheck prop_bf_equals_dijkstra;
          Alcotest.test_case "subgraph" `Quick test_bf_subgraph;
          Alcotest.test_case "multi-source bounded" `Quick test_multi_source_bounded;
          Alcotest.test_case "multi-source paths" `Quick test_multi_source_paths;
        ] );
      ( "hub-sssp",
        [
          Alcotest.test_case "exact" `Quick test_hub_sssp_exact;
          qcheck prop_hub_sssp_random;
          Alcotest.test_case "grid shape" `Quick test_hub_rounds_shape;
          Alcotest.test_case "subgraph" `Quick test_hub_sssp_on_subgraph;
        ] );
      ( "bf-extra",
        [
          Alcotest.test_case "init seeding" `Quick test_bf_init_seeding;
          Alcotest.test_case "no sources" `Quick test_multi_source_empty_sources;
          Alcotest.test_case "all sources" `Quick test_multi_source_all_sources;
          qcheck prop_multi_source_prunes_at_bound;
        ] );
    ]
