(* Tests for the route-oracle serving layer: tour-interval labels
   against naive root-walk answers, artifact round-trips, the
   three-tier oracle, workload determinism and the stretch
   certifier. *)

module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Paths = Ln_graph.Paths
module Gen = Ln_graph.Gen
module Mst_seq = Ln_graph.Mst_seq
module Monitor = Ln_congest.Monitor
module Rmq = Ln_route.Rmq
module Labels = Ln_route.Labels
module Artifact = Ln_route.Artifact
module Oracle = Ln_route.Oracle
module Workload = Ln_route.Workload
module Serve = Ln_route.Serve

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a)

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x2073 |]) t

(* A random rooted spanning tree presented as a graph: parent of
   vertex i is uniform in [0, i), weights uniform. *)
let random_tree rng n =
  let edges =
    List.init (n - 1) (fun i ->
        let v = i + 1 in
        {
          Graph.u = Random.State.int rng v;
          v;
          w = 0.5 +. Random.State.float rng 9.5;
        })
  in
  let g = Graph.create n edges in
  let root = Random.State.int rng n in
  (g, Tree.of_edges g ~root (List.init (Graph.m g) Fun.id))

(* Naive root-walk answers the labels must reproduce. *)
let naive_is_ancestor tree a v =
  let rec walk v = v = a || (match Tree.parent tree v with
    | Some (p, _) -> walk p
    | None -> false)
  in
  walk v

let naive_lca tree u v =
  let rec ancestors v acc =
    let acc = v :: acc in
    match Tree.parent tree v with Some (p, _) -> ancestors p acc | None -> acc
  in
  let au = ancestors u [] in
  (* Deepest vertex on v's root path that is also on u's. *)
  let rec walk v =
    if List.mem v au then v
    else match Tree.parent tree v with
      | Some (p, _) -> walk p
      | None -> assert false
  in
  walk v

(* ------------------------------------------------------------------ *)
(* Rmq. *)

let test_rmq_exhaustive () =
  let rng = Random.State.make [| 0x42; 1 |] in
  List.iter
    (fun n ->
      let values = Array.init n (fun _ -> Random.State.int rng 10) in
      let t = Rmq.build values in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let a = Rmq.argmin t i j in
          let naive = ref i in
          for k = i to j do
            if values.(k) < values.(!naive) then naive := k
          done;
          if values.(a) <> values.(!naive) then
            Alcotest.failf "rmq value mismatch on [%d,%d] (n=%d)" i j n;
          (* leftmost tie *)
          for k = i to a - 1 do
            if values.(k) = values.(a) then
              Alcotest.failf "rmq not leftmost on [%d,%d] (n=%d)" i j n
          done
        done
      done)
    [ 1; 2; 3; 7; 16; 33 ]

(* ------------------------------------------------------------------ *)
(* Labels. *)

let labels_agree_with_naive g tree =
  let labels = Labels.build tree in
  let n = Graph.n g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let a = naive_lca tree u v in
      if Labels.lca labels u v <> a then ok := false;
      if Labels.is_ancestor labels u v <> naive_is_ancestor tree u v then
        ok := false;
      if not (close (Labels.dist labels u v) (Tree.dist tree u v)) then
        ok := false;
      if
        Labels.dist_hops labels u v
        <> Tree.depth_hops tree u + Tree.depth_hops tree v
           - (2 * Tree.depth_hops tree a)
      then ok := false
    done
  done;
  !ok

let prop_labels_vs_naive =
  QCheck2.Test.make ~name:"labels = naive root-walk on random trees" ~count:40
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 0x7ab |] in
      let g, tree = random_tree rng n in
      labels_agree_with_naive g tree)

let prop_labels_routes =
  QCheck2.Test.make ~name:"label routes are valid shortest tree paths" ~count:25
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 0x70e |] in
      let _g, tree = random_tree rng n in
      let labels = Labels.build tree in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let path = Labels.route labels ~src:u ~dst:v in
          (match path with
          | [] -> ok := false
          | first :: _ ->
            if first <> u then ok := false;
            let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> u in
            if last path <> v then ok := false);
          (* Hop count is the labelled tree distance; consecutive
             vertices are tree-adjacent. *)
          if List.length path <> Labels.dist_hops labels u v + 1 then ok := false;
          let rec adjacent = function
            | a :: (b :: _ as tl) ->
              let linked =
                match Tree.parent tree a with
                | Some (p, _) when p = b -> true
                | _ -> (
                  match Tree.parent tree b with
                  | Some (p, _) -> p = a
                  | None -> false)
              in
              linked && adjacent tl
            | _ -> true
          in
          if not (adjacent path) then ok := false
        done
      done;
      !ok)

let test_labels_on_mst () =
  (* The shape the oracle actually labels: the MST of a random graph. *)
  let rng = Random.State.make [| 0x3a; 5 |] in
  let g = Gen.erdos_renyi rng ~n:48 ~p:0.15 () in
  let tree = Tree.of_edges g ~root:7 (Mst_seq.kruskal g) in
  check "labels agree on MST" true (labels_agree_with_naive g tree);
  check "single-vertex tree" true
    (let g1 = Graph.create 1 [] in
     let t1 = Tree.of_edges g1 ~root:0 [] in
     let l = Labels.build t1 in
     Labels.lca l 0 0 = 0 && close (Labels.dist l 0 0) 0.0)

let test_labels_rejects_non_spanning () =
  let g = Gen.path 4 in
  let partial = Tree.of_edges g ~root:0 [ 0; 1 ] in
  check "non-spanning tree rejected" true
    (match Labels.build partial with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Artifact. *)

let build_artifact ?(n = 40) ?(seed = 11) () =
  let rng = Random.State.make [| seed; 0xa2 |] in
  let g = Gen.erdos_renyi rng ~n ~p:0.15 () in
  let mst = Mst_seq.kruskal g in
  (* A cheap stand-in for the spanner: MST plus every third edge. *)
  let extra =
    List.filteri (fun i _ -> i mod 3 = 0) (List.init (Graph.m g) Fun.id)
  in
  Artifact.make ~graph:g ~slt_root:3 ~spanner_stretch:3.0
    ~spanner_edges:(mst @ extra) ~slt_edges:mst ~mst_edges:mst
    ~params:[ ("model", "er"); ("n", string_of_int n) ]
    ~notes:[ ("seed", string_of_int seed) ]
    ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_tmp f =
  let path = Filename.temp_file "lightnet_test" ".artifact" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_artifact_roundtrip () =
  let art = build_artifact () in
  with_tmp (fun path ->
      Artifact.save path art;
      let loaded = Artifact.load path in
      check_int "n" (Graph.n art.Artifact.graph) (Graph.n loaded.Artifact.graph);
      check_int "m" (Graph.m art.Artifact.graph) (Graph.m loaded.Artifact.graph);
      check "digest" true (art.Artifact.digest = loaded.Artifact.digest);
      check "spanner edges" true
        (art.Artifact.spanner_edges = loaded.Artifact.spanner_edges);
      check "slt edges" true (art.Artifact.slt_edges = loaded.Artifact.slt_edges);
      check "mst edges" true (art.Artifact.mst_edges = loaded.Artifact.mst_edges);
      check "params" true (art.Artifact.params = loaded.Artifact.params);
      check "notes" true (art.Artifact.notes = loaded.Artifact.notes);
      check "stretch" true
        (art.Artifact.spanner_stretch = loaded.Artifact.spanner_stretch);
      check "graph weights survive" true
        (Graph.fold_edges art.Artifact.graph
           (fun id e acc ->
             let e' = Graph.edge loaded.Artifact.graph id in
             acc && e.Graph.u = e'.Graph.u && e.Graph.v = e'.Graph.v
             && e.Graph.w = e'.Graph.w)
           true))

let test_artifact_resave_byte_identical () =
  let art = build_artifact () in
  with_tmp (fun p1 ->
      with_tmp (fun p2 ->
          Artifact.save p1 art;
          let loaded = Artifact.load p1 in
          Artifact.save p2 loaded;
          check "save -> load -> save byte-identical" true
            (read_file p1 = read_file p2)))

let test_artifact_rejects_corruption () =
  let art = build_artifact () in
  with_tmp (fun path ->
      Artifact.save path art;
      let data = Bytes.of_string (read_file path) in
      (* Flip one payload byte: the checksum must catch it. *)
      let i = Bytes.length data - 5 in
      Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      check "corrupt payload rejected" true
        (match Artifact.load path with
        | exception Failure _ -> true
        | _ -> false));
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not an artifact";
      close_out oc;
      check "bad magic rejected" true
        (match Artifact.load path with
        | exception Failure _ -> true
        | _ -> false))

let test_artifact_validates_inputs () =
  let g = Gen.path 4 in
  check "edge id out of range" true
    (match
       Artifact.make ~graph:g ~slt_root:0 ~spanner_stretch:1.0
         ~spanner_edges:[ 99 ] ~slt_edges:[] ~mst_edges:[] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "root out of range" true
    (match
       Artifact.make ~graph:g ~slt_root:9 ~spanner_stretch:1.0
         ~spanner_edges:[] ~slt_edges:[] ~mst_edges:[] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Oracle. *)

let test_oracle_tiers_agree () =
  let art = build_artifact ~n:36 () in
  let g = art.Artifact.graph in
  let oracle = Oracle.create ~cache_capacity:4 art in
  let mask = Array.make (Graph.m g) false in
  List.iter (fun e -> mask.(e) <- true) art.Artifact.spanner_edges;
  let slt_tree = Tree.of_edges g ~root:art.Artifact.slt_root art.Artifact.slt_edges in
  let pairs = Workload.generate ~seed:5 g Workload.Uniform ~count:120 in
  Array.iter
    (fun (u, v) ->
      let a = Oracle.query oracle ~tier:Oracle.Spanner u v in
      let b = Oracle.query oracle ~tier:Oracle.Label u v in
      let c = Oracle.query oracle ~tier:Oracle.Cache u v in
      let exact_h = (Paths.dijkstra ~edge_ok:(fun e -> mask.(e)) g u).Paths.dist.(v) in
      check "tier A = dijkstra on H" true (close a.Oracle.dist exact_h);
      check "tier C = tier A" true (close c.Oracle.dist a.Oracle.dist);
      check "tier B = SLT tree dist" true
        (close b.Oracle.dist (Tree.dist slt_tree u v));
      check "tier tags" true
        (a.Oracle.tier = Oracle.Spanner && b.Oracle.tier = Oracle.Label
       && c.Oracle.tier = Oracle.Cache))
    pairs

let test_oracle_cache_counters () =
  let art = build_artifact ~n:30 () in
  let oracle = Oracle.create ~cache_capacity:2 art in
  let q src = ignore (Oracle.query oracle ~tier:Oracle.Cache src ((src + 1) mod 30)) in
  q 0; q 0; q 0;            (* 1 miss, 2 hits *)
  q 1; q 2;                 (* 2 misses, second evicts src 0 *)
  q 0;                      (* miss again: it was evicted *)
  let s = Oracle.cache_stats oracle in
  check_int "hits" 2 s.Oracle.hits;
  check_int "misses" 4 s.Oracle.misses;
  check_int "evictions" 2 s.Oracle.evictions;
  check_int "entries bounded by capacity" 2 s.Oracle.entries;
  (* LRU not FIFO: touching the older entry protects it. *)
  let oracle = Oracle.create ~cache_capacity:2 art in
  let q src = ignore (Oracle.query oracle ~tier:Oracle.Cache src ((src + 1) mod 30)) in
  q 0; q 1; q 0; q 2;       (* 2 is inserted: victim must be 1, not 0 *)
  let before = (Oracle.cache_stats oracle).Oracle.hits in
  q 0;
  check_int "lru keeps the recently-touched source" (before + 1)
    (Oracle.cache_stats oracle).Oracle.hits

(* ------------------------------------------------------------------ *)
(* Workload. *)

let test_workload_deterministic () =
  let art = build_artifact () in
  let g = art.Artifact.graph in
  List.iter
    (fun spec ->
      let a = Workload.generate ~seed:9 g spec ~count:200 in
      let b = Workload.generate ~seed:9 g spec ~count:200 in
      let c = Workload.generate ~seed:10 g spec ~count:200 in
      check (Workload.describe spec ^ " same seed = same pairs") true (a = b);
      check (Workload.describe spec ^ " different seed differs") true (a <> c);
      Array.iter
        (fun (u, v) ->
          check "endpoints in range, distinct" true
            (u >= 0 && u < Graph.n g && v >= 0 && v < Graph.n g && u <> v))
        a)
    [ Workload.Uniform; Workload.Zipf 1.2; Workload.Local 2 ]

let test_workload_shapes () =
  let art = build_artifact ~n:60 () in
  let g = art.Artifact.graph in
  (* Zipf concentrates sources: the hottest source must exceed the
     uniform share by a wide margin. *)
  let pairs = Workload.generate ~seed:3 g (Workload.Zipf 1.3) ~count:2000 in
  let counts = Array.make (Graph.n g) 0 in
  Array.iter (fun (u, _) -> counts.(u) <- counts.(u) + 1) pairs;
  let hottest = Array.fold_left max 0 counts in
  check "zipf has a hot source" true (hottest > 3 * (2000 / Graph.n g));
  (* Local pairs stay within the hop radius. *)
  let radius = 2 in
  let pairs = Workload.generate ~seed:3 g (Workload.Local radius) ~count:300 in
  Array.iter
    (fun (u, v) ->
      let hops = (Paths.bfs_hops g u).(v) in
      check "local pair within radius" true (hops >= 1 && hops <= radius))
    pairs;
  check "spec parser" true
    (Workload.parse "uniform" = Some Workload.Uniform
    && Workload.parse "zipf" = Some (Workload.Zipf 1.1)
    && Workload.parse "zipf:1.5" = Some (Workload.Zipf 1.5)
    && Workload.parse "local:4" = Some (Workload.Local 4)
    && Workload.parse "nope" = None)

(* ------------------------------------------------------------------ *)
(* Serve. *)

let test_serve_checksum_replayable () =
  let art = build_artifact ~n:40 () in
  let pairs = Workload.generate ~seed:2 art.Artifact.graph (Workload.Zipf 1.1) ~count:300 in
  let run () =
    let oracle = Oracle.create ~cache_capacity:8 art in
    (Serve.run oracle ~tier:Oracle.Cache pairs).Serve.checksum
  in
  check "serve checksum replays bit-for-bit" true (run () = run ());
  let oracle = Oracle.create ~cache_capacity:8 art in
  let o = Serve.run oracle ~tier:Oracle.Label pairs in
  check_int "all queries answered" 300 o.Serve.queries;
  check "percentiles ordered" true
    (o.Serve.latency.Serve.p50_us <= o.Serve.latency.Serve.p90_us
    && o.Serve.latency.Serve.p90_us <= o.Serve.latency.Serve.p99_us
    && o.Serve.latency.Serve.p99_us <= o.Serve.latency.Serve.max_us)

let test_certify_correct_and_wrong () =
  let art = build_artifact ~n:40 () in
  let oracle = Oracle.create art in
  let pairs = Workload.generate ~seed:4 art.Artifact.graph Workload.Uniform ~count:250 in
  (* The "spanner" here contains the MST, so distances on H are finite;
     certifying against a generous bound must pass on the cache tier. *)
  let cert =
    Serve.certify oracle ~tier:Oracle.Cache ~bound:art.Artifact.spanner_stretch pairs
  in
  check "cache tier certifies" true
    (cert.Serve.report.Monitor.verdict = Monitor.Correct);
  check_int "no violations" 0 cert.Serve.violations;
  check "max stretch sane" true (cert.Serve.max_stretch >= 1.0);
  (* An impossible bound must be caught and reported as Wrong, with
     the violations counted. *)
  let too_tight = Serve.certify oracle ~tier:Oracle.Label ~bound:1.0 pairs in
  if too_tight.Serve.max_stretch > 1.0 +. 1e-6 then begin
    check "tight bound yields Wrong" true
      (too_tight.Serve.report.Monitor.verdict = Monitor.Wrong);
    check "violations counted" true (too_tight.Serve.violations > 0)
  end;
  (* Sampling caps the replayed pairs. *)
  let sampled = Serve.certify ~sample:50 oracle ~tier:Oracle.Cache ~bound:10.0 pairs in
  check_int "sample honoured" 50 sampled.Serve.sampled

(* Pin the tiny-batch latency contract: batches at or under
   Serve.exact_threshold report *exact* sorted-array percentiles (the
   rank-ceil(p*n) definition BENCH_oracle.json has always used), and
   the streaming histogram path used above the threshold agrees with
   the exact values to within its relative-error bound. *)
let test_latency_exact_fallback () =
  check_int "exact threshold pinned" 1024 Serve.exact_threshold;
  let lat = Serve.latency_of_samples [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  check "p50 = rank 3 of 5" true (lat.Serve.p50_us = 3.0);
  check "p90 = rank 5 of 5" true (lat.Serve.p90_us = 5.0);
  check "p99 = rank 5 of 5" true (lat.Serve.p99_us = 5.0);
  check "max exact" true (lat.Serve.max_us = 5.0);
  let one = Serve.latency_of_samples [| 7.5 |] in
  check "singleton batch is its own percentile" true
    (one.Serve.p50_us = 7.5 && one.Serve.p99_us = 7.5 && one.Serve.max_us = 7.5);
  let n = 10_000 in
  let samples = Array.init n (fun i -> float_of_int (1 + ((i * 7919) mod n))) in
  let h = Ln_obs.Metrics.Hist.create () in
  Array.iter (Ln_obs.Metrics.Hist.observe h) samples;
  let exact = Serve.latency_of_samples samples in
  let stream = Serve.latency_of_hist h in
  let close a b = Float.abs (a -. b) <= 1.05 *. Ln_obs.Metrics.Hist.error h *. b in
  check "streaming p50 within bound" true (close stream.Serve.p50_us exact.Serve.p50_us);
  check "streaming p90 within bound" true (close stream.Serve.p90_us exact.Serve.p90_us);
  check "streaming p99 within bound" true (close stream.Serve.p99_us exact.Serve.p99_us);
  check "streaming max is exact" true (stream.Serve.max_us = exact.Serve.max_us)

let () =
  Alcotest.run "ln_route"
    [
      ("rmq", [ Alcotest.test_case "exhaustive vs naive" `Quick test_rmq_exhaustive ]);
      ( "labels",
        [
          qcheck prop_labels_vs_naive;
          qcheck prop_labels_routes;
          Alcotest.test_case "labels on MST + singleton" `Quick test_labels_on_mst;
          Alcotest.test_case "rejects non-spanning" `Quick
            test_labels_rejects_non_spanning;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "resave byte-identical" `Quick
            test_artifact_resave_byte_identical;
          Alcotest.test_case "rejects corruption" `Quick
            test_artifact_rejects_corruption;
          Alcotest.test_case "validates inputs" `Quick test_artifact_validates_inputs;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "tiers agree" `Quick test_oracle_tiers_agree;
          Alcotest.test_case "cache counters + lru" `Quick test_oracle_cache_counters;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
        ] );
      ( "serve",
        [
          Alcotest.test_case "checksum replayable" `Quick
            test_serve_checksum_replayable;
          Alcotest.test_case "tiny-batch latency exact" `Quick
            test_latency_exact_fallback;
          Alcotest.test_case "certify correct + wrong" `Quick
            test_certify_correct_and_wrong;
        ] );
    ]
