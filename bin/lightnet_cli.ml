(* Command-line interface: generate a network, run one of the paper's
   constructions, print a quality report and the round ledger.

     lightnet spanner  --n 200 --model er --k 2 --epsilon 0.25
     lightnet slt      --n 150 --model clustered --root 0 --epsilon 0.5
     lightnet net      --n 100 --radius 50 --delta 0.5
     lightnet doubling --n 100 --model geo --epsilon 0.4
     lightnet estimate --n 120 --alpha 2.0 *)

open Lightnet

let make_graph ?input ~model ~n ~seed () =
  match input with
  | Some path -> Graph_io.load_graph path
  | None ->
  let rng = Random.State.make [| seed; 0xc11 |] in
  match model with
  | "er" -> Gen.erdos_renyi rng ~n ~p:(8.0 /. float_of_int n) ()
  | "dense" -> Gen.erdos_renyi rng ~n ~p:0.3 ()
  | "geo" -> fst (Gen.random_geometric rng ~n ~radius:(2.0 /. Float.sqrt (float_of_int n)) ())
  | "grid" ->
    let side = int_of_float (Float.sqrt (float_of_int n)) in
    Gen.grid rng ~rows:side ~cols:side ()
  | "path" -> Gen.path n
  | "clustered" -> Gen.clustered rng ~clusters:(max 2 (n / 25)) ~size:25 ~p_in:0.3 ~p_out:0.02 ()
  | "heavy" -> Gen.heavy_tailed rng ~n ~p:(8.0 /. float_of_int n) ()
  | m -> Fmt.failwith "unknown model %S (er|dense|geo|grid|path|clustered|heavy)" m

let report_common g =
  Format.printf "network: %a, hop-diameter %d, MST weight %.1f@." Graph.pp g
    (Graph.hop_diameter g) (Mst_seq.weight g)

open Cmdliner

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "input" ] ~docv:"FILE" ~doc:"Read the graph from a DIMACS-like file instead of generating one.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output" ] ~docv:"FILE" ~doc:"Write the resulting edge set (edge ids) to FILE.")

(* The long alias makes the conventional [--n 200] spelling work:
   cmdliner resolves it as an unambiguous prefix of [--nodes]. *)
let n_arg =
  Arg.(value & opt int 150 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of vertices.")

let model_arg =
  Arg.(
    value & opt string "er"
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Graph model: er, dense, geo, grid, path, clustered, heavy.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let ledger_arg =
  Arg.(value & flag & info [ "ledger" ] ~doc:"Print the per-phase round ledger.")

let domains_arg =
  let env =
    Cmd.Env.info "LIGHTNET_DOMAINS"
      ~doc:"Default engine domain count (same as $(b,--domains))."
  in
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N" ~env
        ~doc:
          "Run the CONGEST engine on N OCaml domains (parallel backend). \
           Results are byte-identical for every N; only wall time changes.")

(* Install the parallel backend for the dynamic extent of [f]. 1 keeps
   the default sequential fast engine. *)
let with_domains domains f =
  if domains < 1 then Fmt.failwith "--domains must be >= 1 (got %d)" domains
  else if domains = 1 then f ()
  else Engine.with_backend (Engine.Par domains) f

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record telemetry (phase spans, per-round timeseries, link loads) \
           and write it to FILE: Chrome trace-event JSON (open in Perfetto) \
           by default, the JSONL event log if FILE ends in .jsonl. Inspect \
           with $(b,lightnet report).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the metrics registry for this run and write a snapshot to \
           FILE on completion: the deterministic JSON snapshot if FILE ends \
           in .json, Prometheus text exposition otherwise. Inspect or \
           validate with $(b,lightnet metrics).")

(* Run [f] under the requested observability sinks. --metrics turns
   the registry on before the run and writes the snapshot after it;
   --trace records telemetry exactly as before. Given both, the
   snapshot is also embedded into the Chrome trace as counter tracks.
   All files are written before control returns, so callers may exit
   non-zero afterwards. *)
let with_obs trace metrics f =
  let traced () =
    match trace with
    | None -> f ()
    | Some path ->
      let v, t = Telemetry.record f in
      let msnap = Option.map (fun _ -> Metrics.snapshot ()) metrics in
      Telemetry.write_file ?metrics:msnap t path;
      Format.printf
        "trace: %d events over %d engine rounds -> %s (leaf coverage %.1f%%)@."
        (List.length t.Telemetry.events)
        t.Telemetry.rounds path
        (100.0 *. Telemetry.leaf_round_coverage t);
      v
  in
  match metrics with
  | None -> traced ()
  | Some path ->
    Metrics.set_on true;
    let v = traced () in
    let snap = Metrics.snapshot () in
    Metrics.write_file snap path;
    Format.printf "metrics: %d series -> %s@." (List.length snap) path;
    v

let spanner_cmd =
  let run n model seed k epsilon ledger input output trace metrics domains =
    let g = make_graph ?input ~model ~n ~seed () in
    report_common g;
    let sp, q =
      with_domains domains (fun () ->
          with_obs trace metrics (fun () -> Quick.light_spanner ~seed ~epsilon g ~k))
    in
    Format.printf "light spanner: %a@." Quick.pp_quality q;
    Format.printf "  promised: stretch <= %.2f@." sp.Light_spanner.stretch_bound;
    Format.printf "  buckets: %d in case 1, %d in case 2; E' edges %d@."
      sp.Light_spanner.buckets_case1 sp.Light_spanner.buckets_case2
      sp.Light_spanner.light_bucket_edges;
    (match output with
    | Some path ->
      Graph_io.save_edge_set path sp.Light_spanner.edges;
      Format.printf "edge set written to %s@." path
    | None -> ());
    if ledger then Format.printf "%a@." Ledger.pp sp.Light_spanner.ledger
  in
  let k_arg =
    (* [--k] works as a prefix of [--k-stretch]. *)
    Arg.(value & opt int 2 & info [ "k"; "k-stretch" ] ~doc:"Stretch parameter k.")
  in
  let eps_arg = Arg.(value & opt float 0.25 & info [ "epsilon" ] ~doc:"Epsilon.") in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Build the Section-5 light spanner (Table 1 row 1).")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ k_arg $ eps_arg $ ledger_arg
      $ input_arg $ output_arg $ trace_arg $ metrics_arg $ domains_arg)

let slt_cmd =
  let run n model seed root epsilon gamma ledger trace metrics domains =
    let g = make_graph ~model ~n ~seed () in
    report_common g;
    let rng = Random.State.make [| seed; 0x51 |] in
    let t =
      with_domains domains (fun () ->
          with_obs trace metrics (fun () ->
              match gamma with
              | Some gamma -> Slt.build_light ~rng g ~rt:root ~gamma
              | None -> Slt.build ~rng g ~rt:root ~epsilon))
    in
    Format.printf "SLT: stretch %.3f (promised %.1f), lightness %.3f (promised %.2f)@."
      (Stats.tree_root_stretch g t.Slt.tree ~root)
      t.Slt.stretch_bound
      (Stats.lightness g t.Slt.edges)
      t.Slt.lightness_bound;
    if ledger then Format.printf "%a@." Ledger.pp t.Slt.ledger
  in
  let root_arg = Arg.(value & opt int 0 & info [ "root" ] ~doc:"Root vertex.") in
  let eps_arg = Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"Epsilon.") in
  let gamma_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "gamma" ] ~doc:"Use the lightness-1+gamma regime (BFN16).")
  in
  Cmd.v
    (Cmd.info "slt" ~doc:"Build the Section-4 shallow-light tree (Table 1 row 2).")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ root_arg $ eps_arg $ gamma_arg
      $ ledger_arg $ trace_arg $ metrics_arg $ domains_arg)

let net_cmd =
  let run n model seed radius delta ledger trace metrics domains =
    let g = make_graph ~model ~n ~seed () in
    report_common g;
    let net =
      with_domains domains (fun () ->
          with_obs trace metrics (fun () -> Quick.net ~seed ~delta g ~radius))
    in
    Format.printf
      "net: %d points in %d iterations; covering <= %.2f, separation > %.2f@."
      (List.length net.Net.points) net.Net.iterations net.Net.covering_bound
      net.Net.separation_bound;
    Format.printf "properties verified: %b@."
      (Net.is_net g ~covering:net.Net.covering_bound
         ~separation:net.Net.separation_bound net.Net.points);
    let greedy = Greedy_net.build g ~radius in
    Format.printf "greedy baseline: %d points@." (List.length greedy);
    if ledger then Format.printf "%a@." Ledger.pp net.Net.ledger
  in
  let radius_arg = Arg.(value & opt float 50.0 & info [ "radius" ] ~doc:"Delta.") in
  let delta_arg = Arg.(value & opt float 0.5 & info [ "delta" ] ~doc:"Slack delta.") in
  Cmd.v
    (Cmd.info "net" ~doc:"Build a Section-6 (alpha,beta)-net (Table 1 row 3).")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ radius_arg $ delta_arg
      $ ledger_arg $ trace_arg $ metrics_arg $ domains_arg)

let doubling_cmd =
  let run n model seed epsilon ledger trace metrics domains =
    let g = make_graph ~model ~n ~seed () in
    report_common g;
    let sp, q =
      with_domains domains (fun () ->
          with_obs trace metrics (fun () -> Quick.doubling_spanner ~seed ~epsilon g))
    in
    Format.printf "doubling spanner: %a (%d scales, max table %d)@." Quick.pp_quality q
      sp.Doubling_spanner.scales sp.Doubling_spanner.max_table;
    if ledger then Format.printf "%a@." Ledger.pp sp.Doubling_spanner.ledger
  in
  let eps_arg = Arg.(value & opt float 0.4 & info [ "epsilon" ] ~doc:"Epsilon.") in
  Cmd.v
    (Cmd.info "doubling"
       ~doc:"Build the Section-7 doubling-graph spanner (Table 1 row 4).")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ eps_arg $ ledger_arg
      $ trace_arg $ metrics_arg $ domains_arg)

let estimate_cmd =
  let run n model seed alpha trace metrics domains =
    let g = make_graph ~model ~n ~seed () in
    report_common g;
    let rng = Random.State.make [| seed; 0xe5 |] in
    let est =
      with_domains domains (fun () ->
          with_obs trace metrics (fun () ->
              let bfs =
                Telemetry.span "bfs-tree" (fun () -> fst (Bfs.tree g ~root:0))
              in
              Mst_weight.estimate ~rng g ~bfs ~alpha))
    in
    let l = Mst_seq.weight g in
    Format.printf "Psi = %.1f; Psi/L = %.2f (guaranteed in [1, %.1f]); %d levels@."
      est.Mst_weight.psi (est.Mst_weight.psi /. l) est.Mst_weight.upper_factor
      (List.length est.Mst_weight.levels)
  in
  let alpha_arg = Arg.(value & opt float 2.0 & info [ "alpha" ] ~doc:"Alpha.") in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Section-8 net-based MST weight estimation.")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ alpha_arg $ trace_arg
      $ metrics_arg $ domains_arg)

(* Chaos runs: build a deterministic fault plan from --fault-seed,
   drive an algorithm through it, certify the result with Monitor, and
   exit non-zero on a Round_limit outcome or a Wrong verdict — so a
   chaos invocation in CI fails loudly and its log line (seeds + plan
   description in the ledger) replays the exact run. *)
let chaos_cmd =
  let run n model seed algo drop_prob drop_until crash_nodes link_fails
      fault_seed reliable max_retries ledger trace metrics domains =
    let g = make_graph ~model ~n ~seed () in
    report_common g;
    let n = Graph.n g in
    let root = 0 in
    let frng = Random.State.make [| fault_seed; 0xfa |] in
    let crashes =
      List.init crash_nodes (fun _ ->
          (1 + Random.State.int frng (n - 1), Random.State.int frng 10))
    in
    let link_failures =
      if Graph.m g = 0 then []
      else
        List.init link_fails (fun _ ->
            {
              Fault.edge = Random.State.int frng (Graph.m g);
              from_round = Random.State.int frng 5;
              until_round =
                (if Random.State.bool frng then None
                 else Some (5 + Random.State.int frng 20));
            })
    in
    let drop_until = Option.value drop_until ~default:max_int in
    let plan =
      Fault.make ~drop_prob ~drop_until ~link_failures ~crashes
        ~seed:fault_seed ()
    in
    Format.printf "fault plan: %s@." (Fault.describe plan);
    let lg = Ledger.create () in
    Ledger.note lg ~label:"graph-seed" (string_of_int seed);
    Ledger.note lg ~label:"fault-seed" (string_of_int fault_seed);
    Ledger.note lg ~label:"fault-plan" (Fault.describe plan);
    if domains > 1 then
      Ledger.note lg ~label:"domains" (string_of_int domains);
    let before = Engine.snapshot_totals () in
    (* Record only around the faulty run itself; the trace is written
       before the non-zero exits below. *)
    let stats, report =
      with_domains domains @@ fun () ->
      with_obs trace metrics @@ fun () ->
      (* One span over the whole chaotic run, so the trace's phase tree
         attributes the rounds even for the uninstrumented raw
         protocols. *)
      Telemetry.span ("chaos/" ^ algo) @@ fun () ->
      match algo with
      | "bfs" ->
        let dist, stats =
          if reliable then Bfs.layers_reliable ~max_retries ~faults:plan g ~root
          else Bfs.layers ~faults:plan g ~root
        in
        (stats, Monitor.bfs g plan ~root ~dist)
      | "broadcast" ->
        let value = 42 in
        let got, stats =
          if reliable then
            Broadcast.flood_reliable ~max_retries ~faults:plan g ~root ~value
          else Broadcast.flood ~faults:plan g ~root ~value
        in
        (stats, Monitor.broadcast g plan ~root ~value ~got)
      | "mst" -> (
        (* The MST pipeline has no ARQ wrapper yet: run it under the
           ambient plan and let the certifier (or an exception) tell
           us how it coped. *)
        try
          let mst =
            Engine.with_faults ~max_rounds:100_000 plan (fun () ->
                Dist_mst.run ~root g)
          in
          Ledger.merge lg ~prefix:"mst" mst.Dist_mst.ledger;
          let stats =
            let p = Engine.totals_since before in
            (* Aggregated over the pipeline's many engine runs; any
               sub-run that hit the 100k `Mark cap pushes the rounds
               total past it, so flag that as a round-limit. *)
            Engine.
              {
                rounds = p.rounds;
                messages = p.messages;
                total_words = p.words;
                max_edge_load = 0;
                outcome =
                  (if p.rounds >= 100_000 then Round_limit else Converged);
                dropped_messages = p.dropped_messages;
                retransmissions = p.retransmissions;
              }
          in
          (stats, Monitor.spanning_forest g plan ~edges:mst.Dist_mst.mst_edges)
        with e ->
          ( Engine.
              {
                rounds = 0;
                messages = 0;
                total_words = 0;
                max_edge_load = 0;
                outcome = Round_limit;
                dropped_messages = 0;
                retransmissions = 0;
              },
            Monitor.
              {
                verdict = Wrong;
                detail = "raised " ^ Printexc.to_string e;
              } ))
      | a -> Fmt.failwith "unknown algo %S (bfs|broadcast|mst)" a
    in
    Ledger.attach_perf lg (Engine.totals_since before);
    (* Registry-to-ledger bridge: any histogram series observed during
       the run lands in the printed ledger as a metrics/ note. *)
    if Metrics.on () then Telemetry.note_metrics lg (Metrics.snapshot ());
    (if domains > 1 then
       let peaks = Engine.par_arena_peaks () in
       if Array.length peaks > 0 then
         Ledger.note lg ~label:"par-arena-peaks"
           (String.concat ","
              (Array.to_list (Array.map string_of_int peaks))));
    Format.printf "run: %a@." Engine.pp_stats stats;
    Format.printf "verdict: %a@." Monitor.pp report;
    if ledger then Format.printf "%a@." Ledger.pp lg;
    if report.Monitor.verdict = Monitor.Wrong then Stdlib.exit 3;
    if stats.Engine.outcome = Engine.Round_limit then Stdlib.exit 2
  in
  let algo_arg =
    Arg.(
      value & opt string "bfs"
      & info [ "algo" ] ~docv:"ALGO" ~doc:"Algorithm: bfs, broadcast, mst.")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.1
      & info [ "drop-prob" ] ~doc:"Per-message drop probability in [0,1).")
  in
  let drop_until_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "drop-until" ]
          ~doc:"Stop random drops after this round (default: never).")
  in
  let crash_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-nodes" ] ~doc:"Number of crash-stop node failures.")
  in
  let link_arg =
    Arg.(
      value & opt int 0
      & info [ "link-fails" ] ~doc:"Number of scheduled link failures.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~doc:"Seed for the fault plan (replayable).")
  in
  let reliable_arg =
    Arg.(
      value & flag
      & info [ "reliable" ]
          ~doc:"Wrap the algorithm with the stop-and-wait ARQ combinator.")
  in
  let retries_arg =
    Arg.(
      value & opt int 32
      & info [ "max-retries" ] ~doc:"ARQ retries before declaring a link dead.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run an algorithm under a deterministic fault plan and certify the \
          outcome (exit 2: round limit, exit 3: wrong result).")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ algo_arg $ drop_arg
      $ drop_until_arg $ crash_arg $ link_arg $ fault_seed_arg $ reliable_arg
      $ retries_arg $ ledger_arg $ trace_arg $ metrics_arg $ domains_arg)

(* Artifact pipeline: `build-artifact` runs the constructions once and
   persists everything the serving side needs; `serve` never rebuilds
   — it loads, answers a workload on the chosen tier, and optionally
   certifies the answered stretch against exact distances (exit 3 on a
   Wrong verdict, mirroring chaos). *)
let build_artifact_cmd =
  let run n model seed input k epsilon slt_epsilon root output trace metrics
      domains =
    let g = make_graph ?input ~model ~n ~seed () in
    report_common g;
    let sp, q, slt =
      with_domains domains (fun () ->
          with_obs trace metrics (fun () ->
              let sp, q = Quick.light_spanner ~seed ~epsilon g ~k in
              let rng = Random.State.make [| seed; 0x51 |] in
              let slt = Slt.build ~rng g ~rt:root ~epsilon:slt_epsilon in
              (sp, q, slt)))
    in
    let mst = Mst_seq.kruskal g in
    let params =
      [
        ("model", model);
        ("n", string_of_int (Graph.n g));
        ("seed", string_of_int seed);
        ("k", string_of_int k);
        ("epsilon", string_of_float epsilon);
        ("slt-epsilon", string_of_float slt_epsilon);
        ("slt-root", string_of_int root);
      ]
      @ (match input with Some p -> [ ("input", p) ] | None -> [])
    in
    let prefix p = List.map (fun (l, v) -> (p ^ "/" ^ l, v)) in
    let notes =
      prefix "spanner" (Ledger.notes sp.Light_spanner.ledger)
      @ prefix "slt" (Ledger.notes slt.Slt.ledger)
    in
    let art =
      Artifact.make ~graph:g ~slt_root:root
        ~spanner_stretch:sp.Light_spanner.stretch_bound
        ~spanner_edges:sp.Light_spanner.edges ~slt_edges:slt.Slt.edges
        ~mst_edges:mst ~params ~notes ()
    in
    Artifact.save output art;
    Format.printf "spanner: %a@." Quick.pp_quality q;
    Format.printf "%a@." Artifact.pp art;
    Format.printf "artifact written to %s (%d bytes)@." output
      (let st = Unix.stat output in
       st.Unix.st_size)
  in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k"; "k-stretch" ] ~doc:"Spanner stretch parameter k.")
  in
  let eps_arg =
    Arg.(value & opt float 0.25 & info [ "epsilon" ] ~doc:"Spanner epsilon.")
  in
  let slt_eps_arg =
    Arg.(value & opt float 0.5 & info [ "slt-epsilon" ] ~doc:"SLT epsilon.")
  in
  let root_arg =
    Arg.(value & opt int 0 & info [ "root" ] ~doc:"SLT root vertex.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output" ] ~docv:"FILE" ~doc:"Artifact destination file.")
  in
  Cmd.v
    (Cmd.info "build-artifact"
       ~doc:
         "Build the light spanner, SLT and MST once and persist them as a \
          versioned binary artifact for $(b,lightnet serve).")
    Term.(
      const run $ n_arg $ model_arg $ seed_arg $ input_arg $ k_arg $ eps_arg
      $ slt_eps_arg $ root_arg $ out_arg $ trace_arg $ metrics_arg
      $ domains_arg)

(* One artifact (positional FILE) or a whole store (--store DIR): the
   single-artifact path runs Serve.run as before; the store path
   resolves a Zipf-over-networks workload through the oracle LRU and
   shards the batch across domains with Fleet.run. --certify replays
   a sample per network either way (exit 3 on a Wrong verdict). *)
let serve_cmd =
  let run file store queries workload tier cache seed certify stretch sample
      domains net_skew capacity checksum_out metrics metrics_every =
    let spec =
      match Workload.parse workload with
      | Some s -> s
      | None ->
        Fmt.failwith "unknown workload %S (uniform|zipf[:S]|local[:R])" workload
    in
    let tier =
      match Oracle.tier_of_string tier with
      | Some t -> t
      | None -> Fmt.failwith "unknown tier %S (spanner|label|cache)" tier
    in
    let sample = if sample <= 0 then None else Some sample in
    let serve_one file =
      let art = Artifact.load file in
      Format.printf "%a@." Artifact.pp art;
      (* --metrics-every rewrites the metrics file mid-batch, giving a
         scraper a live file to poll; the final snapshot from with_obs
         then overwrites it once the batch completes. *)
      let on_snapshot =
        match metrics with
        | Some path when metrics_every > 0 ->
          Some (fun snap -> Metrics.write_file snap path)
        | _ -> None
      in
      with_obs None metrics @@ fun () ->
      let oracle = Oracle.create ~cache_capacity:cache art in
      let pairs =
        Workload.generate ~seed art.Artifact.graph spec ~count:queries
      in
      Format.printf "workload: %s, %d queries, seed %d@."
        (Workload.describe spec) queries seed;
      let outcome =
        Serve.run ~snapshot_every:metrics_every ?on_snapshot oracle ~tier pairs
      in
      Format.printf "%a@." Serve.pp_outcome outcome;
      if certify then begin
        let bound =
          match stretch with
          | Some t -> t
          | None -> art.Artifact.spanner_stretch
        in
        let cert = Serve.certify ?sample oracle ~tier ~bound pairs in
        Format.printf "certificate: %a@." Serve.pp_certificate cert;
        cert.Serve.report.Monitor.verdict = Monitor.Wrong
      end
      else false
    in
    let serve_store dir =
      let st = Store.open_dir ~capacity ~cache_capacity:cache dir in
      let s = Store.stats st in
      Format.printf "store %s: %d ready, %d quarantined (LRU capacity %d)@." dir
        s.Store.ready s.Store.quarantined capacity;
      (* Generating the workload resolves each requested network once,
         warming the store before the registry turns on; Fleet.run
         reports LRU deltas over its own batch either way. *)
      let requests = Fleet.workload ~seed ~net_skew st spec ~count:queries in
      Format.printf "workload: %s over %d network(s) (net skew %g), %d \
                     queries, seed %d@."
        (Workload.describe spec) s.Store.ready net_skew queries seed;
      with_obs None metrics @@ fun () ->
      let outcome = Fleet.run ~domains st ~tier requests in
      Format.printf "%a@." Fleet.pp_outcome outcome;
      List.iter
        (fun (n : Fleet.net_outcome) ->
          Format.printf "  %s: %d queries, checksum %.17g@." n.Fleet.digest
            n.Fleet.queries n.Fleet.checksum)
        outcome.Fleet.nets;
      (match checksum_out with
      | None -> ()
      | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Fleet.checksum_lines outcome));
        Format.printf "checksums -> %s@." path);
      if certify then
        List.fold_left
          (fun failed (n : Fleet.net_outcome) ->
            let bad =
              match Store.oracle st n.Fleet.digest with
              | Error why ->
                Format.printf "certificate %s: ERROR %s@." n.Fleet.digest why;
                true
              | Ok oracle ->
                let art = Oracle.artifact oracle in
                let pairs =
                  Array.to_list requests
                  |> List.filter_map (fun (r : Fleet.request) ->
                         if r.Fleet.net = n.Fleet.digest then
                           Some (r.Fleet.u, r.Fleet.v)
                         else None)
                  |> Array.of_list
                in
                let bound =
                  match stretch with
                  | Some t -> t
                  | None -> art.Artifact.spanner_stretch
                in
                let cert = Serve.certify ?sample oracle ~tier ~bound pairs in
                Format.printf "certificate %s: %a@." n.Fleet.digest
                  Serve.pp_certificate cert;
                cert.Serve.report.Monitor.verdict = Monitor.Wrong
            in
            bad || failed)
          false outcome.Fleet.nets
      else false
    in
    let failed_cert =
      match (file, store) with
      | Some _, Some _ ->
        Fmt.failwith "give either an ARTIFACT file or --store DIR, not both"
      | None, None -> Fmt.failwith "give an ARTIFACT file or --store DIR"
      | Some file, None ->
        if domains <> 1 then
          Fmt.failwith "--domains needs --store (one artifact serves on one domain)";
        serve_one file
      | None, Some dir -> serve_store dir
    in
    if failed_cert then Stdlib.exit 3
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT"
          ~doc:
            "Artifact file written by build-artifact (or serve a whole \
             $(b,--store) instead).")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Serve every artifact in the store at DIR (see $(b,lightnet \
             store)) instead of a single file; requests pick networks \
             Zipf($(b,--net-skew))-style and the batch is sharded over \
             $(b,--domains).")
  in
  let net_skew_arg =
    Arg.(
      value & opt float 1.1
      & info [ "net-skew" ] ~docv:"S"
          ~doc:
            "With --store: Zipf exponent of the over-networks distribution \
             (0 = uniform).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 8
      & info [ "capacity" ] ~docv:"K"
          ~doc:"With --store: how many loaded oracles the store LRU holds.")
  in
  let checksum_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checksum-out" ] ~docv:"FILE"
          ~doc:
            "With --store: write the per-network and total answered-distance \
             checksums to FILE — byte-identical at every --domains count.")
  in
  let queries_arg =
    Arg.(value & opt int 1000 & info [ "queries" ] ~doc:"Number of queries.")
  in
  let workload_arg =
    Arg.(
      value & opt string "zipf"
      & info [ "workload" ] ~docv:"SPEC"
          ~doc:"Workload shape: uniform, zipf[:S] (skew S), local[:R] (hop radius R).")
  in
  let tier_arg =
    Arg.(
      value & opt string "cache"
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "Query tier: spanner (exact Dijkstra on H per query), label \
             (O(1) SLT tree labels), cache (Dijkstra-on-H through the \
             single-source LRU).")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"CAP" ~doc:"Source-cache capacity (tier: cache).")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Replay a sample of answers against exact distances on G and \
             fail (exit 3) if any exceeds the stretch bound.")
  in
  let stretch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "stretch" ] ~docv:"T"
          ~doc:
            "Certification bound (default: the artifact's promised spanner \
             stretch; set explicitly when certifying the label tier).")
  in
  let sample_arg =
    Arg.(
      value & opt int 256
      & info [ "sample" ]
          ~doc:"How many answers to certify (0 = the whole workload).")
  in
  let every_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:
            "With $(b,--metrics): rewrite the metrics file after every N \
             answered queries, so an external scraper sees live counters \
             mid-batch (0 = only on completion).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a distance-query workload from one artifact (positional \
          FILE) or a whole $(b,--store) of them across $(b,--domains) \
          domains, reporting throughput, latency percentiles and (with \
          --certify) a stretch certificate per network.")
    Term.(
      const run $ file_arg $ store_arg $ queries_arg $ workload_arg $ tier_arg
      $ cache_arg $ seed_arg $ certify_arg $ stretch_arg $ sample_arg
      $ domains_arg $ net_skew_arg $ capacity_arg $ checksum_out_arg
      $ metrics_arg $ every_arg)

(* Store maintenance. Every subcommand exits 0 on a healthy store;
   verify (and add, on unreadable inputs) exits 1 so CI can gate on
   store integrity the same way it gates on `lightnet metrics`. *)
let store_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir"; "store" ] ~docv:"DIR" ~doc:"Store directory.")
  in
  let open_store dir = Store.open_dir dir in
  let ls_cmd =
    let run dir =
      let st = open_store dir in
      List.iter
        (fun (e : Store.entry) ->
          Format.printf "%s  %8d bytes  %s@." e.Store.digest e.Store.bytes
            (match e.Store.status with
            | Store.Ready -> "ready"
            | Store.Quarantined why -> "QUARANTINED: " ^ why))
        (Store.ls st);
      let s = Store.stats st in
      Format.printf "store %s: %d ready, %d quarantined@." dir s.Store.ready
        s.Store.quarantined
    in
    Cmd.v
      (Cmd.info "ls" ~doc:"List every artifact in the store with its status.")
      Term.(const run $ dir_arg)
  in
  let add_cmd =
    let run dir files =
      let st = open_store dir in
      let failed =
        List.fold_left
          (fun failed file ->
            match Store.add st file with
            | Ok (digest, `Added) ->
              Format.printf "added %s (from %s)@." digest file;
              failed
            | Ok (digest, `Duplicate) ->
              Format.printf "duplicate %s (from %s)@." digest file;
              failed
            | Error why ->
              Format.printf "ERROR %s: %s@." file why;
              true)
          false files
      in
      if failed then Stdlib.exit 1
    in
    let files_arg =
      Arg.(
        non_empty & pos_all string []
        & info [] ~docv:"FILE" ~doc:"Artifact files written by build-artifact.")
    in
    Cmd.v
      (Cmd.info "add"
         ~doc:
           "Validate artifact files and ingest them under their canonical \
            digest names (idempotent; exit 1 on an invalid input).")
      Term.(const run $ dir_arg $ files_arg)
  in
  let verify_cmd =
    let run dir =
      let st = open_store dir in
      let results = Store.verify st in
      let failed =
        List.fold_left
          (fun failed (digest, r) ->
            match r with
            | Ok () ->
              Format.printf "%s OK@." digest;
              failed
            | Error why ->
              Format.printf "%s FAILED: %s@." digest why;
              true)
          false results
      in
      Format.printf "verified %d artifact(s)@." (List.length results);
      if failed then Stdlib.exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Re-read every artifact end to end (format, checksum, digest); \
            quarantine and exit 1 on any failure.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let run dir =
      let st = open_store dir in
      let n = Store.gc st in
      Format.printf "gc: removed %d quarantined artifact(s)@." n
    in
    Cmd.v
      (Cmd.info "gc" ~doc:"Delete quarantined artifact files from the store.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Manage a digest-keyed artifact store (the $(b,serve --store) \
          substrate): list, ingest, verify, collect.")
    [ ls_cmd; add_cmd; verify_cmd; gc_cmd ]

(* Scenario suite: load declarative .scn files, execute each through
   the engine stack and print its per-assertion table. A scenario that
   fails its assertions is a violation unless named in
   --expect-violation (in which case *passing* is the violation: the
   fixture exists to prove the harness can fail). Any violation exits
   5, so CI runs the whole committed suite in one invocation. *)
let scenario_cmd =
  let run files dir expect json_path trace metrics domains =
    let from_dir =
      match dir with
      | None -> []
      | Some d ->
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".scn")
        |> List.sort compare
        |> List.map (Filename.concat d)
    in
    let files = files @ from_dir in
    if files = [] then
      Fmt.failwith "no scenarios: give FILE... and/or --dir DIR";
    let outcomes =
      with_domains domains @@ fun () ->
      with_obs trace metrics @@ fun () ->
      List.map
        (fun path ->
          let name = Filename.remove_extension (Filename.basename path) in
          match Scenario_runner.run (Scenario.load path) with
          | r ->
            Format.printf "%a@." Scenario_runner.pp r;
            (name, Ok r)
          | exception (Failure m | Invalid_argument m | Sys_error m) ->
            Format.printf "scenario %s: ERROR %s@." name m;
            (name, Error m))
        files
    in
    (match json_path with
    | None -> ()
    | Some p ->
      let oc = open_out p in
      output_string oc "[\n";
      List.iteri
        (fun i (name, o) ->
          if i > 0 then output_string oc ",\n";
          match o with
          | Ok r -> output_string oc (Scenario_runner.json r)
          | Error m ->
            output_string oc
              (Printf.sprintf "{\"name\":%S,\"ok\":false,\"error\":%S}" name m))
        outcomes;
      output_string oc "\n]\n";
      close_out oc;
      Format.printf "wrote %s@." p);
    let violations =
      List.filter_map
        (fun (name, o) ->
          let expected = List.mem name expect in
          let passed =
            match o with Ok r -> r.Scenario_runner.ok | Error _ -> false
          in
          match (passed, expected) with
          | true, true -> Some (name ^ " (expected a violation, but it passed)")
          | false, false -> Some name
          | _ -> None)
        outcomes
    in
    List.iter (fun v -> Format.printf "VIOLATION: %s@." v) violations;
    Format.printf "scenarios: %d run, %d violation%s@." (List.length outcomes)
      (List.length violations)
      (if List.length violations = 1 then "" else "s");
    if violations <> [] then Stdlib.exit 5
  in
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Scenario files (.scn).")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Also run every .scn file in DIR (sorted by name).")
  in
  let expect_arg =
    Arg.(
      value & opt_all string []
      & info [ "expect-violation" ] ~docv:"NAME"
          ~doc:
            "Scenario NAME is expected to fail its assertions; it passing is \
             then the violation. Repeatable.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write per-scenario verdicts, rounds, drops, retransmissions and \
             SLO margins to FILE as a JSON array.")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Run declarative chaos scenarios and judge their SLO assertions \
          (exit 5 on any violation: a scenario failing, or an \
          $(b,--expect-violation) scenario passing).")
    Term.(
      const run $ files_arg $ dir_arg $ expect_arg $ json_arg $ trace_arg
      $ metrics_arg $ domains_arg)

let report_cmd =
  let run file min_coverage =
    let t = Telemetry.load_file file in
    Format.printf "%a" Telemetry.pp_report t;
    match min_coverage with
    | None -> ()
    | Some thr ->
      let c = Telemetry.leaf_round_coverage t in
      if c < thr then begin
        Format.printf "FAIL: leaf span coverage %.3f below required %.3f@." c thr;
        Stdlib.exit 4
      end
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by --trace (.json or .jsonl).")
  in
  let cov_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-coverage" ] ~docv:"FRACTION"
          ~doc:
            "Fail (exit 4) if less than this fraction of recorded engine \
             rounds is attributed to leaf phase spans.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Pretty-print a captured telemetry trace (phase tree, coverage, edge-load histogram).")
    Term.(const run $ file_arg $ cov_arg)

(* Inspect a snapshot written by --metrics. JSON snapshots are parsed
   back through Metrics.of_json (so this doubles as a round-trip
   check) and can be re-exported; Prometheus text is run through the
   exposition-format validator. Exit 1 on a malformed file, so CI can
   gate on `lightnet metrics FILE`. *)
let metrics_cmd =
  let run file format =
    let text = In_channel.with_open_bin file In_channel.input_all in
    if Filename.check_suffix file ".json" then
      match Metrics.of_json text with
      | exception Failure m ->
        Format.printf "INVALID %s: %s@." file m;
        Stdlib.exit 1
      | snap -> (
        match format with
        | "summary" ->
          Format.printf "%a" Metrics.pp snap;
          Format.printf "metrics: %d series OK (JSON snapshot)@."
            (List.length snap)
        | "prom" -> print_string (Metrics.to_prometheus snap)
        | "json" -> print_string (Metrics.to_json ~all:true snap)
        | f -> Fmt.failwith "unknown format %S (summary|prom|json)" f)
    else
      match Metrics.validate_prometheus text with
      | Ok samples ->
        Format.printf "metrics: %d samples OK (Prometheus text)@." samples
      | Error m ->
        Format.printf "INVALID %s: %s@." file m;
        Stdlib.exit 1
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Metrics file written by --metrics (.json or Prometheus text).")
  in
  let format_arg =
    Arg.(
      value & opt string "summary"
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output for JSON snapshots: summary (per-series table), prom \
             (re-export as Prometheus text), json (re-export, including \
             unstable series).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Validate and pretty-print a metrics snapshot written by \
          $(b,--metrics) (exit 1 if the file is malformed).")
    Term.(const run $ file_arg $ format_arg)

let gen_cmd =
  let run n model seed output =
    let g = make_graph ~model ~n ~seed () in
    report_common g;
    Graph_io.save_graph output g;
    Format.printf "graph written to %s@." output
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "output" ] ~docv:"FILE" ~doc:"Destination file.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph and write it to a file.")
    Term.(const run $ n_arg $ model_arg $ seed_arg $ out_arg)

let () =
  let doc = "Distributed construction of light networks (PODC 2020), simulated." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "lightnet" ~doc)
          [
            spanner_cmd;
            slt_cmd;
            net_cmd;
            doubling_cmd;
            estimate_cmd;
            chaos_cmd;
            scenario_cmd;
            build_artifact_cmd;
            serve_cmd;
            store_cmd;
            report_cmd;
            metrics_cmd;
            gen_cmd;
          ]))
