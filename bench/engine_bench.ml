(* Benchmark + regression harness for the CONGEST engine.

   Four jobs, all in one binary so CI runs them together:

   1. Differential checker: every algorithm family in the library is
      run on every engine backend (the arena/active-set fast path, the
      list-based reference path, and the domain-sharded parallel path
      at 2 and 4 domains) and the results — final outputs, engine
      statistics, round counts — must match exactly.

   2. Workload suite: BFS, tree broadcast, Borůvka MST and the light
      spanner on Erdős–Rényi and random-geometric graphs, reporting
      engine throughput (rounds/sec, messages/sec) and peak arena
      footprint from the engine's perf counters.

   3. Before/after headline: the BFS-on-ER workload timed on the
      reference ("before", the seed engine) and fast ("after") paths —
      best-of-blocks wall clock plus a Bechamel per-run estimate — and
      the resulting speedup.

   4. Strong scaling: the headline workloads on run_par across domain
      counts, reporting per-count throughput, barrier share of engine
      wall, and guarded speedups against the 1-domain run and the
      sequential fast path. On a single-core host this documents the
      parallel-backend overhead rather than a speedup; the JSON records
      the core count so readers can tell which regime they're seeing.

   Output goes to BENCH_congest.json (hand-rolled JSON; the image has
   no yojson). `--smoke` shrinks everything to n=256 so the whole
   binary finishes in a few seconds; the dune `bench-smoke` alias runs
   that mode as part of `dune runtest`. *)

open Lightnet

let spf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter. *)

module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (spf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec emit b ~indent t =
    let pad k = String.make k ' ' in
    match t with
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string b (spf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          Buffer.add_string b (if i = 0 then "" else ", ");
          emit b ~indent x)
        xs;
      Buffer.add_string b "]"
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_string b (spf "\"%s\": " (escape k));
          emit b ~indent:(indent + 2) v)
        kvs;
      Buffer.add_string b (spf "\n%s}" (pad indent))

  let to_string t =
    let b = Buffer.create 4096 in
    emit b ~indent:0 t;
    Buffer.add_char b '\n';
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Benchmark graphs — the repo-wide generator conventions. *)

let er ~seed n =
  Gen.ensure_connected
    (Random.State.make [| seed; 101 |])
    (Gen.erdos_renyi (Random.State.make [| seed; 1 |]) ~n ~p:(8.0 /. float_of_int n) ())

let geo ~seed n =
  Gen.ensure_connected
    (Random.State.make [| seed; 102 |])
    (fst
       (Gen.random_geometric
          (Random.State.make [| seed; 2 |])
          ~n
          ~radius:(2.2 /. Float.sqrt (float_of_int n))
          ()))

(* ------------------------------------------------------------------ *)
(* Differential checker.

   Each family is a closure producing a textual digest of everything
   observable: the algorithm's output projected to plain data, engine
   round counts, message counts, ledger totals. Run under both
   backends, digests must be equal byte-for-byte. Floats are printed
   with %.17g, so any drift in message ordering or state evolution
   shows up. *)

let buf_stats b (st : Engine.stats) =
  Buffer.add_string b
    (spf "|stats r=%d m=%d w=%d mel=%d oc=%s dr=%d rt=%d" st.Engine.rounds
       st.Engine.messages st.Engine.total_words st.Engine.max_edge_load
       (match st.Engine.outcome with
       | Engine.Converged -> "c"
       | Engine.Round_limit -> "l")
       st.Engine.dropped_messages st.Engine.retransmissions)

let buf_float b f = Buffer.add_string b (spf "%.17g;" f)
let buf_int b i = Buffer.add_string b (spf "%d;" i)

let buf_ledger b l =
  Buffer.add_string b
    (spf "|ledger n=%d c=%d" (Ledger.native_total l) (Ledger.charged_total l))

let digest_of f =
  let b = Buffer.create 1024 in
  f b;
  Buffer.contents b

type check = { family : string; run : unit -> string }

let checks () =
  let g_er = er ~seed:7 48 in
  let g_geo = geo ~seed:9 40 in
  let tree_of g = fst (Bfs.tree g ~root:0) in
  [
    {
      family = "bfs";
      run =
        (fun () ->
          digest_of (fun b ->
              List.iter
                (fun g ->
                  let t, st = Bfs.tree g ~root:0 in
                  for v = 0 to Graph.n g - 1 do
                    match Tree.parent t v with
                    | None -> buf_int b (-1)
                    | Some (p, e) ->
                      buf_int b p;
                      buf_int b e
                  done;
                  buf_stats b st)
                [ g_er; g_geo ]));
    };
    {
      family = "broadcast";
      run =
        (fun () ->
          digest_of (fun b ->
              let t = tree_of g_er in
              let all, st1 =
                Broadcast.all_to_all g_er ~tree:t
                  ~items:(Array.init (Graph.n g_er) (fun v -> if v mod 7 = 0 then [ v; v * 3 ] else []))
              in
              Array.iter (fun l -> List.iter (buf_int b) l) all;
              buf_stats b st1;
              let down, st2 = Broadcast.downcast g_er ~tree:t ~items:[ 1; 2; 3; 4 ] in
              Array.iter (fun l -> List.iter (buf_int b) l) down;
              buf_stats b st2;
              let gat, st3 =
                Broadcast.gather g_er ~tree:t
                  ~items:(Array.init (Graph.n g_er) (fun v -> if v mod 5 = 1 then [ v ] else []))
              in
              Array.iter (fun l -> List.iter (buf_int b) l) gat;
              buf_stats b st3));
    };
    {
      family = "convergecast";
      run =
        (fun () ->
          digest_of (fun b ->
              let t = tree_of g_geo in
              let total, st =
                Convergecast.aggregate g_geo ~tree:t ~value:(fun v -> v * v) ~combine:( + )
              in
              buf_int b total;
              buf_stats b st;
              let mx, st2 =
                Convergecast.aggregate_all g_geo ~tree:t ~value:Fun.id ~combine:max
              in
              buf_int b mx;
              buf_stats b st2));
    };
    {
      family = "exchange";
      run =
        (fun () ->
          digest_of (fun b ->
              let vals = Array.init (Graph.n g_er) (fun v -> (v * 13) mod 29) in
              let tbl, st = Exchange.ints g_er vals in
              Array.iter (fun l -> List.iter (fun (e, x) -> buf_int b e; buf_int b x) l) tbl;
              buf_stats b st;
              let fv = Array.init (Graph.n g_geo) (fun v -> float_of_int v *. 0.37) in
              let tbl2, st2 = Exchange.floats g_geo fv in
              Array.iter (fun l -> List.iter (fun (e, x) -> buf_int b e; buf_float b x) l) tbl2;
              buf_stats b st2));
    };
    {
      family = "keyed";
      run =
        (fun () ->
          digest_of (fun b ->
              let t = tree_of g_er in
              let tbl, st =
                Keyed.global_best g_er ~tree:t ~nkeys:8
                  ~local:(fun v -> [ (v mod 8, (v * 7) mod 31) ])
                  ~better:(fun a b -> a < b)
              in
              Array.iter (function None -> buf_int b (-1) | Some x -> buf_int b x) tbl;
              buf_stats b st));
    };
    {
      family = "boruvka-mst";
      run =
        (fun () ->
          digest_of (fun b ->
              List.iter
                (fun g ->
                  let d = Dist_mst.run g in
                  List.iter (buf_int b) d.Dist_mst.mst_edges;
                  buf_ledger b d.Dist_mst.ledger)
                [ g_er; g_geo ]));
    };
    {
      family = "euler-tour";
      run =
        (fun () ->
          digest_of (fun b ->
              let d = Dist_mst.run g_er in
              let tour = Euler_dist.run d ~rt:3 in
              buf_float b tour.Euler_dist.total;
              Array.iter
                (fun (a, z) ->
                  buf_float b a;
                  buf_float b z)
                tour.Euler_dist.interval;
              buf_ledger b d.Dist_mst.ledger));
    };
    {
      family = "bellman-ford";
      run =
        (fun () ->
          digest_of (fun b ->
              let r, st = Bellman_ford.sssp g_geo ~src:1 in
              Array.iter (buf_float b) r.Bellman_ford.dist;
              Array.iter (buf_int b) r.Bellman_ford.parent_edge;
              buf_stats b st));
    };
    {
      family = "hub-sssp";
      run =
        (fun () ->
          digest_of (fun b ->
              let bfs = tree_of g_er in
              let h =
                Hub_sssp.run ~rng:(Random.State.make [| 3; 4 |]) g_er ~bfs ~src:2
              in
              Array.iter (buf_float b) h.Hub_sssp.dist;
              List.iter (buf_int b) h.Hub_sssp.hubs;
              buf_ledger b h.Hub_sssp.ledger));
    };
    {
      family = "slt";
      run =
        (fun () ->
          digest_of (fun b ->
              let t =
                Slt.build ~rng:(Random.State.make [| 5; 6 |]) g_er ~rt:0 ~epsilon:0.5
              in
              List.iter (buf_int b) t.Slt.edges;
              List.iter (buf_int b) t.Slt.break_positions;
              buf_ledger b t.Slt.ledger));
    };
    {
      family = "baswana-sen";
      run =
        (fun () ->
          digest_of (fun b ->
              let s =
                Baswana_sen.build ~rng:(Random.State.make [| 8; 9 |]) ~k:3 g_er
              in
              List.iter (buf_int b) s.Baswana_sen.edges;
              buf_int b s.Baswana_sen.rounds));
    };
    {
      family = "light-spanner";
      run =
        (fun () ->
          digest_of (fun b ->
              let sp =
                Light_spanner.build
                  ~rng:(Random.State.make [| 11; 12 |])
                  g_er ~k:2 ~epsilon:0.25
              in
              List.iter (buf_int b) sp.Light_spanner.edges;
              buf_int b sp.Light_spanner.light_bucket_edges;
              buf_int b sp.Light_spanner.bucket_edges;
              buf_ledger b sp.Light_spanner.ledger));
    };
    {
      family = "net";
      run =
        (fun () ->
          digest_of (fun b ->
              let bfs = tree_of g_geo in
              let nt =
                Net.build ~rng:(Random.State.make [| 13; 14 |]) g_geo ~bfs ~radius:0.4
                  ~delta:0.5
              in
              List.iter (buf_int b) nt.Net.points;
              buf_int b nt.Net.iterations;
              buf_ledger b nt.Net.ledger));
    };
    {
      family = "doubling-spanner";
      run =
        (fun () ->
          digest_of (fun b ->
              let sp =
                Doubling_spanner.build ~rng:(Random.State.make [| 15; 16 |]) g_geo
                  ~epsilon:0.5
              in
              List.iter (buf_int b) sp.Doubling_spanner.edges;
              buf_ledger b sp.Doubling_spanner.ledger));
    };
    {
      family = "mst-weight";
      run =
        (fun () ->
          digest_of (fun b ->
              let bfs = tree_of g_er in
              let e =
                Mst_weight.estimate ~rng:(Random.State.make [| 17; 18 |]) g_er ~bfs
                  ~alpha:2.0
              in
              List.iter
                (fun (s, c) ->
                  buf_float b s;
                  buf_int b c)
                e.Mst_weight.levels;
              buf_ledger b e.Mst_weight.ledger));
    };
  ]

(* Backends under differential test: fast is the baseline digest, the
   others must reproduce it byte-for-byte. *)
let diff_backends =
  [
    ("reference", Engine.Reference);
    ("par2", Engine.Par 2);
    ("par4", Engine.Par 4);
  ]

let run_differential () =
  Printf.printf
    "differential checker: fast vs reference vs par{2,4} on every family\n%!";
  let failures = ref [] in
  let cs = checks () in
  List.iter
    (fun c ->
      let fast = Engine.with_backend Engine.Fast c.run in
      let bad =
        List.filter_map
          (fun (label, backend) ->
            let other = Engine.with_backend backend c.run in
            if String.equal fast other then None else Some label)
          diff_backends
      in
      if bad = [] then
        Printf.printf "  [eq] %-16s (%d bytes, %d backends)\n%!" c.family
          (String.length fast)
          (1 + List.length diff_backends)
      else begin
        Printf.printf "  [MISMATCH] %s (%s)\n%!" c.family (String.concat "," bad);
        failures :=
          List.map (fun l -> spf "%s/%s" c.family l) bad @ !failures
      end)
    cs;
  (List.length cs, List.rev !failures)

(* ------------------------------------------------------------------ *)
(* Chaos mode (--chaos): the fault-injection counterpart of the
   differential checker, plus a degradation sweep.

   1. Fault differential: every family above is driven through both
      backends under the same ambient fault plan (Fault.reset before
      each side so both replay the identical schedule). Digests —
      including the new dropped/retransmission counters and any
      exception an algorithm raises when chaos starves it — must match
      byte-for-byte. The plans avoid crash-stop failures: composite
      pipelines feed one phase's output into the next centrally, and a
      crashed node's garbage state would make the *plans*, not the
      engines, the thing under test. Crash semantics are covered by
      test_fault.ml and the sweep below.

   2. Degradation sweep: raw relaxing BFS vs its Reliable.lift'ed
      version across drop probabilities, each run certified by
      Monitor.bfs. Written to BENCH_faults.json: the raw protocol must
      go wrong beyond some drop-prob while the ARQ one stays correct,
      with the measured round/retransmission overhead.

   3. Recovery sweep: the same ARQ broadcast under crash-stop versus
      crash-recovery schedules of growing width. A node that crashes
      forever caps the verdict at degraded (its retries exhaust and
      the sender gives up); a node that recovers inside the ARQ retry
      budget must end correct, with the extra rounds/retransmissions
      as the measured price of riding out the outage. *)

let chaos_plans () =
  [
    Fault.make ~drop_prob:0.01 ~seed:101 ();
    Fault.make
      ~link_failures:
        [
          { Fault.edge = 3; from_round = 0; until_round = Some 30 };
          { Fault.edge = 17; from_round = 5; until_round = Some 25 };
        ]
      ~seed:202 ();
    Fault.make ~drop_prob:0.05 ~drop_until:50
      ~link_failures:[ { Fault.edge = 9; from_round = 2; until_round = Some 40 } ]
      ~seed:303 ();
  ]

let run_chaos_differential () =
  Printf.printf
    "chaos differential: fast vs reference vs par{2,4} under fault plans\n%!";
  let failures = ref [] in
  let plans = chaos_plans () in
  let total = ref 0 in
  List.iter
    (fun plan ->
      Printf.printf "  plan [%s]\n%!" (Fault.describe plan);
      List.iter
        (fun c ->
          incr total;
          let side backend =
            Fault.reset plan;
            Engine.with_backend backend (fun () ->
                Engine.with_faults ~max_rounds:50_000 plan (fun () ->
                    try c.run ()
                    with e -> "exn:" ^ Printexc.to_string e))
          in
          let fast = side Engine.Fast in
          let bad =
            List.filter_map
              (fun (label, backend) ->
                if String.equal fast (side backend) then None else Some label)
              diff_backends
          in
          if bad = [] then
            Printf.printf "    [eq] %-16s (%d bytes, %d backends%s)\n%!"
              c.family (String.length fast)
              (1 + List.length diff_backends)
              (if String.length fast >= 4 && String.sub fast 0 4 = "exn:" then
                 ", starved"
               else "")
          else begin
            Printf.printf "    [MISMATCH] %s (%s)\n%!" c.family
              (String.concat "," bad);
            failures :=
              List.map (fun l -> spf "%s/%s@%d" c.family l (Fault.seed plan)) bad
              @ !failures
          end)
        (checks ()))
    plans;
  (!total, List.rev !failures)

let sweep_row ~label ~drop_prob ~(stats : Engine.stats) ~verdict =
  Json.Obj
    [
      ("protocol", Json.Str label);
      ("drop_prob", Json.Float drop_prob);
      ("rounds", Json.Int stats.Engine.rounds);
      ("messages", Json.Int stats.Engine.messages);
      ("words", Json.Int stats.Engine.total_words);
      ("dropped", Json.Int stats.Engine.dropped_messages);
      ("retransmissions", Json.Int stats.Engine.retransmissions);
      ( "outcome",
        Json.Str
          (match stats.Engine.outcome with
          | Engine.Converged -> "converged"
          | Engine.Round_limit -> "round-limit") );
      ("verdict", Json.Str (Monitor.verdict_name verdict));
    ]

let run_sweep ~n =
  let g = er ~seed:21 n in
  let root = 0 in
  Printf.printf "degradation sweep: BFS on ER n=%d m=%d\n%!" n (Graph.m g);
  let rows = ref [] in
  let raw_wrong = ref false and reliable_all_correct = ref true in
  List.iter
    (fun drop_prob ->
      let plan seed = Fault.make ~drop_prob ~seed () in
      let raw_dist, raw_st = Bfs.layers ~faults:(plan 42) g ~root in
      let raw_v = (Monitor.bfs g (plan 42) ~root ~dist:raw_dist).verdict in
      let rel_dist, rel_st = Bfs.layers_reliable ~faults:(plan 42) g ~root in
      let rel_v = (Monitor.bfs g (plan 42) ~root ~dist:rel_dist).verdict in
      if raw_v <> Monitor.Correct then raw_wrong := true;
      if rel_v <> Monitor.Correct then reliable_all_correct := false;
      Printf.printf
        "  p=%.2f raw: %-7s %4d rounds %5d dropped | arq: %-7s %4d rounds %5d retrans\n%!"
        drop_prob (Monitor.verdict_name raw_v) raw_st.Engine.rounds
        raw_st.Engine.dropped_messages (Monitor.verdict_name rel_v)
        rel_st.Engine.rounds rel_st.Engine.retransmissions;
      rows := sweep_row ~label:"bfs-raw" ~drop_prob ~stats:raw_st ~verdict:raw_v :: !rows;
      rows :=
        sweep_row ~label:"bfs-reliable" ~drop_prob ~stats:rel_st ~verdict:rel_v
        :: !rows)
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ];
  Printf.printf
    "  raw degrades somewhere: %b; reliable correct everywhere: %b\n%!"
    !raw_wrong !reliable_all_correct;
  (List.rev !rows, !raw_wrong, !reliable_all_correct)

let recovery_row ~mode ~crashed ~(stats : Engine.stats) ~verdict ~delivered =
  Json.Obj
    [
      ("mode", Json.Str mode);
      ("crashed_nodes", Json.Int crashed);
      ("rounds", Json.Int stats.Engine.rounds);
      ("retransmissions", Json.Int stats.Engine.retransmissions);
      ("delivered_fraction", Json.Float delivered);
      ("verdict", Json.Str (Monitor.verdict_name verdict));
    ]

let run_recovery_sweep ~n =
  let g = er ~seed:33 n in
  let root = 0 and value = 7 in
  Printf.printf "recovery sweep: ARQ broadcast on ER n=%d m=%d\n%!" n
    (Graph.m g);
  let rows = ref [] in
  let recover_all_correct = ref true and stop_all_degraded = ref true in
  let side ~mode ~plan ~crashed =
    let got, st =
      Broadcast.flood_reliable ~max_retries:64 ~faults:plan g ~root ~value
    in
    let v = (Monitor.broadcast g plan ~root ~value ~got).verdict in
    let delivered =
      float_of_int
        (Array.fold_left
           (fun acc x -> if x = Some value then acc + 1 else acc)
           0 got)
      /. float_of_int n
    in
    Printf.printf
      "  %-13s crashed=%d %-8s %4d rounds %5d retrans %5.1f%% delivered\n%!"
      mode crashed (Monitor.verdict_name v) st.Engine.rounds
      st.Engine.retransmissions (100.0 *. delivered);
    rows := recovery_row ~mode ~crashed ~stats:st ~verdict:v ~delivered :: !rows;
    v
  in
  List.iter
    (fun k ->
      (* k staggered outages on distinct non-root nodes; the recovery
         variant heals each window well inside the 64-retry budget. *)
      let windows =
        List.init k (fun i ->
            let node = 1 + (i * (n - 1) / k) in
            (node, 2 * i, (2 * i) + 12))
      in
      let stop =
        Fault.make
          ~crashes:(List.map (fun (v, at, _) -> (v, at)) windows)
          ~seed:55 ()
      in
      let recover =
        Fault.make
          ~crash_windows:
            (List.map
               (fun (v, at, until) ->
                 { Fault.node = v; crash_round = at; recover_round = Some until })
               windows)
          ~seed:55 ()
      in
      if side ~mode:"crash-stop" ~plan:stop ~crashed:k <> Monitor.Degraded then
        stop_all_degraded := false;
      if side ~mode:"crash-recover" ~plan:recover ~crashed:k <> Monitor.Correct
      then recover_all_correct := false)
    [ 1; 4; 8 ];
  Printf.printf
    "  crash-stop all degraded: %b; crash-recover all correct: %b\n%!"
    !stop_all_degraded !recover_all_correct;
  (List.rev !rows, !stop_all_degraded, !recover_all_correct)

let run_chaos ~smoke =
  let nchecks, failures = run_chaos_differential () in
  let sweep_n = if smoke then 64 else 512 in
  let rows, raw_wrong, reliable_ok = run_sweep ~n:sweep_n in
  let rec_rows, stop_degraded, recover_correct =
    run_recovery_sweep ~n:sweep_n
  in
  let json =
    Json.Obj
      [
        ( "meta",
          Json.Obj
            [
              ("mode", Json.Str (if smoke then "smoke" else "full"));
              ("word_size", Json.Int Bench_env.word_size);
              ("ocaml", Json.Str Bench_env.ocaml_version);
              ("host_cores", Json.Int (Bench_env.cores ()));
              ("peak_rss_kb", Json.Int (Bench_env.peak_rss_kb ()));
            ] );
        ( "fault_differential",
          Json.Obj
            [
              ("plans", Json.Int (List.length (chaos_plans ())));
              ("checks", Json.Int nchecks);
              ("failures", Json.List (List.map (fun f -> Json.Str f) failures));
              ("equivalent", Json.Bool (failures = []));
            ] );
        ( "degradation_sweep",
          Json.Obj
            [
              ("n", Json.Int sweep_n);
              ("raw_degrades", Json.Bool raw_wrong);
              ("reliable_all_correct", Json.Bool reliable_ok);
              ("rows", Json.List rows);
            ] );
        ( "recovery_sweep",
          Json.Obj
            [
              ("n", Json.Int sweep_n);
              ("crash_stop_all_degraded", Json.Bool stop_degraded);
              ("crash_recover_all_correct", Json.Bool recover_correct);
              ("rows", Json.List rec_rows);
            ] );
      ]
  in
  let oc = open_out "BENCH_faults.json" in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "wrote BENCH_faults.json\n%!";
  if failures <> [] then begin
    Printf.printf "CHAOS DIFFERENTIAL FAILURES: %s\n%!"
      (String.concat ", " failures);
    exit 1
  end;
  if not reliable_ok then begin
    Printf.printf "RELIABLE BFS WENT WRONG UNDER THE SWEEP\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Workload suite. *)

let measure f =
  let before = Engine.snapshot_totals () in
  f ();
  Engine.totals_since before

let perf_json (p : Engine.perf) =
  Json.Obj
    [
      ("rounds", Json.Int p.Engine.rounds);
      ("messages", Json.Int p.Engine.messages);
      ("words", Json.Int p.Engine.words);
      ("engine_wall_s", Json.Float p.Engine.wall);
      ("rounds_per_sec", Json.Float (Engine.rounds_per_sec p));
      ("messages_per_sec", Json.Float (Engine.messages_per_sec p));
      ("skip_ratio", Json.Float (Engine.skip_ratio p));
      ("steps", Json.Int p.Engine.steps);
      ("peak_arena_slots", Json.Int p.Engine.arena_cap);
      (* 4 words per slot: from, edge, payload, link. *)
      ("peak_arena_words", Json.Int (4 * p.Engine.arena_cap));
      ("arena_grows", Json.Int p.Engine.arena_grows);
      ("domains", Json.Int (max 1 p.Engine.domains));
      ("barrier_wall_s", Json.Float p.Engine.barrier_wall);
    ]

let workloads g =
  [
    ("bfs", fun () -> for _ = 1 to 10 do ignore (Bfs.tree g ~root:0) done);
    ( "broadcast",
      let tree = fst (Bfs.tree g ~root:0) in
      fun () -> ignore (Broadcast.downcast g ~tree ~items:(List.init 64 Fun.id)) );
    ("boruvka", fun () -> ignore (Dist_mst.run g));
    ( "spanner",
      fun () ->
        ignore
          (Light_spanner.build ~rng:(Random.State.make [| Graph.n g; 5 |]) g ~k:2
             ~epsilon:0.25) );
  ]

let run_suite sizes =
  let rows = ref [] in
  List.iter
    (fun (gname, mk) ->
      List.iter
        (fun n ->
          let g = mk n in
          List.iter
            (fun (fname, f) ->
              let p = measure f in
              Printf.printf "  %-3s n=%-6d %-9s %6d rounds %9d msgs %8.0f rounds/s %10.0f msgs/s skip %4.1f%%\n%!"
                gname n fname p.Engine.rounds p.Engine.messages
                (Engine.rounds_per_sec p) (Engine.messages_per_sec p)
                (100.0 *. Engine.skip_ratio p);
              rows :=
                Json.Obj
                  (("graph", Json.Str gname)
                   :: ("n", Json.Int n)
                   :: ("m", Json.Int (Graph.m g))
                   :: ("family", Json.Str fname)
                   :: ("backend", Json.Str "fast")
                   ::
                   (match perf_json p with Json.Obj kv -> kv | _ -> []))
                :: !rows)
            (workloads g))
        sizes)
    [ ("er", fun n -> er ~seed:1 n); ("geo", fun n -> geo ~seed:1 n) ];
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* Headline before/after: BFS on ER, reference vs fast. *)

let best_block ~blocks ~reps run =
  (* Best-of-blocks engine wall: robust against scheduler noise on a
     shared machine. Returns (best perf over one block). *)
  let best : Engine.perf option ref = ref None in
  for _ = 1 to blocks do
    let p = measure (fun () -> for _ = 1 to reps do run () done) in
    match !best with
    | Some b when b.Engine.wall <= p.Engine.wall -> ()
    | _ -> best := Some p
  done;
  Option.get !best

let bechamel_ns ~quota name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) res [] with
  | [ v ] -> (
    match Analyze.OLS.estimates v with Some [ ns ] -> ns | _ -> nan)
  | _ -> nan

let run_headline ~n ~blocks ~reps ~quota =
  let g = er ~seed:1 n in
  Printf.printf "headline: BFS on ER n=%d m=%d (best of %d blocks x %d runs)\n%!" n
    (Graph.m g) blocks reps;
  let side backend label =
    Engine.with_backend backend (fun () ->
        (* Compact away the workload suite's garbage so both sides
           measure against the same (small) live heap. *)
        Gc.compact ();
        ignore (Bfs.tree g ~root:0) (* warm the scratch/caches *);
        let p = best_block ~blocks ~reps (fun () -> ignore (Bfs.tree g ~root:0)) in
        let ns = bechamel_ns ~quota label (fun () -> ignore (Bfs.tree g ~root:0)) in
        Printf.printf "  %-9s %8.0f rounds/s %11.0f msgs/s %12.0f ns/run (bechamel)\n%!"
          label (Engine.rounds_per_sec p) (Engine.messages_per_sec p) ns;
        (p, ns))
  in
  let ref_p, ref_ns = side Engine.Reference "reference" in
  let fast_p, fast_ns = side Engine.Fast "fast" in
  (* Engine wall is monotonic-clock based but can still round to zero
     on a degenerate (tiny) workload; a 0/0 here would poison the JSON
     with nan. Report 0 speedup instead. *)
  let ref_rps = Engine.rounds_per_sec ref_p in
  let speedup =
    if ref_rps > 0.0 then Engine.rounds_per_sec fast_p /. ref_rps else 0.0
  in
  Printf.printf "  speedup (rounds/sec, fast vs reference): %.2fx\n%!" speedup;
  let sidej (p, ns) backend =
    Json.Obj
      (("backend", Json.Str backend)
       :: ("bechamel_ns_per_run", Json.Float ns)
       :: (match perf_json p with Json.Obj kv -> kv | _ -> []))
  in
  Json.Obj
    [
      ("workload", Json.Str "bfs-er");
      ("n", Json.Int n);
      ("m", Json.Int (Graph.m g));
      ("blocks", Json.Int blocks);
      ("runs_per_block", Json.Int reps);
      ("before", sidej (ref_p, ref_ns) "reference");
      ("after", sidej (fast_p, fast_ns) "fast");
      ("speedup_rounds_per_sec", Json.Float speedup);
    ]

(* ------------------------------------------------------------------ *)
(* Strong scaling: run_par across domain counts on the headline
   workloads. Each cell is a best-of-blocks engine wall; speedups are
   guarded against zero walls so a degenerate (too fast to time) cell
   reports 0 rather than inf/nan. The sequential fast path is measured
   alongside as the "what parallelism must beat" baseline — on a
   single-core host par@d can only lose to it, and the recorded
   [cores] field says so. *)

let scaling_workloads n =
  let g_er = er ~seed:1 n in
  [
    ("bfs-er", g_er, fun g -> ignore (Bfs.tree g ~root:0));
    ( "spanner-er",
      g_er,
      fun g ->
        ignore
          (Light_spanner.build ~rng:(Random.State.make [| Graph.n g; 5 |]) g
             ~k:2 ~epsilon:0.25) );
  ]

let guarded_speedup ~base ~cur =
  if base > 0.0 && cur > 0.0 then base /. cur else 0.0

let run_scaling ~n ~blocks ~reps ~domains =
  Printf.printf "strong scaling: run_par on %d core(s), domains %s\n%!"
    (Domain.recommended_domain_count ())
    (String.concat "," (List.map string_of_int domains));
  let rows = ref [] in
  List.iter
    (fun (wname, g, f) ->
      Gc.compact ();
      let cell backend =
        Engine.with_backend backend (fun () ->
            f g (* warm scratch, arenas and worker pool *);
            best_block ~blocks ~reps (fun () -> f g))
      in
      let fast_p = cell Engine.Fast in
      let par1_p = cell (Engine.Par 1) in
      let one_dom_wall = par1_p.Engine.wall in
      List.iter
        (fun d ->
          let p = if d = 1 then par1_p else cell (Engine.Par d) in
          let vs_one = guarded_speedup ~base:one_dom_wall ~cur:p.Engine.wall in
          let vs_fast =
            guarded_speedup ~base:fast_p.Engine.wall ~cur:p.Engine.wall
          in
          let barrier_share =
            if p.Engine.wall > 0.0 then p.Engine.barrier_wall /. p.Engine.wall
            else 0.0
          in
          Printf.printf
            "  %-10s d=%d %9.0f rounds/s  barrier %4.1f%%  x%.2f vs par@1  x%.2f vs fast\n%!"
            wname d (Engine.rounds_per_sec p)
            (100.0 *. barrier_share)
            vs_one vs_fast;
          (* perf.domains deltas a process-wide max, so a par@8 run
             earlier in the process would leak into this row; record
             the cell's actual domain count instead. *)
          let perf_kv =
            match perf_json p with
            | Json.Obj kv -> List.filter (fun (k, _) -> k <> "domains") kv
            | _ -> []
          in
          rows :=
            Json.Obj
              (("workload", Json.Str wname)
               :: ("n", Json.Int n)
               :: ("m", Json.Int (Graph.m g))
               :: ("domains", Json.Int d)
               :: ("speedup_vs_1dom", Json.Float vs_one)
               :: ("speedup_vs_fast", Json.Float vs_fast)
               :: ("barrier_share", Json.Float barrier_share)
               :: perf_kv)
            :: !rows)
        domains)
    (scaling_workloads n);
  Json.Obj
    [
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("n", Json.Int n);
      ("blocks", Json.Int blocks);
      ("runs_per_block", Json.Int reps);
      ("domain_counts", Json.List (List.map (fun d -> Json.Int d) domains));
      ("rows", Json.List (List.rev !rows));
    ]

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the headline fast-path BFS workload with a
   recorder installed (per-round probe + span bookkeeping live) vs the
   plain run. The recorder wraps only the measured block, not the
   bechamel loop, so the event list stays bounded. The "off" side is
   what the headline regression gate compares against. *)

let run_telemetry_overhead ~n ~blocks ~reps =
  let g = er ~seed:1 n in
  Printf.printf "telemetry overhead: BFS on ER n=%d (fast backend)\n%!" n;
  Engine.with_backend Engine.Fast (fun () ->
      Gc.compact ();
      ignore (Bfs.tree g ~root:0);
      let off = best_block ~blocks ~reps (fun () -> ignore (Bfs.tree g ~root:0)) in
      let on_best = ref off in
      let (), trace =
        Telemetry.record (fun () ->
            on_best :=
              best_block ~blocks ~reps (fun () ->
                  Telemetry.span "bench-bfs" (fun () ->
                      ignore (Bfs.tree g ~root:0))))
      in
      let on = !on_best in
      let overhead_pct =
        if off.Engine.wall > 0.0 then
          100.0 *. ((on.Engine.wall -. off.Engine.wall) /. off.Engine.wall)
        else 0.0
      in
      Printf.printf
        "  off %.6fs/block  on %.6fs/block  overhead %+.1f%%  (%d events, %d rounds recorded)\n%!"
        off.Engine.wall on.Engine.wall overhead_pct
        (List.length trace.Telemetry.events)
        trace.Telemetry.rounds;
      Json.Obj
        [
          ("workload", Json.Str "bfs-er");
          ("n", Json.Int n);
          ("blocks", Json.Int blocks);
          ("runs_per_block", Json.Int reps);
          ("telemetry_off", Json.Obj (match perf_json off with Json.Obj kv -> kv | _ -> []));
          ("telemetry_on", Json.Obj (match perf_json on with Json.Obj kv -> kv | _ -> []));
          ("events_recorded", Json.Int (List.length trace.Telemetry.events));
          ("rounds_recorded", Json.Int trace.Telemetry.rounds);
          ("overhead_pct_engine_wall", Json.Float overhead_pct);
        ])

(* ------------------------------------------------------------------ *)
(* Metrics-registry overhead: the same headline workload with the
   live metrics registry enabled vs disabled. The engine instruments
   per *run* (finish_perf), not per round, so the "on" cost is a
   handful of counter adds per BFS; the "off" side pays one ref read.
   The acceptance gate is overhead <= 2% of engine wall. *)

let run_metrics_overhead ~n ~blocks ~reps =
  let g = er ~seed:1 n in
  Printf.printf "metrics overhead: BFS on ER n=%d (fast backend)\n%!" n;
  Engine.with_backend Engine.Fast (fun () ->
      Gc.compact ();
      ignore (Bfs.tree g ~root:0);
      let off = best_block ~blocks ~reps (fun () -> ignore (Bfs.tree g ~root:0)) in
      Metrics.set_on true;
      let on = best_block ~blocks ~reps (fun () -> ignore (Bfs.tree g ~root:0)) in
      let series = List.length (Metrics.snapshot ()) in
      Metrics.set_on false;
      Metrics.reset ();
      let overhead_pct =
        if off.Engine.wall > 0.0 then
          100.0 *. ((on.Engine.wall -. off.Engine.wall) /. off.Engine.wall)
        else 0.0
      in
      Printf.printf
        "  off %.6fs/block  on %.6fs/block  overhead %+.1f%%  (%d series live)\n%!"
        off.Engine.wall on.Engine.wall overhead_pct series;
      Json.Obj
        [
          ("workload", Json.Str "bfs-er");
          ("n", Json.Int n);
          ("blocks", Json.Int blocks);
          ("runs_per_block", Json.Int reps);
          ("metrics_off", Json.Obj (match perf_json off with Json.Obj kv -> kv | _ -> []));
          ("metrics_on", Json.Obj (match perf_json on with Json.Obj kv -> kv | _ -> []));
          ("series_live", Json.Int series);
          ("overhead_pct_engine_wall", Json.Float overhead_pct);
        ])

(* ------------------------------------------------------------------ *)
(* Graph500-style RMAT section: the substrate numbers at n >= 10^6.

   Three measurements on one seeded RMAT graph:
   - per-phase build throughput: generator draws/s and streaming-
     constructor edges/s (the `of_edge_arrays` path: validate, sort,
     dedup, CSR fill);
   - BFS TEPS over sampled degree>0 sources (traversed edges =
     sum of degrees of reached vertices / 2, harmonic mean across
     sources, the Graph500 convention);
   - Dijkstra before/after: the same SSSP once against the deprecated
     boxed tuple-array adjacency (`Graph.neighbors`, warmed before
     timing so row materialization is excluded) and once through the
     allocation-free `Graph.iter_neighbors` port in Paths — the
     substrate speedup the CSR move is supposed to buy.

   Peak memory is reported as Gc live/top-heap words right after the
   build plus process peak RSS, the figures EXPERIMENTS.md's
   memory-ceiling methodology is stated in. *)

(* The "before" side of the Dijkstra comparison: the pre-CSR
   [Paths.dijkstra_core] loop, verbatim — boxed tuple rows via
   [Graph.neighbors], default [edge_ok] closure, a [Graph.weight] call
   per edge, same [dist]/[parent_edge]/[source] outputs the ported code
   produces. Lives here (not lib/) so the deprecated accessor keeps
   exactly one in-tree caller — this benchmark. *)
let dijkstra_legacy ?(bound = infinity) ?(edge_ok = fun _ -> true) g src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let source = Array.make n (-1) in
  let settled = Array.make n false in
  let q = Pqueue.create () in
  dist.(src) <- 0.0;
  source.(src) <- src;
  Pqueue.push q 0.0 src;
  let rec loop () =
    if not (Pqueue.is_empty q) then begin
      let d, v = Pqueue.pop_min q in
      if not settled.(v) then begin
        settled.(v) <- true;
        if d <= bound then
          Array.iter
            (fun (id, u) ->
              if edge_ok id && not settled.(u) then begin
                let nd = d +. Graph.weight g id in
                if nd < dist.(u) && nd <= bound then begin
                  dist.(u) <- nd;
                  parent_edge.(u) <- id;
                  source.(u) <- source.(v);
                  Pqueue.push q nd u
                end
              end)
            (Graph.neighbors g v)
      end;
      loop ()
    end
  in
  loop ();
  ignore parent_edge;
  dist

let run_rmat ~smoke =
  let scale = if smoke then 12 else 20 in
  let edge_factor = 16 in
  let teps_sources = if smoke then 8 else 64 in
  let n = 1 lsl scale in
  let drawn = edge_factor * n in
  Printf.printf "rmat: scale=%d edge_factor=%d (n=%d, %d draws)\n%!" scale
    edge_factor n drawn;
  let rng = Random.State.make [| 0x9a7500; scale |] in
  let t0 = Unix.gettimeofday () in
  let us, vs, ws = Gen.rmat_edges rng ~scale ~edge_factor () in
  let t_gen = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let g = Graph.of_edge_arrays ~n us vs ws in
  let t_build = Unix.gettimeofday () -. t0 in
  let m = Graph.m g in
  let live_after_build, top_after_build = Bench_env.heap_words () in
  Printf.printf
    "  gen %.2fs (%.3g draws/s)  build %.2fs (%.3g edges/s)  m=%d  live %.1f Mw\n%!"
    t_gen
    (float_of_int drawn /. t_gen)
    t_build
    (float_of_int drawn /. t_build)
    m
    (float_of_int live_after_build /. 1e6);
  (* TEPS: harmonic mean over sources = total edges / total time. *)
  let teps_runs = ref [] in
  let done_ = ref 0 and tries = ref 0 in
  while !done_ < teps_sources && !tries < 100 * teps_sources do
    incr tries;
    let s = Random.State.int rng n in
    if Graph.degree g s > 0 then begin
      let t0 = Unix.gettimeofday () in
      let dist = Paths.bfs_hops g s in
      let dt = Unix.gettimeofday () -. t0 in
      let e = ref 0 in
      for v = 0 to n - 1 do
        if dist.(v) >= 0 then e := !e + Graph.degree g v
      done;
      teps_runs := (float_of_int !e /. 2.0, dt) :: !teps_runs;
      incr done_
    end
  done;
  let total_edges = List.fold_left (fun a (e, _) -> a +. e) 0.0 !teps_runs in
  let total_time = List.fold_left (fun a (_, t) -> a +. t) 0.0 !teps_runs in
  let teps_harmonic = if total_time > 0.0 then total_edges /. total_time else 0.0 in
  Printf.printf "  bfs: %d sources, %.3g TEPS (harmonic mean)\n%!" !done_
    teps_harmonic;
  (* Dijkstra before/after on the same graph: the pre-CSR loop
     (dijkstra_legacy above) against today's [Paths.dijkstra]. Order
     matters for fairness — the CSR side runs first, against the fresh
     flat-only heap, then the tuple rows are forced (the old
     representation always carried them) and the legacy side runs on
     its steady state. [Gc.compact] before every timed rep keeps GC
     phase noise out of the best-of; sum of per-source bests is
     reported so both sides cover the same work. *)
  let dijkstra_sources =
    let rec pick acc k =
      if k = 0 then acc
      else
        let s = Random.State.int rng n in
        if Graph.degree g s > 0 then pick (s :: acc) (k - 1) else pick acc k
    in
    pick [] 3
  in
  let time_sum f =
    let total = ref 0.0 in
    List.iter
      (fun s ->
        let best = ref infinity in
        for _ = 1 to 4 do
          Gc.compact ();
          let t0 = Unix.gettimeofday () in
          ignore (f g s);
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt
        done;
        total := !total +. !best)
      dijkstra_sources;
    !total
  in
  let t_csr = time_sum (fun g s -> (Paths.dijkstra g s).Paths.dist) in
  for v = 0 to n - 1 do
    ignore (Graph.neighbors g v)
  done;
  let t_tuple = time_sum dijkstra_legacy in
  let speedup = t_tuple /. t_csr in
  Printf.printf
    "  dijkstra: legacy tuple-array %.3fs  csr %.3fs  speedup %.2fx\n%!"
    t_tuple t_csr speedup;
  let live_end, top_end = Bench_env.heap_words () in
  Json.Obj
    [
      ("scale", Json.Int scale);
      ("edge_factor", Json.Int edge_factor);
      ("n", Json.Int n);
      ("edges_drawn", Json.Int drawn);
      ("m", Json.Int m);
      ( "build",
        Json.Obj
          [
            ("gen_seconds", Json.Float t_gen);
            ("gen_draws_per_sec", Json.Float (float_of_int drawn /. t_gen));
            ("csr_seconds", Json.Float t_build);
            ("csr_edges_per_sec", Json.Float (float_of_int drawn /. t_build));
          ] );
      ( "bfs_teps",
        Json.Obj
          [
            ("sources", Json.Int !done_);
            ("teps_harmonic_mean", Json.Float teps_harmonic);
            ("traversed_edges_total", Json.Float total_edges);
            ("seconds_total", Json.Float total_time);
          ] );
      ( "dijkstra_before_after",
        Json.Obj
          [
            ("sources", Json.Int (List.length dijkstra_sources));
            ("legacy_tuple_array_seconds", Json.Float t_tuple);
            ("csr_seconds", Json.Float t_csr);
            ("speedup", Json.Float speedup);
          ] );
      ( "memory",
        Json.Obj
          [
            ("live_words_after_build", Json.Int live_after_build);
            ("top_heap_words_after_build", Json.Int top_after_build);
            ("live_words_end", Json.Int live_end);
            ("top_heap_words_end", Json.Int top_end);
            ("peak_rss_kb", Json.Int (Bench_env.peak_rss_kb ()));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* CONGEST engine at Graph500 scale: run_fast on raw RMAT draws
   (power-law degrees, hub inbox chains, no connectivity repair).

   Three workloads:
     - relaxing BFS at scales 16/18/20 (the headline: the engine
       itself at n = 10^6),
     - a max-id flood at the auxiliary scale — every vertex announces
       improvements, so rounds are dense and the direction-optimizing
       dense path carries the run,
     - Baswana–Sen (k=2) at the auxiliary scale — the paper pipeline's
       cluster-exchange pattern through the dispatching Engine.run.

   Also measured here, because they are the point of the flat-ctx
   rewrite:
     - neighbor-view residency: the flat ctx aliases the graph's CSR
       columns (a fixed-size record), while the old tuple view paid
       ~8m + 2n boxed words; we force the deprecated rows on the
       largest graph and report both deltas and their ratio,
     - warm scratch acquisition: the stamp guards removed four O(n)
       Array.fills per acquire; we time exactly that removed work at
       the largest n next to a trivial engine run on the same graph. *)

let max_id_flood : (int, int) Engine.program =
  let open Engine in
  let announce ctx v =
    let msg = v in
    List.rev
      (ctx_fold_neighbors ctx (fun acc edge _ -> { via = edge; msg } :: acc) [])
  in
  {
    name = "max-id-flood";
    words = (fun _ -> 1);
    init = (fun ctx -> (ctx.me, announce ctx ctx.me));
    step =
      (fun ctx ~round:_ s inbox ->
        let best =
          List.fold_left
            (fun acc (r : int received) -> if r.payload > acc then r.payload else acc)
            s inbox
        in
        if best > s then (best, announce ctx best, false) else (s, [], false));
  }

let run_engine_rmat ~smoke =
  Printf.printf "engine at rmat scale (run_fast)\n%!";
  let edge_factor = 16 in
  let mk scale =
    let rng = Random.State.make [| 0x9a7501; scale |] in
    let n = 1 lsl scale in
    let us, vs, ws = Gen.rmat_edges rng ~scale ~edge_factor () in
    Graph.of_edge_arrays ~n us vs ws
  in
  let root_of g =
    let best = ref 0 in
    for v = 1 to Graph.n g - 1 do
      if Graph.degree g v > Graph.degree g !best then best := v
    done;
    !best
  in
  let perf_row ~label ~g ~wall (p : Engine.perf) =
    Printf.printf
      "  %-14s n=%d m=%d  %d rounds  %d msgs  %.0f rounds/s  %.3g msgs/s  skip %.1f%%  arena %d slots (%d grows)  %.2fs\n%!"
      label (Graph.n g) (Graph.m g) p.Engine.rounds p.Engine.messages
      (Engine.rounds_per_sec p) (Engine.messages_per_sec p)
      (100.0 *. Engine.skip_ratio p)
      p.Engine.arena_cap p.Engine.arena_grows wall;
    Json.Obj
      [
        ("workload", Json.Str label);
        ("n", Json.Int (Graph.n g));
        ("m", Json.Int (Graph.m g));
        ("rounds", Json.Int p.Engine.rounds);
        ("messages", Json.Int p.Engine.messages);
        ("rounds_per_sec", Json.Float (Engine.rounds_per_sec p));
        ("messages_per_sec", Json.Float (Engine.messages_per_sec p));
        ("skip_ratio", Json.Float (Engine.skip_ratio p));
        ("peak_arena_slots", Json.Int p.Engine.arena_cap);
        ("arena_grows", Json.Int p.Engine.arena_grows);
        ("wall_seconds", Json.Float wall);
        ("peak_rss_kb", Json.Int (Bench_env.peak_rss_kb ()));
      ]
  in
  let bfs_scales = if smoke then [ 8; 10 ] else [ 16; 18; 20 ] in
  let aux_scale = if smoke then 8 else 16 in
  (* Auxiliary workloads first so the largest BFS graph is the live one
     when the memory section below measures it. *)
  let g_aux = mk aux_scale in
  let flood_row =
    let perf = Engine.create_perf () in
    let t0 = Unix.gettimeofday () in
    let _ = Engine.run_fast ~perf g_aux max_id_flood in
    perf_row
      ~label:(spf "flood@%d" aux_scale)
      ~g:g_aux
      ~wall:(Unix.gettimeofday () -. t0)
      perf
  in
  let spanner_row =
    let before = Engine.snapshot_totals () in
    let t0 = Unix.gettimeofday () in
    let sp =
      Baswana_sen.build ~rng:(Random.State.make [| 0xb5; aux_scale |]) ~k:2 g_aux
    in
    let wall = Unix.gettimeofday () -. t0 in
    let p = Engine.totals_since before in
    Printf.printf "  spanner@%d: %d edges kept, %d native rounds\n%!" aux_scale
      (List.length sp.Baswana_sen.edges) sp.Baswana_sen.rounds;
    perf_row ~label:(spf "baswana-sen@%d" aux_scale) ~g:g_aux ~wall p
  in
  let bfs_rows, g_last, root_last =
    List.fold_left
      (fun (rows, _, _) scale ->
        let g = mk scale in
        let root = root_of g in
        let perf = Engine.create_perf () in
        let t0 = Unix.gettimeofday () in
        let _ = Engine.run_fast ~perf g (Bfs.relaxing_program ~root) in
        let wall = Unix.gettimeofday () -. t0 in
        let row = perf_row ~label:(spf "bfs@%d" scale) ~g ~wall perf in
        (row :: rows, Some g, root))
      ([], None, 0) bfs_scales
  in
  let bfs_rows = List.rev bfs_rows in
  let g_big = Option.get g_last in
  let n_big = Graph.n g_big in
  (* Neighbor-view residency, flat ctx vs forced tuple rows. *)
  let live () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let live0 = live () in
  let _ = Engine.run_fast g_big (Bfs.relaxing_program ~root:root_last) in
  let live_flat = live () in
  let flat_delta = max 0 (live_flat - live0) in
  for v = 0 to n_big - 1 do
    ignore (Graph.neighbors g_big v)
  done;
  let live_tuple = live () in
  let tuple_delta = max 0 (live_tuple - live_flat) in
  let ratio = float_of_int tuple_delta /. float_of_int (max 1 flat_delta) in
  Printf.printf
    "  neighbor view @ n=%d: flat ctx +%d words resident, tuple rows +%d words (%.3g Mw) — %.0fx\n%!"
    n_big flat_delta tuple_delta
    (float_of_int tuple_delta /. 1e6)
    ratio;
  (* Warm scratch acquisition: the stamp guards deleted four O(n)
     Array.fills per acquire. Time that removed work directly, next to
     a trivial engine run (whose init pass is O(n) by contract — every
     node starts active — so the fills were a constant factor, not the
     asymptote; they were still ~half the setup cost of a short run). *)
  let fills = Array.make n_big 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 4 do
    Array.fill fills 0 n_big 0
  done;
  let t_fills = Unix.gettimeofday () -. t0 in
  let trivial : (unit, unit) Engine.program =
    {
      name = "noop";
      words = (fun () -> 1);
      init = (fun _ -> ((), []));
      step = (fun _ ~round:_ () _ -> ((), [], false));
    }
  in
  let _ = Engine.run_fast g_big trivial (* warm *) in
  let t0 = Unix.gettimeofday () in
  let _ = Engine.run_fast g_big trivial in
  let t_trivial = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  warm acquire @ n=%d: removed 4x Array.fill = %.4fs; trivial warm run now %.4fs\n%!"
    n_big t_fills t_trivial;
  Json.Obj
    [
      ("edge_factor", Json.Int edge_factor);
      ("bfs", Json.List bfs_rows);
      ("flood", flood_row);
      ("spanner", spanner_row);
      ( "memory",
        Json.Obj
          [
            ("n", Json.Int n_big);
            ("flat_ctx_resident_words", Json.Int flat_delta);
            ("tuple_rows_resident_words", Json.Int tuple_delta);
            ("tuple_over_flat_ratio", Json.Float ratio);
          ] );
      ( "warm_acquire",
        Json.Obj
          [
            ("n", Json.Int n_big);
            ("removed_fills_seconds", Json.Float t_fills);
            ("trivial_warm_run_seconds", Json.Float t_trivial);
          ] );
    ]

(* Host facts every BENCH_*.json header carries (PR 6 bench hygiene):
   single-core numbers are meaningless later without the core count,
   and peak RSS anchors the memory-ceiling methodology. *)
let meta_json ~mode =
  Json.Obj
    [
      ("mode", Json.Str mode);
      ("word_size", Json.Int Bench_env.word_size);
      ("ocaml", Json.Str Bench_env.ocaml_version);
      ("host_cores", Json.Int (Bench_env.cores ()));
      ("peak_rss_kb", Json.Int (Bench_env.peak_rss_kb ()));
    ]

(* ------------------------------------------------------------------ *)

let () =
  Array.iteri
    (fun i arg ->
      if
        i > 0 && arg <> "--smoke" && arg <> "--headline-only"
        && arg <> "--chaos"
      then begin
        Printf.eprintf
          "engine_bench: unknown argument %s\nusage: %s [--smoke] [--headline-only] [--chaos]\n"
          arg Sys.argv.(0);
        exit 2
      end)
    Sys.argv;
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let headline_only = Array.exists (String.equal "--headline-only") Sys.argv in
  if Array.exists (String.equal "--chaos") Sys.argv then begin
    Printf.printf "engine_bench (chaos %s mode)\n%!"
      (if smoke then "smoke" else "full");
    run_chaos ~smoke;
    exit 0
  end;
  let sizes = if smoke then [ 256 ] else [ 1024; 4096; 16384 ] in
  let headline_n = if smoke then 256 else 16384 in
  let blocks = if smoke then 4 else 8 in
  let reps = 5 in
  let quota = if smoke then 0.2 else 1.0 in
  Printf.printf "engine_bench (%s mode)\n%!" (if smoke then "smoke" else "full");
  let nchecks, failures =
    if headline_only then (0, []) else run_differential ()
  in
  let suite =
    if headline_only then []
    else begin
      Printf.printf "workload suite (fast backend)\n%!";
      run_suite sizes
    end
  in
  let headline = run_headline ~n:headline_n ~blocks ~reps ~quota in
  let scaling_n = if smoke then 256 else 4096 in
  let scaling_domains = if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let scaling =
    run_scaling ~n:scaling_n ~blocks:(if smoke then 2 else 4) ~reps:3
      ~domains:scaling_domains
  in
  let telemetry = run_telemetry_overhead ~n:headline_n ~blocks ~reps in
  let metrics = run_metrics_overhead ~n:headline_n ~blocks ~reps in
  let rmat = if headline_only then Json.Obj [] else run_rmat ~smoke in
  let engine_rmat =
    if headline_only then Json.Obj [] else run_engine_rmat ~smoke
  in
  let json =
    Json.Obj
      [
        ("meta", meta_json ~mode:(if smoke then "smoke" else "full"));
        ( "differential",
          Json.Obj
            [
              ("checks", Json.Int nchecks);
              ("failures", Json.List (List.map (fun f -> Json.Str f) failures));
              ("equivalent", Json.Bool (failures = []));
            ] );
        ("workloads", Json.List suite);
        ("headline", headline);
        ("rmat", rmat);
        ("engine_rmat", engine_rmat);
        ("scaling", scaling);
        ("telemetry_overhead", telemetry);
        ("metrics_overhead", metrics);
      ]
  in
  let oc = open_out "BENCH_congest.json" in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "wrote BENCH_congest.json\n%!";
  if failures <> [] then begin
    Printf.printf "DIFFERENTIAL FAILURES: %s\n%!" (String.concat ", " failures);
    exit 1
  end
