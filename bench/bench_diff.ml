(* Headline-throughput regression gate.

   Reads a BENCH_congest.json (freshly produced by engine_bench) and
   compares the headline fast-path figure — headline.after
   .rounds_per_sec, the BFS-on-ER n=16384 workload — against a
   committed floor. The floor is deliberately well below the committed
   headline (581 rounds/s at the time of writing) so scheduler noise
   on a busy CI host does not flap the gate; only a real regression
   (an engine hot-loop slowdown, e.g. metrics instrumentation leaking
   into the per-round path) trips it.

   Wall-clock throughput is only comparable between like hosts, so the
   gate self-skips (exit 0, loudly) when the JSON's meta.host_cores
   differs from --floor-cores: the floor was calibrated on a 1-core
   container, and a 32-core workstation would sail over it while a
   slower 1-core host legitimately under it.

   Exit codes: 0 pass or skip, 1 regression, 2 unreadable input. *)

let usage () =
  prerr_endline
    "usage: bench_diff [FILE] [--floor R/S] [--floor-cores N]\n\
     Compare FILE's (default BENCH_congest.json) headline fast-path\n\
     rounds/s against the committed floor; skip when the host core\n\
     count differs from the floor's calibration host.";
  exit 2

let () =
  let file = ref "BENCH_congest.json" in
  let floor = ref 356.0 in
  let floor_cores = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--floor" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> floor := f; parse rest
      | None -> usage ())
    | "--floor-cores" :: v :: rest -> (
      match int_of_string_opt v with
      | Some c -> floor_cores := c; parse rest
      | None -> usage ())
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest -> file := a; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let open Lightnet.Obs_json in
  let j =
    try parse_file !file
    with Sys_error e | Error e ->
      Printf.eprintf "bench_diff: cannot read %s: %s\n" !file e;
      exit 2
  in
  match
    ( to_int_opt (path [ "meta"; "host_cores" ] j),
      to_string_opt (path [ "meta"; "mode" ] j),
      to_float_opt (path [ "headline"; "after"; "rounds_per_sec" ] j) )
  with
  | Some cores, Some mode, Some rps -> (
    if mode <> "full" then begin
      (* Smoke runs use n=256 — a different workload entirely. *)
      Printf.printf
        "bench-diff: SKIP — %s is a %S-mode run, the floor is calibrated on \
         the full headline (n=16384)\n"
        !file mode;
      exit 0
    end;
    if cores <> !floor_cores then begin
      Printf.printf
        "bench-diff: SKIP — host has %d core(s), floor calibrated on %d; \
         wall-clock throughput is not comparable across hosts\n"
        cores !floor_cores;
      exit 0
    end;
    match classify_float rps with
    | FP_nan | FP_infinite ->
      Printf.printf "bench-diff: FAIL — headline rounds/s is %f\n" rps;
      exit 1
    | _ ->
      if rps >= !floor then begin
        Printf.printf
          "bench-diff: OK — headline %.0f rounds/s >= floor %.0f (%.2fx \
           headroom)\n"
          rps !floor (rps /. !floor);
        exit 0
      end
      else begin
        Printf.printf
          "bench-diff: FAIL — headline %.0f rounds/s under the committed \
           floor %.0f; the engine hot path regressed\n"
          rps !floor;
        exit 1
      end)
  | _ ->
    Printf.eprintf
      "bench_diff: %s lacks meta.host_cores / meta.mode / \
       headline.after.rounds_per_sec\n"
      !file;
    exit 2
