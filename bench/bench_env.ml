(* Host/environment facts stamped into every BENCH_*.json header so
   numbers stay interpretable after the fact: a single-core box and a
   32-core box produce very different par@N curves, and peak RSS is the
   figure the memory-ceiling methodology in EXPERIMENTS.md is stated
   in. Kept dependency-free (reads /proc directly) and shared by
   engine_bench, oracle_bench and scale_smoke. *)

let cores () = Domain.recommended_domain_count ()

let ocaml_version = Sys.ocaml_version

let word_size = Sys.word_size

(* Peak resident set size of this process in kilobytes, from
   /proc/self/status VmHWM. Returns 0 where /proc is unavailable
   (non-Linux), so headers degrade gracefully rather than fail. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          let digits = String.trim (String.sub line 6 (String.length line - 6)) in
          let kb =
            match String.index_opt digits ' ' with
            | Some i -> String.sub digits 0 i
            | None -> digits
          in
          close_in ic;
          int_of_string kb
        end
        else scan ()
      | exception End_of_file ->
        close_in ic;
        0
    in
    scan ()
  with _ -> 0

(* Live words / top-of-heap words right now, after a major slice, for
   peak-memory reporting that is about the data structures rather than
   GC slack. *)
let heap_words () =
  let st = Gc.stat () in
  (st.Gc.live_words, st.Gc.top_heap_words)
