(* Route-oracle benchmark: the serving-side numbers for the artifact +
   oracle layer, committed as BENCH_oracle.json.

   Sections:

   1. artifact: build + save + load wall times, file size, and a
      save->load->save byte-identity check on the benchmark graph.
   2. tiers: throughput and latency percentiles per query tier (label,
      spanner-Dijkstra, warm cache) on the same Zipf workload, plus
      the label-vs-Dijkstra and cache-vs-Dijkstra speedups — the
      serving claim is that both beat per-query Dijkstra on H.
   3. cache_sweep: hit rate, eviction count and qps as the LRU
      capacity sweeps a few powers of four, on Zipf and uniform
      workloads (uniform is the adversary: no hot set to keep).
   4. certification: stretch certificates for the cache tier (bound =
      the artifact's promised spanner stretch — must hold) and the
      label tier (measured tree stretch, reported not promised), and
      an exhaustive label-vs-Tree.dist agreement check.
   5. rmat: the artifact + tier pipeline on a Graph500-style input.
   6. store_fleet: the digest-keyed store + domain-sharded fleet —
      qps vs domain count on a Zipf-over-networks workload (checksums
      must be byte-identical at every count; the >= 1.5x @ 4 domains
      gate self-skips on 1-core hosts, mirroring bench-diff) and a
      store-LRU hit-rate sweep over capacity x network skew.
   7. slt_epsilon_sweep: measured root stretch and lightness of the
      SLT as epsilon sweeps the (1+O(eps), 1+O(1/eps)) trade-off.

   Hand-rolled JSON like the other benches (no yojson in the image);
   `--smoke` shrinks n so the whole run finishes in seconds, and
   `--store-fleet` runs section 6 at full size with everything else
   at smoke size. *)

open Lightnet

let spf = Printf.sprintf

module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (spf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec emit b ~indent t =
    let pad k = String.make k ' ' in
    match t with
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string b (spf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          Buffer.add_string b (if i = 0 then "" else ", ");
          emit b ~indent x)
        xs;
      Buffer.add_string b "]"
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_string b (spf "\"%s\": " (escape k));
          emit b ~indent:(indent + 2) v)
        kvs;
      Buffer.add_string b (spf "\n%s}" (pad indent))

  let to_string t =
    let b = Buffer.create 4096 in
    emit b ~indent:0 t;
    Buffer.add_char b '\n';
    Buffer.contents b
end

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let outcome_json (o : Serve.outcome) =
  Json.Obj
    [
      ("tier", Json.Str (Oracle.tier_name o.Serve.tier));
      ("queries", Json.Int o.Serve.queries);
      ("wall_s", Json.Float o.Serve.wall_s);
      ("qps", Json.Float o.Serve.qps);
      ("p50_us", Json.Float o.Serve.latency.Serve.p50_us);
      ("p90_us", Json.Float o.Serve.latency.Serve.p90_us);
      ("p99_us", Json.Float o.Serve.latency.Serve.p99_us);
      ("max_us", Json.Float o.Serve.latency.Serve.max_us);
      ("cache_hits", Json.Int o.Serve.cache.Oracle.hits);
      ("cache_misses", Json.Int o.Serve.cache.Oracle.misses);
      ("cache_evictions", Json.Int o.Serve.cache.Oracle.evictions);
      ("checksum", Json.Float o.Serve.checksum);
    ]

let certificate_json (c : Serve.certificate) =
  Json.Obj
    [
      ("verdict", Json.Str (Monitor.verdict_name c.Serve.report.Monitor.verdict));
      ("detail", Json.Str c.Serve.report.Monitor.detail);
      ("sampled", Json.Int c.Serve.sampled);
      ("exact_sssps", Json.Int c.Serve.sources);
      ("max_stretch", Json.Float c.Serve.max_stretch);
      ("violations", Json.Int c.Serve.violations);
      ("bound", Json.Float c.Serve.bound);
    ]

let () =
  let store_focus = Array.exists (( = ) "--store-fleet") Sys.argv in
  let smoke = Array.exists (( = ) "--smoke") Sys.argv || store_focus in
  let n = if smoke then 256 else 2000 in
  let seed = 7 in
  let q_fast = if smoke then 4_000 else 40_000 in
  let q_dijkstra = if smoke then 500 else 2_000 in
  Printf.printf "oracle bench: n=%d (%s)\n%!" n (if smoke then "smoke" else "full");

  (* Benchmark graph: random-geometric = the doubling workload. *)
  let rng = Random.State.make [| seed; 0x0b |] in
  let g =
    fst (Gen.random_geometric rng ~n ~radius:(2.0 /. Float.sqrt (float_of_int n)) ())
  in
  Printf.printf "graph: n=%d m=%d\n%!" (Graph.n g) (Graph.m g);

  (* 1. Artifact build / save / load. *)
  let (sp, _q), build_s =
    time (fun () -> Quick.light_spanner ~seed ~epsilon:0.25 g ~k:2)
  in
  let slt, slt_s =
    time (fun () ->
        Slt.build ~rng:(Random.State.make [| seed; 0x51 |]) g ~rt:0 ~epsilon:0.5)
  in
  let art =
    Artifact.make ~graph:g ~slt_root:0
      ~spanner_stretch:sp.Light_spanner.stretch_bound
      ~spanner_edges:sp.Light_spanner.edges ~slt_edges:slt.Slt.edges
      ~mst_edges:(Mst_seq.kruskal g)
      ~params:[ ("bench", "oracle"); ("n", string_of_int n) ]
      ()
  in
  let path = Filename.temp_file "lightnet_oracle" ".artifact" in
  let (), save_s = time (fun () -> Artifact.save path art) in
  let loaded, load_s = time (fun () -> Artifact.load path) in
  let size_bytes = (Unix.stat path).Unix.st_size in
  let path2 = Filename.temp_file "lightnet_oracle" ".artifact" in
  Artifact.save path2 loaded;
  let byte_identical = read_file path = read_file path2 in
  Sys.remove path;
  Sys.remove path2;
  Printf.printf
    "artifact: build %.2fs+%.2fs save %.4fs load %.4fs (%d bytes, resave identical: %b)\n%!"
    build_s slt_s save_s load_s size_bytes byte_identical;
  if not byte_identical then failwith "artifact re-save not byte-identical";

  (* 2. Throughput per tier on the same Zipf workload shape. *)
  let oracle = Oracle.create ~cache_capacity:64 loaded in
  let zipf = Workload.Zipf 1.1 in
  let pairs_fast = Workload.generate ~seed g zipf ~count:q_fast in
  let pairs_dij = Workload.generate ~seed g zipf ~count:q_dijkstra in
  let o_label = Serve.run oracle ~tier:Oracle.Label pairs_fast in
  let o_spanner = Serve.run oracle ~tier:Oracle.Spanner pairs_dij in
  (* Warm the cache with one pass, then measure the steady state. *)
  ignore (Serve.run oracle ~tier:Oracle.Cache pairs_dij);
  Oracle.reset_cache_stats oracle;
  let o_cache = Serve.run oracle ~tier:Oracle.Cache pairs_dij in
  List.iter
    (fun o -> Format.printf "  %a@." Serve.pp_outcome o)
    [ o_label; o_spanner; o_cache ];
  let speedup num den = if den > 0.0 then num /. den else 0.0 in
  let label_speedup = speedup o_label.Serve.qps o_spanner.Serve.qps in
  let cache_speedup = speedup o_cache.Serve.qps o_spanner.Serve.qps in
  Printf.printf "  label/dijkstra speedup %.1fx, warm-cache/dijkstra %.1fx\n%!"
    label_speedup cache_speedup;

  (* 3. Cache capacity sweep. *)
  let sweep_workloads = [ ("zipf", zipf); ("uniform", Workload.Uniform) ] in
  let sweep =
    List.map
      (fun (wname, spec) ->
        let pairs = Workload.generate ~seed g spec ~count:q_dijkstra in
        let rows =
          List.map
            (fun cap ->
              let o = Oracle.create ~cache_capacity:cap loaded in
              let out = Serve.run o ~tier:Oracle.Cache pairs in
              let s = Oracle.cache_stats o in
              let total = s.Oracle.hits + s.Oracle.misses in
              let hit_rate =
                if total = 0 then 0.0
                else float_of_int s.Oracle.hits /. float_of_int total
              in
              Printf.printf "  cache sweep %s cap=%d: hit rate %.3f, %.0f qps\n%!"
                wname cap hit_rate out.Serve.qps;
              Json.Obj
                [
                  ("capacity", Json.Int cap);
                  ("hit_rate", Json.Float hit_rate);
                  ("evictions", Json.Int s.Oracle.evictions);
                  ("qps", Json.Float out.Serve.qps);
                ])
            [ 1; 4; 16; 64; 256 ]
        in
        (wname, Json.List rows))
      sweep_workloads
  in

  (* 4. Certification. *)
  let cert_sample = if smoke then 300 else 1000 in
  let cert_cache =
    Serve.certify ~sample:cert_sample oracle ~tier:Oracle.Cache
      ~bound:loaded.Artifact.spanner_stretch pairs_fast
  in
  Format.printf "  cache-tier certificate: %a@." Serve.pp_certificate cert_cache;
  if cert_cache.Serve.report.Monitor.verdict <> Monitor.Correct then
    failwith "cache-tier certification failed";
  (* Label tier: measure the tree stretch first, then certify against a
     bound just above it — documents the measured value and exercises
     the certifier's pass path on tier B. *)
  let probe =
    Serve.certify ~sample:cert_sample oracle ~tier:Oracle.Label ~bound:infinity
      pairs_fast
  in
  let label_bound = probe.Serve.max_stretch *. 1.01 in
  let cert_label =
    Serve.certify ~sample:cert_sample oracle ~tier:Oracle.Label
      ~bound:label_bound pairs_fast
  in
  Format.printf "  label-tier certificate: %a@." Serve.pp_certificate cert_label;
  (* Exhaustive tier-B ground truth: labels equal Tree.dist everywhere
     on a sampled pair set. *)
  let slt_tree = Tree.of_edges g ~root:0 loaded.Artifact.slt_edges in
  let labels = Oracle.labels oracle in
  let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a) in
  let label_agree =
    Array.for_all
      (fun (u, v) -> close (Labels.dist labels u v) (Tree.dist slt_tree u v))
      pairs_fast
  in
  Printf.printf "  label vs Tree.dist agreement on %d pairs: %b\n%!"
    (Array.length pairs_fast) label_agree;
  if not label_agree then failwith "label distances disagree with Tree.dist";

  (* 5. RMAT serving section: the same artifact + tier pipeline on a
     Graph500-style input (heavy-tailed degrees, the shape the scaled
     substrate targets) instead of the doubling geometric graph. The
     RMAT draw is made connected so the MST is a spanning tree usable
     as both the artifact's SLT and (trivially) its spanner; certifier
     runs are skipped — this section is about build + serving
     throughput on the skewed topology, not stretch quality. *)
  let rmat_scale = if smoke then 10 else 17 in
  let rmat_json =
    let rng = Random.State.make [| seed; 0x9a75 |] in
    let (g_r, gen_s) =
      time (fun () ->
          Gen.ensure_connected rng (Gen.rmat rng ~scale:rmat_scale ~edge_factor:8 ()))
    in
    let mst, mst_s = time (fun () -> Mst_seq.kruskal g_r) in
    let art_r, make_s =
      time (fun () ->
          Artifact.make ~graph:g_r ~slt_root:0 ~spanner_stretch:infinity
            ~spanner_edges:mst ~slt_edges:mst ~mst_edges:mst
            ~params:[ ("bench", "oracle-rmat"); ("scale", string_of_int rmat_scale) ]
            ())
    in
    let path = Filename.temp_file "lightnet_oracle_rmat" ".artifact" in
    let (), save_s = time (fun () -> Artifact.save path art_r) in
    let loaded_r, load_s = time (fun () -> Artifact.load path) in
    let size_bytes = (Unix.stat path).Unix.st_size in
    Sys.remove path;
    (* Per-tier query counts scale with per-query cost: label lookups
       are O(1)ish, tree-Dijkstra pays O(n log n) per query at n=2^17,
       and the cache tier amortizes the same Dijkstra across a Zipf
       hot set — skew 1.5, so repeat sources dominate and the measured
       hit rate is the serving claim (an exact SSSP per *distinct*
       source, not per query). *)
    let q_label = if smoke then 1_000 else 4_000 in
    let q_dij_r = if smoke then 50 else 100 in
    let q_cache = if smoke then 500 else 2_000 in
    let cache_skew = 1.5 in
    let oracle_r = Oracle.create ~cache_capacity:256 loaded_r in
    let pairs_label = Workload.generate ~seed g_r (Workload.Zipf 1.1) ~count:q_label in
    let pairs_dij = Workload.generate ~seed g_r (Workload.Zipf 1.1) ~count:q_dij_r in
    let pairs_cache =
      Workload.generate ~seed g_r (Workload.Zipf cache_skew) ~count:q_cache
    in
    let o_label = Serve.run oracle_r ~tier:Oracle.Label pairs_label in
    let o_spanner = Serve.run oracle_r ~tier:Oracle.Spanner pairs_dij in
    let o_cache = Serve.run oracle_r ~tier:Oracle.Cache pairs_cache in
    let cs = Oracle.cache_stats oracle_r in
    let cache_total = cs.Oracle.hits + cs.Oracle.misses in
    let cache_hit_rate =
      if cache_total = 0 then 0.0
      else float_of_int cs.Oracle.hits /. float_of_int cache_total
    in
    Printf.printf
      "rmat serving: scale=%d n=%d m=%d gen %.2fs mst %.2fs artifact %.2fs+%.4fs+%.4fs | label %.0f qps, tree-dijkstra %.0f qps, cache %.0f qps (zipf %.1f, hit rate %.3f)\n%!"
      rmat_scale (Graph.n g_r) (Graph.m g_r) gen_s mst_s make_s save_s load_s
      o_label.Serve.qps o_spanner.Serve.qps o_cache.Serve.qps cache_skew
      cache_hit_rate;
    Json.Obj
      [
        ("scale", Json.Int rmat_scale);
        ("edge_factor", Json.Int 8);
        ("n", Json.Int (Graph.n g_r));
        ("m", Json.Int (Graph.m g_r));
        ("gen_s", Json.Float gen_s);
        ("mst_s", Json.Float mst_s);
        ("artifact_make_s", Json.Float make_s);
        ("artifact_save_s", Json.Float save_s);
        ("artifact_load_s", Json.Float load_s);
        ("artifact_size_bytes", Json.Int size_bytes);
        ("label", outcome_json o_label);
        ("spanner_dijkstra", outcome_json o_spanner);
        ("cache", outcome_json o_cache);
        ("cache_workload", Json.Str (Workload.describe (Workload.Zipf cache_skew)));
        ("cache_hit_rate", Json.Float cache_hit_rate);
      ]
  in

  (* 6. Store fleet: a directory of digest-keyed networks served by
     the domain-sharded driver. Throughput is measured on the cache
     tier (each domain clones the oracle, so tier C parallelizes
     without sharing the mutable LRU); the per-network answered-
     distance checksums must come out byte-identical at every domain
     count or the bench hard-fails — that is the determinism contract
     the fleet ships. The >= 1.5x @ 4 domains gate self-skips on
     1-core hosts (wall-clock speedup needs parallel hardware),
     mirroring bench-diff's calibration-host rule. *)
  let full_fleet = (not smoke) || store_focus in
  let fleet_nets = if full_fleet then 6 else 3 in
  let fleet_net_n = if full_fleet then 400 else 96 in
  let q_fleet = if full_fleet then 20_000 else 2_000 in
  let store_dir = Filename.temp_file "lightnet_oracle_store" "" in
  Sys.remove store_dir;
  let store_fleet_json =
    let st = Store.open_dir ~capacity:4 ~cache_capacity:64 store_dir in
    let build_s = ref 0.0 in
    for i = 0 to fleet_nets - 1 do
      let rng_i = Random.State.make [| seed; 0x57; i |] in
      let g_i =
        fst
          (Gen.random_geometric rng_i ~n:fleet_net_n
             ~radius:(2.0 /. Float.sqrt (float_of_int fleet_net_n))
             ())
      in
      let art_i, dt =
        time (fun () ->
            let sp_i, _ =
              Quick.light_spanner ~seed:(seed + i) ~epsilon:0.25 g_i ~k:2
            in
            let slt_i = Slt.build ~rng:rng_i g_i ~rt:0 ~epsilon:0.5 in
            Artifact.make ~graph:g_i ~slt_root:0
              ~spanner_stretch:sp_i.Light_spanner.stretch_bound
              ~spanner_edges:sp_i.Light_spanner.edges
              ~slt_edges:slt_i.Slt.edges ~mst_edges:(Mst_seq.kruskal g_i)
              ~params:[ ("bench", "store-fleet"); ("net", string_of_int i) ]
              ())
      in
      build_s := !build_s +. dt;
      let tmp = Filename.temp_file "lightnet_oracle_net" ".artifact" in
      Artifact.save tmp art_i;
      (match Store.add st tmp with
      | Ok (_, `Added) -> ()
      | Ok (_, `Duplicate) -> failwith "store fleet: duplicate network seed"
      | Error why -> failwith ("store fleet: add failed: " ^ why));
      Sys.remove tmp
    done;
    Printf.printf "store fleet: %d networks (n=%d each) built in %.2fs\n%!"
      fleet_nets fleet_net_n !build_s;
    let requests =
      Fleet.workload ~seed ~net_skew:1.1 st (Workload.Zipf 1.1) ~count:q_fleet
    in
    let run_at d =
      let o = Fleet.run ~domains:d st ~tier:Oracle.Cache requests in
      Format.printf "  %a@." Fleet.pp_outcome o;
      o
    in
    let o1 = run_at 1 in
    let o2 = run_at 2 in
    let o4 = run_at 4 in
    if
      Fleet.checksum_lines o1 <> Fleet.checksum_lines o2
      || Fleet.checksum_lines o2 <> Fleet.checksum_lines o4
    then failwith "store fleet: checksums differ across domain counts";
    let speedup4 = if o1.Fleet.qps > 0.0 then o4.Fleet.qps /. o1.Fleet.qps else 0.0 in
    let gate_required = 1.5 in
    let cores = Bench_env.cores () in
    let gate_note =
      if cores <= 1 then
        spf "SKIP: host has %d core(s); the %.1fx @ 4 domains gate needs parallel hardware"
          cores gate_required
      else if speedup4 >= gate_required then
        spf "pass: %.2fx >= %.1fx" speedup4 gate_required
      else spf "FAIL: %.2fx < %.1fx" speedup4 gate_required
    in
    Printf.printf "  4-domain speedup %.2fx (%s)\n%!" speedup4 gate_note;
    if cores > 1 && speedup4 < gate_required then
      failwith ("store fleet speedup gate: " ^ gate_note);
    (* Store-LRU hit-rate sweep: capacity x network skew, at 1 domain
       so the LRU accounting is the deterministic sequential order.
       Fleet.run reports deltas, so the loads done while generating
       the workload don't pollute the measured rate. *)
    let sweep_rows =
      List.concat_map
        (fun cap ->
          List.map
            (fun skew ->
              let st_s = Store.open_dir ~capacity:cap ~cache_capacity:64 store_dir in
              let reqs =
                Fleet.workload ~seed ~net_skew:skew st_s (Workload.Zipf 1.1)
                  ~count:(q_fleet / 2)
              in
              let o = Fleet.run ~domains:1 st_s ~tier:Oracle.Cache reqs in
              let hit_rate = Fleet.store_hit_rate o in
              Printf.printf
                "  store sweep cap=%d skew=%.1f: hit rate %.3f (%d evictions), %.0f qps\n%!"
                cap skew hit_rate o.Fleet.store.Store.evictions o.Fleet.qps;
              Json.Obj
                [
                  ("capacity", Json.Int cap);
                  ("net_skew", Json.Float skew);
                  ("hit_rate", Json.Float hit_rate);
                  ("evictions", Json.Int o.Fleet.store.Store.evictions);
                  ("qps", Json.Float o.Fleet.qps);
                ])
            [ 0.8; 1.2; 1.6 ])
        [ 1; 2; 4; 8 ]
    in
    let by_domains (o : Fleet.outcome) =
      Json.Obj
        [
          ("domains", Json.Int o.Fleet.domains);
          ("qps", Json.Float o.Fleet.qps);
          ("wall_s", Json.Float o.Fleet.wall_s);
          ("p99_us", Json.Float o.Fleet.latency.Serve.p99_us);
          ("checksum", Json.Float o.Fleet.checksum);
        ]
    in
    Json.Obj
      [
        ("networks", Json.Int fleet_nets);
        ("net_n", Json.Int fleet_net_n);
        ("queries", Json.Int q_fleet);
        ("tier", Json.Str "cache");
        ("workload", Json.Str "zipf(s=1.1) pairs, zipf(s=1.1) over networks");
        ("build_s", Json.Float !build_s);
        ("store_hit_rate", Json.Float (Fleet.store_hit_rate o1));
        ("qps_by_domains", Json.List [ by_domains o1; by_domains o2; by_domains o4 ]);
        ("checksums_identical_1_2_4", Json.Bool true);
        ("speedup_4_domains", Json.Float speedup4);
        ( "gate",
          Json.Obj
            [
              ("required_speedup", Json.Float gate_required);
              ("host_cores", Json.Int cores);
              ("result", Json.Str gate_note);
            ] );
        ("hit_rate_sweep", Json.List sweep_rows);
      ]
  in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat store_dir f) with Sys_error _ -> ())
    (Sys.readdir store_dir);
  (try Unix.rmdir store_dir with Unix.Unix_error _ -> ());

  (* 7. SLT epsilon sweep: the (1 + O(eps), 1 + O(1/eps)) trade-off,
     measured. For each epsilon the table reports build time, the
     promised (alpha, beta) bounds, and the measured quantities they
     bound: max/mean root stretch d_T(rt,v)/d_G(rt,v) over every
     reachable vertex (exact Dijkstra ground truth) and lightness
     w(T)/w(MST). *)
  let slt_sweep_json =
    let exact = Paths.dijkstra g 0 in
    let mst_w =
      List.fold_left
        (fun acc id -> acc +. Graph.weight g id)
        0.0 loaded.Artifact.mst_edges
    in
    let rows =
      List.map
        (fun eps ->
          let slt_e, build_s =
            time (fun () ->
                Slt.build ~rng:(Random.State.make [| seed; 0x5e |]) g ~rt:0
                  ~epsilon:eps)
          in
          let t = slt_e.Slt.tree in
          let max_stretch = ref 1.0 in
          let sum_stretch = ref 0.0 in
          let count = ref 0 in
          for v = 1 to Graph.n g - 1 do
            let d = exact.Paths.dist.(v) in
            if Float.is_finite d && d > 0.0 then begin
              let s = Tree.dist_to_root t v /. d in
              if s > !max_stretch then max_stretch := s;
              sum_stretch := !sum_stretch +. s;
              incr count
            end
          done;
          let mean_stretch =
            if !count = 0 then 1.0 else !sum_stretch /. float_of_int !count
          in
          let lightness = if mst_w > 0.0 then Tree.weight t /. mst_w else 0.0 in
          Printf.printf
            "  slt eps=%-6g: build %.2fs, root stretch max %.4f mean %.4f (promised %.2f), lightness %.3f (promised %.2f)\n%!"
            eps build_s !max_stretch mean_stretch slt_e.Slt.stretch_bound
            lightness slt_e.Slt.lightness_bound;
          if !max_stretch > slt_e.Slt.stretch_bound +. 1e-9 then
            failwith (spf "slt sweep: eps=%g broke its stretch promise" eps);
          Json.Obj
            [
              ("epsilon", Json.Float eps);
              ("build_s", Json.Float build_s);
              ("edges", Json.Int (List.length slt_e.Slt.edges));
              ("max_root_stretch", Json.Float !max_stretch);
              ("mean_root_stretch", Json.Float mean_stretch);
              ("stretch_bound", Json.Float slt_e.Slt.stretch_bound);
              ("lightness", Json.Float lightness);
              ("lightness_bound", Json.Float slt_e.Slt.lightness_bound);
            ])
        [ 0.0625; 0.125; 0.25; 0.5; 1.0 ]
    in
    Json.Obj
      [
        ("n", Json.Int (Graph.n g));
        ("model", Json.Str "geo");
        ("mst_weight", Json.Float mst_w);
        ("rows", Json.List rows);
      ]
  in

  let json =
    Json.Obj
      [
        ("bench", Json.Str "route-oracle");
        ("mode", Json.Str (if smoke then "smoke" else "full"));
        ( "meta",
          Json.Obj
            [
              ("word_size", Json.Int Bench_env.word_size);
              ("ocaml", Json.Str Bench_env.ocaml_version);
              ("host_cores", Json.Int (Bench_env.cores ()));
              ("peak_rss_kb", Json.Int (Bench_env.peak_rss_kb ()));
            ] );
        ( "graph",
          Json.Obj
            [
              ("model", Json.Str "geo");
              ("n", Json.Int (Graph.n g));
              ("m", Json.Int (Graph.m g));
              ("seed", Json.Int seed);
            ] );
        ( "artifact",
          Json.Obj
            [
              ("spanner_build_s", Json.Float build_s);
              ("slt_build_s", Json.Float slt_s);
              ("save_s", Json.Float save_s);
              ("load_s", Json.Float load_s);
              ("size_bytes", Json.Int size_bytes);
              ("resave_byte_identical", Json.Bool byte_identical);
              ("spanner_edges", Json.Int (List.length loaded.Artifact.spanner_edges));
              ("graph_digest", Json.Str (Artifact.digest_hex loaded));
            ] );
        ( "tiers",
          Json.Obj
            [
              ("workload", Json.Str (Workload.describe zipf));
              ("label", outcome_json o_label);
              ("spanner_dijkstra", outcome_json o_spanner);
              ("cache_warm", outcome_json o_cache);
              ("label_vs_dijkstra_speedup", Json.Float label_speedup);
              ("cache_vs_dijkstra_speedup", Json.Float cache_speedup);
            ] );
        ("cache_sweep", Json.Obj sweep);
        ("rmat", rmat_json);
        ("store_fleet", store_fleet_json);
        ("slt_epsilon_sweep", slt_sweep_json);
        ( "certification",
          Json.Obj
            [
              ("cache_tier", certificate_json cert_cache);
              ("label_tier", certificate_json cert_label);
              ( "label_matches_tree_dist_pairs",
                Json.Int (Array.length pairs_fast) );
              ("label_matches_tree_dist", Json.Bool label_agree);
            ] );
      ]
  in
  let oc = open_out "BENCH_oracle.json" in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "wrote BENCH_oracle.json\n%!"
