(* Substrate perf regression gate at Graph500 scale.

   Builds an RMAT graph through the streaming constructor, runs BFS
   from sampled sources (reporting TEPS), extracts the MST forest and
   round-trips a route artifact — all under a wall-clock ceiling and a
   Gc top-of-heap ceiling, so a CSR or generator regression fails
   `dune runtest` (scale 14 via the @scale-smoke alias) or `make scale`
   (scale 17) instead of only drifting in the committed BENCH JSONs.

   Ceilings are deliberately loose (several x measured) — they catch
   representation-level regressions (boxing the adjacency again,
   accidentally materializing edge lists), not micro-noise. *)

module Graph = Lightnet.Graph
module Gen = Lightnet.Gen
module Paths = Lightnet.Paths
module Mst_seq = Lightnet.Mst_seq
module Artifact = Lightnet.Artifact
module Engine = Lightnet.Engine
module Bfs = Lightnet.Bfs

let scale = ref 14
let edge_factor = ref 16
let max_seconds = ref 60.0
let max_heap_mw = ref 0 (* mega-words; 0 = derived from scale below *)
let sources = ref 8

let speclist =
  [
    ("--scale", Arg.Set_int scale, "RMAT scale (n = 2^scale), default 14");
    ("--edge-factor", Arg.Set_int edge_factor, "edges per vertex drawn, default 16");
    ("--max-seconds", Arg.Set_float max_seconds, "wall-clock ceiling, default 60");
    ("--max-heap-mw", Arg.Set_int max_heap_mw,
     "Gc top-heap ceiling in mega-words (0 = auto from scale)");
    ("--sources", Arg.Set_int sources, "BFS sources sampled, default 8");
  ]

let () =
  Arg.parse speclist (fun _ -> ()) "scale_smoke [options]";
  let t_start = Unix.gettimeofday () in
  let rng = Random.State.make [| 0x5ca1e; !scale |] in
  let n = 1 lsl !scale in

  let t0 = Unix.gettimeofday () in
  let us, vs, ws = Gen.rmat_edges rng ~scale:!scale ~edge_factor:!edge_factor () in
  let t_gen = Unix.gettimeofday () -. t0 in

  let t0 = Unix.gettimeofday () in
  let g = Graph.of_edge_arrays ~n us vs ws in
  let t_build = Unix.gettimeofday () -. t0 in
  let m = Graph.m g in

  (* BFS + TEPS over sampled degree>0 sources. Traversed edges for a
     run = (sum of degrees of reached vertices) / 2, the Graph500
     convention. *)
  let t0 = Unix.gettimeofday () in
  let traversed = ref 0.0 in
  let srcs_done = ref 0 in
  let tries = ref 0 in
  while !srcs_done < !sources && !tries < 100 * !sources do
    incr tries;
    let s = Random.State.int rng n in
    if Graph.degree g s > 0 then begin
      let dist = Paths.bfs_hops g s in
      let e = ref 0 in
      for v = 0 to n - 1 do
        if dist.(v) >= 0 then e := !e + Graph.degree g v
      done;
      traversed := !traversed +. (float_of_int !e /. 2.0);
      incr srcs_done
    end
  done;
  let t_bfs = Unix.gettimeofday () -. t0 in
  let teps = if t_bfs > 0.0 then !traversed /. t_bfs else 0.0 in

  (* CONGEST-engine leg: relaxing BFS through run_fast on the same
     graph, so an engine hot-path regression (scratch reacquisition
     going O(n), inbox chains boxing, the dense round path
     materializing worklists) trips the same wall/heap ceilings as a
     substrate regression. Layers are checked against the sequential
     BFS — the engine must agree, not merely finish. *)
  let t0 = Unix.gettimeofday () in
  let root =
    let r = ref 0 in
    while Graph.degree g !r = 0 do incr r done;
    !r
  in
  let e_states, e_stats = Engine.run_fast g (Bfs.relaxing_program ~root) in
  let t_engine = Unix.gettimeofday () -. t0 in
  let engine_rps =
    if t_engine > 0.0 then float_of_int e_stats.Engine.rounds /. t_engine
    else 0.0
  in
  let seq_dist = Paths.bfs_hops g root in
  Array.iteri
    (fun v (s : Bfs.state) ->
      if s.Bfs.dist <> seq_dist.(v) then begin
        Printf.eprintf
          "scale_smoke: engine BFS layer mismatch at v=%d (engine %d, seq %d)\n"
          v s.Bfs.dist seq_dist.(v);
        exit 1
      end)
    e_states;

  let t0 = Unix.gettimeofday () in
  let forest = Mst_seq.forest g in
  let t_mst = Unix.gettimeofday () -. t0 in

  let t0 = Unix.gettimeofday () in
  let artifact =
    Artifact.make ~graph:g ~slt_root:0 ~spanner_stretch:1.0
      ~spanner_edges:forest ~slt_edges:forest ~mst_edges:forest
      ~params:[ ("scale", string_of_int !scale) ]
      ()
  in
  (* Round-trip through a temp file: `dune exec` runs with cwd = the
     invocation directory, so a relative path here would strand a
     multi-megabyte artifact at the repo root (gitignored, but still
     30 MB of clutter at scale 17). *)
  let file =
    Filename.temp_file (Printf.sprintf "scale_smoke_%d_" !scale) ".artifact"
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Artifact.save file artifact;
      let reloaded = Artifact.load file in
      if reloaded.Artifact.digest <> artifact.Artifact.digest then begin
        prerr_endline "scale_smoke: artifact digest changed across save/load";
        exit 1
      end);
  let t_artifact = Unix.gettimeofday () -. t0 in

  let wall = Unix.gettimeofday () -. t_start in
  let live_w, top_w = Bench_env.heap_words () in
  let rss_kb = Bench_env.peak_rss_kb () in
  Printf.printf
    "scale-smoke: scale=%d n=%d m=%d | gen %.2fs build %.2fs bfs %.2fs (%.2e TEPS, %d srcs) engine %.2fs (%d rounds, %.0f rounds/s, %d msgs) mst %.2fs artifact %.2fs | wall %.2fs heap top %.1f Mw rss %d MB\n%!"
    !scale n m t_gen t_build t_bfs teps !srcs_done t_engine
    e_stats.Engine.rounds engine_rps e_stats.Engine.messages t_mst t_artifact
    wall
    (float_of_int top_w /. 1e6)
    (rss_kb / 1024);

  let heap_ceiling_mw =
    if !max_heap_mw > 0 then !max_heap_mw
    else
      (* Auto ceiling: the pipeline's resident structures are O(m)
         words across generator columns, CSR, forest and artifact —
         measured ~29 words per drawn edge at scales 14/17/20. 90
         words per drawn edge = 3x headroom before the gate trips. *)
      max 64 (90 * !edge_factor * n / 1_000_000)
  in
  let failed = ref false in
  if wall > !max_seconds then begin
    Printf.eprintf "scale_smoke: wall %.2fs exceeds ceiling %.2fs\n" wall !max_seconds;
    failed := true
  end;
  if float_of_int top_w > float_of_int heap_ceiling_mw *. 1e6 then begin
    Printf.eprintf "scale_smoke: top heap %.1f Mw exceeds ceiling %d Mw\n"
      (float_of_int top_w /. 1e6)
      heap_ceiling_mw;
    failed := true
  end;
  ignore live_w;
  if !failed then exit 1
