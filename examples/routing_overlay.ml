(* Light spanners as routing overlays, served through the route-oracle
   layer (the [WCT02] motivation cited in the paper's introduction:
   "light graphs with small routing cost").

   A network operator wants to pin down a sparse overlay: every node
   keeps only its overlay links, yet any-to-any routes must stay close
   to shortest. The overlay's total weight is the cost of provisioning
   (fiber, leases), so lightness is money. This example runs the full
   consumption pipeline on one network:

     1. construct MST, Section-5 light spanner and the SLT once;
     2. package them into a versioned artifact, save it, load it back
        (the serving side never re-runs a construction);
     3. answer a Zipf-skewed workload on all three oracle tiers —
        exact Dijkstra on the spanner, O(1) tree-distance labels on
        the SLT, and the source-cached spanner tier;
     4. certify the answered stretch against exact distances on G.

   Run with:  dune exec examples/routing_overlay.exe *)

open Lightnet

let () =
  let seed = 1234 in
  let rng = Random.State.make [| seed |] in
  let g = Gen.erdos_renyi rng ~n:180 ~p:0.09 ~w_lo:1.0 ~w_hi:50.0 () in
  Format.printf "network: %a@.@." Graph.pp g;

  (* Construction side: spanner + SLT + MST, packaged once. *)
  let sp, quality = Quick.light_spanner ~seed ~epsilon:0.25 g ~k:2 in
  let slt =
    Slt.build ~rng:(Random.State.make [| seed; 0x51 |]) g ~rt:0 ~epsilon:0.5
  in
  let mst = Mst_seq.kruskal g in
  Format.printf "spanner: %a@." Quick.pp_quality quality;
  let cost edges = Graph.weight_of_edges g edges in
  Format.printf "overlay cost: mesh %.1f   spanner %.1f   slt %.1f   mst %.1f@."
    (Graph.total_weight g)
    (cost sp.Light_spanner.edges)
    (cost slt.Slt.edges) (cost mst);

  let art =
    Artifact.make ~graph:g ~slt_root:0
      ~spanner_stretch:sp.Light_spanner.stretch_bound
      ~spanner_edges:sp.Light_spanner.edges ~slt_edges:slt.Slt.edges
      ~mst_edges:mst
      ~params:[ ("model", "er"); ("seed", string_of_int seed) ]
      ()
  in
  let file = Filename.temp_file "routing_overlay" ".artifact" in
  Artifact.save file art;
  Format.printf "@.%a@." Artifact.pp art;
  Format.printf "artifact saved to %s (%d bytes), loading it back@.@." file
    (Unix.stat file).Unix.st_size;

  (* Serving side: everything below touches only the loaded artifact. *)
  let art = Artifact.load file in
  Sys.remove file;
  let oracle = Oracle.create ~cache_capacity:24 art in
  let pairs = Workload.generate ~seed:7 art.Artifact.graph (Workload.Zipf 1.2) ~count:4000 in
  Format.printf "workload: %s, %d queries@." (Workload.describe (Workload.Zipf 1.2))
    (Array.length pairs);
  List.iter
    (fun tier ->
      Oracle.reset_cache_stats oracle;
      let o = Serve.run oracle ~tier pairs in
      Format.printf "  %a@." Serve.pp_outcome o)
    [ Oracle.Spanner; Oracle.Label; Oracle.Cache ];

  (* Certify: the spanner tiers must honour the promised stretch; the
     label tier's tree routes trade stretch for O(1) answers, so its
     bound is measured, not promised. *)
  let cert =
    Serve.certify ~sample:400 oracle ~tier:Oracle.Cache
      ~bound:art.Artifact.spanner_stretch pairs
  in
  Format.printf "@.cache tier vs promised bound: %a@." Serve.pp_certificate cert;
  let tree_cert =
    Serve.certify ~sample:400 oracle ~tier:Oracle.Label ~bound:Float.infinity
      pairs
  in
  Format.printf "label tier measured stretch: max %.3f over %d sampled pairs@."
    tree_cert.Serve.max_stretch tree_cert.Serve.sampled;

  Format.printf
    "@.The label tier answers from O(1)-word per-vertex labels - no graph@.traversal at all - at tree-route stretch; the cached spanner tier keeps@.the promised %.2fx bound while amortising Dijkstra across the Zipf hot@.set. Lightness is what the overlay costs; the artifact is what the@.serving fleet ships.@."
    art.Artifact.spanner_stretch
