module Graph = Ln_graph.Graph
module Tour_table = Ln_traversal.Tour_table
module Engine = Ln_congest.Engine

(* ------------------------------------------------------------------ *)
(* Shared position helpers                                             *)

let check_centers (tt : Tour_table.t) ~is_center =
  if tt.Tour_table.len > 0 && not (is_center 0) then
    invalid_arg "Intervals: position 0 must be a center"

(* Directed routing along L: position j -> j-1 uses the reverse of the
   L-step (j-1 -> j); position j -> j+1 uses the L-step (j -> j+1).
   Each is a distinct directed edge use, so parallel intervals never
   collide (the engine checks). *)
let edge_left (tt : Tour_table.t) j = tt.Tour_table.next_edge.(j - 1)
let edge_right (tt : Tour_table.t) j = tt.Tour_table.next_edge.(j)

(* ------------------------------------------------------------------ *)
(* aggregate                                                           *)

(* The right-to-left sweep and the left-to-right sweep are run as two
   separate engine executions: within a single sweep every position
   uses a distinct directed edge, but the reverse direction of one
   interval's up-sweep coincides with another interval's down-sweep
   direction, so overlapping them in time can collide (the engine's
   congestion checker catches exactly this). *)

let aggregate ?(value_words = 2) g ~tt ~is_center ~value ~combine =
  let open Engine in
  check_centers tt ~is_center;
  let len = tt.Tour_table.len in
  let is_last j = j = len - 1 || is_center (j + 1) in
  let combine_opt a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (combine a b)
  in
  let word_cap = max 4 (2 + value_words) in
  (* Sweep 1: right-to-left accumulation into the centers. *)
  let center_acc = Array.make len None in
  let sweep1 : ((int, unit) Hashtbl.t, int * 'a option) Engine.program =
    let resolve s j x =
      Hashtbl.replace s j ();
      let acc = combine_opt (value j) x in
      if is_center j then begin
        center_acc.(j) <- acc;
        []
      end
      else [ { via = edge_left tt j; msg = (j - 1, acc) } ]
    in
    {
      name = "interval-aggregate-up";
      words = (fun _ -> 2 + value_words);
      init =
        (fun ctx ->
          let s = Hashtbl.create 4 in
          let outs =
            List.concat_map
              (fun j -> if is_last j then resolve s j None else [])
              tt.Tour_table.positions_of.(ctx.me)
          in
          (s, outs));
      step =
        (fun _ctx ~round:_ s inbox ->
          let outs =
            List.concat_map
              (fun (r : (int * 'a option) received) ->
                let j, x = r.payload in
                resolve s j x)
              inbox
          in
          (s, outs, false));
    }
  in
  let _, st1 = Engine.run ~word_cap g sweep1 in
  (* Sweep 2: centers distribute the interval value rightward. *)
  let result = Array.make len None in
  for j = 0 to len - 1 do
    if is_center j then result.(j) <- center_acc.(j)
  done;
  let sweep2 : (unit, int * 'a) Engine.program =
    let forward j f =
      if j + 1 < len && not (is_center (j + 1)) then
        [ { via = edge_right tt j; msg = (j + 1, f) } ]
      else []
    in
    {
      name = "interval-aggregate-down";
      words = (fun _ -> 2 + value_words);
      init =
        (fun ctx ->
          let outs =
            List.concat_map
              (fun j ->
                if is_center j then begin
                  match center_acc.(j) with Some f -> forward j f | None -> []
                end
                else [])
              tt.Tour_table.positions_of.(ctx.me)
          in
          ((), outs));
      step =
        (fun _ctx ~round:_ s inbox ->
          let outs =
            List.concat_map
              (fun (r : (int * 'a) received) ->
                let j, f = r.payload in
                result.(j) <- Some f;
                forward j f)
              inbox
          in
          (s, outs, false));
    }
  in
  let _, st2 = Engine.run ~word_cap g sweep2 in
  let stats =
    {
      rounds = st1.rounds + st2.rounds;
      messages = st1.messages + st2.messages;
      total_words = st1.total_words + st2.total_words;
      max_edge_load = max st1.max_edge_load st2.max_edge_load;
      outcome =
        (if st1.outcome = Engine.Round_limit || st2.outcome = Engine.Round_limit
         then Engine.Round_limit
         else Engine.Converged);
      dropped_messages = st1.dropped_messages + st2.dropped_messages;
      retransmissions = st1.retransmissions + st2.retransmissions;
    }
  in
  (result, stats)

(* ------------------------------------------------------------------ *)
(* gather                                                              *)

type 'b gat_msg = Item of int * 'b | Done of int

type 'b pos_gat = {
  mutable queue : 'b list;
  mutable right_done : bool;
  mutable sent_done : bool;
  mutable collected : 'b list;
}

let gather ?(value_words = 2) g ~tt ~is_center ~items =
  let open Engine in
  check_centers tt ~is_center;
  let len = tt.Tour_table.len in
  let is_last j = j = len - 1 || is_center (j + 1) in
  let program : ((int, 'b pos_gat) Hashtbl.t, 'b gat_msg) Engine.program =
    let cell s j =
      match Hashtbl.find_opt s j with
      | Some c -> c
      | None ->
        let c =
          { queue = items j; right_done = is_last j; sent_done = false; collected = [] }
        in
        (* Centers swallow their own items directly. *)
        if is_center j then begin
          c.collected <- c.queue;
          c.queue <- []
        end;
        Hashtbl.replace s j c;
        c
    in
    (* One round of output for position j. *)
    let emit s j =
      let c = cell s j in
      if is_center j then []
      else begin
        match c.queue with
        | it :: rest ->
          c.queue <- rest;
          [ { via = edge_left tt j; msg = Item (j - 1, it) } ]
        | [] ->
          if c.right_done && not c.sent_done then begin
            c.sent_done <- true;
            [ { via = edge_left tt j; msg = Done (j - 1) } ]
          end
          else []
      end
    in
    let active s positions =
      List.exists
        (fun j ->
          let c = cell s j in
          (not (is_center j)) && not c.sent_done)
        positions
    in
    {
      name = "interval-gather";
      words = (fun _ -> 2 + value_words);
      init =
        (fun ctx ->
          let s = Hashtbl.create 4 in
          let outs = List.concat_map (emit s) tt.Tour_table.positions_of.(ctx.me) in
          (s, outs));
      step =
        (fun ctx ~round:_ s inbox ->
          List.iter
            (fun (r : 'b gat_msg received) ->
              match r.payload with
              | Item (j, it) ->
                let c = cell s j in
                if is_center j then c.collected <- it :: c.collected
                else c.queue <- c.queue @ [ it ]
              | Done j -> (cell s j).right_done <- true)
            inbox;
          let outs = List.concat_map (emit s) tt.Tour_table.positions_of.(ctx.me) in
          (s, outs, active s tt.Tour_table.positions_of.(ctx.me)));
    }
  in
  let word_cap = max 4 (2 + value_words) in
  let states, stats = Engine.run ~word_cap g program in
  let result = Array.make len [] in
  Array.iter
    (fun s -> Hashtbl.iter (fun j (c : 'b pos_gat) -> if is_center j then result.(j) <- c.collected) s)
    states;
  (result, stats)
