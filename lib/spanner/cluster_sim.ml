module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Broadcast = Ln_prim.Broadcast
module Keyed = Ln_prim.Keyed
module Exchange = Ln_prim.Exchange
module Tour_table = Ln_traversal.Tour_table

(* (m, s) ordering, shared with En17: larger m, ties to smaller s. *)
let better_ms (m1, s1) (m2, s2) = m1 > m2 || (m1 = m2 && s1 < s2)

(* Representative ordering, shared with En17.rep_better: the qualifier
   with the largest m wins (ties to the smallest (cluster, edge)). *)
let rep_better (m1, b1, e1) (m2, b2, e2) =
  m1 > m2 || (m1 = m2 && (b1, e1) < (b2, e2))

(* ------------------------------------------------------------------ *)
(* Case 1: global aggregation over the BFS tree.                       *)

let case1 ?r ~rng g ~bfs ~k ~nclusters ~cluster_of ~in_bucket ledger =
  let n = Graph.n g in
  let r =
    match r with Some r -> r | None -> En17.draw_r ~rng ~k nclusters
  in
  (* rt samples r_A for every cluster and broadcasts the values. *)
  let occupied = Array.make nclusters false in
  Array.iter (fun c -> occupied.(c) <- true) cluster_of;
  let r_items =
    List.init nclusters Fun.id
    |> List.filter (fun c -> occupied.(c))
    |> List.map (fun c -> (c, r.(c)))
  in
  Telemetry.span ~ledger "case1/r-broadcast" (fun () ->
      ignore (Broadcast.downcast ~words:(fun _ -> 3) g ~tree:bfs ~items:r_items));
  (* Every vertex learns its neighbours' clusters, once. *)
  let nbr_cluster =
    Telemetry.span ~ledger "case1/cluster-exchange" (fun () ->
        fst (Exchange.ints g cluster_of))
  in
  (* Global EN17b state, known to all vertices after each round. *)
  let m = Array.make nclusters neg_infinity in
  let s = Array.make nclusters (-1) in
  for c = 0 to nclusters - 1 do
    if occupied.(c) then begin
      m.(c) <- r.(c);
      s.(c) <- c
    end
  done;
  for _round = 1 to k do
    let local v =
      let a = cluster_of.(v) in
      let best = ref None in
      List.iter
        (fun (e, b) ->
          if in_bucket e && b <> a && occupied.(b) then begin
            let cand = (m.(b) -. 1.0, s.(b)) in
            match !best with
            | Some cur when not (better_ms cand cur) -> ()
            | _ -> best := Some cand
          end)
        nbr_cluster.(v);
      match !best with Some c -> [ (a, c) ] | None -> []
    in
    let table =
      Telemetry.span ~ledger "case1/round-aggregate" (fun () ->
          fst
            (Keyed.global_best ~value_words:3 g ~tree:bfs ~nkeys:nclusters
               ~local ~better:better_ms))
    in
    Array.iteri
      (fun a cand ->
        match cand with
        | Some ((cm, cs) as c) when occupied.(a) ->
          if better_ms c (m.(a), s.(a)) then begin
            m.(a) <- cm;
            s.(a) <- cs
          end
        | _ -> ())
      table
  done;
  (* Edge selection: one representative per (cluster, source), dedup
     en route via composite keys. *)
  let local v =
    let a = cluster_of.(v) in
    let per_source = Hashtbl.create 4 in
    List.iter
      (fun (e, b) ->
        if in_bucket e && b <> a && occupied.(b) && m.(b) >= m.(a) -. 1.0 then begin
          let y = s.(b) in
          let cand = (m.(b), b, e) in
          match Hashtbl.find_opt per_source y with
          | Some cur when not (rep_better cand cur) -> ()
          | _ -> Hashtbl.replace per_source y cand
        end)
      nbr_cluster.(v);
    Hashtbl.fold (fun y cand acc -> ((a * nclusters) + y, cand) :: acc) per_source []
  in
  let table =
    Telemetry.span ~ledger "case1/edge-select" (fun () ->
        fst
          (Keyed.global_best ~value_words:4 g ~tree:bfs
             ~nkeys:(nclusters * nclusters) ~local ~better:rep_better))
  in
  let chosen = ref [] in
  Array.iter
    (function Some (_, _, e) -> chosen := e :: !chosen | None -> ())
    table;
  ignore n;
  List.sort_uniq Int.compare !chosen

(* ------------------------------------------------------------------ *)
(* Case 2: interval-local coordination.                                *)

let case2 ?r ~rng g ~tt ~k ~centers ~cluster_of ~chosen_pos ~in_bucket ledger =
  let n = Graph.n g in
  let len = tt.Tour_table.len in
  let is_center j = centers.(j) in
  (* Each center samples its own radius locally. *)
  let center_list = ref [] in
  for j = len - 1 downto 0 do
    if centers.(j) then center_list := j :: !center_list
  done;
  let ncenters = List.length !center_list in
  let beta = Float.log (float_of_int (max ncenters 2)) /. float_of_int k in
  let r_of = Hashtbl.create ncenters in
  List.iter
    (fun j ->
      let v =
        match r with
        | Some tbl -> (match Hashtbl.find_opt tbl j with Some x -> x | None -> 0.0)
        | None ->
          let u = Random.State.float rng 1.0 in
          Float.min (-.Float.log (1.0 -. u) /. beta) (float_of_int k -. 1e-9)
      in
      Hashtbl.replace r_of j v)
    !center_list;
  (* Per-vertex current knowledge of its own cluster's (m, s). *)
  let my_m = Array.make n neg_infinity in
  let my_s = Array.make n (-1) in
  for v = 0 to n - 1 do
    let a = cluster_of.(v) in
    my_m.(v) <- Hashtbl.find r_of a;
    my_s.(v) <- a
  done;
  for _round = 1 to k do
    (* Neighbours tell each other their cluster's (cluster, m, s). *)
    let payload = Array.init n (fun v -> (cluster_of.(v), my_m.(v), my_s.(v))) in
    let tables =
      Telemetry.span ~ledger "case2/nbr-exchange" (fun () ->
          fst (Exchange.payloads ~edge_ok:in_bucket ~words:(fun _ -> 3) g payload))
    in
    (* Each member's local candidate, attached at its chosen position;
       interval aggregation computes the cluster-wide max. *)
    let cand = Array.make n None in
    for v = 0 to n - 1 do
      let a = cluster_of.(v) in
      List.iter
        (fun (e, (b, mb, sb)) ->
          if in_bucket e && b <> a then begin
            let c = (mb -. 1.0, sb) in
            match cand.(v) with
            | Some cur when not (better_ms c cur) -> ()
            | _ -> cand.(v) <- Some c
          end)
        tables.(v)
    done;
    let pos_value = Array.make len None in
    for v = 0 to n - 1 do
      pos_value.(chosen_pos.(v)) <- cand.(v)
    done;
    let agg =
      Telemetry.span ~ledger "case2/interval-aggregate" (fun () ->
          fst
            (Intervals.aggregate ~value_words:3 g ~tt ~is_center
               ~value:(fun j -> pos_value.(j))
               ~combine:(fun a b -> if better_ms a b then a else b)))
    in
    for v = 0 to n - 1 do
      match agg.(chosen_pos.(v)) with
      | Some ((cm, cs) as c) ->
        if better_ms c (my_m.(v), my_s.(v)) then begin
          my_m.(v) <- cm;
          my_s.(v) <- cs
        end
      | None -> ()
    done
  done;
  (* Edge selection: members push qualifying candidates to their
     centers, which deduplicate per source. *)
  let payload = Array.init n (fun v -> (cluster_of.(v), my_m.(v), my_s.(v))) in
  let tables =
    Telemetry.span ~ledger "case2/final-exchange" (fun () ->
        fst (Exchange.payloads ~edge_ok:in_bucket ~words:(fun _ -> 3) g payload))
  in
  let cands = Array.make n [] in
  for v = 0 to n - 1 do
    let a = cluster_of.(v) in
    let per_source = Hashtbl.create 4 in
    List.iter
      (fun (e, (b, mb, sb)) ->
        if in_bucket e && b <> a && mb >= my_m.(v) -. 1.0 then begin
          let cand = (mb, b, e) in
          match Hashtbl.find_opt per_source sb with
          | Some cur when not (rep_better cand cur) -> ()
          | _ -> Hashtbl.replace per_source sb cand
        end)
      tables.(v);
    cands.(v) <- Hashtbl.fold (fun y (mb, b, e) acc -> (y, mb, b, e) :: acc) per_source []
  done;
  let pos_items = Array.make len [] in
  for v = 0 to n - 1 do
    pos_items.(chosen_pos.(v)) <- cands.(v)
  done;
  let collected =
    Telemetry.span ~ledger "case2/edge-gather" (fun () ->
        fst
          (Intervals.gather ~value_words:4 g ~tt ~is_center
             ~items:(fun j -> pos_items.(j))))
  in
  let chosen = ref [] in
  Array.iteri
    (fun j items ->
      if centers.(j) then begin
        let per_source = Hashtbl.create 8 in
        List.iter
          (fun (y, mb, b, e) ->
            match Hashtbl.find_opt per_source y with
            | Some cur when not (rep_better (mb, b, e) cur) -> ()
            | _ -> Hashtbl.replace per_source y (mb, b, e))
          items;
        Hashtbl.iter (fun _ (_, _, e) -> chosen := e :: !chosen) per_source
      end)
    collected;
  List.sort_uniq Int.compare !chosen
