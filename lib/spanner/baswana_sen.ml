module Graph = Ln_graph.Graph
module Engine = Ln_congest.Engine
module Forest = Ln_prim.Forest

type t = { edges : int list; rounds : int }

(* One round: every vertex sends (cluster, sampled) over its live
   incident edges; collects the same from neighbours. *)
let exchange_cluster_info g ~edge_ok cluster sampled_of =
  let open Engine in
  let program : ((int * int * bool) list, int * bool) Engine.program =
    {
      name = "bs-exchange";
      words = (fun _ -> 2);
      init =
        (fun ctx ->
          let c = cluster.(ctx.me) in
          let payload = (c, c >= 0 && sampled_of c) in
          ( [],
            List.rev
              (ctx_fold_neighbors ctx
                 (fun acc e _ ->
                   if edge_ok e then { via = e; msg = payload } :: acc else acc)
                 []) ));
      step =
        (fun _ctx ~round:_ s inbox ->
          ( List.fold_left
              (fun s (r : (int * bool) received) ->
                let c, b = r.payload in
                (r.edge, c, b) :: s)
              s inbox,
            [],
            false ));
    }
  in
  Engine.run g program

let build ?(edge_ok = fun _ -> true) ~rng ~k g =
  if k < 1 then invalid_arg "Baswana_sen.build: k must be >= 1";
  let n = Graph.n g in
  let p_sample = Float.exp (-.Float.log (float_of_int (max n 2)) /. float_of_int k) in
  (* cluster.(v): center vertex id, -1 once v drops out. *)
  let cluster = Array.init n Fun.id in
  let cl_parent = Array.make n (-1) in
  let cl_tree = Array.make n [] in
  let dead = Array.make (Graph.m g) false in
  (* Both endpoints must treat an edge as usable; death is global
     (edge removed from E'), which matches BS's edge bookkeeping. *)
  let live e = edge_ok e && not dead.(e) in
  let spanner = Hashtbl.create 64 in
  let keep e = Hashtbl.replace spanner e () in
  let rounds = ref 0 in
  let sampled = Array.make n false in
  for _phase = 1 to k - 1 do
    (* Centers flip coins; members learn via a native down-flood. *)
    for c = 0 to n - 1 do
      sampled.(c) <- Random.State.float rng 1.0 < p_sample
    done;
    let bit_of, st_flood =
      Forest.down g ~parent_edge:cl_parent ~tree_edges:cl_tree
        ~seed:(fun v ->
          if cluster.(v) = v then Some sampled.(v) else None)
        ~emit:(fun _ b _ -> b)
        ~words:(fun _ -> 1)
    in
    rounds := !rounds + st_flood.Engine.rounds;
    let my_sampled v =
      cluster.(v) >= 0
      && (match bit_of.(v) with Some b -> b | None -> cluster.(v) = v && sampled.(v))
    in
    (* Everyone learns neighbours' (cluster, sampled). *)
    let tables, st_ex = exchange_cluster_info g ~edge_ok:live cluster (fun c -> sampled.(c)) in
    rounds := !rounds + st_ex.Engine.rounds;
    let new_cluster = Array.copy cluster in
    let new_parent = Array.copy cl_parent in
    (* Decisions are simultaneous: liveness is judged as of the phase
       start, deaths are applied for the next phase. *)
    let was_dead = Array.copy dead in
    let live0 e = edge_ok e && not was_dead.(e) in
    for v = 0 to n - 1 do
      if cluster.(v) >= 0 && not (my_sampled v) then begin
        (* Candidate edges grouped per neighbouring cluster. *)
        let per_cluster = Hashtbl.create 8 in
        List.iter
          (fun (e, c, b) ->
            if live0 e && c >= 0 && c <> cluster.(v) then begin
              let w = Graph.weight g e in
              match Hashtbl.find_opt per_cluster c with
              | Some (w0, e0, _) when (w0, e0) <= (w, e) -> ()
              | _ -> Hashtbl.replace per_cluster c (w, e, b)
            end)
          tables.(v);
        (* Lightest edge into a sampled cluster, if any. *)
        let best_sampled = ref None in
        Hashtbl.iter
          (fun c (w, e, b) ->
            if b then begin
              match !best_sampled with
              | Some (w0, e0, _) when (w0, e0) <= (w, e) -> ()
              | _ -> best_sampled := Some (w, e, c)
            end)
          per_cluster;
        (match !best_sampled with
        | None ->
          (* Drop out: service every adjacent cluster, then die. *)
          Hashtbl.iter (fun _ (_, e, _) -> keep e) per_cluster;
          new_cluster.(v) <- -1;
          new_parent.(v) <- -1;
          List.iter (fun (e, _, _) -> dead.(e) <- true) tables.(v)
        | Some (we, ee, c_star) ->
          keep ee;
          new_cluster.(v) <- c_star;
          new_parent.(v) <- ee;
          (* Service strictly lighter adjacent clusters and kill those
             edges. *)
          Hashtbl.iter
            (fun c (w, e, _) ->
              if c <> c_star && (w, e) < (we, ee) then keep e)
            per_cluster;
          List.iter
            (fun (e, c, _) ->
              if
                c >= 0 && c <> c_star
                &&
                match Hashtbl.find_opt per_cluster c with
                | Some (w0, e0, _) -> (w0, e0) < (we, ee)
                | None -> false
              then dead.(e) <- true)
            tables.(v));
        (* Intra-cluster edges die in every case. *)
        List.iter
          (fun (e, c, _) -> if c = cluster.(v) then dead.(e) <- true)
          tables.(v)
      end
    done;
    (* Rebuild cluster trees: vertices of unsampled clusters left them;
       joiners hang below the edge they joined through. *)
    Array.fill cl_tree 0 n [];
    Array.blit new_cluster 0 cluster 0 n;
    Array.blit new_parent 0 cl_parent 0 n;
    for v = 0 to n - 1 do
      if cluster.(v) >= 0 && cl_parent.(v) >= 0 then begin
        let e = cl_parent.(v) in
        let u = Graph.other_end g e v in
        cl_tree.(v) <- e :: cl_tree.(v);
        cl_tree.(u) <- e :: cl_tree.(u)
      end
    done
  done;
  (* Final phase: lightest edge to every adjacent cluster. *)
  let tables, st_ex = exchange_cluster_info g ~edge_ok:live cluster (fun _ -> false) in
  rounds := !rounds + st_ex.Engine.rounds;
  for v = 0 to n - 1 do
    if cluster.(v) >= 0 then begin
      let per_cluster = Hashtbl.create 8 in
      List.iter
        (fun (e, c, _) ->
          if live e && c >= 0 && c <> cluster.(v) then begin
            let w = Graph.weight g e in
            match Hashtbl.find_opt per_cluster c with
            | Some (w0, e0) when (w0, e0) <= (w, e) -> ()
            | _ -> Hashtbl.replace per_cluster c (w, e)
          end)
        tables.(v);
      Hashtbl.iter (fun _ (_, e) -> keep e) per_cluster
    end
  done;
  let edges = List.sort Int.compare (Hashtbl.fold (fun e () acc -> e :: acc) spanner []) in
  { edges; rounds = !rounds }
