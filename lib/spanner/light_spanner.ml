module Graph = Ln_graph.Graph
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Dist_mst = Ln_mst.Dist_mst
module Euler_dist = Ln_traversal.Euler_dist
module Tour_table = Ln_traversal.Tour_table

type t = {
  edges : int list;
  k : int;
  epsilon : float;
  stretch_bound : float;
  light_bucket_edges : int;
  bucket_edges : int;
  buckets_case1 : int;
  buckets_case2 : int;
  ledger : Ln_congest.Ledger.t;
}

let build ~rng g ~k ~epsilon =
  if k < 1 then invalid_arg "Light_spanner.build: k must be >= 1";
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Light_spanner.build: epsilon must be in (0, 1)";
  Telemetry.span "light-spanner" @@ fun () ->
  let n = Graph.n g in
  let ledger = Ledger.create () in
  (* MST + Euler tour; every vertex learns its tour appearances, and L
     is globally known (an O(D) convergecast in the paper; here it is
     the tour total). *)
  let dist, tour =
    Telemetry.span "mst+euler" (fun () ->
        let dist = Dist_mst.run g in
        (dist, Euler_dist.run dist ~rt:0))
  in
  Ledger.merge ledger ~prefix:"mst+euler" dist.Dist_mst.ledger;
  let bfs = dist.Dist_mst.bfs in
  let tt = Tour_table.make g tour in
  let l_total = tour.Euler_dist.total in
  let spanner = Hashtbl.create (4 * n) in
  let keep e = Hashtbl.replace spanner e () in
  List.iter keep dist.Dist_mst.mst_edges;
  (* Light bucket E': Baswana-Sen. *)
  let classify = Buckets.classify ~l_total ~epsilon ~n in
  let bucket_of = Array.init (Graph.m g) (fun e -> classify (Graph.weight g e)) in
  (* Baswana-Sen sums its own engine runs into [bs.rounds]; the span
     measures the same work, so keep the manual ledger entry and wrap
     with a plain (no-ledger) span to avoid double counting. *)
  let bs =
    Telemetry.span "baswana-sen(E')" (fun () ->
        Baswana_sen.build ~edge_ok:(fun e -> bucket_of.(e) = `Light) ~rng ~k g)
  in
  Ledger.native ledger ~label:"baswana-sen(E')" bs.Baswana_sen.rounds;
  List.iter keep bs.Baswana_sen.edges;
  (* Weight buckets. *)
  let nbuckets = Buckets.bucket_count ~epsilon ~n in
  let case1 = ref 0 and case2 = ref 0 in
  let bucket_edge_count = ref 0 in
  for i = 0 to nbuckets - 1 do
    let in_bucket e = bucket_of.(e) = `Bucket i in
    let bucket_nonempty =
      let found = ref false in
      Graph.iter_edges g (fun e _ -> if in_bucket e then found := true);
      !found
    in
    if bucket_nonempty then begin
      let chosen =
        match Buckets.assign g ~tt ~l_total ~epsilon ~k ~i with
        | Buckets.Global { nclusters; cluster_of } ->
          incr case1;
          Telemetry.span (Printf.sprintf "bucket-%d/case1" i) (fun () ->
              Cluster_sim.case1 ~rng g ~bfs ~k ~nclusters ~cluster_of ~in_bucket
                ledger)
        | Buckets.Interval { centers; cluster_of; chosen_pos; max_interval = _ } ->
          incr case2;
          Telemetry.span (Printf.sprintf "bucket-%d/case2" i) (fun () ->
              Cluster_sim.case2 ~rng g ~tt ~k ~centers ~cluster_of ~chosen_pos
                ~in_bucket ledger)
      in
      List.iter
        (fun e ->
          if not (Hashtbl.mem spanner e) then incr bucket_edge_count;
          keep e)
        chosen
    end
  done;
  let edges = List.sort Int.compare (Hashtbl.fold (fun e () acc -> e :: acc) spanner []) in
  {
    edges;
    k;
    epsilon;
    stretch_bound = float_of_int ((2 * k) - 1) *. (1.0 +. (6.0 *. epsilon));
    light_bucket_edges = List.length bs.Baswana_sen.edges;
    bucket_edges = !bucket_edge_count;
    buckets_case1 = !case1;
    buckets_case2 = !case2;
    ledger;
  }
