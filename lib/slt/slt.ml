module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Broadcast = Ln_prim.Broadcast
module Forest = Ln_prim.Forest
module Tree_frags = Ln_prim.Tree_frags
module Dist_mst = Ln_mst.Dist_mst
module Euler_dist = Ln_traversal.Euler_dist
module Tour_table = Ln_traversal.Tour_table
module Hub_sssp = Ln_aspt.Hub_sssp

type t = {
  rt : int;
  tree : Tree.t;
  edges : int list;
  h_edges : int list;
  break_positions : int list;
  stretch_bound : float;
  lightness_bound : float;
  ledger : Ledger.t;
}

(* ------------------------------------------------------------------ *)
(* BP1: native token scan, one token per √n-interval of L (§4.1).      *)

let bp1_scan g (tt : Tour_table.t) ~alpha ~epsilon ~trt_dist ledger =
  let open Engine in
  (* Positions held by each vertex (local knowledge). *)
  let my_positions = Array.make (Graph.n g) [] in
  for j = tt.Tour_table.len - 1 downto 0 do
    my_positions.(tt.Tour_table.vertex_of.(j)) <- j :: my_positions.(tt.Tour_table.vertex_of.(j))
  done;
  let forward j ry =
    (* Send the token onward from position j carrying last-BP time ry,
       unless the interval ends here. *)
    if j + 1 < tt.Tour_table.len && (j + 1) mod alpha <> 0 then
      [ { via = tt.Tour_table.next_edge.(j); msg = (j + 1, ry) } ]
    else []
  in
  let program : (int list, int * float) Engine.program =
    {
      name = "slt-bp1-scan";
      words = (fun _ -> 3);
      init =
        (fun ctx ->
          let outs =
            List.concat_map
              (fun j -> if j mod alpha = 0 then forward j tt.Tour_table.time_of.(j) else [])
              my_positions.(ctx.me)
          in
          ([], outs));
      step =
        (fun ctx ~round:_ bps inbox ->
          let bps = ref bps in
          let outs =
            List.concat_map
              (fun (r : (int * float) received) ->
                let j, ry = r.payload in
                let joins = tt.Tour_table.time_of.(j) -. ry > epsilon *. trt_dist.(ctx.me) in
                if joins then begin
                  bps := j :: !bps;
                  forward j tt.Tour_table.time_of.(j)
                end
                else forward j ry)
              inbox
          in
          (!bps, outs, false));
    }
  in
  let states =
    Telemetry.span ~ledger "slt/bp1-token-scan" (fun () ->
        fst (Engine.run g program))
  in
  let acc = ref [] in
  Array.iter (fun bps -> acc := bps @ !acc) states;
  !acc

(* ------------------------------------------------------------------ *)
(* BP2: central sparsification of the interval anchors (§4.1).         *)

let bp2_filter ~sparsify g (tt : Tour_table.t) ~alpha ~epsilon ~trt_dist ~bfs ledger =
  let n = Graph.n g in
  let items = Array.make n [] in
  for j = 0 to tt.Tour_table.len - 1 do
    if j mod alpha = 0 then begin
      let v = tt.Tour_table.vertex_of.(j) in
      items.(v) <- (j, tt.Tour_table.time_of.(j), trt_dist.(v)) :: items.(v)
    end
  done;
  let gathered =
    Telemetry.span ~ledger "slt/bp2-gather" (fun () ->
        fst (Broadcast.gather ~words:(fun _ -> 4) g ~tree:bfs ~items))
  in
  let anchors =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) gathered.(Tree.root bfs)
  in
  let chosen = ref [] in
  let last_r = ref neg_infinity in
  List.iter
    (fun (j, r, dv) ->
      let joins =
        if not sparsify then true (* ablation A1: keep every anchor *)
        else if j = 0 then true (* x_0 = rt always joins *)
        else r -. !last_r > epsilon *. dv
      in
      if joins then begin
        chosen := j :: !chosen;
        last_r := r
      end)
    anchors;
  let chosen = List.rev !chosen in
  Telemetry.span ~ledger "slt/bp2-broadcast" (fun () ->
      ignore (Broadcast.downcast ~words:(fun _ -> 1) g ~tree:bfs ~items:chosen));
  chosen

(* ------------------------------------------------------------------ *)
(* ABP marking over a fragment decomposition of T_rt (§4.2).           *)

let abp_marking g ~(spt : Hub_sssp.t) ~is_bp ~bfs ledger =
  let n = Graph.n g in
  let sqrt_n = int_of_float (Float.ceil (Float.sqrt (float_of_int (max n 1)))) in
  let frags =
    Tree_frags.decompose g ~parent_edge:spt.Hub_sssp.parent_edge ~root:spt.Hub_sssp.src
      ~target_size:sqrt_n
  in
  (* Stand-in for the KP98-phase-1 fragment formation on T_rt. *)
  Ledger.charged ledger ~label:"slt/trt-fragments" ((3 * sqrt_n) + 8);
  (* Each fragment learns whether it contains a break point. *)
  let frag_bp =
    Telemetry.span ~ledger "slt/abp-local-up" (fun () ->
        let frag_bp, _, _ =
          Forest.up g ~parent_edge:frags.Tree_frags.internal_parent
            ~tree_edges:frags.Tree_frags.tree_edges
            ~compute:(fun v kids -> is_bp v || List.exists snd kids)
            ~words:(fun _ -> 1)
        in
        frag_bp)
  in
  (* Gather per-fragment bits; the hub computes the subtree ORs on T'
     and broadcasts them. *)
  let items = Array.make n [] in
  for f = 0 to frags.Tree_frags.count - 1 do
    let r = frags.Tree_frags.root_of.(f) in
    items.(r) <- (f, frag_bp.(r)) :: items.(r)
  done;
  let gathered =
    Telemetry.span ~ledger "slt/abp-gather" (fun () ->
        fst (Broadcast.gather ~words:(fun _ -> 2) g ~tree:bfs ~items))
  in
  let has_bp = Array.make frags.Tree_frags.count false in
  List.iter (fun (f, b) -> if b then has_bp.(f) <- true) gathered.(Tree.root bfs);
  let children_of = Array.make frags.Tree_frags.count [] in
  for f = 0 to frags.Tree_frags.count - 1 do
    let p = frags.Tree_frags.parent_frag.(f) in
    if p >= 0 then children_of.(p) <- f :: children_of.(p)
  done;
  let sub_bp = Array.make frags.Tree_frags.count false in
  let rec fill f =
    let b = List.fold_left (fun acc c -> fill c || acc) has_bp.(f) children_of.(f) in
    sub_bp.(f) <- b;
    b
  in
  for f = 0 to frags.Tree_frags.count - 1 do
    if frags.Tree_frags.parent_frag.(f) < 0 then ignore (fill f)
  done;
  let sub_list = Array.to_list (Array.mapi (fun f b -> (f, b)) sub_bp) in
  Telemetry.span ~ledger "slt/abp-broadcast" (fun () ->
      ignore (Broadcast.downcast ~words:(fun _ -> 2) g ~tree:bfs ~items:sub_list));
  (* Final fragment-local pass: ABP(v) = BP below v in T_rt. *)
  Telemetry.span ~ledger "slt/abp-final-up" (fun () ->
      let abp, _, _ =
        Forest.up g ~parent_edge:frags.Tree_frags.internal_parent
          ~tree_edges:frags.Tree_frags.tree_edges
          ~compute:(fun v kids ->
            is_bp v
            || List.exists snd kids
            || List.exists
                 (fun (z, _) -> sub_bp.(frags.Tree_frags.frag_of.(z)))
                 frags.Tree_frags.ext_children.(v))
          ~words:(fun _ -> 1)
      in
      abp)

(* ------------------------------------------------------------------ *)
(* The base construction for ε ∈ (0, 1].                               *)

let build ?(sparsify_anchors = true) ~rng g ~rt ~epsilon =
  if not (epsilon > 0.0 && epsilon <= 1.0) then
    invalid_arg "Slt.build: epsilon must be in (0, 1]";
  Telemetry.span "slt" @@ fun () ->
  let n = Graph.n g in
  let ledger = Ledger.create () in
  (* MST, Euler tour, and the (approximate) SPT T_rt. *)
  let dist, tour =
    Telemetry.span "mst+euler" (fun () ->
        let dist = Dist_mst.run ~root:rt g in
        (dist, Euler_dist.run dist ~rt))
  in
  Ledger.merge ledger ~prefix:"mst+euler" dist.Dist_mst.ledger;
  let bfs = dist.Dist_mst.bfs in
  let spt = Hub_sssp.run ~rng g ~bfs ~src:rt in
  Ledger.merge ledger ~prefix:"spt" spt.Hub_sssp.ledger;
  let tt = Tour_table.make g tour in
  let alpha = max 2 (int_of_float (Float.ceil (Float.sqrt (float_of_int n)))) in
  let trt_dist = spt.Hub_sssp.dist in
  let bp1 = bp1_scan g tt ~alpha ~epsilon ~trt_dist ledger in
  let bp2 = bp2_filter ~sparsify:sparsify_anchors g tt ~alpha ~epsilon ~trt_dist ~bfs ledger in
  let break_positions = List.sort_uniq Int.compare (bp1 @ bp2) in
  let bp_vertex = Array.make n false in
  List.iter (fun j -> bp_vertex.(tt.Tour_table.vertex_of.(j)) <- true) break_positions;
  let abp = abp_marking g ~spt ~is_bp:(fun v -> bp_vertex.(v)) ~bfs ledger in
  (* H = MST edges plus the T_rt parent edges of all marked vertices. *)
  let h_edge_set = Hashtbl.create (2 * n) in
  List.iter (fun e -> Hashtbl.replace h_edge_set e ()) dist.Dist_mst.mst_edges;
  for v = 0 to n - 1 do
    if v <> rt && abp.(v) && spt.Hub_sssp.parent_edge.(v) >= 0 then
      Hashtbl.replace h_edge_set spt.Hub_sssp.parent_edge.(v) ()
  done;
  let h_edges = Hashtbl.fold (fun e () acc -> e :: acc) h_edge_set [] in
  let h_edges = List.sort Int.compare h_edges in
  (* Final SPT restricted to H. *)
  let edge_ok e = Hashtbl.mem h_edge_set e in
  let final = Hub_sssp.run ~edge_ok ~rng g ~bfs ~src:rt in
  Ledger.merge ledger ~prefix:"slt-final-spt" final.Hub_sssp.ledger;
  {
    rt;
    tree = final.Hub_sssp.tree;
    edges = Tree.edges final.Hub_sssp.tree;
    h_edges;
    break_positions;
    stretch_bound = 1.0 +. (51.0 *. epsilon);
    lightness_bound = 1.0 +. (4.0 /. epsilon);
    ledger;
  }

(* ------------------------------------------------------------------ *)
(* BFN16 reduction: lightness 1+γ at stretch O(1/γ) (Lemma 5).         *)

let build_light ~rng g ~rt ~gamma =
  if not (gamma > 0.0 && gamma <= 1.0) then
    invalid_arg "Slt.build_light: gamma must be in (0, 1]";
  let eps0 = 1.0 in
  let base_lightness = 1.0 +. (4.0 /. eps0) in
  let base_stretch = 1.0 +. (51.0 *. eps0) in
  let delta = gamma /. base_lightness in
  (* Reweight: non-MST edges scaled up by 1/δ. The MST is unchanged
     (uniform scaling of non-tree edges preserves the cycle property),
     and [Graph.create] keeps edge ids stable for an identical edge
     set, so ids remain comparable. *)
  let mst = Ln_graph.Mst_seq.kruskal g in
  let in_mst = Array.make (Graph.m g) false in
  List.iter (fun e -> in_mst.(e) <- true) mst;
  let edges' =
    Graph.fold_edges g
      (fun id e acc ->
        { e with Graph.w = (if in_mst.(id) then e.Graph.w else e.Graph.w /. delta) }
        :: acc)
      []
  in
  let g' = Graph.create (Graph.n g) edges' in
  let base = build ~rng g' ~rt ~epsilon:eps0 in
  (* Re-expressed on the original graph: same edge ids, original
     weights. *)
  let tree = Tree.of_edges g ~root:rt base.edges in
  {
    base with
    tree;
    stretch_bound = base_stretch /. delta;
    lightness_bound = 1.0 +. gamma;
  }
