(** Process-wide metrics registry: typed counters, gauges, and
    log-bucketed histograms with Prometheus and deterministic JSON
    export.

    This is the cheap always-on aggregate layer that complements the
    trace-shaped [Telemetry] stack: where telemetry answers "what did
    that run do, round by round", the registry answers "what is this
    process doing right now" at a cost low enough to leave compiled in
    everywhere.

    {2 Hot-path cost model}

    The registry is disabled by default. Every update operation
    ([incr], [add], [set], [observe]) starts with a single [ref] read
    — the same pattern as [Engine.set_round_probe] — so an
    uninstrumented process pays one load and one predictable branch
    per call site, nothing else: no allocation, no locks, no atomics.

    When enabled, counter and histogram updates go to a {e per-domain
    shard} reached through [Domain.DLS]: plain loads and stores on
    domain-local arrays, still zero locks. The only mutex in the
    system is taken (a) once per metric registration and (b) once per
    domain lifetime when its shard is first created — never per
    update. Snapshots sum the integer shard cells, which is
    order-independent and exact once the writing domains have
    quiesced (the same benign-race contract as the engine's
    per-domain retransmission counters). Gauges are last-write-wins
    single cells; sharded summing would be wrong for them.

    {2 Determinism}

    Metrics are registered with a [stable] flag. Stable metrics
    (counts of rounds, messages, cache hits, …) are deterministic
    functions of the seeded workload; timing-based metrics (latency
    histograms, wall-clock gauges) are not and must be registered
    with [~stable:false]. {!to_json} excludes unstable metrics by
    default and orders the rest by name and labels, so two same-seed
    runs produce byte-identical snapshots. {!to_prometheus} always
    exports everything — a live scrape wants the latencies. *)

(** {1 Log-bucketed histograms}

    Constant-memory streaming histograms with bounded {e relative}
    error, usable standalone (e.g. [Serve.run] batches) or through
    the registry. Buckets are geometric with ratio
    [gamma = (1 + error) / (1 - error)]; a value [v] lands in bucket
    [ceil (log_gamma v)], whose representative midpoint is within
    [error * v] of every value in the bucket. Quantile estimates
    therefore carry relative error at most [error] for values inside
    the tracked range ([1e-3] to [1e12]; out-of-range observations
    are resolved to the exact observed min/max, which are tracked as
    scalars). *)
module Hist : sig
  type t

  val create : ?error:float -> unit -> t
  (** Fresh empty histogram. [error] is the relative-error bound
      (default [0.01], i.e. 1%); must be in (0, 0.5). With the
      default bound the bucket array is ~1700 cells, constant
      regardless of how many values are observed. *)

  val observe : t -> float -> unit
  (** Record one value. NaN is ignored; values [<= 0] count into the
      underflow bucket (resolved to the observed min by quantiles). *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** Exact observed min; [nan] if empty. *)

  val max_value : t -> float
  (** Exact observed max; [nan] if empty. *)

  val error : t -> float
  (** The relative-error bound this histogram was created with. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]: the bucket-representative
      estimate of the [ceil (q * count)]-th smallest observation,
      relative error bounded by [error t]. [0.] if empty. *)

  val merge : t -> t -> t
  (** Functional merge; both sides must share the same [error].
      Bucket counts add cell-wise, so merging is exactly associative
      and commutative on everything except the float [sum], which is
      associative only up to rounding. *)
end

(** {1 Registry handles}

    Registration is idempotent: requesting an already-registered
    (name, labels) pair returns the existing metric (and raises
    [Invalid_argument] if the kind differs). Safe from any domain;
    registration takes the registry mutex, updates never do. *)

type counter
type gauge
type histogram

val counter :
  ?help:string -> ?labels:(string * string) list -> ?stable:bool ->
  string -> counter

val gauge :
  ?help:string -> ?labels:(string * string) list -> ?stable:bool ->
  string -> gauge

val histogram :
  ?help:string -> ?labels:(string * string) list -> ?stable:bool ->
  ?error:float -> string -> histogram

(** {1 Updates} *)

val on : unit -> bool
(** Whether the registry is live. One ref read — callers with
    non-trivial argument computation should guard on this. *)

val set_on : bool -> unit
(** Enable/disable the registry (e.g. when [--metrics] is given).
    Disabled updates are dropped, not buffered. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  h_error : float;  (** relative-error bound *)
  h_count : int;
  h_sum : float;
  h_min : float;  (** exact; [nan] if empty *)
  h_max : float;  (** exact; [nan] if empty *)
  h_buckets : (float * int) list;
      (** (upper bound, cumulative count), ascending, one entry per
          non-empty bucket. Cumulative counts reach [h_count]. *)
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type metric = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  help : string;
  stable : bool;
  value : value;
}

type snapshot = metric list
(** Sorted by (name, labels): deterministic ordering. *)

val snapshot : unit -> snapshot
(** Sum all domain shards. Exact once writers have quiesced; during
    concurrent updates, individual cells may be arbitrarily stale but
    never torn. *)

val reset : unit -> unit
(** Zero every registered metric in every shard (registrations
    survive). Test helper — callers must ensure no concurrent
    writers. *)

val quantile : hist_snapshot -> float -> float
(** Same estimator as {!Hist.quantile}, over an exported snapshot. *)

val find : snapshot -> ?labels:(string * string) list -> string -> metric option
(** Lookup by name and (sorted or unsorted) label set. *)

(** {1 Export / import} *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format, version 0.0.4: [# HELP] /
    [# TYPE] headers, [_bucket{le="..."}] cumulative histogram series
    (non-empty buckets plus [+Inf]) with [_sum] / [_count]. Includes
    unstable metrics — a live scrape wants them. *)

val to_json : ?all:bool -> snapshot -> string
(** Deterministic JSON snapshot: metrics sorted by (name, labels),
    floats printed with full precision, one metric per line. Excludes
    [~stable:false] metrics unless [all] is [true], so same-seed runs
    are byte-identical. *)

val of_json : string -> snapshot
(** Parse {!to_json} output. Raises [Failure] on malformed input. *)

val validate_prometheus : string -> (int, string) result
(** Hand-rolled checker for the text exposition format: line syntax,
    metric-name and label grammar, every sample covered by a
    preceding [# TYPE], histogram series complete ([_sum], [_count],
    terminal [le="+Inf"] bucket equal to [_count]) with cumulative
    bucket counts non-decreasing. Returns [Ok n] with the number of
    samples checked, or [Error msg] naming the first offending
    line. *)

val write_file : snapshot -> string -> unit
(** Write {!to_json} if the path ends in [.json], else
    {!to_prometheus}. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table: one metric per line, histograms rendered as
    count/p50/p90/p99/max. *)
