(** Minimal JSON values: parser and printer helpers.

    The observability layer both emits and re-reads machine-written
    JSON (deterministic metrics snapshots, BENCH_*.json headers), so
    this only needs to cover the JSON we produce ourselves — no
    streaming, no number-preservation exotica. Kept in [ln_obs] so the
    bottom of the dependency stack (and tools like [bench_diff]) can
    parse JSON without pulling in the engine. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Error of string

val parse : string -> v
(** Parse a complete JSON document. Raises {!Error} on malformed
    input, including trailing garbage. *)

val parse_file : string -> v
(** [parse_file path] reads and parses [path]. Raises {!Error} on
    malformed JSON and [Sys_error] on IO failure. *)

(** {1 Accessors}

    Total accessors return [Null]/[None] rather than raising, so
    callers can probe optional structure; the [to_*] coercions raise
    {!Error} when the shape is wrong. *)

val member : string -> v -> v
(** Object field lookup; [Null] when absent or not an object. *)

val path : string list -> v -> v
(** Nested {!member}: [path ["a"; "b"] v] is [member "b" (member "a" v)]. *)

val to_list : v -> v list
val to_string : v -> string
val to_float : v -> float
val to_int : v -> int
val to_float_opt : v -> float option
val to_int_opt : v -> int option
val to_string_opt : v -> string option

(** {1 Printing} *)

val escape : string -> string
(** JSON string escaping, including the surrounding quotes. *)

val add_escaped : Buffer.t -> string -> unit
(** Buffer version of {!escape}. *)
