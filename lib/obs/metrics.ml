(* Process-wide metrics registry. See metrics.mli for the cost model
   and determinism contract; the short version:

   - update ops are one ref read when disabled;
   - enabled updates touch only a Domain.DLS-local shard (plain array
     stores, no locks, no atomics);
   - the registry mutex is taken at registration and shard creation,
     never per update;
   - snapshots sum integer shard cells, which commutes, so they are
     exact at quiescence regardless of domain scheduling. *)

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                             *)

(* Tracked value range. Observations outside it land in the
   underflow/overflow buckets and are resolved to the exact observed
   min/max by quantile estimation (tracked as scalars alongside the
   buckets). 1e-3 .. 1e12 covers nanoseconds to ~11 days on the
   microsecond scale the serving layer uses. *)
let v_lo = 1e-3
let v_hi = 1e12

type hist_snapshot = {
  h_error : float;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

(* Shared quantile estimator: find the bucket holding the rank-th
   smallest observation and return its representative midpoint
   [2 * le / (gamma + 1)], clamped into the exact observed range. The
   clamp both resolves the out-of-range buckets to min/max and can
   only shrink the error for in-range ones. *)
let quantile (hs : hist_snapshot) q =
  if hs.h_count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int hs.h_count)) in
      if r < 1 then 1 else if r > hs.h_count then hs.h_count else r
    in
    let gamma = (1. +. hs.h_error) /. (1. -. hs.h_error) in
    let clamp v = Float.max hs.h_min (Float.min hs.h_max v) in
    let rec go = function
      | [] -> hs.h_max
      | (le, cum) :: rest ->
        if rank <= cum then
          if Float.is_finite le then clamp (le *. 2. /. (gamma +. 1.))
          else hs.h_max
        else go rest
    in
    go hs.h_buckets
  end

module Hist = struct
  type t = {
    error : float;
    log_gamma : float;
    idx_lo : int;  (* index of counts.(0): bucket (gamma^(i-1), gamma^i] *)
    counts : int array;
    mutable underflow : int;  (* v <= v_lo (including non-positive) *)
    mutable overflow : int;  (* v > v_hi *)
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create ?(error = 0.01) () =
    if not (error > 0.0 && error < 0.5) then
      invalid_arg "Metrics.Hist.create: error must be in (0, 0.5)";
    let gamma = (1. +. error) /. (1. -. error) in
    let log_gamma = log gamma in
    let idx_lo = int_of_float (Float.ceil (log v_lo /. log_gamma)) in
    let idx_hi = int_of_float (Float.ceil (log v_hi /. log_gamma)) in
    {
      error;
      log_gamma;
      idx_lo;
      counts = Array.make (idx_hi - idx_lo + 1) 0;
      underflow = 0;
      overflow = 0;
      count = 0;
      sum = 0.;
      vmin = Float.nan;
      vmax = Float.nan;
    }

  let observe t v =
    if not (Float.is_nan v) then begin
      t.count <- t.count + 1;
      t.sum <- t.sum +. v;
      if not (t.vmin <= v) then t.vmin <- v;
      if not (t.vmax >= v) then t.vmax <- v;
      if v <= v_lo then t.underflow <- t.underflow + 1
      else if v > v_hi then t.overflow <- t.overflow + 1
      else begin
        let i = int_of_float (Float.ceil (log v /. t.log_gamma)) - t.idx_lo in
        let i =
          if i < 0 then 0
          else if i >= Array.length t.counts then Array.length t.counts - 1
          else i
        in
        t.counts.(i) <- t.counts.(i) + 1
      end
    end

  let count t = t.count
  let sum t = t.sum
  let min_value t = t.vmin
  let max_value t = t.vmax
  let error t = t.error

  let to_snapshot t : hist_snapshot =
    let buckets = ref [] in
    let cum = ref t.underflow in
    if t.underflow > 0 then buckets := [ (v_lo, !cum) ];
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          cum := !cum + c;
          let le = exp (float_of_int (t.idx_lo + i) *. t.log_gamma) in
          buckets := (le, !cum) :: !buckets
        end)
      t.counts;
    if t.overflow > 0 then buckets := (Float.infinity, t.count) :: !buckets;
    {
      h_error = t.error;
      h_count = t.count;
      h_sum = t.sum;
      h_min = t.vmin;
      h_max = t.vmax;
      h_buckets = List.rev !buckets;
    }

  let quantile t q = quantile (to_snapshot t) q

  let merge a b =
    if a.error <> b.error then
      invalid_arg "Metrics.Hist.merge: mismatched error bounds";
    let counts = Array.copy a.counts in
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
    let fmin x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.min x y in
    let fmax x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.max x y in
    {
      error = a.error;
      log_gamma = a.log_gamma;
      idx_lo = a.idx_lo;
      counts;
      underflow = a.underflow + b.underflow;
      overflow = a.overflow + b.overflow;
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      vmin = fmin a.vmin b.vmin;
      vmax = fmax a.vmax b.vmax;
    }
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type gcell = { mutable gv : float }

type ekind =
  | EC of int  (* counter slot *)
  | EG of gcell
  | EH of int * float  (* histogram slot, error bound *)

type entry = {
  e_name : string;
  e_labels : (string * string) list;  (* sorted by key *)
  e_help : string;
  e_stable : bool;
  e_kind : ekind;
}

type counter = { c_id : int }
type gauge = gcell
type histogram = { hm_id : int; hm_err : float }

let enabled = ref false
let on () = !enabled
let set_on b = enabled := b

let reg_mtx = Mutex.create ()
let entries : entry list ref = ref []  (* newest first *)

let by_key : (string * (string * string) list, entry) Hashtbl.t =
  Hashtbl.create 64

let n_counters = ref 0
let n_hists = ref 0

let name_ok name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let label_key_ok k =
  String.length k > 0
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Idempotent registration: an existing (name, labels) entry of the
   same kind is returned as-is, a kind clash is a programming error. *)
let register ~name ~labels ~help ~stable ~mk ~same =
  if not (name_ok name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (label_key_ok k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label key %S" k))
    labels;
  let labels = norm_labels labels in
  Mutex.lock reg_mtx;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg_mtx)
    (fun () ->
      match Hashtbl.find_opt by_key (name, labels) with
      | Some e -> (
        match same e.e_kind with
        | Some h -> h
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered with another kind"
               name))
      | None ->
        let kind, h = mk () in
        let e = { e_name = name; e_labels = labels; e_help = help; e_stable = stable; e_kind = kind } in
        entries := e :: !entries;
        Hashtbl.add by_key (name, labels) e;
        h)

let counter ?(help = "") ?(labels = []) ?(stable = true) name : counter =
  register ~name ~labels ~help ~stable
    ~mk:(fun () ->
      let id = !n_counters in
      incr n_counters;
      (EC id, { c_id = id }))
    ~same:(function EC id -> Some { c_id = id } | _ -> None)

let gauge ?(help = "") ?(labels = []) ?(stable = true) name : gauge =
  register ~name ~labels ~help ~stable
    ~mk:(fun () ->
      let g = { gv = 0. } in
      (EG g, g))
    ~same:(function EG g -> Some g | _ -> None)

let histogram ?(help = "") ?(labels = []) ?(stable = true) ?(error = 0.01) name
    : histogram =
  if not (error > 0.0 && error < 0.5) then
    invalid_arg "Metrics.histogram: error must be in (0, 0.5)";
  register ~name ~labels ~help ~stable
    ~mk:(fun () ->
      let id = !n_hists in
      incr n_hists;
      (EH (id, error), { hm_id = id; hm_err = error }))
    ~same:(function
      | EH (id, err) -> Some { hm_id = id; hm_err = err }
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Per-domain shards                                                   *)

type shard = {
  mutable counts : int array;  (* counter slot -> value *)
  mutable hists : Hist.t option array;  (* histogram slot -> local hist *)
}

let shards_mtx = Mutex.create ()
let shards : shard list ref = ref []

(* The DLS initialiser runs at most once per domain, on that domain's
   first enabled update — the one place a worker ever takes a lock. *)
let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { counts = Array.make 16 0; hists = Array.make 8 None } in
      Mutex.lock shards_mtx;
      shards := s :: !shards;
      Mutex.unlock shards_mtx;
      s)

let rec grown len want = if len >= want then len else grown (2 * len) want

let add (c : counter) n =
  if !enabled then begin
    let s = Domain.DLS.get shard_key in
    let id = c.c_id in
    if id >= Array.length s.counts then begin
      let a = Array.make (grown (Array.length s.counts) (id + 1)) 0 in
      Array.blit s.counts 0 a 0 (Array.length s.counts);
      s.counts <- a
    end;
    s.counts.(id) <- s.counts.(id) + n
  end

let incr c = add c 1
let set (g : gauge) v = if !enabled then g.gv <- v

let observe (h : histogram) v =
  if !enabled then begin
    let s = Domain.DLS.get shard_key in
    let id = h.hm_id in
    if id >= Array.length s.hists then begin
      let a = Array.make (grown (Array.length s.hists) (id + 1)) None in
      Array.blit s.hists 0 a 0 (Array.length s.hists);
      s.hists <- a
    end;
    let hh =
      match s.hists.(id) with
      | Some hh -> hh
      | None ->
        let hh = Hist.create ~error:h.hm_err () in
        s.hists.(id) <- Some hh;
        hh
    in
    Hist.observe hh v
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type metric = {
  name : string;
  labels : (string * string) list;
  help : string;
  stable : bool;
  value : value;
}

type snapshot = metric list

let empty_hist_snapshot err =
  {
    h_error = err;
    h_count = 0;
    h_sum = 0.;
    h_min = Float.nan;
    h_max = Float.nan;
    h_buckets = [];
  }

let snapshot () : snapshot =
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  let shards_now = with_lock shards_mtx (fun () -> !shards) in
  let entries_now = with_lock reg_mtx (fun () -> !entries) in
  let value_of = function
    | EC id ->
      Counter
        (List.fold_left
           (fun acc s ->
             if id < Array.length s.counts then acc + s.counts.(id) else acc)
           0 shards_now)
    | EG g -> Gauge g.gv
    | EH (id, err) -> (
      let per_shard =
        List.filter_map
          (fun s -> if id < Array.length s.hists then s.hists.(id) else None)
          shards_now
      in
      match per_shard with
      | [] -> Histogram (empty_hist_snapshot err)
      | h :: rest -> Histogram (Hist.to_snapshot (List.fold_left Hist.merge h rest)))
  in
  entries_now
  |> List.map (fun e ->
         {
           name = e.e_name;
           labels = e.e_labels;
           help = e.e_help;
           stable = e.e_stable;
           value = value_of e.e_kind;
         })
  |> List.sort (fun a b ->
         let c = String.compare a.name b.name in
         if c <> 0 then c else Stdlib.compare a.labels b.labels)

let reset () =
  Mutex.lock shards_mtx;
  List.iter
    (fun s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      Array.fill s.hists 0 (Array.length s.hists) None)
    !shards;
  Mutex.unlock shards_mtx;
  Mutex.lock reg_mtx;
  List.iter (fun e -> match e.e_kind with EG g -> g.gv <- 0. | _ -> ()) !entries;
  Mutex.unlock reg_mtx

let find (snap : snapshot) ?(labels = []) name =
  let labels = norm_labels labels in
  List.find_opt (fun m -> m.name = name && m.labels = labels) snap

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let prom_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels ?le labels =
  let pairs =
    labels @ (match le with None -> [] | Some le -> [ ("le", le) ])
  in
  match pairs with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_value v)) pairs)
    ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

let to_prometheus (snap : snapshot) =
  let b = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_name then begin
        last_name := m.name;
        if m.help <> "" then
          Printf.bprintf b "# HELP %s %s\n" m.name m.help;
        let ty =
          match m.value with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Printf.bprintf b "# TYPE %s %s\n" m.name ty
      end;
      match m.value with
      | Counter v -> Printf.bprintf b "%s%s %d\n" m.name (prom_labels m.labels) v
      | Gauge v ->
        Printf.bprintf b "%s%s %s\n" m.name (prom_labels m.labels) (prom_float v)
      | Histogram hs ->
        List.iter
          (fun (le, cum) ->
            if Float.is_finite le then
              Printf.bprintf b "%s_bucket%s %d\n" m.name
                (prom_labels ~le:(prom_float le) m.labels)
                cum)
          hs.h_buckets;
        Printf.bprintf b "%s_bucket%s %d\n" m.name
          (prom_labels ~le:"+Inf" m.labels)
          hs.h_count;
        Printf.bprintf b "%s_sum%s %s\n" m.name (prom_labels m.labels)
          (prom_float hs.h_sum);
        Printf.bprintf b "%s_count%s %d\n" m.name (prom_labels m.labels)
          hs.h_count)
    snap;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Deterministic JSON snapshot                                         *)

(* Full-precision float printing so of_json . to_json is the identity
   on values; non-finite values get JSON-parseable spellings. *)
let json_float f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_json ?(all = false) (snap : snapshot) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"lightnet_metrics\":1,\n\"metrics\":[\n";
  let first = ref true in
  List.iter
    (fun m ->
      if all || m.stable then begin
        if !first then first := false else Buffer.add_string b ",\n";
        Buffer.add_string b "{\"name\":";
        Obs_json.add_escaped b m.name;
        if m.labels <> [] then begin
          Buffer.add_string b ",\"labels\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              Obs_json.add_escaped b k;
              Buffer.add_char b ':';
              Obs_json.add_escaped b v)
            m.labels;
          Buffer.add_char b '}'
        end;
        if m.help <> "" then begin
          Buffer.add_string b ",\"help\":";
          Obs_json.add_escaped b m.help
        end;
        if not m.stable then Buffer.add_string b ",\"stable\":false";
        (match m.value with
        | Counter v ->
          Printf.bprintf b ",\"kind\":\"counter\",\"value\":%d" v
        | Gauge v ->
          Printf.bprintf b ",\"kind\":\"gauge\",\"value\":%s" (json_float v)
        | Histogram hs ->
          Printf.bprintf b ",\"kind\":\"histogram\",\"error\":%s,\"count\":%d,\"sum\":%s"
            (json_float hs.h_error) hs.h_count (json_float hs.h_sum);
          if hs.h_count > 0 then
            Printf.bprintf b ",\"min\":%s,\"max\":%s" (json_float hs.h_min)
              (json_float hs.h_max);
          Buffer.add_string b ",\"buckets\":[";
          List.iteri
            (fun i (le, cum) ->
              if i > 0 then Buffer.add_char b ',';
              Printf.bprintf b "[%s,%d]" (json_float le) cum)
            hs.h_buckets;
          Buffer.add_char b ']');
        Buffer.add_char b '}'
      end)
    snap;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let of_json s : snapshot =
  let open Obs_json in
  let j = try parse s with Error e -> failwith ("Metrics.of_json: " ^ e) in
  (match to_int_opt (member "lightnet_metrics" j) with
  | Some 1 -> ()
  | _ -> failwith "Metrics.of_json: not a lightnet metrics snapshot");
  let metric_of_json mj =
    let name =
      match to_string_opt (member "name" mj) with
      | Some n -> n
      | None -> failwith "Metrics.of_json: metric without name"
    in
    let labels =
      match member "labels" mj with
      | Obj l -> List.map (fun (k, v) -> (k, to_string v)) l
      | _ -> []
    in
    let help = Option.value ~default:"" (to_string_opt (member "help" mj)) in
    let stable = match member "stable" mj with Bool b -> b | _ -> true in
    let value =
      match to_string_opt (member "kind" mj) with
      | Some "counter" -> Counter (to_int (member "value" mj))
      | Some "gauge" -> Gauge (to_float (member "value" mj))
      | Some "histogram" ->
        let fopt k d =
          Option.value ~default:d (to_float_opt (member k mj))
        in
        Histogram
          {
            h_error = to_float (member "error" mj);
            h_count = to_int (member "count" mj);
            h_sum = to_float (member "sum" mj);
            h_min = fopt "min" Float.nan;
            h_max = fopt "max" Float.nan;
            h_buckets =
              List.map
                (fun p ->
                  match to_list p with
                  | [ le; cum ] -> (to_float le, to_int cum)
                  | _ -> failwith "Metrics.of_json: bad bucket")
                (to_list (member "buckets" mj));
          }
      | _ -> failwith ("Metrics.of_json: bad kind for " ^ name)
    in
    { name; labels = norm_labels labels; help; stable; value }
  in
  try List.map metric_of_json (to_list (member "metrics" j))
  with Error e -> failwith ("Metrics.of_json: " ^ e)

let write_file snap path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (if Filename.check_suffix path ".json" then to_json snap
         else to_prometheus snap))

(* ------------------------------------------------------------------ *)
(* Prometheus text-format checker                                      *)

(* Hand-rolled validator for the subset of the text exposition format
   we emit (and that scrapers require): used by `lightnet metrics` and
   the metrics-smoke gate, deliberately without new dependencies. *)

type series_state = {
  mutable s_last_le : float;
  mutable s_last_cum : float;
  mutable s_inf : float option;
  mutable s_sum : bool;
  mutable s_count : float option;
}

let validate_prometheus text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let series : (string, series_state) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let err = ref None in
  let fail_line lno fmt =
    Printf.ksprintf
      (fun s ->
        if !err = None then err := Some (Printf.sprintf "line %d: %s" lno s))
      fmt
  in
  let parse_value v =
    match v with
    | "+Inf" | "Inf" -> Some Float.infinity
    | "-Inf" -> Some Float.neg_infinity
    | "NaN" -> Some Float.nan
    | _ -> float_of_string_opt v
  in
  (* Parse `name{k="v",...} value` → (name, labels, value). *)
  let parse_sample lno line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && (match line.[!i] with
                    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
                    | _ -> false) do
      Stdlib.incr i
    done;
    let name = String.sub line 0 !i in
    if name = "" || not (name_ok name) then begin
      fail_line lno "bad metric name";
      None
    end
    else begin
      let labels = ref [] in
      let ok = ref true in
      if !i < n && line.[!i] = '{' then begin
        Stdlib.incr i;
        let rec labels_loop () =
          if !i >= n then begin
            fail_line lno "unterminated label set";
            ok := false
          end
          else if line.[!i] = '}' then Stdlib.incr i
          else begin
            let k0 = !i in
            while
              !i < n
              && match line.[!i] with
                 | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                 | _ -> false
            do
              Stdlib.incr i
            done;
            let k = String.sub line k0 (!i - k0) in
            if k = "" || not (label_key_ok k) then begin
              fail_line lno "bad label key";
              ok := false
            end
            else if !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"'
            then begin
              fail_line lno "expected =\" after label key";
              ok := false
            end
            else begin
              i := !i + 2;
              let b = Buffer.create 16 in
              let rec value_loop () =
                if !i >= n then begin
                  fail_line lno "unterminated label value";
                  ok := false
                end
                else
                  match line.[!i] with
                  | '"' -> Stdlib.incr i
                  | '\\' ->
                    if !i + 1 >= n then begin
                      fail_line lno "unterminated escape";
                      ok := false
                    end
                    else begin
                      (match line.[!i + 1] with
                      | 'n' -> Buffer.add_char b '\n'
                      | '\\' -> Buffer.add_char b '\\'
                      | '"' -> Buffer.add_char b '"'
                      | c ->
                        fail_line lno "bad escape \\%c" c;
                        ok := false);
                      i := !i + 2;
                      if !ok then value_loop ()
                    end
                  | c ->
                    Buffer.add_char b c;
                    Stdlib.incr i;
                    value_loop ()
              in
              value_loop ();
              if !ok then begin
                labels := (k, Buffer.contents b) :: !labels;
                if !i < n && line.[!i] = ',' then Stdlib.incr i;
                labels_loop ()
              end
            end
          end
        in
        labels_loop ()
      end;
      if not !ok then None
      else begin
        while !i < n && line.[!i] = ' ' do
          Stdlib.incr i
        done;
        let rest = String.sub line !i (n - !i) in
        let value_tok =
          match String.index_opt rest ' ' with
          | Some j -> String.sub rest 0 j  (* optional timestamp follows *)
          | None -> rest
        in
        match parse_value value_tok with
        | Some v -> Some (name, List.rev !labels, v)
        | None ->
          fail_line lno "unparseable sample value %S" value_tok;
          None
      end
    end
  in
  let base_of name =
    let strip suffix =
      if Filename.check_suffix name suffix then
        Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    match strip "_bucket" with
    | Some b -> Some (b, `Bucket)
    | None -> (
      match strip "_sum" with
      | Some b -> Some (b, `Sum)
      | None -> (
        match strip "_count" with Some b -> Some (b, `Count) | None -> None))
  in
  let series_key base labels =
    base
    ^ String.concat ""
        (List.map
           (fun (k, v) -> ";" ^ k ^ "=" ^ v)
           (norm_labels (List.filter (fun (k, _) -> k <> "le") labels)))
  in
  let get_series base labels =
    let key = series_key base labels in
    match Hashtbl.find_opt series key with
    | Some st -> st
    | None ->
      let st =
        { s_last_le = Float.neg_infinity; s_last_cum = -1.; s_inf = None;
          s_sum = false; s_count = None }
      in
      Hashtbl.add series key st;
      st
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lno = idx + 1 in
      if !err = None && line <> "" then
        if String.length line >= 1 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: ("HELP" | "TYPE") :: name :: rest ->
            if not (name_ok name) then fail_line lno "bad name in comment"
            else if String.length line > 6 && String.sub line 2 4 = "TYPE" then (
              match rest with
              | [ ("counter" | "gauge" | "histogram" | "summary" | "untyped") as ty ] ->
                Hashtbl.replace types name ty
              | _ -> fail_line lno "bad TYPE")
          | _ -> ()  (* other # lines are comments *)
        end
        else
          match parse_sample lno line with
          | None -> ()
          | Some (name, labels, v) -> (
            Stdlib.incr samples;
            let declared n = Hashtbl.find_opt types n in
            match declared name with
            | Some ("counter" | "gauge" | "untyped") -> ()
            | Some ty -> fail_line lno "bare sample for %s metric %s" ty name
            | None -> (
              match base_of name with
              | Some (base, part) when declared base = Some "histogram" -> (
                let st = get_series base labels in
                match part with
                | `Bucket -> (
                  match List.assoc_opt "le" labels with
                  | None -> fail_line lno "histogram bucket without le"
                  | Some le_s -> (
                    match parse_value le_s with
                    | None -> fail_line lno "bad le %S" le_s
                    | Some le ->
                      if le <= st.s_last_le then
                        fail_line lno "le not increasing in %s" name
                      else if v < st.s_last_cum then
                        fail_line lno "bucket counts not cumulative in %s" name
                      else begin
                        st.s_last_le <- le;
                        st.s_last_cum <- v;
                        if le = Float.infinity then st.s_inf <- Some v
                      end))
                | `Sum -> st.s_sum <- true
                | `Count -> st.s_count <- Some v)
              | _ -> fail_line lno "sample %s has no preceding # TYPE" name)))
    lines;
  if !err = None then
    Hashtbl.iter
      (fun key st ->
        if !err = None then
          match (st.s_inf, st.s_count) with
          | None, _ -> err := Some (Printf.sprintf "series %s: missing le=\"+Inf\" bucket" key)
          | _, None -> err := Some (Printf.sprintf "series %s: missing _count" key)
          | Some inf, Some c when inf <> c ->
            err := Some (Printf.sprintf "series %s: +Inf bucket %g <> count %g" key inf c)
          | _ ->
            if not st.s_sum then
              err := Some (Printf.sprintf "series %s: missing _sum" key))
      series;
  match !err with Some e -> Error e | None -> Ok !samples

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let pp ppf (snap : snapshot) =
  let pp_labels ppf = function
    | [] -> ()
    | labels ->
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))
  in
  List.iter
    (fun m ->
      match m.value with
      | Counter v ->
        Format.fprintf ppf "%s%a %d@." m.name pp_labels m.labels v
      | Gauge v ->
        Format.fprintf ppf "%s%a %g@." m.name pp_labels m.labels v
      | Histogram hs ->
        Format.fprintf ppf
          "%s%a count=%d p50=%g p90=%g p99=%g max=%g@." m.name pp_labels
          m.labels hs.h_count (quantile hs 0.50) (quantile hs 0.90)
          (quantile hs 0.99)
          (if hs.h_count = 0 then 0. else hs.h_max))
    snap
