type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let parse (s : string) : v =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos else fail "expected %c at offset %d" c !pos
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; incr pos
         | '\\' -> Buffer.add_char b '\\'; incr pos
         | '/' -> Buffer.add_char b '/'; incr pos
         | 'b' -> Buffer.add_char b '\b'; incr pos
         | 'f' -> Buffer.add_char b '\012'; incr pos
         | 'n' -> Buffer.add_char b '\n'; incr pos
         | 'r' -> Buffer.add_char b '\r'; incr pos
         | 't' -> Buffer.add_char b '\t'; incr pos
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let cp =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape %s" hex
           in
           (* UTF-8 encode the BMP code point. *)
           if cp < 0x80 then Buffer.add_char b (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
           end;
           pos := !pos + 5
         | c -> fail "bad escape \\%c" c);
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail "bad number %S at offset %d" tok start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            members ((k, v) :: acc)
          | '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } at offset %d" !pos
        in
        members []
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            elems (v :: acc)
          | ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] at offset %d" !pos
        in
        elems []
      end
    | '"' -> Str (parse_string ())
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let parse_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse s

let member k = function
  | Obj l -> ( match List.assoc_opt k l with Some v -> v | None -> Null)
  | _ -> Null

let path keys v = List.fold_left (fun v k -> member k v) v keys
let to_list = function Arr l -> l | _ -> fail "expected array"
let to_string = function Str s -> s | _ -> fail "expected string"
let to_float = function Num f -> f | _ -> fail "expected number"
let to_int = function Num f -> int_of_float f | _ -> fail "expected number"
let to_float_opt = function Num f -> Some f | _ -> None
let to_int_opt = function Num f -> Some (int_of_float f) | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let escape s =
  let b = Buffer.create (String.length s + 2) in
  add_escaped b s;
  Buffer.contents b
