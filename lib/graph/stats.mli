(** Quality metrics for subgraphs: the quantities Table 1 of the paper
    bounds — stretch, lightness, size — computed exactly (or on sampled
    pairs for large instances) against Dijkstra ground truth. *)

(** [lightness g ids] is [w(H) / w(MST)] where [H] is the edge set
    [ids]. On disconnected graphs the baseline is the minimum spanning
    forest ({!Mst_seq.forest_weight}), which coincides with the MST
    when [g] is connected. Degenerate baselines never produce [nan]:
    an edgeless or single-vertex graph has baseline 0 and lightness
    [1.0] (its only subgraph is empty). *)
val lightness : Graph.t -> int list -> float

(** [max_edge_stretch g ids] is the maximum over graph edges [(u,v)] of
    [d_H(u,v) / w(u,v)]. By the triangle inequality this equals the
    maximum pairwise stretch of the spanner [H = (V, ids)]. [infinity]
    if [H] fails to connect some edge's endpoints; [1.0] on an edgeless
    graph. Cost: one Dijkstra in [H] per vertex that has incident
    edges. *)
val max_edge_stretch : Graph.t -> int list -> float

(** [sampled_edge_stretch rng g ids ~samples] — same, over a random
    sample of edges (an underestimate; cheap for big instances). [1.0]
    when [g] has no edges. *)
val sampled_edge_stretch :
  Random.State.t -> Graph.t -> int list -> samples:int -> float

(** [root_stretch g ids ~root] is the maximum over vertices [v] of
    [d_H(root, v) / d_G(root, v)] — the SLT guarantee of Section 4.
    Vertices unreachable from [root] in [g] itself are skipped (their
    stretch is undefined); a vertex reachable in [g] but not in [H]
    drives the result to [infinity]. *)
val root_stretch : Graph.t -> int list -> root:int -> float

(** [tree_root_stretch g tree ~root] — same but with distances measured
    along a tree (cheaper, exact). Skips vertices unreachable in [g]. *)
val tree_root_stretch : Graph.t -> Tree.t -> root:int -> float

(** A bundled quality report used by benches and examples. *)
type report = {
  edges : int;
  weight : float;
  lightness : float;
  stretch : float;  (** max edge stretch, or sampled when [sampled] *)
  sampled : bool;
}

val report : ?sample:int -> Random.State.t -> Graph.t -> int list -> report

val pp_report : Format.formatter -> report -> unit
