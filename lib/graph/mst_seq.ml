let forest g =
  let ids = Array.init (Graph.m g) (fun i -> i) in
  Array.sort (Graph.compare_edges g) ids;
  let uf = Union_find.create (Graph.n g) in
  let acc = ref [] in
  Array.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      if Union_find.union uf u v then acc := id :: !acc)
    ids;
  List.sort Int.compare !acc

let kruskal g =
  if not (Graph.is_connected g) then invalid_arg "Mst_seq.kruskal: disconnected";
  forest g

let prim g =
  if not (Graph.is_connected g) then invalid_arg "Mst_seq.prim: disconnected";
  let n = Graph.n g in
  if n = 0 then []
  else begin
    let in_tree = Array.make n false in
    let q = Pqueue.create () in
    let acc = ref [] in
    let add v =
      in_tree.(v) <- true;
      Graph.iter_neighbors g v (fun id u ->
          if not in_tree.(u) then
            (* Encode the tie-break in the priority: weight first, id second. *)
            Pqueue.push q (Graph.weight g id) (id, u))
    in
    add 0;
    let picked = ref 1 in
    while !picked < n do
      (* Among equal-weight candidates the heap order is arbitrary, so pop
         all minimum-weight entries and choose the smallest edge id whose
         endpoint is still outside the tree. *)
      let w0, _ = Pqueue.peek_min q in
      let batch = ref [] in
      while (not (Pqueue.is_empty q)) && fst (Pqueue.peek_min q) = w0 do
        batch := snd (Pqueue.pop_min q) :: !batch
      done;
      let live = List.filter (fun (_, u) -> not in_tree.(u)) !batch in
      match List.sort (fun (a, _) (b, _) -> Int.compare a b) live with
      | [] -> ()
      | (id, u) :: rest ->
        List.iter (fun (id, u) -> Pqueue.push q (Graph.weight g id) (id, u)) rest;
        acc := id :: !acc;
        add u;
        incr picked
    done;
    List.sort Int.compare !acc
  end

let weight g = Graph.weight_of_edges g (kruskal g)
let forest_weight g = Graph.weight_of_edges g (forest g)

let is_spanning_tree g ids =
  List.length ids = Graph.n g - 1
  &&
  let uf = Union_find.create (Graph.n g) in
  List.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      ignore (Union_find.union uf u v))
    ids;
  Union_find.count uf = 1
