type sssp = { dist : float array; parent_edge : int array }

let dijkstra_core ?(bound = infinity) ?edge_ok g seeds =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let source = Array.make n (-1) in
  let settled = Array.make n false in
  let { Graph.off; adj_eid; adj_dst; ew; _ } = Graph.view g in
  let q = Pqueue.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0.0;
      source.(s) <- s;
      Pqueue.push q 0.0 s)
    seeds;
  while not (Pqueue.is_empty q) do
    let d, v = Pqueue.pop_min q in
    if not settled.(v) then begin
      settled.(v) <- true;
      if d <= bound then begin
        let hi = off.(v + 1) - 1 in
        match edge_ok with
        | None ->
          (* Unfiltered hot path: walk the CSR columns directly — no
             closure, no per-edge [Graph.weight] call. *)
          for i = off.(v) to hi do
            let u = adj_dst.(i) in
            if not settled.(u) then begin
              let id = adj_eid.(i) in
              let nd = d +. ew.(id) in
              if nd < dist.(u) && nd <= bound then begin
                dist.(u) <- nd;
                parent_edge.(u) <- id;
                source.(u) <- source.(v);
                Pqueue.push q nd u
              end
            end
          done
        | Some ok ->
          for i = off.(v) to hi do
            let id = adj_eid.(i) in
            let u = adj_dst.(i) in
            if ok id && not settled.(u) then begin
              let nd = d +. ew.(id) in
              if nd < dist.(u) && nd <= bound then begin
                dist.(u) <- nd;
                parent_edge.(u) <- id;
                source.(u) <- source.(v);
                Pqueue.push q nd u
              end
            end
          done
      end
    end
  done;
  ({ dist; parent_edge }, source)

let dijkstra ?bound ?edge_ok g src = fst (dijkstra_core ?bound ?edge_ok g [ src ])

let dijkstra_multi ?bound ?edge_ok g srcs = dijkstra_core ?bound ?edge_ok g srcs

let distance ?edge_ok g u v =
  let r = dijkstra ?edge_ok g u in
  r.dist.(v)

let path_to r g v =
  if r.dist.(v) = infinity then None
  else begin
    let rec walk v acc =
      let id = r.parent_edge.(v) in
      if id < 0 then v :: acc else walk (Graph.other_end g id v) (v :: acc)
    in
    Some (walk v [])
  end

let bfs_hops g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let { Graph.off; adj_dst; _ } = Graph.view g in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let dv = dist.(v) + 1 in
    for i = off.(v) to off.(v + 1) - 1 do
      let u = adj_dst.(i) in
      if dist.(u) < 0 then begin
        dist.(u) <- dv;
        Queue.push u q
      end
    done
  done;
  dist

let eccentricity_hops g v =
  Array.fold_left (fun acc d -> max acc d) 0 (bfs_hops g v)

let all_pairs ?edge_ok g =
  Array.init (Graph.n g) (fun v -> (dijkstra ?edge_ok g v).dist)
