let lightness g ids =
  (* The forest weight equals the MST weight on connected graphs and,
     unlike [Mst_seq.weight], is defined (rather than raising) on
     disconnected ones — lightness against the spanning-forest baseline
     is the natural per-component generalization. *)
  let w_mst = Mst_seq.forest_weight g in
  let w = Graph.weight_of_edges g ids in
  (* Degenerate baseline: an edgeless (or single-vertex) graph has
     forest weight 0, and the only subgraph it admits is the empty one
     — perfectly light, 1.0, not 0/0 = nan. The [infinity] arm is
     unreachable while edge weights are strictly positive, but keeps
     the function total if that invariant ever relaxes. *)
  if w_mst > 0.0 then w /. w_mst else if w <= 0.0 then 1.0 else infinity

let in_set g ids =
  let mask = Array.make (max 1 (Graph.m g)) false in
  List.iter (fun id -> mask.(id) <- true) ids;
  fun id -> mask.(id)

(* Stretch of one edge: spanner distance over edge weight.
   [Graph.create] rejects non-positive weights, so the [w > 0] branch
   is the only one reachable through the public API; the fallback is
   defense in depth against a future relaxation of that invariant —
   a 0/0 here would make nan, which fails every [>] comparison and
   silently vanishes from the aggregated maximum. *)
let edge_stretch ~dist ~w =
  if w > 0.0 then dist /. w else if dist <= 0.0 then 1.0 else infinity

let max_edge_stretch g ids =
  let edge_ok = in_set g ids in
  let worst = ref 1.0 in
  (* Dijkstra in H from each vertex once; check its incident edges. *)
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > 0 then begin
      let sp = Paths.dijkstra ~edge_ok g v in
      Graph.iter_neighbors g v (fun id u ->
          if u > v then begin
            let s = edge_stretch ~dist:sp.dist.(u) ~w:(Graph.weight g id) in
            if s > !worst then worst := s
          end)
    end
  done;
  !worst

let sampled_edge_stretch rng g ids ~samples =
  let m = Graph.m g in
  if m = 0 then 1.0
  else begin
    let edge_ok = in_set g ids in
    let worst = ref 1.0 in
    (* Group sampled edges by endpoint to reuse Dijkstra runs. *)
    let chosen = Array.init samples (fun _ -> Random.State.int rng m) in
    let by_src = Hashtbl.create samples in
    Array.iter
      (fun id ->
        let u, _ = Graph.endpoints g id in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_src u) in
        Hashtbl.replace by_src u (id :: cur))
      chosen;
    Hashtbl.iter
      (fun u ids_here ->
        let sp = Paths.dijkstra ~edge_ok g u in
        List.iter
          (fun id ->
            let v = Graph.other_end g id u in
            let s = edge_stretch ~dist:sp.dist.(v) ~w:(Graph.weight g id) in
            if s > !worst then worst := s)
          ids_here)
      by_src;
    !worst
  end

let root_stretch g ids ~root =
  let edge_ok = in_set g ids in
  let exact = Paths.dijkstra g root in
  let approx = Paths.dijkstra ~edge_ok g root in
  let worst = ref 1.0 in
  (* Vertices unreachable in [g] itself have no defined stretch (the
     exact distance is [infinity]; dividing would make inf/inf = nan):
     skip them explicitly rather than relying on nan losing the [>]
     below. A vertex reachable in [g] but not in the subgraph yields
     [infinity], which is the honest answer. *)
  for v = 0 to Graph.n g - 1 do
    if v <> root && exact.dist.(v) > 0.0 && Float.is_finite exact.dist.(v)
    then begin
      let s = approx.dist.(v) /. exact.dist.(v) in
      if s > !worst then worst := s
    end
  done;
  !worst

let tree_root_stretch g tree ~root =
  let exact = Paths.dijkstra g root in
  let worst = ref 1.0 in
  for v = 0 to Graph.n g - 1 do
    if v <> root && exact.dist.(v) > 0.0 && Float.is_finite exact.dist.(v)
    then begin
      let s = Tree.dist_to_root tree v /. exact.dist.(v) in
      if s > !worst then worst := s
    end
  done;
  !worst

type report = {
  edges : int;
  weight : float;
  lightness : float;
  stretch : float;
  sampled : bool;
}

let report ?sample rng g ids =
  let stretch, sampled =
    match sample with
    | Some samples -> (sampled_edge_stretch rng g ids ~samples, true)
    | None -> (max_edge_stretch g ids, false)
  in
  {
    edges = List.length ids;
    weight = Graph.weight_of_edges g ids;
    lightness = lightness g ids;
    stretch;
    sampled;
  }

let pp_report ppf r =
  Format.fprintf ppf "edges=%d weight=%.1f lightness=%.3f stretch=%.4f%s" r.edges
    r.weight r.lightness r.stretch
    (if r.sampled then " (sampled)" else "")
