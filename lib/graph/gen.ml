type rng = Random.State.t

let uniform rng lo hi = lo +. Random.State.float rng (hi -. lo)

let edges_of_graph g = Graph.fold_edges g (fun _ e acc -> e :: acc) []

let ensure_connected rng g =
  let c, comp = Graph.components g in
  if c <= 1 then g
  else begin
    (* Pick one representative per component, join them in a random
       chain with heavy-ish weights so they rarely distort structure. *)
    let reps = Array.make c (-1) in
    for v = 0 to Graph.n g - 1 do
      if reps.(comp.(v)) < 0 then reps.(comp.(v)) <- v
    done;
    let w_hi =
      Graph.fold_edges g (fun _ e acc -> Float.max acc e.w) 1.0
    in
    let extra = ref [] in
    for i = 1 to c - 1 do
      let j = Random.State.int rng i in
      extra :=
        { Graph.u = reps.(i); v = reps.(j); w = uniform rng (0.5 *. w_hi) w_hi }
        :: !extra
    done;
    Graph.create (Graph.n g) (!extra @ edges_of_graph g)
  end

let erdos_renyi rng ~n ~p ?(w_lo = 1.0) ?(w_hi = 100.0) () =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then
        edges := { Graph.u; v; w = uniform rng w_lo w_hi } :: !edges
    done
  done;
  ensure_connected rng (Graph.create n !edges)

let heavy_tailed rng ~n ~p ?(range = 1e6) () =
  let edges = ref [] in
  let ln_range = Float.log range in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then begin
        let w = Float.exp (Random.State.float rng ln_range) in
        edges := { Graph.u; v; w } :: !edges
      end
    done
  done;
  ensure_connected rng (Graph.create n !edges)

let random_geometric rng ~n ~radius ?(dim = 2) () =
  let pts = Array.init n (fun _ -> Array.init dim (fun _ -> Random.State.float rng 1.0)) in
  let dist i j =
    let s = ref 0.0 in
    for d = 0 to dim - 1 do
      let dx = pts.(i).(d) -. pts.(j).(d) in
      s := !s +. (dx *. dx)
    done;
    Float.sqrt !s
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = dist u v in
      if d <= radius && d > 0.0 then edges := { Graph.u; v; w = d } :: !edges
    done
  done;
  let g = Graph.create n !edges in
  (* Connect leftover components with true Euclidean distances so the
     metric stays doubling. *)
  let c, comp = Graph.components g in
  let g =
    if c <= 1 then g
    else begin
      let extra = ref [] in
      let reps = Array.make c (-1) in
      for v = 0 to n - 1 do
        if reps.(comp.(v)) < 0 then reps.(comp.(v)) <- v
      done;
      for i = 1 to c - 1 do
        (* attach to the geometrically nearest earlier representative *)
        let best = ref 0 and bestd = ref infinity in
        for j = 0 to i - 1 do
          let d = dist reps.(i) reps.(j) in
          if d < !bestd then begin
            bestd := d;
            best := j
          end
        done;
        extra :=
          { Graph.u = reps.(i); v = reps.(!best); w = Float.max !bestd 1e-6 } :: !extra
      done;
      Graph.create n (!extra @ edges_of_graph g)
    end
  in
  (g, pts)

let grid rng ~rows ~cols ?(jitter = true) () =
  let idx r c = (r * cols) + c in
  let w () = if jitter then uniform rng 0.9 1.1 else 1.0 in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := { Graph.u = idx r c; v = idx r (c + 1); w = w () } :: !edges;
      if r + 1 < rows then edges := { Graph.u = idx r c; v = idx (r + 1) c; w = w () } :: !edges
    done
  done;
  Graph.create (rows * cols) !edges

let path ?(w = 1.0) n =
  Graph.create n (List.init (max 0 (n - 1)) (fun i -> { Graph.u = i; v = i + 1; w }))

let cycle ?(w = 1.0) n =
  let es = List.init (max 0 (n - 1)) (fun i -> { Graph.u = i; v = i + 1; w }) in
  Graph.create n (if n >= 3 then { Graph.u = n - 1; v = 0; w } :: es else es)

let star ?(w = 1.0) n =
  Graph.create n (List.init (max 0 (n - 1)) (fun i -> { Graph.u = 0; v = i + 1; w }))

let complete rng ~n ?(w_lo = 1.0) ?(w_hi = 100.0) () =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := { Graph.u; v; w = uniform rng w_lo w_hi } :: !edges
    done
  done;
  Graph.create n !edges

let caterpillar rng ~spine ~legs () =
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := { Graph.u = i; v = i + 1; w = uniform rng 1.0 2.0 } :: !edges
  done;
  for l = 0 to legs - 1 do
    let attach = Random.State.int rng (max 1 spine) in
    edges := { Graph.u = attach; v = spine + l; w = uniform rng 0.1 0.5 } :: !edges
  done;
  Graph.create (spine + legs) !edges

(* Seeded Zipf sampler over ranks 0..n-1: P(r) proportional to
   1/(r+1)^s. The CDF is precomputed once (O(n)); each draw is one
   [Random.State.float] plus a binary search, so a sampler is cheap to
   share across a whole workload and deterministic for a fixed rng
   state. *)
let zipf_sampler rng ~s ~n =
  if n <= 0 then invalid_arg "Gen.zipf_sampler: n must be positive";
  if not (s >= 0.0 && Float.is_finite s) then
    invalid_arg "Gen.zipf_sampler: s must be finite and non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) s);
    cdf.(r) <- !acc
  done;
  let total = !acc in
  fun () ->
    let x = Random.State.float rng total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo

let zipf rng ~s ~n = zipf_sampler rng ~s ~n ()

(* Graph500-style RMAT (Kronecker) edge stream. Each of the
   [edge_factor * 2^scale] directed draws recursively descends [scale]
   levels of the adjacency-matrix quadrant tree; quadrant probabilities
   start at the Graph500 reference (a,b,c,d) = (0.57, 0.19, 0.19, 0.05)
   and are re-perturbed with multiplicative noise at every level, which
   breaks the pure-Kronecker self-similarity artifacts (stair-step
   degree plateaus) the same way the reference implementations do.
   Emits straight into parallel endpoint/weight columns sized for
   [Graph.of_edge_arrays]; no per-edge boxing. Self-loops and parallel
   edges survive here — the CSR builder drops/collapses them, which is
   why [Graph.m] of the result is somewhat below [edge_factor * n]. *)
let rmat_edges rng ~scale ~edge_factor ?(a = 0.57) ?(b = 0.19) ?(c = 0.19)
    ?(noise = 0.1) ?(w_lo = 1.0) ?(w_hi = 100.0) () =
  if scale < 1 || scale > 30 then invalid_arg "Gen.rmat_edges: scale out of range";
  if edge_factor < 1 then invalid_arg "Gen.rmat_edges: edge_factor < 1";
  let d = 1.0 -. (a +. b +. c) in
  if a <= 0.0 || b <= 0.0 || c <= 0.0 || d <= 0.0 then
    invalid_arg "Gen.rmat_edges: quadrant probabilities must be positive";
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let us = Array.make m 0 in
  let vs = Array.make m 0 in
  let ws = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let u = ref 0 and v = ref 0 in
    let pa = ref a and pb = ref b and pc = ref c and pd = ref d in
    for bit = scale - 1 downto 0 do
      let x = Random.State.float rng 1.0 in
      if x < !pa then ()
      else if x < !pa +. !pb then v := !v lor (1 lsl bit)
      else if x < !pa +. !pb +. !pc then u := !u lor (1 lsl bit)
      else begin
        u := !u lor (1 lsl bit);
        v := !v lor (1 lsl bit)
      end;
      (* Multiplicative noise on each quadrant probability, then
         renormalize, so deeper levels drift away from the seed matrix. *)
      if noise > 0.0 then begin
        let perturb p = p *. (1.0 -. noise +. (2.0 *. noise *. Random.State.float rng 1.0)) in
        let a' = perturb !pa and b' = perturb !pb and c' = perturb !pc and d' = perturb !pd in
        let s = a' +. b' +. c' +. d' in
        pa := a' /. s;
        pb := b' /. s;
        pc := c' /. s;
        pd := d' /. s
      end
    done;
    us.(i) <- !u;
    vs.(i) <- !v;
    ws.(i) <- uniform rng w_lo w_hi
  done;
  (us, vs, ws)

let rmat rng ~scale ~edge_factor ?a ?b ?c ?noise ?w_lo ?w_hi () =
  let us, vs, ws = rmat_edges rng ~scale ~edge_factor ?a ?b ?c ?noise ?w_lo ?w_hi () in
  Graph.of_edge_arrays ~n:(1 lsl scale) us vs ws

let clustered rng ~clusters ~size ~p_in ~p_out () =
  let n = clusters * size in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let same = u / size = v / size in
      let p = if same then p_in else p_out in
      if Random.State.float rng 1.0 < p then begin
        let w = if same then uniform rng 1.0 2.0 else uniform rng 50.0 100.0 in
        edges := { Graph.u; v; w } :: !edges
      end
    done
  done;
  ensure_connected rng (Graph.create n !edges)
