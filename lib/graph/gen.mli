(** Graph generators used by tests, examples and the benchmark harness.

    All generators return *connected* weighted graphs (a few extra
    connecting edges are added when the random model leaves isolated
    components). Randomness is explicit via [Random.State.t]. *)

type rng = Random.State.t

(** [erdos_renyi rng ~n ~p ()] — G(n, p) with i.i.d. uniform weights in
    [[w_lo, w_hi]] (defaults 1 and 100). *)
val erdos_renyi :
  rng -> n:int -> p:float -> ?w_lo:float -> ?w_hi:float -> unit -> Graph.t

(** Like {!erdos_renyi} but with heavy-tailed (log-uniform) weights in
    [[1, range]]; stresses the weight-bucketing of Section 5. *)
val heavy_tailed : rng -> n:int -> p:float -> ?range:float -> unit -> Graph.t

(** [random_geometric rng ~n ~radius ()] — [n] points uniform in the
    unit [dim]-cube (default [dim = 2]); vertices within [radius] are
    joined, weight = Euclidean distance. Doubling dimension O(dim).
    Also returns the points. *)
val random_geometric :
  rng -> n:int -> radius:float -> ?dim:int -> unit -> Graph.t * float array array

(** [grid rng ~rows ~cols ()] — grid with unit (or slightly jittered)
    weights; hop diameter rows+cols. *)
val grid : rng -> rows:int -> cols:int -> ?jitter:bool -> unit -> Graph.t

(** [path n] — the n-vertex unit-weight path (worst case for D). *)
val path : ?w:float -> int -> Graph.t

val cycle : ?w:float -> int -> Graph.t

(** [star n] — a unit-weight star with center 0. *)
val star : ?w:float -> int -> Graph.t

val complete : rng -> n:int -> ?w_lo:float -> ?w_hi:float -> unit -> Graph.t

(** A path with pendant leaves — an adversarial MST/Euler shape. *)
val caterpillar : rng -> spine:int -> legs:int -> unit -> Graph.t

(** [clustered rng ~clusters ~size ~p_in ~p_out ()] — dense cheap
    clusters joined by expensive sparse edges; adversarial for
    lightness. *)
val clustered :
  rng -> clusters:int -> size:int -> p_in:float -> p_out:float -> unit -> Graph.t

(** [zipf_sampler rng ~s ~n] is a sampler of Zipf-distributed ranks in
    [[0, n)]: rank [r] is drawn with probability proportional to
    [1/(r+1)^s] ([s = 0] is uniform). The CDF is precomputed once;
    each call to the returned thunk costs one rng draw plus a binary
    search. Deterministic for a fixed rng state — used by the
    query-workload generators and the chaos/bench harnesses. *)
val zipf_sampler : rng -> s:float -> n:int -> unit -> int

(** One-shot {!zipf_sampler} draw (re-derives the CDF; prefer the
    sampler in loops). *)
val zipf : rng -> s:float -> n:int -> int

(** [rmat_edges rng ~scale ~edge_factor ()] draws a Graph500-style RMAT
    edge stream as parallel endpoint/weight columns ready for
    {!Graph.of_edge_arrays}: [edge_factor * 2^scale] draws over
    [2^scale] vertices, quadrant probabilities starting at
    [(a, b, c, 1-a-b-c)] (defaults [(0.57, 0.19, 0.19, 0.05)], the
    Graph500 reference matrix) and re-perturbed per level with
    multiplicative [noise] (default 0.1; 0 disables). Weights are
    i.i.d. uniform in [[w_lo, w_hi]] (defaults 1 and 100). Self-loops
    and duplicate draws are left in the stream — the graph constructor
    drops/collapses them. Deterministic for a fixed rng state; the
    result is generally NOT connected (Graph500 BFS keys handle
    per-component reachability).
    @raise Invalid_argument if [scale] is outside [[1, 30]],
    [edge_factor < 1], or any quadrant probability is non-positive. *)
val rmat_edges :
  rng ->
  scale:int ->
  edge_factor:int ->
  ?a:float ->
  ?b:float ->
  ?c:float ->
  ?noise:float ->
  ?w_lo:float ->
  ?w_hi:float ->
  unit ->
  int array * int array * float array

(** [rmat rng ~scale ~edge_factor ()] is {!rmat_edges} piped through
    {!Graph.of_edge_arrays} — the resulting simple graph has
    [n = 2^scale] and [m] a little under [edge_factor * n]. *)
val rmat :
  rng ->
  scale:int ->
  edge_factor:int ->
  ?a:float ->
  ?b:float ->
  ?c:float ->
  ?noise:float ->
  ?w_lo:float ->
  ?w_hi:float ->
  unit ->
  Graph.t

(** [ensure_connected rng g] adds minimum-count random inter-component
    edges (with weights at the top of [g]'s weight range) until [g] is
    connected. Identity on connected graphs. *)
val ensure_connected : rng -> Graph.t -> Graph.t
