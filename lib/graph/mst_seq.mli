(** Sequential minimum spanning tree algorithms.

    All MST code in this library — sequential and distributed — breaks
    weight ties by edge id ({!Graph.compare_edges}), so the MST is
    unique and independent constructions can be compared edge-for-edge.
    Inputs must be connected graphs, except for {!forest} and
    {!forest_weight}. *)

(** [kruskal g] is the list of MST edge ids (sorted increasingly).
    @raise Invalid_argument if [g] is disconnected. *)
val kruskal : Graph.t -> int list

(** [forest g] is the minimum spanning forest: the same tie-broken
    Kruskal construction, but defined on any graph — one tree per
    connected component, empty for an edgeless graph. Equals
    [kruskal g] when [g] is connected. *)
val forest : Graph.t -> int list

(** [prim g] is the same MST computed by Prim's algorithm (used to
    cross-check Kruskal and the distributed construction). *)
val prim : Graph.t -> int list

(** [weight g] is the total MST weight [w(MST)].
    @raise Invalid_argument if [g] is disconnected. *)
val weight : Graph.t -> float

(** [forest_weight g] is the total weight of {!forest} — a baseline
    that exists for every graph. *)
val forest_weight : Graph.t -> float

(** [is_spanning_tree g ids] checks that [ids] has [n-1] edges and
    connects all vertices. *)
val is_spanning_tree : Graph.t -> int list -> bool
