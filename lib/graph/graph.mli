(** Weighted undirected graphs with stable integer edge ids.

    This is the substrate every algorithm in the library operates on.
    Vertices are [0 .. n-1]; an edge is identified by its index in the
    edge array, so a subgraph (spanner, tree, ...) is just a set of edge
    ids. Weights are strictly positive floats. Parallel edges are
    collapsed to the lightest one and self-loops dropped at construction
    time, matching the paper's simple-graph setting.

    The representation is flat CSR (see DESIGN.md "Graph substrate"):
    int-array offsets plus packed edge-id/neighbor columns and a flat
    weight array. Hot loops should use {!iter_neighbors} /
    {!fold_neighbors}, which traverse the packed columns without
    allocating; {!neighbors} survives for API compatibility but builds
    its boxed tuple rows lazily and must not appear on hot paths. *)

type edge = { u : int; v : int; w : float }

type t

(** [create n edges] builds a graph on [n] vertices. Self-loops are
    dropped, parallel edges are collapsed keeping the minimum weight.
    @raise Invalid_argument on out-of-range endpoints or weights [<= 0]. *)
val create : int -> edge list -> t

(** [of_edge_arrays ~n us vs ws] builds a graph from parallel endpoint
    and weight columns without materializing an [edge] record list:
    edge [i] joins [us.(i)] and [vs.(i)] with weight [ws.(i)]. The
    input arrays are not retained or mutated. [?len] restricts to the
    first [len] entries (default: [Array.length us]). Validation,
    self-loop dropping and parallel-edge collapse match {!create};
    temporary storage is O(len) unboxed words, so this is the
    constructor to use at Graph500 scale.
    @raise Invalid_argument as {!create}, with ["Graph.of_edge_arrays"]
    prefixes. *)
val of_edge_arrays :
  n:int -> ?len:int -> int array -> int array -> float array -> t

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** [edge g id] is the edge with identifier [id]. *)
val edge : t -> int -> edge

(** [weight g id] is the weight of edge [id]. *)
val weight : t -> int -> float

(** [endpoints g id] is [(u, v)] with [u < v]. *)
val endpoints : t -> int -> int * int

(** [other_end g id x] is the endpoint of edge [id] different from [x].
    @raise Invalid_argument if [x] is not an endpoint of [id]. *)
val other_end : t -> int -> int -> int

(** [neighbors g v] is the array of [(edge_id, neighbor)] pairs incident
    to [v]. The returned array is owned by the graph: do not mutate.

    Deprecated in favor of {!iter_neighbors} / {!fold_neighbors}: the
    tuple rows are built lazily from the CSR columns on first access
    and memoized, so calling this forces the boxed representation into
    existence. In-tree code must not use it (enforced by a grep gate in
    the test suite); it remains for external API compatibility. *)
val neighbors : t -> int -> (int * int) array

(** [degree g v] is the number of edges incident to [v]. *)
val degree : t -> int -> int

(** [iter_neighbors g v f] applies [f edge_id neighbor] to every edge
    incident to [v], in ascending edge-id order (the same order
    {!neighbors} reports). Traverses the packed CSR columns directly —
    no allocation, no closure per element beyond [f] itself. *)
val iter_neighbors : t -> int -> (int -> int -> unit) -> unit

(** [fold_neighbors g v f acc] folds [f acc edge_id neighbor] over the
    edges incident to [v] in ascending edge-id order, without
    allocating intermediate tuples. *)
val fold_neighbors : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** The physical CSR columns, for hot loops where even the closure
    call of {!iter_neighbors} is measurable (Dijkstra, BFS kernels).
    Vertex [v]'s incidences are
    [off.(v) .. off.(v+1)-1] into [adj_eid]/[adj_dst]; [ew.(id)] is
    edge [id]'s weight; [eu.(id)]/[ev.(id)] are edge [id]'s endpoints
    (normalized [eu.(id) < ev.(id)]) — the column form of
    {!endpoints}, for loops that resolve the far end of an edge id
    without allocating a tuple per call (the CONGEST engine's message
    delivery). The arrays are the graph's own storage, shared not
    copied: treat them as read-only, exactly like the array returned
    by {!neighbors}. *)
type view = private {
  off : int array;
  adj_eid : int array;
  adj_dst : int array;
  eu : int array;
  ev : int array;
  ew : float array;
}

val view : t -> view

(** [iter_edges g f] applies [f id edge] to every edge. *)
val iter_edges : t -> (int -> edge -> unit) -> unit

(** [fold_edges g f acc] folds [f] over all [(id, edge)]. *)
val fold_edges : t -> (int -> edge -> 'a -> 'a) -> 'a -> 'a

(** [find_edge g u v] is [Some id] if there is an edge between [u] and
    [v], else [None]. O(min degree). *)
val find_edge : t -> int -> int -> int option

(** Total weight of all edges. *)
val total_weight : t -> float

(** [weight_of_edges g ids] is the summed weight of the listed edges. *)
val weight_of_edges : t -> int list -> float

(** [subgraph g ids] is the graph on the same vertex set whose edges are
    exactly [ids] (with fresh edge ids); [original_id] maps them back. *)
val subgraph : t -> int list -> t * (int -> int)

(** [is_connected g] is [true] iff [g] has a single connected component
    (the empty graph and the 1-vertex graph are connected). *)
val is_connected : t -> bool

(** [components g] assigns each vertex a component index in
    [0 .. c-1]; returns [(c, comp array)]. *)
val components : t -> int * int array

(** [hop_diameter g] is the diameter of the underlying unweighted graph
    (the paper's [D]). @raise Invalid_argument if [g] is disconnected. *)
val hop_diameter : t -> int

(** Largest edge weight divided by smallest (aspect ratio of weights);
    [1.0] for the edgeless graph. *)
val weight_aspect_ratio : t -> float

(** [compare_edges g a b] orders edge ids by [(weight, id)] — the
    tie-break every MST implementation in this library uses, making the
    MST unique and letting independent constructions agree exactly. *)
val compare_edges : t -> int -> int -> int

(** Pretty-printer for debugging ([n], [m], weight range). *)
val pp : Format.formatter -> t -> unit
