type edge = { u : int; v : int; w : float }

(* Flat CSR core. Edges are columnar: [eu]/[ev] hold the endpoints
   (normalized so [eu.(id) < ev.(id)]) and [ew] the weight, all indexed
   by edge id. Incidence is packed: vertex [v]'s incident edges live at
   positions [off.(v) .. off.(v+1)-1] of the parallel [adj_eid] /
   [adj_dst] columns. Within a vertex, incidences are sorted by edge id
   (the fill loop walks ids ascending), which is the same order the
   historical tuple-array adjacency used — programs that depend on
   neighbor order (the CONGEST engine's inbox chains, greedy
   tie-breaks) see identical sequences.

   [legacy] memoizes the deprecated per-vertex [(edge_id, neighbor)]
   tuple arrays behind {!neighbors}; rows are built on first demand so
   a graph whose consumers stick to the CSR iterators never pays the
   boxed representation at all. *)
type t = {
  n : int;
  m : int;
  eu : int array;
  ev : int array;
  ew : float array;
  off : int array; (* length n+1 *)
  adj_eid : int array; (* length 2m *)
  adj_dst : int array; (* length 2m *)
  mutable legacy : (int * int) array array;
}

(* Shared physical sentinel marking a legacy row as not-yet-built; a
   degree-0 vertex's real row is a distinct (fresh) empty array. *)
let unbuilt_row : (int * int) array = [| (min_int, min_int) |]

(* ------------------------------------------------------------------ *)
(* Construction.

   [build_csr] is the one constructor everything funnels through. It
   consumes parallel endpoint/weight arrays (no [edge] record list is
   ever materialized), normalizes and validates each entry with the
   same checks and error text the historical [create] used, drops
   self-loops, sorts in place, and collapses parallel edges keeping the
   lightest — all with O(m) ints of temporary storage. *)

(* In-place quicksort of the parallel (key, weight) columns over
   [0 .. len-1], ordered by key then weight. Median-of-three pivot,
   insertion sort below 16, recurse on the smaller side first so stack
   depth stays O(log len) even on adversarial inputs. *)
let sort_key_weight key wt len =
  let swap i j =
    let k = key.(i) in
    key.(i) <- key.(j);
    key.(j) <- k;
    let w = wt.(i) in
    wt.(i) <- wt.(j);
    wt.(j) <- w
  in
  let less i j = key.(i) < key.(j) || (key.(i) = key.(j) && wt.(i) < wt.(j)) in
  let less_kw k w i = k < key.(i) || (k = key.(i) && w < wt.(i)) in
  let rec qsort lo hi =
    if hi - lo < 16 then begin
      for i = lo + 1 to hi do
        let k = key.(i) and w = wt.(i) in
        let j = ref (i - 1) in
        while !j >= lo && less_kw k w !j do
          key.(!j + 1) <- key.(!j);
          wt.(!j + 1) <- wt.(!j);
          decr j
        done;
        key.(!j + 1) <- k;
        wt.(!j + 1) <- w
      done
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if less mid lo then swap lo mid;
      if less hi lo then swap lo hi;
      if less hi mid then swap mid hi;
      let pk = key.(mid) and pw = wt.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while key.(!i) < pk || (key.(!i) = pk && wt.(!i) < pw) do
          incr i
        done;
        while pk < key.(!j) || (pk = key.(!j) && pw < wt.(!j)) do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      (* Smaller half first keeps the recursion logarithmic. *)
      if !j - lo < hi - !i then begin
        if lo < !j then qsort lo !j;
        if !i < hi then qsort !i hi
      end
      else begin
        if !i < hi then qsort !i hi;
        if lo < !j then qsort lo !j
      end
    end
  in
  if len > 1 then qsort 0 (len - 1)

let build_csr ~who ~n us vs ws ~len =
  if n < 0 then invalid_arg (who ^ ": negative n");
  if n > 0x3FFFFFFF then invalid_arg (who ^ ": n too large for packed keys");
  (* Pass 1: validate, normalize (u < v), drop self-loops, pack each
     surviving edge's endpoints into one int key = u*n + v. *)
  let key = Array.make (max 1 len) 0 in
  let wt = Array.make (max 1 len) 0.0 in
  let k = ref 0 in
  for i = 0 to len - 1 do
    let u = us.(i) and v = vs.(i) and w = ws.(i) in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (who ^ ": endpoint out of range");
    if w <= 0.0 || Float.is_nan w then
      invalid_arg (who ^ ": weight must be positive and finite");
    if u <> v then begin
      let a, b = if u <= v then (u, v) else (v, u) in
      key.(!k) <- (a * n) + b;
      wt.(!k) <- w;
      incr k
    end
  done;
  let len = !k in
  (* Pass 2: sort by (key, weight); equal keys are parallel edges and
     the lightest sorts first, so the dedup scan keeps it. The result
     is edge ids ordered by (u, v) — exactly the historical [create]
     ordering, so ids are stable across the representation change. *)
  sort_key_weight key wt len;
  let m = ref 0 in
  for i = 0 to len - 1 do
    if i = 0 || key.(i) <> key.(i - 1) then begin
      key.(!m) <- key.(i);
      wt.(!m) <- wt.(i);
      incr m
    end
  done;
  let m = !m in
  let eu = Array.make (max 1 m) 0 in
  let ev = Array.make (max 1 m) 0 in
  let ew = Array.make (max 1 m) 0.0 in
  for id = 0 to m - 1 do
    eu.(id) <- key.(id) / n;
    ev.(id) <- key.(id) mod n;
    ew.(id) <- wt.(id)
  done;
  (* Pass 3: counting sort into the packed incidence columns. Walking
     ids ascending leaves each vertex's slice sorted by edge id. *)
  let off = Array.make (n + 1) 0 in
  for id = 0 to m - 1 do
    off.(eu.(id) + 1) <- off.(eu.(id) + 1) + 1;
    off.(ev.(id) + 1) <- off.(ev.(id) + 1) + 1
  done;
  for v = 1 to n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let adj_eid = Array.make (max 1 (2 * m)) 0 in
  let adj_dst = Array.make (max 1 (2 * m)) 0 in
  let cursor = Array.copy off in
  for id = 0 to m - 1 do
    let u = eu.(id) and v = ev.(id) in
    adj_eid.(cursor.(u)) <- id;
    adj_dst.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    adj_eid.(cursor.(v)) <- id;
    adj_dst.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  { n; m; eu; ev; ew; off; adj_eid; adj_dst; legacy = [||] }

let of_edge_arrays ~n ?len us vs ws =
  let len =
    match len with
    | Some l ->
      if l < 0 || l > Array.length us then
        invalid_arg "Graph.of_edge_arrays: bad len";
      l
    | None -> Array.length us
  in
  if Array.length vs < len || Array.length ws < len then
    invalid_arg "Graph.of_edge_arrays: endpoint/weight arrays shorter than len";
  build_csr ~who:"Graph.of_edge_arrays" ~n us vs ws ~len

let create n edge_list =
  let len = List.length edge_list in
  let us = Array.make (max 1 len) 0 in
  let vs = Array.make (max 1 len) 0 in
  let ws = Array.make (max 1 len) 0.0 in
  List.iteri
    (fun i e ->
      us.(i) <- e.u;
      vs.(i) <- e.v;
      ws.(i) <- e.w)
    edge_list;
  build_csr ~who:"Graph.create" ~n us vs ws ~len

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let n g = g.n
let m g = g.m
let edge g id = { u = g.eu.(id); v = g.ev.(id); w = g.ew.(id) }
let weight g id = g.ew.(id)
let endpoints g id = (g.eu.(id), g.ev.(id))

let other_end g id x =
  if g.eu.(id) = x then g.ev.(id)
  else if g.ev.(id) = x then g.eu.(id)
  else invalid_arg "Graph.other_end: vertex not an endpoint"

let degree g v = g.off.(v + 1) - g.off.(v)

let iter_neighbors g v f =
  let eid = g.adj_eid and dst = g.adj_dst in
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    f eid.(i) dst.(i)
  done

let fold_neighbors g v f acc =
  let eid = g.adj_eid and dst = g.adj_dst in
  let acc = ref acc in
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    acc := f !acc eid.(i) dst.(i)
  done;
  !acc

(* Deprecated tuple-array view, kept for API compatibility. Rows are
   materialized from the CSR columns on first access and memoized per
   vertex, so untouched vertices stay flat. Not for hot paths — use
   {!iter_neighbors} / {!fold_neighbors}. *)
let neighbors g v =
  if Array.length g.legacy = 0 && g.n > 0 then
    g.legacy <- Array.make g.n unbuilt_row;
  if g.n = 0 then [||]
  else begin
    let row = g.legacy.(v) in
    if row != unbuilt_row then row
    else begin
      let lo = g.off.(v) in
      let built =
        Array.init (degree g v) (fun i -> (g.adj_eid.(lo + i), g.adj_dst.(lo + i)))
      in
      g.legacy.(v) <- built;
      built
    end
  end

let iter_edges g f =
  for id = 0 to g.m - 1 do
    f id { u = g.eu.(id); v = g.ev.(id); w = g.ew.(id) }
  done

let fold_edges g f acc =
  let acc = ref acc in
  for id = 0 to g.m - 1 do
    acc := f id { u = g.eu.(id); v = g.ev.(id); w = g.ew.(id) } !acc
  done;
  !acc

let find_edge g u v =
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  let lo = g.off.(u) and hi = g.off.(u + 1) in
  let rec scan i =
    if i >= hi then None
    else if g.adj_dst.(i) = v then Some g.adj_eid.(i)
    else scan (i + 1)
  in
  scan lo

let total_weight g =
  let acc = ref 0.0 in
  for id = 0 to g.m - 1 do
    acc := !acc +. g.ew.(id)
  done;
  !acc

let weight_of_edges g ids = List.fold_left (fun acc id -> acc +. weight g id) 0.0 ids

let subgraph g ids =
  let ids = Array.of_list ids in
  let k = Array.length ids in
  let us = Array.make (max 1 k) 0 in
  let vs = Array.make (max 1 k) 0 in
  let ws = Array.make (max 1 k) 0.0 in
  Array.iteri
    (fun i id ->
      us.(i) <- g.eu.(id);
      vs.(i) <- g.ev.(id);
      ws.(i) <- g.ew.(id))
    ids;
  let sub = build_csr ~who:"Graph.create" ~n:g.n us vs ws ~len:k in
  (* The builder sorts and dedups; rebuild the id mapping by lookup. *)
  let map = Hashtbl.create (max 16 k) in
  Array.iter (fun id -> Hashtbl.replace map (g.eu.(id), g.ev.(id)) id) ids;
  let original_id sub_id = Hashtbl.find map (sub.eu.(sub_id), sub.ev.(sub_id)) in
  (sub, original_id)

let components g =
  let comp = Array.make g.n (-1) in
  let c = ref 0 in
  let stack = Stack.create () in
  for s = 0 to g.n - 1 do
    if comp.(s) < 0 then begin
      Stack.push s stack;
      comp.(s) <- !c;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        for i = g.off.(v) to g.off.(v + 1) - 1 do
          let u = g.adj_dst.(i) in
          if comp.(u) < 0 then begin
            comp.(u) <- !c;
            Stack.push u stack
          end
        done
      done;
      incr c
    end
  done;
  (!c, comp)

let is_connected g =
  if g.n <= 1 then true
  else
    let c, _ = components g in
    c = 1

let bfs_hops g src =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let dv = dist.(v) in
    for i = g.off.(v) to g.off.(v + 1) - 1 do
      let u = g.adj_dst.(i) in
      if dist.(u) < 0 then begin
        dist.(u) <- dv + 1;
        Queue.push u q
      end
    done
  done;
  dist

let hop_diameter g =
  if not (is_connected g) then invalid_arg "Graph.hop_diameter: disconnected";
  (* Exact: BFS from every vertex. Fine at simulation scale. *)
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let dist = bfs_hops g v in
    Array.iter (fun d -> if d > !best then best := d) dist
  done;
  !best

let weight_aspect_ratio g =
  if g.m = 0 then 1.0
  else begin
    let lo = ref infinity and hi = ref 0.0 in
    for id = 0 to g.m - 1 do
      let w = g.ew.(id) in
      if w < !lo then lo := w;
      if w > !hi then hi := w
    done;
    !hi /. !lo
  end

let compare_edges g a b =
  let c = Float.compare g.ew.(a) g.ew.(b) in
  if c <> 0 then c else Int.compare a b

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, aspect=%.3g)" g.n g.m
    (weight_aspect_ratio g)

(* Declared last: the field labels shadow [t]'s, and everything above
   accesses [g.off] / [g.ew] etc. with [t] in scope. *)
type view = {
  off : int array;
  adj_eid : int array;
  adj_dst : int array;
  eu : int array;
  ev : int array;
  ew : float array;
}

let view (g : t) : view =
  {
    off = g.off;
    adj_eid = g.adj_eid;
    adj_dst = g.adj_dst;
    eu = g.eu;
    ev = g.ev;
    ew = g.ew;
  }
