module Graph = Ln_graph.Graph
module Gen = Ln_graph.Gen
module Graph_io = Ln_graph.Graph_io
module Mst_seq = Ln_graph.Mst_seq
module Engine = Ln_congest.Engine
module Fault = Ln_congest.Fault
module Monitor = Ln_congest.Monitor
module Telemetry = Ln_congest.Telemetry
module Bfs = Ln_prim.Bfs
module Broadcast = Ln_prim.Broadcast
module Dist_mst = Ln_mst.Dist_mst
module Slt = Ln_slt.Slt
module Light_spanner = Ln_spanner.Light_spanner
module Artifact = Ln_route.Artifact
module Oracle = Ln_route.Oracle
module Workload = Ln_route.Workload
module Serve = Ln_route.Serve
module Store = Ln_store.Store
module Fleet = Ln_store.Fleet
module Metrics = Ln_obs.Metrics

type step_result = {
  label : string;
  report : Monitor.report;
  outcome : Engine.outcome;
  delivered : float option;
  p99_us : float option;
  hit_rate : float option;
  max_stretch : float option;
}

type check = {
  label : string;
  measured : string;
  value : float option;
  bound : float option;
  pass : bool;
}

type result = {
  scenario : Scenario.t;
  nodes : int;
  edges : int;
  plan : string;
  steps : step_result list;
  rounds : int;
  drops : int;
  retrans : int;
  checks : check list;
  ok : bool;
}

let fail fmt = Printf.ksprintf failwith fmt

(* ------------------------------------------------------------------ *)
(* Compilation. *)

let graph_of (s : Scenario.t) =
  let rng = Random.State.make [| s.seed; 0x5ce |] in
  match s.topology with
  | Er { n; p } -> Gen.erdos_renyi rng ~n ~p ()
  | Geo { n; radius } -> fst (Gen.random_geometric rng ~n ~radius ())
  | Grid { rows; cols } -> Gen.grid rng ~rows ~cols ()
  | Path n -> Gen.path n
  | Clustered { clusters; size; p_in; p_out } ->
    Gen.clustered rng ~clusters ~size ~p_in ~p_out ()
  | Rmat { scale; edge_factor } ->
    (* RMAT draws are generally disconnected; scenarios certify floods
       against the whole network, so stitch the components. *)
    Gen.ensure_connected rng (Gen.rmat rng ~scale ~edge_factor ())
  | File path -> Graph_io.load_graph path
  | Artifact_file path -> (Artifact.load path).Artifact.graph

let plan_of (s : Scenario.t) g =
  let drop_prob, drop_until =
    match
      List.find_map
        (function
          | Scenario.Drop { p; until } ->
            Some (p, Option.value until ~default:max_int)
          | _ -> None)
        s.faults
    with
    | Some d -> d
    | None -> (0.0, max_int)
  in
  let link_failures =
    List.filter_map
      (function
        | Scenario.Link_window { edge; from_; until } ->
          Some { Fault.edge; from_round = from_; until_round = until }
        | _ -> None)
      s.faults
  in
  let crash_windows =
    List.filter_map
      (function
        | Scenario.Crash_window { node; at; recover } ->
          Some { Fault.node; crash_round = at; recover_round = recover }
        | _ -> None)
      s.faults
  in
  Fault.make ~drop_prob ~drop_until ~link_failures ~crash_windows ~graph:g
    ~seed:s.seed ()

let step_kind = function
  | Scenario.Bfs { reliable; _ } -> if reliable then "bfs+arq" else "bfs"
  | Scenario.Broadcast { reliable; _ } ->
    if reliable then "broadcast+arq" else "broadcast"
  | Scenario.Mst -> "mst"
  | Scenario.Serve { tier; _ } -> "serve:" ^ tier

(* Everything that can make a scenario unexecutable is rejected here,
   before any engine run, so a bad scenario fails in one piece instead
   of half-way through its step list. *)
let validate (s : Scenario.t) g =
  let n = Graph.n g in
  List.iteri
    (fun i step ->
      let where = Printf.sprintf "%s: step %d (%s)" s.name (i + 1) (step_kind step) in
      match step with
      | Scenario.Bfs { root; _ } | Scenario.Broadcast { root; _ } ->
        if root < 0 || root >= n then
          fail "%s: root %d out of range (n=%d)" where root n
      | Scenario.Mst -> ()
      | Scenario.Serve { tier; workload; queries; cache; store; capacity; domains; _ }
        ->
        if Oracle.tier_of_string tier = None then
          fail "%s: unknown tier %S (spanner|label|cache)" where tier;
        if Workload.parse workload = None then
          fail "%s: unknown workload %S (uniform|zipf[:S]|local[:R])" where
            workload;
        if queries < 1 then fail "%s: queries must be >= 1" where;
        if cache < 1 then fail "%s: cache must be >= 1" where;
        (match store with
        | None -> ()
        | Some dir ->
          if not (Sys.file_exists dir && Sys.is_directory dir) then
            fail "%s: store %S is not a directory" where dir;
          if capacity < 1 then fail "%s: capacity must be >= 1" where;
          if domains < 1 then fail "%s: domains must be >= 1" where))
    s.steps

(* The serving steps of a generated-topology scenario get a small
   in-memory artifact (spanner + SLT + MST built once, on demand) —
   the same pipeline as [lightnet build-artifact], minus the file. *)
let build_artifact (s : Scenario.t) g =
  let rng = Random.State.make [| s.seed; 0xa27 |] in
  let sp = Light_spanner.build ~rng g ~k:2 ~epsilon:0.25 in
  let slt = Slt.build ~rng g ~rt:0 ~epsilon:0.5 in
  Artifact.make ~graph:g ~slt_root:0
    ~spanner_stretch:sp.Light_spanner.stretch_bound
    ~spanner_edges:sp.Light_spanner.edges ~slt_edges:slt.Slt.edges
    ~mst_edges:(Mst_seq.kruskal g) ()

let delivered_fraction plan n reached =
  let surv = ref 0 and got = ref 0 in
  for v = 0 to n - 1 do
    if Fault.surviving_node plan v then begin
      incr surv;
      if reached v then incr got
    end
  done;
  if !surv = 0 then 1.0 else float_of_int !got /. float_of_int !surv

(* ------------------------------------------------------------------ *)
(* Step execution. *)

let run_step (s : Scenario.t) g plan art idx step =
  let label = Printf.sprintf "%d:%s" (idx + 1) (step_kind step) in
  Telemetry.span ("step/" ^ label) @@ fun () ->
  let under f = Engine.with_faults ~max_rounds:s.max_rounds plan f in
  match step with
  | Scenario.Bfs { root; reliable; retries } ->
    let dist, stats =
      under (fun () ->
          if reliable then Bfs.layers_reliable ~max_retries:retries g ~root
          else Bfs.layers g ~root)
    in
    {
      label;
      report = Monitor.bfs g plan ~root ~dist;
      outcome = stats.Engine.outcome;
      delivered =
        Some (delivered_fraction plan (Graph.n g) (fun v -> dist.(v) >= 0));
      p99_us = None;
      hit_rate = None;
      max_stretch = None;
    }
  | Scenario.Broadcast { root; value; reliable; retries } ->
    let got, stats =
      under (fun () ->
          if reliable then
            Broadcast.flood_reliable ~max_retries:retries g ~root ~value
          else Broadcast.flood g ~root ~value)
    in
    {
      label;
      report = Monitor.broadcast g plan ~root ~value ~got;
      outcome = stats.Engine.outcome;
      delivered =
        Some (delivered_fraction plan (Graph.n g) (fun v -> got.(v) = Some value));
      p99_us = None;
      hit_rate = None;
      max_stretch = None;
    }
  | Scenario.Mst -> (
    let before = Engine.snapshot_totals () in
    try
      let mst = under (fun () -> Dist_mst.run ~root:0 g) in
      let p = Engine.totals_since before in
      {
        label;
        report = Monitor.spanning_forest g plan ~edges:mst.Dist_mst.mst_edges;
        (* Aggregated over the pipeline's runs: any sub-run that hit
           the `Mark cap pushes the total past it. *)
        outcome =
          (if p.Engine.rounds >= s.max_rounds then Engine.Round_limit
           else Engine.Converged);
        delivered = None;
        p99_us = None;
        hit_rate = None;
        max_stretch = None;
      }
    with e ->
      {
        label;
        report =
          { Monitor.verdict = Monitor.Wrong;
            detail = "raised " ^ Printexc.to_string e };
        outcome = Engine.Round_limit;
        delivered = None;
        p99_us = None;
        hit_rate = None;
        max_stretch = None;
      })
  | Scenario.Serve
      { tier; workload; queries; cache; stretch; store = None; _ } ->
    let a = Lazy.force art in
    let tier = Option.get (Oracle.tier_of_string tier) in
    let spec = Option.get (Workload.parse workload) in
    let oracle = Oracle.create ~cache_capacity:cache a in
    let pairs =
      Workload.generate ~seed:s.seed a.Artifact.graph spec ~count:queries
    in
    let outcome = Serve.run oracle ~tier pairs in
    let bound = Option.value stretch ~default:a.Artifact.spanner_stretch in
    let cert = Serve.certify ~sample:256 oracle ~tier ~bound pairs in
    {
      label;
      report = cert.Serve.report;
      outcome = Engine.Converged;
      delivered = None;
      p99_us = Some outcome.Serve.latency.Serve.p99_us;
      hit_rate =
        (match tier with
        | Oracle.Cache -> Some (Serve.hit_rate outcome)
        | _ -> None);
      max_stretch = Some cert.Serve.max_stretch;
    }
  | Scenario.Serve
      {
        tier;
        workload;
        queries;
        cache;
        stretch;
        store = Some dir;
        capacity;
        domains;
        net_skew;
      } ->
    (* The fleet form ignores the topology's artifact: the store is
       the workload. min-hit-rate reads the store's oracle-LRU hit
       rate (whole networks moving in and out of memory), and the
       certificate is the worst over every served network. *)
    let tier = Option.get (Oracle.tier_of_string tier) in
    let spec = Option.get (Workload.parse workload) in
    let st = Store.open_dir ~capacity ~cache_capacity:cache dir in
    let requests = Fleet.workload ~seed:s.seed ~net_skew st spec ~count:queries in
    let outcome = Fleet.run ~domains st ~tier requests in
    let rank = function
      | Monitor.Correct -> 0
      | Monitor.Degraded -> 1
      | Monitor.Wrong -> 2
    in
    let worse a b = if rank b.Monitor.verdict > rank a.Monitor.verdict then b else a in
    let report, max_stretch =
      List.fold_left
        (fun (rep, ms) (n : Fleet.net_outcome) ->
          match Store.oracle st n.Fleet.digest with
          | Error why ->
            ( worse rep
                { Monitor.verdict = Monitor.Wrong;
                  detail = n.Fleet.digest ^ ": " ^ why },
              ms )
          | Ok oracle ->
            let a = Oracle.artifact oracle in
            let pairs =
              Array.to_list requests
              |> List.filter_map (fun (r : Fleet.request) ->
                     if r.Fleet.net = n.Fleet.digest then Some (r.Fleet.u, r.Fleet.v)
                     else None)
              |> Array.of_list
            in
            let bound = Option.value stretch ~default:a.Artifact.spanner_stretch in
            let cert = Serve.certify ~sample:64 oracle ~tier ~bound pairs in
            (worse rep cert.Serve.report, Float.max ms cert.Serve.max_stretch))
        ( {
            Monitor.verdict = Monitor.Correct;
            detail =
              Printf.sprintf "%d network(s) certified" outcome.Fleet.networks;
          },
          1.0 )
        outcome.Fleet.nets
    in
    let report =
      if outcome.Fleet.skipped > 0 && report.Monitor.verdict = Monitor.Correct
      then
        {
          Monitor.verdict = Monitor.Degraded;
          detail =
            Printf.sprintf "%d request(s) skipped (quarantined networks)"
              outcome.Fleet.skipped;
        }
      else report
    in
    {
      label;
      report;
      outcome = Engine.Converged;
      delivered = None;
      p99_us = Some outcome.Fleet.latency.Serve.p99_us;
      hit_rate = Some (Fleet.store_hit_rate outcome);
      max_stretch = Some max_stretch;
    }

(* ------------------------------------------------------------------ *)
(* Judging. *)

let verdict_rank = function
  | Monitor.Correct -> 0
  | Monitor.Degraded -> 1
  | Monitor.Wrong -> 2

let le_check label v bound measured =
  { label; measured; value = Some v; bound = Some bound; pass = v <= bound }

let ge_check label v bound measured =
  { label; measured; value = Some v; bound = Some bound; pass = v >= bound }

let missing label why =
  { label; measured = why; value = None; bound = None; pass = false }

let max_of = List.fold_left max neg_infinity
let min_of = List.fold_left min infinity

let judge (s : Scenario.t) steps ~rounds ~retrans =
  let stuck =
    List.filter_map
      (fun r -> if r.outcome = Engine.Round_limit then Some r.label else None)
      steps
  in
  let convergence =
    {
      label = "steps converge";
      measured =
        (if stuck = [] then "all converged"
         else "round-limit in " ^ String.concat ", " stuck);
      value = None;
      bound = None;
      pass = stuck = [];
    }
  in
  let worst =
    List.fold_left
      (fun w r -> max w (verdict_rank r.report.Monitor.verdict))
      0 steps
  in
  let worst_name =
    Monitor.verdict_name
      (if worst = 0 then Monitor.Correct
       else if worst = 1 then Monitor.Degraded
       else Monitor.Wrong)
  in
  let of_slo slo =
    let label = "assert " ^ Scenario.describe_slo slo in
    match slo with
    | Scenario.Verdict floor ->
      let limit = match floor with Scenario.Correct_only -> 0 | Scenario.Degraded_ok -> 1 in
      {
        label;
        measured = "worst verdict " ^ worst_name;
        value = None;
        bound = None;
        pass = worst <= limit;
      }
    | Scenario.Rounds n ->
      le_check label (float_of_int rounds) (float_of_int n)
        (Printf.sprintf "%d <= %d" rounds n)
    | Scenario.Max_retrans n ->
      le_check label (float_of_int retrans) (float_of_int n)
        (Printf.sprintf "%d <= %d" retrans n)
    | Scenario.Max_stretch b -> (
      match List.filter_map (fun r -> r.max_stretch) steps with
      | [] -> missing label "no serve step"
      | l ->
        let v = max_of l in
        le_check label v b (Printf.sprintf "%.3f <= %g" v b))
    | Scenario.P99_us b -> (
      match List.filter_map (fun r -> r.p99_us) steps with
      | [] -> missing label "no serve step"
      | l ->
        let v = max_of l in
        le_check label v b (Printf.sprintf "%.1f <= %g" v b))
    | Scenario.Min_delivered b -> (
      match List.filter_map (fun r -> r.delivered) steps with
      | [] -> missing label "no flood step"
      | l ->
        let v = min_of l in
        ge_check label v b (Printf.sprintf "%.3f >= %g" v b))
    | Scenario.Min_hit_rate b -> (
      match List.filter_map (fun r -> r.hit_rate) steps with
      | [] -> missing label "no cache-tier serve step"
      | l ->
        let v = min_of l in
        ge_check label v b (Printf.sprintf "%.3f >= %g" v b))
  in
  convergence :: List.map of_slo s.slos

(* ------------------------------------------------------------------ *)
(* Registry gauges: a fleet scraping a long scenario sweep sees the
   latest verdict and how much SLO headroom is left. Margins are
   signed slack in the bound's own unit (positive = passing). p99
   margins are wall-clock-derived, hence registered unstable so they
   stay out of deterministic JSON snapshots. *)

let slo_kind = function
  | Scenario.Verdict _ -> "verdict"
  | Scenario.Rounds _ -> "rounds"
  | Scenario.Max_retrans _ -> "max_retrans"
  | Scenario.Max_stretch _ -> "max_stretch"
  | Scenario.P99_us _ -> "p99_us"
  | Scenario.Min_delivered _ -> "min_delivered"
  | Scenario.Min_hit_rate _ -> "min_hit_rate"

let record_metrics (r : result) =
  if Metrics.on () then begin
    let labels = [ ("scenario", r.scenario.Scenario.name) ] in
    Metrics.set
      (Metrics.gauge ~help:"1 if every check of the last run passed."
         ~labels "lightnet_scenario_ok")
      (if r.ok then 1.0 else 0.0);
    Metrics.add
      (Metrics.counter ~help:"Scenario checks evaluated." ~labels
         "lightnet_scenario_checks_total")
      (List.length r.checks);
    Metrics.add
      (Metrics.counter ~help:"Scenario checks failed." ~labels
         "lightnet_scenario_check_failures_total")
      (List.length (List.filter (fun c -> not c.pass) r.checks));
    (* [judge] emits the convergence check first, then one check per
       SLO in order; walk the two lists in lockstep for the margins. *)
    match r.checks with
    | [] -> ()
    | _convergence :: slo_checks ->
      List.iter2
        (fun slo c ->
          match (c.value, c.bound) with
          | Some v, Some b ->
            let margin, stable =
              match slo with
              | Scenario.Min_delivered _ | Scenario.Min_hit_rate _ ->
                (v -. b, true)
              | Scenario.P99_us _ -> (b -. v, false)
              | _ -> (b -. v, true)
            in
            Metrics.set
              (Metrics.gauge ~stable
                 ~help:"Signed SLO slack of the last run (positive = passing)."
                 ~labels:(("slo", slo_kind slo) :: labels)
                 "lightnet_scenario_slo_margin")
              margin
          | _ -> ())
        r.scenario.Scenario.slos slo_checks
  end

let run (s : Scenario.t) =
  Telemetry.span ("scenario/" ^ s.name) @@ fun () ->
  let source =
    match s.topology with
    | Scenario.Artifact_file path -> `Artifact (Artifact.load path)
    | _ -> `Graph (graph_of s)
  in
  let g =
    match source with `Artifact a -> a.Artifact.graph | `Graph g -> g
  in
  validate s g;
  let plan = plan_of s g in
  let art =
    lazy
      (match source with `Artifact a -> a | `Graph g -> build_artifact s g)
  in
  let before = Engine.snapshot_totals () in
  let steps = List.mapi (run_step s g plan art) s.steps in
  let p = Engine.totals_since before in
  let checks =
    judge s steps ~rounds:p.Engine.rounds ~retrans:p.Engine.retransmissions
  in
  let r =
    {
      scenario = s;
      nodes = Graph.n g;
      edges = Graph.m g;
      plan = Fault.describe plan;
      steps;
      rounds = p.Engine.rounds;
      drops = p.Engine.dropped_messages;
      retrans = p.Engine.retransmissions;
      checks;
      ok = List.for_all (fun c -> c.pass) checks;
    }
  in
  record_metrics r;
  r

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let pp ppf r =
  let open Format in
  fprintf ppf "scenario %s: seed %d, %d nodes, %d edges@." r.scenario.Scenario.name
    r.scenario.Scenario.seed r.nodes r.edges;
  fprintf ppf "  plan: %s@." r.plan;
  List.iter
    (fun (st : step_result) ->
      fprintf ppf "  step %-18s %-8s %s%s@." st.label
        (Monitor.verdict_name st.report.Monitor.verdict)
        st.report.Monitor.detail
        (match st.delivered with
        | Some f -> sprintf " (delivered %.1f%%)" (100.0 *. f)
        | None -> ""))
    r.steps;
  fprintf ppf "  %-36s %-34s %s@." "CHECK" "MEASURED" "RESULT";
  List.iter
    (fun c ->
      fprintf ppf "  %-36s %-34s %s@." c.label c.measured
        (if c.pass then "pass" else "FAIL"))
    r.checks;
  fprintf ppf "  %s: rounds %d, drops %d, retransmissions %d@."
    (if r.ok then "PASS" else "FAIL")
    r.rounds r.drops r.retrans

let json r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let fopt = function
    | None -> "null"
    | Some f -> Printf.sprintf "%.6g" f
  in
  add "{\"name\":%S,\"seed\":%d,\"ok\":%b,\"nodes\":%d,\"edges\":%d,"
    r.scenario.Scenario.name r.scenario.Scenario.seed r.ok r.nodes r.edges;
  add "\"rounds\":%d,\"drops\":%d,\"retransmissions\":%d,\"plan\":%S," r.rounds
    r.drops r.retrans r.plan;
  add "\"steps\":[%s],"
    (String.concat ","
       (List.map
          (fun (st : step_result) ->
            Printf.sprintf "{\"label\":%S,\"verdict\":%S,\"converged\":%b}"
              st.label
              (Monitor.verdict_name st.report.Monitor.verdict)
              (st.outcome = Engine.Converged))
          r.steps));
  add "\"checks\":[%s]}"
    (String.concat ","
       (List.map
          (fun c ->
            Printf.sprintf
              "{\"check\":%S,\"measured\":%S,\"value\":%s,\"bound\":%s,\"pass\":%b}"
              c.label c.measured (fopt c.value) (fopt c.bound) c.pass)
          r.checks));
  Buffer.contents b
