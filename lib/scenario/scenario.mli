(** Declarative chaos scenarios.

    A scenario is one value: a topology, a workload mix, a fault
    schedule and a set of SLO assertions — parsed from a small
    line-oriented text format ([.scn] files, grammar in DESIGN.md
    "Scenario layer"). {!Runner.run} compiles it onto the existing
    [Engine]/[Fault]/[Reliable]/[Monitor]/[Telemetry]/[Serve] stack
    and judges the execution with [Monitor]-style certifiers: the
    declared assertions are the intended behaviour, the certified run
    is the executable artifact, and the per-assertion table is the
    refinement check (in the spirit of Cocoon's refinement checking).

    Everything is deterministic by [seed]: the topology, the fault
    coins, the workloads. A committed [.scn] file replays bit-for-bit.

    Example:
    {v
    name rolling-churn
    seed 11
    topology er n=64 p=0.12
    run broadcast root=0 value=7 reliable retries=64
    fault drop p=0.05 until=40
    fault crash node=5 at=2 recover=12
    fault crash node=9 at=6 recover=16
    assert verdict correct
    assert min-delivered 1.0
    assert rounds 4000
    v} *)

type topology =
  | Er of { n : int; p : float }  (** connected Erdős–Rényi *)
  | Geo of { n : int; radius : float }  (** connected random geometric *)
  | Grid of { rows : int; cols : int }
  | Path of int
  | Clustered of { clusters : int; size : int; p_in : float; p_out : float }
  | Rmat of { scale : int; edge_factor : int }  (** Graph500 RMAT, as drawn *)
  | File of string  (** DIMACS-like graph file *)
  | Artifact_file of string  (** route artifact: graph + built oracle *)

type step =
  | Bfs of { root : int; reliable : bool; retries : int }
  | Broadcast of { root : int; value : int; reliable : bool; retries : int }
  | Mst  (** the full distributed-MST pipeline (no ARQ wrapper) *)
  | Serve of {
      tier : string;  (** spanner | label | cache *)
      workload : string;  (** {!Ln_route.Workload.parse} spec *)
      queries : int;
      cache : int;
      stretch : float option;
          (** certification bound; [None] = the artifact's promise *)
      store : string option;
          (** [Some dir]: the fleet form — serve every artifact in the
              store at [dir] through {!Ln_store.Fleet} instead of the
              topology's single artifact. The [min-hit-rate] SLO then
              reads the store's oracle-LRU hit rate. *)
      capacity : int;  (** store form: loaded-oracle LRU capacity *)
      domains : int;  (** store form: fleet domain count *)
      net_skew : float;  (** store form: Zipf over networks, 0 = uniform *)
    }

type fault_spec =
  | Drop of { p : float; until : int option }
  | Link_window of { edge : int; from_ : int; until : int option }
  | Crash_window of { node : int; at : int; recover : int option }

(** The worst verdict the scenario tolerates: [Correct_only] fails on
    Degraded, [Degraded_ok] fails only on Wrong. *)
type verdict_floor = Correct_only | Degraded_ok

type slo =
  | Verdict of verdict_floor
  | Rounds of int  (** total engine rounds across all steps, at most *)
  | Max_stretch of float  (** certified serving stretch, at most *)
  | P99_us of float  (** worst per-step p99 query latency, at most *)
  | Min_delivered of float
      (** fraction of surviving nodes reached, per flood/BFS step, at
          least *)
  | Max_retrans of int  (** total ARQ retransmissions, at most *)
  | Min_hit_rate of float  (** worst serve-step cache hit rate, at least *)

type t = {
  name : string;
  seed : int;
  topology : topology;
  steps : step list;
  faults : fault_spec list;
  slos : slo list;
  max_rounds : int;  (** per-engine-run cap, marked (not raised) when hit *)
}

val default_max_rounds : int

(** [parse ?name text] parses the text format. Errors carry
    ["name:line: message"]. *)
val parse : ?name:string -> string -> (t, string) result

(** [load path] parses a [.scn] file; the scenario's default name is
    the file's basename without extension.
    @raise Failure on unreadable file or parse error. *)
val load : string -> t

(** Human label for one assertion, e.g. ["rounds <= 400"]; also the
    canonical [assert] line body. *)
val describe_slo : slo -> string

(** Canonical text of the scenario; [parse] of the output yields the
    same value (pinned by test). *)
val to_text : t -> string

val pp : Format.formatter -> t -> unit
