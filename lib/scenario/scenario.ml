type topology =
  | Er of { n : int; p : float }
  | Geo of { n : int; radius : float }
  | Grid of { rows : int; cols : int }
  | Path of int
  | Clustered of { clusters : int; size : int; p_in : float; p_out : float }
  | Rmat of { scale : int; edge_factor : int }
  | File of string
  | Artifact_file of string

type step =
  | Bfs of { root : int; reliable : bool; retries : int }
  | Broadcast of { root : int; value : int; reliable : bool; retries : int }
  | Mst
  | Serve of {
      tier : string;
      workload : string;
      queries : int;
      cache : int;
      stretch : float option;
      store : string option;
      capacity : int;
      domains : int;
      net_skew : float;
    }

type fault_spec =
  | Drop of { p : float; until : int option }
  | Link_window of { edge : int; from_ : int; until : int option }
  | Crash_window of { node : int; at : int; recover : int option }

type verdict_floor = Correct_only | Degraded_ok

type slo =
  | Verdict of verdict_floor
  | Rounds of int
  | Max_stretch of float
  | P99_us of float
  | Min_delivered of float
  | Max_retrans of int
  | Min_hit_rate of float

type t = {
  name : string;
  seed : int;
  topology : topology;
  steps : step list;
  faults : fault_spec list;
  slos : slo list;
  max_rounds : int;
}

let default_max_rounds = 200_000

(* ------------------------------------------------------------------ *)
(* Parser. Line-oriented: [keyword arg...] where args are [key=value]
   pairs or bare flags; [#] starts a comment. Unknown keywords and
   unknown argument keys are errors — a typo in a declarative fault
   schedule must not silently weaken the scenario. *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let tokens line =
  String.map (fun c -> if c = '\t' then ' ' else c) line
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let kv tok =
  match String.index_opt tok '=' with
  | Some i ->
    ( String.sub tok 0 i,
      Some (String.sub tok (i + 1) (String.length tok - i - 1)) )
  | None -> (tok, None)

(* Parse [args] into a checked field list: every key must be in
   [allowed] (flags are keys with no [=]). *)
let fields_of ~what ~allowed args =
  let fields = List.map kv args in
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        bad "unknown %s argument %S (allowed: %s)" what k
          (String.concat ", " allowed))
    fields;
  List.iteri
    (fun i (k, _) ->
      if List.exists (fun (k', _) -> k' = k) (List.filteri (fun j _ -> j < i) fields)
      then bad "duplicate %s argument %S" what k)
    fields;
  fields

let value fields k =
  match List.assoc_opt k fields with
  | Some (Some v) -> Some v
  | Some None -> bad "argument %S needs a value (%s=...)" k k
  | None -> None

let flag fields k =
  match List.assoc_opt k fields with
  | Some None -> true
  | Some (Some _) -> bad "%S is a flag and takes no value" k
  | None -> false

let to_int k v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> bad "%s expects an integer, got %S" k v

let to_float k v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> bad "%s expects a number, got %S" k v

let int_opt fields k = Option.map (to_int k) (value fields k)
let float_opt fields k = Option.map (to_float k) (value fields k)

let int_def fields k d = Option.value (int_opt fields k) ~default:d
let float_def fields k d = Option.value (float_opt fields k) ~default:d

let req what fields k conv =
  match value fields k with
  | Some v -> conv k v
  | None -> bad "%s requires %s=..." what k

let parse_topology = function
  | [] -> bad "topology requires a kind (er|geo|grid|path|clustered|rmat|file|artifact)"
  | "file" :: [ path ] -> File path
  | "artifact" :: [ path ] -> Artifact_file path
  | ("file" | "artifact") :: _ -> bad "topology file/artifact takes exactly one path"
  | kind :: args -> (
    match kind with
    | "er" ->
      let f = fields_of ~what:"topology er" ~allowed:[ "n"; "p" ] args in
      let n = req "topology er" f "n" to_int in
      Er { n; p = float_def f "p" (8.0 /. float_of_int (max n 1)) }
    | "geo" ->
      let f = fields_of ~what:"topology geo" ~allowed:[ "n"; "radius" ] args in
      let n = req "topology geo" f "n" to_int in
      Geo
        {
          n;
          radius = float_def f "radius" (2.0 /. Float.sqrt (float_of_int (max n 1)));
        }
    | "grid" ->
      let f = fields_of ~what:"topology grid" ~allowed:[ "rows"; "cols" ] args in
      Grid
        {
          rows = req "topology grid" f "rows" to_int;
          cols = req "topology grid" f "cols" to_int;
        }
    | "path" ->
      let f = fields_of ~what:"topology path" ~allowed:[ "n" ] args in
      Path (req "topology path" f "n" to_int)
    | "clustered" ->
      let f =
        fields_of ~what:"topology clustered"
          ~allowed:[ "clusters"; "size"; "p-in"; "p-out" ]
          args
      in
      Clustered
        {
          clusters = req "topology clustered" f "clusters" to_int;
          size = req "topology clustered" f "size" to_int;
          p_in = float_def f "p-in" 0.3;
          p_out = float_def f "p-out" 0.02;
        }
    | "rmat" ->
      let f =
        fields_of ~what:"topology rmat" ~allowed:[ "scale"; "edge-factor" ] args
      in
      Rmat
        {
          scale = req "topology rmat" f "scale" to_int;
          edge_factor = int_def f "edge-factor" 8;
        }
    | k -> bad "unknown topology %S (er|geo|grid|path|clustered|rmat|file|artifact)" k)

let parse_step = function
  | [] -> bad "run requires a step (bfs|broadcast|mst|serve)"
  | kind :: args -> (
    match kind with
    | "bfs" ->
      let f =
        fields_of ~what:"run bfs" ~allowed:[ "root"; "reliable"; "retries" ] args
      in
      Bfs
        {
          root = int_def f "root" 0;
          reliable = flag f "reliable";
          retries = int_def f "retries" 32;
        }
    | "broadcast" ->
      let f =
        fields_of ~what:"run broadcast"
          ~allowed:[ "root"; "value"; "reliable"; "retries" ]
          args
      in
      Broadcast
        {
          root = int_def f "root" 0;
          value = int_def f "value" 42;
          reliable = flag f "reliable";
          retries = int_def f "retries" 32;
        }
    | "mst" ->
      let _ = fields_of ~what:"run mst" ~allowed:[] args in
      Mst
    | "serve" ->
      let f =
        fields_of ~what:"run serve"
          ~allowed:
            [
              "tier"; "workload"; "queries"; "cache"; "stretch"; "store";
              "capacity"; "domains"; "net-skew";
            ]
          args
      in
      let store = value f "store" in
      (* The fleet knobs only mean something against a store of many
         networks; on the single-artifact form they would silently do
         nothing, which this grammar never allows. *)
      if store = None then
        List.iter
          (fun k ->
            if List.mem_assoc k f then
              bad "run serve argument %S needs the store form (store=DIR)" k)
          [ "capacity"; "domains"; "net-skew" ];
      Serve
        {
          tier = Option.value (value f "tier") ~default:"cache";
          workload = Option.value (value f "workload") ~default:"zipf";
          queries = int_def f "queries" 1000;
          cache = int_def f "cache" 64;
          stretch = float_opt f "stretch";
          store;
          capacity = int_def f "capacity" 4;
          domains = int_def f "domains" 1;
          net_skew = float_def f "net-skew" 1.1;
        }
    | k -> bad "unknown step %S (bfs|broadcast|mst|serve)" k)

let parse_fault = function
  | [] -> bad "fault requires a kind (drop|link|crash)"
  | kind :: args -> (
    match kind with
    | "drop" ->
      let f = fields_of ~what:"fault drop" ~allowed:[ "p"; "until" ] args in
      Drop { p = req "fault drop" f "p" to_float; until = int_opt f "until" }
    | "link" ->
      let f =
        fields_of ~what:"fault link" ~allowed:[ "edge"; "from"; "until" ] args
      in
      Link_window
        {
          edge = req "fault link" f "edge" to_int;
          from_ = int_def f "from" 0;
          until = int_opt f "until";
        }
    | "crash" ->
      let f =
        fields_of ~what:"fault crash" ~allowed:[ "node"; "at"; "recover" ] args
      in
      Crash_window
        {
          node = req "fault crash" f "node" to_int;
          at = int_def f "at" 0;
          recover = int_opt f "recover";
        }
    | k -> bad "unknown fault %S (drop|link|crash)" k)

let parse_slo = function
  | [ "verdict"; "correct" ] -> Verdict Correct_only
  | [ "verdict"; "degraded" ] -> Verdict Degraded_ok
  | [ "verdict"; v ] -> bad "assert verdict expects correct|degraded, got %S" v
  | [ "rounds"; v ] -> Rounds (to_int "rounds" v)
  | [ "max-stretch"; v ] -> Max_stretch (to_float "max-stretch" v)
  | [ "p99-us"; v ] -> P99_us (to_float "p99-us" v)
  | [ "min-delivered"; v ] -> Min_delivered (to_float "min-delivered" v)
  | [ "max-retrans"; v ] -> Max_retrans (to_int "max-retrans" v)
  | [ "min-hit-rate"; v ] -> Min_hit_rate (to_float "min-hit-rate" v)
  | w :: _ :: _ | [ w ] ->
    bad
      "unknown assertion %S (verdict|rounds|max-stretch|p99-us|min-delivered|max-retrans|min-hit-rate)"
      w
  | [] -> bad "assert requires an assertion"

let parse ?(name = "scenario") text =
  let name = ref name in
  let seed = ref 0 in
  let max_rounds = ref default_max_rounds in
  let topology = ref None in
  let steps = ref [] in
  let faults = ref [] in
  let slos = ref [] in
  let err = ref None in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      if !err = None then
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        match tokens line with
        | [] -> ()
        | key :: rest -> (
          try
            match (key, rest) with
            | "name", [ v ] -> name := v
            | "name", _ -> bad "name takes exactly one word"
            | "seed", [ v ] -> seed := to_int "seed" v
            | "seed", _ -> bad "seed takes exactly one integer"
            | "max-rounds", [ v ] -> max_rounds := to_int "max-rounds" v
            | "max-rounds", _ -> bad "max-rounds takes exactly one integer"
            | "topology", rest ->
              if !topology <> None then bad "duplicate topology line";
              topology := Some (parse_topology rest)
            | "run", rest -> steps := parse_step rest :: !steps
            | "fault", rest -> faults := parse_fault rest :: !faults
            | "assert", rest -> slos := parse_slo rest :: !slos
            | k, _ ->
              bad "unknown keyword %S (name|seed|max-rounds|topology|run|fault|assert)" k
          with Bad m -> err := Some (Printf.sprintf "%s:%d: %s" !name (i + 1) m)))
    lines;
  match !err with
  | Some e -> Error e
  | None -> (
    match !topology with
    | None -> Error (Printf.sprintf "%s: missing topology line" !name)
    | Some topology ->
      if !steps = [] then Error (Printf.sprintf "%s: no run steps" !name)
      else if
        List.length
          (List.filter (function Drop _ -> true | _ -> false) !faults)
        > 1
      then Error (Printf.sprintf "%s: more than one fault drop line" !name)
      else
        Ok
          {
            name = !name;
            seed = !seed;
            topology;
            steps = List.rev !steps;
            faults = List.rev !faults;
            slos = List.rev !slos;
            max_rounds = !max_rounds;
          })

let load path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> failwith ("Scenario.load: " ^ m)
  in
  let base = Filename.remove_extension (Filename.basename path) in
  match parse ~name:base text with Ok t -> t | Error e -> failwith e

(* ------------------------------------------------------------------ *)
(* Canonical text. [parse (to_text t) = t]: every default the parser
   fills in is printed back concretely. *)

let describe_slo = function
  | Verdict Correct_only -> "verdict correct"
  | Verdict Degraded_ok -> "verdict degraded"
  | Rounds n -> Printf.sprintf "rounds %d" n
  | Max_stretch s -> Printf.sprintf "max-stretch %g" s
  | P99_us s -> Printf.sprintf "p99-us %g" s
  | Min_delivered f -> Printf.sprintf "min-delivered %g" f
  | Max_retrans n -> Printf.sprintf "max-retrans %d" n
  | Min_hit_rate f -> Printf.sprintf "min-hit-rate %g" f

let topology_text = function
  | Er { n; p } -> Printf.sprintf "topology er n=%d p=%g" n p
  | Geo { n; radius } -> Printf.sprintf "topology geo n=%d radius=%g" n radius
  | Grid { rows; cols } -> Printf.sprintf "topology grid rows=%d cols=%d" rows cols
  | Path n -> Printf.sprintf "topology path n=%d" n
  | Clustered { clusters; size; p_in; p_out } ->
    Printf.sprintf "topology clustered clusters=%d size=%d p-in=%g p-out=%g"
      clusters size p_in p_out
  | Rmat { scale; edge_factor } ->
    Printf.sprintf "topology rmat scale=%d edge-factor=%d" scale edge_factor
  | File p -> "topology file " ^ p
  | Artifact_file p -> "topology artifact " ^ p

let step_text = function
  | Bfs { root; reliable; retries } ->
    Printf.sprintf "run bfs root=%d%s" root
      (if reliable then Printf.sprintf " reliable retries=%d" retries else "")
  | Broadcast { root; value; reliable; retries } ->
    Printf.sprintf "run broadcast root=%d value=%d%s" root value
      (if reliable then Printf.sprintf " reliable retries=%d" retries else "")
  | Mst -> "run mst"
  | Serve { tier; workload; queries; cache; stretch; store; capacity; domains; net_skew }
    ->
    Printf.sprintf "run serve%s tier=%s workload=%s queries=%d cache=%d%s%s"
      (match store with
      | None -> ""
      | Some d -> Printf.sprintf " store=%s" d)
      tier workload queries cache
      (match store with
      | None -> ""
      | Some _ ->
        Printf.sprintf " capacity=%d domains=%d net-skew=%g" capacity domains
          net_skew)
      (match stretch with
      | None -> ""
      | Some s -> Printf.sprintf " stretch=%g" s)

let fault_text = function
  | Drop { p; until } ->
    Printf.sprintf "fault drop p=%g%s" p
      (match until with None -> "" | Some u -> Printf.sprintf " until=%d" u)
  | Link_window { edge; from_; until } ->
    Printf.sprintf "fault link edge=%d from=%d%s" edge from_
      (match until with None -> "" | Some u -> Printf.sprintf " until=%d" u)
  | Crash_window { node; at; recover } ->
    Printf.sprintf "fault crash node=%d at=%d%s" node at
      (match recover with None -> "" | Some r -> Printf.sprintf " recover=%d" r)

let to_text t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "name %s" t.name;
  line "seed %d" t.seed;
  if t.max_rounds <> default_max_rounds then line "max-rounds %d" t.max_rounds;
  line "%s" (topology_text t.topology);
  List.iter (fun s -> line "%s" (step_text s)) t.steps;
  List.iter (fun f -> line "%s" (fault_text f)) t.faults;
  List.iter (fun s -> line "assert %s" (describe_slo s)) t.slos;
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_text t)
