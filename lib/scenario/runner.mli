(** Scenario execution: compile a {!Scenario.t} onto the engine stack,
    run it, certify it, judge the SLOs.

    Compilation is mechanical: the topology becomes a graph (seeded by
    [scenario.seed]), the fault lines become one validated
    {!Ln_congest.Fault.plan} (range-checked against the graph), each
    [run] step becomes an engine execution under
    {!Ln_congest.Engine.with_faults} with the scenario's round cap, and
    each step's output is certified by the matching
    {!Ln_congest.Monitor} / {!Ln_route.Serve} certifier. Round-indexed
    faults (crash and link windows, [drop until]) are interpreted
    relative to each engine run: a multi-run step such as [mst] sees
    the schedule re-applied per sub-run — deterministically, like
    everything else here.

    The judgement is the refinement check: the scenario's [assert]
    lines are the specification, the certified execution is the
    implementation, and {!result.checks} reports, per assertion, the
    measured value against the declared bound. [serve] steps measure
    wall-clock latency, so [p99-us] assertions need machine-generous
    bounds; every other assertion is deterministic in the seed. *)

type step_result = {
  label : string;  (** e.g. ["2:broadcast+arq"] *)
  report : Ln_congest.Monitor.report;
  outcome : Ln_congest.Engine.outcome;
  delivered : float option;
      (** fraction of surviving nodes reached (bfs/broadcast) *)
  p99_us : float option;  (** serve steps *)
  hit_rate : float option;  (** cache-tier serve steps *)
  max_stretch : float option;  (** serve steps: certified max stretch *)
}

(** One judged assertion. The implicit first check, ["steps converge"],
    fails if any step hit the round cap. A numeric check carries its
    measured [value] and declared [bound] (the SLO margin); an
    assertion that cannot be measured (e.g. [min-hit-rate] with no
    cache-tier serve step) fails with an explanatory [measured]. *)
type check = {
  label : string;
  measured : string;
  value : float option;
  bound : float option;
  pass : bool;
}

type result = {
  scenario : Scenario.t;
  nodes : int;
  edges : int;
  plan : string;  (** [Fault.describe] of the compiled plan *)
  steps : step_result list;
  rounds : int;  (** engine rounds, summed over all steps *)
  drops : int;  (** fault-dropped messages *)
  retrans : int;  (** ARQ retransmissions *)
  checks : check list;
  ok : bool;  (** every check passed *)
}

(** The scenario's network, exactly as {!run} builds it. *)
val graph_of : Scenario.t -> Ln_graph.Graph.t

(** Execute and judge. Deterministic in [scenario.seed] (except the
    wall-clock latency fields). Each step runs inside a
    [Telemetry.span], so a [--trace] of a scenario run attributes
    rounds per step.
    @raise Failure on an unexecutable scenario (root out of range,
    unknown tier/workload, unreadable file) and [Invalid_argument] on
    a fault schedule the plan validator rejects. *)
val run : Scenario.t -> result

(** The per-assertion table the CLI prints. *)
val pp : Format.formatter -> result -> unit

(** One JSON object (verdicts, rounds, drops, retransmissions, and
    per-check SLO margins) — aggregated by [make scenarios] into
    BENCH_scenarios.json. *)
val json : result -> string
