module Metrics = Ln_obs.Metrics

type 'm envelope = { ack : int; data : (int * 'm) option }

let rto = 2
let word_overhead = 2

(* Registry counters. These fire inside [step], which runs on worker
   domains under [run_par] — exactly the case the registry's
   per-domain shards exist for: the increments land in each worker's
   own shard and sum deterministically at snapshot time, mirroring how
   [Engine.count_retransmission] attributes into per-domain cells. *)
let m_retrans =
  Metrics.counter
    ~help:"Stop-and-wait ARQ retransmissions (duplicate data envelopes)."
    "lightnet_reliable_retransmissions_total"

let m_gave_up =
  Metrics.counter
    ~help:"Payloads abandoned on links that exhausted their retries."
    "lightnet_reliable_gave_up_total"

(* Per-incident-link connection state. Outgoing direction: [next_seq],
   [inflight] (at most one unacknowledged payload — stop-and-wait),
   [age] (rounds since it was last sent), [retries], and a two-list
   FIFO of payloads waiting behind it. Incoming direction: [expected],
   the next sequence number we will accept (= our cumulative ack).
   [dead] marks a link that exhausted its retries. *)
type 'm link = {
  next_seq : int;
  q_front : 'm list;
  q_back : 'm list;
  inflight : (int * 'm) option;
  age : int;
  retries : int;
  expected : int;
  dead : bool;
}

type ('s, 'm) state = {
  inner : 's;
  inner_active : bool;
  links : 'm link array;
  gave_up : int;
}

let project st = st.inner
let gave_up st = st.gave_up

let fresh_link =
  {
    next_seq = 0;
    q_front = [];
    q_back = [];
    inflight = None;
    age = 0;
    retries = 0;
    expected = 0;
    dead = false;
  }

let enqueue l m = { l with q_back = m :: l.q_back }

let dequeue l =
  match l.q_front with
  | m :: rest -> Some (m, { l with q_front = rest })
  | [] -> (
    match List.rev l.q_back with
    | [] -> None
    | m :: rest -> Some (m, { l with q_front = rest; q_back = [] }))

let pending l = 1 + List.length l.q_front + List.length l.q_back

(* One round of the outgoing half of a link, run after receipts have
   been processed: resend a timed-out inflight payload, promote the
   next queued payload onto an idle link, or just carry the ack the
   incoming half asked for. Returns the new link, the envelope to send
   (if any) and the number of payloads abandoned. *)
let advance ~max_retries ~must_ack l =
  let ack_only () =
    if must_ack then Some { ack = l.expected; data = None } else None
  in
  if l.dead then (l, ack_only (), 0)
  else
    match l.inflight with
    | Some (s, m) ->
      let age = l.age + 1 in
      if age < rto then ({ l with age }, ack_only (), 0)
      else if l.retries >= max_retries then begin
        if Metrics.on () then Metrics.add m_gave_up (pending l);
        ( {
            l with
            dead = true;
            inflight = None;
            q_front = [];
            q_back = [];
            age = 0;
          },
          ack_only (),
          pending l )
      end
      else begin
        Engine.count_retransmission ();
        if Metrics.on () then Metrics.incr m_retrans;
        ( { l with age = 0; retries = l.retries + 1 },
          Some { ack = l.expected; data = Some (s, m) },
          0 )
      end
    | None -> (
      match dequeue l with
      | None -> (l, ack_only (), 0)
      | Some (m, l') ->
        let s = l'.next_seq in
        ( {
            l' with
            next_seq = s + 1;
            inflight = Some (s, m);
            age = 0;
            retries = 0;
          },
          Some { ack = l'.expected; data = Some (s, m) },
          0 ))

let link_busy l = (not l.dead) && (l.inflight <> None || dequeue l <> None)

let link_index (ctx : Engine.ctx) edge =
  let deg = Engine.ctx_degree ctx in
  let rec go i =
    if i >= deg then invalid_arg "Reliable: message on unknown edge"
    else if Engine.ctx_edge ctx i = edge then i
    else go (i + 1)
  in
  go 0

let lift ?(max_retries = 32) (p : ('s, 'm) Engine.program) :
    (('s, 'm) state, 'm envelope) Engine.program =
  let words env =
    word_overhead
    + (match env.data with Some (_, m) -> p.words m | None -> 0)
  in
  let init (ctx : Engine.ctx) =
    let inner0, sends0 = p.init ctx in
    let links = Array.make (Engine.ctx_degree ctx) fresh_link in
    List.iter
      (fun ({ via; msg } : 'm Engine.send) ->
        let i = link_index ctx via in
        links.(i) <- enqueue links.(i) msg)
      sends0;
    let outs = ref [] in
    for i = Array.length links - 1 downto 0 do
      let l', env, _ = advance ~max_retries ~must_ack:false links.(i) in
      links.(i) <- l';
      match env with
      | Some e ->
        outs := ({ via = Engine.ctx_edge ctx i; msg = e } : _ Engine.send) :: !outs
      | None -> ()
    done;
    ({ inner = inner0; inner_active = true; links; gave_up = 0 }, !outs)
  in
  let step (ctx : Engine.ctx) ~round st (received : _ Engine.received list) =
    let links = Array.copy st.links in
    let must_ack = Array.make (Array.length links) false in
    (* Receive phase: process acks, accept in-order payloads. *)
    let deliveries = ref [] in
    List.iter
      (fun (r : 'm envelope Engine.received) ->
        let i = link_index ctx r.edge in
        let l = links.(i) in
        let l =
          match l.inflight with
          | Some (s, _) when s < r.payload.ack ->
            { l with inflight = None; age = 0; retries = 0 }
          | _ -> l
        in
        let l =
          match r.payload.data with
          | None -> l
          | Some (s, m) ->
            must_ack.(i) <- true;
            if s = l.expected then begin
              deliveries :=
                ({ from = r.from; edge = r.edge; payload = m }
                  : 'm Engine.received)
                :: !deliveries;
              { l with expected = s + 1 }
            end
            else l (* duplicate: re-ack, drop *)
        in
        links.(i) <- l)
      received;
    let deliveries = List.rev !deliveries in
    (* Inner phase: same contract as the engine's scheduler — step the
       wrapped program when it has mail or declared itself active. *)
    let inner, inner_sends, inner_active =
      if deliveries <> [] || st.inner_active then
        p.step ctx ~round st.inner deliveries
      else (st.inner, [], st.inner_active)
    in
    let gave = ref st.gave_up in
    List.iter
      (fun ({ via; msg } : 'm Engine.send) ->
        let i = link_index ctx via in
        if links.(i).dead then begin
          Stdlib.incr gave;
          if Metrics.on () then Metrics.incr m_gave_up
        end
        else links.(i) <- enqueue links.(i) msg)
      inner_sends;
    (* Send phase: one envelope per link at most — stop-and-wait keeps
       us inside the CONGEST one-message-per-edge discipline. *)
    let outs = ref [] in
    for i = Array.length links - 1 downto 0 do
      let l', env, abandoned =
        advance ~max_retries ~must_ack:must_ack.(i) links.(i)
      in
      links.(i) <- l';
      gave := !gave + abandoned;
      match env with
      | Some e ->
        outs :=
          ({ via = Engine.ctx_edge ctx i; msg = e } : _ Engine.send) :: !outs
      | None -> ()
    done;
    let busy = Array.exists link_busy links in
    ( { inner; inner_active; links; gave_up = !gave },
      !outs,
      inner_active || busy )
  in
  { name = p.name ^ "+arq"; words; init; step }
