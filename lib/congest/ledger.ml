type kind = Native | Charged
type entry = { label : string; kind : kind; rounds : int; domains : int }

(* Entries live in a grow-doubling array in insertion order, with
   running per-kind totals. The previous representation (a reversed
   list re-reversed on every [merge] and [entries] call) made deeply
   nested sub-ledger composition quadratic. *)
type t = {
  mutable arr : entry array;
  mutable len : int;
  mutable native : int;
  mutable charged : int;
  mutable perf : Engine.perf option;
  mutable notes : (string * string) list; (* reversed *)
}

let dummy_entry = { label = ""; kind = Native; rounds = 0; domains = 1 }

let create () =
  { arr = [||]; len = 0; native = 0; charged = 0; perf = None; notes = [] }

let append t e =
  if t.len = Array.length t.arr then begin
    let arr = Array.make (max 16 (2 * t.len)) dummy_entry in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  match e.kind with
  | Native -> t.native <- t.native + e.rounds
  | Charged -> t.charged <- t.charged + e.rounds

let add t kind label ~domains rounds =
  if rounds < 0 then invalid_arg "Ledger: negative round count";
  if domains < 1 then invalid_arg "Ledger: domain count below 1";
  append t { label; kind; rounds; domains }

let native t ~label ?(domains = 1) rounds = add t Native label ~domains rounds
let charged t ~label rounds = add t Charged label ~domains:1 rounds

let note t ~label value = t.notes <- (label, value) :: t.notes
let notes t = List.rev t.notes

let merge t ~prefix other =
  for i = 0 to other.len - 1 do
    let e = other.arr.(i) in
    append t { e with label = prefix ^ "/" ^ e.label }
  done;
  List.iter
    (fun (l, v) -> note t ~label:(prefix ^ "/" ^ l) v)
    (notes other);
  match other.perf with
  | None -> ()
  | Some p -> (
    match t.perf with
    | None -> t.perf <- Some (Engine.copy_perf p)
    | Some q -> Engine.add_perf ~into:q p)

let entries t = Array.to_list (Array.sub t.arr 0 t.len)
let native_total t = t.native
let charged_total t = t.charged
let total t = t.native + t.charged

let attach_perf t p =
  match t.perf with
  | None -> t.perf <- Some (Engine.copy_perf p)
  | Some q -> Engine.add_perf ~into:q p

let perf t = t.perf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.len - 1 do
    let e = t.arr.(i) in
    Format.fprintf ppf "%-40s %8d %s%s@," e.label e.rounds
      (match e.kind with Native -> "native" | Charged -> "charged")
      (if e.domains > 1 then Printf.sprintf " (x%d domains)" e.domains else "")
  done;
  Format.fprintf ppf "%-40s %8d@,%-40s %8d (of which charged %d)" "-- native total"
    (native_total t) "-- grand total" (total t) (charged_total t);
  (match t.perf with
  | None -> ()
  | Some p -> Format.fprintf ppf "@,%-40s %a" "-- engine perf" Engine.pp_perf p);
  List.iter
    (fun (l, v) -> Format.fprintf ppf "@,%-40s %s" ("-- " ^ l) v)
    (notes t);
  Format.fprintf ppf "@]"
