module Metrics = Ln_obs.Metrics

type event =
  | Span_begin of { id : int; parent : int; name : string; r0 : int; t : float }
  | Span_end of {
      id : int;
      name : string;
      r1 : int;
      rounds : int;
      runs : int;
      steps : int;
      messages : int;
      words : int;
      drops : int;
      retrans : int;
      domains : int;
      wall : float;
      t : float;
    }
  | Round of {
      run : int;
      round : int;
      messages : int;
      words : int;
      steps : int;
      active : int;
      drops : int;
    }
  | Link of { from : int; dest : int; messages : int }

type t = { events : event list; rounds : int; wall : float }

(* ------------------------------------------------------------------ *)
(* Recording state                                                     *)

type state = {
  mutable rev_events : event list;  (* newest first *)
  mutable next_id : int;  (* span ids from 1; parent 0 = root *)
  mutable stack : int list;  (* open span ids, innermost first *)
  links : (int * int, int ref) Hashtbl.t;
  mutable rounds : int;  (* executed engine rounds observed *)
  rounds_base : int;  (* Engine.totals.rounds at start *)
  t0 : float;
}

let current : state option ref = ref None
let recording () = Option.is_some !current

let start () =
  if recording () then invalid_arg "Telemetry.start: already recording";
  let st =
    {
      rev_events = [];
      next_id = 1;
      stack = [];
      links = Hashtbl.create 256;
      rounds = 0;
      rounds_base = Engine.totals.rounds;
      t0 = Unix.gettimeofday ();
    }
  in
  current := Some st;
  Engine.set_round_probe
    (Some
       (fun ~run ~round ~messages ~words ~steps ~active ~drops ->
         if round > 0 then st.rounds <- st.rounds + 1;
         st.rev_events <-
           Round { run; round; messages; words; steps; active; drops }
           :: st.rev_events));
  Engine.set_ambient_observer
    (Some
       (fun ~round:_ ~from ~dest ~words:_ ->
         match Hashtbl.find_opt st.links (from, dest) with
         | Some r -> incr r
         | None -> Hashtbl.add st.links (from, dest) (ref 1)))

let stop () =
  match !current with
  | None -> invalid_arg "Telemetry.stop: not recording"
  | Some st ->
    Engine.set_round_probe None;
    Engine.set_ambient_observer None;
    current := None;
    let link_events =
      Hashtbl.fold (fun (f, d) r acc -> ((f, d), !r) :: acc) st.links []
      |> List.sort (fun ((f1, d1), _) ((f2, d2), _) ->
             let c = Int.compare f1 f2 in
             if c <> 0 then c else Int.compare d1 d2)
      |> List.map (fun ((from, dest), messages) -> Link { from; dest; messages })
    in
    {
      events = List.rev_append st.rev_events link_events;
      rounds = st.rounds;
      wall = Unix.gettimeofday () -. st.t0;
    }

let record f =
  start ();
  match f () with
  | v -> (v, stop ())
  | exception e ->
    (try ignore (stop ()) with _ -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let span ?ledger name f =
  let before = Engine.snapshot_totals () in
  let id =
    match !current with
    | None -> 0
    | Some st ->
      let id = st.next_id in
      st.next_id <- id + 1;
      let parent = match st.stack with [] -> 0 | p :: _ -> p in
      st.stack <- id :: st.stack;
      st.rev_events <-
        Span_begin
          {
            id;
            parent;
            name;
            r0 = Engine.totals.rounds - st.rounds_base;
            t = Unix.gettimeofday () -. st.t0;
          }
        :: st.rev_events;
      id
  in
  let close () =
    (* A span opened before [start] (id = 0) or whose recording already
       stopped leaves no event; the measurement side still runs. *)
    let d = Engine.totals_since before in
    (match !current with
    | Some st when id > 0 ->
      (match st.stack with
      | top :: rest when top = id -> st.stack <- rest
      | _ -> ());
      st.rev_events <-
        Span_end
          {
            id;
            name;
            r1 = Engine.totals.rounds - st.rounds_base;
            rounds = d.rounds;
            runs = d.runs;
            steps = d.steps;
            messages = d.messages;
            words = d.words;
            drops = d.dropped_messages;
            retrans = d.retransmissions;
            domains = max 1 d.domains;
            wall = d.wall;
            t = Unix.gettimeofday () -. st.t0;
          }
        :: st.rev_events
    | _ -> ());
    d
  in
  match f () with
  | v ->
    let d = close () in
    (match ledger with
    | Some l -> Ledger.native l ~label:name ~domains:(max 1 d.domains) d.rounds
    | None -> ());
    v
  | exception e ->
    ignore (close ());
    raise e

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled: no external dependencies)               *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* [det] drops the non-deterministic fields ([t], [wall]) so the same
   serializer yields both the JSONL lines and the canonical
   backend-comparison stream. *)
let add_event ~det b e =
  let fld_i name v = Printf.bprintf b ",\"%s\":%d" name v in
  let fld_f name v = if not det then Printf.bprintf b ",\"%s\":%.6f" name v in
  (match e with
  | Span_begin { id; parent; name; r0; t } ->
    Buffer.add_string b "{\"type\":\"span_begin\"";
    fld_i "id" id;
    fld_i "parent" parent;
    Buffer.add_string b ",\"name\":";
    add_json_string b name;
    fld_i "r0" r0;
    fld_f "t" t
  | Span_end
      {
        id;
        name;
        r1;
        rounds;
        runs;
        steps;
        messages;
        words;
        drops;
        retrans;
        domains;
        wall;
        t;
      } ->
    Buffer.add_string b "{\"type\":\"span_end\"";
    fld_i "id" id;
    Buffer.add_string b ",\"name\":";
    add_json_string b name;
    fld_i "r1" r1;
    fld_i "rounds" rounds;
    fld_i "runs" runs;
    fld_i "steps" steps;
    fld_i "messages" messages;
    fld_i "words" words;
    fld_i "drops" drops;
    fld_i "retrans" retrans;
    (* Backend-dependent (Par d vs sequential), so excluded from the
       deterministic stream like the wall-clock fields. *)
    if not det then fld_i "domains" domains;
    fld_f "wall" wall;
    fld_f "t" t
  | Round { run; round; messages; words; steps; active; drops } ->
    Buffer.add_string b "{\"type\":\"round\"";
    fld_i "run" run;
    fld_i "round" round;
    fld_i "messages" messages;
    fld_i "words" words;
    fld_i "steps" steps;
    fld_i "active" active;
    fld_i "drops" drops
  | Link { from; dest; messages } ->
    Buffer.add_string b "{\"type\":\"link\"";
    fld_i "from" from;
    fld_i "dest" dest;
    fld_i "messages" messages);
  Buffer.add_char b '}'

let add_meta ~det b (t : t) =
  Printf.bprintf b "{\"type\":\"meta\",\"version\":1,\"rounds\":%d" t.rounds;
  if not det then Printf.bprintf b ",\"wall\":%.6f" t.wall;
  Buffer.add_char b '}'

let deterministic_lines t =
  let b = Buffer.create 256 in
  let line f =
    Buffer.clear b;
    f b;
    Buffer.contents b
  in
  line (fun b -> add_meta ~det:true b t)
  :: List.map (fun e -> line (fun b -> add_event ~det:true b e)) t.events

let to_jsonl t =
  let b = Buffer.create 4096 in
  add_meta ~det:false b t;
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      add_event ~det:false b e;
      Buffer.add_char b '\n')
    t.events;
  Buffer.contents b

(* Chrome trace-event format. Virtual time axis: one executed engine
   round = one microsecond tick; rounds accumulate across engine runs
   (the same clock as [Span_begin.r0]). *)
(* A metric rendered for humans: name{k=v,...}. *)
let metric_display (m : Metrics.metric) =
  match m.Metrics.labels with
  | [] -> m.Metrics.name
  | labels ->
    m.Metrics.name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let to_chrome ?metrics t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let ev s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  ev {|{"ph":"M","pid":1,"tid":1,"name":"process_name","args":{"name":"lightnet"}}|};
  ev {|{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"phases"}}|};
  let run_base = ref 0 and cum = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Span_begin { name; r0; _ } ->
        let nb = Buffer.create 64 in
        add_json_string nb name;
        ev
          (Printf.sprintf {|{"ph":"B","pid":1,"tid":1,"ts":%d,"name":%s}|} r0
             (Buffer.contents nb))
      | Span_end
          {
            r1;
            rounds;
            runs;
            steps;
            messages;
            words;
            drops;
            retrans;
            domains;
            _;
          } ->
        ev
          (Printf.sprintf
             {|{"ph":"E","pid":1,"tid":1,"ts":%d,"args":{"rounds":%d,"runs":%d,"steps":%d,"messages":%d,"words":%d,"drops":%d,"retrans":%d,"domains":%d}}|}
             r1 rounds runs steps messages words drops retrans domains)
      | Round { round; messages; words; steps; active; drops; _ } ->
        if round = 0 then run_base := !cum;
        let ts = !run_base + round in
        if ts > !cum then cum := ts;
        ev
          (Printf.sprintf
             {|{"ph":"C","pid":1,"tid":1,"ts":%d,"name":"traffic","args":{"messages":%d,"words":%d}}|}
             ts messages words);
        ev
          (Printf.sprintf
             {|{"ph":"C","pid":1,"tid":1,"ts":%d,"name":"nodes","args":{"active":%d,"steps":%d}}|}
             ts active steps);
        ev
          (Printf.sprintf
             {|{"ph":"C","pid":1,"tid":1,"ts":%d,"name":"drops","args":{"drops":%d}}|}
             ts drops)
      | Link _ -> ())
    t.events;
  (* Registry bridge: when a metrics snapshot accompanies the trace,
     append one counter-track sample per metric at the final virtual
     timestamp — histograms as their quantile estimates — so Perfetto
     shows the run's aggregate metrics next to its round timeseries
     without any second bookkeeping pass. *)
  (match metrics with
  | None -> ()
  | Some snap ->
    List.iter
      (fun (m : Metrics.metric) ->
        let nb = Buffer.create 64 in
        add_json_string nb ("metrics/" ^ metric_display m);
        let name = Buffer.contents nb in
        match m.Metrics.value with
        | Metrics.Counter v ->
          ev
            (Printf.sprintf
               {|{"ph":"C","pid":1,"tid":1,"ts":%d,"name":%s,"args":{"value":%d}}|}
               !cum name v)
        | Metrics.Gauge v ->
          ev
            (Printf.sprintf
               {|{"ph":"C","pid":1,"tid":1,"ts":%d,"name":%s,"args":{"value":%.6g}}|}
               !cum name v)
        | Metrics.Histogram hs ->
          ev
            (Printf.sprintf
               {|{"ph":"C","pid":1,"tid":1,"ts":%d,"name":%s,"args":{"count":%d,"p50":%.6g,"p90":%.6g,"p99":%.6g}}|}
               !cum name hs.Metrics.h_count
               (Metrics.quantile hs 0.50)
               (Metrics.quantile hs 0.90)
               (Metrics.quantile hs 0.99)))
      snap);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\",\n\"lightnet\":{";
  Printf.bprintf b "\"version\":1,\"rounds\":%d,\"wall\":%.6f,\"events\":[\n"
    t.rounds t.wall;
  let first = ref true in
  List.iter
    (fun e ->
      if !first then first := false else Buffer.add_string b ",\n";
      add_event ~det:false b e)
    t.events;
  Buffer.add_string b "\n]}}\n";
  Buffer.contents b

let write_file ?metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (if Filename.check_suffix path ".jsonl" then to_jsonl t
         else to_chrome ?metrics t))

(* The other half of the bridge: fold histogram summaries into a
   construction's ledger notes, so a logged run carries its latency
   shape alongside seeds and parameters. *)
let note_metrics ledger (snap : Metrics.snapshot) =
  List.iter
    (fun (m : Metrics.metric) ->
      match m.Metrics.value with
      | Metrics.Histogram hs when hs.Metrics.h_count > 0 ->
        Ledger.note ledger
          ~label:("metrics/" ^ metric_display m)
          (Printf.sprintf "count=%d p50=%.4g p90=%.4g p99=%.4g max=%.4g"
             hs.Metrics.h_count
             (Metrics.quantile hs 0.50)
             (Metrics.quantile hs 0.90)
             (Metrics.quantile hs 0.99)
             hs.Metrics.h_max)
      | _ -> ())
    snap

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (for [load_file] — traces are machine-written,
   so this only needs to cover the JSON we and Perfetto-compatible
   tools emit).                                                        *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if peek () = c then incr pos
      else fail "expected %c at offset %d" c !pos
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; incr pos
           | '\\' -> Buffer.add_char b '\\'; incr pos
           | '/' -> Buffer.add_char b '/'; incr pos
           | 'b' -> Buffer.add_char b '\b'; incr pos
           | 'f' -> Buffer.add_char b '\012'; incr pos
           | 'n' -> Buffer.add_char b '\n'; incr pos
           | 'r' -> Buffer.add_char b '\r'; incr pos
           | 't' -> Buffer.add_char b '\t'; incr pos
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             let cp =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape %s" hex
             in
             (* UTF-8 encode the BMP code point. *)
             if cp < 0x80 then Buffer.add_char b (Char.chr cp)
             else if cp < 0x800 then begin
               Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
               Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
             end
             else begin
               Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
               Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
               Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
             end;
             pos := !pos + 5
           | c -> fail "bad escape \\%c" c);
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match float_of_string_opt tok with
      | Some f -> Num f
      | None -> fail "bad number %S at offset %d" tok start
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              incr pos;
              members ((k, v) :: acc)
            | '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } at offset %d" !pos
          in
          members []
        end
      | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              incr pos;
              elems (v :: acc)
            | ']' ->
              incr pos;
              Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] at offset %d" !pos
          in
          elems []
        end
      | '"' -> Str (parse_string ())
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v

  let member k = function
    | Obj l -> ( match List.assoc_opt k l with Some v -> v | None -> Null)
    | _ -> Null

  let to_int = function
    | Num f -> int_of_float f
    | v -> fail "expected number, got %s" (match v with Str _ -> "string" | _ -> "non-number")

  let to_float_opt = function Num f -> Some f | _ -> None

  let to_string = function Str s -> s | _ -> fail "expected string"
end

let event_of_json j =
  let i k = Json.to_int (Json.member k j) in
  let f k = Option.value ~default:0.0 (Json.to_float_opt (Json.member k j)) in
  match Json.to_string (Json.member "type" j) with
  | "meta" -> `Meta (i "rounds", f "wall")
  | "span_begin" ->
    `Event
      (Span_begin
         {
           id = i "id";
           parent = i "parent";
           name = Json.to_string (Json.member "name" j);
           r0 = i "r0";
           t = f "t";
         })
  | "span_end" ->
    `Event
      (Span_end
         {
           id = i "id";
           name = Json.to_string (Json.member "name" j);
           r1 = i "r1";
           rounds = i "rounds";
           runs = i "runs";
           steps = i "steps";
           messages = i "messages";
           words = i "words";
           drops = i "drops";
           retrans = i "retrans";
           (* Absent in traces written before the parallel backend. *)
           domains =
             (match Json.member "domains" j with
             | Json.Null -> 1
             | v -> Json.to_int v);
           wall = f "wall";
           t = f "t";
         })
  | "round" ->
    `Event
      (Round
         {
           run = i "run";
           round = i "round";
           messages = i "messages";
           words = i "words";
           steps = i "steps";
           active = i "active";
           drops = i "drops";
         })
  | "link" ->
    `Event (Link { from = i "from"; dest = i "dest"; messages = i "messages" })
  | ty -> Json.fail "unknown event type %S" ty

let of_json_objects objs =
  let rounds = ref 0 and wall = ref 0.0 in
  let events =
    List.filter_map
      (fun j ->
        match event_of_json j with
        | `Meta (r, w) ->
          rounds := r;
          wall := w;
          None
        | `Event e -> Some e)
      objs
  in
  { events; rounds = !rounds; wall = !wall }

let load_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  try
    if Filename.check_suffix path ".jsonl" then
      String.split_on_char '\n' content
      |> List.filter (fun l -> String.trim l <> "")
      |> List.map Json.parse
      |> of_json_objects
    else
      match Json.member "lightnet" (Json.parse content) with
      | Json.Obj _ as ln ->
        let t =
          match Json.member "events" ln with
          | Json.Arr evs -> of_json_objects evs
          | _ -> Json.fail "lightnet.events missing"
        in
        {
          t with
          rounds = Json.to_int (Json.member "rounds" ln);
          wall =
            Option.value ~default:0.0
              (Json.to_float_opt (Json.member "wall" ln));
        }
      | _ -> Json.fail "no \"lightnet\" section (not a lightnet trace?)"
  with Json.Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

(* ------------------------------------------------------------------ *)
(* Span tree, coverage, report                                         *)

type node = {
  n_id : int;
  n_name : string;
  n_rounds : int;
  n_messages : int;
  n_wall : float;
  mutable n_children : node list;  (* reversed during build *)
}

(* Rebuild the span forest from begin/end events. Spans with no
   matching [Span_end] (recording stopped inside them) appear with
   zero counters. *)
let span_forest (t : t) =
  let by_id = Hashtbl.create 64 in
  let parents = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e with
      | Span_begin { id; parent; name; _ } ->
        let node =
          {
            n_id = id;
            n_name = name;
            n_rounds = 0;
            n_messages = 0;
            n_wall = 0.0;
            n_children = [];
          }
        in
        Hashtbl.replace by_id id node;
        Hashtbl.replace parents id parent;
        order := id :: !order
      | Span_end { id; rounds; messages; wall; _ } -> (
        match Hashtbl.find_opt by_id id with
        | Some node ->
          Hashtbl.replace by_id id
            { node with n_rounds = rounds; n_messages = messages; n_wall = wall }
        | None -> ())
      | _ -> ())
    t.events;
  (* Link children to parents in span-open order. *)
  let roots = ref [] in
  List.iter
    (fun id ->
      let node = Hashtbl.find by_id id in
      match Hashtbl.find_opt parents id with
      | Some p when p > 0 -> (
        match Hashtbl.find_opt by_id p with
        | Some parent -> parent.n_children <- node :: parent.n_children
        | None -> roots := node :: !roots)
      | _ -> roots := node :: !roots)
    (List.rev !order);
  let rec finalize n =
    n.n_children <- List.rev n.n_children;
    List.iter finalize n.n_children
  in
  let roots = List.rev !roots in
  List.iter finalize roots;
  roots

let leaf_round_coverage (t : t) =
  if t.rounds = 0 then 1.0
  else begin
    let leaf_rounds = ref 0 in
    let rec visit n =
      if n.n_children = [] then leaf_rounds := !leaf_rounds + n.n_rounds
      else List.iter visit n.n_children
    in
    List.iter visit (span_forest t);
    float_of_int !leaf_rounds /. float_of_int t.rounds
  end

let pp_report ppf (t : t) =
  let runs = ref 0
  and messages = ref 0
  and words = ref 0
  and drops = ref 0
  and doms = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Round r ->
        if r.round = 0 then incr runs;
        messages := !messages + r.messages;
        words := !words + r.words;
        drops := !drops + r.drops
      | Span_end { domains; _ } -> if domains > !doms then doms := domains
      | _ -> ())
    t.events;
  Format.fprintf ppf
    "trace: %d engine runs, %d rounds, %d msgs, %d words (wall %.3fs)"
    !runs t.rounds !messages !words t.wall;
  if !drops > 0 then Format.fprintf ppf ", %d dropped" !drops;
  if !doms > 1 then Format.fprintf ppf ", %d domains" !doms;
  Format.fprintf ppf "@.";
  let roots = span_forest t in
  if roots <> [] then begin
    Format.fprintf ppf "@.phase tree (rounds, share of recorded, messages):@.";
    let total = max t.rounds 1 in
    let rec pp_node depth n =
      Format.fprintf ppf "  %s%-*s %8d %5.1f%% %10d msgs %8.3fs@."
        (String.make (2 * depth) ' ')
        (max 1 (36 - (2 * depth)))
        n.n_name n.n_rounds
        (100.0 *. float_of_int n.n_rounds /. float_of_int total)
        n.n_messages n.n_wall;
      List.iter (pp_node (depth + 1)) n.n_children
    in
    List.iter (pp_node 0) roots;
    Format.fprintf ppf "leaf span coverage: %.1f%% of %d recorded rounds@."
      (100.0 *. leaf_round_coverage t)
      t.rounds
  end;
  let links = List.filter_map
      (function Link { messages; _ } -> Some messages | _ -> None)
      t.events
  in
  if links <> [] then begin
    (* log2 buckets: bucket k counts links with load in [2^k, 2^(k+1)). *)
    let buckets = Hashtbl.create 16 in
    let maxb = ref 0 in
    List.iter
      (fun m ->
        let k = if m <= 0 then 0 else int_of_float (Float.log2 (float_of_int m)) in
        if k > !maxb then maxb := k;
        Hashtbl.replace buckets k
          (1 + Option.value ~default:0 (Hashtbl.find_opt buckets k)))
      links;
    Format.fprintf ppf "@.edge-load histogram (%d directed links):@."
      (List.length links);
    for k = 0 to !maxb do
      match Hashtbl.find_opt buckets k with
      | None -> ()
      | Some c ->
        Format.fprintf ppf "  [%6d, %6d) %6d links@." (1 lsl k)
          (1 lsl (k + 1))
          c
    done
  end
