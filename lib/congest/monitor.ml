module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Stats = Ln_graph.Stats
module Union_find = Ln_graph.Union_find

type verdict = Correct | Degraded | Wrong

type report = { verdict : verdict; detail : string }

let verdict_name = function
  | Correct -> "correct"
  | Degraded -> "degraded"
  | Wrong -> "wrong"

let pp ppf r =
  Format.fprintf ppf "%s (%s)" (verdict_name r.verdict) r.detail

let correct detail = { verdict = Correct; detail }
let degraded detail = { verdict = Degraded; detail }
let wrong detail = { verdict = Wrong; detail }

(* BFS from [root] over surviving edges between surviving nodes. *)
let surviving_hops g plan ~root =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  if Fault.surviving_node plan root then begin
    dist.(root) <- 0;
    let q = Queue.create () in
    Queue.add root q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Graph.iter_neighbors g u (fun e v ->
          if
            dist.(v) < 0
            && Fault.surviving_edge plan e
            && Fault.surviving_node plan v
          then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
    done
  end;
  dist

let bfs g plan ~root ~dist =
  let n = Graph.n g in
  if Array.length dist <> n then
    invalid_arg "Monitor.bfs: dist array has wrong length";
  let full = Paths.bfs_hops g root in
  if dist = full then correct "BFS layers match the fault-free graph"
  else begin
    let surv = surviving_hops g plan ~root in
    let bad = ref None in
    for v = n - 1 downto 0 do
      if Fault.surviving_node plan v && dist.(v) <> surv.(v) then
        bad := Some v
    done;
    match !bad with
    | None -> degraded "BFS layers match the surviving subgraph"
    | Some v ->
      wrong
        (Printf.sprintf "node %d claims hop distance %d, surviving subgraph says %d"
           v dist.(v) surv.(v))
  end

let broadcast g plan ~root ~value ~got =
  let n = Graph.n g in
  if Array.length got <> n then
    invalid_arg "Monitor.broadcast: got array has wrong length";
  let corrupted = ref None in
  for v = n - 1 downto 0 do
    match got.(v) with
    | Some x when x <> value -> corrupted := Some (v, x)
    | _ -> ()
  done;
  match !corrupted with
  | Some (v, x) ->
    wrong (Printf.sprintf "node %d received %d instead of %d" v x value)
  | None ->
    if Array.for_all (fun o -> o = Some value) got then
      correct "every node received the value"
    else begin
      let surv = surviving_hops g plan ~root in
      let missed = ref None in
      for v = n - 1 downto 0 do
        if surv.(v) >= 0 && got.(v) <> Some value then missed := Some v
      done;
      match !missed with
      | None -> degraded "every reachable surviving node received the value"
      | Some v ->
        wrong
          (Printf.sprintf
             "node %d is reachable in the surviving subgraph but got nothing" v)
    end

(* Count the distinct components among the vertices satisfying [keep],
   where [join] unions whatever edges are admissible. *)
let component_count n ~keep ~join =
  let uf = Union_find.create n in
  join uf;
  let seen = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    if keep v then Hashtbl.replace seen (Union_find.find uf v) ()
  done;
  Hashtbl.length seen

let spanning_forest g plan ~edges =
  let n = Graph.n g in
  let uf = Union_find.create n in
  let cycle = ref None in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      if not (Union_find.union uf u v) then cycle := Some e)
    edges;
  match !cycle with
  | Some e -> wrong (Printf.sprintf "edge %d closes a cycle" e)
  | None ->
    let full_cc =
      component_count n
        ~keep:(fun _ -> true)
        ~join:(fun uf ->
          Graph.iter_edges g (fun e _ ->
              let u, v = Graph.endpoints g e in
              ignore (Union_find.union uf u v);
              ignore e))
    in
    let forest_cc =
      component_count n ~keep:(fun _ -> true) ~join:(fun uf ->
          List.iter
            (fun e ->
              let u, v = Graph.endpoints g e in
              ignore (Union_find.union uf u v))
            edges)
    in
    if forest_cc = full_cc then
      correct "forest spans every component of the graph"
    else begin
      let keep v = Fault.surviving_node plan v in
      let surv_cc =
        component_count n ~keep ~join:(fun uf ->
            Graph.iter_edges g (fun e _ ->
                let u, v = Graph.endpoints g e in
                if Fault.surviving_edge plan e && keep u && keep v then
                  ignore (Union_find.union uf u v)))
      in
      let chosen_cc =
        component_count n ~keep ~join:(fun uf ->
            List.iter
              (fun e ->
                let u, v = Graph.endpoints g e in
                if Fault.surviving_edge plan e && keep u && keep v then
                  ignore (Union_find.union uf u v))
              edges)
      in
      if chosen_cc = surv_cc then
        degraded "surviving forest edges span the surviving subgraph"
      else
        wrong
          (Printf.sprintf
             "forest leaves %d components where the surviving subgraph has %d"
             chosen_cc surv_cc)
    end

let spanner ?lightness_bound g plan ~stretch_bound ~edges =
  let ok_full =
    Stats.max_edge_stretch g edges <= stretch_bound
    && match lightness_bound with
       | None -> true
       | Some b -> Stats.lightness g edges <= b
  in
  if ok_full then correct "stretch/lightness bounds hold on the full graph"
  else begin
    (* Re-measure on the surviving host: surviving edges only, with
       spanner edges mapped into the subgraph's fresh edge ids. *)
    let keep v = Fault.surviving_node plan v in
    let surviving e =
      let u, v = Graph.endpoints g e in
      Fault.surviving_edge plan e && keep u && keep v
    in
    let host_edges =
      Graph.fold_edges g (fun e _ acc -> if surviving e then e :: acc else acc)
        []
    in
    let host, original_id = Graph.subgraph g host_edges in
    let chosen = List.filter surviving edges in
    let in_spanner = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace in_spanner e ()) chosen;
    let sub_edges = ref [] in
    for i = Graph.m host - 1 downto 0 do
      if Hashtbl.mem in_spanner (original_id i) then sub_edges := i :: !sub_edges
    done;
    let ok_surv =
      Stats.max_edge_stretch host !sub_edges <= stretch_bound
      && match lightness_bound with
         | None -> true
         | Some b -> Stats.lightness host !sub_edges <= b
    in
    if ok_surv then
      degraded "bounds hold on the surviving subgraph"
    else wrong "bounds fail even on the surviving subgraph"
  end
