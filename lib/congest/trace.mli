(** Traffic traces for engine runs.

    A [Trace.t] plugs into {!Engine.run}'s [observer] and aggregates the
    message stream: messages and words per round, per-edge-direction
    load, and the busiest rounds/links. Useful when tuning a protocol's
    pipelining (e.g. checking that a Lemma-1 broadcast really keeps
    every tree edge busy) or diagnosing congestion hot-spots.

    {[
      let trace = Trace.create () in
      let _ = Engine.run ~observer:(Trace.observer trace) g program in
      Format.printf "%a@." Trace.pp trace
    ]} *)

type t

val create : unit -> t

(** The callback to pass to {!Engine.run}. One trace can observe
    several consecutive runs; rounds then accumulate per run segment
    (call {!reset} in between to separate them). *)
val observer : t -> Engine.observer

val reset : t -> unit

(** Total messages observed. *)
val messages : t -> int

(** Total words observed. *)
val words : t -> int

(** Number of distinct rounds in which at least one message was sent. *)
val busy_rounds : t -> int

(** [round_load t r] is (messages, words) sent in round [r]. *)
val round_load : t -> int -> int * int

(** The round with the most messages, as [(round, messages)];
    [(0, 0)] for an empty trace. *)
val peak_round : t -> int * int

(** [link_load t] lists ((from, dest), messages) pairs sorted by
    decreasing load — the congestion profile. Ties are broken by
    [(from, dest)] ascending, so the ordering (and any digest of it)
    is fully deterministic across OCaml versions and hash seeds. *)
val link_load : t -> ((int * int) * int) list

(** Messages on the single busiest directed link. *)
val peak_link : t -> int

(** [add_perf t p] attaches engine perf counters to the trace
    (accumulating across calls), so {!pp} reports simulator
    throughput — rounds/s, messages/s, scheduler skip ratio — next to
    the traffic profile. Cleared by {!reset}. *)
val add_perf : t -> Engine.perf -> unit

(** The accumulated engine counters, if any were attached. *)
val perf : t -> Engine.perf option

val pp : Format.formatter -> t -> unit
