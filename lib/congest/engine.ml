module Graph = Ln_graph.Graph
module Metrics = Ln_obs.Metrics

exception Congest_violation of string

(* Flat per-node context: one record per *run* (not per node), holding
   the graph's CSR columns plus a mutable [me] cursor the engine points
   at the node being stepped. The old layout materialized [Array.init n]
   boxed records each with a per-node [(int * int) array] tuple view —
   at RMAT scale 20 (n = 2^20, m = 15.6M) that is ~31M three-word tuple
   boxes plus n record headers, ~750 MB duplicating a CSR we already
   hold. The accessors below index the shared columns directly, so the
   resident cost of the neighbor view is now the one record. *)
type ctx = {
  n : int;
  mutable me : int;
  weight : int -> float;
  off : int array;
  adj_eid : int array;
  adj_dst : int array;
  (* Lazily-built memo for the deprecated [ctx_neighbors] tuple view:
     row [v] is the boxed [(edge_id, neighbor)] array, or the
     [unbuilt_row] sentinel. The spine itself is only allocated on the
     first [ctx_neighbors] call, so programs on the accessor API never
     pay for it. *)
  mutable nbr_rows : (int * int) array array;
}

type 'm received = { from : int; edge : int; payload : 'm }
type 'm send = { via : int; msg : 'm }

let ctx_of g =
  let gv = Graph.view g in
  {
    n = Graph.n g;
    me = 0;
    weight = Graph.weight g;
    off = gv.Graph.off;
    adj_eid = gv.Graph.adj_eid;
    adj_dst = gv.Graph.adj_dst;
    nbr_rows = [||];
  }

let ctx_degree c = c.off.(c.me + 1) - c.off.(c.me)

let ctx_edge c i =
  let p = c.off.(c.me) + i in
  if i < 0 || p >= c.off.(c.me + 1) then
    invalid_arg "Engine.ctx_edge: neighbor index out of range";
  c.adj_eid.(p)

let ctx_peer c i =
  let p = c.off.(c.me) + i in
  if i < 0 || p >= c.off.(c.me + 1) then
    invalid_arg "Engine.ctx_peer: neighbor index out of range";
  c.adj_dst.(p)

let ctx_neighbor c i =
  let p = c.off.(c.me) + i in
  if i < 0 || p >= c.off.(c.me + 1) then
    invalid_arg "Engine.ctx_neighbor: neighbor index out of range";
  (c.adj_eid.(p), c.adj_dst.(p))

let ctx_iter_neighbors c f =
  let eid = c.adj_eid and dst = c.adj_dst in
  for p = c.off.(c.me) to c.off.(c.me + 1) - 1 do
    f eid.(p) dst.(p)
  done

let ctx_fold_neighbors c f init =
  let eid = c.adj_eid and dst = c.adj_dst in
  let acc = ref init in
  for p = c.off.(c.me) to c.off.(c.me + 1) - 1 do
    acc := f !acc eid.(p) dst.(p)
  done;
  !acc

(* Deprecated tuple-array view, kept for external API compatibility
   (the grep gate in test/dune bans it in lib/). Rows are built lazily
   from the CSR columns and memoized per node, exactly like the
   graph module's deprecated tuple-row accessor: callers pay the boxed
   representation into existence, accessor users never do. *)
let unbuilt_row : (int * int) array = [| (min_int, min_int) |]

let ctx_neighbors c =
  if c.n = 0 then [||]
  else begin
    if Array.length c.nbr_rows = 0 then
      c.nbr_rows <- Array.make c.n unbuilt_row;
    let row = c.nbr_rows.(c.me) in
    if row != unbuilt_row then row
    else begin
      let lo = c.off.(c.me) in
      let deg = c.off.(c.me + 1) - lo in
      let built =
        Array.init deg (fun i -> (c.adj_eid.(lo + i), c.adj_dst.(lo + i)))
      in
      c.nbr_rows.(c.me) <- built;
      built
    end
  end

type ('s, 'm) program = {
  name : string;
  words : 'm -> int;
  init : ctx -> 's * 'm send list;
  step : ctx -> round:int -> 's -> 'm received list -> 's * 'm send list * bool;
}

type observer = round:int -> from:int -> dest:int -> words:int -> unit

type outcome = Converged | Round_limit

type stats = {
  rounds : int;
  messages : int;
  total_words : int;
  max_edge_load : int;
  outcome : outcome;
  dropped_messages : int;
  retransmissions : int;
}

type perf = {
  mutable runs : int;
  mutable rounds : int;
  mutable steps : int;
  mutable skipped : int;
  mutable messages : int;
  mutable words : int;
  mutable wall : float;
  mutable arena_cap : int;
  mutable arena_grows : int;
  mutable dropped_messages : int;
  mutable retransmissions : int;
  mutable domains : int;
  mutable barrier_wall : float;
}

let create_perf () =
  {
    runs = 0;
    rounds = 0;
    steps = 0;
    skipped = 0;
    messages = 0;
    words = 0;
    wall = 0.0;
    arena_cap = 0;
    arena_grows = 0;
    dropped_messages = 0;
    retransmissions = 0;
    domains = 0;
    barrier_wall = 0.0;
  }

let copy_perf p = { p with runs = p.runs }

(* Cumulative counters across every run in the process, so algorithms
   can attribute simulator work to their ledgers without threading a
   [perf] through every primitive signature (see [snapshot_totals]). *)
let totals = create_perf ()

let snapshot_totals () = copy_perf totals

let totals_since before =
  {
    runs = totals.runs - before.runs;
    rounds = totals.rounds - before.rounds;
    steps = totals.steps - before.steps;
    skipped = totals.skipped - before.skipped;
    messages = totals.messages - before.messages;
    words = totals.words - before.words;
    wall = totals.wall -. before.wall;
    arena_cap = max totals.arena_cap before.arena_cap;
    arena_grows = totals.arena_grows - before.arena_grows;
    dropped_messages = totals.dropped_messages - before.dropped_messages;
    retransmissions = totals.retransmissions - before.retransmissions;
    domains = max totals.domains before.domains;
    barrier_wall = totals.barrier_wall -. before.barrier_wall;
  }

let add_perf ~into p =
  into.runs <- into.runs + p.runs;
  into.rounds <- into.rounds + p.rounds;
  into.steps <- into.steps + p.steps;
  into.skipped <- into.skipped + p.skipped;
  into.messages <- into.messages + p.messages;
  into.words <- into.words + p.words;
  into.wall <- into.wall +. p.wall;
  into.arena_cap <- max into.arena_cap p.arena_cap;
  into.arena_grows <- into.arena_grows + p.arena_grows;
  into.dropped_messages <- into.dropped_messages + p.dropped_messages;
  into.retransmissions <- into.retransmissions + p.retransmissions;
  into.domains <- max into.domains p.domains;
  into.barrier_wall <- into.barrier_wall +. p.barrier_wall

let skip_ratio p =
  let scanned = p.steps + p.skipped in
  if scanned = 0 then 0.0 else float_of_int p.skipped /. float_of_int scanned

let rounds_per_sec p =
  if p.wall <= 0.0 then 0.0 else float_of_int p.rounds /. p.wall

let messages_per_sec p =
  if p.wall <= 0.0 then 0.0 else float_of_int p.messages /. p.wall

let pp_perf ppf p =
  Format.fprintf ppf
    "runs=%d rounds=%d steps=%d skipped=%d (skip %.1f%%) msgs=%d wall=%.3fs \
     (%.0f rounds/s, %.0f msgs/s) arena=%d words, %d grows"
    p.runs p.rounds p.steps p.skipped
    (100.0 *. skip_ratio p)
    p.messages p.wall (rounds_per_sec p) (messages_per_sec p) p.arena_cap
    p.arena_grows;
  if p.dropped_messages > 0 || p.retransmissions > 0 then
    Format.fprintf ppf ", dropped=%d retrans=%d" p.dropped_messages
      p.retransmissions;
  if p.domains > 1 then
    Format.fprintf ppf ", domains=%d barrier=%.3fs" p.domains p.barrier_wall

let violation fmt = Format.kasprintf (fun s -> raise (Congest_violation s)) fmt

(* Registry counters for the always-on metrics layer (ln_obs): one
   family per backend label, registered once at module init and bumped
   with per-run aggregates in [finish_perf] — the per-round hot loops
   stay untouched, so a disabled registry costs one ref read per run. *)
type eng_metrics = {
  m_runs : Metrics.counter;
  m_rounds : Metrics.counter;
  m_messages : Metrics.counter;
  m_words : Metrics.counter;
  m_drops : Metrics.counter;
  m_retrans : Metrics.counter;
}

let eng_metrics backend =
  let c suffix help =
    Metrics.counter ~help
      ~labels:[ ("backend", backend) ]
      ("lightnet_engine_" ^ suffix)
  in
  {
    m_runs = c "runs_total" "Engine runs completed.";
    m_rounds = c "rounds_total" "Engine rounds executed.";
    m_messages = c "messages_total" "Messages delivered to nodes.";
    m_words = c "words_total" "Message words delivered to nodes.";
    m_drops = c "drops_total" "Messages dropped by fault injection.";
    m_retrans = c "retransmissions_total" "Retransmissions charged to runs.";
  }

let em_reference = eng_metrics "reference"
let em_fast = eng_metrics "fast"
let em_par = eng_metrics "par"

let finish_perf perf ~em ~rounds ~steps ~skipped ~messages ~words ~wall
    ~arena_cap ~arena_grows ~dropped ~retrans ~domains ~barrier_wall =
  if Metrics.on () then begin
    Metrics.incr em.m_runs;
    Metrics.add em.m_rounds rounds;
    Metrics.add em.m_messages messages;
    Metrics.add em.m_words words;
    Metrics.add em.m_drops dropped;
    Metrics.add em.m_retrans retrans
  end;
  let record p =
    p.runs <- p.runs + 1;
    p.rounds <- p.rounds + rounds;
    p.steps <- p.steps + steps;
    p.skipped <- p.skipped + skipped;
    p.messages <- p.messages + messages;
    p.words <- p.words + words;
    p.wall <- p.wall +. wall;
    p.arena_cap <- max p.arena_cap arena_cap;
    p.arena_grows <- p.arena_grows + arena_grows;
    p.dropped_messages <- p.dropped_messages + dropped;
    p.retransmissions <- p.retransmissions + retrans;
    p.domains <- max p.domains domains;
    p.barrier_wall <- p.barrier_wall +. barrier_wall
  in
  record totals;
  match perf with Some p -> record p | None -> ()

(* ------------------------------------------------------------------ *)
(* Fault context.

   [retrans_key] is a domain-local cell pointing at the innermost
   running engine's retransmission counter; [count_retransmission] is
   the hook reliable-delivery combinators call from inside a [step] to
   attribute the duplicate send they are about to emit. The cell is
   saved/restored around every run (including on exceptions), so nested
   engine runs attribute correctly and calls outside any run land in a
   sink. Domain-local (rather than a global ref) so [run_par] workers
   each attribute into their own per-domain counter with no contention
   — the counters are summed at the end of the run, which keeps the
   total identical to the sequential backends. *)

let sink = ref 0

let retrans_key : int ref ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref sink)

let count_retransmission () = incr !(Domain.DLS.get retrans_key)

let ambient_faults : (Fault.plan * int option) option ref = ref None

(* Ambient observability hooks, installed by Telemetry. Both are
   resolved once per run; when unset the residual cost is one [ref]
   read per run (observer) and one option match per round (probe), so
   disabled telemetry is free on the hot path. *)

type round_probe =
  run:int ->
  round:int ->
  messages:int ->
  words:int ->
  steps:int ->
  active:int ->
  drops:int ->
  unit

let round_probe : round_probe option ref = ref None
let probe_runs = ref 0

let set_round_probe p =
  round_probe := p;
  probe_runs := 0

let ambient_observer : observer option ref = ref None
let set_ambient_observer o = ambient_observer := o

(* Effective observer for a run: the explicit one, the ambient one, or
   their composition (explicit first, matching historical call order). *)
let resolve_observer observer =
  match (observer, !ambient_observer) with
  | None, None -> None
  | Some _, None -> observer
  | None, Some _ -> !ambient_observer
  | Some o, Some a ->
    Some
      (fun ~round ~from ~dest ~words ->
        o ~round ~from ~dest ~words;
        a ~round ~from ~dest ~words)

(* Claim a run sequence number for the probe stream (0-based, reset by
   [set_round_probe]). *)
let probe_run_id probe =
  match probe with
  | None -> 0
  | Some _ ->
    let id = !probe_runs in
    probe_runs := id + 1;
    id

let with_faults ?max_rounds plan f =
  let old = !ambient_faults in
  ambient_faults := Some (plan, max_rounds);
  Fun.protect ~finally:(fun () -> ambient_faults := old) f

(* Resolve a run's effective fault plan and round-limit policy: an
   explicit [?faults] wins over the ambient plan; under faults the
   round cap defaults to marking instead of raising (a capped chaotic
   run is an expected outcome for the monitors to classify, not a
   bug). *)
let resolve_fault_context ~faults ~max_rounds ~on_round_limit =
  let faults, ambient_cap =
    match faults with
    | Some _ -> (faults, None)
    | None -> (
      match !ambient_faults with
      | Some (plan, cap) -> (Some plan, cap)
      | None -> (None, None))
  in
  let max_rounds =
    match (max_rounds, ambient_cap) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None -> 10_000_000
  in
  let on_round_limit =
    match on_round_limit with
    | Some x -> x
    | None -> if faults = None then `Raise else `Mark
  in
  (match faults with Some plan -> Fault.begin_run plan | None -> ());
  (faults, max_rounds, on_round_limit)

(* ------------------------------------------------------------------ *)
(* Reference engine: the original list-inbox, hashtable-tracked
   implementation. Semantics are the specification; the fast engine
   below must be observationally identical (states, stats, observer
   call sequence). Kept as the accounting-strict differential baseline
   and as the "before" side of bench/engine_bench. *)

let run_reference ?(word_cap = 4) ?max_rounds ?on_round_limit ?observer ?perf
    ?faults g p =
  let faults, max_rounds, on_round_limit =
    resolve_fault_context ~faults ~max_rounds ~on_round_limit
  in
  let observer = resolve_observer observer in
  let probe = !round_probe in
  let probe_run = probe_run_id probe in
  let t0 = Unix.gettimeofday () in
  let n = Graph.n g in
  (* One shared context; [c.me] is pointed at the node about to run.
     The ctx handed to [init]/[step] is only valid for the duration of
     that call (documented in the mli). *)
  let c = ctx_of g in
  let active = Array.make n true in
  (* Messages in flight, to be delivered at the start of the next
     round: per destination vertex. *)
  let inbox : 'm received list array = Array.make n [] in
  let next_inbox : 'm received list array = Array.make n [] in
  let messages = ref 0 in
  let total_words = ref 0 in
  let max_edge_load = ref 0 in
  let in_flight = ref 0 in
  let steps = ref 0 in
  let skipped = ref 0 in
  let dropped = ref 0 in
  let retrans = ref 0 in
  let retrans_cell = Domain.DLS.get retrans_key in
  let saved_cell = !retrans_cell in
  retrans_cell := retrans;
  Fun.protect ~finally:(fun () -> retrans_cell := saved_cell)
  @@ fun () ->
  (* Tracks, per round, words sent per (edge, direction) for cap
     enforcement. Key: edge * 2 + dir. *)
  let sent_this_round = Hashtbl.create 64 in
  let current_round = ref 0 in
  let deliver ~sender outs =
    List.iter
      (fun { via; msg } ->
        let u, v = Graph.endpoints g via in
        let dest =
          if u = sender then v
          else if v = sender then u
          else violation "%s: node %d sent over non-incident edge %d" p.name sender via
        in
        let w = p.words msg in
        if w > word_cap then
          violation "%s: node %d sent %d-word message (cap %d)" p.name sender w word_cap;
        let key = (via * 2) + if sender < dest then 0 else 1 in
        (match Hashtbl.find_opt sent_this_round key with
        | Some _ ->
          violation "%s: node %d sent twice over edge %d in one round" p.name sender via
        | None -> Hashtbl.replace sent_this_round key w);
        if w > !max_edge_load then max_edge_load := w;
        (match observer with
        | Some f -> f ~round:!current_round ~from:sender ~dest ~words:w
        | None -> ());
        incr messages;
        total_words := !total_words + w;
        (* The send happened (and was charged above); the fault plan
           decides whether it survives transit. *)
        let lost =
          match faults with
          | None -> false
          | Some plan -> (
            match
              Fault.fate plan ~sender ~dest ~edge:via ~round:!current_round
            with
            | None -> false
            | Some c ->
              Fault.record plan c;
              incr dropped;
              true)
        in
        if not lost then begin
          incr in_flight;
          next_inbox.(dest) <-
            { from = sender; edge = via; payload = msg } :: next_inbox.(dest)
        end)
      outs
  in
  (* Per-round telemetry deltas (only consulted when a probe is set). *)
  let pm = ref 0 and pw = ref 0 and ps = ref 0 and pd = ref 0 in
  let emit_sample ~round ~active_now =
    match probe with
    | None -> ()
    | Some f ->
      f ~run:probe_run ~round
        ~messages:(!messages - !pm)
        ~words:(!total_words - !pw)
        ~steps:(!steps - !ps) ~active:active_now
        ~drops:(!dropped - !pd);
      pm := !messages;
      pw := !total_words;
      ps := !steps;
      pd := !dropped
  in
  (* Round 0: init. *)
  Hashtbl.reset sent_this_round;
  let inits =
    Array.init n (fun v ->
        c.me <- v;
        p.init c)
  in
  let states = Array.map fst inits in
  Array.iteri (fun v (_, outs) -> deliver ~sender:v outs) inits;
  emit_sample ~round:0 ~active_now:n;
  let rounds = ref 0 in
  let continue = ref (!in_flight > 0 || Array.exists (fun b -> b) active) in
  while !continue && !rounds < max_rounds do
    incr rounds;
    current_round := !rounds;
    (* Flip message buffers. *)
    for v = 0 to n - 1 do
      inbox.(v) <- next_inbox.(v);
      next_inbox.(v) <- []
    done;
    in_flight := 0;
    Hashtbl.reset sent_this_round;
    let round_active = ref 0 in
    for v = 0 to n - 1 do
      let msgs = inbox.(v) in
      if
        match faults with
        | Some plan -> Fault.crashed plan ~node:v ~round:!rounds
        | None -> false
      then begin
        (* Crashed: the node is not stepped while the plan says it is
           down. Its inbox is necessarily empty (sends to it were
           dropped in transit). Crash-stop nodes never run again; a
           crash-recovery window leaves the state intact and the node
           wakes on the first message delivered at or after its
           recover round. *)
        active.(v) <- false;
        incr skipped
      end
      else if active.(v) || msgs <> [] then begin
        incr steps;
        c.me <- v;
        let s, outs, still = p.step c ~round:!rounds states.(v) msgs in
        states.(v) <- s;
        active.(v) <- still;
        if still then incr round_active;
        deliver ~sender:v outs
      end
      else incr skipped;
      inbox.(v) <- []
    done;
    emit_sample ~round:!rounds ~active_now:!round_active;
    continue := !in_flight > 0 || !round_active > 0
  done;
  let outcome = if !continue then Round_limit else Converged in
  if outcome = Round_limit && on_round_limit = `Raise then
    violation "%s: round limit %d reached without quiescence" p.name max_rounds;
  finish_perf perf ~em:em_reference ~rounds:!rounds ~steps:!steps
    ~skipped:!skipped ~messages:!messages ~words:!total_words
    ~wall:(Unix.gettimeofday () -. t0)
    ~arena_cap:0 ~arena_grows:0 ~dropped:!dropped ~retrans:!retrans ~domains:1
    ~barrier_wall:0.0;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      total_words = !total_words;
      max_edge_load = !max_edge_load;
      outcome;
      dropped_messages = !dropped;
      retransmissions = !retrans;
    } )

(* ------------------------------------------------------------------ *)
(* Fast engine.

   Same observable behaviour as [run_reference], engineered for
   throughput:

   - Arena mailboxes: in-flight messages live in a flat, reused
     [received] slot array; per-destination inboxes are intrusive index
     chains ([link] / [head]), so delivery is two array stores and
     steady-state rounds reuse the same buffers instead of churning
     per-node lists through the GC. Two arenas (current / next round)
     swap in O(1).

   - Generation-stamped cap tracking: the per-round duplicate-send
     check is one compare against a per-(edge,direction) int array
     stamped with the round number — no hashing, no per-round reset.

   - Active-set scheduling: a worklist holds exactly the nodes that
     are active or have pending messages; quiescent nodes cost nothing
     instead of an O(n) scan per round. The worklist is sorted each
     round so nodes step in ascending id order, which makes the
     observer call sequence and inbox list order bit-identical to the
     reference engine. *)

(* In-place quicksort (insertion sort below 16) on [a.(0 .. len-1)];
   avoids the Array.sub + Array.sort copy on the hot path. *)
let sort_prefix a len =
  let rec qsort lo hi =
    if hi - lo < 16 then
      for i = lo + 1 to hi do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median-of-three pivot *)
      if a.(mid) < a.(lo) then (let t = a.(lo) in a.(lo) <- a.(mid); a.(mid) <- t);
      if a.(hi) < a.(lo) then (let t = a.(lo) in a.(lo) <- a.(hi); a.(hi) <- t);
      if a.(hi) < a.(mid) then (let t = a.(mid) in a.(mid) <- a.(hi); a.(hi) <- t);
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do incr i done;
        while a.(!j) > pivot do decr j done;
        if !i <= !j then begin
          let t = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- t;
          incr i;
          decr j
        end
      done;
      if lo < !j then qsort lo !j;
      if !i < hi then qsort !i hi
    end
  in
  if len > 1 then qsort 0 (len - 1)

(* Mailbox arena, unboxed: parallel arrays instead of an array of
   [received] records. Storing a freshly allocated record into a
   long-lived array would drag every message through the write barrier
   and promote it to the major heap at the next minor collection; with
   the fields split out, the int stores are barrier-free and the
   [received] record is only materialized in [inbox_of], immediately
   before [step] consumes it — it dies young in the minor heap. *)
type 'm arena = {
  mutable from_ : int array;
  mutable edge_ : int array;
  mutable payload : 'm array;
  mutable link : int array;
  mutable len : int;
}

(* Per-graph scratch state, reused across runs on the same graph (the
   common shape: one graph, many engine invocations). Everything in
   here is monomorphic — message-typed buffers (the arenas) stay
   per-run. [stamp] makes every per-node/per-edge validity check
   monotonic across runs, so none of the O(n)/O(m) arrays is ever
   reset: a warm [acquire_scratch] is O(1). The stamp discipline
   (with [stamp_base] = the run's [stamp], [last_stamp] = [stamp_base]
   + round):

   - [sent_round.(edge*2+dir)] carried a message iff it equals
     [last_stamp] (duplicate-send cap check).
   - [s_idle.(v)]: v is *inactive* iff it equals [stamp_base]; any
     other value (0, or a stale stamp from an earlier run, both
     strictly below this run's [stamp_base]) means active — which
     makes "every node starts active" free.
   - [q_stamp.(v)]: v is already queued in [wl_nxt] for round
     [s] iff it equals [stamp_base + s] (membership dedup only; the
     worklist itself is the source of truth).
   - [hs_a]/[hs_b] stamp the [head_a]/[head_b] inbox-chain heads:
     [head.(v)] is a live chain for round [s] iff [hs.(v) =
     stamp_base + s]. Stale heads (earlier rounds, earlier runs, or a
     run cut off by a round limit) simply expire instead of being
     cleared entry-by-entry.

   Release stamps the scratch with [last_stamp + 1], strictly above
   every stamp the finished run wrote, so no stale entry can collide
   with a later run. [make_scratch] starts at 1 because 0 is the
   "active" value of a fresh [s_idle]. One slot, keyed by physical
   equality; [busy] falls back to fresh allocation under reentrancy (a
   program stepping the engine). *)
type scratch = {
  sg : Graph.t;
  sctx : ctx;
  s_idle : int array;
  q_stamp : int array;
  sent_round : int array;
  s_wl_cur : int array;
  s_wl_nxt : int array;
  head_a : int array;
  head_b : int array;
  hs_a : int array;
  hs_b : int array;
  (* Cached arena int columns (two arenas); the payload column is
     message-typed and must stay per-run, but these keep their steady-
     state capacity across runs so warm runs do a single full-size
     payload allocation and no capacity growth at all. *)
  mutable a_from : int array;
  mutable a_edge : int array;
  mutable a_link : int array;
  mutable b_from : int array;
  mutable b_edge : int array;
  mutable b_link : int array;
  mutable stamp : int;
  mutable busy : bool;
}

(* Domain-local: a nested or worker-domain run must never race the main
   domain's cached scratch. *)
let scratch_slot : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let make_scratch g =
  let n = Graph.n g in
  let m = Graph.m g in
  {
    sg = g;
    sctx = ctx_of g;
    s_idle = Array.make (max n 1) 0;
    q_stamp = Array.make (max n 1) 0;
    sent_round = Array.make (max 1 (2 * m)) (-1);
    s_wl_cur = Array.make (max n 1) 0;
    s_wl_nxt = Array.make (max n 1) 0;
    head_a = Array.make (max n 1) (-1);
    head_b = Array.make (max n 1) (-1);
    hs_a = Array.make (max n 1) 0;
    hs_b = Array.make (max n 1) 0;
    a_from = [||];
    a_edge = [||];
    a_link = [||];
    b_from = [||];
    b_edge = [||];
    b_link = [||];
    stamp = 1;
    busy = false;
  }

(* Acquire scratch for [g]: a cache hit is O(1) — every per-node array
   is stamp-guarded (see the scratch note above), so nothing is filled
   or reset. *)
let acquire_scratch g =
  let slot = Domain.DLS.get scratch_slot in
  match !slot with
  | Some s when s.sg == g && not s.busy ->
    s.busy <- true;
    s
  | _ ->
    let s = make_scratch g in
    s.busy <- true;
    (match !slot with
    | Some old when old.busy -> ()  (* keep the slot of the outer run *)
    | _ -> slot := Some s);
    s

let release_scratch s ~stamp =
  s.stamp <- stamp;
  s.busy <- false

let run_fast ?(word_cap = 4) ?max_rounds ?on_round_limit ?observer ?perf
    ?faults g p =
  let faults, max_rounds, on_round_limit =
    resolve_fault_context ~faults ~max_rounds ~on_round_limit
  in
  let observer = resolve_observer observer in
  let probe = !round_probe in
  let probe_run = probe_run_id probe in
  let t0 = Unix.gettimeofday () in
  let n = Graph.n g in
  let sc = acquire_scratch g in
  let c = sc.sctx in
  let gv = Graph.view g in
  let eu = gv.Graph.eu and ev = gv.Graph.ev in
  (* Last stamp at which each (edge, direction) carried a message;
     comparing against the current stamp replaces the reference
     engine's per-round hashtable. Stamps are monotonic across runs
     ([sc.stamp] + round), so the array never needs resetting. *)
  let sent_round = sc.sent_round in
  let stamp_base = sc.stamp in
  let last_stamp = ref stamp_base in
  (* Activity flags, stamp-guarded (see the scratch note): [v] is
     inactive iff [s_idle.(v) = stamp_base], so every node starts this
     run active without an O(n) fill. *)
  let s_idle = sc.s_idle in
  (* Double-buffered arenas: [cur] holds messages being consumed this
     round, [nxt] collects sends for the next one. [head_*.(v)] is the
     first slot index of v's inbox chain (-1 = empty). Int columns come
     from the scratch cache; payloads are message-typed, so that column
     is allocated per run (in one shot once the capacity is warm). *)
  let cur =
    ref { from_ = sc.a_from; edge_ = sc.a_edge; payload = [||]; link = sc.a_link; len = 0 }
  in
  let nxt =
    ref { from_ = sc.b_from; edge_ = sc.b_edge; payload = [||]; link = sc.b_link; len = 0 }
  in
  let dropped = ref 0 in
  let retrans = ref 0 in
  let retrans_cell = Domain.DLS.get retrans_key in
  let saved_cell = !retrans_cell in
  retrans_cell := retrans;
  (* The scratch must go back to the cache on every exit path —
     including model violations and exceptions raised by program code —
     or the slot would stay marked busy and disable reuse. Grown arena
     columns are written back so the capacity ratchets up. *)
  Fun.protect
    ~finally:(fun () ->
      retrans_cell := saved_cell;
      let a = !cur and b = !nxt in
      sc.a_from <- a.from_;
      sc.a_edge <- a.edge_;
      sc.a_link <- a.link;
      sc.b_from <- b.from_;
      sc.b_edge <- b.edge_;
      sc.b_link <- b.link;
      release_scratch sc ~stamp:(!last_stamp + 1))
  @@ fun () ->
  (* Inbox heads travel with their stamp arrays: [head.(v)] is a live
     chain for the round with stamp [s] iff [hs.(v) = s]. Stale heads
     from earlier rounds/runs expire by stamp mismatch, so neither
     array is ever cleared. *)
  let head_cur = ref sc.head_a in
  let head_nxt = ref sc.head_b in
  let hs_cur = ref sc.hs_a in
  let hs_nxt = ref sc.hs_b in
  let arena_grows = ref 0 in
  (* The payload column is the limiting one (the int columns may carry
     cached capacity from earlier runs). Its first allocation jumps
     straight to the cached capacity; [arena_grows] counts only true
     capacity growth, so it stays 0 in steady state. [fill] is the
     message being delivered: using it to seed the new payload array
     keeps the code [Obj.magic]-free (and float-array safe) without
     requiring a dummy ['m]. *)
  let grow arena (fill : 'm) =
    let old = Array.length arena.payload in
    let cap = if old = 0 then max 64 (Array.length arena.link) else 2 * old in
    let payload = Array.make cap fill in
    Array.blit arena.payload 0 payload 0 arena.len;
    arena.payload <- payload;
    if Array.length arena.link < cap then begin
      let from_ = Array.make cap 0 in
      let edge_ = Array.make cap 0 in
      let link = Array.make cap (-1) in
      Array.blit arena.from_ 0 from_ 0 arena.len;
      Array.blit arena.edge_ 0 edge_ 0 arena.len;
      Array.blit arena.link 0 link 0 arena.len;
      arena.from_ <- from_;
      arena.edge_ <- edge_;
      arena.link <- link;
      incr arena_grows
    end
  in
  (* Active-set worklist: nodes to step next round (active, or with a
     pending message). [q_stamp.(v) = next round's stamp] marks
     membership in [wl_nxt] — a pure dedup guard, never consulted for
     scheduling, so it needs no reset (stale stamps expire). *)
  let wl_cur = sc.s_wl_cur in
  let wl_nxt = sc.s_wl_nxt in
  let wl_nxt_len = ref 0 in
  let q_stamp = sc.q_stamp in
  let push_next v =
    let s1 = !last_stamp + 1 in
    if q_stamp.(v) <> s1 then begin
      q_stamp.(v) <- s1;
      wl_nxt.(!wl_nxt_len) <- v;
      incr wl_nxt_len
    end
  in
  let messages = ref 0 in
  let total_words = ref 0 in
  let max_edge_load = ref 0 in
  let steps = ref 0 in
  let skipped = ref 0 in
  let current_round = ref 0 in
  (* Per-round telemetry deltas (only consulted when a probe is set). *)
  let pm = ref 0 and pw = ref 0 and ps = ref 0 and pd = ref 0 in
  let emit_sample ~round ~active_now =
    match probe with
    | None -> ()
    | Some f ->
      f ~run:probe_run ~round
        ~messages:(!messages - !pm)
        ~words:(!total_words - !pw)
        ~steps:(!steps - !ps) ~active:active_now
        ~drops:(!dropped - !pd);
      pm := !messages;
      pw := !total_words;
      ps := !steps;
      pd := !dropped
  in
  (* Delivery is a hand-rolled recursive loop rather than [List.iter f]:
     the iterated closure would capture [sender] plus the engine state
     and be re-allocated on every call (once per stepped node). *)
  let rec deliver sender outs =
    match outs with
    | [] -> ()
    | { via; msg } :: rest ->
      (* Endpoint resolution via the precomputed endpoint arrays —
         [Graph.endpoints] would allocate a tuple per message. (An
         out-of-range edge id raises [Invalid_argument] from the array
         access, as it does in the reference engine.) *)
      let dest =
        if eu.(via) = sender then ev.(via)
        else if ev.(via) = sender then eu.(via)
        else violation "%s: node %d sent over non-incident edge %d" p.name sender via
      in
      let w = p.words msg in
      if w > word_cap then
        violation "%s: node %d sent %d-word message (cap %d)" p.name sender w word_cap;
      let key = (via * 2) + if sender < dest then 0 else 1 in
      if sent_round.(key) = !last_stamp then
        violation "%s: node %d sent twice over edge %d in one round" p.name sender via;
      sent_round.(key) <- !last_stamp;
      if w > !max_edge_load then max_edge_load := w;
      (match observer with
      | Some f -> f ~round:!current_round ~from:sender ~dest ~words:w
      | None -> ());
      incr messages;
      total_words := !total_words + w;
      (* The send happened (and was charged above); the fault plan
         decides whether it survives transit. This branch is a single
         option check on the fault-free path. *)
      let lost =
        match faults with
        | None -> false
        | Some plan -> (
          match
            Fault.fate plan ~sender ~dest ~edge:via ~round:!current_round
          with
          | None -> false
          | Some c ->
            Fault.record plan c;
            incr dropped;
            true)
      in
      if not lost then begin
        let a = !nxt in
        if a.len = Array.length a.payload then grow a msg;
        let idx = a.len in
        a.len <- idx + 1;
        a.from_.(idx) <- sender;
        a.edge_.(idx) <- via;
        a.payload.(idx) <- msg;
        (* Chain onto the destination's next-round inbox; a head whose
           stamp is not the next round's is stale and treated as empty. *)
        let s1 = !last_stamp + 1 in
        let hn = !head_nxt and hsn = !hs_nxt in
        a.link.(idx) <- (if hsn.(dest) = s1 then hn.(dest) else -1);
        hn.(dest) <- idx;
        hsn.(dest) <- s1;
        push_next dest
      end;
      deliver sender rest
  in
  (* Round 0: init. All inits run before any delivery, then deliveries
     go out in ascending node order — exactly the reference schedule.
     Every node starts active, so the first worklist is all of
     [0 .. n-1] (matching the reference engine's first scan). *)
  let init_outs = Array.make n [] in
  let states =
    Array.init n (fun v ->
        c.me <- v;
        let s, outs = p.init c in
        init_outs.(v) <- outs;
        s)
  in
  for v = 0 to n - 1 do
    deliver v init_outs.(v);
    push_next v
  done;
  emit_sample ~round:0 ~active_now:n;
  let rounds = ref 0 in
  while !wl_nxt_len > 0 && !rounds < max_rounds do
    incr rounds;
    current_round := !rounds;
    last_stamp := stamp_base + !rounds;
    (* Swap arenas, inbox heads (with their stamp arrays) and
       worklists. Nothing is cleaned: the swapped-in structures carry
       stale entries whose stamps no longer match. *)
    let a = !cur in
    cur := !nxt;
    nxt := a;
    a.len <- 0;
    let h = !head_cur in
    head_cur := !head_nxt;
    head_nxt := h;
    let hh = !hs_cur in
    hs_cur := !hs_nxt;
    hs_nxt := hh;
    let wlen = !wl_nxt_len in
    wl_nxt_len := 0;
    let cur_stamp = !last_stamp in
    let round_active = ref 0 in
    let arena = !cur in
    let heads = !head_cur in
    let hs = !hs_cur in
    (* Materialize an inbox chain as a list in delivery-prepend order
       (head slot = last delivered), exactly the reference layout. The
       chain is walked with an accumulator and reversed — a hub vertex
       on a power-law graph can hold a chain as long as its degree, so
       a non-tail walk would overflow the stack at RMAT scale. *)
    let rec collect acc idx =
      if idx < 0 then acc
      else
        collect
          ({
             from = arena.from_.(idx);
             edge = arena.edge_.(idx);
             payload = arena.payload.(idx);
           }
          :: acc)
          arena.link.(idx)
    in
    let inbox_of v =
      if hs.(v) = cur_stamp then List.rev (collect [] heads.(v)) else []
    in
    let process v =
      if
        match faults with
        | Some plan -> Fault.crashed plan ~node:v ~round:!rounds
        | None -> false
      then begin
        (* Crashed: not stepped, not re-queued. The inbox chain is
           necessarily empty (sends to it were dropped); its head, if
           any, expires by stamp. A node with a recovery window
           re-enters the worklist through the normal delivery push of
           the first message that reaches it at or after its recover
           round — identical to the reference engine, whose scan steps
           it on that same message. *)
        s_idle.(v) <- stamp_base;
        incr skipped
      end
      else begin
        let msgs = inbox_of v in
        if s_idle.(v) <> stamp_base || msgs <> [] then begin
          incr steps;
          c.me <- v;
          let s, outs, still = p.step c ~round:!rounds states.(v) msgs in
          states.(v) <- s;
          s_idle.(v) <- (if still then 0 else stamp_base);
          if still then begin
            incr round_active;
            push_next v
          end;
          deliver v outs
        end
      end
    in
    (* Nodes must step in ascending id order (bit-compatibility with
       the reference engine). Dense rounds — the norm on power-law
       frontiers — iterate vertex ids directly (the direction-
       optimizing idiom): round-r membership is exactly
       [still-active || live inbox head], the same predicate [push_next]
       enforced when filling [wl_nxt], so no materialization or sort is
       needed. Sparse rounds sort the push list in place. *)
    if 8 * wlen >= n then begin
      let members = ref 0 in
      for v = 0 to n - 1 do
        if s_idle.(v) <> stamp_base || hs.(v) = cur_stamp then begin
          incr members;
          process v
        end
      done;
      skipped := !skipped + (n - !members)
    end
    else begin
      Array.blit wl_nxt 0 wl_cur 0 wlen;
      sort_prefix wl_cur wlen;
      skipped := !skipped + (n - wlen);
      for i = 0 to wlen - 1 do
        process wl_cur.(i)
      done
    end;
    emit_sample ~round:!rounds ~active_now:!round_active
  done;
  let outcome = if !wl_nxt_len > 0 then Round_limit else Converged in
  if outcome = Round_limit && on_round_limit = `Raise then
    violation "%s: round limit %d reached without quiescence" p.name max_rounds;
  finish_perf perf ~em:em_fast ~rounds:!rounds ~steps:!steps ~skipped:!skipped
    ~messages:!messages ~words:!total_words
    ~wall:(Unix.gettimeofday () -. t0)
    ~arena_cap:(Array.length !cur.link + Array.length !nxt.link)
    ~arena_grows:!arena_grows ~dropped:!dropped ~retrans:!retrans ~domains:1
    ~barrier_wall:0.0;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      total_words = !total_words;
      max_edge_load = !max_edge_load;
      outcome;
      dropped_messages = !dropped;
      retransmissions = !retrans;
    } )

(* ------------------------------------------------------------------ *)
(* Parallel engine.

   Shards the node set across OCaml 5 domains and splits every round
   into two phases:

     1. step phase (parallel): each domain steps the worklist nodes of
        its own contiguous block, reading inboxes from its shard's
        current-round arena and buffering each node's outbox in
        [outs_arr] — no message is delivered yet, so the only shared
        writes are to per-node slots the domain owns exclusively.

     2. merge phase (sequential, main domain): stepped nodes are
        visited in ascending id order and their buffered sends pass
        through the *same* deliver logic as [run_fast] — cap checks,
        duplicate-send stamps, observer calls, fault coins, stats and
        worklist pushes all happen here, in exactly the order the
        sequential engine produces them. Delivery appends to the
        destination shard's next-round arena, so phase 1 of the next
        round is again contention-free.

   Determinism argument: [run_fast] interleaves "step v" and "deliver
   v's sends" per node, but a round-r send is only ever *consumed* in
   round r+1, and the cap stamp / observer / fault / stats effects of
   a send depend solely on previously-delivered sends of the same
   round. Splitting the round into step-all-then-deliver-all therefore
   commutes with the per-node interleaving as long as deliveries run
   in the same node order — which the merge phase does. Hence states,
   stats, observer sequence, fault accounting and the round-probe
   stream are byte-identical to [run_fast] for every domain count.
   (One caveat, exceptions: a [step] that raises in [run_fast] stops
   the round mid-scan; here the sibling nodes of the same round have
   already stepped before the lowest-numbered exception is re-raised.
   The raised exception itself is identical.)

   The barrier is a mutex/condvar rendezvous (workers sleep between
   rounds rather than spin, so domain counts above the core count
   degrade gracefully); the main domain takes segment 0 itself and
   [perf.barrier_wall] records only the time it spends waiting for
   stragglers. Fault coins are pure functions of (seed, round, edge,
   dir) and [Fault.crashed] is a pure read, so phase 1 may consult the
   plan concurrently; the mutating [Fault.record] stays in phase 2. *)

(* Per-domain peak arena words of the most recent [run_par], for ledger
   attribution (index = domain). *)
let last_par_peaks : int array ref = ref [||]
let par_arena_peaks () = Array.copy !last_par_peaks

let run_par ?(word_cap = 4) ?max_rounds ?on_round_limit ?observer ?perf ?faults
    ~domains g p =
  if domains < 1 then invalid_arg "Engine.run_par: domains must be >= 1";
  let faults, max_rounds, on_round_limit =
    resolve_fault_context ~faults ~max_rounds ~on_round_limit
  in
  let observer = resolve_observer observer in
  let probe = !round_probe in
  let probe_run = probe_run_id probe in
  let t0 = Unix.gettimeofday () in
  let n = Graph.n g in
  (* Contiguous block sharding: node v belongs to domain [v / block].
     Contiguity keeps each domain's states/active/outbox writes in its
     own cache lines, unlike a round-robin [v mod nd] layout. *)
  let nd = max 1 (min domains (max 1 n)) in
  let block = max 1 ((n + nd - 1) / nd) in
  let sc = acquire_scratch g in
  (* One cursor ctx per domain: the [me] field is mutable, so sharing
     the scratch's single ctx across concurrently-stepping workers
     would race. The records just alias the graph's CSR columns —
     a few words each. *)
  let dctxs = Array.init nd (fun _ -> ctx_of g) in
  let gv = Graph.view g in
  let eu = gv.Graph.eu and ev = gv.Graph.ev in
  let sent_round = sc.sent_round in
  let stamp_base = sc.stamp in
  let last_stamp = ref stamp_base in
  let s_idle = sc.s_idle in
  (* Per-shard double-buffered arenas. Int columns are not cached in
     the scratch (capacities depend on the shard count); they ratchet
     up within the run via [grow_par]. *)
  let fresh_arena () =
    { from_ = [||]; edge_ = [||]; payload = [||]; link = [||]; len = 0 }
  in
  let cur_arenas = ref (Array.init nd (fun _ -> fresh_arena ())) in
  let nxt_arenas = ref (Array.init nd (fun _ -> fresh_arena ())) in
  let arena_grows = ref 0 in
  let grow_par arena (fill : 'm) =
    let old = Array.length arena.payload in
    let cap = if old = 0 then 64 else 2 * old in
    let payload = Array.make cap fill in
    Array.blit arena.payload 0 payload 0 arena.len;
    arena.payload <- payload;
    let from_ = Array.make cap 0 in
    let edge_ = Array.make cap 0 in
    let link = Array.make cap (-1) in
    Array.blit arena.from_ 0 from_ 0 arena.len;
    Array.blit arena.edge_ 0 edge_ 0 arena.len;
    Array.blit arena.link 0 link 0 arena.len;
    arena.from_ <- from_;
    arena.edge_ <- edge_;
    arena.link <- link;
    incr arena_grows
  in
  let dropped = ref 0 in
  (* Per-domain retransmission counters; each worker repoints its
     domain-local cell at its own slot, and the order-independent sum
     equals the sequential backends' single counter. *)
  let dretrans = Array.init nd (fun _ -> ref 0) in
  let retrans_cell = Domain.DLS.get retrans_key in
  let saved_cell = !retrans_cell in
  retrans_cell := dretrans.(0);
  (* Worker handshake state (see barrier note above). [go_round] is the
     latest dispatched round (-1 = shut down); [done_count] counts
     workers finished with it. *)
  let mtx = Mutex.create () in
  let cond = Condition.create () in
  let go_round = ref 0 in
  let done_count = ref 0 in
  let workers = ref [||] in
  Fun.protect
    ~finally:(fun () ->
      if Array.length !workers > 0 then begin
        Mutex.lock mtx;
        go_round := -1;
        Condition.broadcast cond;
        Mutex.unlock mtx;
        Array.iter Domain.join !workers
      end;
      retrans_cell := saved_cell;
      last_par_peaks :=
        Array.init nd (fun d ->
            Array.length (!cur_arenas).(d).link
            + Array.length (!nxt_arenas).(d).link);
      release_scratch sc ~stamp:(!last_stamp + 1))
  @@ fun () ->
  let head_cur = ref sc.head_a in
  let head_nxt = ref sc.head_b in
  let hs_cur = ref sc.hs_a in
  let hs_nxt = ref sc.hs_b in
  (* Active-set worklist, as in [run_fast]; only the merge phase pushes. *)
  let wl_cur = sc.s_wl_cur in
  let wl_cur_len = ref 0 in
  let wl_nxt = sc.s_wl_nxt in
  let wl_nxt_len = ref 0 in
  let q_stamp = sc.q_stamp in
  let push_next v =
    let s1 = !last_stamp + 1 in
    if q_stamp.(v) <> s1 then begin
      q_stamp.(v) <- s1;
      wl_nxt.(!wl_nxt_len) <- v;
      incr wl_nxt_len
    end
  in
  let messages = ref 0 in
  let total_words = ref 0 in
  let max_edge_load = ref 0 in
  let steps = ref 0 in
  let skipped = ref 0 in
  let barrier_wall = ref 0.0 in
  let current_round = ref 0 in
  let pm = ref 0 and pw = ref 0 and ps = ref 0 and pd = ref 0 in
  let emit_sample ~round ~active_now =
    match probe with
    | None -> ()
    | Some f ->
      f ~run:probe_run ~round
        ~messages:(!messages - !pm)
        ~words:(!total_words - !pw)
        ~steps:(!steps - !ps) ~active:active_now
        ~drops:(!dropped - !pd);
      pm := !messages;
      pw := !total_words;
      ps := !steps;
      pd := !dropped
  in
  (* Identical to [run_fast]'s deliver except the target arena is the
     destination shard's. Merge-phase only (main domain). *)
  let rec deliver sender outs =
    match outs with
    | [] -> ()
    | { via; msg } :: rest ->
      let dest =
        if eu.(via) = sender then ev.(via)
        else if ev.(via) = sender then eu.(via)
        else violation "%s: node %d sent over non-incident edge %d" p.name sender via
      in
      let w = p.words msg in
      if w > word_cap then
        violation "%s: node %d sent %d-word message (cap %d)" p.name sender w word_cap;
      let key = (via * 2) + if sender < dest then 0 else 1 in
      if sent_round.(key) = !last_stamp then
        violation "%s: node %d sent twice over edge %d in one round" p.name sender via;
      sent_round.(key) <- !last_stamp;
      if w > !max_edge_load then max_edge_load := w;
      (match observer with
      | Some f -> f ~round:!current_round ~from:sender ~dest ~words:w
      | None -> ());
      incr messages;
      total_words := !total_words + w;
      let lost =
        match faults with
        | None -> false
        | Some plan -> (
          match
            Fault.fate plan ~sender ~dest ~edge:via ~round:!current_round
          with
          | None -> false
          | Some c ->
            Fault.record plan c;
            incr dropped;
            true)
      in
      if not lost then begin
        let a = (!nxt_arenas).(dest / block) in
        if a.len = Array.length a.payload then grow_par a msg;
        let idx = a.len in
        a.len <- idx + 1;
        a.from_.(idx) <- sender;
        a.edge_.(idx) <- via;
        a.payload.(idx) <- msg;
        let s1 = !last_stamp + 1 in
        let hn = !head_nxt and hsn = !hs_nxt in
        a.link.(idx) <- (if hsn.(dest) = s1 then hn.(dest) else -1);
        hn.(dest) <- idx;
        hsn.(dest) <- s1;
        push_next dest
      end;
      deliver sender rest
  in
  (* Step-phase outputs, owned per node (so per domain): the buffered
     outbox, and whether the node actually stepped this round. *)
  let outs_arr : 'm send list array = Array.make (max n 1) [] in
  let did_step = Array.make (max n 1) false in
  (* Per-domain segment results and exception slots. *)
  let seg = Array.make (nd + 1) 0 in
  let d_steps = Array.make nd 0 in
  let d_skipped = Array.make nd 0 in
  let d_active = Array.make nd 0 in
  let d_exn : exn option array = Array.make nd None in
  (* Round 0: init, sequential (it is a single pass of program code
     with immediate delivery, same as the sequential backends). *)
  let init_outs = Array.make n [] in
  let states =
    let dc = dctxs.(0) in
    Array.init n (fun v ->
        dc.me <- v;
        let s, outs = p.init dc in
        init_outs.(v) <- outs;
        s)
  in
  for v = 0 to n - 1 do
    deliver v init_outs.(v);
    push_next v
  done;
  emit_sample ~round:0 ~active_now:n;
  (* Phase 1 body: step the worklist slice [seg.(d) .. seg.(d+1)-1].
     Every touched per-node slot (states, s_idle, outs_arr, did_step)
     belongs to this domain's block exclusively; the barrier mutex
     publishes the writes to the main domain. Inbox heads are read-only
     here — consumed chains expire by stamp instead of being cleared. *)
  let process_segment d r =
    let heads = !head_cur and hs = !hs_cur in
    let cur_stamp = !last_stamp in
    let dc = dctxs.(d) in
    let arena = (!cur_arenas).(d) in
    let rec collect acc idx =
      if idx < 0 then acc
      else
        collect
          ({
             from = arena.from_.(idx);
             edge = arena.edge_.(idx);
             payload = arena.payload.(idx);
           }
          :: acc)
          arena.link.(idx)
    in
    let inbox_of v =
      if hs.(v) = cur_stamp then List.rev (collect [] heads.(v)) else []
    in
    let st = ref 0 and sk = ref 0 and act = ref 0 in
    for i = seg.(d) to seg.(d + 1) - 1 do
      let v = wl_cur.(i) in
      if
        match faults with
        | Some plan -> Fault.crashed plan ~node:v ~round:r
        | None -> false
      then begin
        s_idle.(v) <- stamp_base;
        did_step.(v) <- false;
        incr sk
      end
      else begin
        let msgs = inbox_of v in
        if s_idle.(v) <> stamp_base || msgs <> [] then begin
          incr st;
          dc.me <- v;
          let s, outs, still = p.step dc ~round:r states.(v) msgs in
          states.(v) <- s;
          s_idle.(v) <- (if still then 0 else stamp_base);
          outs_arr.(v) <- outs;
          did_step.(v) <- true;
          if still then incr act
        end
        else did_step.(v) <- false
      end
    done;
    d_steps.(d) <- !st;
    d_skipped.(d) <- !sk;
    d_active.(d) <- !act
  in
  let worker d () =
    Domain.DLS.get retrans_key := dretrans.(d);
    let next = ref 1 in
    let quit = ref false in
    while not !quit do
      Mutex.lock mtx;
      while !go_round <> -1 && !go_round < !next do
        Condition.wait cond mtx
      done;
      let cmd = !go_round in
      Mutex.unlock mtx;
      if cmd = -1 then quit := true
      else begin
        (try process_segment d cmd
         with e -> d_exn.(d) <- Some e);
        Mutex.lock mtx;
        incr done_count;
        Condition.broadcast cond;
        Mutex.unlock mtx;
        next := cmd + 1
      end
    done
  in
  if nd > 1 then
    workers := Array.init (nd - 1) (fun i -> Domain.spawn (worker (i + 1)));
  let rounds = ref 0 in
  while !wl_nxt_len > 0 && !rounds < max_rounds do
    incr rounds;
    let r = !rounds in
    current_round := r;
    last_stamp := stamp_base + r;
    (* Swap per-shard arenas, inbox heads and worklists. *)
    let a = !cur_arenas in
    cur_arenas := !nxt_arenas;
    nxt_arenas := a;
    Array.iter (fun ar -> ar.len <- 0) a;
    let h = !head_cur in
    head_cur := !head_nxt;
    head_nxt := h;
    let hh = !hs_cur in
    hs_cur := !hs_nxt;
    hs_nxt := hh;
    let wlen = !wl_nxt_len in
    wl_nxt_len := 0;
    (* Same dense/sparse policy as [run_fast], but the worklist is
       always materialized (sorted ascending) because the segment
       boundaries below need it. Dense rounds rebuild it from the
       membership predicate [still-active || live inbox head] — the
       exact set [push_next] queued — instead of sorting the unordered
       push list. *)
    (if 8 * wlen >= n then begin
       let hs = !hs_cur and cur_stamp = !last_stamp in
       let k = ref 0 in
       for v = 0 to n - 1 do
         if s_idle.(v) <> stamp_base || hs.(v) = cur_stamp then begin
           wl_cur.(!k) <- v;
           incr k
         end
       done;
       wl_cur_len := !k
     end
     else begin
       Array.blit wl_nxt 0 wl_cur 0 wlen;
       wl_cur_len := wlen;
       sort_prefix wl_cur wlen
     end);
    let wlen = !wl_cur_len in
    skipped := !skipped + (n - wlen);
    (* Segment boundaries: seg.(d) = first worklist index in shard d. *)
    let d = ref 0 in
    for i = 0 to wlen - 1 do
      let sh = wl_cur.(i) / block in
      while !d < sh do
        incr d;
        seg.(!d) <- i
      done
    done;
    while !d < nd do
      incr d;
      seg.(!d) <- wlen
    done;
    (* Phase 1: dispatch and join. *)
    if nd > 1 then begin
      Mutex.lock mtx;
      done_count := 0;
      go_round := r;
      Condition.broadcast cond;
      Mutex.unlock mtx
    end;
    (try process_segment 0 r with e -> d_exn.(0) <- Some e);
    if nd > 1 then begin
      let tb = Unix.gettimeofday () in
      Mutex.lock mtx;
      while !done_count < nd - 1 do
        Condition.wait cond mtx
      done;
      Mutex.unlock mtx;
      barrier_wall := !barrier_wall +. (Unix.gettimeofday () -. tb)
    end;
    Array.iter (function Some e -> raise e | None -> ()) d_exn;
    let round_active = ref 0 in
    for d = 0 to nd - 1 do
      steps := !steps + d_steps.(d);
      skipped := !skipped + d_skipped.(d);
      round_active := !round_active + d_active.(d)
    done;
    (* Phase 2: deterministic merge in ascending node order, exactly
       [run_fast]'s per-node push-then-deliver sequence. *)
    for i = 0 to wlen - 1 do
      let v = wl_cur.(i) in
      if did_step.(v) then begin
        if s_idle.(v) <> stamp_base then push_next v;
        deliver v outs_arr.(v);
        outs_arr.(v) <- []
      end
    done;
    emit_sample ~round:r ~active_now:!round_active
  done;
  let outcome = if !wl_nxt_len > 0 then Round_limit else Converged in
  if outcome = Round_limit && on_round_limit = `Raise then
    violation "%s: round limit %d reached without quiescence" p.name max_rounds;
  let retrans = Array.fold_left (fun acc r -> acc + !r) 0 dretrans in
  let arena_cap =
    let total = ref 0 in
    for d = 0 to nd - 1 do
      total :=
        !total
        + Array.length (!cur_arenas).(d).link
        + Array.length (!nxt_arenas).(d).link
    done;
    !total
  in
  finish_perf perf ~em:em_par ~rounds:!rounds ~steps:!steps ~skipped:!skipped
    ~messages:!messages ~words:!total_words
    ~wall:(Unix.gettimeofday () -. t0)
    ~arena_cap ~arena_grows:!arena_grows ~dropped:!dropped ~retrans ~domains:nd
    ~barrier_wall:!barrier_wall;
  ( states,
    {
      rounds = !rounds;
      messages = !messages;
      total_words = !total_words;
      max_edge_load = !max_edge_load;
      outcome;
      dropped_messages = !dropped;
      retransmissions = retrans;
    } )

(* ------------------------------------------------------------------ *)

type backend = Fast | Reference | Par of int

let backend = ref Fast
let set_backend b = backend := b
let current_backend () = !backend

let with_backend b f =
  let old = !backend in
  backend := b;
  Fun.protect ~finally:(fun () -> backend := old) f

let run ?word_cap ?max_rounds ?on_round_limit ?observer ?perf ?faults g p =
  match !backend with
  | Fast ->
    run_fast ?word_cap ?max_rounds ?on_round_limit ?observer ?perf ?faults g p
  | Reference ->
    run_reference ?word_cap ?max_rounds ?on_round_limit ?observer ?perf ?faults
      g p
  | Par domains ->
    run_par ?word_cap ?max_rounds ?on_round_limit ?observer ?perf ?faults
      ~domains g p

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "rounds=%d msgs=%d words=%d max_edge_load=%d outcome=%s"
    s.rounds s.messages s.total_words s.max_edge_load
    (match s.outcome with
    | Converged -> "converged"
    | Round_limit -> "round-limit");
  if s.dropped_messages > 0 || s.retransmissions > 0 then
    Format.fprintf ppf " dropped=%d retrans=%d" s.dropped_messages
      s.retransmissions
