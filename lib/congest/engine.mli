(** Synchronous CONGEST-model simulator.

    A network is a weighted graph in which every vertex hosts a
    processor. Computation proceeds in synchronous rounds; in each
    round a vertex may send one message of at most [word_cap] machine
    words (a word models O(log n) bits) over each incident edge, and
    receives in the next round everything sent to it. The engine
    *enforces* the model: a program that sends two messages over one
    edge in a round, or an oversized message, crashes with
    [Congest_violation] — so passing the test-suite certifies model
    compliance.

    Programs are written as per-node state machines over a restricted
    local view ({!ctx}): a node knows [n], its own id, its incident
    edges and their weights, and nothing else.

    Three observationally identical execution paths exist (see
    DESIGN.md, "Engine internals" and "Parallel engine"): {!run_fast},
    the default — arena mailboxes, generation-stamped cap tracking and
    an active-set scheduler — {!run_par}, which shards the node-step
    phase of every round across OCaml 5 domains with a deterministic
    sequential merge, and {!run_reference}, the simple list-based
    specification engine kept as the differential-testing baseline.
    {!run} dispatches on the process-wide {!backend}. *)

exception Congest_violation of string

(** Local view available to a node's program: [n], this node's id
    [me], its incident edges (via the [ctx_*] accessors below) and
    their weights.

    The record is a {e cursor}: the engine keeps one per run (not one
    per node) and repoints [me] before each [init]/[step] call. It
    aliases the graph's CSR columns, so the per-node neighbor view
    costs no resident memory at all — the accessors index the shared
    columns directly. Consequences for programs: the ctx is only valid
    for the duration of the [init]/[step] call it was passed to (do
    not store it in the node state or a closure that outlives the
    call), and all fields are read-only ([private] — construction and
    the [me] cursor belong to the engine). *)
type ctx = private {
  n : int;  (** number of vertices in the network *)
  mutable me : int;  (** this node's id *)
  weight : int -> float;  (** weight of an incident edge *)
  off : int array;
  adj_eid : int array;
  adj_dst : int array;
  mutable nbr_rows : (int * int) array array;
      (** memo for the deprecated {!ctx_neighbors}; engine-internal *)
}

(** Number of edges incident to this node. *)
val ctx_degree : ctx -> int

(** [ctx_edge ctx i] is the edge id of this node's [i]-th incident
    edge (ascending edge-id order, [0 <= i < ctx_degree ctx]).
    @raise Invalid_argument if [i] is out of range. *)
val ctx_edge : ctx -> int -> int

(** [ctx_peer ctx i] is the neighbor at the other end of the [i]-th
    incident edge. @raise Invalid_argument if [i] is out of range. *)
val ctx_peer : ctx -> int -> int

(** [ctx_neighbor ctx i] is [(ctx_edge ctx i, ctx_peer ctx i)].
    Allocates the pair; prefer the split accessors or the iterators on
    hot paths. @raise Invalid_argument if [i] is out of range. *)
val ctx_neighbor : ctx -> int -> int * int

(** [ctx_iter_neighbors ctx f] applies [f edge_id neighbor] to every
    incident edge in ascending edge-id order — allocation-free, the
    engine-side analogue of [Graph.iter_neighbors]. *)
val ctx_iter_neighbors : ctx -> (int -> int -> unit) -> unit

(** [ctx_fold_neighbors ctx f acc] folds [f acc edge_id neighbor] over
    the incident edges in ascending edge-id order. The idiomatic way
    to build a send list in order:
    [List.rev (ctx_fold_neighbors ctx (fun acc e _ -> {via=e; msg} :: acc) [])]. *)
val ctx_fold_neighbors : ctx -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** Deprecated boxed tuple view: the array of [(edge_id, neighbor)]
    pairs for this node, built lazily from the CSR columns on first
    access and memoized. Like [Graph.neighbors], it survives only for
    external API compatibility — in-tree code must use the accessors
    above (enforced by a grep gate in the test suite), because forcing
    the rows for all nodes costs ~[8n + 8m] words of boxed memory
    (~750 MB at RMAT scale 20). Do not mutate the returned array. *)
val ctx_neighbors : ctx -> (int * int) array

(** A message received on [edge] from neighbour [from]. *)
type 'm received = { from : int; edge : int; payload : 'm }

(** A message to send over incident edge [via]. *)
type 'm send = { via : int; msg : 'm }

(** A per-node program.

    [init ctx] gives the initial state and round-0 sends. [step] is
    called on every round in which the node has incoming messages or
    declared itself active; it returns the new state, outgoing
    messages, and whether the node remains active (an inactive node is
    not stepped again until a message arrives — state is kept).

    [words m] is the size of message [m] in machine words, used for
    model enforcement and traffic statistics. *)
type ('s, 'm) program = {
  name : string;
  words : 'm -> int;
  init : ctx -> 's * 'm send list;
  step : ctx -> round:int -> 's -> 'm received list -> 's * 'm send list * bool;
}

(** Optional per-message observer, called at send time (delivery is
    the following round). Used for debugging protocols and for traffic
    analyses; see {!val:run}. *)
type observer = round:int -> from:int -> dest:int -> words:int -> unit

(** Per-round telemetry sample, called by both backends at the end of
    every executed round with that round's *deltas*: messages and
    words sent, node steps executed, nodes still active after the
    round, and fault-dropped messages. Round 0 is the init round
    (steps 0, active = n). [run] is a sequence number distinguishing
    consecutive engine runs (reset by {!set_round_probe}). The
    sample stream is part of the backends' observational contract:
    for any program, {!run_fast} and {!run_reference} produce
    identical streams. *)
type round_probe =
  run:int ->
  round:int ->
  messages:int ->
  words:int ->
  steps:int ->
  active:int ->
  drops:int ->
  unit

(** Install (or clear) the process-ambient round probe. Installing
    resets the run sequence number. When unset the per-round cost is
    one [ref] read — telemetry is free when disabled. Used by
    {!Telemetry}; prefer {!Telemetry.record} over calling this
    directly. *)
val set_round_probe : round_probe option -> unit

(** Install (or clear) a process-ambient message observer, called for
    every message of every run *in addition to* any per-run
    [?observer]. Resolved once per run: zero per-message cost when
    unset. Used by {!Telemetry} to aggregate link loads. *)
val set_ambient_observer : observer option -> unit

(** How a run ended: quiescence, or the [max_rounds] cap. *)
type outcome = Converged | Round_limit

type stats = {
  rounds : int;  (** rounds until quiescence (or the cap) *)
  messages : int;  (** total messages sent (lost ones included) *)
  total_words : int;  (** total message volume in words *)
  max_edge_load : int;  (** max words on one edge-direction in a round *)
  outcome : outcome;  (** whether the run converged or hit [max_rounds] *)
  dropped_messages : int;  (** messages lost to the fault plan *)
  retransmissions : int;  (** resends reported via {!count_retransmission} *)
}

(** Engine-level performance counters, accumulated across runs.
    [steps] counts node-step invocations; [skipped] counts node-rounds
    the scheduler avoided (quiescent nodes in a live round); [wall] is
    seconds spent inside the engine; [arena_cap] is the peak mailbox
    arena capacity in slots and [arena_grows] the number of growth
    events (0 once the arena reaches steady state).
    [dropped_messages]/[retransmissions] separate fault-injected
    losses and protocol resends from clean traffic ([messages] counts
    every send, lost or not). [domains] is the maximum domain count
    any contributing run executed with (1 for the sequential backends,
    0 if no run contributed); [barrier_wall] is seconds the {!run_par}
    main domain spent waiting on the end-of-step-phase barrier —
    [barrier_wall / wall] close to 1 means the shards are imbalanced
    or the machine has fewer cores than domains. *)
type perf = {
  mutable runs : int;
  mutable rounds : int;
  mutable steps : int;
  mutable skipped : int;
  mutable messages : int;
  mutable words : int;
  mutable wall : float;
  mutable arena_cap : int;
  mutable arena_grows : int;
  mutable dropped_messages : int;
  mutable retransmissions : int;
  mutable domains : int;
  mutable barrier_wall : float;
}

val create_perf : unit -> perf
val copy_perf : perf -> perf

(** [add_perf ~into p] accumulates [p] into [into]. *)
val add_perf : into:perf -> perf -> unit

(** Process-wide cumulative counters over every engine run. Algorithms
    attribute simulator work to a phase by snapshotting before and
    diffing after — no need to thread a [perf] through primitives:
    {[
      let before = Engine.snapshot_totals () in
      ... (* any number of Engine.run calls *)
      Ledger.attach_perf ledger (Engine.totals_since before)
    ]} *)
val totals : perf

val snapshot_totals : unit -> perf

(** [totals_since before] is the delta of {!totals} against a
    {!snapshot_totals} snapshot. *)
val totals_since : perf -> perf

(** Fraction of node-rounds the active-set scheduler skipped.
    Total guarded: 0.0 when nothing was scanned (never [nan]). *)
val skip_ratio : perf -> float

(** Throughput rates. Guarded against zero or sub-resolution [wall]
    (smoke runs can finish inside one clock tick): both return 0.0
    rather than [inf]/[nan] when the denominator is not positive. *)
val rounds_per_sec : perf -> float

val messages_per_sec : perf -> float
val pp_perf : Format.formatter -> perf -> unit

(** [run g p] executes [p] on network [g] until quiescence (no active
    node and no message in flight) or [max_rounds].

    @param word_cap maximum words per message (default 4 ≈ a constant
           number of O(log n)-bit words, as in the paper).
    @param max_rounds round cap (default 10 million).
    @param on_round_limit what to do when [max_rounds] is hit without
           quiescence: [`Raise] (default) raises [Congest_violation] —
           a capped run is a bug or an explicit experiment, never a
           silent result — [`Mark] returns normally with
           [stats.outcome = Round_limit].
    @param observer called once per message sent.
    @param perf if given, accumulates this run's engine counters.
    @param faults a deterministic chaos plan ({!Fault.plan}) applied at
           delivery time. A doomed message is still *sent* — it counts
           in [messages]/[total_words]/[max_edge_load] and triggers the
           observer (the link was used) — but never reaches its
           destination's inbox; each loss increments
           [stats.dropped_messages] and the plan's per-cause counters.
           A crash-stopped node executes rounds before its crash round
           normally and is then never stepped again. When a plan is
           given, [on_round_limit] defaults to [`Mark] (faulty runs
           legitimately stall) and [Fault.begin_run] is called on the
           plan. Both backends apply the plan identically, so the
           differential guarantee extends to faulty executions.
    @raise Congest_violation on a model violation.
    @return final states (indexed by vertex) and statistics. *)
val run :
  ?word_cap:int ->
  ?max_rounds:int ->
  ?on_round_limit:[ `Raise | `Mark ] ->
  ?observer:observer ->
  ?perf:perf ->
  ?faults:Fault.plan ->
  Ln_graph.Graph.t ->
  ('s, 'm) program ->
  's array * stats

(** The throughput engine (arena mailboxes, generation-stamped cap
    tracking, active-set scheduling). Same signature and observable
    behaviour as {!run_reference}. *)
val run_fast :
  ?word_cap:int ->
  ?max_rounds:int ->
  ?on_round_limit:[ `Raise | `Mark ] ->
  ?observer:observer ->
  ?perf:perf ->
  ?faults:Fault.plan ->
  Ln_graph.Graph.t ->
  ('s, 'm) program ->
  's array * stats

(** The multicore engine: nodes are sharded into [domains] contiguous
    blocks, each round's node-step phase runs in parallel (one OCaml 5
    domain per block, the calling domain takes block 0), and the
    buffered outboxes are then merged sequentially in ascending node
    order through the exact delivery logic of {!run_fast} — so states,
    stats, [Congest_violation] attribution, observer call sequence,
    fault accounting and the round-probe stream are byte-identical to
    {!run_fast} for {i every} domain count. See DESIGN.md "Parallel
    engine" for the sharding layout, barrier protocol and determinism
    argument. [domains] below 1 is [Invalid_argument]; counts above
    the node count are clamped. One divergence: if a [step] raises, the
    other nodes of that round may already have stepped before the
    exception (of the lowest raising node) is re-raised, whereas the
    sequential backends stop mid-round — states are discarded either
    way, but programs with external side effects can observe the extra
    steps. Worker domains are spawned per run and joined on every exit
    path. Per-domain peak arena sizes are exposed via
    {!par_arena_peaks}. *)
val run_par :
  ?word_cap:int ->
  ?max_rounds:int ->
  ?on_round_limit:[ `Raise | `Mark ] ->
  ?observer:observer ->
  ?perf:perf ->
  ?faults:Fault.plan ->
  domains:int ->
  Ln_graph.Graph.t ->
  ('s, 'm) program ->
  's array * stats

(** Per-domain peak mailbox-arena capacities (in slots, both buffers)
    of the most recent {!run_par} in this process, indexed by domain.
    [[||]] before any parallel run. Recorded by the CLI into ledger
    notes so parallel traces attribute arena memory per shard. *)
val par_arena_peaks : unit -> int array

(** The accounting-strict specification engine (per-destination list
    inboxes, hashtable duplicate tracking, full O(n) scan per round).
    Differential baseline: for any program, states, stats and the
    observer call sequence must be identical to {!run_fast}'s. *)
val run_reference :
  ?word_cap:int ->
  ?max_rounds:int ->
  ?on_round_limit:[ `Raise | `Mark ] ->
  ?observer:observer ->
  ?perf:perf ->
  ?faults:Fault.plan ->
  Ln_graph.Graph.t ->
  ('s, 'm) program ->
  's array * stats

(** [with_faults plan f] runs [f ()] with [plan] as the ambient fault
    plan: every {!run} inside [f] that is not given an explicit
    [?faults] uses [plan] (and, if [max_rounds] is given, that round
    cap with [`Mark]). Like {!with_backend}, this lets the chaos
    harness drive whole algorithm families through a fault plan
    without touching call sites. Restores the previous ambient plan on
    exit, also on exceptions. *)
val with_faults : ?max_rounds:int -> Fault.plan -> (unit -> 'a) -> 'a

(** Attribute one protocol-level retransmission to the engine run in
    progress (innermost run if nested). Called by {!Reliable.lift}ed
    programs when they resend unacknowledged payloads; shows up as
    [stats.retransmissions] and in [perf]. A no-op outside a run. *)
val count_retransmission : unit -> unit

(** Which implementation {!run} dispatches to (default [Fast]).
    [Par d] dispatches to {!run_par} with [d] domains. The switch lets
    the differential checker (and the CLI's [--domains] flag) drive
    every algorithm in the library through any path without touching
    call sites. *)
type backend = Fast | Reference | Par of int

val set_backend : backend -> unit
val current_backend : unit -> backend

(** [with_backend b f] runs [f ()] with the backend set to [b],
    restoring the previous backend afterwards (also on exceptions). *)
val with_backend : backend -> (unit -> 'a) -> 'a

val pp_stats : Format.formatter -> stats -> unit
