(** Deterministic fault injection for the CONGEST engine.

    A {!plan} is a seed-replayable description of the chaos applied to
    a run: per-message random drops, link failures over round windows,
    and node crashes — crash-stop, or crash-*recovery* over a round
    window. The engine consults the plan at delivery time (see
    {!Engine.run}'s [?faults] parameter); all three engine backends
    apply it identically (the crash predicate {!crashed} is their
    single point of truth), so the differential-testing guarantee
    extends to faulty executions, including crash-recovery schedules.

    Determinism: the random-drop coin for a message is a pure hash of
    [(seed, run, round, edge, direction)] — no hidden [Random] state —
    so a plan replays the exact same fault schedule on the exact same
    program, regardless of backend or of the order in which messages
    are delivered inside a round. Each engine run advances the plan's
    run counter (so consecutive runs of a multi-phase algorithm see
    independent drop patterns); call {!reset} to replay a plan from
    its initial state. *)

(** Why a message was lost. *)
type cause =
  | Random_drop  (** the per-message drop coin *)
  | Link_down  (** a scheduled link failure window covered the send *)
  | Crash  (** the sender or the receiver was down (crashed) *)

(** A link failure: edge [edge] is down for sends in rounds
    [from_round <= r < until_round]; [None] means permanent. *)
type link_failure = { edge : int; from_round : int; until_round : int option }

(** A node crash: [node] is down for rounds
    [crash_round <= r < recover_round]. [recover_round = None] is
    classic crash-stop (the node halts forever). With
    [recover_round = Some r] the node *recovers* at round [r]: its
    pre-crash state is intact (durable memory), but every message
    addressed to it while down was lost, it was never stepped, and it
    sent nothing. A recovered node is woken by the next message that
    reaches it — it does not resume sending spontaneously (its
    engine-level activity flag was cleared by the crash). *)
type crash = { node : int; crash_round : int; recover_round : int option }

(** Per-cause drop counters for the last engine run under the plan. *)
type counts = { random_drops : int; link_drops : int; crash_drops : int }

val total : counts -> int

type plan

(** [make ~seed ()] builds a plan, validating the schedule eagerly: a
    malformed entry raises [Invalid_argument] with a pinned message
    naming the offending id and window instead of silently compiling
    to a dead window. Rejected: [drop_prob] outside [[0, 1)], negative
    ids or rounds, empty link windows ([until_round <= from_round]),
    empty crash windows ([recover_round <= crash_round]), more than
    one crash entry for the same node, and — when [?graph] is given —
    edge ids [>= m] or node ids [>= n].

    @param drop_prob per-message drop probability (default 0; must be
           in [[0, 1)]).
    @param drop_until rounds [>= drop_until] are exempt from random
           drops (default: never exempt). Bounding the chaos window
           guarantees protocols eventually see a clean network.
    @param link_failures scheduled link-failure windows.
    @param crashes [(node, round)] crash-stop failures: sugar for a
           {!crash} with [recover_round = None]. The node executes
           rounds [< round] normally and then halts — it is never
           stepped again, sends nothing and everything addressed to it
           is dropped. [round = 0] suppresses even its initial sends.
    @param crash_windows crash-recovery windows (may be mixed with
           [crashes], but each node may crash at most once).
    @param graph when provided, edge and node ids are range-checked
           against it. *)
val make :
  ?drop_prob:float ->
  ?drop_until:int ->
  ?link_failures:link_failure list ->
  ?crashes:(int * int) list ->
  ?crash_windows:crash list ->
  ?graph:Ln_graph.Graph.t ->
  seed:int ->
  unit ->
  plan

val seed : plan -> int

(** {2 Engine-facing hooks} *)

(** [begin_run p] is called by the engine at the start of each run: it
    advances the run counter (decorrelating drop coins across runs)
    and clears the per-run {!counts}. *)
val begin_run : plan -> unit

(** [reset p] rewinds the run counter and counters, so the next run
    replays the plan's very first fault schedule. Used when driving
    the same plan through both engine backends. *)
val reset : plan -> unit

(** [crashed p ~node ~round] — is [node] down at [round]? True inside
    a crash window, false again from its [recover_round] on. *)
val crashed : plan -> node:int -> round:int -> bool

(** [fate p ~sender ~dest ~edge ~round] decides whether a message sent
    over [edge] in [round] (delivered in [round + 1]) is lost, and
    why. Pure in the plan's current run counter. A message sent the
    round before the destination recovers is delivered. *)
val fate :
  plan -> sender:int -> dest:int -> edge:int -> round:int -> cause option

(** [record p c] increments the per-run counter for cause [c]; called
    by the engine for each message it drops. *)
val record : plan -> cause -> unit

(** Drop counters for the current (last) run. *)
val counts : plan -> counts

(** {2 Post-run analysis} *)

(** [surviving_node p v] — [v] has no *permanent* crash under [p]
    (crash-recovery windows heal, so the node survives and certifiers
    hold it to the same standard as an untouched node). *)
val surviving_node : plan -> int -> bool

(** [surviving_edge p e] — [e] has no permanent failure under [p]
    (transient windows heal, so the edge survives). *)
val surviving_edge : plan -> int -> bool

(** A compact, replayable one-line description of the plan
    (seed, drop probability, failure/crash schedules). *)
val describe : plan -> string

val pp : Format.formatter -> plan -> unit
