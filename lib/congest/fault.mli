(** Deterministic fault injection for the CONGEST engine.

    A {!plan} is a seed-replayable description of the chaos applied to
    a run: per-message random drops, link failures over round windows,
    and crash-stop node failures. The engine consults the plan at
    delivery time (see {!Engine.run}'s [?faults] parameter); both
    engine backends apply it identically, so the differential-testing
    guarantee extends to faulty executions.

    Determinism: the random-drop coin for a message is a pure hash of
    [(seed, run, round, edge, direction)] — no hidden [Random] state —
    so a plan replays the exact same fault schedule on the exact same
    program, regardless of backend or of the order in which messages
    are delivered inside a round. Each engine run advances the plan's
    run counter (so consecutive runs of a multi-phase algorithm see
    independent drop patterns); call {!reset} to replay a plan from
    its initial state. *)

(** Why a message was lost. *)
type cause =
  | Random_drop  (** the per-message drop coin *)
  | Link_down  (** a scheduled link failure window covered the send *)
  | Crash  (** the sender or the receiver had crash-stopped *)

(** A link failure: edge [edge] is down for sends in rounds
    [from_round <= r < until_round]; [None] means permanent. *)
type link_failure = { edge : int; from_round : int; until_round : int option }

(** Per-cause drop counters for the last engine run under the plan. *)
type counts = { random_drops : int; link_drops : int; crash_drops : int }

val total : counts -> int

type plan

(** [make ~seed ()] builds a plan.

    @param drop_prob per-message drop probability (default 0; must be
           in [[0, 1)]).
    @param drop_until rounds [>= drop_until] are exempt from random
           drops (default: never exempt). Bounding the chaos window
           guarantees protocols eventually see a clean network.
    @param link_failures scheduled link-failure windows.
    @param crashes [(node, round)] crash-stop failures: the node
           executes rounds [< round] normally and then halts — it is
           never stepped again, sends nothing and everything addressed
           to it is dropped. [round = 0] suppresses even its initial
           sends. *)
val make :
  ?drop_prob:float ->
  ?drop_until:int ->
  ?link_failures:link_failure list ->
  ?crashes:(int * int) list ->
  seed:int ->
  unit ->
  plan

val seed : plan -> int

(** {2 Engine-facing hooks} *)

(** [begin_run p] is called by the engine at the start of each run: it
    advances the run counter (decorrelating drop coins across runs)
    and clears the per-run {!counts}. *)
val begin_run : plan -> unit

(** [reset p] rewinds the run counter and counters, so the next run
    replays the plan's very first fault schedule. Used when driving
    the same plan through both engine backends. *)
val reset : plan -> unit

(** [crashed p ~node ~round] — has [node] crash-stopped by [round]? *)
val crashed : plan -> node:int -> round:int -> bool

(** [fate p ~sender ~dest ~edge ~round] decides whether a message sent
    over [edge] in [round] (delivered in [round + 1]) is lost, and
    why. Pure in the plan's current run counter. *)
val fate :
  plan -> sender:int -> dest:int -> edge:int -> round:int -> cause option

(** [record p c] increments the per-run counter for cause [c]; called
    by the engine for each message it drops. *)
val record : plan -> cause -> unit

(** Drop counters for the current (last) run. *)
val counts : plan -> counts

(** {2 Post-run analysis} *)

(** [surviving_node p v] — [v] never crashes under [p]. *)
val surviving_node : plan -> int -> bool

(** [surviving_edge p e] — [e] has no permanent failure under [p]
    (transient windows heal, so the edge survives). *)
val surviving_edge : plan -> int -> bool

(** A compact, replayable one-line description of the plan
    (seed, drop probability, failure/crash schedules). *)
val describe : plan -> string

val pp : Format.formatter -> plan -> unit
