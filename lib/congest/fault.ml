module Graph = Ln_graph.Graph

type cause = Random_drop | Link_down | Crash

type link_failure = { edge : int; from_round : int; until_round : int option }

type crash = { node : int; crash_round : int; recover_round : int option }

type counts = { random_drops : int; link_drops : int; crash_drops : int }

let total c = c.random_drops + c.link_drops + c.crash_drops

type plan = {
  seed : int;
  drop_prob : float;
  drop_until : int;
  link_failures : link_failure array;
  crashes : crash array;
  mutable run : int;
  mutable random_drops : int;
  mutable link_drops : int;
  mutable crash_drops : int;
}

(* Validation errors carry the offending ids and bounds, and their
   wording is pinned by test_fault.ml: a malformed plan must fail
   loudly at [make] time, not run as a silently dead window. *)
let fail fmt = Printf.ksprintf invalid_arg fmt

let make ?(drop_prob = 0.0) ?(drop_until = max_int) ?(link_failures = [])
    ?(crashes = []) ?(crash_windows = []) ?graph ~seed () =
  if drop_prob < 0.0 || drop_prob >= 1.0 then
    invalid_arg "Fault.make: drop_prob must be in [0, 1)";
  let n, m =
    match graph with
    | Some g -> (Graph.n g, Graph.m g)
    | None -> (max_int, max_int)
  in
  List.iter
    (fun f ->
      if f.edge < 0 || f.from_round < 0 then
        fail "Fault.make: link failure on edge %d at round %d is negative"
          f.edge f.from_round;
      if f.edge >= m then
        fail "Fault.make: link-failure edge %d out of range (m=%d)" f.edge m;
      match f.until_round with
      | Some u when u <= f.from_round ->
        fail "Fault.make: link %d failure window [%d,%d) is empty" f.edge
          f.from_round u
      | _ -> ())
    link_failures;
  let crashes =
    List.map
      (fun (v, r) -> { node = v; crash_round = r; recover_round = None })
      crashes
    @ crash_windows
  in
  List.iter
    (fun c ->
      if c.node < 0 || c.crash_round < 0 then
        fail "Fault.make: crash of node %d at round %d is negative" c.node
          c.crash_round;
      if c.node >= n then
        fail "Fault.make: crash node %d out of range (n=%d)" c.node n;
      match c.recover_round with
      | Some r when r <= c.crash_round ->
        fail "Fault.make: crash window [%d,%d) of node %d is empty"
          c.crash_round r c.node
      | _ -> ())
    crashes;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.node then
        fail "Fault.make: duplicate crash of node %d" c.node;
      Hashtbl.add seen c.node ())
    crashes;
  {
    seed;
    drop_prob;
    drop_until;
    link_failures = Array.of_list link_failures;
    crashes = Array.of_list crashes;
    run = 0;
    random_drops = 0;
    link_drops = 0;
    crash_drops = 0;
  }

let seed p = p.seed

let clear_counts p =
  p.random_drops <- 0;
  p.link_drops <- 0;
  p.crash_drops <- 0

let begin_run p =
  p.run <- p.run + 1;
  clear_counts p

let reset p =
  p.run <- 0;
  clear_counts p

let crashed p ~node ~round =
  let a = p.crashes in
  let len = Array.length a in
  let rec go i =
    if i >= len then false
    else
      let c = a.(i) in
      (c.node = node && c.crash_round <= round
      && match c.recover_round with None -> true | Some r -> round < r)
      || go (i + 1)
  in
  go 0

let link_down p ~edge ~round =
  let a = p.link_failures in
  let len = Array.length a in
  let rec go i =
    if i >= len then false
    else
      let f = a.(i) in
      (f.edge = edge && f.from_round <= round
      && match f.until_round with None -> true | Some u -> round < u)
      || go (i + 1)
  in
  go 0

(* Splitmix-style mixer: the drop coin is a pure function of the plan
   seed, the run counter and the message's (round, edge, direction) —
   no sequential PRNG state, so the schedule is independent of the
   order in which the engine processes messages within a round. *)
let coin p ~round ~edge ~dir =
  let h = ref ((p.seed + 0x7F4A7C15) * 0x9E3779B1) in
  h := (!h lxor ((p.run + 1) * 0x85EBCA6B)) * 0xC2B2AE35;
  h := (!h lxor ((round + 1) * 0x27D4EB2F)) * 0x165667B1;
  h := (!h lxor (((edge * 2) + dir + 1) * 0x9E3779B1)) * 0x85EBCA6B;
  h := !h lxor (!h lsr 17);
  float_of_int (!h land 0xFFFFFF) /. 16777216.0

let fate p ~sender ~dest ~edge ~round =
  if crashed p ~node:sender ~round then Some Crash
  else if crashed p ~node:dest ~round:(round + 1) then Some Crash
  else if Array.length p.link_failures > 0 && link_down p ~edge ~round then
    Some Link_down
  else if
    p.drop_prob > 0.0 && round < p.drop_until
    && coin p ~round ~edge ~dir:(if sender < dest then 0 else 1) < p.drop_prob
  then Some Random_drop
  else None

let record p = function
  | Random_drop -> p.random_drops <- p.random_drops + 1
  | Link_down -> p.link_drops <- p.link_drops + 1
  | Crash -> p.crash_drops <- p.crash_drops + 1

let counts p =
  {
    random_drops = p.random_drops;
    link_drops = p.link_drops;
    crash_drops = p.crash_drops;
  }

let surviving_node p v =
  not
    (Array.exists
       (fun c -> c.node = v && c.recover_round = None)
       p.crashes)

let surviving_edge p e =
  not
    (Array.exists
       (fun f -> f.edge = e && f.until_round = None)
       p.link_failures)

let describe p =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "seed=%d" p.seed);
  if p.drop_prob > 0.0 then begin
    Buffer.add_string b (Printf.sprintf " drop=%g" p.drop_prob);
    if p.drop_until <> max_int then
      Buffer.add_string b (Printf.sprintf "@<%d" p.drop_until)
  end;
  Array.iter
    (fun f ->
      Buffer.add_string b
        (match f.until_round with
        | None -> Printf.sprintf " link%d-[%d,inf)" f.edge f.from_round
        | Some u -> Printf.sprintf " link%d-[%d,%d)" f.edge f.from_round u))
    p.link_failures;
  Array.iter
    (fun c ->
      Buffer.add_string b
        (match c.recover_round with
        | None -> Printf.sprintf " crash%d@%d" c.node c.crash_round
        | Some r -> Printf.sprintf " crash%d@[%d,%d)" c.node c.crash_round r))
    p.crashes;
  Buffer.contents b

let pp ppf p = Format.pp_print_string ppf (describe p)
