(** Process-ambient telemetry: phase spans, per-round timeseries and
    trace export.

    The layer has two halves:

    - {b Spans} ({!span}) work always, recording or not: a span
      snapshots {!Engine.totals} around a phase and (when given a
      ledger) auto-records the measured rounds as a [Ledger.native]
      entry — replacing manual bookkeeping at call sites. Spans nest;
      each captures rounds, engine runs, node steps, messages, words,
      fault drops, retransmissions and wall time.

    - {b Recording} ({!record} / {!start} / {!stop}) additionally
      captures the full event stream: hierarchical span begin/end
      events, one {!event.Round} sample per executed engine round
      (emitted identically by both engine backends — the differential
      guarantee extends to telemetry), and per-directed-link message
      totals. The result ({!t}) exports to JSONL, to Chrome
      trace-event JSON loadable in Perfetto, or to a text report.

    Overhead contract: when nothing is recording, engine hot loops pay
    one [ref] read per run and per round, and {!span} costs two
    [snapshot_totals] (a record copy) per phase — see
    [bench/engine_bench.ml]'s telemetry section for the measured
    figure. Recording is process-global and not reentrant. *)

(** One captured event. Rounds in [Span_begin.r0] / [Span_end.r1] are
    cumulative executed engine rounds since {!start} (a virtual clock
    shared with {!event.Round} samples). [t] fields are wall-clock
    seconds since {!start}; [t], [wall] and [Span_end.domains] are the
    only non-deterministic fields (excluded from
    {!deterministic_lines} — [domains] is backend-dependent, and the
    deterministic stream must be identical across backends).
    [Span_end.domains] is the maximum engine domain count recorded in
    the process when the span closed (1 = sequential; traces written
    before the parallel backend load as 1). [Round] samples carry
    per-round deltas; [round = 0] is an engine run's init round
    ([steps = 0], [active] = n). [Link] events are appended by
    {!stop}, sorted by [(from, dest)]. *)
type event =
  | Span_begin of { id : int; parent : int; name : string; r0 : int; t : float }
  | Span_end of {
      id : int;
      name : string;
      r1 : int;
      rounds : int;
      runs : int;
      steps : int;
      messages : int;
      words : int;
      drops : int;
      retrans : int;
      domains : int;
      wall : float;
      t : float;
    }
  | Round of {
      run : int;
      round : int;
      messages : int;
      words : int;
      steps : int;
      active : int;
      drops : int;
    }
  | Link of { from : int; dest : int; messages : int }

(** A completed recording. [rounds] is the total number of executed
    engine rounds observed; [wall] the recording's wall-clock span. *)
type t = { events : event list; rounds : int; wall : float }

(** [span ?ledger name f] runs [f ()] as a named phase. Always
    measures the phase via {!Engine.snapshot_totals} deltas; when
    [ledger] is given, records the measured rounds as
    [Ledger.native ledger ~label:name]. When a recording is active it
    also emits [Span_begin]/[Span_end] events (nested spans form a
    tree). If [f] raises, the span is closed in the event stream but
    no ledger entry is written. *)
val span : ?ledger:Ledger.t -> string -> (unit -> 'a) -> 'a

(** Whether a recording is active. *)
val recording : unit -> bool

(** Start recording: installs the engine round probe and ambient
    observer. @raise Invalid_argument if already recording. *)
val start : unit -> unit

(** Stop recording and return the capture. Uninstalls the engine
    hooks. @raise Invalid_argument if not recording. *)
val stop : unit -> t

(** [record f] = {!start}; [f ()]; {!stop} — exception-safe (the
    hooks are uninstalled, and the capture discarded, if [f]
    raises). *)
val record : (unit -> 'a) -> 'a * t

(** {2 Analysis} *)

(** Fraction of recorded engine rounds attributed to *leaf* spans
    (spans with no child span) — the phase-attribution coverage.
    1.0 for an empty recording. *)
val leaf_round_coverage : t -> float

(** Canonical one-line-per-event serialization with every
    non-deterministic field ([t], [wall], [domains]) omitted. For any
    program all three engine backends (including {!Engine.run_par} at
    any domain count) produce byte-identical streams; fault plans
    preserve this (drops are deterministic). *)
val deterministic_lines : t -> string list

(** {2 Export} *)

(** JSONL: a meta line [{"type":"meta","version":1,...}] followed by
    one JSON object per event. *)
val to_jsonl : t -> string

(** Chrome trace-event JSON (load in Perfetto / chrome://tracing).
    Spans become duration events and round samples counter tracks on a
    virtual time axis where one engine round is one microsecond tick.
    When a [metrics] snapshot is given, each metric is appended as a
    ["metrics/..."] counter track at the final timestamp (histograms
    as their p50/p90/p99 estimates) — one run, both views. The full
    event stream is also embedded under a top-level ["lightnet"] key
    (ignored by viewers) so the file round-trips through {!load_file}
    losslessly. *)
val to_chrome : ?metrics:Ln_obs.Metrics.snapshot -> t -> string

(** [write_file t path] writes {!to_jsonl} if [path] ends in
    [.jsonl], {!to_chrome} otherwise. [metrics] is forwarded to
    {!to_chrome} (and ignored for JSONL). *)
val write_file : ?metrics:Ln_obs.Metrics.snapshot -> t -> string -> unit

(** Fold a metrics snapshot into a ledger: every non-empty histogram
    becomes a [metrics/<name>] note with count/p50/p90/p99/max — the
    registry-to-ledger half of the observability bridge. *)
val note_metrics : Ledger.t -> Ln_obs.Metrics.snapshot -> unit

(** Load a trace written by {!write_file} (either format).
    @raise Failure on unparseable input. *)
val load_file : string -> t

(** Text report: run/round/message summary, the span tree with rounds,
    share of total, messages and wall time per phase, leaf coverage,
    and a log2-bucket histogram of per-link message load. *)
val pp_report : Format.formatter -> t -> unit
