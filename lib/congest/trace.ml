type t = {
  per_round : (int, int * int) Hashtbl.t; (* round -> msgs, words *)
  per_link : (int * int, int) Hashtbl.t; (* (from, dest) -> msgs *)
  mutable messages : int;
  mutable words : int;
  mutable perf : Engine.perf option;
}

let create () =
  {
    per_round = Hashtbl.create 64;
    per_link = Hashtbl.create 64;
    messages = 0;
    words = 0;
    perf = None;
  }

let reset t =
  Hashtbl.reset t.per_round;
  Hashtbl.reset t.per_link;
  t.messages <- 0;
  t.words <- 0;
  t.perf <- None

let add_perf t p =
  match t.perf with
  | None -> t.perf <- Some (Engine.copy_perf p)
  | Some q -> Engine.add_perf ~into:q p

let perf t = t.perf

let observer t : Engine.observer =
 fun ~round ~from ~dest ~words ->
  t.messages <- t.messages + 1;
  t.words <- t.words + words;
  let m, w = Option.value ~default:(0, 0) (Hashtbl.find_opt t.per_round round) in
  Hashtbl.replace t.per_round round (m + 1, w + words);
  let l = Option.value ~default:0 (Hashtbl.find_opt t.per_link (from, dest)) in
  Hashtbl.replace t.per_link (from, dest) (l + 1)

let messages t = t.messages
let words t = t.words
let busy_rounds t = Hashtbl.length t.per_round
let round_load t r = Option.value ~default:(0, 0) (Hashtbl.find_opt t.per_round r)

let peak_round t =
  Hashtbl.fold
    (fun r (m, _) (br, bm) -> if m > bm then (r, m) else (br, bm))
    t.per_round (0, 0)

let link_load t =
  (* Load descending; ties broken by (from, dest) ascending so the
     ordering is independent of hashtable iteration order (stable
     across OCaml versions and hash seeds). *)
  Hashtbl.fold (fun link m acc -> (link, m) :: acc) t.per_link []
  |> List.sort (fun ((f1, d1), a) ((f2, d2), b) ->
         let c = Int.compare b a in
         if c <> 0 then c
         else
           let c = Int.compare f1 f2 in
           if c <> 0 then c else Int.compare d1 d2)

let peak_link t = match link_load t with (_, m) :: _ -> m | [] -> 0

let pp ppf t =
  let pr, pm = peak_round t in
  Format.fprintf ppf
    "trace: %d msgs, %d words over %d busy rounds; peak round %d (%d msgs); peak link %d msgs"
    t.messages t.words (busy_rounds t) pr pm (peak_link t);
  match t.perf with
  | None -> ()
  | Some p ->
    Format.fprintf ppf "; engine %.0f rounds/s, %.0f msgs/s (skip %.1f%%)"
      (Engine.rounds_per_sec p) (Engine.messages_per_sec p)
      (100.0 *. Engine.skip_ratio p)
