(** Round-accounting ledger.

    The high-level constructions in this library are compositions of
    phases. Most phases run natively on {!Engine} and their round
    counts are measured; a few are computed centrally with their round
    cost *charged* according to the paper's own communication schedule
    (see DESIGN.md, "Fidelity model"). The ledger records every phase
    with its kind so experiments can report the two components
    separately. *)

type kind = Native | Charged

(** [domains] is the engine domain count the phase was measured under
    (1 = sequential; always 1 for [Charged] entries — an analytic
    charge has no execution). Written by [Telemetry.span] from the
    engine's perf counters so parallel-run ledgers attribute fully. *)
type entry = { label : string; kind : kind; rounds : int; domains : int }

type t

val create : unit -> t

(** [native t ~label rounds] records a measured phase. [domains]
    (default 1) records the engine domain count it ran under; round
    counts are domain-independent (the parallel backend is
    deterministic), so this is attribution metadata, not a cost
    scale factor. *)
val native : t -> label:string -> ?domains:int -> int -> unit

(** [charged t ~label rounds] records an analytically charged phase. *)
val charged : t -> label:string -> int -> unit

(** [merge t ~prefix other] appends [other]'s entries into [t], with
    labels prefixed by [prefix ^ "/"] (sub-algorithm composition).
    [other]'s attached perf counters, if any, are accumulated into
    [t]'s; its notes are carried over with the same prefix. O(|other|):
    entries are stored in a grow-doubling array, so deeply nested
    composition stays linear overall. *)
val merge : t -> prefix:string -> t -> unit

(** [note t ~label value] attaches free-form replay metadata to the
    ledger — every stochastic choice (graph-generator seed, fault-plan
    description, QCheck seed) must be noted here so a failure is
    reproducible from its log line. Shown by {!pp}; propagated by
    {!merge} with the usual prefix. *)
val note : t -> label:string -> string -> unit

(** Notes in insertion order. *)
val notes : t -> (string * string) list

(** Entries in insertion order. *)
val entries : t -> entry list

val native_total : t -> int
val charged_total : t -> int

(** [attach_perf t p] accumulates engine perf counters for the phases
    this ledger describes (typically [Engine.totals_since snapshot]),
    so experiments can report simulator throughput next to round
    counts. Shown by {!pp}; propagated by {!merge}. *)
val attach_perf : t -> Engine.perf -> unit

(** The accumulated engine counters, if any were attached. *)
val perf : t -> Engine.perf option

(** Total round count (native + charged). *)
val total : t -> int

val pp : Format.formatter -> t -> unit
