(** Post-run certifiers for faulty executions.

    A chaos run needs a verdict, not just stats. Each certifier here
    re-checks an algorithm's output against ground truth computed
    centrally on the input graph and classifies the run:

    - {!Correct}: the output is exactly what a fault-free run would
      certify — the faults were absorbed.
    - {!Degraded}: not correct on the full graph, but correct on the
      *surviving subgraph* (non-crashed nodes, edges with no permanent
      failure) — the protocol did the best the network allowed.
    - {!Wrong}: the output is inconsistent even with the surviving
      subgraph — the faults corrupted the result.

    Crashed nodes' outputs are never inspected (a crashed processor
    owes nothing), but a *wrong value* on any live node is always
    {!Wrong}, never merely degraded. *)

type verdict = Correct | Degraded | Wrong

type report = { verdict : verdict; detail : string }

val verdict_name : verdict -> string
val pp : Format.formatter -> report -> unit

(** Hop distances from [root] inside the surviving subgraph of [g]
    under the plan; [-1] for unreachable (or crashed) vertices, all
    [-1] if the root itself crashes. *)
val surviving_hops : Ln_graph.Graph.t -> Fault.plan -> root:int -> int array

(** [bfs g plan ~root ~dist] certifies BFS layers: [dist.(v)] is the
    hop distance node [v] claims ([-1] for "unreached"). *)
val bfs :
  Ln_graph.Graph.t -> Fault.plan -> root:int -> dist:int array -> report

(** [broadcast g plan ~root ~value ~got] certifies a flood of [value]
    from [root]: any live node holding a different value is {!Wrong};
    all nodes holding [value] is {!Correct}; every surviving node
    reachable from [root] in the surviving subgraph holding it is
    {!Degraded}. *)
val broadcast :
  Ln_graph.Graph.t ->
  Fault.plan ->
  root:int ->
  value:int ->
  got:int option array ->
  report

(** [spanning_forest g plan ~edges] certifies a forest: cycles are
    {!Wrong}; spanning every component of [g] is {!Correct}; the
    surviving chosen edges spanning every component of the surviving
    subgraph is {!Degraded}. *)
val spanning_forest :
  Ln_graph.Graph.t -> Fault.plan -> edges:int list -> report

(** [spanner g plan ~stretch_bound ~edges] certifies a spanner by
    re-measuring stretch (and, if [lightness_bound] is given,
    lightness) with {!Ln_graph.Stats}: bounds holding on the full
    graph is {!Correct}; holding on the surviving subgraph (surviving
    spanner edges measured against the surviving host) is
    {!Degraded}. *)
val spanner :
  ?lightness_bound:float ->
  Ln_graph.Graph.t ->
  Fault.plan ->
  stretch_bound:float ->
  edges:int list ->
  report
