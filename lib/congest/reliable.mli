(** Reliable links over a lossy network: a program combinator.

    [lift p] wraps any CONGEST {!Engine.program} with a per-link
    stop-and-wait ARQ: every payload [p] sends is given a sequence
    number, carried in an {!envelope} with a piggybacked cumulative
    ack, and retransmitted every {!rto} rounds until acknowledged (or
    until [max_retries] resends, after which the link is declared dead
    and its queue abandoned). Under a {!Fault.plan} with random drops,
    the lifted program behaves like [p] running on a reliable but
    *asynchronous* network: payloads arrive in order on each link, but
    with unpredictable delay.

    Consequently [lift] preserves correctness only for programs whose
    result is independent of message timing (self-stabilising
    fixpoints such as {!Primitives.Bfs.relaxing_program}, flooding,
    idempotent aggregation) — a protocol that relies on lockstep
    synchrony (e.g. counting rounds to measure distance) is *not*
    rescued by [lift]. See DESIGN.md, "Fault model & recovery".

    Costs, charged honestly in {!Engine.stats}: every envelope pays
    {!word_overhead} extra words; each retransmission is an extra
    message (and is counted in [stats.retransmissions] via
    {!Engine.count_retransmission}); fault-free, a lifted program runs
    the same number of rounds as the original and sends one pure-ack
    envelope per data envelope. *)

(** The wire format: a cumulative acknowledgement ([ack = k] means
    "I have received every sequence number [< k] on this link") plus
    an optional sequence-numbered payload. *)
type 'm envelope = { ack : int; data : (int * 'm) option }

(** Lifted node state; the inner state is recovered with {!project}. *)
type ('s, 'm) state

(** Retransmission timeout in rounds. One round up, one round for the
    piggybacked ack back: with [rto = 2] a fault-free run never
    retransmits spuriously. *)
val rto : int

(** Words added to each payload envelope (sequence number + ack);
    a pure-ack envelope weighs exactly [word_overhead]. With the
    engine's default [word_cap] of 4, payloads of up to 2 words lift
    without raising the cap. *)
val word_overhead : int

(** [lift ?max_retries p] is the ARQ-wrapped program. [max_retries]
    (default 32) bounds resends per payload; past it the link is
    declared dead, queued payloads are discarded and counted in
    {!gave_up}. *)
val lift :
  ?max_retries:int ->
  ('s, 'm) Engine.program ->
  (('s, 'm) state, 'm envelope) Engine.program

(** The wrapped program's own state. *)
val project : ('s, 'm) state -> 's

(** Number of payloads abandoned on links declared dead (0 in any run
    where every payload eventually got through). *)
val gave_up : ('s, 'm) state -> int
