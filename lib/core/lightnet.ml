(** Public umbrella API for the light-networks library.

    This re-exports every sub-library under one namespace and adds a
    small convenience layer ({!Quick}) for one-call constructions with
    quality reports. The organisation mirrors the paper:

    - {!Graph}, {!Paths}, {!Mst_seq}, {!Tree}, {!Euler}, {!Gen},
      {!Metric}, {!Stats} — the sequential graph substrate;
    - {!Engine}, {!Ledger}, {!Fault}, {!Reliable}, {!Monitor} — the
      CONGEST simulator, round ledger, and chaos layer;
    - {!Bfs}, {!Broadcast}, {!Convergecast}, {!Keyed}, {!Exchange},
      {!Forest}, {!Tree_frags} — distributed primitives (Lemma 1 etc.);
    - {!Dist_mst}, {!Fragments}, {!Boruvka} — the two-phase MST;
    - {!Euler_dist}, {!Tour_table} — Section 3 (the Euler tour);
    - {!Bellman_ford}, {!Hub_sssp} — shortest-path machinery
      (substitutes for BKKL17 / EN16, see DESIGN.md);
    - {!Slt}, {!Kry95} — Section 4;
    - {!Light_spanner}, {!Baswana_sen}, {!En17}, {!Greedy},
      {!Buckets}, {!Cluster_sim}, {!Intervals} — Section 5;
    - {!Net}, {!Le_list}, {!Greedy_net}, {!Ruling_set} — Section 6;
    - {!Doubling_spanner} — Section 7;
    - {!Mst_weight} — Section 8 (the estimator behind the lower
      bound);
    - {!Artifact}, {!Labels}, {!Oracle}, {!Workload}, {!Serve},
      {!Rmq} — the route-oracle serving layer (persisted artifacts
      and the cached query engine, see DESIGN.md "Query serving &
      artifacts");
    - {!Store}, {!Fleet} — the many-networks serving tier: a
      digest-keyed artifact store with an LRU of loaded oracles,
      and the domain-sharded fleet driver over it (see DESIGN.md
      "Serving fleet");
    - {!Scenario}, {!Scenario_runner} — declarative chaos scenarios:
      topology + workload + fault schedule + SLO assertions in one
      value, compiled onto the stack above and judged by the
      certifiers (see DESIGN.md "Scenario layer");
    - {!Metrics}, {!Obs_json} — the always-on observability substrate:
      domain-safe counters/gauges/histograms with Prometheus and
      deterministic JSON export (see DESIGN.md "Metrics registry"). *)

module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Mst_seq = Ln_graph.Mst_seq
module Tree = Ln_graph.Tree
module Euler = Ln_graph.Euler
module Gen = Ln_graph.Gen
module Metric = Ln_graph.Metric
module Graph_io = Ln_graph.Graph_io
module Stats = Ln_graph.Stats
module Union_find = Ln_graph.Union_find
module Pqueue = Ln_graph.Pqueue
module Metrics = Ln_obs.Metrics
module Obs_json = Ln_obs.Obs_json
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Trace = Ln_congest.Trace
module Telemetry = Ln_congest.Telemetry
module Fault = Ln_congest.Fault
module Reliable = Ln_congest.Reliable
module Monitor = Ln_congest.Monitor
module Bfs = Ln_prim.Bfs
module Broadcast = Ln_prim.Broadcast
module Convergecast = Ln_prim.Convergecast
module Keyed = Ln_prim.Keyed
module Exchange = Ln_prim.Exchange
module Forest = Ln_prim.Forest
module Tree_frags = Ln_prim.Tree_frags
module Dist_mst = Ln_mst.Dist_mst
module Fragments = Ln_mst.Fragments
module Boruvka = Ln_mst.Boruvka
module Euler_dist = Ln_traversal.Euler_dist
module Tour_table = Ln_traversal.Tour_table
module Bellman_ford = Ln_aspt.Bellman_ford
module Hub_sssp = Ln_aspt.Hub_sssp
module Slt = Ln_slt.Slt
module Kry95 = Ln_slt.Kry95
module Light_spanner = Ln_spanner.Light_spanner
module Baswana_sen = Ln_spanner.Baswana_sen
module En17 = Ln_spanner.En17
module Greedy = Ln_spanner.Greedy
module Buckets = Ln_spanner.Buckets
module Cluster_sim = Ln_spanner.Cluster_sim
module Intervals = Ln_spanner.Intervals
module Net = Ln_nets.Net
module Le_list = Ln_nets.Le_list
module Greedy_net = Ln_nets.Greedy_net
module Ruling_set = Ln_nets.Ruling_set
module Doubling_spanner = Ln_doubling.Doubling_spanner
module Mst_weight = Ln_estimate.Mst_weight
module Rmq = Ln_route.Rmq
module Labels = Ln_route.Labels
module Artifact = Ln_route.Artifact
module Oracle = Ln_route.Oracle
module Workload = Ln_route.Workload
module Serve = Ln_route.Serve
module Store = Ln_store.Store
module Fleet = Ln_store.Fleet
module Scenario = Ln_scenario.Scenario
module Scenario_runner = Ln_scenario.Runner

(** One-call constructions with bundled quality numbers — the paper's
    Table-1 rows as library calls. *)
module Quick = struct
  type quality = {
    edges : int;
    stretch : float;
    lightness : float;
    rounds_native : int;
    rounds_charged : int;
  }

  let pp_quality ppf q =
    Format.fprintf ppf
      "edges=%d stretch=%.3f lightness=%.3f rounds=%d (native) + %d (charged)" q.edges
      q.stretch q.lightness q.rounds_native q.rounds_charged

  let quality_of g edges ledger ~stretch =
    {
      edges = List.length edges;
      stretch;
      lightness = Stats.lightness g edges;
      rounds_native = Ledger.native_total ledger;
      rounds_charged = Ledger.charged_total ledger;
    }

  (* Every Quick entry point notes its seed in the construction's own
     ledger, so any logged run can be replayed exactly. *)
  let note_seed ledger seed =
    Ledger.note ledger ~label:"seed" (string_of_int seed)

  (** Table 1 row 1: the (2k−1)(1+ε) light spanner. *)
  let light_spanner ?(seed = 0) ?(epsilon = 0.25) g ~k =
    let rng = Random.State.make [| seed; 0x11 |] in
    let sp = Light_spanner.build ~rng g ~k ~epsilon in
    note_seed sp.Light_spanner.ledger seed;
    let stretch = Stats.max_edge_stretch g sp.Light_spanner.edges in
    (sp, quality_of g sp.Light_spanner.edges sp.Light_spanner.ledger ~stretch)

  (** Table 1 row 2: the shallow-light tree. *)
  let slt ?(seed = 0) ?(epsilon = 0.5) g ~rt =
    let rng = Random.State.make [| seed; 0x517 |] in
    let t = Slt.build ~rng g ~rt ~epsilon in
    note_seed t.Slt.ledger seed;
    let stretch = Stats.tree_root_stretch g t.Slt.tree ~root:rt in
    (t, quality_of g t.Slt.edges t.Slt.ledger ~stretch)

  (** Table 1 row 3: an (α, β)-net. *)
  let net ?(seed = 0) ?(delta = 0.5) g ~radius =
    let rng = Random.State.make [| seed; 0xe7 |] in
    let bfs, _ = Bfs.tree g ~root:0 in
    Net.build ~rng g ~bfs ~radius ~delta

  (** Table 1 row 4: the (1+ε) doubling spanner. *)
  let doubling_spanner ?(seed = 0) ?(epsilon = 0.5) g =
    let rng = Random.State.make [| seed; 0xdd |] in
    let sp = Doubling_spanner.build ~rng g ~epsilon in
    note_seed sp.Doubling_spanner.ledger seed;
    let stretch = Stats.max_edge_stretch g sp.Doubling_spanner.edges in
    (sp, quality_of g sp.Doubling_spanner.edges sp.Doubling_spanner.ledger ~stretch)
end
