module Graph = Ln_graph.Graph
module Metric = Ln_graph.Metric
module Ledger = Ln_congest.Ledger
module Engine = Ln_congest.Engine
module Telemetry = Ln_congest.Telemetry
module Bellman_ford = Ln_aspt.Bellman_ford

type t = {
  points : int list;
  radius : float;
  delta : float;
  covering_bound : float;
  separation_bound : float;
  iterations : int;
  ledger : Ledger.t;
}

(* Fisher-Yates shuffle of the active set: the iteration's uniform
   permutation π. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* FL16 charge for one LE-list computation: (√n + D) times a
   polylogarithmic factor (the 2^{Õ(√log n)} term is ≈ log n at any
   simulable scale; see DESIGN.md). *)
let le_list_charge g ~bfs =
  let n = float_of_int (max 2 (Graph.n g)) in
  let d = Ln_graph.Tree.height_hops bfs in
  int_of_float (Float.ceil ((Float.sqrt n +. float_of_int d) *. Float.log n))

let build ~rng g ~bfs ~radius ~delta =
  if radius <= 0.0 then invalid_arg "Net.build: radius must be positive";
  if delta < 0.0 then invalid_arg "Net.build: delta must be nonnegative";
  Telemetry.span "net" @@ fun () ->
  let n = Graph.n g in
  let ledger = Ledger.create () in
  let active = Array.make n true in
  let points = ref [] in
  let iterations = ref 0 in
  let any_active () = Array.exists Fun.id active in
  while any_active () do
    incr iterations;
    let active_list =
      List.filter (fun v -> active.(v)) (List.init n Fun.id)
    in
    let order = shuffle rng active_list in
    let rank = Hashtbl.create (List.length order) in
    List.iteri (fun i v -> Hashtbl.replace rank v i) order;
    let lists = Le_list.compute g ~order in
    Ledger.charged ledger ~label:"net/fl16-le-lists" (le_list_charge g ~bfs);
    (* v joins iff it is π-first in its Δ-ball: no list entry u ≠ v
       with d ≤ Δ and π(u) < π(v). *)
    let joiners =
      List.filter
        (fun v ->
          List.for_all
            (fun (u, d) ->
              u = v || d > radius || Hashtbl.find rank u > Hashtbl.find rank v)
            lists.(v))
        active_list
    in
    (match joiners with
    | [] -> () (* extremely unlikely; resample next iteration *)
    | _ ->
      points := joiners @ !points;
      (* Deactivation: native bounded multi-source shortest paths from
         the new net points (the approximate-SPT step). *)
      let bound = (1.0 +. delta) *. radius in
      let tables =
        Telemetry.span ~ledger "net/deactivation-aspt" (fun () ->
            fst (Bellman_ford.multi_source ~bound g ~srcs:joiners))
      in
      for v = 0 to n - 1 do
        if active.(v) && Hashtbl.length tables.(v) > 0 then active.(v) <- false
      done)
  done;
  {
    points = List.sort Int.compare !points;
    radius;
    delta;
    covering_bound = (1.0 +. delta) *. radius;
    separation_bound = radius;
    iterations = !iterations;
    ledger;
  }

let is_net g ~covering ~separation pts =
  Metric.covering_radius g pts <= covering +. 1e-9
  && Metric.separation g pts > separation -. 1e-9
