module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Pqueue = Ln_graph.Pqueue

let compute g ~order =
  let n = Graph.n g in
  let best = Array.make n infinity in
  let lists = Array.make n [] in
  (* Process sources in π order; a vertex v enters the search from u
     only if d(u, v) < best(v) (strictly closer than every earlier-π
     source), in which case (u, d) joins LE(v). *)
  List.iter
    (fun u ->
      let dist = Hashtbl.create 32 in
      let q = Pqueue.create () in
      Hashtbl.replace dist u 0.0;
      Pqueue.push q 0.0 u;
      while not (Pqueue.is_empty q) do
        let d, v = Pqueue.pop_min q in
        match Hashtbl.find_opt dist v with
        | Some dv when d > dv -> () (* stale *)
        | _ ->
          if d < best.(v) then begin
            best.(v) <- d;
            lists.(v) <- (u, d) :: lists.(v);
            Graph.iter_neighbors g v (fun e x ->
                let nd = d +. Graph.weight g e in
                if nd < best.(x) then begin
                  match Hashtbl.find_opt dist x with
                  | Some dx when dx <= nd -> ()
                  | _ ->
                    Hashtbl.replace dist x nd;
                    Pqueue.push q nd x
                end)
          end
      done)
    order;
  (* Lists were built in π order with strictly decreasing distances, so
     reversing sorts by increasing distance. *)
  Array.map List.rev lists

let check g ~order lists =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rank = Hashtbl.create 16 in
  List.iteri (fun i u -> Hashtbl.replace rank u i) order;
  let sps =
    List.map (fun u -> (u, (Paths.dijkstra g u).Paths.dist)) order
  in
  let n = Graph.n g in
  let rec verify v =
    if v >= n then Ok ()
    else begin
      (* Brute force: u ∈ LE(v) iff u is π-minimal among vertices of A
         within distance d(u,v) of v. *)
      let expected =
        List.filter
          (fun (u, du) ->
            let du_v = du.(v) in
            List.for_all
              (fun (w, dw) ->
                not (dw.(v) <= du_v && Hashtbl.find rank w < Hashtbl.find rank u))
              sps)
          sps
        |> List.map (fun (u, du) -> (u, du.(v)))
        |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
      in
      let got =
        List.sort (fun (_, a) (_, b) -> Float.compare a b) lists.(v)
      in
      if List.length expected <> List.length got then
        fail "vertex %d: list size %d, expected %d" v (List.length got)
          (List.length expected)
      else if
        List.for_all2
          (fun (u1, d1) (u2, d2) -> u1 = u2 && Float.abs (d1 -. d2) <= 1e-9 *. (1.0 +. d1))
          expected got
      then verify (v + 1)
      else fail "vertex %d: list mismatch" v
    end
  in
  verify 0
