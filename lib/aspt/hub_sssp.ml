module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Broadcast = Ln_prim.Broadcast
module Exchange = Ln_prim.Exchange

type t = {
  src : int;
  dist : float array;
  parent_edge : int array;
  tree : Tree.t;
  hubs : int list;
  ledger : Ledger.t;
}

type local_state = {
  table : (int, float * int * int) Hashtbl.t; (* hub -> dist, parent edge, hops *)
  queued : (int, unit) Hashtbl.t;
  queue : int Queue.t;
}

(* Hop-limited multi-source Bellman–Ford from the hub set: one
   (hub, dist, hops) update per edge per round; an entry propagates
   only while its hop count is below [hop_cap]. *)
let local_phase ~edge_ok ~hop_cap g hubs =
  let open Engine in
  let is_hub = Hashtbl.create 64 in
  List.iter (fun h -> Hashtbl.replace is_hub h ()) hubs;
  let allowed ctx =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc e _ -> if edge_ok e then e :: acc else acc)
         [])
  in
  let enqueue s h =
    if not (Hashtbl.mem s.queued h) then begin
      Hashtbl.replace s.queued h ();
      Queue.push h s.queue
    end
  in
  let emit ctx s =
    if Queue.is_empty s.queue then (s, [], false)
    else begin
      let h = Queue.pop s.queue in
      Hashtbl.remove s.queued h;
      match Hashtbl.find_opt s.table h with
      | Some (d, _, hops) when hops < hop_cap ->
        ( s,
          List.map (fun e -> { via = e; msg = (h, d, hops) }) (allowed ctx),
          not (Queue.is_empty s.queue) )
      | _ -> (s, [], not (Queue.is_empty s.queue))
    end
  in
  let program : (local_state, int * float * int) Engine.program =
    {
      name = "hub-local-bf";
      words = (fun _ -> 4);
      init =
        (fun ctx ->
          let s =
            { table = Hashtbl.create 8; queued = Hashtbl.create 8; queue = Queue.create () }
          in
          if Hashtbl.mem is_hub ctx.me then begin
            Hashtbl.replace s.table ctx.me (0.0, -1, 0);
            enqueue s ctx.me
          end;
          (s, []));
      step =
        (fun ctx ~round:_ s inbox ->
          List.iter
            (fun (r : (int * float * int) received) ->
              if edge_ok r.edge then begin
                let h, d0, hops0 = r.payload in
                let cand = d0 +. ctx.weight r.edge in
                match Hashtbl.find_opt s.table h with
                | Some (d, _, _) when d <= cand -> ()
                | _ ->
                  Hashtbl.replace s.table h (cand, r.edge, hops0 + 1);
                  enqueue s h
              end)
            inbox;
          emit ctx s);
    }
  in
  let states, stats = Engine.run g program in
  (Array.map (fun s -> s.table) states, stats)

let run ?(edge_ok = fun _ -> true) ?(hub_factor = 1.0) ~rng g ~bfs ~src =
  Telemetry.span "hub-sssp" @@ fun () ->
  let n = Graph.n g in
  let ledger = Ledger.create () in
  (* Hub sampling: p = hub_factor * ln n / sqrt n, source always in. *)
  let fn = float_of_int (max n 2) in
  let p = Float.min 1.0 (hub_factor *. Float.log fn /. Float.sqrt fn) in
  let hubs = ref [ src ] in
  for v = 0 to n - 1 do
    if v <> src && Random.State.float rng 1.0 < p then hubs := v :: !hubs
  done;
  let hubs = !hubs in
  let hop_cap = (2 * int_of_float (Float.ceil (Float.sqrt fn))) + 2 in
  let tables =
    Telemetry.span ~ledger "hub/local-bf" (fun () ->
        fst (local_phase ~edge_ok ~hop_cap g hubs))
  in
  (* Overlay relaxation: iterate broadcasts of hub source-distances. *)
  let est = Hashtbl.create (List.length hubs) in
  (* est: hub -> current source-distance upper bound *)
  Hashtbl.replace est src 0.0;
  let changed = ref true in
  let iterations = ref 0 in
  while !changed do
    incr iterations;
    changed := false;
    let items = Array.make n [] in
    List.iter
      (fun h ->
        match Hashtbl.find_opt est h with
        | Some d -> items.(h) <- [ (h, d) ]
        | None -> ())
      hubs;
    let all =
      Telemetry.span ~ledger "hub/overlay-broadcast" (fun () ->
          fst (Broadcast.all_to_all ~words:(fun _ -> 3) g ~tree:bfs ~items))
    in
    (* Each hub relaxes through its local table (local computation). *)
    List.iter
      (fun h' ->
        List.iter
          (fun (h, d) ->
            match Hashtbl.find_opt tables.(h') h with
            | Some (dl, _, _) ->
              let cand = d +. dl in
              (match Hashtbl.find_opt est h' with
              | Some cur when cur <= cand -> ()
              | _ ->
                Hashtbl.replace est h' cand;
                changed := true)
            | None -> ())
          all.(h'))
      hubs
  done;
  (* Combine: every vertex's best hub-mediated estimate (local). *)
  let best = Array.make n infinity in
  List.iter
    (fun h ->
      match Hashtbl.find_opt est h with
      | None -> ()
      | Some d ->
        (* The final broadcast delivered (h, d) to everyone; each vertex
           combines with its local table. Done centrally over the
           shared arrays — pure local computation. *)
        for v = 0 to n - 1 do
          match Hashtbl.find_opt tables.(v) h with
          | Some (dl, _, _) -> if d +. dl < best.(v) then best.(v) <- d +. dl
          | None -> ()
        done)
    hubs;
  best.(src) <- 0.0;
  (* Repair sweep: exact Bellman–Ford from the upper bounds. *)
  let res =
    Telemetry.span ~ledger "hub/repair-bf" (fun () ->
        fst (Bellman_ford.sssp ~edge_ok ~init:best g ~src))
  in
  (* Consistent parent pointers: one exchange of final distances. *)
  let nbr_dists =
    Telemetry.span ~ledger "hub/parent-exchange" (fun () ->
        fst (Exchange.floats g res.Bellman_ford.dist))
  in
  let parent_edge = Array.make n (-1) in
  let eps_rel = 1e-9 in
  for v = 0 to n - 1 do
    if v <> src && res.Bellman_ford.dist.(v) < infinity then begin
      let dv = res.Bellman_ford.dist.(v) in
      let best_edge = ref (-1) in
      List.iter
        (fun (e, dnb) ->
          if edge_ok e then begin
            let through = dnb +. Graph.weight g e in
            if
              through <= dv +. (eps_rel *. (1.0 +. dv))
              && (!best_edge < 0 || e < !best_edge)
            then best_edge := e
          end)
        nbr_dists.(v);
      if !best_edge < 0 then failwith "Hub_sssp: no consistent parent (disconnected?)";
      parent_edge.(v) <- !best_edge
    end
  done;
  let tree_edges =
    Array.to_list parent_edge |> List.filter (fun e -> e >= 0)
  in
  let tree = Tree.of_edges g ~root:src tree_edges in
  { src; dist = res.Bellman_ford.dist; parent_edge; tree; hubs; ledger }
