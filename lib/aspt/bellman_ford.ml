module Graph = Ln_graph.Graph
module Engine = Ln_congest.Engine

type result = { dist : float array; parent_edge : int array }

type ss_state = { d : float; parent : int; pending : bool }

let sssp ?(edge_ok = fun _ -> true) ?init g ~src =
  let open Engine in
  let allowed ctx =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc e _ -> if edge_ok e then e :: acc else acc)
         [])
  in
  let init_of v =
    match init with
    | Some a -> a.(v)
    | None -> if v = src then 0.0 else infinity
  in
  let program : (ss_state, float) Engine.program =
    {
      name = "bellman-ford-sssp";
      words = (fun _ -> 2);
      init =
        (fun ctx ->
          let d = init_of ctx.me in
          let s = { d; parent = -1; pending = d < infinity } in
          (s, []));
      step =
        (fun ctx ~round:_ s inbox ->
          let s =
            List.fold_left
              (fun s (r : float received) ->
                if edge_ok r.edge then begin
                  let cand = r.payload +. ctx.weight r.edge in
                  if cand < s.d then { d = cand; parent = r.edge; pending = true } else s
                end
                else s)
              s inbox
          in
          if s.pending then
            ( { s with pending = false },
              List.map (fun e -> { via = e; msg = s.d }) (allowed ctx),
              false )
          else (s, [], false));
    }
  in
  let states, stats = Engine.run g program in
  ( {
      dist = Array.map (fun s -> s.d) states;
      parent_edge = Array.map (fun s -> s.parent) states;
    },
    stats )

type tables = (int, float * int) Hashtbl.t array

type ms_state = {
  table : (int, float * int) Hashtbl.t;
  queued : (int, unit) Hashtbl.t;
  queue : int Queue.t;
}

let multi_source ?(edge_ok = fun _ -> true) ?(bound = infinity) g ~srcs =
  let open Engine in
  let is_src = Hashtbl.create (List.length srcs) in
  List.iter (fun s -> Hashtbl.replace is_src s ()) srcs;
  let allowed ctx =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc e _ -> if edge_ok e then e :: acc else acc)
         [])
  in
  let enqueue s src =
    if not (Hashtbl.mem s.queued src) then begin
      Hashtbl.replace s.queued src ();
      Queue.push src s.queue
    end
  in
  let emit ctx s =
    if Queue.is_empty s.queue then (s, [], false)
    else begin
      let src = Queue.pop s.queue in
      Hashtbl.remove s.queued src;
      match Hashtbl.find_opt s.table src with
      | None -> (s, [], not (Queue.is_empty s.queue))
      | Some (d, _) ->
        ( s,
          List.map (fun e -> { via = e; msg = (src, d) }) (allowed ctx),
          not (Queue.is_empty s.queue) )
    end
  in
  let program : (ms_state, int * float) Engine.program =
    {
      name = "bellman-ford-multi";
      words = (fun _ -> 3);
      init =
        (fun ctx ->
          let s =
            { table = Hashtbl.create 8; queued = Hashtbl.create 8; queue = Queue.create () }
          in
          if Hashtbl.mem is_src ctx.me then begin
            Hashtbl.replace s.table ctx.me (0.0, -1);
            enqueue s ctx.me
          end;
          (s, []));
      step =
        (fun ctx ~round:_ s inbox ->
          List.iter
            (fun (r : (int * float) received) ->
              if edge_ok r.edge then begin
                let src, d0 = r.payload in
                let cand = d0 +. ctx.weight r.edge in
                if cand <= bound then begin
                  match Hashtbl.find_opt s.table src with
                  | Some (d, _) when d <= cand -> ()
                  | _ ->
                    Hashtbl.replace s.table src (cand, r.edge);
                    enqueue s src
                end
              end)
            inbox;
          emit ctx s);
    }
  in
  let states, stats = Engine.run g program in
  (Array.map (fun s -> s.table) states, stats)

let path_to_source g tables v ~src =
  let rec walk v acc =
    if v = src then Some (List.rev (v :: acc))
    else begin
      match Hashtbl.find_opt tables.(v) src with
      | None | Some (_, -1) -> None
      | Some (_, e) -> walk (Graph.other_end g e v) (v :: acc)
    end
  in
  walk v []
