module Artifact = Ln_route.Artifact
module Oracle = Ln_route.Oracle
module Metrics = Ln_obs.Metrics

type status = Ready | Quarantined of string

type entry = {
  digest : string;
  path : string;
  bytes : int;
  status : status;
  loaded : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  loaded : int;
  ready : int;
  quarantined : int;
}

(* Process-wide store counters. Per-network serving traffic is
   already labelled by digest in the [lightnet_serve_*] series; the
   store series watch the movement of whole networks in and out of
   memory, which is naturally process-level. *)
let m_hits =
  Metrics.counter ~help:"Store oracle-LRU hits."
    "lightnet_store_oracle_hits_total"

let m_misses =
  Metrics.counter ~help:"Store oracle-LRU misses (artifact loads)."
    "lightnet_store_oracle_misses_total"

let m_evictions =
  Metrics.counter ~help:"Store oracle-LRU evictions."
    "lightnet_store_oracle_evictions_total"

let m_quarantined =
  Metrics.counter ~help:"Artifacts quarantined (corrupt or mismatched)."
    "lightnet_store_quarantined_total"

let m_loaded =
  Metrics.gauge ~help:"Oracles currently resident in store LRUs."
    "lightnet_store_loaded_oracles"

type slot = {
  path : string;
  mutable status : status;
}

type t = {
  dir : string;
  capacity : int;
  cache_capacity : int;
  entries : (string, slot) Hashtbl.t;
  resident : (string, Oracle.t * int ref) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let artifact_suffix = ".artifact"
let quarantine_suffix = ".artifact.quarantined"

let is_digest s =
  String.length s = 16
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let quarantine_path slot = slot.path ^ ".quarantined"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?(capacity = 8) ?(cache_capacity = 64) dir =
  if capacity < 1 then invalid_arg "Store.open_dir: capacity < 1";
  if cache_capacity < 1 then invalid_arg "Store.open_dir: cache capacity < 1";
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Store.open_dir: %s is not a directory" dir);
  mkdir_p dir;
  let t =
    {
      dir;
      capacity;
      cache_capacity;
      entries = Hashtbl.create 32;
      resident = Hashtbl.create (2 * capacity);
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  Array.iter
    (fun file ->
      let stem suffix =
        match Filename.chop_suffix_opt ~suffix file with
        | Some s when is_digest s -> Some s
        | _ -> None
      in
      match (stem artifact_suffix, stem quarantine_suffix) with
      | Some digest, _ ->
        Hashtbl.replace t.entries digest
          { path = Filename.concat dir file; status = Ready }
      | None, Some digest ->
        (* Do not clobber a live entry: a digest can have both a fresh
           canonical file and the quarantined husk of an earlier copy. *)
        if not (Hashtbl.mem t.entries digest) then
          Hashtbl.replace t.entries digest
            {
              path = Filename.concat dir (digest ^ artifact_suffix);
              status = Quarantined "quarantined in a previous run";
            }
      | None, None -> ())
    (Sys.readdir dir);
  t

let dir t = t.dir
let capacity t = t.capacity

let sorted_entries t =
  Hashtbl.fold (fun digest slot acc -> (digest, slot) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let digests t =
  sorted_entries t
  |> List.filter_map (fun (digest, slot) ->
         match slot.status with Ready -> Some digest | Quarantined _ -> None)

let file_bytes path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

let ls t =
  sorted_entries t
  |> List.map (fun (digest, slot) ->
         {
           digest;
           path = slot.path;
           bytes =
             file_bytes
               (match slot.status with
               | Ready -> slot.path
               | Quarantined _ -> quarantine_path slot);
           status = slot.status;
           loaded = Hashtbl.mem t.resident digest;
         })

let set_loaded_gauge t =
  if Metrics.on () then
    Metrics.set m_loaded (float_of_int (Hashtbl.length t.resident))

(* End-to-end read of one entry: the format/checksum rejections come
   from [Artifact.load]; on top of those the store insists the content
   digest matches the filename, so a valid artifact copied under the
   wrong name cannot impersonate another network. *)
let load_checked digest slot =
  match Artifact.load slot.path with
  | artifact ->
    let actual = Artifact.digest_hex artifact in
    if actual = digest then Ok artifact
    else
      Error
        (Printf.sprintf "digest mismatch: file is named %s but holds %s" digest
           actual)
  | exception Failure why -> Error why

let quarantine t digest slot why =
  slot.status <- Quarantined why;
  (try Sys.rename slot.path (quarantine_path slot) with Sys_error _ -> ());
  Hashtbl.remove t.resident digest;
  set_loaded_gauge t;
  if Metrics.on () then Metrics.incr m_quarantined

let evict_stalest t =
  let victim = ref "" and stalest = ref max_int in
  Hashtbl.iter
    (fun digest (_, stamp) ->
      if !stamp < !stalest then begin
        stalest := !stamp;
        victim := digest
      end)
    t.resident;
  if !victim <> "" then begin
    Hashtbl.remove t.resident !victim;
    t.evictions <- t.evictions + 1;
    if Metrics.on () then Metrics.incr m_evictions
  end

let oracle t digest =
  match Hashtbl.find_opt t.entries digest with
  | None -> Error (Printf.sprintf "unknown digest %s" digest)
  | Some slot -> (
    match slot.status with
    | Quarantined why ->
      Error (Printf.sprintf "artifact %s quarantined: %s" digest why)
    | Ready -> (
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.resident digest with
      | Some (oracle, stamp) ->
        t.hits <- t.hits + 1;
        if Metrics.on () then Metrics.incr m_hits;
        stamp := t.clock;
        Ok oracle
      | None -> (
        t.misses <- t.misses + 1;
        if Metrics.on () then Metrics.incr m_misses;
        match load_checked digest slot with
        | Error why ->
          quarantine t digest slot why;
          Error (Printf.sprintf "artifact %s quarantined: %s" digest why)
        | Ok artifact ->
          let oracle = Oracle.create ~cache_capacity:t.cache_capacity artifact in
          if Hashtbl.length t.resident >= t.capacity then evict_stalest t;
          Hashtbl.replace t.resident digest (oracle, ref t.clock);
          set_loaded_gauge t;
          Ok oracle)))

let add t path =
  match Artifact.load path with
  | exception Failure why -> Error why
  | artifact -> (
    let digest = Artifact.digest_hex artifact in
    match Hashtbl.find_opt t.entries digest with
    | Some { status = Ready; _ } -> Ok (digest, `Duplicate)
    | (Some { status = Quarantined _; _ } | None) as existing ->
      let dest = Filename.concat t.dir (digest ^ artifact_suffix) in
      Artifact.save dest artifact;
      (match existing with
      | Some slot -> slot.status <- Ready
      | None -> Hashtbl.replace t.entries digest { path = dest; status = Ready });
      Ok (digest, `Added))

let verify t =
  sorted_entries t
  |> List.map (fun (digest, slot) ->
         match slot.status with
         | Quarantined why -> (digest, Error (Printf.sprintf "quarantined: %s" why))
         | Ready -> (
           match load_checked digest slot with
           | Ok _ -> (digest, Ok ())
           | Error why ->
             quarantine t digest slot why;
             (digest, Error why)))

let gc t =
  let collected = ref 0 in
  sorted_entries t
  |> List.iter (fun (digest, slot) ->
         match slot.status with
         | Ready -> ()
         | Quarantined _ ->
           (try Sys.remove (quarantine_path slot) with Sys_error _ -> ());
           Hashtbl.remove t.entries digest;
           incr collected);
  !collected

let stats t =
  let ready = ref 0 and quarantined = ref 0 in
  Hashtbl.iter
    (fun _ slot ->
      match slot.status with
      | Ready -> incr ready
      | Quarantined _ -> incr quarantined)
    t.entries;
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    loaded = Hashtbl.length t.resident;
    ready = !ready;
    quarantined = !quarantined;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
