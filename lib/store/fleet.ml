module Gen = Ln_graph.Gen
module Oracle = Ln_route.Oracle
module Serve = Ln_route.Serve
module Workload = Ln_route.Workload
module Metrics = Ln_obs.Metrics

type request = { net : string; u : int; v : int }

type net_outcome = { digest : string; queries : int; checksum : float }

type outcome = {
  tier : Oracle.tier;
  domains : int;
  queries : int;
  skipped : int;
  networks : int;
  wall_s : float;
  qps : float;
  latency : Serve.latency;
  checksum : float;
  nets : net_outcome list;
  store : Store.stats;
  cache : Oracle.cache_stats;
}

(* The determinism contract hangs off this constant: chunk boundaries
   are [i * chunk_queries], never a function of the domain count, so
   the float additions inside a chunk and the ascending-chunk merge
   happen in one fixed order no matter how many domains raced over
   the cursor. *)
let chunk_queries = 512

let workload ?(seed = 0) ?(net_skew = 1.1) store spec ~count =
  if count < 0 then invalid_arg "Fleet.workload: negative count";
  let digests = Array.of_list (Store.digests store) in
  let nnets = Array.length digests in
  if nnets = 0 then invalid_arg "Fleet.workload: store has no ready artifacts";
  let rng = Random.State.make [| seed; 0x57a9 |] in
  let draw =
    if net_skew <= 0.0 then fun () -> Random.State.int rng nnets
    else Gen.zipf_sampler rng ~s:net_skew ~n:nnets
  in
  let net_of = Array.init count (fun _ -> draw ()) in
  let wanted = Array.make nnets 0 in
  Array.iter (fun n -> wanted.(n) <- wanted.(n) + 1) net_of;
  (* One pair pool per requested network, drawn with a per-network
     seed so the pool is independent of how the other networks were
     hit. Consumed in request order below. *)
  let pools =
    Array.mapi
      (fun n digest ->
        if wanted.(n) = 0 then [||]
        else
          match Store.oracle store digest with
          | Error _ -> [||]
            (* The network quarantined while generating (corruption is
               never fatal): its requests keep the digest with a
               placeholder pair, and {!run}'s resolution skips them. *)
          | Ok oracle ->
            let g = (Oracle.artifact oracle).Ln_route.Artifact.graph in
            Workload.generate ~seed:(seed + (0x9e3779b9 * (n + 1))) g spec
              ~count:wanted.(n))
      digests
  in
  let cursor = Array.make nnets 0 in
  Array.map
    (fun n ->
      if Array.length pools.(n) = 0 then { net = digests.(n); u = 0; v = 0 }
      else begin
        let u, v = pools.(n).(cursor.(n)) in
        cursor.(n) <- cursor.(n) + 1;
        { net = digests.(n); u; v }
      end)
    net_of

let run ?(domains = 1) ?cache_capacity store ~tier requests =
  if domains < 1 then invalid_arg "Fleet.run: domains < 1";
  let count = Array.length requests in
  let store_before = Store.stats store in
  let t0 = Unix.gettimeofday () in
  (* Sequential resolution pre-pass: every store-LRU decision (hit,
     load, eviction, quarantine) happens here, on this domain, in
     request order — deterministic accounting, and workers only ever
     see resolved oracles. Loaded instances stay pinned by the
     [resolved] array for the batch even if the store evicts them. *)
  let resolved = Array.make (max 1 count) None in
  let skipped = ref 0 in
  for i = 0 to count - 1 do
    match Store.oracle store requests.(i).net with
    | Ok oracle -> resolved.(i) <- Some oracle
    | Error _ -> incr skipped
  done;
  let digests =
    let seen = Hashtbl.create 16 in
    for i = 0 to count - 1 do
      if Option.is_some resolved.(i) then Hashtbl.replace seen requests.(i).net ()
    done;
    Hashtbl.fold (fun d () acc -> d :: acc) seen [] |> List.sort String.compare
    |> Array.of_list
  in
  let nnets = Array.length digests in
  let index = Hashtbl.create 16 in
  Array.iteri (fun n d -> Hashtbl.replace index d n) digests;
  let net_idx =
    Array.init count (fun i ->
        if Option.is_none resolved.(i) then -1
        else Hashtbl.find index requests.(i).net)
  in
  (* Registry handles are registered here, on the main domain, so the
     workers' hot loop never takes the registry mutex. *)
  let mh =
    if Metrics.on () then
      Array.map (fun d -> Some (Serve.latency_metric ~digest:d tier)) digests
    else Array.make nnets None
  in
  let chunks = (count + chunk_queries - 1) / chunk_queries in
  let sums = Array.init chunks (fun _ -> Array.make nnets 0.0) in
  let next = Atomic.make 0 in
  let worker () =
    let hist = Metrics.Hist.create ~error:Serve.lat_error () in
    let clones = Hashtbl.create 8 in
    let oracle_for i o =
      if tier <> Oracle.Cache then o
      else
        match Hashtbl.find_opt clones net_idx.(i) with
        | Some c -> c
        | None ->
          let c = Oracle.clone ?cache_capacity o in
          Hashtbl.replace clones net_idx.(i) c;
          c
    in
    let rec loop () =
      let c = Atomic.fetch_and_add next 1 in
      if c < chunks then begin
        let lo = c * chunk_queries in
        let hi = min count (lo + chunk_queries) in
        let row = sums.(c) in
        for i = lo to hi - 1 do
          match resolved.(i) with
          | None -> ()
          | Some o ->
            let r = requests.(i) in
            let q0 = Unix.gettimeofday () in
            let ans = Oracle.query (oracle_for i o) ~tier r.u r.v in
            let us = 1e6 *. (Unix.gettimeofday () -. q0) in
            Metrics.Hist.observe hist us;
            (match mh.(net_idx.(i)) with
            | Some m -> Metrics.observe m us
            | None -> ());
            row.(net_idx.(i)) <- row.(net_idx.(i)) +. ans.Oracle.dist
        done;
        loop ()
      end
    in
    loop ();
    let cache =
      Hashtbl.fold
        (fun _ clone (acc : Oracle.cache_stats) ->
          let s = Oracle.cache_stats clone in
          {
            Oracle.hits = acc.Oracle.hits + s.Oracle.hits;
            misses = acc.Oracle.misses + s.Oracle.misses;
            evictions = acc.Oracle.evictions + s.Oracle.evictions;
            entries = acc.Oracle.entries + s.Oracle.entries;
          })
        clones
        { Oracle.hits = 0; misses = 0; evictions = 0; entries = 0 }
    in
    (hist, cache)
  in
  let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
  let main_result = worker () in
  let results = main_result :: (Array.map Domain.join spawned |> Array.to_list) in
  let wall_s = Unix.gettimeofday () -. t0 in
  let hist =
    List.fold_left
      (fun acc (h, _) -> Metrics.Hist.merge acc h)
      (Metrics.Hist.create ~error:Serve.lat_error ())
      results
  in
  let cache =
    List.fold_left
      (fun (acc : Oracle.cache_stats) (_, (s : Oracle.cache_stats)) ->
        {
          Oracle.hits = acc.Oracle.hits + s.Oracle.hits;
          misses = acc.Oracle.misses + s.Oracle.misses;
          evictions = acc.Oracle.evictions + s.Oracle.evictions;
          entries = acc.Oracle.entries + s.Oracle.entries;
        })
      { Oracle.hits = 0; misses = 0; evictions = 0; entries = 0 }
      results
  in
  let per_net_queries = Array.make nnets 0 in
  Array.iter (fun n -> if n >= 0 then per_net_queries.(n) <- per_net_queries.(n) + 1) net_idx;
  (* Ascending-chunk, then ascending-digest summation: the fixed float
     addition order behind the byte-identical checksum guarantee. *)
  let per_net = Array.make nnets 0.0 in
  for c = 0 to chunks - 1 do
    for n = 0 to nnets - 1 do
      per_net.(n) <- per_net.(n) +. sums.(c).(n)
    done
  done;
  let checksum = ref 0.0 in
  for n = 0 to nnets - 1 do
    checksum := !checksum +. per_net.(n)
  done;
  if Metrics.on () then
    Array.iter (fun d -> Metrics.incr (Serve.batches_metric ~digest:d tier)) digests;
  let store_after = Store.stats store in
  let answered = count - !skipped in
  {
    tier;
    domains;
    queries = answered;
    skipped = !skipped;
    networks = nnets;
    wall_s;
    qps = (if wall_s > 0.0 then float_of_int answered /. wall_s else 0.0);
    latency = Serve.latency_of_hist hist;
    checksum = !checksum;
    nets =
      List.init nnets (fun n ->
          {
            digest = digests.(n);
            queries = per_net_queries.(n);
            checksum = per_net.(n);
          });
    store =
      {
        store_after with
        Store.hits = store_after.Store.hits - store_before.Store.hits;
        misses = store_after.Store.misses - store_before.Store.misses;
        evictions = store_after.Store.evictions - store_before.Store.evictions;
      };
    cache;
  }

let store_hit_rate o =
  let total = o.store.Store.hits + o.store.Store.misses in
  if total = 0 then 0.0 else float_of_int o.store.Store.hits /. float_of_int total

let checksum_lines o =
  let b = Buffer.create 256 in
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "%s %.17g\n" n.digest n.checksum))
    o.nets;
  Buffer.add_string b (Printf.sprintf "total %.17g\n" o.checksum);
  Buffer.contents b

let pp_outcome ppf o =
  Format.fprintf ppf
    "tier %s @@ %d domain%s: %d queries over %d network%s in %.3fs (%.0f qps); \
     latency us p50 %.1f p90 %.1f p99 %.1f max %.1f; store %d/%d hits (%d \
     evictions)"
    (Oracle.tier_name o.tier) o.domains
    (if o.domains = 1 then "" else "s")
    o.queries o.networks
    (if o.networks = 1 then "" else "s")
    o.wall_s o.qps o.latency.Serve.p50_us o.latency.Serve.p90_us
    o.latency.Serve.p99_us o.latency.Serve.max_us o.store.Store.hits
    (o.store.Store.hits + o.store.Store.misses)
    o.store.Store.evictions;
  if o.skipped > 0 then Format.fprintf ppf "; %d skipped" o.skipped;
  if o.cache.Oracle.hits + o.cache.Oracle.misses > 0 then
    Format.fprintf ppf "; source cache %d/%d hits" o.cache.Oracle.hits
      (o.cache.Oracle.hits + o.cache.Oracle.misses)
