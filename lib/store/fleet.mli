(** Domain-sharded multi-network serving over a {!Store}.

    {!run} pushes a batch of (network digest, source, destination)
    requests through one oracle tier, sharding the work across OCaml
    domains with the work-stealing shape of
    [Ln_congest.Engine.run_par]: the request array is cut into
    fixed-width chunks ({!chunk_queries}, independent of the domain
    count), domains claim chunks off a shared atomic cursor, and every
    per-chunk accumulator is merged on the main domain in ascending
    chunk order. Because the chunk boundaries and every merge order
    are functions of the batch alone, the answered-distance checksums
    (per network and global) are byte-identical at every domain count
    — the fleet's replay/correctness gate, pinned by [store-smoke] and
    the QCheck differential.

    Mutability is confined by construction:
    - network resolution (the store's oracle LRU: loads, evictions,
      quarantines) happens in a sequential pre-pass on the calling
      domain, so store accounting is deterministic too;
    - tiers A/B are read-only on shared oracles — embarrassingly
      parallel;
    - the source-cache tier gets one {!Ln_route.Oracle.clone} per
      (domain, network); per-clone counters are summed
      order-independently at the end, like the [Metrics] shards.

    Latencies stream into per-domain histograms merged after the
    barrier, and into the per-digest [lightnet_serve_latency_us]
    registry series ({!Ln_route.Serve.latency_metric}). *)

type request = { net : string; u : int; v : int }

type net_outcome = {
  digest : string;
  queries : int;
  checksum : float;  (** sum of answered distances on this network *)
}

type outcome = {
  tier : Ln_route.Oracle.tier;
  domains : int;
  queries : int;  (** answered *)
  skipped : int;  (** requests whose network failed to resolve *)
  networks : int;  (** distinct networks answered *)
  wall_s : float;
  qps : float;
  latency : Ln_route.Serve.latency;
  checksum : float;  (** global: per-network sums in digest order *)
  nets : net_outcome list;  (** sorted by digest *)
  store : Store.stats;
      (** hit/miss/eviction deltas over this batch; occupancy fields
          are end-of-batch values *)
  cache : Ln_route.Oracle.cache_stats;
      (** source-cache tier: per-domain clone counters, summed *)
}

val chunk_queries : int
(** Fixed chunk width (512): the unit of work domains claim, and the
    unit of checksum accumulation. *)

(** [workload store spec ~count] draws [count] requests: networks by a
    Zipf([net_skew], default 1.1; [<= 0.0] is uniform) over the
    store's ready digests in sorted order, then per-network (source,
    destination) pairs from {!Ln_route.Workload.generate} with a
    per-network seed derived from [seed]. Deterministic for a fixed
    (store contents, spec, seed, count). Resolves each requested
    network once — so it warms the store — but {!run} reports LRU
    deltas over its own batch, so no reset is needed in between.
    @raise Invalid_argument if the store has no ready artifacts. *)
val workload :
  ?seed:int ->
  ?net_skew:float ->
  Store.t ->
  Ln_route.Workload.spec ->
  count:int ->
  request array

(** [run store ~tier requests] serves the batch on [domains] domains
    (default 1; the calling domain always participates).
    [cache_capacity] sizes the per-domain source-cache clones
    (defaults to each oracle's own capacity). Requests whose network
    cannot be resolved (unknown or quarantined digest) are counted in
    [skipped], never fatal.
    @raise Invalid_argument if [domains < 1]. *)
val run :
  ?domains:int ->
  ?cache_capacity:int ->
  Store.t ->
  tier:Ln_route.Oracle.tier ->
  request array ->
  outcome

(** Store-LRU hit fraction of the batch: hits / (hits + misses), 0.0
    when the batch resolved nothing. *)
val store_hit_rate : outcome -> float

(** The replay invariant as text: one ["<digest> <checksum>"] line per
    network (digest order, [%.17g] — exact float round-trip) and a
    final ["total <checksum>"] line. Byte-identical across domain
    counts; [serve --checksum-out] writes it and [store-smoke] [cmp]s
    it at 1/2/4 domains. *)
val checksum_lines : outcome -> string

val pp_outcome : Format.formatter -> outcome -> unit
