(** Digest-keyed artifact store: the many-networks serving substrate.

    A store is a directory of canonically-encoded {!Ln_route.Artifact}
    files, each named by the 16-hex-digit digest of its source graph
    ([<digest>.artifact]). On top of the directory sits a
    capacity-bounded LRU of {e loaded} oracles: {!oracle} resolves a
    digest to a ready {!Ln_route.Oracle.t}, loading (and evicting the
    stalest resident) on a miss. Hit/miss/eviction traffic is counted
    both locally ({!stats}) and through the {!Ln_obs.Metrics} registry
    ([lightnet_store_*] series).

    Corruption is quarantined, not fatal: a file that
    {!Ln_route.Artifact.load} rejects (bad magic, checksum or digest
    mismatch, truncation) — or whose content digest disagrees with its
    filename — is renamed to [<name>.artifact.quarantined] and its
    entry marked {!Quarantined}; every other network keeps serving.
    {!gc} deletes quarantined files; re-{!add}ing a good copy of the
    same network revives the digest.

    [add] re-encodes through [load -> save], so stored files are
    always in canonical form regardless of how the input was produced
    (the encoding is deterministic, so canonical files are
    byte-diffable).

    A store is a single-domain structure: resolve oracles on one
    domain (the fleet driver does this in its sequential pre-pass,
    which also makes the LRU accounting deterministic), then share the
    resolved oracles with workers. *)

type status = Ready | Quarantined of string  (** why it was rejected *)

type entry = {
  digest : string;  (** 16 lowercase hex digits *)
  path : string;  (** the [.artifact] path (even when quarantined) *)
  bytes : int;  (** on-disk size, 0 if the file is missing *)
  status : status;
  loaded : bool;  (** currently resident in the oracle LRU *)
}

type stats = {
  hits : int;
  misses : int;  (** artifact loads (including ones that quarantined) *)
  evictions : int;
  loaded : int;  (** oracles currently resident *)
  ready : int;
  quarantined : int;
}

type t

(** [open_dir dir] creates [dir] if needed and indexes every
    [*.artifact] / [*.artifact.quarantined] file whose stem is a
    well-formed digest. Nothing is loaded yet. [capacity] bounds the
    loaded-oracle LRU (default 8); [cache_capacity] is passed to each
    {!Ln_route.Oracle.create} (default 64).
    @raise Invalid_argument on capacities < 1 or if [dir] exists and
    is not a directory. *)
val open_dir : ?capacity:int -> ?cache_capacity:int -> string -> t

val dir : t -> string
val capacity : t -> int

(** Digests of the {!Ready} entries, sorted. *)
val digests : t -> string list

(** Every entry, sorted by digest. *)
val ls : t -> entry list

(** [oracle t digest] is the loaded oracle for [digest]: an LRU hit,
    or a load (evicting the stalest resident at capacity). [Error]
    on unknown digests and quarantined or newly-quarantining
    artifacts. *)
val oracle : t -> string -> (Ln_route.Oracle.t, string) result

(** [add t path] ingests the artifact file at [path]: validates it,
    re-encodes it canonically as [<digest>.artifact] inside the store
    and indexes it. Idempotent — adding a digest that is already
    [`Ready] is a no-op reported as [`Duplicate]; adding a good copy
    of a quarantined digest revives it (reported as [`Added]). *)
val add : t -> string -> (string * [ `Added | `Duplicate ], string) result

(** Re-read every entry from disk and check it end to end (format,
    checksum, filename-vs-content digest). Failing entries are
    quarantined as a side effect; already-quarantined entries report
    their stored reason. Sorted by digest. *)
val verify : t -> (string * (unit, string) result) list

(** Delete quarantined files and drop their entries; returns how many
    were collected. *)
val gc : t -> int

val stats : t -> stats

(** Zero the hit/miss/eviction counters (registry counters and entry
    status are untouched). *)
val reset_stats : t -> unit
