module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Paths = Ln_graph.Paths
module Metrics = Ln_obs.Metrics

type tier = Spanner | Label | Cache

let tier_name = function
  | Spanner -> "spanner"
  | Label -> "label"
  | Cache -> "cache"

let tier_of_string = function
  | "spanner" | "a" | "A" -> Some Spanner
  | "label" | "b" | "B" -> Some Label
  | "cache" | "c" | "C" -> Some Cache
  | _ -> None

let pp_tier ppf t = Format.pp_print_string ppf (tier_name t)

type answer = { dist : float; tier : tier; cache_hit : bool }

type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

(* Always-on serving counters: per-tier query totals plus the shared
   source-cache accounting (summed across every oracle in the
   process; the per-oracle view stays in [cache_stats]). Updates are
   one ref read when no exporter is attached. *)
let m_query =
  let q tier =
    Metrics.counter ~help:"Oracle queries answered."
      ~labels:[ ("tier", tier_name tier) ]
      "lightnet_oracle_queries_total"
  in
  let spanner = q Spanner and label = q Label and cache = q Cache in
  function Spanner -> spanner | Label -> label | Cache -> cache

let m_hits =
  Metrics.counter ~help:"Source-cache hits." "lightnet_oracle_cache_hits_total"

let m_misses =
  Metrics.counter ~help:"Source-cache misses (exact SSSP rebuilds)."
    "lightnet_oracle_cache_misses_total"

let m_evictions =
  Metrics.counter ~help:"Source-cache LRU evictions."
    "lightnet_oracle_cache_evictions_total"

(* Single-source LRU: full Dijkstra-on-H distance arrays keyed by
   source vertex. Capacities are small (each entry is O(n) floats), so
   eviction scans for the stalest stamp instead of maintaining a
   linked list. *)
type lru = {
  capacity : int;
  table : (int, float array * int ref) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  artifact : Artifact.t;
  g : Graph.t;
  spanner_ok : int -> bool; (* membership mask of H's edge ids *)
  labels : Labels.t; (* SLT tree labels *)
  lru : lru;
}

let create ?(cache_capacity = 64) (artifact : Artifact.t) =
  if cache_capacity < 1 then invalid_arg "Oracle.create: cache capacity < 1";
  let g = artifact.Artifact.graph in
  let mask = Array.make (max 1 (Graph.m g)) false in
  List.iter (fun e -> mask.(e) <- true) artifact.Artifact.spanner_edges;
  let slt_tree =
    Tree.of_edges g ~root:artifact.Artifact.slt_root artifact.Artifact.slt_edges
  in
  {
    artifact;
    g;
    spanner_ok = (fun e -> mask.(e));
    labels = Labels.build slt_tree;
    lru =
      {
        capacity = cache_capacity;
        table = Hashtbl.create (2 * cache_capacity);
        clock = 0;
        hits = 0;
        misses = 0;
        evictions = 0;
      };
  }

(* Share every immutable tier (graph, H mask, SLT labels) but give the
   clone its own empty source-cache LRU: the one mutable piece. This
   is what lets a fleet of domains serve the cache tier from one
   loaded artifact without locks — each domain queries its own
   clone and the per-clone counters are summed afterwards. *)
let clone ?cache_capacity t =
  let capacity = Option.value cache_capacity ~default:t.lru.capacity in
  if capacity < 1 then invalid_arg "Oracle.clone: cache capacity < 1";
  {
    t with
    lru =
      {
        capacity;
        table = Hashtbl.create (2 * capacity);
        clock = 0;
        hits = 0;
        misses = 0;
        evictions = 0;
      };
  }

let artifact t = t.artifact
let labels t = t.labels

let spanner_sssp t src =
  (Paths.dijkstra ~edge_ok:t.spanner_ok t.g src).Paths.dist

let evict_stalest lru =
  let victim = ref (-1) and stalest = ref max_int in
  Hashtbl.iter
    (fun src (_, stamp) ->
      if !stamp < !stalest then begin
        stalest := !stamp;
        victim := src
      end)
    lru.table;
  if !victim >= 0 then begin
    Hashtbl.remove lru.table !victim;
    lru.evictions <- lru.evictions + 1;
    if Metrics.on () then Metrics.incr m_evictions
  end

let cached_sssp t src =
  let lru = t.lru in
  lru.clock <- lru.clock + 1;
  match Hashtbl.find_opt lru.table src with
  | Some (dist, stamp) ->
    lru.hits <- lru.hits + 1;
    if Metrics.on () then Metrics.incr m_hits;
    stamp := lru.clock;
    (dist, true)
  | None ->
    lru.misses <- lru.misses + 1;
    if Metrics.on () then Metrics.incr m_misses;
    let dist = spanner_sssp t src in
    if Hashtbl.length lru.table >= lru.capacity then evict_stalest lru;
    Hashtbl.replace lru.table src (dist, ref lru.clock);
    (dist, false)

let query t ~tier u v =
  if Metrics.on () then Metrics.incr (m_query tier);
  match tier with
  | Spanner -> { dist = (spanner_sssp t u).(v); tier; cache_hit = false }
  | Label -> { dist = Labels.dist t.labels u v; tier; cache_hit = false }
  | Cache ->
    let dist, cache_hit = cached_sssp t u in
    { dist = dist.(v); tier; cache_hit }

let tree_route t ~src ~dst = Labels.route t.labels ~src ~dst

let cache_stats t =
  {
    hits = t.lru.hits;
    misses = t.lru.misses;
    evictions = t.lru.evictions;
    entries = Hashtbl.length t.lru.table;
  }

let reset_cache_stats t =
  t.lru.hits <- 0;
  t.lru.misses <- 0;
  t.lru.evictions <- 0
