(* Sparse-table range-minimum queries: O(n log n) preprocessing, O(1)
   argmin on inclusive index ranges. Ties break towards the leftmost
   position so answers are deterministic. Used by Labels for Euler-tour
   LCA, where the values are tour hop-depths. *)

type t = {
  values : int array;
  table : int array array;
      (* table.(k).(i) = argmin of values over [i, i + 2^k) *)
}

let log2_floor n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let build values =
  let n = Array.length values in
  if n = 0 then { values; table = [||] }
  else begin
    let levels = log2_floor n + 1 in
    let table = Array.make levels [||] in
    table.(0) <- Array.init n Fun.id;
    for k = 1 to levels - 1 do
      let half = 1 lsl (k - 1) in
      let width = 1 lsl k in
      let row = Array.make (n - width + 1) 0 in
      let prev = table.(k - 1) in
      for i = 0 to n - width do
        let a = prev.(i) and b = prev.(i + half) in
        row.(i) <- (if values.(a) <= values.(b) then a else b)
      done;
      table.(k) <- row
    done;
    { values; table }
  end

let argmin t i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  let n = Array.length t.values in
  if i < 0 || j >= n then invalid_arg "Rmq.argmin: index out of range";
  if i = j then i
  else begin
    let k = log2_floor (j - i + 1) in
    let a = t.table.(k).(i) and b = t.table.(k).(j - (1 lsl k) + 1) in
    if t.values.(b) < t.values.(a) || (t.values.(b) = t.values.(a) && b < a) then b
    else a
  end

let min_value t i j = t.values.(argmin t i j)
let length t = Array.length t.values
