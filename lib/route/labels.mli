(** Tree routing and distance labels from an Euler tour.

    Built once from a spanning tree (the SLT or the MST of an
    artifact), the label table answers, with no Dijkstra and no graph
    traversal at query time:

    - ancestor tests in O(1), from DFS (tour) interval containment;
    - LCA in O(1), via sparse-table RMQ ({!Rmq}) over the tour's
      hop-depth sequence;
    - exact weighted tree distance in O(1), as
      [droot u + droot v - 2 droot (lca u v)] over the prefix sums of
      edge weights to the root;
    - next-hop routing in O(log deg): towards a descendant, binary
      search over the children's tour intervals; otherwise the parent.

    Per-vertex state (interval endpoints, depth, weighted depth,
    parent) is O(1) words — the per-vertex labels of the serving
    layer; the shared RMQ index adds O(n log n) once per tree. *)

type t

(** [build tree] labels a spanning tree of its host graph.
    @raise Invalid_argument if [tree] does not cover every vertex. *)
val build : Ln_graph.Tree.t -> t

val size : t -> int
val root : t -> int

(** [is_ancestor t a v] — is [a] an ancestor of [v] (reflexively)? *)
val is_ancestor : t -> int -> int -> bool

val lca : t -> int -> int -> int

(** Exact weighted distance between [u] and [v] along the tree. *)
val dist : t -> int -> int -> float

val dist_hops : t -> int -> int -> int

(** [next_hop t ~src ~dst] is the neighbour of [src] on the tree path
    to [dst], or [None] when [src = dst]. *)
val next_hop : t -> src:int -> dst:int -> int option

(** The full tree path from [src] to [dst], both endpoints included,
    assembled by repeated {!next_hop}. *)
val route : t -> src:int -> dst:int -> int list
