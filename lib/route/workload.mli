(** Deterministic query-workload generators for the serving layer.

    Three shapes, all seeded (never [Random.self_init]), so a
    workload is replayable from its (spec, seed, count) triple:

    - {!Uniform}: source and destination uniform, distinct;
    - {!Zipf}: sources Zipf-skewed with exponent [s] over a seeded
      permutation of the vertices (a scattered hot set — the shape
      that exercises the oracle's source cache), destination uniform;
    - {!Local}: destination uniform within a bounded BFS
      neighbourhood of the source (short-haul traffic). *)

type spec =
  | Uniform
  | Zipf of float  (** skew exponent [s] *)
  | Local of int  (** hop radius *)

val describe : spec -> string

(** Parse a CLI spec: ["uniform"], ["zipf"], ["zipf:1.4"], ["local"],
    ["local:2"]. Defaults: [s = 1.1], radius 3. *)
val parse : string -> spec option

(** [generate g spec ~count] is an array of [count] (source,
    destination) pairs with both endpoints in [g] and source <>
    destination. *)
val generate :
  ?seed:int -> Ln_graph.Graph.t -> spec -> count:int -> (int * int) array
