module Graph = Ln_graph.Graph

(* On-disk layout (all integers little-endian):

     offset  size  field
     0       8     magic "LNROUTE1"
     8       4     format version (u32)
     12      8     payload length (u64)
     20      8     FNV-1a 64 checksum of the payload
     28      -     payload

   Payload sections, in order: graph (n, m, edges as u32/u32/f64
   bits), graph digest (u64, FNV-1a of the graph section bytes),
   SLT root (u32), promised spanner stretch (f64 bits), three edge-id
   lists (spanner, SLT, MST; u32 count + u32 ids), then two
   string-pair tables (construction parameters, ledger notes). The
   encoder is deterministic — lists are stored sorted, there are no
   timestamps — so save -> load -> save is byte-identical, which the
   test-suite pins. *)

let magic = "LNROUTE1"
let version = 1

type t = {
  graph : Graph.t;
  digest : int64; (* FNV-1a 64 of the canonical graph encoding *)
  slt_root : int;
  spanner_stretch : float; (* promised stretch bound t of the spanner *)
  spanner_edges : int list;
  slt_edges : int list;
  mst_edges : int list;
  params : (string * string) list;
  notes : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* FNV-1a 64. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_bytes b off len =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        fnv_prime
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Encoding. *)

let add_u32 b i =
  if i < 0 || i > 0x3fffffff then invalid_arg "Artifact: u32 field out of range";
  Buffer.add_int32_le b (Int32.of_int i)

let add_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_string b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_edge_list b ids =
  add_u32 b (List.length ids);
  List.iter (add_u32 b) ids

let add_pairs b kvs =
  add_u32 b (List.length kvs);
  List.iter
    (fun (k, v) ->
      add_string b k;
      add_string b v)
    kvs

let encode_graph b g =
  add_u32 b (Graph.n g);
  add_u32 b (Graph.m g);
  Graph.iter_edges g (fun _ e ->
      add_u32 b e.Graph.u;
      add_u32 b e.Graph.v;
      add_f64 b e.Graph.w)

let graph_digest g =
  let b = Buffer.create (16 + (16 * Graph.m g)) in
  encode_graph b g;
  let bytes = Buffer.to_bytes b in
  fnv1a_bytes bytes 0 (Bytes.length bytes)

let digest_hex t = Printf.sprintf "%016Lx" t.digest

(* ------------------------------------------------------------------ *)
(* Construction. *)

let check_edges g name ids =
  let m = Graph.m g in
  List.iter
    (fun id ->
      if id < 0 || id >= m then
        invalid_arg (Printf.sprintf "Artifact.make: %s edge id %d out of range" name id))
    ids;
  List.sort_uniq Int.compare ids

let make ~graph ~slt_root ~spanner_stretch ~spanner_edges ~slt_edges ~mst_edges
    ?(params = []) ?(notes = []) () =
  if slt_root < 0 || slt_root >= Graph.n graph then
    invalid_arg "Artifact.make: slt_root out of range";
  {
    graph;
    digest = graph_digest graph;
    slt_root;
    spanner_stretch;
    spanner_edges = check_edges graph "spanner" spanner_edges;
    slt_edges = check_edges graph "slt" slt_edges;
    mst_edges = check_edges graph "mst" mst_edges;
    params;
    notes;
  }

(* ------------------------------------------------------------------ *)
(* Save / load. *)

let encode_payload t =
  let b = Buffer.create 4096 in
  encode_graph b t.graph;
  Buffer.add_int64_le b t.digest;
  add_u32 b t.slt_root;
  add_f64 b t.spanner_stretch;
  add_edge_list b t.spanner_edges;
  add_edge_list b t.slt_edges;
  add_edge_list b t.mst_edges;
  add_pairs b t.params;
  add_pairs b t.notes;
  Buffer.to_bytes b

let save path t =
  let payload = encode_payload t in
  let len = Bytes.length payload in
  let header = Buffer.create 28 in
  Buffer.add_string header magic;
  Buffer.add_int32_le header (Int32.of_int version);
  Buffer.add_int64_le header (Int64.of_int len);
  Buffer.add_int64_le header (fnv1a_bytes payload 0 len);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Buffer.output_buffer oc header;
      output_bytes oc payload)

type cursor = { data : bytes; mutable pos : int }

let need c k =
  if c.pos + k > Bytes.length c.data then
    failwith "Artifact.load: truncated payload"

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then failwith "Artifact.load: negative u32 field";
  v

let get_i64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  v

let get_f64 c = Int64.float_of_bits (get_i64 c)

let get_string c =
  let len = get_u32 c in
  need c len;
  let s = Bytes.sub_string c.data c.pos len in
  c.pos <- c.pos + len;
  s

let get_edge_list c =
  let k = get_u32 c in
  List.init k (fun _ -> get_u32 c)

let get_pairs c =
  let k = get_u32 c in
  List.init k (fun _ ->
      let key = get_string c in
      let v = get_string c in
      (key, v))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
      let header = really_input_string ic 28 in
      if String.sub header 0 8 <> magic then
        failwith "Artifact.load: bad magic (not a lightnet artifact)";
      let got_version =
        Int32.to_int (String.get_int32_le header 8)
      in
      if got_version <> version then
        failwith
          (Printf.sprintf "Artifact.load: format version %d, expected %d"
             got_version version);
      let len = Int64.to_int (String.get_int64_le header 12) in
      if len < 0 || len > Sys.max_string_length then
        failwith "Artifact.load: implausible payload length";
      let checksum = String.get_int64_le header 20 in
      let payload = Bytes.create len in
      really_input ic payload 0 len;
      (try
         ignore (input_char ic);
         failwith "Artifact.load: trailing bytes after payload"
       with End_of_file -> ());
      if fnv1a_bytes payload 0 len <> checksum then
        failwith "Artifact.load: checksum mismatch (corrupt artifact)";
      let c = { data = payload; pos = 0 } in
      let graph_start = c.pos in
      let n = get_u32 c in
      let m = get_u32 c in
      let edges =
        List.init m (fun _ ->
            let u = get_u32 c in
            let v = get_u32 c in
            let w = get_f64 c in
            { Graph.u; v; w })
      in
      let graph_end = c.pos in
      let graph = Graph.create n edges in
      if Graph.m graph <> m then
        failwith "Artifact.load: graph edge list not canonical";
      let digest = get_i64 c in
      if fnv1a_bytes payload graph_start (graph_end - graph_start) <> digest
      then failwith "Artifact.load: graph digest mismatch";
      let slt_root = get_u32 c in
      let spanner_stretch = get_f64 c in
      let spanner_edges = get_edge_list c in
      let slt_edges = get_edge_list c in
      let mst_edges = get_edge_list c in
      let params = get_pairs c in
      let notes = get_pairs c in
      if c.pos <> len then failwith "Artifact.load: payload length mismatch";
      let t =
        {
          graph;
          digest;
          slt_root;
          spanner_stretch;
          spanner_edges;
          slt_edges;
          mst_edges;
          params;
          notes;
        }
      in
      List.iter
        (fun (name, ids) -> ignore (check_edges graph name ids))
        [
          ("spanner", spanner_edges); ("slt", slt_edges); ("mst", mst_edges);
        ];
      t
      with End_of_file -> failwith "Artifact.load: truncated artifact file")

let pp ppf t =
  Format.fprintf ppf
    "artifact(v%d, graph n=%d m=%d, digest %s, spanner %d edges (t<=%.2f), slt %d edges @@ root %d, mst %d edges, %d params, %d notes)"
    version (Graph.n t.graph) (Graph.m t.graph) (digest_hex t)
    (List.length t.spanner_edges) t.spanner_stretch
    (List.length t.slt_edges) t.slt_root
    (List.length t.mst_edges) (List.length t.params) (List.length t.notes)
