module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Gen = Ln_graph.Gen

type spec =
  | Uniform
  | Zipf of float (* skew exponent over a permuted source ranking *)
  | Local of int (* BFS-local pairs within this many hops *)

let describe = function
  | Uniform -> "uniform"
  | Zipf s -> Printf.sprintf "zipf(s=%.2f)" s
  | Local r -> Printf.sprintf "local(hops<=%d)" r

(* "uniform" | "zipf" | "zipf:S" | "local" | "local:R" *)
let parse spec =
  let name, arg =
    match String.index_opt spec ':' with
    | None -> (spec, None)
    | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  match (name, arg) with
  | "uniform", None -> Some Uniform
  | "zipf", None -> Some (Zipf 1.1)
  | "zipf", Some s -> Option.map (fun s -> Zipf s) (float_of_string_opt s)
  | "local", None -> Some (Local 3)
  | "local", Some r -> Option.map (fun r -> Local r) (int_of_string_opt r)
  | _ -> None

(* Fisher–Yates permutation: Zipf ranks are mapped through it so the
   hot sources are scattered over the vertex set instead of clustering
   at the low vertex ids the generators favour structurally. *)
let permutation rng n =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let other_than rng n v =
  let u = ref (Random.State.int rng n) in
  while !u = v do
    u := Random.State.int rng n
  done;
  !u

let generate ?(seed = 0) g spec ~count =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Workload.generate: need at least two vertices";
  if count < 0 then invalid_arg "Workload.generate: negative count";
  let rng = Random.State.make [| seed; 0x90a7e |] in
  match spec with
  | Uniform ->
    Array.init count (fun _ ->
        let u = Random.State.int rng n in
        (u, other_than rng n u))
  | Zipf s ->
    let rank = Gen.zipf_sampler rng ~s ~n in
    let perm = permutation rng n in
    Array.init count (fun _ ->
        let u = perm.(rank ()) in
        (u, other_than rng n u))
  | Local radius ->
    if radius < 1 then invalid_arg "Workload.generate: local radius < 1";
    (* Memoised per-source neighbourhoods: repeated sources (there are
       at most n distinct ones) cost one BFS each, not one per query. *)
    let near = Hashtbl.create 64 in
    let neighbourhood u =
      match Hashtbl.find_opt near u with
      | Some vs -> vs
      | None ->
        let hops = Paths.bfs_hops g u in
        let vs = ref [] in
        for v = n - 1 downto 0 do
          if v <> u && hops.(v) >= 1 && hops.(v) <= radius then vs := v :: !vs
        done;
        let vs = Array.of_list !vs in
        Hashtbl.replace near u vs;
        vs
    in
    Array.init count (fun _ ->
        let u = Random.State.int rng n in
        let vs = neighbourhood u in
        if Array.length vs = 0 then (u, other_than rng n u)
        else (u, vs.(Random.State.int rng (Array.length vs))))
