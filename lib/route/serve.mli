(** Batch serving driver and stretch certifier.

    {!run} pushes a workload through one oracle tier and reports
    throughput, latency percentiles, the cache counter deltas and a
    checksum of the answered distances (a cheap replay invariant:
    same artifact + workload + tier must reproduce it bit-for-bit).

    {!certify} replays a sample of answers against exact Dijkstra
    distances on the source graph G and renders a verdict in
    {!Ln_congest.Monitor}'s vocabulary: {!Ln_congest.Monitor.Correct}
    when every sampled answer is within the configured stretch bound,
    {!Ln_congest.Monitor.Wrong} (with the first counter-example)
    otherwise. Ground truth is amortised by grouping the sample per
    source — one exact SSSP per distinct source. *)

type latency = { p50_us : float; p90_us : float; p99_us : float; max_us : float }

type outcome = {
  tier : Oracle.tier;
  queries : int;
  wall_s : float;
  qps : float;
  latency : latency;
  cache : Oracle.cache_stats;  (** counter deltas over this batch *)
  checksum : float;  (** sum of answered distances *)
}

val run : Oracle.t -> tier:Oracle.tier -> (int * int) array -> outcome

(** Cache hit fraction of a batch: hits / (hits + misses), 0.0 when
    the tier touched no cache counters (never [nan]). *)
val hit_rate : outcome -> float

val pp_outcome : Format.formatter -> outcome -> unit

type certificate = {
  report : Ln_congest.Monitor.report;
  sampled : int;
  sources : int;  (** distinct sources (exact SSSPs replayed) *)
  max_stretch : float;
  violations : int;
  bound : float;
}

(** [certify oracle ~tier ~bound pairs] replays [pairs] (the first
    [sample] of them if given) and certifies every answer against
    [bound] times the exact G-distance. *)
val certify :
  ?sample:int ->
  Oracle.t ->
  tier:Oracle.tier ->
  bound:float ->
  (int * int) array ->
  certificate

val pp_certificate : Format.formatter -> certificate -> unit
