(** Batch serving driver and stretch certifier.

    {!run} pushes a workload through one oracle tier and reports
    throughput, latency percentiles, the cache counter deltas and a
    checksum of the answered distances (a cheap replay invariant:
    same artifact + workload + tier must reproduce it bit-for-bit).

    Latency percentiles are streamed through a constant-memory
    log-bucketed histogram ({!Ln_obs.Metrics.Hist}) for large
    batches — O(buckets), not O(queries), scratch — with relative
    error at most 1%; batches of at most {!exact_threshold} queries
    fall back to the exact sorted-array computation so tiny-batch
    percentiles keep their exact meaning. Each query latency is also
    observed into the process-wide [lightnet_serve_latency_us]
    registry histogram — labelled with the artifact digest and tier,
    so multi-network processes keep one series per network — when
    metrics are enabled, and [run]'s
    [snapshot_every]/[on_snapshot] hook surfaces periodic registry
    snapshots from inside the loop — the serving tier's live scrape
    point.

    {!certify} replays a sample of answers against exact Dijkstra
    distances on the source graph G and renders a verdict in
    {!Ln_congest.Monitor}'s vocabulary: {!Ln_congest.Monitor.Correct}
    when every sampled answer is within the configured stretch bound,
    {!Ln_congest.Monitor.Wrong} (with the first counter-example)
    otherwise. Ground truth is amortised by grouping the sample per
    source — one exact SSSP per distinct source. *)

type latency = { p50_us : float; p90_us : float; p99_us : float; max_us : float }

type outcome = {
  tier : Oracle.tier;
  queries : int;
  wall_s : float;
  qps : float;
  latency : latency;
  cache : Oracle.cache_stats;  (** counter deltas over this batch *)
  checksum : float;  (** sum of answered distances *)
}

val run :
  ?snapshot_every:int ->
  ?on_snapshot:(Ln_obs.Metrics.snapshot -> unit) ->
  Oracle.t ->
  tier:Oracle.tier ->
  (int * int) array ->
  outcome
(** [snapshot_every] (default 0 = never) triggers [on_snapshot] with a
    fresh {!Ln_obs.Metrics.snapshot} after every that-many queries. *)

val exact_threshold : int
(** Batches of at most this many queries report exact percentiles. *)

val lat_error : float
(** Relative-error bound of the streaming latency histograms (1%). *)

val latency_metric : digest:string -> Oracle.tier -> Ln_obs.Metrics.histogram
(** The per-(artifact digest, tier) [lightnet_serve_latency_us]
    registry handle. Registration is idempotent; exposed so external
    drivers (the fleet) observe into the same series {!run} uses. *)

val batches_metric : digest:string -> Oracle.tier -> Ln_obs.Metrics.counter
(** The per-(artifact digest, tier) [lightnet_serve_batches_total]
    registry handle. *)

val latency_of_samples : float array -> latency
(** Exact percentiles of a sample array (rank [ceil (p * n)], the
    definition BENCH_oracle.json has always used). Does not modify
    its argument. *)

val latency_of_hist : Ln_obs.Metrics.Hist.t -> latency
(** Streaming percentiles of a histogram: each within the histogram's
    relative-error bound of the exact value; [max_us] is exact. *)

(** Cache hit fraction of a batch: hits / (hits + misses), 0.0 when
    the tier touched no cache counters (never [nan]). *)
val hit_rate : outcome -> float

val pp_outcome : Format.formatter -> outcome -> unit

type certificate = {
  report : Ln_congest.Monitor.report;
  sampled : int;
  sources : int;  (** distinct sources (exact SSSPs replayed) *)
  max_stretch : float;
  violations : int;
  bound : float;
}

(** [certify oracle ~tier ~bound pairs] replays [pairs] (the first
    [sample] of them if given) and certifies every answer against
    [bound] times the exact G-distance. *)
val certify :
  ?sample:int ->
  Oracle.t ->
  tier:Oracle.tier ->
  bound:float ->
  (int * int) array ->
  certificate

val pp_certificate : Format.formatter -> certificate -> unit
