module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Euler = Ln_graph.Euler

type t = {
  n : int;
  root : int;
  seq : int array; (* vertex at each tour position, length 2n-1 *)
  first : int array; (* first tour position of v (preorder rank order) *)
  last : int array; (* last tour position of v *)
  parent : int array; (* -1 at root *)
  depth : int array; (* hop depth *)
  droot : float array; (* weighted distance to root (prefix sums) *)
  children : int array array; (* tour (DFS) order *)
  child_first : int array array; (* first.(c) for each child, increasing *)
  rmq : Rmq.t; (* over hop depths of tour positions *)
}

let build tree =
  if not (Tree.covers_all tree) then
    invalid_arg "Labels.build: tree must span its host graph";
  let g = Tree.host tree in
  let n = Graph.n g in
  let tour = Euler.of_tree tree in
  let seq = tour.Euler.seq in
  let len = Array.length seq in
  let first = Array.make n max_int in
  let last = Array.make n (-1) in
  for i = len - 1 downto 0 do
    first.(seq.(i)) <- i
  done;
  for i = 0 to len - 1 do
    last.(seq.(i)) <- i
  done;
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let droot = Array.make n 0.0 in
  for v = 0 to n - 1 do
    (match Tree.parent tree v with
    | Some (p, _) -> parent.(v) <- p
    | None -> ());
    depth.(v) <- Tree.depth_hops tree v;
    droot.(v) <- Tree.dist_to_root tree v
  done;
  let by_first a b = Int.compare first.(a) first.(b) in
  let children =
    Array.init n (fun v ->
        let cs = Array.of_list (Tree.children tree v) in
        Array.sort by_first cs;
        cs)
  in
  let child_first = Array.map (Array.map (fun c -> first.(c))) children in
  let tour_depth = Array.map (fun v -> depth.(v)) seq in
  { n; root = Tree.root tree; seq; first; last; parent; depth; droot;
    children; child_first; rmq = Rmq.build tour_depth }

let size t = t.n
let root t = t.root

let check_vertex t v name =
  if v < 0 || v >= t.n then invalid_arg (name ^ ": vertex out of range")

let is_ancestor t a v =
  check_vertex t a "Labels.is_ancestor";
  check_vertex t v "Labels.is_ancestor";
  t.first.(a) <= t.first.(v) && t.last.(v) <= t.last.(a)

let lca t u v =
  check_vertex t u "Labels.lca";
  check_vertex t v "Labels.lca";
  t.seq.(Rmq.argmin t.rmq t.first.(u) t.first.(v))

let dist t u v =
  let a = lca t u v in
  t.droot.(u) +. t.droot.(v) -. (2.0 *. t.droot.(a))

let dist_hops t u v =
  let a = lca t u v in
  t.depth.(u) + t.depth.(v) - (2 * t.depth.(a))

(* The child of [u] whose DFS interval contains [v]: the last child
   whose first position is <= first.(v). Children are interval-disjoint
   and ordered by first position, so binary search finds it. *)
let child_towards t u v =
  let firsts = t.child_first.(u) in
  let lo = ref 0 and hi = ref (Array.length firsts - 1) in
  let fv = t.first.(v) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if firsts.(mid) <= fv then lo := mid else hi := mid - 1
  done;
  t.children.(u).(!lo)

let next_hop t ~src ~dst =
  check_vertex t src "Labels.next_hop";
  check_vertex t dst "Labels.next_hop";
  if src = dst then None
  else if t.first.(src) <= t.first.(dst) && t.last.(dst) <= t.last.(src) then
    Some (child_towards t src dst)
  else Some t.parent.(src)

let route t ~src ~dst =
  let rec walk v acc =
    match next_hop t ~src:v ~dst with
    | None -> List.rev (v :: acc)
    | Some next -> walk next (v :: acc)
  in
  walk src []
