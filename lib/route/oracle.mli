(** Three-tier distance/route query engine over a loaded {!Artifact}.

    - {!Spanner} (tier A): exact Dijkstra on the sparse spanner H per
      query. Answers are within the artifact's promised stretch of the
      true G-distance by the spanner guarantee.
    - {!Label} (tier B): O(1) tree distance on the SLT via {!Labels} —
      no graph traversal at all. Exact on the SLT tree metric, an
      upper bound on the G-distance; stretch for arbitrary pairs is
      measured (certified), not promised.
    - {!Cache} (tier C): tier A amortised through a capacity-bounded
      single-source LRU — one Dijkstra per cache miss, O(1) per hit,
      with hit/miss/eviction counters. Same answers as tier A.

    Every answer is tagged with the tier that produced it (and, for
    tier C, whether it was a cache hit). *)

type tier = Spanner | Label | Cache

val tier_name : tier -> string
val tier_of_string : string -> tier option
val pp_tier : Format.formatter -> tier -> unit

type answer = { dist : float; tier : tier; cache_hit : bool }

type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

type t

(** [create artifact] readies all three tiers: builds the H edge mask,
    roots the SLT and labels it. [cache_capacity] bounds the number of
    cached single-source arrays (default 64).
    @raise Invalid_argument if the capacity is < 1 or the artifact's
    SLT does not span its graph. *)
val create : ?cache_capacity:int -> Artifact.t -> t

(** [clone t] shares every immutable structure (artifact, graph, H
    edge mask, SLT labels) with [t] but starts a fresh, empty
    source-cache LRU with zeroed counters ([cache_capacity] defaults
    to [t]'s). Tiers A/B are read-only, so a clone per domain makes
    every tier safe to query from parallel domains.
    @raise Invalid_argument if the capacity is < 1. *)
val clone : ?cache_capacity:int -> t -> t

val artifact : t -> Artifact.t
val labels : t -> Labels.t

(** [query t ~tier u v] answers one distance query on the chosen
    tier. *)
val query : t -> tier:tier -> int -> int -> answer

(** The full SLT tree path between two vertices (tier-B routing). *)
val tree_route : t -> src:int -> dst:int -> int list

(** [spanner_sssp t src] is the tier-A distance array from [src]
    (used by the certifier and benchmarks). *)
val spanner_sssp : t -> int -> float array

val cache_stats : t -> cache_stats
val reset_cache_stats : t -> unit
