(** Sparse-table range-minimum queries over an int array: O(n log n)
    preprocessing, O(1) queries on inclusive index ranges. The argmin
    of a tie is the leftmost minimising position, so query answers are
    deterministic. Built once per tree by {!Labels} for Euler-tour
    LCA. *)

type t

val build : int array -> t

(** [argmin t i j] is the index of the minimum value on the inclusive
    range [[min i j, max i j]] (leftmost on ties).
    @raise Invalid_argument if either index is out of range. *)
val argmin : t -> int -> int -> int

(** [min_value t i j] = [values.(argmin t i j)]. *)
val min_value : t -> int -> int -> int

val length : t -> int
