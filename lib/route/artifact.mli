(** Persisted network artifacts: the consumption-side handoff.

    A build run (spanner + SLT + MST on one source graph) is packaged
    into a single versioned binary file — magic, format version,
    payload checksum, then the source graph itself, a digest of its
    canonical encoding, the three edge-id lists, the promised spanner
    stretch, construction parameters and ledger notes. {!Oracle} and
    the [lightnet serve] command consume artifacts without re-running
    any construction.

    The encoding is deterministic (edge lists sorted, no timestamps),
    so [save -> load -> save] produces byte-identical files; the
    loader rejects bad magic, unknown versions, checksum or digest
    mismatches, truncated or oversized payloads, and out-of-range edge
    ids. No external serialization library is used. *)

type t = {
  graph : Ln_graph.Graph.t;  (** the source graph G *)
  digest : int64;  (** FNV-1a 64 of G's canonical encoding *)
  slt_root : int;
  spanner_stretch : float;  (** promised stretch bound t of the spanner *)
  spanner_edges : int list;  (** edge ids of the light spanner H *)
  slt_edges : int list;  (** edge ids of the shallow-light tree *)
  mst_edges : int list;
  params : (string * string) list;  (** construction parameters *)
  notes : (string * string) list;  (** replay notes from the ledgers *)
}

(** Validating constructor: sorts and dedups the edge lists, computes
    the graph digest.
    @raise Invalid_argument on out-of-range roots or edge ids. *)
val make :
  graph:Ln_graph.Graph.t ->
  slt_root:int ->
  spanner_stretch:float ->
  spanner_edges:int list ->
  slt_edges:int list ->
  mst_edges:int list ->
  ?params:(string * string) list ->
  ?notes:(string * string) list ->
  unit ->
  t

(** The digest {!make} computes, exposed for mismatch checks. *)
val graph_digest : Ln_graph.Graph.t -> int64

val digest_hex : t -> string

val save : string -> t -> unit

(** @raise Failure with a description of what is wrong when the file
    is not a valid artifact. *)
val load : string -> t

val pp : Format.formatter -> t -> unit
