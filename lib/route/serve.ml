module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Monitor = Ln_congest.Monitor

type latency = { p50_us : float; p90_us : float; p99_us : float; max_us : float }

type outcome = {
  tier : Oracle.tier;
  queries : int;
  wall_s : float;
  qps : float;
  latency : latency;
  cache : Oracle.cache_stats; (* deltas over this batch *)
  checksum : float; (* sum of answered distances: a replay invariant *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let k = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (k - 1)))
  end

let run oracle ~tier pairs =
  let count = Array.length pairs in
  let lat = Array.make count 0.0 in
  let before = Oracle.cache_stats oracle in
  let checksum = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to count - 1 do
    let u, v = pairs.(i) in
    let q0 = Unix.gettimeofday () in
    let ans = Oracle.query oracle ~tier u v in
    lat.(i) <- 1e6 *. (Unix.gettimeofday () -. q0);
    checksum := !checksum +. ans.Oracle.dist
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let after = Oracle.cache_stats oracle in
  Array.sort Float.compare lat;
  {
    tier;
    queries = count;
    wall_s;
    qps = (if wall_s > 0.0 then float_of_int count /. wall_s else 0.0);
    latency =
      {
        p50_us = percentile lat 0.50;
        p90_us = percentile lat 0.90;
        p99_us = percentile lat 0.99;
        max_us = (if count = 0 then 0.0 else lat.(count - 1));
      };
    cache =
      {
        Oracle.hits = after.Oracle.hits - before.Oracle.hits;
        misses = after.Oracle.misses - before.Oracle.misses;
        evictions = after.Oracle.evictions - before.Oracle.evictions;
        entries = after.Oracle.entries;
      };
    checksum = !checksum;
  }

let hit_rate o =
  let total = o.cache.Oracle.hits + o.cache.Oracle.misses in
  if total = 0 then 0.0
  else float_of_int o.cache.Oracle.hits /. float_of_int total

let pp_outcome ppf o =
  Format.fprintf ppf
    "tier %s: %d queries in %.3fs (%.0f qps); latency us p50 %.1f p90 %.1f p99 %.1f max %.1f"
    (Oracle.tier_name o.tier) o.queries o.wall_s o.qps o.latency.p50_us
    o.latency.p90_us o.latency.p99_us o.latency.max_us;
  if o.cache.Oracle.hits + o.cache.Oracle.misses > 0 then
    Format.fprintf ppf "; cache %d/%d hits (%d evictions)"
      o.cache.Oracle.hits
      (o.cache.Oracle.hits + o.cache.Oracle.misses)
      o.cache.Oracle.evictions

(* ------------------------------------------------------------------ *)
(* Stretch certification. *)

type certificate = {
  report : Monitor.report;
  sampled : int;
  sources : int; (* distinct sources -> exact Dijkstras on G replayed *)
  max_stretch : float;
  violations : int;
  bound : float;
}

(* Replay a sample of answers against exact distances on the source
   graph G. Grouping the sample by source amortises the ground truth:
   one full Dijkstra on G per distinct source. An answer below the
   true distance is impossible for any tier (all tiers answer with
   path lengths in G), so it is reported as [Wrong] evidence of a
   corrupt artifact, as is any answer above [bound] times the truth. *)
let certify ?sample oracle ~tier ~bound pairs =
  let pairs =
    match sample with
    | Some k when k < Array.length pairs -> Array.sub pairs 0 k
    | _ -> Array.copy pairs
  in
  Array.sort compare pairs;
  let g = (Oracle.artifact oracle).Artifact.graph in
  let eps = 1e-9 in
  let max_stretch = ref 1.0 in
  let violations = ref 0 in
  let first_bad = ref None in
  let sources = ref 0 in
  let exact = ref [||] in
  let current_src = ref (-1) in
  Array.iter
    (fun (u, v) ->
      if u <> !current_src then begin
        current_src := u;
        incr sources;
        exact := (Paths.dijkstra g u).Paths.dist
      end;
      let truth = !exact.(v) in
      let got = (Oracle.query oracle ~tier u v).Oracle.dist in
      let stretch = if truth > 0.0 then got /. truth else 1.0 in
      if stretch > !max_stretch then max_stretch := stretch;
      let bad =
        got < truth *. (1.0 -. eps) || got > truth *. bound *. (1.0 +. eps)
      in
      if bad then begin
        incr violations;
        if !first_bad = None then first_bad := Some (u, v, truth, got)
      end)
    pairs;
  let report =
    match !first_bad with
    | None ->
      {
        Monitor.verdict = Monitor.Correct;
        detail =
          Printf.sprintf
            "%d sampled answers within stretch %.2f (max observed %.3f)"
            (Array.length pairs) bound !max_stretch;
      }
    | Some (u, v, truth, got) ->
      {
        Monitor.verdict = Monitor.Wrong;
        detail =
          Printf.sprintf
            "%d of %d answers violate stretch %.2f; e.g. (%d,%d): answered %.6g, exact %.6g"
            !violations (Array.length pairs) bound u v got truth;
      }
  in
  {
    report;
    sampled = Array.length pairs;
    sources = !sources;
    max_stretch = !max_stretch;
    violations = !violations;
    bound;
  }

let pp_certificate ppf c =
  Format.fprintf ppf "%a [%d pairs, %d exact SSSPs, max stretch %.3f <= %.2f]"
    Monitor.pp c.report c.sampled c.sources c.max_stretch c.bound
