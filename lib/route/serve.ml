module Graph = Ln_graph.Graph
module Paths = Ln_graph.Paths
module Monitor = Ln_congest.Monitor
module Metrics = Ln_obs.Metrics

type latency = { p50_us : float; p90_us : float; p99_us : float; max_us : float }

type outcome = {
  tier : Oracle.tier;
  queries : int;
  wall_s : float;
  qps : float;
  latency : latency;
  cache : Oracle.cache_stats; (* deltas over this batch *)
  checksum : float; (* sum of answered distances: a replay invariant *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let k = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (k - 1)))
  end

(* Latency accounting. Large batches stream into a constant-memory
   log-bucketed histogram — O(buckets) instead of O(queries) — whose
   quantiles carry relative error <= [lat_error]. Batches at or below
   [exact_threshold] keep the exact sorted-array percentiles: on a
   tiny batch a single bucket can hold most of the distribution, and
   the committed BENCH_oracle.json numbers must keep their exact
   meaning. (At the 1% default, buckets are ~2% wide, so
   [exact_threshold] queries cost ~8 KB of scratch — cheaper than the
   histogram itself.) *)
let exact_threshold = 1024
let lat_error = 0.01

let latency_of_samples lat =
  let lat = Array.copy lat in
  Array.sort Float.compare lat;
  let n = Array.length lat in
  {
    p50_us = percentile lat 0.50;
    p90_us = percentile lat 0.90;
    p99_us = percentile lat 0.99;
    max_us = (if n = 0 then 0.0 else lat.(n - 1));
  }

let latency_of_hist h =
  if Metrics.Hist.count h = 0 then
    { p50_us = 0.0; p90_us = 0.0; p99_us = 0.0; max_us = 0.0 }
  else
    {
      p50_us = Metrics.Hist.quantile h 0.50;
      p90_us = Metrics.Hist.quantile h 0.90;
      p99_us = Metrics.Hist.quantile h 0.99;
      max_us = Metrics.Hist.max_value h;
    }

(* Registry handles, labelled per (artifact digest, tier) so that a
   process serving many networks never silently aggregates their
   latency or batch counts into one series. Registration is
   idempotent and keyed on the label set, so requesting the handle
   once per batch is one mutex acquisition, not a new metric. *)
let latency_metric ~digest tier =
  Metrics.histogram ~stable:false ~error:lat_error
    ~help:"Per-query serve latency in microseconds."
    ~labels:[ ("digest", digest); ("tier", Oracle.tier_name tier) ]
    "lightnet_serve_latency_us"

let batches_metric ~digest tier =
  Metrics.counter ~help:"Serve batches completed."
    ~labels:[ ("digest", digest); ("tier", Oracle.tier_name tier) ]
    "lightnet_serve_batches_total"

let run ?(snapshot_every = 0) ?on_snapshot oracle ~tier pairs =
  let count = Array.length pairs in
  let exact = count <= exact_threshold in
  let lat = if exact then Array.make (max 1 count) 0.0 else [||] in
  let hist =
    if exact then None else Some (Metrics.Hist.create ~error:lat_error ())
  in
  let digest = Artifact.digest_hex (Oracle.artifact oracle) in
  let mh = latency_metric ~digest tier in
  let before = Oracle.cache_stats oracle in
  let checksum = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to count - 1 do
    let u, v = pairs.(i) in
    let q0 = Unix.gettimeofday () in
    let ans = Oracle.query oracle ~tier u v in
    let us = 1e6 *. (Unix.gettimeofday () -. q0) in
    (match hist with
    | Some h -> Metrics.Hist.observe h us
    | None -> lat.(i) <- us);
    if Metrics.on () then Metrics.observe mh us;
    checksum := !checksum +. ans.Oracle.dist;
    (* The live scrape point of the serving loop: surface a registry
       snapshot every [snapshot_every] answered queries. *)
    if snapshot_every > 0 && (i + 1) mod snapshot_every = 0 then
      match on_snapshot with
      | Some f -> f (Metrics.snapshot ())
      | None -> ()
  done;
  if Metrics.on () then Metrics.incr (batches_metric ~digest tier);
  let wall_s = Unix.gettimeofday () -. t0 in
  let after = Oracle.cache_stats oracle in
  {
    tier;
    queries = count;
    wall_s;
    qps = (if wall_s > 0.0 then float_of_int count /. wall_s else 0.0);
    latency =
      (match hist with
      | Some h -> latency_of_hist h
      | None -> latency_of_samples (Array.sub lat 0 count));
    cache =
      {
        Oracle.hits = after.Oracle.hits - before.Oracle.hits;
        misses = after.Oracle.misses - before.Oracle.misses;
        evictions = after.Oracle.evictions - before.Oracle.evictions;
        entries = after.Oracle.entries;
      };
    checksum = !checksum;
  }

let hit_rate o =
  let total = o.cache.Oracle.hits + o.cache.Oracle.misses in
  if total = 0 then 0.0
  else float_of_int o.cache.Oracle.hits /. float_of_int total

let pp_outcome ppf o =
  Format.fprintf ppf
    "tier %s: %d queries in %.3fs (%.0f qps); latency us p50 %.1f p90 %.1f p99 %.1f max %.1f"
    (Oracle.tier_name o.tier) o.queries o.wall_s o.qps o.latency.p50_us
    o.latency.p90_us o.latency.p99_us o.latency.max_us;
  if o.cache.Oracle.hits + o.cache.Oracle.misses > 0 then
    Format.fprintf ppf "; cache %d/%d hits (%d evictions)"
      o.cache.Oracle.hits
      (o.cache.Oracle.hits + o.cache.Oracle.misses)
      o.cache.Oracle.evictions

(* ------------------------------------------------------------------ *)
(* Stretch certification. *)

type certificate = {
  report : Monitor.report;
  sampled : int;
  sources : int; (* distinct sources -> exact Dijkstras on G replayed *)
  max_stretch : float;
  violations : int;
  bound : float;
}

(* Replay a sample of answers against exact distances on the source
   graph G. Grouping the sample by source amortises the ground truth:
   one full Dijkstra on G per distinct source. An answer below the
   true distance is impossible for any tier (all tiers answer with
   path lengths in G), so it is reported as [Wrong] evidence of a
   corrupt artifact, as is any answer above [bound] times the truth. *)
let certify ?sample oracle ~tier ~bound pairs =
  let pairs =
    match sample with
    | Some k when k < Array.length pairs -> Array.sub pairs 0 k
    | _ -> Array.copy pairs
  in
  Array.sort compare pairs;
  let g = (Oracle.artifact oracle).Artifact.graph in
  let eps = 1e-9 in
  let max_stretch = ref 1.0 in
  let violations = ref 0 in
  let first_bad = ref None in
  let sources = ref 0 in
  let exact = ref [||] in
  let current_src = ref (-1) in
  Array.iter
    (fun (u, v) ->
      if u <> !current_src then begin
        current_src := u;
        incr sources;
        exact := (Paths.dijkstra g u).Paths.dist
      end;
      let truth = !exact.(v) in
      let got = (Oracle.query oracle ~tier u v).Oracle.dist in
      let stretch = if truth > 0.0 then got /. truth else 1.0 in
      if stretch > !max_stretch then max_stretch := stretch;
      let bad =
        got < truth *. (1.0 -. eps) || got > truth *. bound *. (1.0 +. eps)
      in
      if bad then begin
        incr violations;
        if !first_bad = None then first_bad := Some (u, v, truth, got)
      end)
    pairs;
  let report =
    match !first_bad with
    | None ->
      {
        Monitor.verdict = Monitor.Correct;
        detail =
          Printf.sprintf
            "%d sampled answers within stretch %.2f (max observed %.3f)"
            (Array.length pairs) bound !max_stretch;
      }
    | Some (u, v, truth, got) ->
      {
        Monitor.verdict = Monitor.Wrong;
        detail =
          Printf.sprintf
            "%d of %d answers violate stretch %.2f; e.g. (%d,%d): answered %.6g, exact %.6g"
            !violations (Array.length pairs) bound u v got truth;
      }
  in
  {
    report;
    sampled = Array.length pairs;
    sources = !sources;
    max_stretch = !max_stretch;
    violations = !violations;
    bound;
  }

let pp_certificate ppf c =
  Format.fprintf ppf "%a [%d pairs, %d exact SSSPs, max stretch %.3f <= %.2f]"
    Monitor.pp c.report c.sampled c.sources c.max_stretch c.bound
