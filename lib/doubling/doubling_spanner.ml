module Graph = Ln_graph.Graph
module Mst_seq = Ln_graph.Mst_seq
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Bfs = Ln_prim.Bfs
module Bellman_ford = Ln_aspt.Bellman_ford
module Net = Ln_nets.Net

type t = {
  edges : int list;
  epsilon : float;
  stretch_bound : float;
  scales : int;
  max_table : int;
  ledger : Ledger.t;
}

(* Native path reporting: every initiating net point launches one
   token per (smaller, discovered) net point; a token for source u at
   vertex x crosses x's parent edge towards u, marking it. Tokens to
   distinct parent edges travel in parallel; tokens sharing an edge
   queue up (one per round — congestion is real and measured). *)
let report_paths g (tables : Bellman_ford.tables) ~pairs ~mark =
  let open Engine in
  (* Per-vertex pending tokens grouped by outgoing parent edge. *)
  let parent_of v src =
    match Hashtbl.find_opt tables.(v) src with
    | Some (_, e) -> e
    | None -> -1
  in
  let program : ((int, int list) Hashtbl.t, int) Engine.program =
    let push s v src =
      let e = parent_of v src in
      if e >= 0 then begin
        mark e;
        let cur = Option.value ~default:[] (Hashtbl.find_opt s e) in
        Hashtbl.replace s e (cur @ [ src ])
      end
    in
    let emit s =
      let outs = ref [] in
      let updates = ref [] in
      Hashtbl.iter
        (fun e srcs ->
          match srcs with
          | src :: rest ->
            outs := { via = e; msg = src } :: !outs;
            updates := (e, rest) :: !updates
          | [] -> ())
        s;
      List.iter
        (fun (e, rest) ->
          if rest = [] then Hashtbl.remove s e else Hashtbl.replace s e rest)
        !updates;
      (!outs, not (Hashtbl.length s = 0))
    in
    {
      name = "doubling-path-report";
      words = (fun _ -> 1);
      init =
        (fun ctx ->
          let s = Hashtbl.create 4 in
          List.iter (fun src -> push s ctx.me src) (pairs ctx.me);
          (s, []));
      step =
        (fun ctx ~round:_ s inbox ->
          List.iter
            (fun (r : int received) ->
              let src = r.payload in
              if src <> ctx.me then push s ctx.me src)
            inbox;
          let outs, active = emit s in
          (s, outs, active));
    }
  in
  Engine.run g program

let build ~rng g ~epsilon =
  if not (epsilon > 0.0 && epsilon <= 0.5) then
    invalid_arg "Doubling_spanner.build: epsilon must be in (0, 0.5]";
  Telemetry.span "doubling-spanner" @@ fun () ->
  let n = Graph.n g in
  let ledger = Ledger.create () in
  let bfs =
    Telemetry.span ~ledger "bfs-tree" (fun () -> fst (Bfs.tree g ~root:0))
  in
  let l_total = Mst_seq.weight g in
  let w_min = Graph.fold_edges g (fun _ e acc -> Float.min acc e.Graph.w) infinity in
  let chosen = Hashtbl.create (4 * n) in
  let mark e = Hashtbl.replace chosen e () in
  let scales = ref 0 in
  let max_table = ref 0 in
  let delta_scale = ref w_min in
  (* One extra scale past L so every pair (d <= L) has a covering
     scale with delta/(1+eps) < d <= delta. *)
  while !delta_scale <= l_total *. (1.0 +. epsilon) && n > 1 do
    incr scales;
    let big_delta = !delta_scale in
    (* (εΔ/2, εΔ/3)-net: Theorem 3 with δ = 1/2. *)
    let radius = epsilon *. big_delta /. 3.0 in
    let net = Net.build ~rng g ~bfs ~radius ~delta:0.5 in
    Ledger.merge ledger ~prefix:"net" net.Net.ledger;
    (* 2Δ-bounded multi-source exploration from the net points. *)
    let tables =
      Telemetry.span ~ledger "bounded-msasp" (fun () ->
          fst
            (Bellman_ford.multi_source ~bound:(2.0 *. big_delta) g
               ~srcs:net.Net.points))
    in
    Array.iter
      (fun tbl -> if Hashtbl.length tbl > !max_table then max_table := Hashtbl.length tbl)
      tables;
    (* Each net point v initiates a token towards every discovered
       smaller net point. *)
    let is_net_point = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace is_net_point p ()) net.Net.points;
    let pairs v =
      if Hashtbl.mem is_net_point v then
        Hashtbl.fold
          (fun src _ acc ->
            if src < v && Hashtbl.mem is_net_point src then src :: acc else acc)
          tables.(v) []
      else []
    in
    Telemetry.span ~ledger "path-report" (fun () ->
        ignore (report_paths g tables ~pairs ~mark));
    delta_scale := big_delta *. (1.0 +. epsilon)
  done;
  let edges = List.sort Int.compare (Hashtbl.fold (fun e () acc -> e :: acc) chosen []) in
  {
    edges;
    epsilon;
    stretch_bound = 1.0 +. (12.0 *. epsilon);
    scales = !scales;
    max_table = !max_table;
    ledger;
  }
