module Graph = Ln_graph.Graph
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Net = Ln_nets.Net

type t = {
  psi : float;
  alpha : float;
  levels : (float * int) list;
  lower : float;
  upper_factor : float;
  ledger : Ledger.t;
}

let estimate ~rng g ~bfs ~alpha =
  if alpha < 1.0 then invalid_arg "Mst_weight.estimate: alpha must be >= 1";
  Telemetry.span "mst-weight" @@ fun () ->
  let ledger = Ledger.create () in
  let w_min = Graph.fold_edges g (fun _ e acc -> Float.min acc e.Graph.w) infinity in
  (* Start low enough that the first net is all of V (covering radius
     below the minimum distance). *)
  let scale0 =
    let s = ref 1.0 in
    while alpha *. !s >= w_min do
      s := !s /. 2.0
    done;
    while alpha *. !s *. 2.0 < w_min do
      s := !s *. 2.0
    done;
    !s
  in
  let levels = ref [] in
  let psi = ref 0.0 in
  let scale = ref scale0 in
  let finished = ref (Graph.n g <= 1) in
  while not !finished do
    let net = Net.build ~rng g ~bfs ~radius:!scale ~delta:(alpha -. 1.0) in
    Ledger.merge ledger ~prefix:"net" net.Net.ledger;
    let ni = List.length net.Net.points in
    levels := (!scale, ni) :: !levels;
    psi := !psi +. (float_of_int ni *. alpha *. !scale *. 2.0);
    if ni = 1 then finished := true else scale := !scale *. 2.0
  done;
  let levels = List.rev !levels in
  {
    psi = !psi;
    alpha;
    levels;
    lower = 1.0;
    upper_factor = 4.0 *. alpha *. float_of_int (List.length levels + 3);
    ledger;
  }
