module Engine = Ln_congest.Engine

let exchange ?word_cap ?(edge_ok = fun _ -> true) ~words g (values : 'a array) =
  let open Engine in
  let program : ((int * 'a) list, 'a) Engine.program =
    {
      name = "exchange";
      words;
      init =
        (fun ctx ->
          ( [],
            List.rev
              (ctx_fold_neighbors ctx
                 (fun acc e _ ->
                   if edge_ok e then { via = e; msg = values.(ctx.me) } :: acc
                   else acc)
                 []) ));
      step =
        (fun _ctx ~round:_ s inbox ->
          let s =
            List.fold_left (fun s (r : 'a received) -> (r.edge, r.payload) :: s) s inbox
          in
          (s, [], false));
    }
  in
  Engine.run ?word_cap g program

let ints g values = exchange ~words:(fun _ -> 1) g values
let floats g values = exchange ~words:(fun _ -> 2) g values

let payloads ?edge_ok ?word_cap ~words g values =
  exchange ?word_cap ?edge_ok ~words g values
