(** Distributed BFS-tree construction (the tree [τ] every global
    communication pattern in the paper is pipelined over).

    A flood from the root; each node adopts the first sender as parent
    (ties broken towards the smaller vertex id, deterministically).
    Completes in [D + O(1)] rounds. *)

(** [tree g ~root] runs the flood on the engine and returns the rooted
    BFS tree together with engine statistics. *)
val tree :
  Ln_graph.Graph.t -> root:int -> Ln_graph.Tree.t * Ln_congest.Engine.stats

(** Per-node state of the relaxing variant (exposed so chaos tests and
    {!Ln_congest.Monitor} can inspect claimed distances). *)
type state = { dist : int; parent_edge : int }

type msg = Join of int

(** Bellman-Ford-style BFS: keep the lexicographically smallest
    [(dist, parent_edge)], re-announce on improvement. Unlike the
    adopt-first flood — whose correctness *needs* lockstep delivery —
    its fixpoint is independent of message timing, so it stays correct
    under the delays introduced by {!Ln_congest.Reliable.lift}. *)
val relaxing_program : root:int -> (state, msg) Ln_congest.Engine.program

(** [layers ?faults g ~root] runs {!relaxing_program} raw (optionally
    under a fault plan, where lost messages may leave wrong or [-1]
    distances) and returns the per-node hop distances. *)
val layers :
  ?faults:Ln_congest.Fault.plan ->
  Ln_graph.Graph.t ->
  root:int ->
  int array * Ln_congest.Engine.stats

(** [layers_reliable ?faults g ~root] — the same program under
    {!Ln_congest.Reliable.lift}: on a lossy network (drop-prob [< 1],
    retries not exhausted) it converges to the exact fault-free
    layers, at a measured cost in rounds and retransmissions. *)
val layers_reliable :
  ?max_retries:int ->
  ?faults:Ln_congest.Fault.plan ->
  Ln_graph.Graph.t ->
  root:int ->
  int array * Ln_congest.Engine.stats
