(** Pipelined all-to-all broadcast over a rooted tree — Lemma 1 of the
    paper: if every vertex [v] holds [m_v] messages of O(1) words with
    [M = Σ m_v] total, all vertices receive all messages within
    [O(M + D)] rounds.

    Implemented natively on the engine as an upcast of every item to
    the root (one item per tree edge per round, with per-subtree
    completion detection) followed by a pipelined downcast. *)

(** [all_to_all g ~tree ~items] returns per-vertex the list of all
    items in the network (in unspecified order) and engine stats.
    Items must fit in [words] machine words each (default 2, i.e. a
    constant number of O(log n)-bit words; the engine's default cap
    accommodates the one-word protocol overhead). *)
val all_to_all :
  ?word_cap:int ->
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  items:'a list array ->
  'a list array * Ln_congest.Engine.stats

(** [gather g ~tree ~items] — only the upcast: the root ends up with
    all items; other vertices get []. Cheaper when only the root needs
    the data (e.g. break-point filtering in Section 4). *)
val gather :
  ?word_cap:int ->
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  items:'a list array ->
  'a list array * Ln_congest.Engine.stats

(** [downcast g ~tree ~items] — only the downcast: the root's items are
    delivered to every vertex. *)
val downcast :
  ?word_cap:int ->
  ?words:('a -> int) ->
  Ln_graph.Graph.t ->
  tree:Ln_graph.Tree.t ->
  items:'a list ->
  'a list array * Ln_congest.Engine.stats

(** {2 Single-value flood}

    The minimal broadcast, used by the chaos harness and the CLI:
    [root] floods one integer to everyone. *)

type flood_msg = Value of int

(** Forward-once flood program; a node's state is the value it holds
    ([None] until reached). Timing-independent, so it lifts through
    {!Ln_congest.Reliable.lift} unchanged. *)
val flood_program :
  root:int -> value:int -> (int option, flood_msg) Ln_congest.Engine.program

(** [flood ?faults g ~root ~value] runs the raw flood; under faults,
    nodes beyond a dropped message never receive the value. *)
val flood :
  ?faults:Ln_congest.Fault.plan ->
  Ln_graph.Graph.t ->
  root:int ->
  value:int ->
  int option array * Ln_congest.Engine.stats

(** Same flood under the ARQ combinator: every node connected to the
    root by surviving links receives the value despite drops. *)
val flood_reliable :
  ?max_retries:int ->
  ?faults:Ln_congest.Fault.plan ->
  Ln_graph.Graph.t ->
  root:int ->
  value:int ->
  int option array * Ln_congest.Engine.stats
