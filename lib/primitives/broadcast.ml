module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine

type 'a msg = Up of 'a | Up_done | Down of 'a | Down_done

type 'a state = {
  pending_up : 'a list; (* queue of items still to push to the parent *)
  up_children_pending : int; (* children that have not sent Up_done *)
  up_sent_done : bool;
  collected : 'a list; (* root: everything upcast; others: Down items *)
  pending_down : 'a list;
  down_started : bool;
  down_done_received : bool;
  down_sent_done : bool;
}

(* Per-node tree structure (legitimately local knowledge after BFS). *)
type shape = { parent_edge : int; child_edges : int list }

let shapes g tree =
  let n = Graph.n g in
  let shape = Array.make n { parent_edge = -1; child_edges = [] } in
  for v = 0 to n - 1 do
    let parent_edge = match Tree.parent tree v with Some (_, e) -> e | None -> -1 in
    let child_edges =
      List.filter_map
        (fun c -> match Tree.parent tree c with Some (_, e) -> Some e | None -> None)
        (Tree.children tree v)
    in
    shape.(v) <- { parent_edge; child_edges }
  done;
  shape

let msg_words words = function
  | Up x | Down x -> words x
  | Up_done | Down_done -> 1

(* One send of at most one item up + one item down (to each child) per
   round, with done-markers once queues drain. [do_down] disables the
   downcast phase for [gather]. *)
let program ~name ~words ~do_down shape (items : 'a list array) :
    ('a state, 'a msg) Engine.program =
  let open Engine in
  let is_root v = shape.(v).parent_edge = -1 in
  let outs_of ctx s =
    let sh = shape.(ctx.me) in
    let up_msgs, s =
      if is_root ctx.me then ([], s)
      else begin
        match s.pending_up with
        | x :: rest -> ([ { via = sh.parent_edge; msg = Up x } ], { s with pending_up = rest })
        | [] ->
          if (not s.up_sent_done) && s.up_children_pending = 0 then
            ([ { via = sh.parent_edge; msg = Up_done } ], { s with up_sent_done = true })
          else ([], s)
      end
    in
    (* Root starts the down phase once its subtree (i.e. everyone) is
       done upcasting. *)
    let s =
      if
        do_down && is_root ctx.me && (not s.down_started)
        && s.up_children_pending = 0
      then { s with down_started = true; pending_down = List.rev s.collected }
      else s
    in
    let down_msgs, s =
      if not do_down then ([], s)
      else begin
        match s.pending_down with
        | x :: rest ->
          ( List.map (fun e -> { via = e; msg = Down x }) sh.child_edges,
            { s with pending_down = rest } )
        | [] ->
          let upstream_finished =
            if is_root ctx.me then s.down_started else s.down_done_received
          in
          if upstream_finished && not s.down_sent_done then
            ( List.map (fun e -> { via = e; msg = Down_done }) sh.child_edges,
              { s with down_sent_done = true } )
          else ([], s)
      end
    in
    let active =
      s.pending_up <> []
      || ((not (is_root ctx.me)) && not s.up_sent_done)
      || (do_down && not s.down_sent_done)
    in
    (s, up_msgs @ down_msgs, active)
  in
  {
    name;
    words = msg_words words;
    init =
      (fun ctx ->
        let sh = shape.(ctx.me) in
        let s =
          {
            pending_up = (if is_root ctx.me then [] else items.(ctx.me));
            up_children_pending = List.length sh.child_edges;
            up_sent_done = false;
            collected = (if is_root ctx.me then List.rev items.(ctx.me) else []);
            pending_down = [];
            down_started = false;
            down_done_received = false;
            down_sent_done = false;
          }
        in
        (s, []));
    step =
      (fun ctx ~round:_ s inbox ->
        let s =
          List.fold_left
            (fun s (r : 'a msg received) ->
              match r.payload with
              | Up x ->
                if is_root ctx.me then { s with collected = x :: s.collected }
                else { s with pending_up = s.pending_up @ [ x ] }
              | Up_done -> { s with up_children_pending = s.up_children_pending - 1 }
              | Down x ->
                { s with collected = x :: s.collected; pending_down = s.pending_down @ [ x ] }
              | Down_done -> { s with down_done_received = true })
            s inbox
        in
        outs_of ctx s);
  }

let run_broadcast ~name ~do_down ?word_cap ?(words = fun _ -> 2) g ~tree ~items =
  let shape = shapes g tree in
  let states, stats = Engine.run ?word_cap g (program ~name ~words ~do_down shape items) in
  let root = Tree.root tree in
  let result =
    Array.mapi
      (fun v (s : _ state) ->
        if v = root then List.rev s.collected
        else if do_down then
          (* Non-root: collected are the Down items = everything. *)
          List.rev s.collected
        else [])
      states
  in
  (result, stats)

let all_to_all ?word_cap ?words g ~tree ~items =
  run_broadcast ~name:"broadcast-all-to-all" ~do_down:true ?word_cap ?words g ~tree ~items

let gather ?word_cap ?words g ~tree ~items =
  run_broadcast ~name:"broadcast-gather" ~do_down:false ?word_cap ?words g ~tree ~items

let downcast ?word_cap ?words g ~tree ~items =
  let per_node = Array.make (Graph.n g) [] in
  per_node.(Tree.root tree) <- items;
  run_broadcast ~name:"broadcast-downcast" ~do_down:true ?word_cap ?words g ~tree
    ~items:per_node

(* ------------------------------------------------------------------ *)
(* Single-value flood — the minimal broadcast, used by the chaos
   harness: forward the value once over every other edge. Timing-
   independent (any delivery order reaches the same fixpoint on a
   reliable network), so it composes with [Reliable.lift]. *)

type flood_msg = Value of int

let flood_program ~root ~value : (int option, flood_msg) Engine.program =
  let open Engine in
  let forward ctx except =
    List.rev
      (ctx_fold_neighbors ctx
         (fun acc edge _ ->
           if edge = except then acc
           else { via = edge; msg = Value value } :: acc)
         [])
  in
  {
    name = "broadcast-flood";
    words = (fun (Value _) -> 1);
    init =
      (fun ctx ->
        if ctx.me = root then (Some value, forward ctx (-1)) else (None, []));
    step =
      (fun ctx ~round:_ s inbox ->
        match s with
        | Some _ -> (s, [], false)
        | None -> (
          match inbox with
          | [] -> (s, [], false)
          | (r : flood_msg received) :: _ ->
            let (Value x) = r.payload in
            (Some x, forward ctx r.edge, false)));
  }

let flood ?faults g ~root ~value =
  Engine.run ?faults g (flood_program ~root ~value)

let flood_reliable ?max_retries ?faults g ~root ~value =
  let lifted = Ln_congest.Reliable.lift ?max_retries (flood_program ~root ~value) in
  let states, stats = Engine.run ?faults g lifted in
  (Array.map Ln_congest.Reliable.project states, stats)
