module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine

type 'v state = {
  best : (int, 'v) Hashtbl.t;
  queued : (int, unit) Hashtbl.t;
  queue : int Queue.t;
}

let upcast_program ~value_words shape ~local ~better :
    ('v state, int * 'v) Engine.program =
  let open Engine in
  let improve s key v =
    match Hashtbl.find_opt s.best key with
    | Some cur when not (better v cur) -> false
    | _ ->
      Hashtbl.replace s.best key v;
      true
  in
  let enqueue s key =
    if not (Hashtbl.mem s.queued key) then begin
      Hashtbl.replace s.queued key ();
      Queue.push key s.queue
    end
  in
  let emit ctx s =
    let parent_edge = shape.(ctx.me) in
    if parent_edge < 0 then (s, [], false) (* root only accumulates *)
    else if Queue.is_empty s.queue then (s, [], false)
    else begin
      let key = Queue.pop s.queue in
      Hashtbl.remove s.queued key;
      let v = match Hashtbl.find_opt s.best key with Some v -> v | None -> assert false in
      (s, [ { via = parent_edge; msg = (key, v) } ], not (Queue.is_empty s.queue))
    end
  in
  {
    name = "keyed-upcast";
    words = (fun _ -> 1 + value_words);
    init =
      (fun ctx ->
        let s =
          { best = Hashtbl.create 8; queued = Hashtbl.create 8; queue = Queue.create () }
        in
        List.iter
          (fun (key, v) -> if improve s key v then enqueue s key)
          (local ctx.me);
        (s, []));
    step =
      (fun ctx ~round:_ s inbox ->
        List.iter
          (fun (r : (int * 'v) received) ->
            let key, v = r.payload in
            if improve s key v then enqueue s key)
          inbox;
        emit ctx s);
  }

let global_best ?(value_words = 2) g ~tree ~nkeys ~local ~better =
  let shape =
    Array.init (Graph.n g) (fun v ->
        match Tree.parent tree v with Some (_, e) -> e | None -> -1)
  in
  let word_cap = max 4 (1 + value_words) in
  let states, up_stats =
    Engine.run ~word_cap g (upcast_program ~value_words shape ~local ~better)
  in
  let root_best = states.(Tree.root tree).best in
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) root_best [] in
  let per_node, down_stats =
    Broadcast.downcast ~word_cap ~words:(fun _ -> 1 + value_words) g ~tree ~items
  in
  (* All vertices got the same table; materialize it once. *)
  let table = Array.make nkeys None in
  List.iter (fun (k, v) -> table.(k) <- Some v) per_node.(Tree.root tree);
  let stats =
    Engine.
      {
        rounds = up_stats.rounds + down_stats.rounds;
        messages = up_stats.messages + down_stats.messages;
        total_words = up_stats.total_words + down_stats.total_words;
        max_edge_load = max up_stats.max_edge_load down_stats.max_edge_load;
        outcome =
          (if up_stats.outcome = Round_limit || down_stats.outcome = Round_limit
           then Round_limit
           else Converged);
        dropped_messages =
          up_stats.dropped_messages + down_stats.dropped_messages;
        retransmissions = up_stats.retransmissions + down_stats.retransmissions;
      }
  in
  (table, stats)
