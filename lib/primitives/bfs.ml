module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine

type state = { dist : int; parent_edge : int }

type msg = Join of int (* sender's BFS distance *)

let program root : (state, msg) Engine.program =
  let open Engine in
  {
    name = "bfs-tree";
    words = (fun (Join _) -> 1);
    init =
      (fun ctx ->
        if ctx.me = root then
          ( { dist = 0; parent_edge = -1 },
            Array.to_list ctx.neighbors
            |> List.map (fun (edge, _) -> { via = edge; msg = Join 0 }) )
        else ({ dist = -1; parent_edge = -1 }, []));
    step =
      (fun ctx ~round:_ s inbox ->
        if s.dist >= 0 then (s, [], false)
        else begin
          (* Adopt the smallest-id sender among this round's offers.
             Hot path: one allocation-free scan for the best offer,
             one direct unfold of the neighbor array for the sends. *)
          let rec best (b : msg received option) = function
            | [] -> b
            | (r : msg received) :: rest ->
              (match b with
              | Some bb when bb.from <= r.from -> best b rest
              | _ -> best (Some r) rest)
          in
          match best None inbox with
          | None -> (s, [], false)
          | Some r ->
            let (Join d) = r.payload in
            let s = { dist = d + 1; parent_edge = r.edge } in
            let msg = Join s.dist in
            let nbrs = ctx.neighbors in
            let deg = Array.length nbrs in
            let rec outs i =
              if i >= deg then []
              else
                let edge, _ = nbrs.(i) in
                if edge = r.edge then outs (i + 1)
                else { via = edge; msg } :: outs (i + 1)
            in
            (s, outs 0, false)
        end);
  }

let tree g ~root =
  let states, stats = Engine.run g (program root) in
  let edges = ref [] in
  Array.iter (fun s -> if s.parent_edge >= 0 then edges := s.parent_edge :: !edges) states;
  (Tree.of_edges g ~root !edges, stats)
