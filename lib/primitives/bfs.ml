module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Engine = Ln_congest.Engine
module Reliable = Ln_congest.Reliable

type state = { dist : int; parent_edge : int }

type msg = Join of int (* sender's BFS distance *)

let program root : (state, msg) Engine.program =
  let open Engine in
  {
    name = "bfs-tree";
    words = (fun (Join _) -> 1);
    init =
      (fun ctx ->
        if ctx.me = root then
          ( { dist = 0; parent_edge = -1 },
            List.rev
              (ctx_fold_neighbors ctx
                 (fun acc edge _ -> { via = edge; msg = Join 0 } :: acc)
                 []) )
        else ({ dist = -1; parent_edge = -1 }, []));
    step =
      (fun ctx ~round:_ s inbox ->
        if s.dist >= 0 then (s, [], false)
        else begin
          (* Adopt the smallest-id sender among this round's offers.
             Hot path: one allocation-free scan for the best offer,
             one direct unfold of the neighbor array for the sends. *)
          let rec best (b : msg received option) = function
            | [] -> b
            | (r : msg received) :: rest ->
              (match b with
              | Some bb when bb.from <= r.from -> best b rest
              | _ -> best (Some r) rest)
          in
          match best None inbox with
          | None -> (s, [], false)
          | Some r ->
            let (Join d) = r.payload in
            let s = { dist = d + 1; parent_edge = r.edge } in
            let msg = Join s.dist in
            (* Built by fold + reverse so the sends go out in ascending
               edge-id order; the fold itself is a tail-safe CSR walk
               (a hub on a power-law graph can have 10^5 neighbors). *)
            let outs =
              ctx_fold_neighbors ctx
                (fun acc edge _ ->
                  if edge = r.edge then acc else { via = edge; msg } :: acc)
                []
            in
            (s, List.rev outs, false)
        end);
  }

let tree g ~root =
  let states, stats = Engine.run g (program root) in
  let edges = ref [] in
  Array.iter (fun s -> if s.parent_edge >= 0 then edges := s.parent_edge :: !edges) states;
  (Tree.of_edges g ~root !edges, stats)

(* The flood above adopts its *first* offer, which measures hop
   distance only because fault-free synchronous floods advance in
   lockstep. Under message loss (or the retransmission delays of
   {!Ln_congest.Reliable}) first ≠ closest, so the robust variant is a
   Bellman-Ford-style relaxation: keep the lexicographically smallest
   [(dist, parent_edge)] seen so far and re-announce on every
   improvement. Its fixpoint — true BFS layers, parent = smallest edge
   id into the previous layer — depends only on which messages are
   *eventually* delivered, not on their timing, which is exactly the
   guarantee reliable links restore on a lossy network. *)
let relaxing_program ~root : (state, msg) Engine.program =
  let open Engine in
  let announce ctx d =
    let msg = Join d in
    List.rev
      (ctx_fold_neighbors ctx (fun acc edge _ -> { via = edge; msg } :: acc) [])
  in
  {
    name = "bfs-relax";
    words = (fun (Join _) -> 1);
    init =
      (fun ctx ->
        if ctx.me = root then ({ dist = 0; parent_edge = -1 }, announce ctx 0)
        else ({ dist = -1; parent_edge = -1 }, []));
    step =
      (fun ctx ~round:_ s inbox ->
        let better d e =
          s.dist < 0 || d < s.dist || (d = s.dist && e < s.parent_edge)
        in
        let best =
          List.fold_left
            (fun acc (r : msg received) ->
              let (Join d) = r.payload in
              let cand = (d + 1, r.edge) in
              match acc with
              | Some (bd, be) when (bd, be) <= cand -> acc
              | _ -> if better (d + 1) r.edge then Some cand else acc)
            None inbox
        in
        match best with
        | Some (d, e) when ctx.me <> root && better d e ->
          ({ dist = d; parent_edge = e }, announce ctx d, false)
        | _ -> (s, [], false));
  }

let dists_of states = Array.map (fun s -> s.dist) states

let layers ?faults g ~root =
  let states, stats = Engine.run ?faults g (relaxing_program ~root) in
  (dists_of states, stats)

let layers_reliable ?max_retries ?faults g ~root =
  let lifted = Reliable.lift ?max_retries (relaxing_program ~root) in
  let states, stats = Engine.run ?faults g lifted in
  (dists_of (Array.map Reliable.project states), stats)
